package batchdb

import (
	"sync"
	"testing"
	"time"
)

// TestWorkloadReplicaIsolation exercises the paper's §7 extension: a
// second replica dedicated to long-running (offline) queries. A slow
// query monopolizing the offline class's batch schedule must not delay
// queries on the online class, and both classes must see consistent
// snapshots fed by the same update stream.
func TestWorkloadReplicaIsolation(t *testing.T) {
	f := newFixture(t, Config{OLTPWorkers: 2, OLAPWorkers: 2, PushPeriod: 10 * time.Millisecond})
	f.load(t, 200)
	if err := f.db.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.db.Close()

	offline, err := f.db.AttachWorkloadReplica(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer offline.Close()

	// Both classes see the bootstrap state.
	online, _ := f.db.Query(f.totalQuery())
	off, err := offline.Query(f.totalQuery())
	if err != nil || off.Err != nil {
		t.Fatal(err, off.Err)
	}
	if online.Values[0] != off.Values[0] {
		t.Fatalf("classes diverge at bootstrap: %f vs %f", online.Values[0], off.Values[0])
	}

	// Fresh updates reach both classes.
	for i := 0; i < 40; i++ {
		if r := f.db.Exec("deposit", depositArgs(uint64(i%200)+1, 5)); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	want := 200*100 + 40*5.0
	online, _ = f.db.Query(f.totalQuery())
	off, _ = offline.Query(f.totalQuery())
	if online.Values[0] != want || off.Values[0] != want {
		t.Fatalf("freshness broken: online %f offline %f want %f", online.Values[0], off.Values[0], want)
	}

	// A deliberately slow offline query (sleep per tuple) must not block
	// online queries: the online class completes many queries while the
	// offline batch is still running.
	slow := f.totalQuery()
	slow.DriverPred = func(tup []byte) bool {
		time.Sleep(2 * time.Millisecond)
		return true
	}
	var wg sync.WaitGroup
	wg.Add(1)
	slowDone := make(chan struct{})
	go func() {
		defer wg.Done()
		offline.Query(slow)
		close(slowDone)
	}()

	completedWhileSlow := 0
	for i := 0; i < 10; i++ {
		res, err := f.db.Query(f.totalQuery())
		if err != nil || res.Err != nil {
			t.Fatal(err, res.Err)
		}
		select {
		case <-slowDone:
		default:
			completedWhileSlow++
		}
	}
	wg.Wait()
	if completedWhileSlow == 0 {
		t.Fatal("online class made no progress while offline class ran a long query")
	}
}
