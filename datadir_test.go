package batchdb

import (
	"strings"
	"testing"
)

// The public DataDir lifecycle: fresh start, crash-free restart through
// NeedsSeed/RecoverDataDir, checkpoint-backed restart without the seed.
func TestDataDirLifecycle(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, CheckpointEveryVIDs: -1, CheckpointEveryWALBytes: -1}

	// --- first run: fresh directory ---
	f := newFixture(t, cfg)
	need, err := f.db.NeedsSeed()
	if err != nil || !need {
		t.Fatalf("fresh dir NeedsSeed = %v, %v", need, err)
	}
	f.load(t, 10)
	if err := f.db.Start(); err != nil {
		t.Fatal(err)
	}
	const deposits = 20
	for i := 0; i < deposits; i++ {
		if r := f.db.Exec("deposit", depositArgs(1+uint64(i%10), 5)); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if st := f.db.DurabilityStats(); st == nil {
		t.Fatal("DataDir instance has no durability stats")
	}
	if err := f.db.Close(); err != nil {
		t.Fatal(err)
	}

	// --- second run: no checkpoint yet, so the seed must be reloaded ---
	f2 := newFixture(t, cfg)
	need, err = f2.db.NeedsSeed()
	if err != nil || !need {
		t.Fatalf("pre-checkpoint NeedsSeed = %v, %v", need, err)
	}
	f2.load(t, 10)
	// Starting over existing state without recovering is refused.
	if err := f2.db.Start(); err == nil || !strings.Contains(err.Error(), "RecoverDataDir") {
		t.Fatalf("Start over existing DataDir: %v", err)
	}
	info, err := f2.db.RecoverDataDir()
	if err != nil {
		t.Fatal(err)
	}
	if info.CheckpointVID != 0 || info.Replayed != deposits {
		t.Fatalf("recovery = %+v", info)
	}
	if err := f2.db.Start(); err != nil {
		t.Fatal(err)
	}
	// Balance of account 1: 100 + 2 deposits * 5.
	res, err := f2.db.Query(f2.totalQuery())
	if err != nil || res.Err != nil {
		t.Fatalf("query: %v %v", err, res.Err)
	}
	if want := float64(10*100 + deposits*5); res.Values[0] != want {
		t.Fatalf("total after recovery = %v, want %v", res.Values[0], want)
	}

	// --- checkpoint, then more writes ---
	vid, err := f2.db.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if vid != deposits {
		t.Fatalf("checkpoint vid = %d, want %d", vid, deposits)
	}
	if got := f2.db.DurabilityStats().Checkpoints.Load(); got != 1 {
		t.Fatalf("Checkpoints counter = %d", got)
	}
	for i := 0; i < 5; i++ {
		if r := f2.db.Exec("deposit", depositArgs(3, 1)); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	f2.db.Close()

	// --- third run: checkpoint replaces the seed ---
	f3 := newFixture(t, cfg)
	need, err = f3.db.NeedsSeed()
	if err != nil || need {
		t.Fatalf("post-checkpoint NeedsSeed = %v, %v", need, err)
	}
	info, err = f3.db.RecoverDataDir()
	if err != nil {
		t.Fatal(err)
	}
	if info.CheckpointVID != deposits || info.Replayed != 5 {
		t.Fatalf("checkpointed recovery = %+v (want checkpoint %d, tail 5)", info, deposits)
	}
	if err := f3.db.Start(); err != nil {
		t.Fatal(err)
	}
	defer f3.db.Close()
	res, err = f3.db.Query(f3.totalQuery())
	if err != nil || res.Err != nil {
		t.Fatalf("query: %v %v", err, res.Err)
	}
	if want := float64(10*100 + deposits*5 + 5); res.Values[0] != want {
		t.Fatalf("total after checkpointed recovery = %v, want %v", res.Values[0], want)
	}
	// New work lands above the recovered watermark.
	if r := f3.db.Exec("deposit", depositArgs(1, 1)); r.Err != nil || r.CommitVID != deposits+5+1 {
		t.Fatalf("post-recovery exec: vid=%d err=%v", r.CommitVID, r.Err)
	}
}

func TestDataDirExclusiveWithWALPath(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(Config{DataDir: dir, WALPath: dir + "/x.log"}); err == nil {
		t.Fatal("Open accepted both WALPath and DataDir")
	}
}

func TestRecoverDataDirGuards(t *testing.T) {
	f := newFixture(t, Config{})
	if _, err := f.db.RecoverDataDir(); err == nil {
		t.Fatal("RecoverDataDir without DataDir succeeded")
	}
	f.db.Close()

	g := newFixture(t, Config{DataDir: t.TempDir(), CheckpointEveryVIDs: -1})
	g.load(t, 3)
	if _, err := g.db.Checkpoint(); err == nil {
		t.Fatal("Checkpoint before Start succeeded")
	}
	if err := g.db.Start(); err != nil {
		t.Fatal(err)
	}
	defer g.db.Close()
	if _, err := g.db.RecoverDataDir(); err == nil {
		t.Fatal("RecoverDataDir after Start succeeded")
	}
}
