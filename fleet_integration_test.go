package batchdb

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestFleetEndToEnd drives the public fleet API: ServeReplicas +
// ConnectFleet, routed queries under budgets, a kill drill mid-service,
// and the staleness-bound contract.
func TestFleetEndToEnd(t *testing.T) {
	f := newFixture(t, Config{PushPeriod: 10 * time.Millisecond})
	f.load(t, 100)
	if err := f.db.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.db.Close()
	addr, err := f.db.ServeReplicas("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	fl, err := ConnectFleet(addr, FleetConfig{
		Replicas: 2,
		Node: ReplicaNodeConfig{
			Partitions:     2,
			Workers:        2,
			ReconnectPause: 10 * time.Millisecond,
		},
		Router: RouterConfig{Deadline: 10 * time.Second},
	}, []ReplicaTable{{Schema: f.schema}})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	if got := len(fl.Nodes()); got != 2 {
		t.Fatalf("fleet size = %d, want 2", got)
	}

	res, meta, err := fl.Query(context.Background(), f.totalQuery(), FleetBudget{})
	if err != nil || res.Err != nil {
		t.Fatalf("routed query: %v / %v", err, res.Err)
	}
	if res.Values[0] != 100*100 {
		t.Fatalf("bootstrap total = %f", res.Values[0])
	}
	if meta.Backend < 0 || meta.Backend >= 2 || meta.Attempts < 1 {
		t.Fatalf("implausible routing meta: %+v", meta)
	}

	// Updates reach whichever member answers (every batch syncs first).
	for i := 0; i < 30; i++ {
		if r := f.db.Exec("deposit", depositArgs(uint64(i%100)+1, 2)); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	res, _, err = fl.Query(context.Background(), f.totalQuery(), FleetBudget{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0] != 100*100+30*2 {
		t.Fatalf("routed freshness broken: %f", res.Values[0])
	}

	// Kill drill: sever member 0's feed mid-service. The router keeps
	// answering — retry lands on the healthy member, and the killed one
	// reconnects and resyncs on its own.
	fl.Nodes()[0].KillConnection()
	for i := 0; i < 10; i++ {
		if _, _, err := fl.Query(context.Background(), f.totalQuery(), FleetBudget{}); err != nil {
			t.Fatalf("query %d after kill drill: %v", i, err)
		}
	}

	// An unsatisfiable bound under StaleReject is a typed rejection, not
	// a silently old answer (snapshots are always at least a little old).
	_, _, err = fl.Query(context.Background(), f.totalQuery(), FleetBudget{
		MaxStaleness: time.Nanosecond,
		StalePolicy:  StaleReject,
	})
	if !errors.Is(err, ErrFleetStalenessUnmet) {
		t.Fatalf("1ns StaleReject bound = %v, want ErrFleetStalenessUnmet", err)
	}
	// The same bound under StaleServe serves the freshest answer flagged.
	res, meta, err = fl.Query(context.Background(), f.totalQuery(), FleetBudget{
		MaxStaleness: time.Nanosecond,
		StalePolicy:  StaleServe,
	})
	if err != nil || res.Err != nil {
		t.Fatalf("StaleServe fallback: %v / %v", err, res.Err)
	}
	if !meta.Stale {
		t.Fatal("answer beyond the bound not flagged Stale")
	}

	st := fl.Stats()
	if st.Queries.Load() != st.Answered.Load()+st.Rejected.Load()+st.Shed.Load() {
		t.Fatalf("counter drift: queries %d != answered %d + rejected %d + shed %d",
			st.Queries.Load(), st.Answered.Load(), st.Rejected.Load(), st.Shed.Load())
	}
}

// TestReplicaNodeDegradedStaleness pins the degraded-answer contract of
// ISSUE 7: when a node's feed to the primary is down, answers still
// come — from the last consistent snapshot — but carry Degraded plus a
// snapshot VID and a wall-clock staleness that keeps growing, so a
// caller can always tell how old the data is.
func TestReplicaNodeDegradedStaleness(t *testing.T) {
	f := newFixture(t, Config{PushPeriod: 10 * time.Millisecond})
	f.load(t, 50)
	if err := f.db.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.db.Close()
	addr, err := f.db.ServeReplicas("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n, err := ConnectReplica(addr, ReplicaNodeConfig{
		Partitions:     2,
		Workers:        2,
		ReconnectPause: 10 * time.Millisecond,
	}, []ReplicaTable{{Schema: f.schema}})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	// Commit a transaction so the snapshot VID has advanced past the
	// bulk load (VID 0 would be indistinguishable from "no provenance").
	if r := f.db.Exec("deposit", depositArgs(1, 0)); r.Err != nil {
		t.Fatal(r.Err)
	}
	res, err := n.QueryContext(context.Background(), f.totalQuery())
	if err != nil || res.Err != nil {
		t.Fatalf("healthy query: %v / %v", err, res.Err)
	}
	if res.Degraded {
		t.Fatal("healthy answer marked Degraded")
	}
	if res.SnapshotVID == 0 {
		t.Fatal("healthy answer missing snapshot VID")
	}

	// Take the primary's replication listener away entirely, then sever
	// the node's connection: reconnects fail, so the node stays degraded.
	f.db.repLn.Close()
	n.KillConnection()
	deadline := time.Now().Add(10 * time.Second)
	for n.Status().Connected {
		if time.Now().After(deadline) {
			t.Fatal("node never observed the disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // let wall-clock staleness accrue

	res2, err := n.QueryContext(context.Background(), f.totalQuery())
	if err != nil || res2.Err != nil {
		t.Fatalf("degraded query: %v / %v", err, res2.Err)
	}
	if !res2.Degraded {
		t.Fatal("answer during outage not marked Degraded")
	}
	if res2.SnapshotVID == 0 || res2.SnapshotVID < res.SnapshotVID {
		t.Fatalf("degraded snapshot VID = %d, want >= %d", res2.SnapshotVID, res.SnapshotVID)
	}
	if res2.StalenessNanos < int64(40*time.Millisecond) {
		t.Fatalf("degraded staleness = %v, want to reflect the outage age",
			time.Duration(res2.StalenessNanos))
	}
	// The answer is stale but consistent: the last installed snapshot.
	if res2.Values[0] != 50*100 {
		t.Fatalf("degraded answer inconsistent: %f", res2.Values[0])
	}
	if st := n.Status(); st.CurrentOutage <= 0 {
		t.Fatalf("Status.CurrentOutage = %v during an outage", st.CurrentOutage)
	}
}
