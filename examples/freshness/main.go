// freshness measures BatchDB's data freshness: the time from a
// transaction's commit until an analytical query can observe its
// effects. Per the paper (§3.2), updates are pushed at the first batch
// boundary after the push period (200 ms default, configurable), or
// immediately when the OLAP dispatcher asks — so perceived freshness is
// dominated by query response time, not by replication lag.
//
//	go run ./examples/freshness
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"batchdb"
)

func main() {
	for _, push := range []time.Duration{200 * time.Millisecond, 20 * time.Millisecond} {
		lag := measure(push)
		fmt.Printf("push period %6s: commit-to-visible lag %v\n", push, lag)
	}
	fmt.Println("\nNote: the lag is bounded by the query batch turnaround, not the push")
	fmt.Println("period — the OLAP dispatcher forces a push when it starts a batch.")
}

func measure(pushPeriod time.Duration) time.Duration {
	db, err := batchdb.Open(batchdb.Config{PushPeriod: pushPeriod})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	schema := batchdb.NewSchema(1, "events", []batchdb.Column{
		{Name: "id", Type: batchdb.Int64},
		{Name: "v", Type: batchdb.Int64},
	}, []int{0})
	events, err := db.CreateTable(schema, func(tup []byte) uint64 {
		return uint64(schema.GetInt64(tup, 0))
	}, batchdb.TableOptions{Replicate: true})
	if err != nil {
		log.Fatal(err)
	}
	err = db.Register("append", func(tx *batchdb.Txn, args []byte) ([]byte, error) {
		tup := schema.NewTuple()
		schema.PutInt64(tup, 0, int64(binary.LittleEndian.Uint64(args)))
		schema.PutInt64(tup, 1, 1)
		_, err := tx.Insert(events.OLTP, tup)
		return nil, err
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Start(); err != nil {
		log.Fatal(err)
	}

	count := func() float64 {
		res, err := db.Query(&batchdb.Query{
			Name: "count", Driver: 1,
			Aggs: []batchdb.AggSpec{{Kind: batchdb.Count}},
		})
		if err != nil || res.Err != nil {
			log.Fatal(err, res.Err)
		}
		return res.Values[0]
	}

	// Commit events one at a time and measure how long until a query
	// sees each one.
	var total time.Duration
	const n = 50
	args := make([]byte, 8)
	for i := 1; i <= n; i++ {
		binary.LittleEndian.PutUint64(args, uint64(i))
		start := time.Now()
		if r := db.Exec("append", args); r.Err != nil {
			log.Fatal(r.Err)
		}
		for count() < float64(i) {
			// Query again: each call starts a new batch on the latest
			// snapshot, so at most one retry is ever needed.
		}
		total += time.Since(start)
	}
	return total / n
}
