// elastic_replicas demonstrates BatchDB's elasticity (paper §3.2, §6):
// a primary feeding multiple remote OLAP replicas over the network
// transport. Replicas attach at runtime — each bootstraps from a
// snapshot and then receives the same pushed update stream — and every
// replica answers analytical queries with the batch-at-a-time
// semantics of the local replica.
//
//	go run ./examples/elastic_replicas
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"batchdb"
)

func main() {
	db, err := batchdb.Open(batchdb.Config{PushPeriod: 20 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	schema := batchdb.NewSchema(1, "readings", []batchdb.Column{
		{Name: "id", Type: batchdb.Int64},
		{Name: "sensor", Type: batchdb.Int64},
		{Name: "value", Type: batchdb.Float64},
	}, []int{0})
	readings, err := db.CreateTable(schema, func(tup []byte) uint64 {
		return uint64(schema.GetInt64(tup, 0))
	}, batchdb.TableOptions{Replicate: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := db.Register("record", func(tx *batchdb.Txn, args []byte) ([]byte, error) {
		tup := schema.NewTuple()
		schema.PutInt64(tup, 0, int64(binary.LittleEndian.Uint64(args)))
		schema.PutInt64(tup, 1, int64(binary.LittleEndian.Uint64(args[8:])))
		schema.PutFloat64(tup, 2, float64(binary.LittleEndian.Uint64(args[16:]))/100)
		_, err := tx.Insert(readings.OLTP, tup)
		return nil, err
	}); err != nil {
		log.Fatal(err)
	}
	// Pre-load some history so the bootstrap snapshot is non-trivial.
	for i := int64(1); i <= 5000; i++ {
		tup := schema.NewTuple()
		schema.PutInt64(tup, 0, i)
		schema.PutInt64(tup, 1, i%16)
		schema.PutFloat64(tup, 2, float64(i%100))
		if _, err := readings.Load(tup); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Start(); err != nil {
		log.Fatal(err)
	}
	addr, err := db.ServeReplicas("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("primary serving replicas on %s\n", addr)

	// Attach three replica nodes at runtime; each bootstraps over the
	// (TCP-modeled RDMA) transport.
	var nodes []*batchdb.ReplicaNode
	for i := 0; i < 3; i++ {
		node, err := batchdb.ConnectReplica(addr, batchdb.ReplicaNodeConfig{Partitions: 4},
			[]batchdb.ReplicaTable{{Schema: schema, CapacityHint: 8192}})
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		nodes = append(nodes, node)
		fmt.Printf("replica %d attached and bootstrapped (%d rows)\n",
			i, node.Replica().Table(1).Live())
	}

	// Keep writing while the replicas serve queries.
	args := make([]byte, 24)
	for i := int64(5001); i <= 6000; i++ {
		binary.LittleEndian.PutUint64(args, uint64(i))
		binary.LittleEndian.PutUint64(args[8:], uint64(i%16))
		binary.LittleEndian.PutUint64(args[16:], uint64(i*3))
		if r := db.Exec("record", args); r.Err != nil {
			log.Fatal(r.Err)
		}
	}

	q := &batchdb.Query{
		Name: "count", Driver: 1,
		Aggs: []batchdb.AggSpec{{Kind: batchdb.Count}},
	}
	for i, node := range nodes {
		res, err := node.Query(q)
		if err != nil || res.Err != nil {
			log.Fatal(err, res.Err)
		}
		st := node.TransportStats()
		fmt.Printf("replica %d sees %0.f rows (transport: %d eager msgs, %d rendezvous msgs, %d buffers reused)\n",
			i, res.Values[0], st.EagerMsgs.Load(), st.RendezvousMsgs.Load(), st.BuffersReused.Load())
	}
	local, err := db.Query(q)
	if err != nil || local.Err != nil {
		log.Fatal(err, local.Err)
	}
	fmt.Printf("local replica sees %0.f rows\n", local.Values[0])

	// Fault drill: sever replica 0's connection mid-stream. The node
	// keeps serving its last consistent snapshot (degraded mode) while
	// the supervisor reconnects with backoff and resyncs from a fresh
	// snapshot; no update is lost and none is applied twice.
	victim := nodes[0]
	victim.KillConnection()
	for i := int64(6001); i <= 7000; i++ {
		binary.LittleEndian.PutUint64(args, uint64(i))
		binary.LittleEndian.PutUint64(args[8:], uint64(i%16))
		binary.LittleEndian.PutUint64(args[16:], uint64(i*3))
		if r := db.Exec("record", args); r.Err != nil {
			log.Fatal(r.Err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for victim.Replica().AppliedVID() < db.LatestVID() {
		if time.Now().After(deadline) {
			log.Fatal("replica 0 did not converge after reconnect")
		}
		if _, err := victim.Query(q); err != nil {
			log.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := victim.Status()
	res, err := victim.Query(q)
	if err != nil || res.Err != nil {
		log.Fatal(err, res.Err)
	}
	fmt.Printf("replica 0 recovered: %0.f rows, connected=%v, %d reconnects, %d resyncs, degraded %v\n",
		res.Values[0], st.Connected, st.Reconnects, st.Resyncs, st.Degraded.Round(time.Millisecond))
	fmt.Printf("primary: %d replicas served, %d active, %d disconnects\n",
		db.ReplicaServerStats().Served.Load(),
		db.ReplicaServerStats().Active.Load(),
		db.ReplicaServerStats().Disconnects.Load())
}
