// htap_isolation demonstrates the paper's headline property: running a
// heavy analytical workload next to TPC-C barely moves transactional
// throughput, because the two workloads execute on separate replicas
// and the OLAP replica applies updates only between query batches.
//
// The demo measures TPC-C throughput three ways: with no replication,
// with replication but idle analytics, and with replication plus
// saturating analytical clients — then prints the degradation.
//
//	go run ./examples/htap_isolation
package main

import (
	"fmt"
	"log"
	"time"

	"batchdb/internal/benchkit"
	"batchdb/internal/tpcc"
)

func main() {
	scale := tpcc.BenchScale(2)
	const dur = 2 * time.Second
	const warm = 500 * time.Millisecond

	run := func(name string, opts benchkit.HybridOpts) benchkit.HybridResult {
		opts.Scale = scale
		opts.OLTPWorkers = 4
		opts.OLAPWorkers = 4
		opts.Partitions = 8
		opts.Duration = dur
		opts.Warmup = warm
		opts.Seed = 7
		opts.ConstantSize = true
		r, err := benchkit.RunHybrid(opts)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		return r
	}

	fmt.Println("TPC-C throughput under increasing analytical pressure (constant-size DB):")
	noRep := run("norep", benchkit.HybridOpts{TxnClients: 8, NoRep: true})
	fmt.Printf("  %-34s %8.0f txn/s\n", "no replication (NoRep):", noRep.TxnPerSec)

	repIdle := run("idle", benchkit.HybridOpts{TxnClients: 8})
	fmt.Printf("  %-34s %8.0f txn/s  (%.0f%% of NoRep)\n",
		"replication on, analytics idle:", repIdle.TxnPerSec, 100*repIdle.TxnPerSec/noRep.TxnPerSec)

	hybrid := run("hybrid", benchkit.HybridOpts{TxnClients: 8, AnalyticalClients: 8})
	fmt.Printf("  %-34s %8.0f txn/s  (%.0f%% of NoRep)\n",
		"replication + 8 analytical clients:", hybrid.TxnPerSec, 100*hybrid.TxnPerSec/noRep.TxnPerSec)
	fmt.Printf("\nanalytical side during the hybrid run: %.0f queries/min "+
		"(p99 %.0f ms), %d update entries applied between batches\n",
		hybrid.QueriesPerMin, float64(hybrid.QueryP99)/1e6, hybrid.AppliedEntries)
	fmt.Println("\nThe paper's claim (Fig. 7d): propagation costs <=10% and concurrent")
	fmt.Println("analytics adds almost nothing, because queries never touch the primary.")
}
