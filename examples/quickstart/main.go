// Quickstart: define a table, register a stored procedure, run
// transactions and an analytical query through BatchDB's single system
// interface.
//
//	go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"batchdb"
)

func main() {
	db, err := batchdb.Open(batchdb.Config{OLTPWorkers: 2, OLAPWorkers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// One replicated table: accounts(id, balance, region).
	schema := batchdb.NewSchema(1, "accounts", []batchdb.Column{
		{Name: "id", Type: batchdb.Int64},
		{Name: "balance", Type: batchdb.Float64},
		{Name: "region", Type: batchdb.Int64},
	}, []int{0})
	accounts, err := db.CreateTable(schema, func(tup []byte) uint64 {
		return uint64(schema.GetInt64(tup, 0))
	}, batchdb.TableOptions{Replicate: true})
	if err != nil {
		log.Fatal(err)
	}

	// A stored procedure: deposit(id, amount). All inputs arrive in the
	// argument record, so the procedure is deterministic — that is what
	// makes BatchDB's command logging sufficient for recovery.
	err = db.Register("deposit", func(tx *batchdb.Txn, args []byte) ([]byte, error) {
		id := binary.LittleEndian.Uint64(args)
		amount := float64(int64(binary.LittleEndian.Uint64(args[8:]))) / 100
		return nil, tx.Update(accounts.OLTP, id, []int{1}, func(tup []byte) {
			schema.PutFloat64(tup, 1, schema.GetFloat64(tup, 1)+amount)
		})
	})
	if err != nil {
		log.Fatal(err)
	}

	// Initial load happens before Start (VID 0 state).
	for i := int64(1); i <= 1000; i++ {
		tup := schema.NewTuple()
		schema.PutInt64(tup, 0, i)
		schema.PutFloat64(tup, 1, 100)
		schema.PutInt64(tup, 2, i%5)
		if _, err := accounts.Load(tup); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Start(); err != nil {
		log.Fatal(err)
	}

	// OLTP path: deposits into region-0 accounts.
	args := make([]byte, 16)
	for i := 0; i < 200; i++ {
		binary.LittleEndian.PutUint64(args, uint64(i%1000)+1)
		binary.LittleEndian.PutUint64(args[8:], uint64(2500)) // 25.00
		if r := db.Exec("deposit", args); r.Err != nil {
			log.Fatal(r.Err)
		}
	}

	// OLAP path: SUM(balance) GROUP BY-style per-region query. The
	// query runs on the secondary replica, one batch at a time, on the
	// latest committed snapshot — the deposits above are visible.
	for region := int64(0); region < 5; region++ {
		region := region
		q := &batchdb.Query{
			Name:   fmt.Sprintf("region-%d", region),
			Driver: 1,
			DriverPred: func(tup []byte) bool {
				return schema.GetInt64(tup, 2) == region
			},
			Aggs: []batchdb.AggSpec{
				{Kind: batchdb.Sum, Value: func(tup []byte, _ [][]byte) float64 {
					return schema.GetFloat64(tup, 1)
				}},
				{Kind: batchdb.Count},
			},
		}
		res, err := db.Query(q)
		if err != nil || res.Err != nil {
			log.Fatal(err, res.Err)
		}
		fmt.Printf("region %d: %3.0f accounts, total balance %10.2f\n",
			region, res.Values[1], res.Values[0])
	}
	fmt.Printf("latest committed snapshot VID: %d\n", db.LatestVID())
}
