// Package batchdb is an in-memory database engine for hybrid OLTP +
// OLAP workloads, reproducing the design of "BatchDB: Efficient
// Isolated Execution of Hybrid OLTP+OLAP Workloads for Interactive
// Applications" (Makreshanski, Giceva, Barthels, Alonso — SIGMOD 2017).
//
// BatchDB keeps two workload-specialized replicas of the data: a
// primary MVCC row store executing stored-procedure transactions, and a
// secondary single-snapshot replica executing analytical queries one
// batch at a time. Transactions export a physical update log that is
// applied at the secondary replica between query batches, so analytical
// scans never synchronize with transaction processing — the source of
// the paper's performance-isolation results.
//
// The DB value is the paper's "single system interface": callers submit
// transactions with Exec and analytical queries with Query without
// addressing replicas explicitly.
//
//	db, _ := batchdb.Open(batchdb.Config{})
//	tbl, _ := db.CreateTable(schema, keyFn, batchdb.TableOptions{Replicate: true})
//	db.Register("transfer", transferProc)
//	db.Start()
//	res := db.Exec("transfer", args)        // OLTP path
//	out, _ := db.Query(analyticalQuery)     // OLAP path (batched)
package batchdb

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"batchdb/internal/checkpoint"
	"batchdb/internal/ingest"
	"batchdb/internal/metrics"
	"batchdb/internal/mvcc"
	"batchdb/internal/network"
	"batchdb/internal/obs"
	"batchdb/internal/olap"
	"batchdb/internal/olap/exec"
	"batchdb/internal/oltp"
	"batchdb/internal/replica"
	"batchdb/internal/resmodel"
	"batchdb/internal/storage"
)

// Re-exported building blocks, so the public API is self-contained.
type (
	// Column defines one attribute of a relation.
	Column = storage.Column
	// Schema is a relation's physical layout.
	Schema = storage.Schema
	// TableID identifies a relation.
	TableID = storage.TableID
	// KeyFunc packs a tuple's primary key into uint64.
	KeyFunc = storage.KeyFunc
	// Txn is the handle stored procedures use to read and write.
	Txn = mvcc.Txn
	// Procedure is a stored procedure: deterministic given (args,
	// snapshot); all randomness belongs in args.
	Procedure = oltp.Procedure
	// Response is a transaction's outcome.
	Response = oltp.Response
	// Query is an analytical query (scan + joins + aggregates).
	Query = exec.Query
	// Probe is one hash-join step of a Query.
	Probe = exec.Probe
	// AggSpec is one aggregate output of a Query.
	AggSpec = exec.AggSpec
	// Result is a Query's outcome.
	Result = exec.Result
	// DurabilityStats aggregates checkpoint/WAL/recovery counters.
	DurabilityStats = metrics.DurabilityStats
	// BulkReport summarizes a BulkLoad: rows, chunks, achieved rate,
	// and the SLO governor's baseline/bound/throttle telemetry.
	BulkReport = ingest.Report
)

// Column type constants.
const (
	Int64   = storage.Int64
	Int32   = storage.Int32
	Float64 = storage.Float64
	String  = storage.String
	Time    = storage.Time
)

// Aggregate kinds.
const (
	Sum   = exec.Sum
	Count = exec.Count
)

// NewSchema builds a relation schema; see storage.NewSchema.
func NewSchema(id TableID, name string, cols []Column, key []int) *Schema {
	return storage.NewSchema(id, name, cols, key)
}

// Errors re-exported for callers.
var (
	// ErrConflict is a retryable first-writer-wins abort.
	ErrConflict = mvcc.ErrConflict
	// ErrDuplicateKey reports an insert of an existing primary key.
	ErrDuplicateKey = mvcc.ErrDuplicateKey
	// ErrNotFound reports an update/delete of a missing row.
	ErrNotFound = mvcc.ErrNotFound
)

// Config parameterizes a BatchDB instance.
type Config struct {
	// OLTPWorkers is the transactional worker count (default 4).
	OLTPWorkers int
	// OLAPWorkers bounds analytical scan/build parallelism (default 4).
	OLAPWorkers int
	// MorselTuples is the slot-range size the executor carves partition
	// scans into for work-stealing dispatch (default 16384).
	MorselTuples int
	// Partitions is the OLAP replica's partition count per table
	// (default OLAPWorkers).
	Partitions int
	// PushPeriod bounds update-propagation staleness (default 200 ms,
	// the paper's setting).
	PushPeriod time.Duration
	// FieldSpecificUpdates propagates sub-tuple patches instead of
	// whole-tuple images (default true; paper Fig. 6 favours it).
	FieldSpecificUpdates *bool
	// WALPath enables durable command logging into a single log file
	// when non-empty (no checkpoints; recovery replays everything).
	// Mutually exclusive with DataDir.
	WALPath string
	// WALSync forces fsync per group commit.
	WALSync bool
	// DataDir enables the full durability subsystem when non-empty:
	// segmented WAL with rotation, background checkpoints, and
	// bounded-time crash recovery via RecoverDataDir. Mutually
	// exclusive with WALPath.
	DataDir string
	// CheckpointEveryVIDs checkpoints after this many commits (DataDir
	// mode; default 50000, negative disables the trigger).
	CheckpointEveryVIDs int64
	// CheckpointEveryWALBytes checkpoints after this many logged bytes
	// (DataDir mode; default 64 MiB, negative disables the trigger).
	CheckpointEveryWALBytes int64
	// WALSegmentBytes is the WAL segment rotation threshold (DataDir
	// mode; default 16 MiB).
	WALSegmentBytes int64
	// DisableReplication runs the primary alone (the paper's NoRep
	// configuration); Query returns an error.
	DisableReplication bool
	// DisableZoneMaps turns off the OLAP replica's per-block min/max
	// synopses; declarative query predicates are then evaluated
	// tuple-at-a-time with no morsel skipping. Default on, block size =
	// MorselTuples. Implies DisableCompression (encoded blocks ride on
	// the zone-map block structure).
	DisableZoneMaps bool
	// DisableCompression turns off the OLAP replica's per-block encoded
	// column vectors (dictionary / frame-of-reference / RLE) and the
	// executor's vectorized predicate kernels over them; predicates fall
	// back to tuple-at-a-time kernel evaluation. Default on.
	DisableCompression bool
	// MetricsAddr, when non-empty, serves the unified metrics registry
	// over HTTP (/metrics in Prometheus text format, /healthz) on this
	// address. Use "127.0.0.1:0" to pick a free port; MetricsAddr()
	// reports the bound address after Start.
	MetricsAddr string
	// IngestChunkRows is the bulk-load chunk size: one chunk is one
	// transaction, one WAL record, one unit of atomicity (default 1024).
	IngestChunkRows int
	// IngestSLOMultiplier bounds the interactive OLTP p99 during bulk
	// loads to this multiple of the unloaded baseline (default 1.5).
	IngestSLOMultiplier float64
	// IngestMaxChunksPerSec caps the admitted bulk-load chunk rate (and
	// is the fixed rate when the governor is disabled; 0 = unpaced).
	IngestMaxChunksPerSec float64
	// IngestBaselineP99 anchors the ingest SLO; zero auto-measures the
	// live interactive p99 before each load.
	IngestBaselineP99 time.Duration
	// DisableIngestGovernor runs bulk loads open-throttle.
	DisableIngestGovernor bool
}

// TableOptions controls a table's replication behaviour.
type TableOptions struct {
	// Replicate propagates the table's updates to the OLAP replica and
	// makes it queryable.
	Replicate bool
	// Analytical makes the table queryable without update propagation
	// (static dimension tables). Implied by Replicate.
	Analytical bool
	// CapacityHint sizes indexes and partitions.
	CapacityHint int
}

// Table is a handle to one relation.
type Table struct {
	// OLTP is the primary-replica table, usable inside procedures.
	OLTP *mvcc.Table
	id   TableID
	opts TableOptions
}

// ID returns the table's identifier.
func (t *Table) ID() TableID { return t.id }

// AddSecondary registers an ordered secondary index on the primary
// replica. Must precede data loading.
func (t *Table) AddSecondary(name string, fn mvcc.SecondaryKeyFunc) *mvcc.Secondary {
	return t.OLTP.AddSecondary(name, fn)
}

// Load installs a tuple as initial data (VID 0). Must precede Start.
func (t *Table) Load(tup []byte) (uint64, error) { return t.OLTP.LoadRow(tup) }

// DB is a BatchDB instance: the paper's single system interface over
// the two replicas.
type DB struct {
	cfg    Config
	store  *mvcc.Store
	engine *oltp.Engine
	rep    *olap.Replica
	execE  *exec.Engine
	sched  *olap.Scheduler[*Query, Result]

	tables  map[TableID]*Table
	order   []*Table
	started bool

	// dur is the booted durability state (DataDir mode): WAL segment
	// manager + checkpointer. Set by RecoverDataDir, or by Start for a
	// fresh directory.
	dur *checkpoint.State

	repLn  *network.Listener
	repSrv ReplicaServerStats
	// repMu guards repConns, the live replica connections, so Close can
	// sever them (a closed primary must look dead to its replicas, not
	// silently absorb their sync requests). repClosed marks the map
	// drained: connections the accept loop races in after that are
	// severed instead of registered.
	repMu     sync.Mutex
	repConns  map[*network.Conn]struct{}
	repPubs   map[*network.Conn]*replica.Publisher
	repClosed bool
	// wrSeq numbers attached workload replicas for metric labels.
	wrSeq int

	// reg is the unified metrics registry every subsystem registers its
	// counters into; metricsSrv is the optional HTTP exporter.
	reg        *obs.Registry
	metricsSrv *obs.Server
}

// Open creates an empty instance. Define tables, register procedures
// and load initial data, then call Start.
func Open(cfg Config) (*DB, error) {
	if cfg.OLTPWorkers <= 0 {
		cfg.OLTPWorkers = 4
	}
	if cfg.OLAPWorkers <= 0 {
		cfg.OLAPWorkers = 4
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = cfg.OLAPWorkers
	}
	if cfg.PushPeriod <= 0 {
		cfg.PushPeriod = 200 * time.Millisecond
	}
	if cfg.DataDir != "" && cfg.WALPath != "" {
		return nil, errors.New("batchdb: WALPath and DataDir are mutually exclusive")
	}
	if cfg.CheckpointEveryVIDs == 0 {
		cfg.CheckpointEveryVIDs = 50000
	}
	if cfg.CheckpointEveryWALBytes == 0 {
		cfg.CheckpointEveryWALBytes = 64 << 20
	}
	if cfg.WALSegmentBytes <= 0 {
		cfg.WALSegmentBytes = 16 << 20
	}
	db := &DB{
		cfg:    cfg,
		store:  mvcc.NewStore(),
		tables: make(map[TableID]*Table),
		reg:    obs.NewRegistry(),
	}
	return db, nil
}

// Store exposes the primary replica's storage engine (for integration
// with external tooling; normal use goes through Exec/Query).
func (db *DB) Store() *mvcc.Store { return db.store }

// CreateTable defines a relation. All DDL must precede Start.
func (db *DB) CreateTable(schema *Schema, keyFn KeyFunc, opts TableOptions) (*Table, error) {
	if db.started {
		return nil, errors.New("batchdb: CreateTable after Start")
	}
	if _, dup := db.tables[schema.ID]; dup {
		return nil, fmt.Errorf("batchdb: duplicate table id %d", schema.ID)
	}
	if opts.CapacityHint <= 0 {
		opts.CapacityHint = 1024
	}
	if opts.Replicate {
		opts.Analytical = true
	}
	t := &Table{
		OLTP: db.store.CreateTable(schema, keyFn, opts.CapacityHint),
		id:   schema.ID,
		opts: opts,
	}
	db.tables[schema.ID] = t
	db.order = append(db.order, t)
	return t, nil
}

// Register installs a stored procedure. Must precede Start.
func (db *DB) Register(name string, p Procedure) error {
	if db.started {
		return errors.New("batchdb: Register after Start")
	}
	if db.engine == nil {
		if err := db.buildEngine(); err != nil {
			return err
		}
	}
	db.engine.Register(name, p)
	return nil
}

func (db *DB) buildEngine() error {
	replicated := make(map[TableID]bool)
	for id, t := range db.tables {
		if t.opts.Replicate {
			replicated[id] = true
		}
	}
	fieldSpecific := true
	if db.cfg.FieldSpecificUpdates != nil {
		fieldSpecific = *db.cfg.FieldSpecificUpdates
	}
	e, err := oltp.New(db.store, oltp.Config{
		Workers:       db.cfg.OLTPWorkers,
		PushPeriod:    db.cfg.PushPeriod,
		Replicated:    replicated,
		FieldSpecific: fieldSpecific,
		WALPath:       db.cfg.WALPath,
		WALSync:       db.cfg.WALSync,
	})
	if err != nil {
		return err
	}
	// The bulk-ingest procedure is always installed so recovery replay
	// of logged ingest chunks finds it even if this run never bulk-loads.
	ingest.RegisterProc(e)
	db.engine = e
	return nil
}

// Recover replays a single-file command log written by a previous
// instance (legacy WALPath mode). Call after loading the identical
// initial data, before Start. DataDir instances use RecoverDataDir.
func (db *DB) Recover(walPath string) (int, error) {
	if db.started {
		return 0, errors.New("batchdb: Recover after Start")
	}
	if db.engine == nil {
		if err := db.buildEngine(); err != nil {
			return 0, err
		}
	}
	return oltp.RecoverEngine(db.engine, walPath)
}

// RecoveryInfo describes what a DataDir recovery did.
type RecoveryInfo struct {
	// CheckpointVID is the restored checkpoint (0 = recovered from the
	// seed + full log).
	CheckpointVID uint64
	// FellBack is true when the newest checkpoint failed verification
	// and an older recovery point was used.
	FellBack bool
	// Replayed counts WAL commands re-executed (only those with VID
	// above CheckpointVID — recovery cost is bounded by the WAL tail).
	Replayed int
	// ReplayTime is the wall time spent replaying.
	ReplayTime time.Duration
}

// NeedsSeed reports whether a DataDir instance must have its initial
// (VID 0) data loaded by the caller before recovery: true for a fresh
// directory or one without checkpoints (the log replays on top of the
// seed), false once a checkpoint exists (the checkpoint replaces the
// seed — loading it again is an error).
func (db *DB) NeedsSeed() (bool, error) {
	if db.cfg.DataDir == "" {
		return true, nil
	}
	has, err := checkpoint.DirHasCheckpoint(db.cfg.DataDir)
	return !has, err
}

// RecoverDataDir restores the newest valid checkpoint (if any) and
// replays the WAL tail above it. Call after CreateTable/Register (and
// after seed loading iff NeedsSeed), before Start.
func (db *DB) RecoverDataDir() (RecoveryInfo, error) {
	if db.started {
		return RecoveryInfo{}, errors.New("batchdb: RecoverDataDir after Start")
	}
	if db.cfg.DataDir == "" {
		return RecoveryInfo{}, errors.New("batchdb: RecoverDataDir requires Config.DataDir")
	}
	if db.dur != nil {
		return RecoveryInfo{}, errors.New("batchdb: RecoverDataDir called twice")
	}
	if db.engine == nil {
		if err := db.buildEngine(); err != nil {
			return RecoveryInfo{}, err
		}
	}
	st, info, err := checkpoint.Boot(db.engine, checkpoint.BootConfig{
		Dir:          db.cfg.DataDir,
		SegmentBytes: db.cfg.WALSegmentBytes,
		Sync:         db.cfg.WALSync,
	})
	if err != nil {
		return RecoveryInfo{}, err
	}
	db.dur = st
	return RecoveryInfo{
		CheckpointVID: info.CheckpointVID,
		FellBack:      info.FellBack,
		Replayed:      info.Replayed,
		ReplayTime:    info.ReplayTime,
	}, nil
}

// Checkpoint forces a checkpoint now (DataDir mode, after Start) and
// returns its VID.
func (db *DB) Checkpoint() (uint64, error) {
	if db.dur == nil || !db.started {
		return 0, errors.New("batchdb: Checkpoint requires a started DataDir instance")
	}
	info, err := db.dur.Checkpoint(db.engine)
	if err != nil {
		return 0, err
	}
	return info.VID, nil
}

// DurabilityStats returns checkpoint/WAL/recovery counters (nil without
// DataDir).
func (db *DB) DurabilityStats() *DurabilityStats {
	if db.dur == nil {
		return nil
	}
	return db.dur.Stats()
}

// Start bootstraps the OLAP replica from the loaded data and launches
// both dispatchers.
func (db *DB) Start() error {
	if db.started {
		return errors.New("batchdb: already started")
	}
	if db.engine == nil {
		if err := db.buildEngine(); err != nil {
			return err
		}
	}
	if db.cfg.DataDir != "" && db.dur == nil {
		// Fresh directories boot inline (recording the seed
		// fingerprint); existing state must go through RecoverDataDir
		// so the caller knows recovery happened.
		initialized, err := checkpoint.DirInitialized(db.cfg.DataDir)
		if err != nil {
			return err
		}
		if initialized {
			return errors.New("batchdb: DataDir holds existing state; call RecoverDataDir before Start")
		}
		st, _, err := checkpoint.Boot(db.engine, checkpoint.BootConfig{
			Dir:          db.cfg.DataDir,
			SegmentBytes: db.cfg.WALSegmentBytes,
			Sync:         db.cfg.WALSync,
		})
		if err != nil {
			return err
		}
		db.dur = st
	}
	if !db.cfg.DisableReplication {
		db.rep = olap.NewReplica(db.cfg.Partitions)
		if !db.cfg.DisableZoneMaps {
			// Enabled before the load so synopses build incrementally;
			// block size matches the executor's morsel size so block
			// verdicts map one-to-one onto scan morsels.
			mt := db.cfg.MorselTuples
			if mt <= 0 {
				mt = exec.DefaultMorselTuples
			}
			db.rep.EnableZoneMaps(mt)
			if !db.cfg.DisableCompression {
				db.rep.EnableCompression()
			}
		}
		var analytical []TableID
		for _, t := range db.order {
			if t.opts.Analytical {
				db.rep.CreateTable(t.OLTP.Schema, t.opts.CapacityHint)
				analytical = append(analytical, t.id)
			}
		}
		if _, err := replica.LoadLocal(db.rep, db.store, analytical); err != nil {
			return err
		}
		db.engine.SetSink(db.rep)
		db.rep.SetApplyWorkers(db.cfg.OLAPWorkers)
		db.execE = exec.NewEngine(db.rep, db.cfg.OLAPWorkers)
		if db.cfg.MorselTuples > 0 {
			db.execE.MorselTuples = db.cfg.MorselTuples
		}
		db.execE.DisableVectorized = db.cfg.DisableCompression || db.cfg.DisableZoneMaps
		db.sched = olap.NewScheduler[*Query, Result](db.rep, db.engine, db.execE.RunBatch)
		db.execE.AttachStats(db.sched.Stats())
		db.sched.Start()
	}
	db.engine.Start()
	if db.dur != nil {
		pol := checkpoint.Policy{}
		if db.cfg.CheckpointEveryVIDs > 0 {
			pol.EveryVIDs = uint64(db.cfg.CheckpointEveryVIDs)
		}
		if db.cfg.CheckpointEveryWALBytes > 0 {
			pol.EveryWALBytes = db.cfg.CheckpointEveryWALBytes
		}
		db.dur.StartRunner(db.engine, pol)
	}
	// Register every started subsystem into the unified registry; the
	// stats structs remain the live storage, the registry is the view.
	db.engine.RegisterMetrics(db.reg)
	if db.sched != nil {
		db.sched.RegisterMetrics(db.reg, obs.L("class", "online"))
	}
	if db.dur != nil {
		obs.RegisterDurability(db.reg, db.dur.Stats())
	}
	if db.cfg.MetricsAddr != "" {
		srv, err := obs.Serve(db.cfg.MetricsAddr, db.reg)
		if err != nil {
			return err
		}
		db.metricsSrv = srv
	}
	db.started = true
	return nil
}

// Metrics returns the instance's unified metrics registry. Callers may
// register their own instruments into it before or after Start.
func (db *DB) Metrics() *obs.Registry { return db.reg }

// MetricsAddr returns the bound address of the metrics HTTP endpoint
// ("" when Config.MetricsAddr was empty).
func (db *DB) MetricsAddr() string {
	if db.metricsSrv == nil {
		return ""
	}
	return db.metricsSrv.Addr()
}

// Exec submits one stored-procedure call (the OLTP path) and waits for
// its outcome. A Response with ErrConflict should be retried by the
// caller.
func (db *DB) Exec(proc string, args []byte) Response {
	if !db.started {
		return Response{Err: errors.New("batchdb: not started")}
	}
	return db.engine.Exec(proc, args)
}

// BulkLoad streams rows from src (ok=false ends the stream) into table
// through the governed bulk-ingest path: rows are grouped into chunks,
// each chunk commits atomically through the normal WAL/group-commit
// machinery (and propagates to the OLAP replica like any transaction),
// and an admission governor throttles the chunk rate to keep the
// interactive OLTP p99 within Config.IngestSLOMultiplier of its
// unloaded baseline. Returns when the stream is exhausted and every
// chunk is durably acknowledged; on error, the report still describes
// the durable prefix.
func (db *DB) BulkLoad(table TableID, src func() ([]byte, bool)) (BulkReport, error) {
	if !db.started {
		return BulkReport{}, errors.New("batchdb: not started")
	}
	if _, ok := db.tables[table]; !ok {
		return BulkReport{}, fmt.Errorf("batchdb: no table %d", table)
	}
	l := ingest.NewLoader(db.engine, table, ingest.Config{
		ChunkRows: db.cfg.IngestChunkRows,
		Governor: resmodel.GovernorConfig{
			BaselineP99:   db.cfg.IngestBaselineP99,
			SLOMultiplier: db.cfg.IngestSLOMultiplier,
			MaxRate:       db.cfg.IngestMaxChunksPerSec,
		},
		DisableGovernor: db.cfg.DisableIngestGovernor,
	})
	return l.Load(src)
}

// BulkLoadRows is BulkLoad over an in-memory row slice.
func (db *DB) BulkLoadRows(table TableID, rows [][]byte) (BulkReport, error) {
	return db.BulkLoad(table, ingest.SliceSource(rows))
}

// Query submits one analytical query (the OLAP path). The query joins
// the next batch; its result reflects the latest committed snapshot at
// batch start (paper §5).
func (db *DB) Query(q *Query) (Result, error) {
	if db.sched == nil {
		return Result{}, errors.New("batchdb: replication disabled or not started")
	}
	return db.sched.Query(q)
}

// LatestVID returns the primary's committed snapshot watermark.
func (db *DB) LatestVID() uint64 { return db.engine.LatestVID() }

// OLTPStats returns the transactional component's counters.
func (db *DB) OLTPStats() *oltp.Stats { return db.engine.Stats() }

// OLAPStats returns the analytical dispatcher's counters (nil when
// replication is disabled).
func (db *DB) OLAPStats() *olap.SchedulerStats {
	if db.sched == nil {
		return nil
	}
	return db.sched.Stats()
}

// Replica exposes the local OLAP replica (nil when disabled).
func (db *DB) Replica() *olap.Replica { return db.rep }

// Engine exposes the OLTP engine for benchmark harnesses.
func (db *DB) Engine() *oltp.Engine { return db.engine }

// Close stops dispatchers and closes the log. Replica connections are
// severed so remote nodes observe the shutdown (degraded mode +
// reconnect attempts) instead of syncing against a stopped engine.
func (db *DB) Close() error {
	if db.metricsSrv != nil {
		db.metricsSrv.Close()
		db.metricsSrv = nil
	}
	if db.repLn != nil {
		db.repLn.Close()
	}
	db.repMu.Lock()
	db.repClosed = true
	for conn := range db.repConns {
		conn.Close()
	}
	db.repMu.Unlock()
	if db.sched != nil {
		db.sched.Close()
	}
	if db.dur != nil {
		// Stop the checkpointer before the engine: a checkpoint in
		// flight rendezvouses with the dispatcher.
		db.dur.StopRunner()
	}
	if db.engine != nil {
		return db.engine.Close()
	}
	return nil
}
