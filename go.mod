module batchdb

go 1.22
