package crash

import (
	"errors"
	"testing"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Hit(WALFlush); err != nil {
		t.Fatal(err)
	}
	if k, err := in.HitWrite(WALFlush, 100); err != nil || k != 100 {
		t.Fatalf("HitWrite = (%d, %v)", k, err)
	}
	if in.Crashed() {
		t.Fatal("nil injector crashed")
	}
}

func TestFireOncePermanent(t *testing.T) {
	in := &Injector{}
	in.Arm(Plan{Point: CkptRename})
	if err := in.Hit(CkptSync); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
	if !errors.Is(in.Hit(CkptRename), ErrCrashed) {
		t.Fatal("armed point did not fire")
	}
	if !in.Crashed() {
		t.Fatal("not crashed after firing")
	}
	// Every later hit on any point fails: the process is dead.
	if !errors.Is(in.Hit(WALFlush), ErrCrashed) {
		t.Fatal("post-crash hit succeeded")
	}
	if k, err := in.HitWrite(WALFlush, 10); !errors.Is(err, ErrCrashed) || k != 0 {
		t.Fatalf("post-crash write = (%d, %v)", k, err)
	}
}

func TestCountdown(t *testing.T) {
	in := &Injector{}
	in.Arm(Plan{Point: WALFlush, Countdown: 3})
	for i := 0; i < 2; i++ {
		if _, err := in.HitWrite(WALFlush, 8); err != nil {
			t.Fatalf("hit %d fired early: %v", i, err)
		}
	}
	if _, err := in.HitWrite(WALFlush, 8); !errors.Is(err, ErrCrashed) {
		t.Fatal("third hit did not fire")
	}
}

func TestTornWritePrefix(t *testing.T) {
	in := &Injector{}
	in.Arm(Plan{Point: WALFlush, TearFrac: 0.5})
	k, err := in.HitWrite(WALFlush, 100)
	if !errors.Is(err, ErrCrashed) {
		t.Fatal("did not fire")
	}
	if k != 50 {
		t.Fatalf("torn prefix = %d, want 50", k)
	}
}
