// Package crash provides deterministic crash-point injection for
// BatchDB's durability layer (WAL segments, checkpoints, manifest
// updates).
//
// The durability code consults an Injector at named points ("after temp
// write", "before rename", "mid WAL append", ...). A test arms the
// injector with a Plan; when the armed point is reached the injector
// fires: the in-flight operation stops exactly as if the process had
// died there (optionally after a configurable prefix of the pending
// buffer reached the file, modelling a torn write), and every subsequent
// durability call fails with ErrCrashed so nothing else reaches disk.
// The recovery harness then reopens the same directory in a fresh
// instance, exactly like a restart after a real crash — the bytes on
// disk are precisely the bytes a dying process would have left behind.
//
// A nil *Injector is inert: every hook is safe to call on a nil receiver
// and never fires, so production paths need no conditional wiring.
package crash

import (
	"errors"
	"sync"
)

// ErrCrashed is returned by every durability hook once the injector has
// fired: the simulated process is dead and must not touch disk again.
var ErrCrashed = errors.New("crash: injected crash")

// Point names one crash site in the durability I/O layer.
type Point string

// Crash sites, in rough temporal order of a running instance. Write
// points (WALFlush, CkptWrite, ManifestWrite) honour Plan.TearFrac: a
// prefix of the pending buffer reaches the file before the crash.
const (
	WALFlush    Point = "wal.flush"    // writing a group-commit batch into the segment
	WALSync     Point = "wal.sync"     // batch written, before segment fsync
	WALRotate   Point = "wal.rotate"   // new segment created+synced, before dir fsync
	WALTruncate Point = "wal.truncate" // before unlinking a superseded segment

	CkptWrite   Point = "checkpoint.write"    // writing snapshot frames into the temp file
	CkptSync    Point = "checkpoint.sync"     // temp written, before temp fsync
	CkptRename  Point = "checkpoint.rename"   // temp durable, before atomic rename
	CkptDirSync Point = "checkpoint.dir-sync" // renamed, before parent dir fsync

	ManifestWrite   Point = "manifest.write"    // writing the manifest temp file
	ManifestRename  Point = "manifest.rename"   // manifest temp durable, before rename
	ManifestDirSync Point = "manifest.dir-sync" // renamed, before parent dir fsync
)

// Points lists every crash site; the recovery harness iterates it to
// build its injection matrix.
var Points = []Point{
	WALFlush, WALSync, WALRotate, WALTruncate,
	CkptWrite, CkptSync, CkptRename, CkptDirSync,
	ManifestWrite, ManifestRename, ManifestDirSync,
}

// Plan says when and how to crash.
type Plan struct {
	// Point is the crash site to fire at.
	Point Point
	// Countdown fires on the Nth hit of Point (0 and 1 both mean the
	// first hit).
	Countdown int
	// TearFrac applies at write points: the fraction of the in-flight
	// buffer that reaches the file before the crash (0 = nothing, 0.5 =
	// a half-written torn tail). Ignored at non-write points.
	TearFrac float64
}

// Injector is a concurrency-safe crash hook shared by every durability
// writer of one instance (WAL manager, checkpointer, manifest updates).
type Injector struct {
	mu      sync.Mutex
	plan    Plan
	armed   bool
	crashed bool
}

// Arm schedules a crash. Re-arming replaces any previous plan; arming a
// crashed injector has no effect (the process is already dead).
func (in *Injector) Arm(p Plan) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if p.Countdown < 1 {
		p.Countdown = 1
	}
	in.plan = p
	in.armed = true
}

// Crashed reports whether the injector has fired.
func (in *Injector) Crashed() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// Hit is called at non-write crash points. It returns ErrCrashed when
// the injector fires here (or already fired earlier), nil otherwise.
func (in *Injector) Hit(p Point) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return ErrCrashed
	}
	if in.armed && in.plan.Point == p {
		in.plan.Countdown--
		if in.plan.Countdown <= 0 {
			in.crashed = true
			in.armed = false
			return ErrCrashed
		}
	}
	return nil
}

// HitWrite is called at write points before writing an n-byte buffer.
// Normally it returns (n, nil): write everything. When the injector
// fires it returns (k, ErrCrashed) with k = TearFrac*n: the caller must
// write exactly the first k bytes (the torn prefix a dying process left
// behind) and then stop.
func (in *Injector) HitWrite(p Point, n int) (int, error) {
	if in == nil {
		return n, nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return 0, ErrCrashed
	}
	if in.armed && in.plan.Point == p {
		in.plan.Countdown--
		if in.plan.Countdown <= 0 {
			in.crashed = true
			in.armed = false
			k := int(in.plan.TearFrac * float64(n))
			if k < 0 {
				k = 0
			}
			if k > n {
				k = n
			}
			return k, ErrCrashed
		}
	}
	return n, nil
}
