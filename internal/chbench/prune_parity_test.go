package chbench

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"batchdb/internal/mvcc"
	"batchdb/internal/olap"
	"batchdb/internal/olap/exec"
	"batchdb/internal/oltp"
	"batchdb/internal/tpcc"
)

// TestPruningParityAcrossWorkers proves zone-map morsel skipping never
// changes results: every CH query must return identical rows and
// aggregates with pruning on and off, at 1, 4 and NumCPU workers. The
// replica's synopses are exercised in both lifecycle states — freshly
// activated (exact scan at activation) and incrementally maintained
// through a TPC-C update burst (inserts, field patches and deletes,
// then ResummarizeDirty inside ApplyPending).
func TestPruningParityAcrossWorkers(t *testing.T) {
	db := tpcc.NewDB(tpcc.SmallScale(2))
	if err := tpcc.Generate(db, 33); err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplica(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	const morsel = 512 // small blocks: many verdicts per partition
	rep.EnableZoneMaps(morsel)
	// Encoded vectors ride along: the pruning-on engines below also
	// vectorize, so this parity run covers compressed execution too
	// (the DisablePruning reference stays tuple-at-a-time on raw rows).
	rep.EnableCompression()

	e, err := oltp.New(db.Store, oltp.Config{
		Workers: 2, PushPeriod: time.Hour,
		Replicated: tpcc.ReplicatedTables(), FieldSpecific: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tpcc.RegisterProcs(e, db, true) // constant-size: deletes flow too
	e.SetSink(rep)
	e.Start()
	defer e.Close()

	g := NewGen(db.Schemas, 5)
	batch := make([]*exec.Query, len(QueryNames))
	for i, name := range QueryNames {
		batch[i] = g.ByName(name)
	}
	// The initial TPC-C layout interleaves districts within every slot
	// block, so the random CH parameters rarely disprove whole blocks at
	// this scale. Add one query whose pushed-down predicate selects only
	// orders past the initial per-district o_id range: before the update
	// burst it prunes every block, afterwards only the blocks holding
	// freshly inserted order lines survive.
	tailO := int64(db.Scale.InitialOrdersPerDistrict) + 1
	ols := db.Schemas.OrderLine
	batch = append(batch, &exec.Query{
		Name:   "tailOrders",
		Driver: tpcc.TOrderLine,
		Where:  []exec.Pred{exec.CmpInt(tpcc.OLOID, exec.GE, tailO)},
		Aggs: []exec.AggSpec{
			{Kind: exec.Count},
			{Kind: exec.Sum, Value: func(d []byte, _ [][]byte) float64 {
				return float64(ols.GetInt64(d, tpcc.OLQuantity))
			}},
		},
	})

	// Registration pass: compiling the batch with pruning enabled
	// records per-column synopsis interest; ActivateSynopses then
	// materializes the bounds as the scheduler's apply prologue would.
	reg := exec.NewEngine(rep, 2)
	reg.MorselTuples = morsel
	reg.RunBatch(batch, 0)
	rep.ActivateSynopses()

	compare := func(label string, want, got []exec.Result, qs []*exec.Query) {
		t.Helper()
		for i, q := range qs {
			if want[i].Err != nil || got[i].Err != nil {
				t.Fatalf("%s %s: errs %v %v", label, q.Name, want[i].Err, got[i].Err)
			}
			if got[i].Rows != want[i].Rows {
				t.Fatalf("%s %s: rows %d (pruned) != %d (unpruned)",
					label, q.Name, got[i].Rows, want[i].Rows)
			}
			for j := range want[i].Values {
				if !parityClose(got[i].Values[j], want[i].Values[j]) {
					t.Fatalf("%s %s agg %d: %f != %f",
						label, q.Name, j, got[i].Values[j], want[i].Values[j])
				}
			}
		}
	}

	check := func(stage string, qs []*exec.Query, covered uint64) {
		t.Helper()
		ref := exec.NewEngine(rep, 1)
		ref.MorselTuples = morsel
		ref.DisablePruning = true

		// Full shared batch: a morsel is only skipped when every
		// interested query disproves it, so this mostly exercises the
		// per-query verdicts that gate tuple offers inside scanned
		// morsels.
		wantBatch := ref.RunBatch(qs, covered)
		for _, w := range []int{1, 4, runtime.NumCPU()} {
			pr := exec.NewEngine(rep, w)
			pr.MorselTuples = morsel
			compare(fmt.Sprintf("%s batch workers=%d", stage, w),
				wantBatch, pr.RunBatch(qs, covered), qs)
		}

		// Single-query batches: here a query's own pushed-down
		// predicates decide each morsel alone, so whole-morsel skipping
		// engages. Require it to actually fire somewhere, or the parity
		// claim is vacuous.
		var skipped uint64
		for _, w := range []int{1, 4, runtime.NumCPU()} {
			pr := exec.NewEngine(rep, w)
			pr.MorselTuples = morsel
			var st olap.SchedulerStats
			pr.AttachStats(&st)
			for _, q := range qs {
				one := []*exec.Query{q}
				compare(fmt.Sprintf("%s single workers=%d", stage, w),
					ref.RunBatch(one, covered), pr.RunBatch(one, covered), one)
			}
			skipped += st.ExecBlocksSkipped.Load()
		}
		if skipped == 0 {
			t.Fatalf("%s: no morsels skipped across any single-query run — parity check is vacuous", stage)
		}
	}

	check("activated", batch, 0)

	// Update burst, then parity again on the maintained synopses.
	drv := tpcc.NewDriver(db.Scale, 5)
	for i := 0; i < 500; i++ {
		proc, args := drv.Next()
		for {
			r := e.Exec(proc, args)
			if r.Err == nil || errors.Is(r.Err, tpcc.ErrRollback) {
				break
			}
			if !errors.Is(r.Err, mvcc.ErrConflict) {
				t.Fatalf("%s: %v", proc, r.Err)
			}
		}
	}
	covered := e.SyncUpdates()
	if _, err := rep.ApplyPending(covered); err != nil {
		t.Fatal(err)
	}

	// The constant-size burst recycles tombstoned slots, so by now every
	// block has admitted some post-initial o_id and tailOrders no longer
	// prunes. Target the very newest order instead: only the few blocks
	// holding its lines can survive the synopsis test.
	var maxOID int64
	for _, p := range rep.Table(tpcc.TOrderLine).Partitions {
		p.Scan(func(_ uint64, tup []byte) bool {
			if v := ols.GetInt64(tup, tpcc.OLOID); v > maxOID {
				maxOID = v
			}
			return true
		})
	}
	maintained := append(batch, &exec.Query{
		Name:   "newestOrders",
		Driver: tpcc.TOrderLine,
		Where:  []exec.Pred{exec.CmpInt(tpcc.OLOID, exec.GE, maxOID)},
		Aggs:   []exec.AggSpec{{Kind: exec.Count}},
	})
	check("maintained", maintained, covered)
}
