package chbench

import (
	"batchdb/internal/olap"
	"batchdb/internal/replica"
	"batchdb/internal/tpcc"
)

// NewReplica creates an OLAP replica with the CH-benCHmark tables,
// bootstrapped from the primary's current committed state. parts is the
// partition count (paper: one per OLAP worker core).
func NewReplica(db *tpcc.DB, parts int) (*olap.Replica, error) {
	rep := EmptyReplica(db, parts)
	if _, err := replica.LoadLocal(rep, db.Store, Tables()); err != nil {
		return nil, err
	}
	return rep, nil
}

// EmptyReplica creates the CH table set without loading data (for
// remote bootstrap via replica.ShipSnapshot). The replicated (dynamic)
// tables maintain incremental PK indexes so join probes into them never
// require a per-batch hash-join build.
func EmptyReplica(db *tpcc.DB, parts int) *olap.Replica {
	rep := olap.NewReplica(parts)
	sc := db.Scale
	s := db.Schemas
	rowHint := sc.Warehouses * sc.DistrictsPerWarehouse * sc.InitialOrdersPerDistrict
	stock := rep.CreateTable(s.Stock, sc.Warehouses*sc.Items)
	stock.SetPK(func(t []byte) uint64 {
		return tpcc.StockKey(s.Stock.GetInt64(t, tpcc.SWID), s.Stock.GetInt64(t, tpcc.SIID))
	}, sc.Warehouses*sc.Items)
	cust := rep.CreateTable(s.Customer, sc.Warehouses*sc.DistrictsPerWarehouse*sc.CustomersPerDistrict)
	cust.SetPK(func(t []byte) uint64 {
		return tpcc.CustomerKey(s.Customer.GetInt64(t, tpcc.CWID), s.Customer.GetInt64(t, tpcc.CDID), s.Customer.GetInt64(t, tpcc.CID))
	}, sc.Warehouses*sc.DistrictsPerWarehouse*sc.CustomersPerDistrict)
	ord := rep.CreateTable(s.Order, rowHint)
	ord.SetPK(func(t []byte) uint64 {
		return tpcc.OrderKey(s.Order.GetInt64(t, tpcc.OWID), s.Order.GetInt64(t, tpcc.ODID), s.Order.GetInt64(t, tpcc.OID))
	}, rowHint)
	ol := rep.CreateTable(s.OrderLine, rowHint*10)
	ol.SetPK(func(t []byte) uint64 {
		return tpcc.OrderLineKey(s.OrderLine.GetInt64(t, tpcc.OLWID), s.OrderLine.GetInt64(t, tpcc.OLDID),
			s.OrderLine.GetInt64(t, tpcc.OLOID), s.OrderLine.GetInt64(t, tpcc.OLNumber))
	}, rowHint*10)
	rep.CreateTable(s.Item, sc.Items)
	rep.CreateTable(s.Supplier, tpcc.NumSuppliers)
	rep.CreateTable(s.Nation, tpcc.NumNations)
	rep.CreateTable(s.Region, tpcc.NumRegions)
	return rep
}
