package chbench

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"batchdb/internal/mvcc"
	"batchdb/internal/olap"
	"batchdb/internal/olap/exec"
	"batchdb/internal/oltp"
	"batchdb/internal/tpcc"
)

// TestCompressionParityAcrossWorkers proves the compressed-block
// predicate kernels never change results: every CH query must return
// identical rows and aggregates with vectorized execution on and off,
// at 1, 4 and NumCPU workers, on a replica whose encoded vectors are
// exercised in both lifecycle states — freshly built at activation and
// re-encoded through a TPC-C update burst (inserts, field patches and
// deletes with slot recycling, then ReencodeDirty inside ApplyPending).
// Both engines read the same raw rows for survivors; what differs is
// who evaluates the declarative predicate — encoded-domain kernels vs
// per-tuple comparisons — so any divergence is a kernel bug.
func TestCompressionParityAcrossWorkers(t *testing.T) {
	db := tpcc.NewDB(tpcc.SmallScale(2))
	if err := tpcc.Generate(db, 41); err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplica(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	const morsel = 512 // block == morsel: every scanned morsel can vectorize
	rep.EnableZoneMaps(morsel)
	rep.EnableCompression()

	e, err := oltp.New(db.Store, oltp.Config{
		Workers: 2, PushPeriod: time.Hour,
		Replicated: tpcc.ReplicatedTables(), FieldSpecific: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tpcc.RegisterProcs(e, db, true) // constant-size: deletes flow too
	e.SetSink(rep)
	e.Start()
	defer e.Close()

	g := NewGen(db.Schemas, 11)
	batch := make([]*exec.Query, len(QueryNames))
	for i, name := range QueryNames {
		batch[i] = g.ByName(name)
	}
	// Queries zone maps cannot prune are where the vectors do all the
	// work: an equality and an IN-set on ol_quantity (1..10, present in
	// every block, so RangeMayMatch never disproves a block but the
	// bitmap kernels decide every tuple).
	ols := db.Schemas.OrderLine
	sumQty := exec.AggSpec{Kind: exec.Sum, Value: func(d []byte, _ [][]byte) float64 {
		return float64(ols.GetInt64(d, tpcc.OLQuantity))
	}}
	batch = append(batch,
		&exec.Query{
			Name:   "qtyEq",
			Driver: tpcc.TOrderLine,
			Where:  []exec.Pred{exec.CmpInt(tpcc.OLQuantity, exec.EQ, 5)},
			Aggs:   []exec.AggSpec{{Kind: exec.Count}, sumQty},
		},
		&exec.Query{
			Name:   "qtyIn",
			Driver: tpcc.TOrderLine,
			Where:  []exec.Pred{exec.InInt(tpcc.OLQuantity, 9, 2, 7)}, // unsorted: inPred must sort
			Aggs:   []exec.AggSpec{{Kind: exec.Count}, sumQty},
		})

	// Registration pass: record synopsis interest, then activate and
	// encode in one quiesced sweep (as the scheduler's apply prologue
	// would).
	reg := exec.NewEngine(rep, 2)
	reg.MorselTuples = morsel
	reg.RunBatch(batch, 0)
	rep.ActivateSynopses()

	compare := func(label string, want, got []exec.Result, qs []*exec.Query) {
		t.Helper()
		for i, q := range qs {
			if want[i].Err != nil || got[i].Err != nil {
				t.Fatalf("%s %s: errs %v %v", label, q.Name, want[i].Err, got[i].Err)
			}
			if got[i].Rows != want[i].Rows {
				t.Fatalf("%s %s: rows %d (vectorized) != %d (tuple-at-a-time)",
					label, q.Name, got[i].Rows, want[i].Rows)
			}
			for j := range want[i].Values {
				if !parityClose(got[i].Values[j], want[i].Values[j]) {
					t.Fatalf("%s %s agg %d: %f != %f",
						label, q.Name, j, got[i].Values[j], want[i].Values[j])
				}
			}
		}
	}

	check := func(stage string, qs []*exec.Query, covered uint64) {
		t.Helper()
		ref := exec.NewEngine(rep, 1)
		ref.MorselTuples = morsel
		ref.DisableVectorized = true

		var vectorized uint64
		for _, w := range []int{1, 4, runtime.NumCPU()} {
			vec := exec.NewEngine(rep, w)
			vec.MorselTuples = morsel
			var st olap.SchedulerStats
			vec.AttachStats(&st)
			compare(fmt.Sprintf("%s batch workers=%d", stage, w),
				ref.RunBatch(qs, covered), vec.RunBatch(qs, covered), qs)
			for _, q := range qs {
				one := []*exec.Query{q}
				compare(fmt.Sprintf("%s single workers=%d", stage, w),
					ref.RunBatch(one, covered), vec.RunBatch(one, covered), one)
			}
			vectorized += st.ExecBlocksVectorized.Load()
		}
		if vectorized == 0 {
			t.Fatalf("%s: no morsels vectorized — parity check is vacuous", stage)
		}
	}

	check("activated", batch, 0)

	// Update burst with deletes and slot recycling, then parity on the
	// re-encoded vectors.
	drv := tpcc.NewDriver(db.Scale, 11)
	for i := 0; i < 500; i++ {
		proc, args := drv.Next()
		for {
			r := e.Exec(proc, args)
			if r.Err == nil || errors.Is(r.Err, tpcc.ErrRollback) {
				break
			}
			if !errors.Is(r.Err, mvcc.ErrConflict) {
				t.Fatalf("%s: %v", proc, r.Err)
			}
		}
	}
	covered := e.SyncUpdates()
	if _, err := rep.ApplyPending(covered); err != nil {
		t.Fatal(err)
	}
	check("maintained", batch, covered)
}
