package chbench

import (
	"errors"
	"testing"
	"time"

	"batchdb/internal/mvcc"
	"batchdb/internal/olap"
	"batchdb/internal/olap/exec"
	"batchdb/internal/oltp"
	"batchdb/internal/tpcc"
)

func fixture(t *testing.T) (*tpcc.DB, *olap.Replica, *exec.Engine) {
	t.Helper()
	db := tpcc.NewDB(tpcc.SmallScale(2))
	if err := tpcc.Generate(db, 21); err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplica(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	return db, rep, exec.NewEngine(rep, 2)
}

func TestReplicaBootstrapCounts(t *testing.T) {
	db, rep, _ := fixture(t)
	sc := db.Scale
	if got := rep.Table(tpcc.TStock).Live(); got != sc.Warehouses*sc.Items {
		t.Errorf("stock rows = %d", got)
	}
	if got := rep.Table(tpcc.TOrder).Live(); got != sc.Warehouses*sc.DistrictsPerWarehouse*sc.InitialOrdersPerDistrict {
		t.Errorf("order rows = %d", got)
	}
	if got := rep.Table(tpcc.TNation).Live(); got != tpcc.NumNations {
		t.Errorf("nation rows = %d", got)
	}
}

// Every query must execute without error and produce a finite result;
// scan-heavy queries must see plausible row counts.
func TestAllQueriesRun(t *testing.T) {
	_, _, eng := fixture(t)
	g := NewGen(tpcc.NewSchemas(), 3)
	for _, name := range QueryNames {
		q := g.ByName(name)
		res := eng.RunBatch([]*exec.Query{q}, 0)
		if res[0].Err != nil {
			t.Errorf("%s: %v", name, res[0].Err)
			continue
		}
		for i, v := range res[0].Values {
			if v != v || v < 0 {
				t.Errorf("%s agg %d = %f", name, i, v)
			}
		}
	}
}

// Q10 (pure scan, date filter over everything) must equal a hand
// computation over the replica.
func TestQ10MatchesHandComputation(t *testing.T) {
	db, rep, eng := fixture(t)
	g := NewGen(db.Schemas, 5)
	q := g.ByName("Q10")
	res := eng.RunBatch([]*exec.Query{q}, 0)
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	// Recompute with the same predicate (Q10's filter is declarative
	// now; DriverFilter compiles it the same way the engine does).
	pred, err := q.DriverFilter(db.Schemas.OrderLine)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	ols := db.Schemas.OrderLine
	for _, p := range rep.Table(tpcc.TOrderLine).Partitions {
		p.Scan(func(_ uint64, tup []byte) bool {
			if pred(tup) {
				want += ols.GetFloat64(tup, tpcc.OLAmount)
			}
			return true
		})
	}
	if d := res[0].Values[0] - want; d > 1e-3 || d < -1e-3 {
		t.Fatalf("Q10 = %f, want %f", res[0].Values[0], want)
	}
	if res[0].Rows == 0 {
		t.Fatal("Q10 matched no rows; date domain broken")
	}
}

// Q3's nation filter must partition the total: summing over all nations
// equals the unfiltered join total.
func TestQ3PartitionsByNation(t *testing.T) {
	db, rep, eng := fixture(t)
	g := NewGen(db.Schemas, 5)
	// Unfiltered total: order lines joined to orders and customer
	// (every line has both).
	total := 0.0
	ols := db.Schemas.OrderLine
	for _, p := range rep.Table(tpcc.TOrderLine).Partitions {
		p.Scan(func(_ uint64, tup []byte) bool {
			total += ols.GetFloat64(tup, tpcc.OLAmount)
			return true
		})
	}
	var sum float64
	var queries []*exec.Query
	for n := 0; n < tpcc.NumNations; n++ {
		q := g.ByName("Q3")
		// Rebind the nation predicate deterministically.
		nName := nationName(n)
		ns := db.Schemas.Nation
		q.Probes[2].Pred = func(t []byte) bool { return ns.GetString(t, tpcc.NName) == nName }
		queries = append(queries, q)
	}
	results := eng.RunBatch(queries, 0)
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		sum += r.Values[0]
	}
	if diff := sum - total; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("sum over nations %f != total %f", sum, total)
	}
}

func nationName(n int) string {
	g := tpcc.NewSchemas()
	_ = g
	if n < 10 {
		return "NATION_0" + string(rune('0'+n))
	}
	return "NATION_" + string(rune('0'+n/10)) + string(rune('0'+n%10))
}

// End to end: hybrid pipeline — TPC-C updates flow to the replica and
// change analytical results.
func TestHybridFreshness(t *testing.T) {
	db, rep, eng := fixture(t)
	e, err := oltp.New(db.Store, oltp.Config{
		Workers: 2, PushPeriod: time.Hour,
		Replicated:    tpcc.ReplicatedTables(),
		FieldSpecific: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tpcc.RegisterProcs(e, db, false)
	e.SetSink(rep)
	e.Start()
	defer e.Close()

	g := NewGen(db.Schemas, 9)
	q := g.ByName("Q10")
	before := eng.RunBatch([]*exec.Query{q}, 0)[0]

	// Push new orders through and deliver them so Q10's delivery-date
	// filter sees them.
	drv := tpcc.NewDriver(db.Scale, 17)
	for i := 0; i < 50; i++ {
		a := drv.NewOrder()
		for {
			r := e.Exec(tpcc.ProcNewOrder, a.Encode())
			if r.Err == nil || errors.Is(r.Err, tpcc.ErrRollback) {
				break
			}
			if !errors.Is(r.Err, mvcc.ErrConflict) {
				t.Fatal(r.Err)
			}
		}
	}
	for w := int64(1); w <= int64(db.Scale.Warehouses); w++ {
		for i := 0; i < 30; i++ {
			d := &tpcc.DeliveryArgs{WID: w, CarrierID: 1, Date: time.Now().UnixNano()}
			r := e.Exec(tpcc.ProcDelivery, d.Encode())
			if r.Err != nil && !errors.Is(r.Err, mvcc.ErrConflict) {
				t.Fatal(r.Err)
			}
		}
	}
	covered := e.SyncUpdates()
	if _, err := rep.ApplyPending(covered); err != nil {
		t.Fatal(err)
	}
	after := eng.RunBatch([]*exec.Query{q}, 0)[0]
	if after.Values[0] <= before.Values[0] {
		t.Fatalf("Q10 did not grow with fresh deliveries: %f -> %f", before.Values[0], after.Values[0])
	}
}

// Full-stack scheduler test: analytical queries via the OLAP dispatcher
// against a live OLTP feed.
func TestSchedulerEndToEnd(t *testing.T) {
	db, rep, eng := fixture(t)
	e, err := oltp.New(db.Store, oltp.Config{
		Workers: 2, PushPeriod: 50 * time.Millisecond,
		Replicated: tpcc.ReplicatedTables(), FieldSpecific: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tpcc.RegisterProcs(e, db, false)
	e.SetSink(rep)
	e.Start()
	defer e.Close()

	sched := olap.NewScheduler(rep, e, eng.RunBatch)
	sched.Start()
	defer sched.Close()

	g := NewGen(db.Schemas, 33)
	drv := tpcc.NewDriver(db.Scale, 44)
	for i := 0; i < 100; i++ {
		proc, args := drv.Next()
		r := e.Exec(proc, args)
		if r.Err != nil && !errors.Is(r.Err, tpcc.ErrRollback) && !errors.Is(r.Err, mvcc.ErrConflict) {
			t.Fatal(r.Err)
		}
	}
	for i := 0; i < 5; i++ {
		res, err := sched.Query(g.Next())
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil {
			t.Fatalf("%s: %v", res.Query.Name, res.Err)
		}
	}
	if rep.AppliedVID() == 0 {
		t.Fatal("scheduler never applied updates")
	}
}
