// Package chbench implements the analytical half of the CH-benCHmark as
// modified by the paper (§8.1 and Appendix A): TPC-H-inspired queries
// rewritten against the TPC-C schema, restricted to scan + equi-join +
// aggregate, with randomized predicates so the shared-execution engine
// is not unduly favoured by duplicate work.
//
// The queries used are Q2, Q3, Q5, Q7, Q8, Q9, Q10, Q11, Q12, Q14, Q16,
// Q17, Q19 and Q20, exactly the set of Listing 1. One domain adaptation:
// the paper randomizes [DATE] over 1993–1997 because TPC-H data lives
// there; our generated order dates cluster around the generator's load
// epoch, so [DATE] is randomized over a window covering that epoch —
// same selectivity role, shifted domain (documented in DESIGN.md).
package chbench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"batchdb/internal/olap/exec"
	"batchdb/internal/storage"
	"batchdb/internal/tpcc"
)

// Tables used by the analytical workload (must exist in the OLAP
// replica). Stock, Customer, Order and OrderLine receive propagated
// updates; Item, Supplier, Nation and Region are static dimensions.
func Tables() []storage.TableID {
	return []storage.TableID{
		tpcc.TStock, tpcc.TCustomer, tpcc.TOrder, tpcc.TOrderLine,
		tpcc.TItem, tpcc.TSupplier, tpcc.TNation, tpcc.TRegion,
	}
}

// Gen builds randomized query instances, one driver per analytical
// client (not safe for concurrent use).
type Gen struct {
	s   *tpcc.Schemas
	rng *rand.Rand
}

// NewGen creates a query generator over the CH schema set.
func NewGen(s *tpcc.Schemas, seed int64) *Gen {
	return &Gen{s: s, rng: rand.New(rand.NewSource(seed))}
}

// QueryNames lists the implemented queries.
var QueryNames = []string{
	"Q2", "Q3", "Q5", "Q7", "Q8", "Q9", "Q10", "Q11", "Q12", "Q14", "Q16", "Q17", "Q19", "Q20",
}

// Next returns a random query from the set with fresh predicates.
func (g *Gen) Next() *exec.Query {
	return g.ByName(QueryNames[g.rng.Intn(len(QueryNames))])
}

// ByName builds a specific query with randomized predicates. Every
// instance carries its template name as exec.Query.ShareKey: two
// instances of the same template differ only in predicate constants,
// which is exactly the interchangeability the batch planner's shared
// pipelines require.
func (g *Gen) ByName(name string) *exec.Query {
	q := g.byName(name)
	q.ShareKey = name
	return q
}

func (g *Gen) byName(name string) *exec.Query {
	switch name {
	case "Q2":
		return g.q2()
	case "Q3":
		return g.q3()
	case "Q5":
		return g.q5()
	case "Q7":
		return g.q7()
	case "Q8":
		return g.q8()
	case "Q9":
		return g.q9()
	case "Q10":
		return g.q10()
	case "Q11":
		return g.q11()
	case "Q12":
		return g.q12()
	case "Q14":
		return g.q14()
	case "Q16":
		return g.q16()
	case "Q17":
		return g.q17()
	case "Q19":
		return g.q19()
	case "Q20":
		return g.q20()
	default:
		panic(fmt.Sprintf("chbench: unknown query %q", name))
	}
}

// --- predicate parameter helpers ---------------------------------------

func (g *Gen) randNation() string { return fmt.Sprintf("NATION_%02d", g.rng.Intn(tpcc.NumNations)) }
func (g *Gen) randRegion() string { return fmt.Sprintf("REGION_%d", g.rng.Intn(tpcc.NumRegions)) }

const alnum = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"

func (g *Gen) randChar() string { return string(alnum[g.rng.Intn(len(alnum))]) }

// randDate picks the paper's "[DATE] is a random first day of a month"
// over a window covering the generated data's date domain.
func (g *Gen) randDate() int64 {
	months := g.rng.Int63n(3) // 0..2 months back from load epoch
	return tpcc.LoadEpoch - months*int64(30*24*time.Hour) - g.rng.Int63n(int64(28*24*time.Hour))
}

func (g *Gen) randPrice() float64  { return float64(g.rng.Intn(101)) }
func (g *Gen) randQuantity() int64 { return g.rng.Int63n(11) }

// --- shared probe builders ----------------------------------------------

// itemProbe joins order lines (or stock) to item through an item-id
// column of the driver tuple.
func (g *Gen) itemProbe(driverSchema *storage.Schema, itemCol int, pred func([]byte) bool) exec.Probe {
	is := g.s.Item
	return exec.Probe{
		Table:      tpcc.TItem,
		BuildKeyID: "pk",
		BuildKey:   func(t []byte) uint64 { return tpcc.ItemKey(is.GetInt64(t, tpcc.IID)) },
		ProbeKey: func(d []byte, _ [][]byte) uint64 {
			return tpcc.ItemKey(driverSchema.GetInt64(d, itemCol))
		},
		Pred: pred,
	}
}

// ordersFromOrderLine joins order lines to their order.
func (g *Gen) ordersFromOrderLine(pred func([]byte) bool) exec.Probe {
	ols, os := g.s.OrderLine, g.s.Order
	return exec.Probe{
		Table:      tpcc.TOrder,
		BuildKeyID: "pk",
		BuildKey: func(t []byte) uint64 {
			return tpcc.OrderKey(os.GetInt64(t, tpcc.OWID), os.GetInt64(t, tpcc.ODID), os.GetInt64(t, tpcc.OID))
		},
		ProbeKey: func(d []byte, _ [][]byte) uint64 {
			return tpcc.OrderKey(ols.GetInt64(d, tpcc.OLWID), ols.GetInt64(d, tpcc.OLDID), ols.GetInt64(d, tpcc.OLOID))
		},
		Pred: pred,
	}
}

// customerFromOrder joins via the previously joined order tuple (index
// into joined is the position of the orders probe).
func (g *Gen) customerFromOrder(orderIdx int, pred func([]byte) bool) exec.Probe {
	cs, os := g.s.Customer, g.s.Order
	return exec.Probe{
		Table:      tpcc.TCustomer,
		BuildKeyID: "pk",
		BuildKey: func(t []byte) uint64 {
			return tpcc.CustomerKey(cs.GetInt64(t, tpcc.CWID), cs.GetInt64(t, tpcc.CDID), cs.GetInt64(t, tpcc.CID))
		},
		ProbeKey: func(_ []byte, joined [][]byte) uint64 {
			o := joined[orderIdx]
			return tpcc.CustomerKey(os.GetInt64(o, tpcc.OWID), os.GetInt64(o, tpcc.ODID), os.GetInt64(o, tpcc.OCID))
		},
		Pred: pred,
	}
}

// nationOf joins to nation through a nation-key extractor over the
// already-joined tuples.
func (g *Gen) nationOf(keyFn func(driver []byte, joined [][]byte) int64, pred func([]byte) bool) exec.Probe {
	ns := g.s.Nation
	return exec.Probe{
		Table:      tpcc.TNation,
		BuildKeyID: "pk",
		BuildKey:   func(t []byte) uint64 { return tpcc.NationKey(ns.GetInt64(t, tpcc.NNationKey)) },
		ProbeKey: func(d []byte, joined [][]byte) uint64 {
			return tpcc.NationKey(keyFn(d, joined))
		},
		Pred: pred,
	}
}

// regionOfNation joins a previously joined nation tuple to region.
func (g *Gen) regionOfNation(nationIdx int, pred func([]byte) bool) exec.Probe {
	ns, rs := g.s.Nation, g.s.Region
	return exec.Probe{
		Table:      tpcc.TRegion,
		BuildKeyID: "pk",
		BuildKey:   func(t []byte) uint64 { return tpcc.RegionKey(rs.GetInt64(t, tpcc.RRegionKey)) },
		ProbeKey: func(_ []byte, joined [][]byte) uint64 {
			return tpcc.RegionKey(ns.GetInt64(joined[nationIdx], tpcc.NRegionKey))
		},
		Pred: pred,
	}
}

// supplierOfOrderLine joins an order line to its CH-derived supplier.
func (g *Gen) supplierOfOrderLine(pred func([]byte) bool) exec.Probe {
	ols, sus := g.s.OrderLine, g.s.Supplier
	return exec.Probe{
		Table:      tpcc.TSupplier,
		BuildKeyID: "pk",
		BuildKey:   func(t []byte) uint64 { return tpcc.SupplierKey(sus.GetInt64(t, tpcc.SUSuppKey)) },
		ProbeKey: func(d []byte, _ [][]byte) uint64 {
			return tpcc.SupplierKey(tpcc.SupplierOf(ols.GetInt64(d, tpcc.OLSupplyWID), ols.GetInt64(d, tpcc.OLIID)))
		},
		Pred: pred,
	}
}

// supplierOfStock joins a stock row to its CH-derived supplier.
func (g *Gen) supplierOfStock(pred func([]byte) bool) exec.Probe {
	ss, sus := g.s.Stock, g.s.Supplier
	return exec.Probe{
		Table:      tpcc.TSupplier,
		BuildKeyID: "pk",
		BuildKey:   func(t []byte) uint64 { return tpcc.SupplierKey(sus.GetInt64(t, tpcc.SUSuppKey)) },
		ProbeKey: func(d []byte, _ [][]byte) uint64 {
			return tpcc.SupplierKey(tpcc.SupplierOf(ss.GetInt64(d, tpcc.SWID), ss.GetInt64(d, tpcc.SIID)))
		},
		Pred: pred,
	}
}

// --- aggregates ----------------------------------------------------------

// Sums over driver columns are declarative (exec.SumCol) rather than
// closures: the compiled typed kernel computes the same value, and the
// declarative form is what lets the encoded-block aggregate kernels
// answer whole morsels and lets merged cohorts verify aggregate
// equality structurally.
func (g *Gen) sumOlAmount() exec.AggSpec { return exec.SumCol(tpcc.OLAmount) }

func countStar() exec.AggSpec { return exec.AggSpec{Kind: exec.Count} }

// --- the queries ----------------------------------------------------------

func (g *Gen) q2() *exec.Query {
	rName, ch := g.randRegion(), g.randChar()
	ss, is, rs := g.s.Stock, g.s.Item, g.s.Region
	return &exec.Query{
		Name:   "Q2",
		Driver: tpcc.TStock,
		Probes: []exec.Probe{
			g.itemProbe(ss, tpcc.SIID, func(t []byte) bool {
				return strings.HasPrefix(is.GetString(t, tpcc.IData), ch)
			}),
			g.supplierOfStock(nil),
			g.nationOf(func(_ []byte, joined [][]byte) int64 {
				return g.s.Supplier.GetInt64(joined[1], tpcc.SUNationKey)
			}, nil),
			g.regionOfNation(2, func(t []byte) bool {
				return rs.GetString(t, tpcc.RName) == rName
			}),
		},
		Aggs: []exec.AggSpec{exec.SumCol(tpcc.SQuantity)},
	}
}

func (g *Gen) q3() *exec.Query {
	nName := g.randNation()
	cs, ns := g.s.Customer, g.s.Nation
	return &exec.Query{
		Name:   "Q3",
		Driver: tpcc.TOrderLine,
		Probes: []exec.Probe{
			g.ordersFromOrderLine(nil),
			g.customerFromOrder(0, nil),
			g.nationOf(func(_ []byte, joined [][]byte) int64 {
				return cs.GetInt64(joined[1], tpcc.CNationKey)
			}, func(t []byte) bool {
				return ns.GetString(t, tpcc.NName) == nName
			}),
		},
		Aggs: []exec.AggSpec{g.sumOlAmount()},
	}
}

func (g *Gen) q5() *exec.Query {
	rName := g.randRegion()
	cs, rs, sus := g.s.Customer, g.s.Region, g.s.Supplier
	return &exec.Query{
		Name:   "Q5",
		Driver: tpcc.TOrderLine,
		Probes: []exec.Probe{
			g.ordersFromOrderLine(nil),  // joined[0]
			g.customerFromOrder(0, nil), // joined[1]
			g.nationOf(func(_ []byte, j [][]byte) int64 { // joined[2]: cn
				return cs.GetInt64(j[1], tpcc.CNationKey)
			}, nil),
			g.regionOfNation(2, func(t []byte) bool { // joined[3]: cr
				return rs.GetString(t, tpcc.RName) == rName
			}),
			g.supplierOfOrderLine(nil), // joined[4]
			g.nationOf(func(_ []byte, j [][]byte) int64 { // joined[5]: sn
				return sus.GetInt64(j[4], tpcc.SUNationKey)
			}, nil),
			g.regionOfNation(5, func(t []byte) bool { // joined[6]: sr
				return rs.GetString(t, tpcc.RName) == rName
			}),
		},
		// GROUP BY n_name: one revenue row per customer nation.
		GroupBy: []exec.GroupCol{{From: 2, Col: tpcc.NNationKey}},
		Aggs:    []exec.AggSpec{g.sumOlAmount()},
	}
}

func (g *Gen) q7() *exec.Query {
	nName := g.randNation()
	lo := tpcc.LoadEpoch - int64(60*24*time.Hour)
	hi := tpcc.LoadEpoch + int64(3650*24*time.Hour)
	cs, ns, sus := g.s.Customer, g.s.Nation, g.s.Supplier
	return &exec.Query{
		Name:   "Q7",
		Driver: tpcc.TOrderLine,
		Where:  []exec.Pred{exec.BetweenInt(tpcc.OLDeliveryD, lo, hi)},
		Probes: []exec.Probe{
			g.ordersFromOrderLine(nil),  // joined[0]
			g.customerFromOrder(0, nil), // joined[1]
			g.nationOf(func(_ []byte, j [][]byte) int64 { // joined[2]: cn
				return cs.GetInt64(j[1], tpcc.CNationKey)
			}, func(t []byte) bool { return ns.GetString(t, tpcc.NName) == nName }),
			g.supplierOfOrderLine(nil), // joined[3]
			g.nationOf(func(_ []byte, j [][]byte) int64 { // joined[4]: sn
				return sus.GetInt64(j[3], tpcc.SUNationKey)
			}, func(t []byte) bool { return ns.GetString(t, tpcc.NName) == nName }),
		},
		// GROUP BY supp_nation, cust_nation (customer nation first so
		// Q7 instances prefix-share group keys with Q5-style rollups).
		GroupBy: []exec.GroupCol{
			{From: 2, Col: tpcc.NNationKey},
			{From: 4, Col: tpcc.NNationKey},
		},
		Aggs: []exec.AggSpec{g.sumOlAmount()},
	}
}

func (g *Gen) q8() *exec.Query {
	rName, nName, ch := g.randRegion(), g.randNation(), g.randChar()
	cs, ns, rs, sus, is, ols := g.s.Customer, g.s.Nation, g.s.Region, g.s.Supplier, g.s.Item, g.s.OrderLine
	return &exec.Query{
		Name:   "Q8",
		Driver: tpcc.TOrderLine,
		Probes: []exec.Probe{
			g.itemProbe(ols, tpcc.OLIID, func(t []byte) bool { // joined[0]
				return strings.HasPrefix(is.GetString(t, tpcc.IData), ch)
			}),
			g.ordersFromOrderLine(nil),  // joined[1]
			g.customerFromOrder(1, nil), // joined[2]
			g.nationOf(func(_ []byte, j [][]byte) int64 { // joined[3]: cn
				return cs.GetInt64(j[2], tpcc.CNationKey)
			}, nil),
			g.regionOfNation(3, func(t []byte) bool { // joined[4]: cr
				return rs.GetString(t, tpcc.RName) == rName
			}),
			g.supplierOfOrderLine(nil), // joined[5]
			g.nationOf(func(_ []byte, j [][]byte) int64 { // joined[6]: sn
				return sus.GetInt64(j[5], tpcc.SUNationKey)
			}, func(t []byte) bool { return ns.GetString(t, tpcc.NName) == nName }),
		},
		Aggs: []exec.AggSpec{g.sumOlAmount()},
	}
}

func (g *Gen) q9() *exec.Query {
	c1, c2 := g.randChar(), g.randChar()
	is, ols := g.s.Item, g.s.OrderLine
	return &exec.Query{
		Name:   "Q9",
		Driver: tpcc.TOrderLine,
		Probes: []exec.Probe{
			g.itemProbe(ols, tpcc.OLIID, func(t []byte) bool {
				return strings.HasPrefix(is.GetString(t, tpcc.IData), c1+c2)
			}),
		},
		Aggs: []exec.AggSpec{g.sumOlAmount()},
	}
}

func (g *Gen) q10() *exec.Query {
	date := g.randDate()
	return &exec.Query{
		Name:   "Q10",
		Driver: tpcc.TOrderLine,
		Where:  []exec.Pred{exec.CmpInt(tpcc.OLDeliveryD, exec.GE, date)},
		Aggs:   []exec.AggSpec{g.sumOlAmount()},
	}
}

func (g *Gen) q11() *exec.Query {
	nName := g.randNation()
	ns, sus := g.s.Nation, g.s.Supplier
	return &exec.Query{
		Name:   "Q11",
		Driver: tpcc.TStock,
		Probes: []exec.Probe{
			g.supplierOfStock(nil),
			g.nationOf(func(_ []byte, j [][]byte) int64 {
				return sus.GetInt64(j[0], tpcc.SUNationKey)
			}, func(t []byte) bool { return ns.GetString(t, tpcc.NName) == nName }),
		},
		Aggs: []exec.AggSpec{exec.SumCol(tpcc.SOrderCnt)},
	}
}

func (g *Gen) q12() *exec.Query {
	date := g.randDate()
	ord := g.ordersFromOrderLine(nil)
	ord.Where = []exec.Pred{exec.BetweenInt(tpcc.OCarrierID, 1, 2)}
	return &exec.Query{
		Name:   "Q12",
		Driver: tpcc.TOrderLine,
		Where:  []exec.Pred{exec.CmpInt(tpcc.OLDeliveryD, exec.GE, date)},
		Probes: []exec.Probe{ord},
		// GROUP BY o_carrier_id: one order-count row per carrier.
		GroupBy: []exec.GroupCol{{From: 0, Col: tpcc.OCarrierID}},
		Aggs:    []exec.AggSpec{countStar()},
	}
}

func (g *Gen) q14() *exec.Query {
	c1, c2 := g.randChar(), g.randChar()
	date := g.randDate()
	is, ols := g.s.Item, g.s.OrderLine
	return &exec.Query{
		Name:   "Q14",
		Driver: tpcc.TOrderLine,
		Where:  []exec.Pred{exec.CmpInt(tpcc.OLDeliveryD, exec.GE, date)},
		Probes: []exec.Probe{
			g.itemProbe(ols, tpcc.OLIID, func(t []byte) bool {
				return strings.HasPrefix(is.GetString(t, tpcc.IData), c1+c2)
			}),
		},
		Aggs: []exec.AggSpec{g.sumOlAmount()},
	}
}

func (g *Gen) q16() *exec.Query {
	c1, c2 := g.randChar(), g.randChar()
	is, sus := g.s.Item, g.s.Supplier
	return &exec.Query{
		Name:   "Q16",
		Driver: tpcc.TOrderLine,
		Probes: []exec.Probe{
			g.itemProbe(g.s.OrderLine, tpcc.OLIID, func(t []byte) bool {
				return !strings.HasPrefix(is.GetString(t, tpcc.IData), c1+c2)
			}),
			g.supplierOfOrderLine(func(t []byte) bool {
				return strings.Contains(sus.GetString(t, tpcc.SUComment), "Complaints")
			}),
		},
		Aggs: []exec.AggSpec{countStar()},
	}
}

func (g *Gen) q17() *exec.Query {
	ch := g.randChar()
	qty := g.randQuantity()
	is, ols := g.s.Item, g.s.OrderLine
	return &exec.Query{
		Name:   "Q17",
		Driver: tpcc.TOrderLine,
		Where:  []exec.Pred{exec.CmpInt(tpcc.OLQuantity, exec.GE, qty)},
		Probes: []exec.Probe{
			g.itemProbe(ols, tpcc.OLIID, func(t []byte) bool {
				return strings.HasPrefix(is.GetString(t, tpcc.IData), ch)
			}),
		},
		Aggs: []exec.AggSpec{
			g.sumOlAmount(),
			exec.SumCol(tpcc.OLQuantity),
		},
	}
}

func (g *Gen) q19() *exec.Query {
	ch := g.randChar()
	price := g.randPrice()
	is, ols := g.s.Item, g.s.OrderLine
	ip := g.itemProbe(ols, tpcc.OLIID, func(t []byte) bool {
		return strings.HasPrefix(is.GetString(t, tpcc.IData), ch)
	})
	ip.Where = []exec.Pred{exec.BetweenFloat(tpcc.IPrice, price, price+10)}
	return &exec.Query{
		Name:   "Q19",
		Driver: tpcc.TOrderLine,
		Where:  []exec.Pred{exec.BetweenInt(tpcc.OLQuantity, 1, 10)},
		Probes: []exec.Probe{ip},
		Aggs:   []exec.AggSpec{g.sumOlAmount()},
	}
}

func (g *Gen) q20() *exec.Query {
	ch, nName := g.randChar(), g.randNation()
	is, ns, sus := g.s.Item, g.s.Nation, g.s.Supplier
	return &exec.Query{
		Name:   "Q20",
		Driver: tpcc.TOrderLine,
		Probes: []exec.Probe{
			g.itemProbe(g.s.OrderLine, tpcc.OLIID, func(t []byte) bool {
				return strings.HasPrefix(is.GetString(t, tpcc.IData), ch)
			}),
			g.supplierOfOrderLine(nil),
			g.nationOf(func(_ []byte, j [][]byte) int64 {
				return sus.GetInt64(j[1], tpcc.SUNationKey)
			}, func(t []byte) bool { return ns.GetString(t, tpcc.NName) == nName }),
		},
		Aggs: []exec.AggSpec{countStar()},
	}
}
