package chbench

import (
	"errors"
	"testing"
	"time"

	"batchdb/internal/baseline"
	"batchdb/internal/mvcc"
	"batchdb/internal/olap/exec"
	"batchdb/internal/oltp"
	"batchdb/internal/tpcc"
)

// After a burst of constant-size TPC-C (inserts, field updates AND
// deletes) flows through update propagation, the replica-based executor
// must agree with a direct evaluation over the primary MVCC store for
// every CH query — exercising the PK-index maintenance (including
// deletes) and the apply pipeline end to end.
func TestReplicaAgreesWithPrimaryAfterUpdates(t *testing.T) {
	db := tpcc.NewDB(tpcc.SmallScale(2))
	if err := tpcc.Generate(db, 77); err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplica(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	e, err := oltp.New(db.Store, oltp.Config{
		Workers: 2, PushPeriod: time.Hour,
		Replicated: tpcc.ReplicatedTables(), FieldSpecific: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tpcc.RegisterProcs(e, db, true) // constant-size: deletes flow too
	e.SetSink(rep)
	e.Start()

	drv := tpcc.NewDriver(db.Scale, 3)
	for i := 0; i < 600; i++ {
		proc, args := drv.Next()
		for {
			r := e.Exec(proc, args)
			if r.Err == nil || errors.Is(r.Err, tpcc.ErrRollback) {
				break
			}
			if !errors.Is(r.Err, mvcc.ErrConflict) {
				t.Fatalf("%s: %v", proc, r.Err)
			}
		}
	}
	covered := e.SyncUpdates()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := rep.ApplyPending(covered); err != nil {
		t.Fatal(err)
	}

	eng := exec.NewEngine(rep, 2)
	base := baseline.New(db, 1, baseline.FairShared)
	defer base.Close()

	g := NewGen(db.Schemas, 9)
	for _, name := range QueryNames {
		q := g.ByName(name)
		repl := eng.RunBatch([]*exec.Query{q}, covered)[0]
		ref := base.Query(q)
		if repl.Err != nil || ref.Err != nil {
			t.Fatalf("%s: errs %v / %v", name, repl.Err, ref.Err)
		}
		if repl.Rows != ref.Rows {
			t.Fatalf("%s: rows %d (replica) != %d (primary)", name, repl.Rows, ref.Rows)
		}
		for i := range repl.Values {
			d := repl.Values[i] - ref.Values[i]
			if d > 1e-3 || d < -1e-3 {
				t.Fatalf("%s agg %d: %f != %f", name, i, repl.Values[i], ref.Values[i])
			}
		}
	}
}
