package chbench

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"batchdb/internal/olap/exec"
	"batchdb/internal/tpcc"
)

// Property test for the morsel-driven shared executor: randomized CH
// query batches must produce identical results whether they run shared
// (one scan feeding all queries, builds cached across the batch) or
// query-at-a-time, at every worker count. Rows must match exactly;
// float aggregates may differ by accumulation order only.
func TestSharedParityRandomizedBatches(t *testing.T) {
	db := tpcc.NewDB(tpcc.SmallScale(2))
	if err := tpcc.Generate(db, 21); err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplica(db, 4)
	if err != nil {
		t.Fatal(err)
	}

	workerSet := []int{1, 4, runtime.NumCPU()}
	for seed := int64(0); seed < 3; seed++ {
		g := NewGen(db.Schemas, seed)
		batch := make([]*exec.Query, 12)
		for i := range batch {
			batch[i] = g.Next()
		}

		// Reference: serial, one query at a time.
		ref := exec.NewEngine(rep, 1)
		ref.QueryAtATime = true
		want := ref.RunBatch(batch, 0)

		for _, w := range workerSet {
			for _, qat := range []bool{false, true} {
				e := exec.NewEngine(rep, w)
				e.MorselTuples = 512 // small morsels: force multi-morsel dispatch
				e.QueryAtATime = qat
				got := e.RunBatch(batch, 0)
				label := fmt.Sprintf("seed=%d workers=%d queryAtATime=%v", seed, w, qat)
				for i := range batch {
					if want[i].Err != nil || got[i].Err != nil {
						t.Fatalf("%s %s: errs %v %v", label, batch[i].Name, want[i].Err, got[i].Err)
					}
					if got[i].Rows != want[i].Rows {
						t.Fatalf("%s %s: rows %d != %d", label, batch[i].Name, got[i].Rows, want[i].Rows)
					}
					for j := range want[i].Values {
						if !parityClose(got[i].Values[j], want[i].Values[j]) {
							t.Fatalf("%s %s agg %d: %f != %f",
								label, batch[i].Name, j, got[i].Values[j], want[i].Values[j])
						}
					}
				}
			}
		}
	}
}

func parityClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b))
}
