package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"batchdb/internal/crash"
	"batchdb/internal/metrics"
	"batchdb/internal/mvcc"
	"batchdb/internal/oltp"
	"batchdb/internal/wal"
)

// ErrSeedMismatch reports recovery against the wrong pre-loaded data:
// the store's VID-0 fingerprint does not match the one recorded when the
// data directory was created. Replaying the log against different seed
// data would silently produce wrong state, so recovery fails loudly.
var ErrSeedMismatch = errors.New("checkpoint: seed data does not match the fingerprint recorded in the manifest")

// ErrNoValidCheckpoint reports that every manifest-listed checkpoint
// failed verification and the store holds no seed data to replay from.
var ErrNoValidCheckpoint = errors.New("checkpoint: no checkpoint passed verification; reload the seed data (VID-0 state) and re-run recovery")

// BootConfig configures a data directory.
type BootConfig struct {
	// Dir is the data directory (MANIFEST + checkpoints/ + wal/).
	Dir string
	// SegmentBytes is the WAL rotation threshold (default 16 MiB).
	SegmentBytes int64
	// Sync forces an fsync per WAL group commit.
	Sync bool
	// Inj is the crash-injection hook (nil in production).
	Inj *crash.Injector
	// Stats receives durability counters (allocated when nil).
	Stats *metrics.DurabilityStats
}

// BootInfo describes what Boot did.
type BootInfo struct {
	// Fresh is true when the directory was newly initialized.
	Fresh bool
	// CheckpointVID is the restored checkpoint's VID (0 = none; replay
	// started from the seed).
	CheckpointVID uint64
	// FellBack is true when the newest checkpoint failed verification
	// and an older recovery point was used.
	FellBack bool
	// Replayed counts WAL commands re-executed.
	Replayed int
	// ReplayTime is the wall time spent replaying the WAL tail.
	ReplayTime time.Duration
	// WatermarkVID is the store's committed watermark after recovery.
	WatermarkVID uint64
}

// State is a booted data directory: the open WAL segment manager, the
// manifest, and the checkpointer. Create via Boot.
type State struct {
	dir     string
	ckptDir string
	walDir  string
	inj     *crash.Injector
	stats   *metrics.DurabilityStats
	store   *mvcc.Store
	wal     *wal.Manager

	// mu guards man, lastCkptVID and walBytesAtCkpt against concurrent
	// manual and background checkpoints; Boot runs before either.
	mu             sync.Mutex
	man            Manifest
	lastCkptVID    uint64
	walBytesAtCkpt int64
	keep           int

	runnerStop chan struct{}
	runnerDone chan struct{}
}

// DirHasCheckpoint reports whether dir's manifest lists a checkpoint —
// when true, callers must NOT load seed data before Boot (the
// checkpoint replaces it); when false, the identical seed must be
// loaded first.
func DirHasCheckpoint(dir string) (bool, error) {
	m, err := loadManifest(dir)
	if err != nil {
		return false, err
	}
	return m != nil && len(m.Checkpoints) > 0, nil
}

// DirInitialized reports whether dir holds a manifest at all.
func DirInitialized(dir string) (bool, error) {
	m, err := loadManifest(dir)
	return m != nil, err
}

// Boot opens (or initializes) a data directory for engine e and
// installs the segmented WAL as e's command log. Call after DDL, seed
// loading (iff DirHasCheckpoint is false) and procedure registration,
// before e.Start.
//
// Existing directory: the newest checkpoint passing verification is
// restored into the (empty) store, the VID allocator repositioned at
// its VID, and only WAL records above it replayed — bounded by the WAL
// tail, not total history. A corrupt newest checkpoint falls back to
// the previous one (whose WAL suffix is retained exactly for this).
// Without any checkpoint, the loaded seed is fingerprint-checked
// against the manifest and the whole WAL replayed.
func Boot(e *oltp.Engine, cfg BootConfig) (*State, BootInfo, error) {
	st := &State{
		dir:     cfg.Dir,
		ckptDir: filepath.Join(cfg.Dir, "checkpoints"),
		walDir:  filepath.Join(cfg.Dir, "wal"),
		inj:     cfg.Inj,
		stats:   cfg.Stats,
		store:   e.Store(),
		keep:    2,
	}
	if st.stats == nil {
		st.stats = &metrics.DurabilityStats{}
	}
	for _, d := range []string{cfg.Dir, st.ckptDir, st.walDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, BootInfo{}, fmt.Errorf("checkpoint: boot: %w", err)
		}
	}
	removeTemps(cfg.Dir)
	removeTemps(st.ckptDir)

	man, err := loadManifest(cfg.Dir)
	if err != nil {
		return nil, BootInfo{}, err
	}
	var info BootInfo
	if man == nil {
		// Fresh directory: record the seed fingerprint so a future
		// recovery can prove it replays against identical data.
		man = &Manifest{Version: 1, Seed: SumAt(st.store, 0)}
		if err := man.store(cfg.Dir, cfg.Inj); err != nil {
			return nil, BootInfo{}, err
		}
		info.Fresh = true
	} else {
		ckptVID, fellBack, err := st.restoreNewestValid(man)
		if err != nil {
			return nil, BootInfo{}, err
		}
		info.CheckpointVID = ckptVID
		info.FellBack = fellBack
		if fellBack {
			st.stats.RecoveryFallbacks.Inc()
		}
		start := time.Now()
		n, err := wal.ReplayDir(st.walDir, ckptVID, func(r wal.Record) error {
			return oltp.ReplayRecord(e, r)
		})
		if err != nil {
			return nil, BootInfo{}, err
		}
		info.Replayed = n
		info.ReplayTime = time.Since(start)
		st.stats.RecoveryReplayed.Add(uint64(n))
		st.stats.RecoveryNanos.Set(int64(info.ReplayTime))
	}
	st.man = *man
	st.lastCkptVID = info.CheckpointVID
	if len(man.Checkpoints) > 0 {
		st.lastCkptVID = man.Checkpoints[len(man.Checkpoints)-1].VID
	}

	info.WatermarkVID = st.store.VIDs.Watermark()
	mgr, err := wal.OpenDir(st.walDir, wal.DirOptions{
		Sync:         cfg.Sync,
		SegmentBytes: cfg.SegmentBytes,
		StartVID:     info.WatermarkVID + 1,
		Inj:          cfg.Inj,
		Stats:        st.stats,
	})
	if err != nil {
		return nil, BootInfo{}, err
	}
	st.wal = mgr
	e.SetLog(mgr)
	return st, info, nil
}

// restoreNewestValid picks the newest checkpoint that passes
// verification, restores it, and repositions the VID allocator. Corrupt
// newer checkpoints are demoted: dropped from the manifest and deleted,
// so they cannot re-enter the fallback chain (a later checkpoint must
// not truncate WAL down to a corrupt recovery point). With no usable
// checkpoint the loaded seed's fingerprint is verified instead and
// replay starts at VID 0.
func (st *State) restoreNewestValid(man *Manifest) (ckptVID uint64, fellBack bool, err error) {
	cks := man.Checkpoints
	demote := func(fromIdx int) error {
		if fromIdx >= len(cks) {
			return nil
		}
		for _, e := range cks[fromIdx:] {
			os.Remove(filepath.Join(st.ckptDir, e.File))
		}
		man.Checkpoints = append([]Entry(nil), cks[:fromIdx]...)
		return man.store(st.dir, st.inj)
	}
	for i := len(cks) - 1; i >= 0; i-- {
		path := filepath.Join(st.ckptDir, cks[i].File)
		if _, verr := Verify(path); verr != nil {
			fellBack = true
			continue
		}
		for _, t := range st.store.Tables() {
			if t.NumChains() != 0 {
				return 0, false, fmt.Errorf("checkpoint: boot: store already holds data for table %d; seed loading and checkpoint restore are mutually exclusive", t.Schema.ID)
			}
		}
		vid, _, rerr := Restore(path, st.store)
		if rerr != nil {
			return 0, false, rerr
		}
		st.store.VIDs.StartAt(vid)
		if fellBack {
			if err := demote(i + 1); err != nil {
				return 0, false, err
			}
		}
		return vid, fellBack, nil
	}
	// No usable checkpoint: replay everything from the seed, after
	// proving it is the same seed the log was written against.
	got := SumAt(st.store, 0)
	if !SumsEqual(got, man.Seed) {
		if len(cks) > 0 {
			empty := true
			for _, t := range st.store.Tables() {
				if t.NumChains() != 0 {
					empty = false
					break
				}
			}
			if empty {
				return 0, true, ErrNoValidCheckpoint
			}
		}
		return 0, fellBack, fmt.Errorf("%w: have %v, manifest records %v", ErrSeedMismatch, got, man.Seed)
	}
	if fellBack {
		if err := demote(0); err != nil {
			return 0, true, err
		}
	}
	return 0, fellBack, nil
}

// Stats returns the durability counters.
func (st *State) Stats() *metrics.DurabilityStats { return st.stats }

// WAL returns the segment manager (the engine's command log).
func (st *State) WAL() *wal.Manager { return st.wal }

// Close stops the checkpointer. The WAL manager itself is owned by the
// engine (installed via SetLog) and closed by engine.Close.
func (st *State) Close() error {
	st.StopRunner()
	return nil
}

// removeTemps deletes leftover *.tmp files (checkpoints or manifests a
// dying process never renamed into place).
func removeTemps(dir string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}
