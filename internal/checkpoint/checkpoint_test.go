package checkpoint

import (
	"encoding/binary"
	"errors"
	"os"
	"testing"

	"batchdb/internal/mvcc"
	"batchdb/internal/storage"
)

// newKVStore builds a store with one kv(k,v int64) table.
func newKVStore() (*mvcc.Store, *mvcc.Table) {
	store := mvcc.NewStore()
	schema := storage.NewSchema(1, "kv", []storage.Column{
		{Name: "k", Type: storage.Int64},
		{Name: "v", Type: storage.Int64},
	}, []int{0})
	tbl := store.CreateTable(schema, func(tup []byte) uint64 {
		return uint64(schema.GetInt64(tup, 0))
	}, 1024)
	return store, tbl
}

func loadKV(t *testing.T, tbl *mvcc.Table, k, v int64) {
	t.Helper()
	tup := tbl.Schema.NewTuple()
	tbl.Schema.PutInt64(tup, 0, k)
	tbl.Schema.PutInt64(tup, 1, v)
	if _, err := tbl.LoadRow(tup); err != nil {
		t.Fatal(err)
	}
}

func TestWriteVerifyRestoreRoundTrip(t *testing.T) {
	store, tbl := newKVStore()
	// Enough rows to span multiple rows-frames (rowsPerFrame = 512).
	const rows = 1200
	for i := int64(1); i <= rows; i++ {
		loadKV(t, tbl, i, i*10)
	}
	dir := t.TempDir()
	info, err := Write(dir, store, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Rows != rows || info.VID != 0 || info.Bytes <= 0 {
		t.Fatalf("info = %+v", info)
	}
	vid, err := Verify(info.Path)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if vid != 0 {
		t.Fatalf("verify vid = %d", vid)
	}

	rec, tbl2 := newKVStore()
	rvid, n, err := Restore(info.Path, rec)
	if err != nil {
		t.Fatal(err)
	}
	if rvid != 0 || n != rows {
		t.Fatalf("restore: vid=%d rows=%d", rvid, n)
	}
	if !SumsEqual(SumAt(store, 0), SumAt(rec, 0)) {
		t.Fatal("restored state differs from original")
	}
	// Spot-check one row through a snapshot read.
	ro := rec.BeginROAt(0)
	defer ro.Release()
	tup, ok := ro.Get(tbl2, 7)
	if !ok || tbl2.Schema.GetInt64(tup, 1) != 70 {
		t.Fatalf("row 7 wrong after restore (ok=%v)", ok)
	}
}

func TestRestorePreservesRowIDs(t *testing.T) {
	store, tbl := newKVStore()
	for i := int64(1); i <= 50; i++ {
		loadKV(t, tbl, i, i)
	}
	want := map[uint64]uint64{} // key -> RowID
	ro := store.BeginROAt(0)
	tbl.ScanChains(func(c *mvcc.Chain) bool {
		if r := ro.ReadChain(c); r != nil {
			want[c.Key] = r.RowID
		}
		return true
	})
	ro.Release()

	dir := t.TempDir()
	info, err := Write(dir, store, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, tbl2 := newKVStore()
	if _, _, err := Restore(info.Path, rec); err != nil {
		t.Fatal(err)
	}
	ro2 := rec.BeginROAt(0)
	defer ro2.Release()
	tbl2.ScanChains(func(c *mvcc.Chain) bool {
		r := ro2.ReadChain(c)
		if r == nil {
			t.Errorf("key %d missing", c.Key)
			return true
		}
		if r.RowID != want[c.Key] {
			t.Errorf("key %d: RowID %d, want %d", c.Key, r.RowID, want[c.Key])
		}
		return true
	})
	// The allocator must be past the largest restored RowID.
	var max uint64
	for _, id := range want {
		if id > max {
			max = id
		}
	}
	if got := tbl2.AllocRowID(); got <= max {
		t.Fatalf("AllocRowID after restore = %d, must exceed %d", got, max)
	}
}

func TestVerifyDetectsDamage(t *testing.T) {
	store, tbl := newKVStore()
	for i := int64(1); i <= 600; i++ {
		loadKV(t, tbl, i, i)
	}
	dir := t.TempDir()
	info, err := Write(dir, store, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(info.Path)
	if err != nil {
		t.Fatal(err)
	}
	damage := map[string]func([]byte) []byte{
		"flip body byte":  func(b []byte) []byte { b[len(b)/2] ^= 0xFF; return b },
		"truncate tail":   func(b []byte) []byte { return b[:len(b)-9] },
		"drop trailer":    func(b []byte) []byte { return b[:len(b)-(8+1+8)] },
		"bad magic":       func(b []byte) []byte { b[0] = 'X'; return b },
		"append garbage":  func(b []byte) []byte { return append(b, 0xDE, 0xAD, 0xBE, 0xEF) },
		"truncate header": func(b []byte) []byte { return b[:4] },
	}
	for name, f := range damage {
		broken := f(append([]byte(nil), pristine...))
		if err := os.WriteFile(info.Path, broken, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Verify(info.Path); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: Verify = %v, want ErrInvalid", name, err)
		}
		// Restore must refuse the same way, without partial effects
		// escaping (it verifies structurally as it reads).
		rec, _ := newKVStore()
		if _, _, err := Restore(info.Path, rec); err == nil {
			t.Errorf("%s: Restore accepted a damaged checkpoint", name)
		}
	}
	// Sanity: the pristine bytes still verify.
	if err := os.WriteFile(info.Path, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	if vid, err := Verify(info.Path); err != nil || vid != 42 {
		t.Fatalf("pristine verify: vid=%d err=%v", vid, err)
	}
}

func TestWriteIsSnapshotConsistent(t *testing.T) {
	store, tbl := newKVStore()
	loadKV(t, tbl, 1, 100)
	// Commit a change at VID 1: the checkpoint at snap 0 must not see it.
	tx := store.BeginAt(0)
	if err := tx.Update(tbl, 1, nil, func(tup []byte) {
		tbl.Schema.PutInt64(tup, 1, 999)
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	info, err := Write(dir, store, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, tbl2 := newKVStore()
	if _, _, err := Restore(info.Path, rec); err != nil {
		t.Fatal(err)
	}
	ro := rec.BeginROAt(0)
	defer ro.Release()
	tup, ok := ro.Get(tbl2, 1)
	if !ok || tbl2.Schema.GetInt64(tup, 1) != 100 {
		t.Fatalf("checkpoint leaked post-snapshot write: v=%d", tbl2.Schema.GetInt64(tup, 1))
	}
}

func TestSumAtOrderIndependence(t *testing.T) {
	a, ta := newKVStore()
	b, tb := newKVStore()
	for i := int64(1); i <= 100; i++ {
		loadKV(t, ta, i, i*3)
	}
	for i := int64(100); i >= 1; i-- { // reverse load order: RowIDs differ
		loadKV(t, tb, i, i*3)
	}
	if !SumsEqual(SumAt(a, 0), SumAt(b, 0)) {
		t.Fatal("SumAt depends on load order")
	}
	// A single changed value must change the sum.
	tx := b.BeginAt(0)
	tx.Update(tb, 50, nil, func(tup []byte) { tb.Schema.PutInt64(tup, 1, -1) })
	tx.Commit()
	if SumsEqual(SumAt(a, 1), SumAt(b, 1)) {
		t.Fatal("SumAt missed a value change")
	}
}

func TestRestoreUnknownTable(t *testing.T) {
	store, tbl := newKVStore()
	loadKV(t, tbl, 1, 1)
	dir := t.TempDir()
	info, err := Write(dir, store, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A store without the table (DDL mismatch) must fail loudly.
	empty := mvcc.NewStore()
	if _, _, err := Restore(info.Path, empty); err == nil {
		t.Fatal("Restore into a store missing the table succeeded")
	}
}

// Regression guard for the frame encoding: the header frame's layout is
// [kind u8][vid u64][tableCount u32] and Verify returns the VID from it.
func TestHeaderFrameVID(t *testing.T) {
	store, tbl := newKVStore()
	loadKV(t, tbl, 1, 1)
	dir := t.TempDir()
	info, err := Write(dir, store, 0xDEADBEEF, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(info.Path)
	// magic(8) + frame hdr(8) + kind(1) → vid at offset 17.
	if got := binary.LittleEndian.Uint64(b[17:]); got != 0xDEADBEEF {
		t.Fatalf("header vid on disk = %#x", got)
	}
	vid, err := Verify(info.Path)
	if err != nil || vid != 0xDEADBEEF {
		t.Fatalf("verify: vid=%#x err=%v", vid, err)
	}
}
