package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"batchdb/internal/crash"
)

const manifestName = "MANIFEST"

// Entry records one checkpoint in the manifest.
type Entry struct {
	VID   uint64 `json:"vid"`
	File  string `json:"file"` // basename inside the checkpoints/ dir
	Bytes int64  `json:"bytes"`
}

// Manifest is the data directory's source of truth: the seed fingerprint
// recovery must match when no checkpoint exists, and the checkpoints
// recovery may restore from. It is replaced atomically (temp + fsync +
// rename + dir fsync), so readers see either the old or the new version.
type Manifest struct {
	Version     int        `json:"version"`
	Seed        []TableSum `json:"seed"`
	Checkpoints []Entry    `json:"checkpoints"` // ascending VID; last is newest
}

// loadManifest reads dir's manifest; (nil, nil) when none exists.
func loadManifest(dir string) (*Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("checkpoint: manifest corrupt: %w", err)
	}
	return &m, nil
}

// store atomically replaces dir's manifest.
func (m *Manifest) store(dir string, inj *crash.Injector) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: manifest temp: %w", err)
	}
	k, err := inj.HitWrite(crash.ManifestWrite, len(b))
	if err != nil {
		if k > 0 {
			f.Write(b[:k])
		}
		f.Close()
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := inj.Hit(crash.ManifestRename); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("checkpoint: manifest rename: %w", err)
	}
	if err := inj.Hit(crash.ManifestDirSync); err != nil {
		return err
	}
	return syncDir(dir)
}
