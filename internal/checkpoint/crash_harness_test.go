// Crash-injection recovery harness: for every crash point in the
// durability I/O layer, run a TPC-C-loaded instance under concurrent
// load with background checkpointing, kill it at that point (leaving
// exactly the bytes a dying process would leave, including torn
// writes), recover a fresh instance from the same directory, and assert
// the restored state matches the acknowledged commits exactly.
package checkpoint_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"batchdb/internal/checkpoint"
	"batchdb/internal/crash"
	"batchdb/internal/mvcc"
	"batchdb/internal/oltp"
	"batchdb/internal/tpcc"
)

// harnessSegBytes keeps WAL segments tiny so rotation and truncation
// happen constantly during the short run.
const harnessSegBytes = 4 << 10

// newTPCCEngine builds a TPC-C instance. GC is disabled so the original
// store keeps every version: after the simulated crash the harness reads
// it AT the recovered watermark to compare states.
func newTPCCEngine(t *testing.T, seed bool) (*tpcc.DB, *oltp.Engine) {
	t.Helper()
	db := tpcc.NewDB(tpcc.SmallScale(1))
	if seed {
		if err := tpcc.Generate(db, 1); err != nil {
			t.Fatal(err)
		}
	}
	e, err := oltp.New(db.Store, oltp.Config{Workers: 2, GCEveryTxns: -1})
	if err != nil {
		t.Fatal(err)
	}
	tpcc.RegisterProcs(e, db, false)
	return db, e
}

func TestCrashRecoveryMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix is not short")
	}
	for _, pt := range crash.Points {
		pt := pt
		t.Run(string(pt), func(t *testing.T) {
			t.Parallel()
			runCrashPoint(t, pt)
		})
	}
}

func runCrashPoint(t *testing.T, pt crash.Point) {
	dir := t.TempDir()
	db1, e1 := newTPCCEngine(t, true)
	inj := &crash.Injector{}
	st1, _, err := checkpoint.Boot(e1, checkpoint.BootConfig{
		Dir: dir, SegmentBytes: harnessSegBytes, Sync: true, Inj: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	e1.Start()

	// Fire on the second hit, with half of any in-flight buffer reaching
	// the file — a torn write right in the middle of a frame.
	inj.Arm(crash.Plan{Point: pt, Countdown: 2, TearFrac: 0.5})

	// Concurrent TPC-C clients; each records the highest commit VID that
	// was ACKNOWLEDGED to it (Err == nil). Everything at or below
	// maxAcked must survive recovery.
	var maxAcked atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	const clients = 3
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			drv := tpcc.NewDriver(db1.Scale, seed)
			for i := 0; i < 5000; i++ {
				select {
				case <-stop:
					return
				default:
				}
				proc, args := drv.Next()
				r := e1.Exec(proc, args)
				switch {
				case r.Err == nil:
					for cur := maxAcked.Load(); r.CommitVID > cur; cur = maxAcked.Load() {
						if maxAcked.CompareAndSwap(cur, r.CommitVID) {
							break
						}
					}
				case errors.Is(r.Err, tpcc.ErrRollback), errors.Is(r.Err, mvcc.ErrConflict):
					// Expected aborts: nothing was acknowledged.
				case errors.Is(r.Err, oltp.ErrNotDurable):
					return // the process died under us
				default:
					t.Errorf("unexpected txn error: %v", r.Err)
					return
				}
			}
		}(int64(c)*977 + 42)
	}
	// Checkpoint driver: a tight loop standing in for the background
	// runner so the checkpoint/manifest/truncate crash points are reached
	// quickly and deterministically.
	ckptDone := make(chan struct{})
	go func() {
		defer close(ckptDone)
		var last uint64
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			if inj.Crashed() {
				return
			}
			if w := e1.LatestVID(); w-last >= 15 {
				if _, err := st1.Checkpoint(e1); err != nil {
					if errors.Is(err, crash.ErrCrashed) {
						return
					}
					if !errors.Is(err, checkpoint.ErrNoProgress) {
						t.Errorf("checkpoint: %v", err)
						return
					}
				}
				last = w
			}
		}
	}()

	deadline := time.Now().Add(30 * time.Second)
	for !inj.Crashed() {
		if time.Now().After(deadline) {
			close(stop)
			wg.Wait()
			<-ckptDone
			t.Fatalf("crash point %s never fired", pt)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	<-ckptDone
	acked := maxAcked.Load()
	origLatest := e1.LatestVID()
	origStore := e1.Store()
	// The simulated process is dead: nothing may touch the directory
	// again (Close on the crashed log fails; ignore it). The in-memory
	// store survives as the oracle.
	_ = e1.Close()

	// --- restart ---
	has, err := checkpoint.DirHasCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Seed is regenerated (identically) only when no checkpoint covers
	// it, exactly as a real operator restart would.
	db2, e2 := newTPCCEngine(t, !has)
	st2, info, err := checkpoint.Boot(e2, checkpoint.BootConfig{
		Dir: dir, SegmentBytes: harnessSegBytes, Sync: true,
	})
	if err != nil {
		t.Fatalf("recovery after crash at %s: %v", pt, err)
	}
	defer e2.Close()
	defer st2.Close()

	w := info.WatermarkVID
	if w < acked {
		t.Fatalf("recovered watermark %d < highest acknowledged commit %d: acked transactions lost", w, acked)
	}
	if w > origLatest {
		t.Fatalf("recovered watermark %d beyond anything executed (%d)", w, origLatest)
	}
	if got := uint64(info.Replayed); got != w-info.CheckpointVID {
		t.Fatalf("replayed %d records, want the tail %d (watermark %d - checkpoint %d)",
			got, w-info.CheckpointVID, w, info.CheckpointVID)
	}
	// The recovered state must equal the original state AS OF the
	// recovered watermark, table by table.
	want := checkpoint.SumAt(origStore, w)
	got := checkpoint.SumAt(e2.Store(), w)
	if !checkpoint.SumsEqual(got, want) {
		t.Fatalf("state divergence after crash at %s (watermark %d):\n got %v\nwant %v", pt, w, got, want)
	}

	// The recovered instance must be live: it accepts and logs new work.
	e2.Start()
	drv := tpcc.NewDriver(db2.Scale, 7)
	committed := 0
	for i := 0; i < 50 && committed == 0; i++ {
		proc, args := drv.Next()
		r := e2.Exec(proc, args)
		if r.Err == nil && r.CommitVID > 0 {
			if r.CommitVID <= w {
				t.Fatalf("post-recovery commit VID %d not above watermark %d", r.CommitVID, w)
			}
			committed++
		}
	}
	if committed == 0 {
		t.Fatal("recovered instance committed nothing")
	}
}

// TestRecoveryBoundedByTail demonstrates the tentpole's cost model:
// recovery replays only the WAL tail above the newest checkpoint, not
// the full history, so its work shrinks as checkpoints advance.
func TestRecoveryBoundedByTail(t *testing.T) {
	dir := t.TempDir()
	db1, e1 := newTPCCEngine(t, true)
	st1, _, err := checkpoint.Boot(e1, checkpoint.BootConfig{Dir: dir, SegmentBytes: harnessSegBytes})
	if err != nil {
		t.Fatal(err)
	}
	e1.Start()
	drv := tpcc.NewDriver(db1.Scale, 3)
	run := func(n int) {
		for i := 0; i < n; i++ {
			proc, args := drv.Next()
			r := e1.Exec(proc, args)
			if r.Err != nil && !errors.Is(r.Err, tpcc.ErrRollback) && !errors.Is(r.Err, mvcc.ErrConflict) {
				t.Fatalf("txn: %v", r.Err)
			}
		}
	}
	run(300)
	info, err := st1.Checkpoint(e1)
	if err != nil {
		t.Fatal(err)
	}
	run(40)
	tail := e1.LatestVID() - info.VID
	st1.Close()
	e1.Close()

	_, e2 := newTPCCEngine(t, false)
	st2, rinfo, err := checkpoint.Boot(e2, checkpoint.BootConfig{Dir: dir, SegmentBytes: harnessSegBytes})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	defer st2.Close()
	if rinfo.CheckpointVID != info.VID {
		t.Fatalf("recovered from vid %d, want checkpoint %d", rinfo.CheckpointVID, info.VID)
	}
	if uint64(rinfo.Replayed) != tail {
		t.Fatalf("replayed %d, want only the tail %d (history is %d)", rinfo.Replayed, tail, e2.LatestVID())
	}
}
