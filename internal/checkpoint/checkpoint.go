// Package checkpoint implements BatchDB's durable checkpoints and the
// data-dir recovery path built on them.
//
// The command log alone (internal/wal) makes recovery replay the entire
// transaction history against re-loaded seed data. A checkpoint bounds
// that: it is a consistent snapshot of every table as-of a watermark VID
// captured at an OLTP batch boundary (oltp.Engine.CheckpointVID),
// written by scanning the MVCC store at that snapshot — the same
// non-blocking scan replica.LoadLocal uses — so checkpointing runs
// concurrently with transaction processing. Recovery restores the
// newest checkpoint that passes its CRCs (falling back to the previous
// one otherwise) and replays only WAL records with CommitVID above the
// checkpoint VID; WAL segments below the fallback point are truncated.
//
// On-disk format (ckpt-<vid>.ck): an 8-byte magic, then CRC-framed
// blocks [len u32][crc32C u32][kind u8 + payload]:
//
//	header  — checkpoint VID, table count
//	rows    — table id + a chunk of (rowID, tuple) pairs
//	table   — table id + total row count (closes one table)
//	trailer — total row count over all tables (proves completeness)
//
// The file is written to a temp name, fsynced, atomically renamed, and
// the directory fsynced; a MANIFEST (updated the same way) records which
// checkpoints exist, so a crash at any point leaves either the old or
// the new state, never a half checkpoint that recovery would trust.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"batchdb/internal/crash"
	"batchdb/internal/mvcc"
	"batchdb/internal/storage"
)

const fileMagic = "BDBCKPT1"

const (
	kindHeader  = 1
	kindRows    = 2
	kindTable   = 3
	kindTrailer = 4
)

// rowsPerFrame bounds a rows-frame so CRC validation and torn-write
// granularity stay fine-grained even for large tables.
const rowsPerFrame = 512

var (
	// ErrInvalid reports a checkpoint file that fails verification
	// (bad magic, CRC mismatch, truncation, or inconsistent counts);
	// recovery falls back to the previous checkpoint.
	ErrInvalid = errors.New("checkpoint: invalid checkpoint file")
	crcTable   = crc32.MakeTable(crc32.Castagnoli)
)

// Path returns the checkpoint file path for a VID inside dir.
func Path(dir string, vid uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%020d.ck", vid))
}

// Info describes one written checkpoint.
type Info struct {
	VID     uint64
	Path    string
	Bytes   int64
	Rows    int
	Elapsed time.Duration
}

// injWriter funnels every file write through the crash injector, so a
// test can kill the writer mid-checkpoint with a torn frame on disk.
type injWriter struct {
	f   *os.File
	n   int64
	inj *crash.Injector
}

func (w *injWriter) Write(p []byte) (int, error) {
	k, err := w.inj.HitWrite(crash.CkptWrite, len(p))
	if err != nil {
		if k > 0 {
			n, _ := w.f.Write(p[:k])
			w.n += int64(n)
		}
		return k, err
	}
	n, err := w.f.Write(p)
	w.n += int64(n)
	return n, err
}

func (w *injWriter) frame(payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Write scans the store at snapshot snap and writes a checkpoint file
// into dir, crash-safely: temp file, fsync, atomic rename, dir fsync.
// The scan uses an MVCC read-only transaction, so it never blocks
// writers; snap must be a batch-boundary watermark (CheckpointVID) for
// the file to be a consistent replay base.
func Write(dir string, store *mvcc.Store, snap uint64, inj *crash.Injector) (Info, error) {
	start := time.Now()
	final := Path(dir, snap)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return Info{}, fmt.Errorf("checkpoint: create temp: %w", err)
	}
	w := &injWriter{f: f, inj: inj}
	totalRows, err := writeBody(w, store, snap)
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return Info{}, err
	}
	if err := inj.Hit(crash.CkptSync); err != nil {
		f.Close()
		return Info{}, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return Info{}, err
	}
	if err := f.Close(); err != nil {
		return Info{}, err
	}
	if err := inj.Hit(crash.CkptRename); err != nil {
		return Info{}, err
	}
	if err := os.Rename(tmp, final); err != nil {
		return Info{}, fmt.Errorf("checkpoint: rename: %w", err)
	}
	if err := inj.Hit(crash.CkptDirSync); err != nil {
		return Info{}, err
	}
	if err := syncDir(dir); err != nil {
		return Info{}, err
	}
	return Info{VID: snap, Path: final, Bytes: w.n, Rows: totalRows, Elapsed: time.Since(start)}, nil
}

func writeBody(w *injWriter, store *mvcc.Store, snap uint64) (int, error) {
	if _, err := w.Write([]byte(fileMagic)); err != nil {
		return 0, err
	}
	tables := store.Tables()
	var buf []byte
	buf = append(buf[:0], kindHeader)
	buf = binary.LittleEndian.AppendUint64(buf, snap)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tables)))
	if err := w.frame(buf); err != nil {
		return 0, err
	}

	ro := store.BeginROAt(snap)
	defer ro.Release()
	totalRows := 0
	for _, t := range tables {
		id := t.Schema.ID
		tableRows := uint64(0)
		chunk := make([]byte, 0, 1<<16)
		count := 0
		flush := func() error {
			if count == 0 {
				return nil
			}
			buf = append(buf[:0], kindRows)
			buf = binary.LittleEndian.AppendUint16(buf, uint16(id))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(count))
			buf = append(buf, chunk...)
			chunk = chunk[:0]
			count = 0
			return w.frame(buf)
		}
		var scanErr error
		t.ScanChains(func(c *mvcc.Chain) bool {
			rec := ro.ReadChain(c)
			if rec == nil {
				return true // not visible at snap (inserted later or deleted)
			}
			chunk = binary.LittleEndian.AppendUint64(chunk, rec.RowID)
			chunk = binary.LittleEndian.AppendUint32(chunk, uint32(len(rec.Data)))
			chunk = append(chunk, rec.Data...)
			count++
			tableRows++
			if count >= rowsPerFrame {
				scanErr = flush()
			}
			return scanErr == nil
		})
		if scanErr != nil {
			return 0, scanErr
		}
		if err := flush(); err != nil {
			return 0, err
		}
		buf = append(buf[:0], kindTable)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(id))
		buf = binary.LittleEndian.AppendUint64(buf, tableRows)
		if err := w.frame(buf); err != nil {
			return 0, err
		}
		totalRows += int(tableRows)
	}
	buf = append(buf[:0], kindTrailer)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(totalRows))
	if err := w.frame(buf); err != nil {
		return 0, err
	}
	return totalRows, nil
}

// read walks a checkpoint file, calling row for every stored row when
// non-nil, and validates the full frame structure: magic, per-frame
// CRCs, per-table counts against their table frames, and the trailer's
// grand total. Any deviation is ErrInvalid — a checkpoint is only
// usable when provably complete.
func read(path string, row func(table storage.TableID, rowID uint64, data []byte) error) (vid uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	hdr := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(r, hdr); err != nil || string(hdr) != fileMagic {
		return 0, fmt.Errorf("%w: bad magic", ErrInvalid)
	}

	sawHeader, sawTrailer := false, false
	var tableCount uint32
	tablesClosed := uint32(0)
	rowsSeen := map[storage.TableID]uint64{}
	openTable := storage.TableID(0)
	hasOpen := false
	var grandTotal uint64

	var lenCRC [8]byte
	for {
		if _, err := io.ReadFull(r, lenCRC[:]); err != nil {
			if err == io.EOF {
				break
			}
			return 0, fmt.Errorf("%w: torn frame header", ErrInvalid)
		}
		n := binary.LittleEndian.Uint32(lenCRC[0:])
		want := binary.LittleEndian.Uint32(lenCRC[4:])
		if n == 0 || n > 256<<20 {
			return 0, fmt.Errorf("%w: absurd frame length", ErrInvalid)
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			return 0, fmt.Errorf("%w: torn frame body", ErrInvalid)
		}
		if crc32.Checksum(body, crcTable) != want {
			return 0, fmt.Errorf("%w: frame CRC mismatch", ErrInvalid)
		}
		if sawTrailer {
			return 0, fmt.Errorf("%w: data after trailer", ErrInvalid)
		}
		switch body[0] {
		case kindHeader:
			if sawHeader || len(body) != 1+8+4 {
				return 0, fmt.Errorf("%w: bad header frame", ErrInvalid)
			}
			sawHeader = true
			vid = binary.LittleEndian.Uint64(body[1:])
			tableCount = binary.LittleEndian.Uint32(body[9:])
		case kindRows:
			if !sawHeader || len(body) < 1+2+4 {
				return 0, fmt.Errorf("%w: bad rows frame", ErrInvalid)
			}
			id := storage.TableID(binary.LittleEndian.Uint16(body[1:]))
			if hasOpen && id != openTable {
				return 0, fmt.Errorf("%w: interleaved tables", ErrInvalid)
			}
			openTable, hasOpen = id, true
			count := binary.LittleEndian.Uint32(body[3:])
			p := body[7:]
			for i := uint32(0); i < count; i++ {
				if len(p) < 12 {
					return 0, fmt.Errorf("%w: short row", ErrInvalid)
				}
				rowID := binary.LittleEndian.Uint64(p)
				dl := binary.LittleEndian.Uint32(p[8:])
				p = p[12:]
				if uint32(len(p)) < dl {
					return 0, fmt.Errorf("%w: short row data", ErrInvalid)
				}
				if row != nil {
					if err := row(id, rowID, p[:dl]); err != nil {
						return 0, err
					}
				}
				p = p[dl:]
				rowsSeen[id]++
			}
			if len(p) != 0 {
				return 0, fmt.Errorf("%w: trailing bytes in rows frame", ErrInvalid)
			}
		case kindTable:
			if !sawHeader || len(body) != 1+2+8 {
				return 0, fmt.Errorf("%w: bad table frame", ErrInvalid)
			}
			id := storage.TableID(binary.LittleEndian.Uint16(body[1:]))
			if hasOpen && id != openTable {
				return 0, fmt.Errorf("%w: table frame for wrong table", ErrInvalid)
			}
			wantRows := binary.LittleEndian.Uint64(body[3:])
			if rowsSeen[id] != wantRows {
				return 0, fmt.Errorf("%w: table %d has %d rows, frames carried %d", ErrInvalid, id, wantRows, rowsSeen[id])
			}
			grandTotal += wantRows
			tablesClosed++
			hasOpen = false
		case kindTrailer:
			if !sawHeader || len(body) != 1+8 {
				return 0, fmt.Errorf("%w: bad trailer frame", ErrInvalid)
			}
			if hasOpen {
				return 0, fmt.Errorf("%w: trailer before table close", ErrInvalid)
			}
			if tablesClosed != tableCount {
				return 0, fmt.Errorf("%w: %d tables closed, header said %d", ErrInvalid, tablesClosed, tableCount)
			}
			if binary.LittleEndian.Uint64(body[1:]) != grandTotal {
				return 0, fmt.Errorf("%w: trailer row total mismatch", ErrInvalid)
			}
			sawTrailer = true
		default:
			return 0, fmt.Errorf("%w: unknown frame kind %d", ErrInvalid, body[0])
		}
	}
	if !sawTrailer {
		return 0, fmt.Errorf("%w: missing trailer (truncated)", ErrInvalid)
	}
	return vid, nil
}

// Verify validates a checkpoint file without loading it and returns its
// VID. Recovery calls this before Restore so a failure cannot leave a
// half-loaded store.
func Verify(path string) (uint64, error) {
	return read(path, nil)
}

// Restore loads a verified checkpoint into an empty store: every row is
// installed at VID 0 under its original RowID (the OLAP replica's row
// identity), and the caller repositions the VID allocator at the
// returned checkpoint VID so WAL replay resumes the dense sequence.
func Restore(path string, store *mvcc.Store) (uint64, int, error) {
	rows := 0
	vid, err := read(path, func(id storage.TableID, rowID uint64, data []byte) error {
		t := store.Table(id)
		if t == nil {
			return fmt.Errorf("checkpoint: restore: unknown table %d (DDL mismatch)", id)
		}
		tup := append([]byte(nil), data...)
		if err := t.LoadRowWithID(rowID, tup); err != nil {
			return fmt.Errorf("checkpoint: restore table %d row %d: %w", id, rowID, err)
		}
		rows++
		return nil
	})
	if err != nil {
		return 0, rows, err
	}
	return vid, rows, nil
}

// syncDir fsyncs a directory so entry operations inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
