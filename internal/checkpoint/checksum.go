package checkpoint

import (
	"encoding/binary"
	"hash/fnv"
	"sort"

	"batchdb/internal/mvcc"
	"batchdb/internal/storage"
)

// TableSum is a content fingerprint of one table at a snapshot: the row
// count plus an order-independent checksum (the wrapping sum of per-row
// FNV-1a hashes over primary key and tuple bytes). Two stores hold the
// same logical state at a snapshot iff their TableSums match — RowIDs
// are deliberately excluded, since scan order (and thus load order) may
// differ between an original run and a recovered one.
type TableSum struct {
	Table storage.TableID `json:"table"`
	Rows  uint64          `json:"rows"`
	Sum   uint64          `json:"sum"`
}

// SumAt fingerprints every table of the store at snapshot snap. Used to
// record the seed fingerprint (VID 0) in the manifest, and by the crash
// harness to compare recovered state against the original at the
// recovered watermark.
func SumAt(store *mvcc.Store, snap uint64) []TableSum {
	ro := store.BeginROAt(snap)
	defer ro.Release()
	var out []TableSum
	for _, t := range store.Tables() {
		ts := TableSum{Table: t.Schema.ID}
		var kb [8]byte
		t.ScanChains(func(c *mvcc.Chain) bool {
			rec := ro.ReadChain(c)
			if rec == nil {
				return true
			}
			h := fnv.New64a()
			binary.LittleEndian.PutUint64(kb[:], c.Key)
			h.Write(kb[:])
			h.Write(rec.Data)
			ts.Sum += h.Sum64()
			ts.Rows++
			return true
		})
		out = append(out, ts)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Table < out[j].Table })
	return out
}

// SumsEqual reports whether two fingerprints describe the same state.
func SumsEqual(a, b []TableSum) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
