package checkpoint

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"batchdb/internal/mvcc"
	"batchdb/internal/oltp"
	"batchdb/internal/wal"
)

// newKVEngine builds an engine over a kv store with put/add/get procs
// registered and seedRows rows pre-loaded (the VID-0 seed).
func newKVEngine(t *testing.T, seedRows int64) (*oltp.Engine, *mvcc.Table) {
	t.Helper()
	store, tbl := newKVStore()
	for i := int64(1); i <= seedRows; i++ {
		loadKV(t, tbl, i, i*100)
	}
	e, err := oltp.New(store, oltp.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	schema := tbl.Schema
	e.Register("put", func(tx *mvcc.Txn, args []byte) ([]byte, error) {
		k := int64(binary.LittleEndian.Uint64(args))
		v := int64(binary.LittleEndian.Uint64(args[8:]))
		tup := schema.NewTuple()
		schema.PutInt64(tup, 0, k)
		schema.PutInt64(tup, 1, v)
		if _, err := tx.Insert(tbl, tup); err != nil {
			return nil, err
		}
		return nil, nil
	})
	e.Register("add", func(tx *mvcc.Txn, args []byte) ([]byte, error) {
		k := int64(binary.LittleEndian.Uint64(args))
		d := int64(binary.LittleEndian.Uint64(args[8:]))
		return nil, tx.Update(tbl, uint64(k), []int{1}, func(tup []byte) {
			schema.PutInt64(tup, 1, schema.GetInt64(tup, 1)+d)
		})
	})
	e.Register("get", func(tx *mvcc.Txn, args []byte) ([]byte, error) {
		k := int64(binary.LittleEndian.Uint64(args))
		tup, ok := tx.Get(tbl, uint64(k))
		if !ok {
			return nil, mvcc.ErrNotFound
		}
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, uint64(schema.GetInt64(tup, 1)))
		return out, nil
	})
	return e, tbl
}

func kvArgs(k, v int64) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b, uint64(k))
	binary.LittleEndian.PutUint64(b[8:], uint64(v))
	return b
}

func mustExec(t *testing.T, e *oltp.Engine, proc string, args []byte) uint64 {
	t.Helper()
	r := e.Exec(proc, args)
	if r.Err != nil {
		t.Fatalf("%s: %v", proc, r.Err)
	}
	return r.CommitVID
}

const bootSeedRows = 10

func TestBootFreshThenRecoverFromSeed(t *testing.T) {
	dir := t.TempDir()
	e1, _ := newKVEngine(t, bootSeedRows)
	st1, info, err := Boot(e1, BootConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Fresh {
		t.Fatal("first boot not Fresh")
	}
	e1.Start()
	const writes = 30
	for i := int64(0); i < writes; i++ {
		mustExec(t, e1, "put", kvArgs(100+i, i))
	}
	mustExec(t, e1, "add", kvArgs(100, 5))
	wantSums := SumAt(e1.Store(), uint64(writes+1))
	st1.Close()
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	// No checkpoint was taken, so recovery needs the identical seed.
	has, err := DirHasCheckpoint(dir)
	if err != nil || has {
		t.Fatalf("DirHasCheckpoint = %v, %v", has, err)
	}
	e2, _ := newKVEngine(t, bootSeedRows)
	st2, info2, err := Boot(e2, BootConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	defer e2.Close()
	if info2.Fresh || info2.CheckpointVID != 0 {
		t.Fatalf("info2 = %+v", info2)
	}
	if info2.Replayed != writes+1 {
		t.Fatalf("replayed %d, want %d", info2.Replayed, writes+1)
	}
	if info2.WatermarkVID != uint64(writes+1) {
		t.Fatalf("watermark = %d", info2.WatermarkVID)
	}
	if !SumsEqual(SumAt(e2.Store(), info2.WatermarkVID), wantSums) {
		t.Fatal("recovered state differs from original")
	}

	// The recovered engine must keep working and log at fresh VIDs.
	e2.Start()
	if vid := mustExec(t, e2, "put", kvArgs(999, 1)); vid != uint64(writes+2) {
		t.Fatalf("post-recovery commit VID = %d, want %d", vid, writes+2)
	}
}

func TestCheckpointBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	e1, _ := newKVEngine(t, bootSeedRows)
	st1, _, err := Boot(e1, BootConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	e1.Start()
	const before, after = 40, 7
	for i := int64(0); i < before; i++ {
		mustExec(t, e1, "put", kvArgs(1000+i, i))
	}
	info, err := st1.Checkpoint(e1)
	if err != nil {
		t.Fatal(err)
	}
	if info.VID != before {
		t.Fatalf("checkpoint vid = %d, want %d", info.VID, before)
	}
	for i := int64(0); i < after; i++ {
		mustExec(t, e1, "add", kvArgs(1000+i, 1))
	}
	wantSums := SumAt(e1.Store(), before+after)
	st1.Close()
	e1.Close()

	// A checkpoint exists: recovery must run WITHOUT the seed and replay
	// only the tail above the checkpoint.
	has, err := DirHasCheckpoint(dir)
	if err != nil || !has {
		t.Fatalf("DirHasCheckpoint = %v, %v", has, err)
	}
	e2, _ := newKVEngine(t, 0) // empty store
	st2, info2, err := Boot(e2, BootConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	defer e2.Close()
	if info2.CheckpointVID != before || info2.FellBack {
		t.Fatalf("info2 = %+v", info2)
	}
	if info2.Replayed != after {
		t.Fatalf("replayed %d, want the WAL tail %d", info2.Replayed, after)
	}
	if info2.WatermarkVID != before+after {
		t.Fatalf("watermark = %d", info2.WatermarkVID)
	}
	if !SumsEqual(SumAt(e2.Store(), before+after), wantSums) {
		t.Fatal("recovered state differs from original")
	}
}

// Satellite: recovery against the wrong seed data must fail loudly, not
// silently replay into wrong state.
func TestSeedMismatchFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	e1, _ := newKVEngine(t, bootSeedRows)
	st1, _, err := Boot(e1, BootConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	e1.Start()
	mustExec(t, e1, "put", kvArgs(100, 1))
	st1.Close()
	e1.Close()

	e2, _ := newKVEngine(t, bootSeedRows+3) // different seed
	if _, _, err := Boot(e2, BootConfig{Dir: dir}); !errors.Is(err, ErrSeedMismatch) {
		t.Fatalf("Boot with wrong seed: %v, want ErrSeedMismatch", err)
	}
	e2.Close()

	// Loading the store through a checkpoint restore path while a seed is
	// present must also be refused (the two are mutually exclusive).
	e3, _ := newKVEngine(t, bootSeedRows)
	st3, info, err := Boot(e3, BootConfig{Dir: dir})
	if err != nil {
		t.Fatalf("correct seed rejected: %v", err)
	}
	if info.Replayed != 1 {
		t.Fatalf("replayed = %d", info.Replayed)
	}
	st3.Close()
	e3.Close()
}

func corruptFile(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// Satellite: a corrupt newest checkpoint must fall back to the previous
// one, at the price of a longer WAL replay — and must be demoted so it
// cannot poison later recoveries or WAL truncation.
func TestCorruptNewestCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	e1, _ := newKVEngine(t, bootSeedRows)
	st1, _, err := Boot(e1, BootConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	e1.Start()
	const n1, n2, n3 = 10, 10, 5
	for i := int64(0); i < n1; i++ {
		mustExec(t, e1, "put", kvArgs(100+i, i))
	}
	if _, err := st1.Checkpoint(e1); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n2; i++ {
		mustExec(t, e1, "add", kvArgs(100+i, 1))
	}
	ck2, err := st1.Checkpoint(e1)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n3; i++ {
		mustExec(t, e1, "add", kvArgs(100+i, 2))
	}
	final := uint64(n1 + n2 + n3)
	wantSums := SumAt(e1.Store(), final)
	st1.Close()
	e1.Close()

	corruptFile(t, ck2.Path)

	e2, _ := newKVEngine(t, 0)
	st2, info2, err := Boot(e2, BootConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !info2.FellBack {
		t.Fatal("recovery did not report the fallback")
	}
	if info2.CheckpointVID != n1 {
		t.Fatalf("fell back to vid %d, want %d", info2.CheckpointVID, n1)
	}
	// The fallback pays with a longer replay: everything above the OLDER
	// checkpoint.
	if info2.Replayed != n2+n3 {
		t.Fatalf("replayed %d, want %d", info2.Replayed, n2+n3)
	}
	if !SumsEqual(SumAt(e2.Store(), final), wantSums) {
		t.Fatal("fallback recovery produced wrong state")
	}
	if st2.Stats().RecoveryFallbacks.Load() != 1 {
		t.Fatal("RecoveryFallbacks not counted")
	}
	// Demotion: the corrupt file is gone and the manifest no longer
	// lists it, so the next recovery is clean.
	if _, err := os.Stat(ck2.Path); !os.IsNotExist(err) {
		t.Fatalf("corrupt checkpoint not deleted: %v", err)
	}
	st2.Close()
	e2.Close()

	e3, _ := newKVEngine(t, 0)
	st3, info3, err := Boot(e3, BootConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	defer e3.Close()
	if info3.FellBack || info3.CheckpointVID != n1 {
		t.Fatalf("after demotion: %+v", info3)
	}
	if !SumsEqual(SumAt(e3.Store(), final), wantSums) {
		t.Fatal("post-demotion recovery wrong")
	}
}

// With every checkpoint corrupt, recovery falls back all the way to the
// seed — possible exactly because the WAL was never truncated past the
// point a surviving checkpoint covers.
func TestAllCheckpointsCorruptFallsBackToSeed(t *testing.T) {
	dir := t.TempDir()
	e1, _ := newKVEngine(t, bootSeedRows)
	st1, _, err := Boot(e1, BootConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	e1.Start()
	const writes = 12
	for i := int64(0); i < writes; i++ {
		mustExec(t, e1, "put", kvArgs(100+i, i))
	}
	ck, err := st1.Checkpoint(e1)
	if err != nil {
		t.Fatal(err)
	}
	wantSums := SumAt(e1.Store(), writes)
	st1.Close()
	e1.Close()
	corruptFile(t, ck.Path)

	// Without the seed: nothing to recover from — loud error, not empty
	// state.
	eBad, _ := newKVEngine(t, 0)
	if _, _, err := Boot(eBad, BootConfig{Dir: dir}); !errors.Is(err, ErrNoValidCheckpoint) {
		t.Fatalf("bootless recovery: %v, want ErrNoValidCheckpoint", err)
	}
	eBad.Close()

	// With the seed loaded, the full log replays.
	e2, _ := newKVEngine(t, bootSeedRows)
	st2, info2, err := Boot(e2, BootConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	defer e2.Close()
	if !info2.FellBack || info2.CheckpointVID != 0 {
		t.Fatalf("info2 = %+v", info2)
	}
	if info2.Replayed != writes {
		t.Fatalf("replayed %d, want %d", info2.Replayed, writes)
	}
	if !SumsEqual(SumAt(e2.Store(), writes), wantSums) {
		t.Fatal("seed-fallback recovery wrong")
	}
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	e1, _ := newKVEngine(t, bootSeedRows)
	// Tiny segments so every few commits rotate.
	st1, _, err := Boot(e1, BootConfig{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	e1.Start()
	defer e1.Close()
	defer st1.Close()

	ckpts := 0
	for round := 0; round < 4; round++ {
		for i := int64(0); i < 25; i++ {
			mustExec(t, e1, "put", kvArgs(int64(round)*100+200+i, i))
		}
		if _, err := st1.Checkpoint(e1); err != nil {
			t.Fatal(err)
		}
		ckpts++
	}
	if got := st1.Stats().Checkpoints.Load(); got != uint64(ckpts) {
		t.Fatalf("Checkpoints counter = %d, want %d", got, ckpts)
	}
	if st1.Stats().SegmentsTruncated.Load() == 0 {
		t.Fatal("no WAL segments were truncated despite multiple checkpoints")
	}
	// Only 2 checkpoints are kept...
	ents, err := os.ReadDir(filepath.Join(dir, "checkpoints"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		names := []string{}
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Fatalf("checkpoint files on disk = %v, want 2", names)
	}
	// ...and every surviving WAL segment starts above the oldest kept
	// checkpoint's cover (its successor-based removal rule means the
	// FIRST remaining segment may still start below, but the second must
	// not be fully covered).
	m, err := loadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Checkpoints) != 2 {
		t.Fatalf("manifest lists %d checkpoints", len(m.Checkpoints))
	}
	oldest := m.Checkpoints[0].VID
	n, err := wal.ReplayDir(filepath.Join(dir, "wal"), oldest, func(wal.Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if wantTail := int(e1.LatestVID() - oldest); n != wantTail {
		t.Fatalf("WAL tail above oldest kept checkpoint = %d records, want %d", n, wantTail)
	}
}

func TestBackgroundRunnerCheckpoints(t *testing.T) {
	dir := t.TempDir()
	e1, _ := newKVEngine(t, bootSeedRows)
	st1, _, err := Boot(e1, BootConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	e1.Start()
	defer e1.Close()
	defer st1.Close()
	st1.StartRunner(e1, Policy{EveryVIDs: 10, Poll: 5 * time.Millisecond})

	for i := int64(0); i < 30; i++ {
		mustExec(t, e1, "put", kvArgs(100+i, i))
	}
	deadline := time.Now().Add(5 * time.Second)
	for st1.Stats().Checkpoints.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background runner never checkpointed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	st1.StopRunner()
	if vid := st1.Stats().LastCheckpointVID.Load(); vid < 10 || vid > 30 {
		t.Fatalf("LastCheckpointVID = %d", vid)
	}
}

func TestManualCheckpointNoProgress(t *testing.T) {
	dir := t.TempDir()
	e1, _ := newKVEngine(t, bootSeedRows)
	st1, _, err := Boot(e1, BootConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	e1.Start()
	defer e1.Close()
	defer st1.Close()
	mustExec(t, e1, "put", kvArgs(100, 1))
	if _, err := st1.Checkpoint(e1); err != nil {
		t.Fatal(err)
	}
	if _, err := st1.Checkpoint(e1); !errors.Is(err, ErrNoProgress) {
		t.Fatalf("idle checkpoint: %v, want ErrNoProgress", err)
	}
}
