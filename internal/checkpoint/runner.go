package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Coordinator yields consistent cut points; implemented by oltp.Engine.
type Coordinator interface {
	CheckpointVID() uint64
}

// Policy says when the background checkpointer fires.
type Policy struct {
	// EveryVIDs checkpoints once this many commits accumulated since
	// the last checkpoint (0 disables the trigger).
	EveryVIDs uint64
	// EveryWALBytes checkpoints once this many WAL bytes accumulated
	// since the last checkpoint (0 disables the trigger).
	EveryWALBytes int64
	// Poll is how often triggers are evaluated (default 200 ms).
	Poll time.Duration
	// Keep is how many checkpoints to retain (default 2: the newest
	// plus its fallback; WAL is only truncated below the oldest kept).
	Keep int
}

// ErrNoProgress reports a manual checkpoint request with no commits
// since the previous checkpoint.
var ErrNoProgress = errors.New("checkpoint: no commits since the last checkpoint")

// StartRunner launches the background checkpointer: every Poll it
// checks the policy triggers and, when due, takes a checkpoint through
// coord's batch-boundary rendezvous. The MVCC snapshot scan runs
// concurrently with OLTP — only the VID capture itself briefly visits
// the dispatcher.
func (st *State) StartRunner(coord Coordinator, pol Policy) {
	if pol.Poll <= 0 {
		pol.Poll = 200 * time.Millisecond
	}
	if pol.Keep > 0 {
		st.keep = pol.Keep
	}
	st.runnerStop = make(chan struct{})
	st.runnerDone = make(chan struct{})
	go func() {
		defer close(st.runnerDone)
		t := time.NewTicker(pol.Poll)
		defer t.Stop()
		for {
			select {
			case <-st.runnerStop:
				return
			case <-t.C:
				if st.inj.Crashed() {
					return // the simulated process is dead
				}
				if !st.due(pol) {
					continue
				}
				if _, err := st.Checkpoint(coord); err != nil && !errors.Is(err, ErrNoProgress) {
					st.stats.CheckpointFailures.Inc()
				}
			}
		}
	}()
}

// StopRunner stops the background checkpointer (idempotent).
func (st *State) StopRunner() {
	if st.runnerStop == nil {
		return
	}
	select {
	case <-st.runnerStop:
	default:
		close(st.runnerStop)
	}
	<-st.runnerDone
}

func (st *State) due(pol Policy) bool {
	st.mu.Lock()
	last, baseline := st.lastCkptVID, st.walBytesAtCkpt
	st.mu.Unlock()
	if pol.EveryVIDs > 0 && st.store.VIDs.Watermark()-last >= pol.EveryVIDs {
		return true
	}
	if pol.EveryWALBytes > 0 && st.wal.Appended()-baseline >= pol.EveryWALBytes {
		return true
	}
	return false
}

// Checkpoint takes a checkpoint now: capture a batch-boundary VID,
// write the snapshot file, publish it in the manifest, prune old
// checkpoint files, and truncate WAL segments below the oldest kept
// checkpoint (so a corrupt-newest fallback still finds its WAL suffix).
func (st *State) Checkpoint(coord Coordinator) (Info, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	w := coord.CheckpointVID()
	if w <= st.lastCkptVID {
		return Info{VID: st.lastCkptVID}, ErrNoProgress
	}
	info, err := Write(st.ckptDir, st.store, w, st.inj)
	if err != nil {
		return Info{}, fmt.Errorf("checkpoint: write: %w", err)
	}
	man := st.man
	man.Checkpoints = append(append([]Entry(nil), st.man.Checkpoints...), Entry{
		VID: w, File: filepath.Base(info.Path), Bytes: info.Bytes,
	})
	if len(man.Checkpoints) > st.keep {
		man.Checkpoints = man.Checkpoints[len(man.Checkpoints)-st.keep:]
	}
	if err := man.store(st.dir, st.inj); err != nil {
		// The file exists but is unreferenced; the old manifest stays
		// authoritative and the orphan is pruned by a later success.
		return Info{}, fmt.Errorf("checkpoint: manifest: %w", err)
	}
	st.man = man
	st.pruneCheckpointFiles()
	// WAL below the oldest kept checkpoint is unreachable by any
	// recovery (even a fallback) and can go.
	cover := man.Checkpoints[0].VID
	if len(man.Checkpoints) < 2 {
		// A single checkpoint has no fallback; keep the full WAL so
		// seed-based recovery remains possible if it corrupts.
		cover = 0
	}
	if err := st.wal.TruncateTo(cover); err != nil {
		return Info{}, fmt.Errorf("checkpoint: truncate wal: %w", err)
	}
	st.lastCkptVID = w
	st.walBytesAtCkpt = st.wal.Appended()
	st.stats.Checkpoints.Inc()
	st.stats.LastCheckpointVID.Set(int64(w))
	st.stats.LastCheckpointNanos.Set(int64(info.Elapsed))
	st.stats.LastCheckpointBytes.Set(info.Bytes)
	st.stats.LastCheckpointUnixNanos.Set(time.Now().UnixNano())
	return info, nil
}

// pruneCheckpointFiles removes checkpoint files the manifest no longer
// references.
func (st *State) pruneCheckpointFiles() {
	keep := make(map[string]bool, len(st.man.Checkpoints))
	for _, e := range st.man.Checkpoints {
		keep[e.File] = true
	}
	ents, err := os.ReadDir(st.ckptDir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, "ckpt-") && strings.HasSuffix(name, ".ck") && !keep[name] {
			os.Remove(filepath.Join(st.ckptDir, name))
		}
	}
}
