package checkpoint_test

// Crash-matrix coverage for the bulk-ingest path: at every crash point
// in the durability layer, a governed-path ingest load (chunked through
// the bulk stored procedure) runs alongside TPC-C traffic and
// background checkpoints, the process dies, and recovery must show
// (a) every acknowledged chunk fully present — acks are issued after
// group commit, so they are durability promises — and (b) every chunk
// all-or-nothing: a crash can never leave half a chunk behind.

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"batchdb/internal/checkpoint"
	"batchdb/internal/crash"
	"batchdb/internal/ingest"
	"batchdb/internal/mvcc"
	"batchdb/internal/oltp"
	"batchdb/internal/storage"
	"batchdb/internal/tpcc"
)

const (
	ingestCrashTableID  = 42
	ingestCrashChunkLen = 256
)

func ingestCrashSchema() *storage.Schema {
	return storage.NewSchema(ingestCrashTableID, "bulk", []storage.Column{
		{Name: "id", Type: storage.Int64},
		{Name: "val", Type: storage.Int64},
	}, []int{0})
}

// newIngestCrashEngine builds a TPC-C instance with the bulk table and
// ingest procedure installed. GC stays off so the pre-crash store can
// be read at the recovered watermark as the oracle.
func newIngestCrashEngine(t *testing.T, seed bool) (*tpcc.DB, *oltp.Engine) {
	t.Helper()
	db := tpcc.NewDB(tpcc.SmallScale(1))
	if seed {
		if err := tpcc.Generate(db, 1); err != nil {
			t.Fatal(err)
		}
	}
	schema := ingestCrashSchema()
	db.Store.CreateTable(schema, func(tup []byte) uint64 {
		return uint64(schema.GetInt64(tup, 0))
	}, 4096)
	e, err := oltp.New(db.Store, oltp.Config{Workers: 2, GCEveryTxns: -1})
	if err != nil {
		t.Fatal(err)
	}
	tpcc.RegisterProcs(e, db, false)
	ingest.RegisterProc(e)
	return db, e
}

func TestIngestCrashRecoveryMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("ingest crash matrix is not short")
	}
	for _, pt := range crash.Points {
		pt := pt
		t.Run(string(pt), func(t *testing.T) {
			t.Parallel()
			runIngestCrashPoint(t, pt)
		})
	}
}

func runIngestCrashPoint(t *testing.T, pt crash.Point) {
	dir := t.TempDir()
	schema := ingestCrashSchema()
	db1, e1 := newIngestCrashEngine(t, true)
	inj := &crash.Injector{}
	st1, _, err := checkpoint.Boot(e1, checkpoint.BootConfig{
		Dir: dir, SegmentBytes: harnessSegBytes, Sync: true, Inj: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	e1.Start()

	inj.Arm(crash.Plan{Point: pt, Countdown: 2, TearFrac: 0.5})

	var maxAcked atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Interactive TPC-C alongside the load.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			drv := tpcc.NewDriver(db1.Scale, seed)
			for i := 0; i < 5000; i++ {
				select {
				case <-stop:
					return
				default:
				}
				proc, args := drv.Next()
				r := e1.Exec(proc, args)
				switch {
				case r.Err == nil:
					for cur := maxAcked.Load(); r.CommitVID > cur; cur = maxAcked.Load() {
						if maxAcked.CompareAndSwap(cur, r.CommitVID) {
							break
						}
					}
				case errors.Is(r.Err, tpcc.ErrRollback), errors.Is(r.Err, mvcc.ErrConflict):
				case errors.Is(r.Err, oltp.ErrNotDurable):
					return
				default:
					t.Errorf("unexpected txn error: %v", r.Err)
					return
				}
			}
		}(int64(c)*977 + 42)
	}

	// The bulk load: an endless deterministic stream, chunked through
	// the ingest loader (ungoverned — the crash matrix stresses
	// durability, not admission). ackedChunks is only appended by the
	// loader goroutine and read after wg.Wait.
	var ackedChunks []ingest.ChunkAck
	wg.Add(1)
	go func() {
		defer wg.Done()
		l := ingest.NewLoader(e1, ingestCrashTableID, ingest.Config{
			ChunkRows:       ingestCrashChunkLen,
			DisableGovernor: true,
			OnChunk: func(a ingest.ChunkAck) {
				ackedChunks = append(ackedChunks, a)
				for cur := maxAcked.Load(); a.VID > cur; cur = maxAcked.Load() {
					if maxAcked.CompareAndSwap(cur, a.VID) {
						break
					}
				}
			},
		})
		next := int64(0)
		_, err := l.Load(func() ([]byte, bool) {
			// Only stop at chunk boundaries so every submitted chunk is
			// full — the torn-chunk scan below relies on it.
			if next%ingestCrashChunkLen == 0 {
				select {
				case <-stop:
					return nil, false
				default:
				}
			}
			tup := schema.NewTuple()
			schema.PutInt64(tup, 0, next)
			schema.PutInt64(tup, 1, next*3)
			next++
			return tup, true
		})
		if err != nil && !errors.Is(err, oltp.ErrNotDurable) && !errors.Is(err, oltp.ErrClosed) {
			t.Errorf("unexpected load error: %v", err)
		}
	}()

	// Checkpoint driver, as in the base matrix.
	ckptDone := make(chan struct{})
	go func() {
		defer close(ckptDone)
		var last uint64
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			if inj.Crashed() {
				return
			}
			if w := e1.LatestVID(); w-last >= 15 {
				if _, err := st1.Checkpoint(e1); err != nil {
					if errors.Is(err, crash.ErrCrashed) {
						return
					}
					if !errors.Is(err, checkpoint.ErrNoProgress) {
						t.Errorf("checkpoint: %v", err)
						return
					}
				}
				last = w
			}
		}
	}()

	deadline := time.Now().Add(30 * time.Second)
	for !inj.Crashed() {
		if time.Now().After(deadline) {
			close(stop)
			wg.Wait()
			<-ckptDone
			t.Fatalf("crash point %s never fired", pt)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	<-ckptDone
	acked := maxAcked.Load()
	origStore := e1.Store()
	_ = e1.Close()

	// --- restart ---
	has, err := checkpoint.DirHasCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, e2 := newIngestCrashEngine(t, !has)
	st2, info, err := checkpoint.Boot(e2, checkpoint.BootConfig{
		Dir: dir, SegmentBytes: harnessSegBytes, Sync: true,
	})
	if err != nil {
		t.Fatalf("recovery after crash at %s: %v", pt, err)
	}
	defer e2.Close()
	defer st2.Close()

	w := info.WatermarkVID
	if w < acked {
		t.Fatalf("recovered watermark %d < highest acknowledged commit %d", w, acked)
	}
	want := checkpoint.SumAt(origStore, w)
	got := checkpoint.SumAt(e2.Store(), w)
	if !checkpoint.SumsEqual(got, want) {
		t.Fatalf("state divergence after crash at %s (watermark %d)", pt, w)
	}

	// Pin the two ingest-specific guarantees. Every acknowledged chunk
	// survives in full; every chunk — acked or not — is all-or-nothing
	// (an unacked chunk may have committed just before the crash and
	// lost only its ack, but it can never be torn).
	tx := e2.Store().BeginRO()
	defer tx.Abort()
	tbl2 := e2.Store().Table(ingestCrashTableID)
	for _, a := range ackedChunks {
		for r := 0; r < a.Rows; r++ {
			key := uint64(a.Index*ingestCrashChunkLen + r)
			tup, ok := tx.Get(tbl2, key)
			if !ok {
				t.Fatalf("crash at %s: acked chunk %d (vid %d) lost row %d", pt, a.Index, a.VID, key)
			}
			if v := schema.GetInt64(tup, 1); v != int64(key)*3 {
				t.Fatalf("crash at %s: acked row %d has val %d", pt, key, v)
			}
		}
	}
	// Scan forward past the acked prefix until the first fully absent
	// chunk; each chunk boundary must be clean.
	for ci := 0; ; ci++ {
		present := 0
		for r := 0; r < ingestCrashChunkLen; r++ {
			if _, ok := tx.Get(tbl2, uint64(ci*ingestCrashChunkLen+r)); ok {
				present++
			}
		}
		if present == 0 {
			break
		}
		if present != ingestCrashChunkLen {
			t.Fatalf("crash at %s: chunk %d torn: %d/%d rows present", pt, ci, present, ingestCrashChunkLen)
		}
	}
}
