package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestBucketIndexMonotonic(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 2, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, 1 << 40, math.MaxInt64} {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex not monotonic at %d: %d < %d", v, i, prev)
		}
		prev = i
	}
}

func TestBucketRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		v := rng.Int63n(1 << 40)
		bv := bucketValue(bucketIndex(v))
		if bv < v {
			t.Fatalf("bucket upper edge %d below value %d", bv, v)
		}
		if v > 64 {
			rel := float64(bv-v) / float64(v)
			if rel > 0.04 {
				t.Fatalf("relative error %.3f at value %d (edge %d)", rel, v, bv)
			}
		}
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := &Histogram{}
	// Uniform 1..1000.
	for i := int64(1); i <= 1000; i++ {
		h.Record(i)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	checks := []struct {
		p    float64
		want int64
	}{{50, 500}, {90, 900}, {99, 990}, {100, 1000}}
	for _, c := range checks {
		got := h.Percentile(c.p)
		if float64(got) < float64(c.want)*0.95 || float64(got) > float64(c.want)*1.08 {
			t.Errorf("p%.0f = %d, want ~%d", c.p, got, c.want)
		}
	}
	if h.Max() != 1000 {
		t.Errorf("Max = %d", h.Max())
	}
	if m := h.Mean(); m < 495 || m > 506 {
		t.Errorf("Mean = %f", m)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := &Histogram{}
	if h.Percentile(99) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestHistogramMergeAndReset(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	for i := int64(0); i < 100; i++ {
		a.Record(10)
		b.Record(1000)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Max() != 1000 {
		t.Fatalf("merged max = %d", a.Max())
	}
	a.Reset()
	if a.Count() != 0 || a.Percentile(50) != 0 {
		t.Fatal("Reset incomplete")
	}
}

// Property: histogram percentile is within 4% of the exact percentile
// for arbitrary positive samples.
func TestPercentileAccuracyProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := &Histogram{}
		vals := make([]int64, len(raw))
		for i, r := range raw {
			vals[i] = int64(r%1000000) + 100
			h.Record(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, p := range []float64{50, 90, 99} {
			rank := int(math.Ceil(p/100*float64(len(vals)))) - 1
			if rank < 0 {
				rank = 0
			}
			exact := vals[rank]
			got := h.Percentile(p)
			if float64(got) < float64(exact) || float64(got) > float64(exact)*1.04+32 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 10000; i++ {
				h.Record(i % 1000)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 40000 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestCounterAndRate(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if c.Load() != 10 {
		t.Fatalf("Load = %d", c.Load())
	}
	if r := RatePerSec(100, 300, 2*time.Second); r != 100 {
		t.Fatalf("RatePerSec = %f", r)
	}
	if r := RatePerSec(0, 10, 0); r != 0 {
		t.Fatalf("zero-elapsed rate = %f", r)
	}
}

func TestBusyTracker(t *testing.T) {
	var b BusyTracker
	b.Track(250 * time.Millisecond)
	b.Track(250 * time.Millisecond)
	// 500ms busy over 1s on 1 core = 50%.
	if u := b.Utilization(time.Second, 1); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("Utilization = %f", u)
	}
	// Over 2 cores = 25%.
	if u := b.Utilization(time.Second, 2); math.Abs(u-0.25) > 1e-9 {
		t.Fatalf("Utilization(2) = %f", u)
	}
	// Clamped at 1.
	b.Track(10 * time.Second)
	if u := b.Utilization(time.Second, 1); u != 1 {
		t.Fatalf("clamped Utilization = %f", u)
	}
	b.Reset()
	if b.Busy() != 0 {
		t.Fatal("Reset incomplete")
	}
}
