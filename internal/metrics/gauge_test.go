package metrics

import (
	"sync"
	"testing"
)

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Load() != 0 {
		t.Fatalf("zero gauge = %d", g.Load())
	}
	g.Set(5)
	g.Add(3)
	g.Add(-10)
	if g.Load() != -2 {
		t.Fatalf("gauge = %d, want -2", g.Load())
	}
	g.Set(0)

	// Balanced concurrent Add(+1)/Add(-1) pairs must cancel out.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if g.Load() != 0 {
		t.Fatalf("unbalanced concurrent gauge = %d", g.Load())
	}
}
