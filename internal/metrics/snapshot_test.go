package metrics

import (
	"sync"
	"sync/atomic"
	"testing"
)

// A Snapshot taken while writers hammer Record must be internally
// coherent: its Count equals its bucket mass, and percentiles/mean stay
// inside the recorded value range. Before the snapshot rework,
// Percentile read count and buckets independently and Mean paired a
// fresh sum with a stale count — with all samples equal to v, the mean
// could exceed v.
func TestHistogramSnapshotCoherentUnderConcurrentRecord(t *testing.T) {
	v := int64(123456)
	lo, hi := int64(float64(v)*0.96), int64(float64(v)*1.04)

	var h Histogram
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				h.Record(v)
			}
		}()
	}

	for i := 0; i < 2000; i++ {
		s := h.Snapshot()
		var mass uint64
		for _, n := range s.Buckets {
			mass += n
		}
		if mass != s.Count {
			t.Fatalf("iteration %d: snapshot count %d != bucket mass %d", i, s.Count, mass)
		}
		if s.Count == 0 {
			continue
		}
		for _, p := range []float64{0, 50, 90, 99, 100} {
			if got := s.Percentile(p); got < lo || got > hi {
				t.Fatalf("iteration %d: p%.0f = %d outside [%d, %d]", i, p, got, lo, hi)
			}
		}
		if m := s.Mean(); m < float64(lo) || m > float64(hi) {
			t.Fatalf("iteration %d: mean %f outside [%d, %d] (exact=%v)", i, m, lo, hi, s.Exact)
		}
		if got := h.Percentile(99); got < lo || got > hi {
			t.Fatalf("iteration %d: Histogram.Percentile(99) = %d outside [%d, %d]", i, got, lo, hi)
		}
	}
	stop.Store(true)
	wg.Wait()

	// Quiescent now: the snapshot must be exact and agree with the live
	// accessors.
	s := h.Snapshot()
	if !s.Exact {
		t.Fatal("quiescent snapshot not exact")
	}
	if s.Count != h.Count() || s.Sum != h.Sum() || s.Max != h.Max() {
		t.Fatalf("quiescent snapshot (%d, %d, %d) != live (%d, %d, %d)",
			s.Count, s.Sum, s.Max, h.Count(), h.Sum(), h.Max())
	}
	if s.Sum != int64(s.Count)*v {
		t.Fatalf("exact sum %d != count %d * %d", s.Sum, s.Count, v)
	}
}

// Merging a histogram that is being concurrently recorded into must
// carry a coherent copy: merged count == merged bucket mass.
func TestHistogramMergeCoherentUnderConcurrentRecord(t *testing.T) {
	var src Histogram
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(1); !stop.Load(); i++ {
			src.Record(i % 100000)
		}
	}()
	for i := 0; i < 200; i++ {
		var dst Histogram
		dst.Merge(&src)
		s := dst.Snapshot()
		var mass uint64
		for _, n := range s.Buckets {
			mass += n
		}
		if mass != s.Count {
			t.Fatalf("iteration %d: merged count %d != bucket mass %d", i, s.Count, mass)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// Delta of two snapshots must describe exactly the samples recorded
// between them: counts, percentiles within bucket error, and coherence
// under concurrent recording (clamped, never negative).
func TestSnapshotDelta(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(1000) // 1µs era
	}
	s0 := h.Snapshot()
	for i := 0; i < 50; i++ {
		h.Record(1000000) // 1ms era
	}
	s1 := h.Snapshot()
	d := s1.Delta(&s0)
	if d.Count != 50 {
		t.Fatalf("delta count %d, want 50", d.Count)
	}
	p99 := d.Percentile(99)
	if p99 < 960000 || p99 > 1040000 {
		t.Fatalf("delta p99 = %d, want ~1000000", p99)
	}
	// The cumulative histogram's p99 is also ~1ms here, but its p50
	// still sees the old 1µs mass — the delta's p50 must not.
	if p50 := d.Percentile(50); p50 < 960000 {
		t.Fatalf("delta p50 = %d, want ~1000000 (window excludes old samples)", p50)
	}
	if !d.Exact || d.Sum != 50*1000000 {
		t.Fatalf("delta sum %d exact=%v, want exact 50000000", d.Sum, d.Exact)
	}

	// Empty window.
	e := s1.Delta(&s1)
	if e.Count != 0 || e.Percentile(99) != 0 {
		t.Fatalf("self-delta not empty: count=%d", e.Count)
	}

	// Swapped arguments clamp to empty rather than underflow.
	sw := s0.Delta(&s1)
	if sw.Count != 0 {
		t.Fatalf("reversed delta count %d, want 0 (clamped)", sw.Count)
	}

	// Coherence under concurrent recording.
	var h2 Histogram
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h2.Record(500)
			}
		}
	}()
	prev := h2.Snapshot()
	for i := 0; i < 500; i++ {
		cur := h2.Snapshot()
		d := cur.Delta(&prev)
		var mass uint64
		for _, n := range d.Buckets {
			mass += n
		}
		if mass != d.Count {
			t.Fatalf("delta incoherent: count %d mass %d", d.Count, mass)
		}
		if d.Count > 0 {
			if p := d.Percentile(99); p < 480 || p > 520 {
				t.Fatalf("delta p99 %d outside recorded range", p)
			}
		}
		prev = cur
	}
	close(stop)
	wg.Wait()
}
