package metrics

import (
	"sync"
	"sync/atomic"
	"testing"
)

// A Snapshot taken while writers hammer Record must be internally
// coherent: its Count equals its bucket mass, and percentiles/mean stay
// inside the recorded value range. Before the snapshot rework,
// Percentile read count and buckets independently and Mean paired a
// fresh sum with a stale count — with all samples equal to v, the mean
// could exceed v.
func TestHistogramSnapshotCoherentUnderConcurrentRecord(t *testing.T) {
	v := int64(123456)
	lo, hi := int64(float64(v)*0.96), int64(float64(v)*1.04)

	var h Histogram
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				h.Record(v)
			}
		}()
	}

	for i := 0; i < 2000; i++ {
		s := h.Snapshot()
		var mass uint64
		for _, n := range s.Buckets {
			mass += n
		}
		if mass != s.Count {
			t.Fatalf("iteration %d: snapshot count %d != bucket mass %d", i, s.Count, mass)
		}
		if s.Count == 0 {
			continue
		}
		for _, p := range []float64{0, 50, 90, 99, 100} {
			if got := s.Percentile(p); got < lo || got > hi {
				t.Fatalf("iteration %d: p%.0f = %d outside [%d, %d]", i, p, got, lo, hi)
			}
		}
		if m := s.Mean(); m < float64(lo) || m > float64(hi) {
			t.Fatalf("iteration %d: mean %f outside [%d, %d] (exact=%v)", i, m, lo, hi, s.Exact)
		}
		if got := h.Percentile(99); got < lo || got > hi {
			t.Fatalf("iteration %d: Histogram.Percentile(99) = %d outside [%d, %d]", i, got, lo, hi)
		}
	}
	stop.Store(true)
	wg.Wait()

	// Quiescent now: the snapshot must be exact and agree with the live
	// accessors.
	s := h.Snapshot()
	if !s.Exact {
		t.Fatal("quiescent snapshot not exact")
	}
	if s.Count != h.Count() || s.Sum != h.Sum() || s.Max != h.Max() {
		t.Fatalf("quiescent snapshot (%d, %d, %d) != live (%d, %d, %d)",
			s.Count, s.Sum, s.Max, h.Count(), h.Sum(), h.Max())
	}
	if s.Sum != int64(s.Count)*v {
		t.Fatalf("exact sum %d != count %d * %d", s.Sum, s.Count, v)
	}
}

// Merging a histogram that is being concurrently recorded into must
// carry a coherent copy: merged count == merged bucket mass.
func TestHistogramMergeCoherentUnderConcurrentRecord(t *testing.T) {
	var src Histogram
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(1); !stop.Load(); i++ {
			src.Record(i % 100000)
		}
	}()
	for i := 0; i < 200; i++ {
		var dst Histogram
		dst.Merge(&src)
		s := dst.Snapshot()
		var mass uint64
		for _, n := range s.Buckets {
			mass += n
		}
		if mass != s.Count {
			t.Fatalf("iteration %d: merged count %d != bucket mass %d", i, s.Count, mass)
		}
	}
	stop.Store(true)
	wg.Wait()
}
