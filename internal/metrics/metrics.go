// Package metrics provides the measurement primitives used by BatchDB's
// evaluation harness: concurrent log-bucketed latency histograms (for
// the 50th/90th/99th percentile plots of paper Figs. 5b, 7b, 7e),
// throughput counters, and per-component busy-time accounting (the CPU
// utilization plots of Figs. 7c and 8).
package metrics

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Histogram records int64 samples (typically latencies in nanoseconds)
// into logarithmically spaced buckets: 64 powers of two, each split into
// 32 linear sub-buckets, giving a worst-case relative error of about 3%
// — ample for percentile reporting. All methods are safe for concurrent
// use.
type Histogram struct {
	buckets [64 * 32]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
}

func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < 32 {
		return int(v) // first power covers 0..31 exactly
	}
	// Major = position of the highest set bit; minor = next 5 bits.
	major := 63 - leadingZeros(uint64(v))
	minor := (v >> (uint(major) - 5)) & 31
	return major*32 + int(minor)
}

func leadingZeros(v uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if v&(1<<uint(i)) != 0 {
			return n
		}
		n++
	}
	return 64
}

// bucketValue returns a representative value (upper edge) for bucket i.
func bucketValue(i int) int64 {
	major := i / 32
	minor := i % 32
	if major < 5 {
		return int64(i%32) | int64(major)<<5 // exact low range
	}
	base := int64(1) << uint(major)
	step := base / 32
	return base + int64(minor+1)*step - 1
}

// Record adds one sample. The count is incremented last — it publishes
// the sample, so a Snapshot whose bucket mass equals a stable count read
// has seen every published sample's bucket increment.
func (h *Histogram) Record(v int64) {
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
}

// RecordSince records the elapsed time since start in nanoseconds.
func (h *Histogram) RecordSince(start time.Time) { h.Record(int64(time.Since(start))) }

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Snapshot is a coherent point-in-time copy of a Histogram: its Count
// always equals the sum of its Buckets, so ranks computed from Count
// can never run past the bucket mass (the incoherence a raw concurrent
// read suffers from).
type Snapshot struct {
	Buckets [64 * 32]uint64
	Count   uint64
	Sum     int64
	Max     int64
	// Exact reports that the copy was taken in a quiescent instant
	// (count stable across the bucket scan): Sum is then the exact
	// sample sum. Otherwise Count/Buckets are still mutually coherent
	// but Sum is reconstructed from bucket edges (<= ~3% relative
	// error), keeping Mean inside the recorded value range.
	Exact bool
}

// Snapshot takes a coherent copy. It retries a few times waiting for a
// quiescent instant; under sustained concurrent recording it falls back
// to bucket-derived totals, which are internally consistent by
// construction.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for attempt := 0; ; attempt++ {
		c1 := h.count.Load()
		s.Sum = h.sum.Load()
		s.Max = h.max.Load()
		var total uint64
		for i := range h.buckets {
			v := h.buckets[i].Load()
			s.Buckets[i] = v
			total += v
		}
		if h.count.Load() == c1 && total == c1 {
			s.Count = total
			s.Exact = true
			return s
		}
		if attempt >= 3 {
			// Concurrent writers kept the counters moving: publish the
			// bucket cut as the truth and reconstruct the sum from it.
			s.Count = total
			s.Sum = 0
			for i, n := range s.Buckets {
				if n > 0 {
					s.Sum += int64(n) * bucketValue(i)
				}
			}
			s.Exact = false
			return s
		}
	}
}

// Delta returns the samples recorded between prev and s as a snapshot
// of their own: the windowed view an SLO governor samples from a
// cumulative histogram. prev must be an earlier snapshot of the same
// histogram; buckets are subtracted with clamping so a mismatched pair
// degrades to zeros rather than underflowing. Max is inherited from s
// (an upper bound — the true window max is not recoverable), and Sum is
// taken as the exact difference only when both snapshots were exact.
func (s *Snapshot) Delta(prev *Snapshot) Snapshot {
	var d Snapshot
	var total uint64
	for i := range s.Buckets {
		if s.Buckets[i] > prev.Buckets[i] {
			d.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
			total += d.Buckets[i]
		}
	}
	d.Count = total
	d.Max = s.Max
	if s.Exact && prev.Exact && s.Sum >= prev.Sum {
		d.Sum = s.Sum - prev.Sum
		d.Exact = true
	} else {
		for i, n := range d.Buckets {
			if n > 0 {
				d.Sum += int64(n) * bucketValue(i)
			}
		}
	}
	return d
}

// Mean returns the snapshot's arithmetic mean, or 0 if empty.
func (s *Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Percentile returns the value at quantile p in [0,100] — the upper
// edge of the bucket containing the p-th sample of this snapshot.
func (s *Snapshot) Percentile(p float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p / 100 * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := range s.Buckets {
		seen += s.Buckets[i]
		if seen >= rank {
			return bucketValue(i)
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean of the samples, or 0 if empty. It is
// computed from one coherent snapshot, so concurrent Records cannot
// pair a fresh sum with a stale count.
func (h *Histogram) Mean() float64 {
	s := h.Snapshot()
	return s.Mean()
}

// Max returns the largest recorded sample.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Percentile returns the value at quantile p in [0,100]. The result is
// the upper edge of the bucket containing the p-th sample. The rank and
// the bucket scan come from one coherent snapshot (see Snapshot), so a
// concurrent Record can never make the rank run past the bucket mass.
func (h *Histogram) Percentile(p float64) int64 {
	s := h.Snapshot()
	return s.Percentile(p)
}

// Reset clears the histogram. Not linearizable with concurrent Records;
// use between measurement phases.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// Merge adds other's samples into h, reading other through one coherent
// snapshot so a concurrent Record on other cannot desynchronize the
// merged count from the merged bucket mass.
func (h *Histogram) Merge(other *Histogram) {
	s := other.Snapshot()
	for i := range s.Buckets {
		if n := s.Buckets[i]; n > 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(s.Count)
	h.sum.Add(s.Sum)
	for {
		m := h.max.Load()
		if s.Max <= m || h.max.CompareAndSwap(m, s.Max) {
			break
		}
	}
}

// Summary formats count/mean/percentiles as milliseconds for reports.
// All figures come from the same snapshot.
func (h *Histogram) Summary() string {
	s := h.Snapshot()
	return fmt.Sprintf("n=%d mean=%.2fms p50=%.2fms p90=%.2fms p99=%.2fms max=%.2fms",
		s.Count, s.Mean()/1e6,
		float64(s.Percentile(50))/1e6, float64(s.Percentile(90))/1e6,
		float64(s.Percentile(99))/1e6, float64(s.Max)/1e6)
}

// Counter is a concurrent event counter with windowed rate reporting.
type Counter struct {
	n atomic.Uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.n.Load() }

// Gauge is a concurrent instantaneous value (e.g. the number of
// currently connected replicas, or seconds spent degraded).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d (d may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// DurabilityStats aggregates the durability subsystem's counters:
// checkpointing progress, WAL segment usage, and recovery cost. One
// instance is shared by the WAL segment manager, the checkpointer, and
// the recovery path of a data-dir instance.
type DurabilityStats struct {
	// Checkpoints counts completed checkpoints; CheckpointFailures
	// counts attempts that did not produce a manifest-referenced file.
	Checkpoints        Counter
	CheckpointFailures Counter
	// LastCheckpoint* describe the most recent completed checkpoint.
	LastCheckpointVID   Gauge
	LastCheckpointNanos Gauge
	LastCheckpointBytes Gauge
	// LastCheckpointUnixNanos is the wall-clock completion time of the
	// most recent checkpoint (UnixNano; 0 = none yet) — the input to
	// the exported checkpoint-age gauge.
	LastCheckpointUnixNanos Gauge
	// WALAppendedBytes counts bytes group-committed into segments since
	// open; WALSegments is the live segment count; SegmentsTruncated
	// counts segments unlinked because a checkpoint superseded them.
	WALAppendedBytes  Counter
	WALSegments       Gauge
	SegmentsTruncated Counter
	// WALFsyncNanos measures each group-commit fsync (only recorded
	// when the log runs with Sync enabled).
	WALFsyncNanos Histogram
	// Recovery* describe the last recovery: commands replayed from the
	// WAL tail, time spent replaying, and how often the newest
	// checkpoint failed verification and an older one was used.
	RecoveryReplayed  Counter
	RecoveryNanos     Gauge
	RecoveryFallbacks Counter
}

// RatePerSec computes the rate of events between two readings.
func RatePerSec(before, after uint64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(after-before) / elapsed.Seconds()
}

// BusyTracker accounts wall-clock busy time for one component (e.g. the
// OLTP worker pool). Workers wrap their work in Track; Utilization
// reports busy time as a fraction of elapsed * cores — the quantity
// plotted in the paper's CPU-utilization figures.
type BusyTracker struct {
	busy atomic.Int64 // nanoseconds
}

// Track records d of busy time.
func (b *BusyTracker) Track(d time.Duration) { b.busy.Add(int64(d)) }

// TrackSince records busy time since start and returns the duration.
func (b *BusyTracker) TrackSince(start time.Time) time.Duration {
	d := time.Since(start)
	b.busy.Add(int64(d))
	return d
}

// Busy returns the accumulated busy time.
func (b *BusyTracker) Busy() time.Duration { return time.Duration(b.busy.Load()) }

// Utilization returns busy/(elapsed*cores) clamped to [0,1].
func (b *BusyTracker) Utilization(elapsed time.Duration, cores int) float64 {
	if elapsed <= 0 || cores <= 0 {
		return 0
	}
	u := float64(b.busy.Load()) / (float64(elapsed) * float64(cores))
	if u > 1 {
		u = 1
	}
	if u < 0 {
		u = 0
	}
	return u
}

// Reset clears accumulated busy time.
func (b *BusyTracker) Reset() { b.busy.Store(0) }
