// Package metrics provides the measurement primitives used by BatchDB's
// evaluation harness: concurrent log-bucketed latency histograms (for
// the 50th/90th/99th percentile plots of paper Figs. 5b, 7b, 7e),
// throughput counters, and per-component busy-time accounting (the CPU
// utilization plots of Figs. 7c and 8).
package metrics

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Histogram records int64 samples (typically latencies in nanoseconds)
// into logarithmically spaced buckets: 64 powers of two, each split into
// 32 linear sub-buckets, giving a worst-case relative error of about 3%
// — ample for percentile reporting. All methods are safe for concurrent
// use.
type Histogram struct {
	buckets [64 * 32]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
}

func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < 32 {
		return int(v) // first power covers 0..31 exactly
	}
	// Major = position of the highest set bit; minor = next 5 bits.
	major := 63 - leadingZeros(uint64(v))
	minor := (v >> (uint(major) - 5)) & 31
	return major*32 + int(minor)
}

func leadingZeros(v uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if v&(1<<uint(i)) != 0 {
			return n
		}
		n++
	}
	return 64
}

// bucketValue returns a representative value (upper edge) for bucket i.
func bucketValue(i int) int64 {
	major := i / 32
	minor := i % 32
	if major < 5 {
		return int64(i%32) | int64(major)<<5 // exact low range
	}
	base := int64(1) << uint(major)
	step := base / 32
	return base + int64(minor+1)*step - 1
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// RecordSince records the elapsed time since start in nanoseconds.
func (h *Histogram) RecordSince(start time.Time) { h.Record(int64(time.Since(start))) }

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the arithmetic mean of the samples, or 0 if empty.
func (h *Histogram) Mean() float64 {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(c)
}

// Max returns the largest recorded sample.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Percentile returns the value at quantile p in [0,100]. The result is
// the upper edge of the bucket containing the p-th sample.
func (h *Histogram) Percentile(p float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p / 100 * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return bucketValue(i)
		}
	}
	return h.max.Load()
}

// Reset clears the histogram. Not linearizable with concurrent Records;
// use between measurement phases.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// Merge adds other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	for i := range other.buckets {
		if n := other.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	for {
		m, o := h.max.Load(), other.max.Load()
		if o <= m || h.max.CompareAndSwap(m, o) {
			break
		}
	}
}

// Summary formats count/mean/percentiles as milliseconds for reports.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%.2fms p50=%.2fms p90=%.2fms p99=%.2fms max=%.2fms",
		h.Count(), h.Mean()/1e6,
		float64(h.Percentile(50))/1e6, float64(h.Percentile(90))/1e6,
		float64(h.Percentile(99))/1e6, float64(h.Max())/1e6)
}

// Counter is a concurrent event counter with windowed rate reporting.
type Counter struct {
	n atomic.Uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.n.Load() }

// Gauge is a concurrent instantaneous value (e.g. the number of
// currently connected replicas, or seconds spent degraded).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d (d may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// DurabilityStats aggregates the durability subsystem's counters:
// checkpointing progress, WAL segment usage, and recovery cost. One
// instance is shared by the WAL segment manager, the checkpointer, and
// the recovery path of a data-dir instance.
type DurabilityStats struct {
	// Checkpoints counts completed checkpoints; CheckpointFailures
	// counts attempts that did not produce a manifest-referenced file.
	Checkpoints        Counter
	CheckpointFailures Counter
	// LastCheckpoint* describe the most recent completed checkpoint.
	LastCheckpointVID   Gauge
	LastCheckpointNanos Gauge
	LastCheckpointBytes Gauge
	// WALAppendedBytes counts bytes group-committed into segments since
	// open; WALSegments is the live segment count; SegmentsTruncated
	// counts segments unlinked because a checkpoint superseded them.
	WALAppendedBytes  Counter
	WALSegments       Gauge
	SegmentsTruncated Counter
	// Recovery* describe the last recovery: commands replayed from the
	// WAL tail, time spent replaying, and how often the newest
	// checkpoint failed verification and an older one was used.
	RecoveryReplayed  Counter
	RecoveryNanos     Gauge
	RecoveryFallbacks Counter
}

// RatePerSec computes the rate of events between two readings.
func RatePerSec(before, after uint64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(after-before) / elapsed.Seconds()
}

// BusyTracker accounts wall-clock busy time for one component (e.g. the
// OLTP worker pool). Workers wrap their work in Track; Utilization
// reports busy time as a fraction of elapsed * cores — the quantity
// plotted in the paper's CPU-utilization figures.
type BusyTracker struct {
	busy atomic.Int64 // nanoseconds
}

// Track records d of busy time.
func (b *BusyTracker) Track(d time.Duration) { b.busy.Add(int64(d)) }

// TrackSince records busy time since start and returns the duration.
func (b *BusyTracker) TrackSince(start time.Time) time.Duration {
	d := time.Since(start)
	b.busy.Add(int64(d))
	return d
}

// Busy returns the accumulated busy time.
func (b *BusyTracker) Busy() time.Duration { return time.Duration(b.busy.Load()) }

// Utilization returns busy/(elapsed*cores) clamped to [0,1].
func (b *BusyTracker) Utilization(elapsed time.Duration, cores int) float64 {
	if elapsed <= 0 || cores <= 0 {
		return 0
	}
	u := float64(b.busy.Load()) / (float64(elapsed) * float64(cores))
	if u > 1 {
		u = 1
	}
	if u < 0 {
		u = 0
	}
	return u
}

// Reset clears accumulated busy time.
func (b *BusyTracker) Reset() { b.busy.Store(0) }
