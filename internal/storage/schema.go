// Package storage defines schemas and the fixed-width binary tuple layout
// shared by both BatchDB replicas.
//
// BatchDB propagates transactional updates to the analytical replica as
// physical sub-tuple patches identified by a byte (Offset, Size) pair
// (paper §4, Fig. 3). That only works if both replicas agree on a stable
// physical layout, so tuples are fixed-width: every column has a static
// offset and size. Variable-length strings are stored in fixed-size,
// NUL-padded fields, as is common in main-memory TPC-C implementations.
package storage

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Type enumerates the supported column types.
type Type uint8

// Supported column types. Time values are stored as int64 Unix
// nanoseconds; Float64 values as IEEE-754 bits.
const (
	Int64 Type = iota
	Int32
	Float64
	String
	Time
)

func (t Type) String() string {
	switch t {
	case Int64:
		return "int64"
	case Int32:
		return "int32"
	case Float64:
		return "float64"
	case String:
		return "string"
	case Time:
		return "time"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// fixedSize returns the storage size of t, or 0 if the size is
// per-column (String).
func (t Type) fixedSize() int {
	switch t {
	case Int64, Float64, Time:
		return 8
	case Int32:
		return 4
	default:
		return 0
	}
}

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type Type
	// Size is the fixed byte width for String columns; ignored for
	// numeric types.
	Size int
}

// TableID identifies a relation across both replicas and on the wire.
type TableID uint16

// Schema describes a relation: its identity, columns and primary key.
type Schema struct {
	ID      TableID
	Name    string
	Columns []Column
	// Key lists the column ordinals forming the primary key. The key is
	// used by the OLTP replica's primary index; the hidden RowID (paper
	// §5) is managed outside the schema.
	Key []int

	offsets   []int
	tupleSize int
	byName    map[string]int
}

// NewSchema computes the physical layout for the given columns and
// validates the key. It panics on invalid definitions, which are
// programming errors.
func NewSchema(id TableID, name string, cols []Column, key []int) *Schema {
	s := &Schema{ID: id, Name: name, Columns: cols, Key: key, byName: make(map[string]int, len(cols))}
	s.offsets = make([]int, len(cols))
	off := 0
	for i, c := range cols {
		size := c.Type.fixedSize()
		if c.Type == String {
			if c.Size <= 0 {
				panic(fmt.Sprintf("schema %s: string column %s needs a positive Size", name, c.Name))
			}
			size = c.Size
		}
		s.offsets[i] = off
		off += size
		if _, dup := s.byName[c.Name]; dup {
			panic(fmt.Sprintf("schema %s: duplicate column %s", name, c.Name))
		}
		s.byName[c.Name] = i
	}
	s.tupleSize = off
	for _, k := range key {
		if k < 0 || k >= len(cols) {
			panic(fmt.Sprintf("schema %s: key ordinal %d out of range", name, k))
		}
	}
	return s
}

// TupleSize returns the fixed byte width of one tuple.
func (s *Schema) TupleSize() int { return s.tupleSize }

// Offset returns the byte offset of column i within a tuple.
func (s *Schema) Offset(i int) int { return s.offsets[i] }

// ColSize returns the byte width of column i.
func (s *Schema) ColSize(i int) int {
	c := s.Columns[i]
	if c.Type == String {
		return c.Size
	}
	return c.Type.fixedSize()
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// NewTuple allocates a zeroed tuple for this schema.
func (s *Schema) NewTuple() []byte { return make([]byte, s.tupleSize) }

// --- field accessors -------------------------------------------------

// GetInt64 reads column i of tup as int64.
func (s *Schema) GetInt64(tup []byte, i int) int64 {
	return int64(binary.LittleEndian.Uint64(tup[s.offsets[i]:]))
}

// PutInt64 writes column i of tup.
func (s *Schema) PutInt64(tup []byte, i int, v int64) {
	binary.LittleEndian.PutUint64(tup[s.offsets[i]:], uint64(v))
}

// GetInt32 reads column i of tup as int32.
func (s *Schema) GetInt32(tup []byte, i int) int32 {
	return int32(binary.LittleEndian.Uint32(tup[s.offsets[i]:]))
}

// PutInt32 writes column i of tup.
func (s *Schema) PutInt32(tup []byte, i int, v int32) {
	binary.LittleEndian.PutUint32(tup[s.offsets[i]:], uint32(v))
}

// GetFloat64 reads column i of tup as float64.
func (s *Schema) GetFloat64(tup []byte, i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(tup[s.offsets[i]:]))
}

// PutFloat64 writes column i of tup.
func (s *Schema) PutFloat64(tup []byte, i int, v float64) {
	binary.LittleEndian.PutUint64(tup[s.offsets[i]:], math.Float64bits(v))
}

// GetString reads column i of tup, trimming NUL padding.
func (s *Schema) GetString(tup []byte, i int) string {
	b := tup[s.offsets[i] : s.offsets[i]+s.Columns[i].Size]
	end := len(b)
	for end > 0 && b[end-1] == 0 {
		end--
	}
	return string(b[:end])
}

// PutString writes column i of tup, truncating to the column width and
// NUL-padding the remainder.
func (s *Schema) PutString(tup []byte, i int, v string) {
	field := tup[s.offsets[i] : s.offsets[i]+s.Columns[i].Size]
	n := copy(field, v)
	for j := n; j < len(field); j++ {
		field[j] = 0
	}
}

// FieldBytes returns the raw bytes of column i, aliasing tup.
func (s *Schema) FieldBytes(tup []byte, i int) []byte {
	return tup[s.offsets[i] : s.offsets[i]+s.ColSize(i)]
}

// --- order-preserving keys -------------------------------------------

// Numeric reports whether t is a fixed-width type with a total order —
// the types eligible for zone-map synopses and compiled comparison
// kernels. String columns are excluded (predicates on them stay in
// residual closures).
func (t Type) Numeric() bool {
	switch t {
	case Int64, Int32, Float64, Time:
		return true
	}
	return false
}

// OrdKeyFloat64 maps a float64 to an int64 whose integer order matches
// IEEE-754 order: negative values have their bits inverted, positive
// values their sign bit flipped. Adjacent float64s map to adjacent
// int64s. (-0.0 orders just below +0.0 and NaNs sort at the extremes;
// generated benchmark data contains neither.)
func OrdKeyFloat64(f float64) int64 {
	u := math.Float64bits(f)
	if u>>63 != 0 {
		u = ^u
	} else {
		u ^= 1 << 63
	}
	return int64(u)
}

// Float64FromOrdKey inverts OrdKeyFloat64: the key's order-preserving
// bit transform is a bijection, so the original float64 is recovered
// exactly. Consumers that aggregate in the encoded (ord-key) domain
// use it to convert run/dictionary values back before summing.
func Float64FromOrdKey(k int64) float64 {
	u := uint64(k)
	if u>>63 != 0 {
		u ^= 1 << 63
	} else {
		u = ^u
	}
	return math.Float64frombits(u)
}

// OrdKey reads column i of tup as an order-preserving int64 key:
// integer and time columns map to their value, Float64 columns go
// through OrdKeyFloat64. Zone-map synopses and compiled predicate
// kernels compare exclusively in this key space, so the two can never
// disagree about what a block may contain. Panics on String columns;
// callers gate on Type.Numeric.
func (s *Schema) OrdKey(tup []byte, i int) int64 {
	off := s.offsets[i]
	switch s.Columns[i].Type {
	case Int64, Time:
		return int64(binary.LittleEndian.Uint64(tup[off:]))
	case Int32:
		return int64(int32(binary.LittleEndian.Uint32(tup[off:])))
	case Float64:
		return OrdKeyFloat64(math.Float64frombits(binary.LittleEndian.Uint64(tup[off:])))
	default:
		panic(fmt.Sprintf("storage: OrdKey on non-numeric column %s.%s", s.Name, s.Columns[i].Name))
	}
}

// NumericColumns returns the ordinals of the synopsis-eligible columns,
// in schema order.
func (s *Schema) NumericColumns() []int {
	var out []int
	for i, c := range s.Columns {
		if c.Type.Numeric() {
			out = append(out, i)
		}
	}
	return out
}
