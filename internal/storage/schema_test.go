package storage

import (
	"bytes"
	"testing"
	"testing/quick"
)

func sampleSchema() *Schema {
	return NewSchema(1, "sample", []Column{
		{Name: "id", Type: Int64},
		{Name: "qty", Type: Int32},
		{Name: "price", Type: Float64},
		{Name: "name", Type: String, Size: 16},
		{Name: "ts", Type: Time},
	}, []int{0})
}

func TestLayoutOffsets(t *testing.T) {
	s := sampleSchema()
	wantOffsets := []int{0, 8, 12, 20, 36}
	for i, w := range wantOffsets {
		if got := s.Offset(i); got != w {
			t.Errorf("Offset(%d) = %d, want %d", i, got, w)
		}
	}
	if s.TupleSize() != 44 {
		t.Errorf("TupleSize = %d, want 44", s.TupleSize())
	}
}

func TestAccessorsRoundTrip(t *testing.T) {
	s := sampleSchema()
	tup := s.NewTuple()
	s.PutInt64(tup, 0, -42)
	s.PutInt32(tup, 1, 7)
	s.PutFloat64(tup, 2, 3.25)
	s.PutString(tup, 3, "hello")
	s.PutInt64(tup, 4, 1234567890)

	if got := s.GetInt64(tup, 0); got != -42 {
		t.Errorf("GetInt64 = %d", got)
	}
	if got := s.GetInt32(tup, 1); got != 7 {
		t.Errorf("GetInt32 = %d", got)
	}
	if got := s.GetFloat64(tup, 2); got != 3.25 {
		t.Errorf("GetFloat64 = %v", got)
	}
	if got := s.GetString(tup, 3); got != "hello" {
		t.Errorf("GetString = %q", got)
	}
	if got := s.GetInt64(tup, 4); got != 1234567890 {
		t.Errorf("GetInt64(ts) = %d", got)
	}
}

func TestPutStringTruncatesAndPads(t *testing.T) {
	s := sampleSchema()
	tup := s.NewTuple()
	s.PutString(tup, 3, "this string is far too long for the field")
	if got := s.GetString(tup, 3); got != "this string is f" {
		t.Errorf("truncated string = %q", got)
	}
	s.PutString(tup, 3, "short")
	if got := s.GetString(tup, 3); got != "short" {
		t.Errorf("after overwrite with shorter value = %q (stale bytes not padded?)", got)
	}
}

func TestColumnIndex(t *testing.T) {
	s := sampleSchema()
	if i := s.ColumnIndex("price"); i != 2 {
		t.Errorf("ColumnIndex(price) = %d", i)
	}
	if i := s.ColumnIndex("nope"); i != -1 {
		t.Errorf("ColumnIndex(nope) = %d", i)
	}
}

func TestFieldBytesAliases(t *testing.T) {
	s := sampleSchema()
	tup := s.NewTuple()
	fb := s.FieldBytes(tup, 1)
	if len(fb) != 4 {
		t.Fatalf("FieldBytes len = %d", len(fb))
	}
	s.PutInt32(tup, 1, 0x01020304)
	if !bytes.Equal(fb, []byte{4, 3, 2, 1}) {
		t.Errorf("FieldBytes does not alias tuple storage: %v", fb)
	}
}

func TestKeyString(t *testing.T) {
	s := NewSchema(2, "composite", []Column{
		{Name: "a", Type: Int32},
		{Name: "pad", Type: String, Size: 3},
		{Name: "b", Type: Int32},
	}, []int{0, 2})
	t1, t2, t3 := s.NewTuple(), s.NewTuple(), s.NewTuple()
	s.PutInt32(t1, 0, 1)
	s.PutInt32(t1, 2, 2)
	s.PutInt32(t2, 0, 1)
	s.PutInt32(t2, 2, 2)
	s.PutString(t2, 1, "xyz") // non-key column must not matter
	s.PutInt32(t3, 0, 2)
	s.PutInt32(t3, 2, 1)
	if s.KeyString(t1) != s.KeyString(t2) {
		t.Error("equal keys encode differently")
	}
	if s.KeyString(t1) == s.KeyString(t3) {
		t.Error("distinct keys collide")
	}
}

// Property: int64/float64/string round-trips hold for arbitrary values.
func TestAccessorsProperty(t *testing.T) {
	s := sampleSchema()
	f := func(a int64, b int32, c float64, str string) bool {
		if c != c { // skip NaN: NaN != NaN by definition
			return true
		}
		tup := s.NewTuple()
		s.PutInt64(tup, 0, a)
		s.PutInt32(tup, 1, b)
		s.PutFloat64(tup, 2, c)
		if s.GetInt64(tup, 0) != a || s.GetInt32(tup, 1) != b || s.GetFloat64(tup, 2) != c {
			return false
		}
		// Strings round-trip when they fit and contain no NUL padding
		// ambiguity (no trailing NULs).
		if len(str) <= 16 && !hasNUL(str) && trailingTrim(str) == str {
			s.PutString(tup, 3, str)
			if s.GetString(tup, 3) != str {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func hasNUL(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == 0 {
			return true
		}
	}
	return false
}

func trailingTrim(s string) string {
	for len(s) > 0 && s[len(s)-1] == 0 {
		s = s[:len(s)-1]
	}
	return s
}

func TestInvalidSchemaPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("string without size", func() {
		NewSchema(3, "bad", []Column{{Name: "s", Type: String}}, nil)
	})
	mustPanic("duplicate column", func() {
		NewSchema(4, "bad", []Column{{Name: "a", Type: Int64}, {Name: "a", Type: Int32}}, nil)
	})
	mustPanic("key out of range", func() {
		NewSchema(5, "bad", []Column{{Name: "a", Type: Int64}}, []int{1})
	})
}
