package storage

// KeyString encodes the primary-key columns of tup into an opaque,
// equality-comparable string. It is the generic (slower) fallback used
// when a table does not install a packed uint64 key function; workload
// packages such as internal/tpcc provide dense uint64 packers instead.
func (s *Schema) KeyString(tup []byte) string {
	n := 0
	for _, k := range s.Key {
		n += s.ColSize(k)
	}
	b := make([]byte, 0, n)
	for _, k := range s.Key {
		b = append(b, s.FieldBytes(tup, k)...)
	}
	return string(b)
}

// KeyFunc extracts a dense uint64 primary key from a tuple. Workloads
// install one per table so the OLTP primary index and the update log can
// address rows without allocation.
type KeyFunc func(tup []byte) uint64
