package baseline

import (
	"errors"
	"sync"
	"testing"
	"time"

	"batchdb/internal/chbench"
	"batchdb/internal/mvcc"
	"batchdb/internal/olap/exec"
	"batchdb/internal/tpcc"
)

func newBaselineDB(t *testing.T) *tpcc.DB {
	t.Helper()
	db := tpcc.NewDB(tpcc.SmallScale(1))
	if err := tpcc.Generate(db, 8); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestTxnAndQueryCorrectness(t *testing.T) {
	db := newBaselineDB(t)
	for _, policy := range []Policy{FairShared, OLTPPriority} {
		e := New(db, 2, policy)
		drv := tpcc.NewDriver(db.Scale, 3)
		for i := 0; i < 50; i++ {
			proc, args := drv.Next()
			r := e.ExecTxn(proc, args)
			if r.Err != nil && !errors.Is(r.Err, tpcc.ErrRollback) && !errors.Is(r.Err, mvcc.ErrConflict) {
				t.Fatalf("%s/%s: %v", policy, proc, r.Err)
			}
		}
		g := chbench.NewGen(db.Schemas, 5)
		for _, name := range []string{"Q10", "Q3", "Q12"} {
			res := e.Query(g.ByName(name))
			if res.Err != nil {
				t.Fatalf("%s/%s: %v", policy, name, res.Err)
			}
		}
		e.Close()
	}
}

// The baseline query path (MVCC chain scan + index lookups) must agree
// with BatchDB's replica-based executor on the same data.
func TestBaselineAgreesWithReplicaExecutor(t *testing.T) {
	db := newBaselineDB(t)
	rep, err := chbench.NewReplica(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	eng := exec.NewEngine(rep, 1)
	e := New(db, 1, FairShared)
	defer e.Close()

	g := chbench.NewGen(db.Schemas, 7)
	for _, name := range chbench.QueryNames {
		q := g.ByName(name)
		base := e.Query(q)
		repl := eng.RunBatch([]*exec.Query{q}, 0)[0]
		if base.Err != nil || repl.Err != nil {
			t.Fatalf("%s: errs %v / %v", name, base.Err, repl.Err)
		}
		if base.Rows != repl.Rows {
			t.Fatalf("%s: rows %d != %d", name, base.Rows, repl.Rows)
		}
		for i := range base.Values {
			d := base.Values[i] - repl.Values[i]
			if d > 1e-3 || d < -1e-3 {
				t.Fatalf("%s agg %d: %f != %f", name, i, base.Values[i], repl.Values[i])
			}
		}
	}
}

func TestOLTPPriorityStarvesAnalytics(t *testing.T) {
	db := newBaselineDB(t)
	e := New(db, 1, OLTPPriority)
	defer e.Close()

	// Saturate the single worker with transactions from one goroutine
	// while a query waits.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		drv := tpcc.NewDriver(db.Scale, 2)
		for {
			select {
			case <-stop:
				return
			default:
			}
			proc, args := drv.Next()
			e.ExecTxn(proc, args)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	g := chbench.NewGen(db.Schemas, 9)
	start := time.Now()
	res := e.Query(g.ByName("Q10"))
	queryLatency := time.Since(start)
	close(stop)
	wg.Wait()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	// With strict OLTP priority the query had to wait for a gap; it
	// cannot have completed instantly relative to per-txn latency.
	if queryLatency <= 0 {
		t.Fatal("implausible query latency")
	}
	if e.Stats().TxnCommitted.Load() == 0 {
		t.Fatal("no transactions committed during saturation")
	}
}

func TestCloseUnblocksClients(t *testing.T) {
	db := newBaselineDB(t)
	e := New(db, 1, FairShared)
	e.Close()
	if r := e.ExecTxn(tpcc.ProcStockLevel, (&tpcc.StockLevelArgs{WID: 1, DID: 1, Threshold: 10}).Encode()); r.Err == nil {
		t.Fatal("ExecTxn after Close succeeded")
	}
}
