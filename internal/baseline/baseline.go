// Package baseline implements the two single-replica shared engines
// BatchDB is compared against in paper §8.5 (Fig. 8).
//
// SAP HANA and MemSQL are proprietary, so the comparison reproduces the
// *mechanisms* behind their measured failure modes rather than the
// binaries: both baselines run OLTP transactions and OLAP queries on
// one shared copy of the data (the MVCC store) with one shared worker
// pool, differing only in scheduling policy:
//
//   - FairShared (HANA-like): workers pull OLTP requests and OLAP
//     queries fairly. Long analytical scans occupy workers and walk the
//     same version chains transactions mutate, so a large OLAP load
//     starves OLTP — the >5x transactional collapse of Fig. 8a.
//   - OLTPPriority (MemSQL-like): workers always prefer pending OLTP
//     requests and at most one worker runs analytics at a time
//     (mirroring MemSQL's single-threaded secondary path). Under high
//     OLTP load analytics starve — the reversed collapse of Fig. 8b.
//
// Queries are evaluated directly against the transactional MVCC store
// (snapshot reads over version chains, index point lookups for joins),
// i.e. with exactly the synchronization and cache interference that
// BatchDB's replica design removes.
package baseline

import (
	"time"

	"batchdb/internal/metrics"
	"batchdb/internal/mvcc"
	"batchdb/internal/olap/exec"
	"batchdb/internal/oltp"
	"batchdb/internal/tpcc"
)

// Policy selects the scheduling behaviour.
type Policy int

// Scheduling policies.
const (
	// FairShared serves OLTP and OLAP from one queue set without
	// priorities (HANA-like behaviour under mixed load).
	FairShared Policy = iota
	// OLTPPriority strictly prefers OLTP work and limits analytics to
	// one worker (MemSQL-like behaviour under mixed load).
	OLTPPriority
)

func (p Policy) String() string {
	if p == FairShared {
		return "fair-shared"
	}
	return "oltp-priority"
}

// Stats exposes the baseline engine's counters.
type Stats struct {
	TxnCommitted metrics.Counter
	TxnAborted   metrics.Counter
	Queries      metrics.Counter
	TxnLatency   metrics.Histogram
	QueryLatency metrics.Histogram
}

// Engine is a single-replica engine running hybrid workloads on shared
// data and shared workers.
type Engine struct {
	db     *tpcc.DB
	policy Policy

	txnQ   chan txnReq
	queryQ chan queryReq
	stop   chan struct{}
	done   []chan struct{}

	stats Stats
}

type txnReq struct {
	proc    string
	args    []byte
	reply   chan oltp.Response
	arrived time.Time
}

type queryReq struct {
	q       *exec.Query
	reply   chan exec.Result
	arrived time.Time
}

// procFor resolves the TPC-C procedure by name against the shared DB.
type procTable map[string]oltp.Procedure

// New creates a baseline engine with the given worker count and policy.
func New(db *tpcc.DB, workers int, policy Policy) *Engine {
	if workers < 1 {
		workers = 1
	}
	e := &Engine{
		db:     db,
		policy: policy,
		txnQ:   make(chan txnReq, 4096),
		queryQ: make(chan queryReq, 4096),
		stop:   make(chan struct{}),
	}
	procs := registerAll(db)
	for i := 0; i < workers; i++ {
		done := make(chan struct{})
		e.done = append(e.done, done)
		go e.worker(i, procs, done)
	}
	return e
}

// registerAll builds the stored-procedure table by reusing the TPC-C
// procedures through a throwaway oltp.Engine registry.
func registerAll(db *tpcc.DB) procTable {
	tmp, err := oltp.New(db.Store, oltp.Config{Workers: 1})
	if err != nil {
		panic(err)
	}
	tpcc.RegisterProcs(tmp, db, false)
	return procTable{
		tpcc.ProcNewOrder:    tmp.Proc(tpcc.ProcNewOrder),
		tpcc.ProcPayment:     tmp.Proc(tpcc.ProcPayment),
		tpcc.ProcOrderStatus: tmp.Proc(tpcc.ProcOrderStatus),
		tpcc.ProcDelivery:    tmp.Proc(tpcc.ProcDelivery),
		tpcc.ProcStockLevel:  tmp.Proc(tpcc.ProcStockLevel),
	}
}

// Stats returns the engine's counters.
func (e *Engine) Stats() *Stats { return &e.stats }

// Close stops the workers.
func (e *Engine) Close() {
	close(e.stop)
	for _, d := range e.done {
		<-d
	}
}

// ExecTxn runs one stored procedure through the shared worker pool.
func (e *Engine) ExecTxn(proc string, args []byte) oltp.Response {
	reply := make(chan oltp.Response, 1)
	select {
	case e.txnQ <- txnReq{proc: proc, args: args, reply: reply, arrived: time.Now()}:
	case <-e.stop:
		return oltp.Response{Err: oltp.ErrClosed}
	}
	select {
	case r := <-reply:
		return r
	case <-e.stop:
		return oltp.Response{Err: oltp.ErrClosed}
	}
}

// Query runs one analytical query through the shared worker pool.
func (e *Engine) Query(q *exec.Query) exec.Result {
	reply := make(chan exec.Result, 1)
	select {
	case e.queryQ <- queryReq{q: q, reply: reply, arrived: time.Now()}:
	case <-e.stop:
		return exec.Result{Err: oltp.ErrClosed}
	}
	select {
	case r := <-reply:
		return r
	case <-e.stop:
		return exec.Result{Err: oltp.ErrClosed}
	}
}

func (e *Engine) worker(id int, procs procTable, done chan struct{}) {
	defer close(done)
	for {
		switch e.policy {
		case OLTPPriority:
			// Strictly drain OLTP first. Only worker 0 ever serves
			// analytics (MemSQL's single-threaded secondary path); the
			// rest are dedicated to transactions, so analytical load
			// can never stall OLTP — only the reverse.
			select {
			case t := <-e.txnQ:
				e.runTxn(procs, t)
				continue
			case <-e.stop:
				return
			default:
			}
			if id != 0 {
				select {
				case t := <-e.txnQ:
					e.runTxn(procs, t)
				case <-e.stop:
					return
				}
				continue
			}
			select {
			case t := <-e.txnQ:
				e.runTxn(procs, t)
			case q := <-e.queryQ:
				e.runQuery(q)
			case <-e.stop:
				return
			}
		default: // FairShared
			select {
			case t := <-e.txnQ:
				e.runTxn(procs, t)
			case q := <-e.queryQ:
				e.runQuery(q)
			case <-e.stop:
				return
			}
		}
	}
}

func (e *Engine) runTxn(procs procTable, t txnReq) {
	proc := procs[t.proc]
	tx := e.db.Store.Begin()
	payload, err := proc(tx, t.args)
	if err != nil {
		tx.Abort()
		e.stats.TxnAborted.Inc()
		t.reply <- oltp.Response{Err: err}
		return
	}
	cv, err := tx.Commit()
	if err != nil {
		e.stats.TxnAborted.Inc()
		t.reply <- oltp.Response{Err: err}
		return
	}
	e.stats.TxnCommitted.Inc()
	e.stats.TxnLatency.RecordSince(t.arrived)
	t.reply <- oltp.Response{Payload: payload, CommitVID: cv}
}

// runQuery evaluates q directly on the MVCC store at the current
// snapshot: a full chain scan of the driver with visibility checks, and
// primary-index point lookups for every probe — the single-instance
// design whose interference Fig. 8 quantifies.
func (e *Engine) runQuery(r queryReq) {
	q := r.q
	tx := e.db.Store.BeginRO()
	defer tx.Release()

	res := exec.Result{Query: q, Values: make([]float64, len(q.Aggs))}
	driver := e.db.TableByID(q.Driver)
	if driver == nil {
		res.Err = errUnknownTable
		r.reply <- res
		return
	}
	// Compile the declarative predicates (Where) once per query and
	// conjoin them with the residual closures, mirroring the replica
	// executor's semantics.
	driverPred, err := q.DriverFilter(driver.Schema)
	if err != nil {
		res.Err = err
		r.reply <- res
		return
	}
	probePreds := make([]func([]byte) bool, len(q.Probes))
	for i := range q.Probes {
		bt := e.db.TableByID(q.Probes[i].Table)
		if bt == nil {
			res.Err = errUnknownTable
			r.reply <- res
			return
		}
		if probePreds[i], err = q.Probes[i].Filter(bt.Schema); err != nil {
			res.Err = err
			r.reply <- res
			return
		}
	}
	summands := make([]func([]byte, [][]byte) float64, len(q.Aggs))
	for ai := range q.Aggs {
		if summands[ai], err = q.Aggs[ai].Summand(driver.Schema); err != nil {
			res.Err = err
			r.reply <- res
			return
		}
	}
	joined := make([][]byte, 0, 8)
	driver.ScanChains(func(c *mvcc.Chain) bool {
		rec := tx.ReadChain(c)
		if rec == nil {
			return true
		}
		tup := rec.Data
		if driverPred != nil && !driverPred(tup) {
			return true
		}
		joined = joined[:0]
		for i := range q.Probes {
			p := &q.Probes[i]
			bt := e.db.TableByID(p.Table)
			if bt == nil {
				res.Err = errUnknownTable
				return false
			}
			match, ok := tx.Get(bt, p.ProbeKey(tup, joined))
			if !ok || (probePreds[i] != nil && !probePreds[i](match)) {
				return true
			}
			joined = append(joined, match)
		}
		res.Rows++
		for ai := range q.Aggs {
			switch q.Aggs[ai].Kind {
			case exec.Sum:
				res.Values[ai] += summands[ai](tup, joined)
			case exec.Count:
				res.Values[ai]++
			}
		}
		return true
	})
	e.stats.Queries.Inc()
	e.stats.QueryLatency.RecordSince(r.arrived)
	r.reply <- res
}

var errUnknownTable = errUnknown{}

type errUnknown struct{}

func (errUnknown) Error() string { return "baseline: unknown table" }
