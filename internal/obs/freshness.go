package obs

import (
	"sync"
	"time"

	"batchdb/internal/metrics"
)

// Freshness tracks how far the OLAP replica's installed snapshot
// trails the OLTP primary — the defining HTAP quantity (snapshot age /
// freshness lag). It measures two signals:
//
//   - VID lag: primary commit watermark − installed snapshot VID, in
//     transactions. Sampled both when a new watermark is observed
//     (before the apply window, so a post-outage backlog is visible)
//     and when a snapshot installs.
//
//   - Wall-clock staleness: how old the visible data is. The tracker
//     keeps a monotone ring of (vid, first-seen time) watermark
//     observations. A snapshot at VID I is missing every commit past
//     I, so its staleness is now − t(first observation with vid > I);
//     when no newer watermark has been seen, the snapshot is caught up
//     as of the last *confirmed* sync, and staleness is measured from
//     there. Degraded syncs (the Supervisor falling back to the
//     replica's own covered VID while the link is down) do not
//     confirm, so staleness keeps rising through an outage and
//     collapses after reconnect/resync.
//
// ObserveWatermark and ObserveInstall are called from the OLAP
// scheduler loop; the exported gauges are evaluated live at scrape
// time. All methods are safe for concurrent use.
type Freshness struct {
	// Now is the clock, swappable in tests. Defaults to time.Now.
	Now func() time.Time

	mu            sync.Mutex
	ring          []watermarkObs
	lastVID       uint64
	installed     uint64
	lastConfirmed time.Time
	everConfirmed bool

	// Exported instruments (registered as views by Register).
	installedVID  metrics.Gauge
	watermarkVID  metrics.Gauge
	lagHigh       metrics.Gauge
	installs      metrics.Counter
	stalenessHist metrics.Histogram
}

type watermarkObs struct {
	vid uint64
	t   time.Time
}

// maxRing bounds the observation ring; past it every other entry is
// dropped, coarsening staleness resolution instead of growing memory.
const maxRing = 4096

// NewFreshness creates a tracker.
func NewFreshness() *Freshness {
	return &Freshness{Now: time.Now}
}

// ObserveWatermark records that the primary's commit watermark is v.
// confirmed reports that the value came from a live sync with the
// primary (false when a degraded supervisor is answering with the
// replica's own covered VID). Call before applying the batch so the
// lag high-watermark captures the pre-apply backlog.
func (f *Freshness) ObserveWatermark(v uint64, confirmed bool) {
	now := f.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	if v > f.lastVID {
		f.lastVID = v
		f.ring = append(f.ring, watermarkObs{vid: v, t: now})
		if len(f.ring) > maxRing {
			kept := f.ring[:0]
			for i := 0; i < len(f.ring); i += 2 {
				kept = append(kept, f.ring[i])
			}
			f.ring = kept
		}
	}
	if confirmed {
		f.lastConfirmed = now
		f.everConfirmed = true
	}
	f.watermarkVID.Set(int64(f.lastVID))
	if lag := int64(f.lastVID) - int64(f.installed); lag > f.lagHigh.Load() {
		f.lagHigh.Set(lag)
	}
}

// ObserveInstall records that a snapshot at VID v became visible to
// OLAP queries, sampling its staleness into the histogram and pruning
// observations the new snapshot covers.
func (f *Freshness) ObserveInstall(v uint64) {
	now := f.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	if v > f.installed {
		f.installed = v
	}
	if v > f.lastVID {
		// Install ahead of any observed watermark (e.g. a resync reload):
		// the watermark is at least v.
		f.lastVID = v
	}
	// Entries at or below the installed VID are covered; only newer
	// watermarks bound this snapshot's staleness.
	i := 0
	for i < len(f.ring) && f.ring[i].vid <= f.installed {
		i++
	}
	f.ring = f.ring[i:]
	f.installedVID.Set(int64(f.installed))
	f.watermarkVID.Set(int64(f.lastVID))
	f.installs.Inc()
	f.stalenessHist.Record(f.stalenessLocked(now))
}

// stalenessLocked computes the installed snapshot's age at time now.
func (f *Freshness) stalenessLocked(now time.Time) int64 {
	if len(f.ring) > 0 {
		// Oldest watermark past the snapshot: commits it is missing were
		// already visible then.
		return int64(now.Sub(f.ring[0].t))
	}
	if !f.everConfirmed {
		return 0 // nothing known yet
	}
	// Caught up as of the last confirmed sync.
	d := int64(now.Sub(f.lastConfirmed))
	if d < 0 {
		d = 0
	}
	return d
}

// StalenessNanos returns the installed snapshot's current age.
func (f *Freshness) StalenessNanos() int64 {
	now := f.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stalenessLocked(now)
}

// VIDLag returns watermark − installed in transactions.
func (f *Freshness) VIDLag() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(f.lastVID) - int64(f.installed)
}

// InstalledVID returns the last installed snapshot VID.
func (f *Freshness) InstalledVID() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.installed
}

// LagHigh returns the highest VID lag ever observed — the backlog peak
// after an outage, which the live lag gauge only shows transiently.
func (f *Freshness) LagHigh() int64 { return f.lagHigh.Load() }

// StalenessHistogram returns the histogram of staleness samples taken
// at each snapshot install (for percentile reporting outside a
// registry).
func (f *Freshness) StalenessHistogram() *metrics.Histogram { return &f.stalenessHist }

// ResetLagHigh clears the lag high-watermark (between measurement
// phases).
func (f *Freshness) ResetLagHigh() { f.lagHigh.Set(0) }

// Register exposes the tracker through reg under the batchdb_freshness
// namespace. The lag and staleness gauges are evaluated live at scrape
// time.
func (f *Freshness) Register(reg *Registry, labels ...Label) {
	reg.GaugeFunc("batchdb_freshness_vid_lag",
		"Primary commit watermark minus installed OLAP snapshot VID (transactions).",
		func() float64 { return float64(f.VIDLag()) }, labels...)
	reg.ObserveGauge("batchdb_freshness_vid_lag_high",
		"Highest freshness VID lag observed (backlog peak).", &f.lagHigh, labels...)
	reg.ObserveGauge("batchdb_freshness_installed_vid",
		"VID of the snapshot currently visible to OLAP queries.", &f.installedVID, labels...)
	reg.ObserveGauge("batchdb_freshness_watermark_vid",
		"Latest primary commit watermark observed by the OLAP scheduler.", &f.watermarkVID, labels...)
	reg.GaugeFunc("batchdb_freshness_staleness_ns",
		"Current wall-clock age of the installed OLAP snapshot (nanoseconds).",
		func() float64 { return float64(f.StalenessNanos()) }, labels...)
	reg.ObserveHistogram("batchdb_freshness_staleness_sample_ns",
		"Snapshot staleness sampled at each batch install (nanoseconds).",
		&f.stalenessHist, labels...)
	reg.ObserveCounter("batchdb_freshness_installs_total",
		"OLAP snapshot installs (apply windows that advanced the snapshot).",
		&f.installs, labels...)
}
