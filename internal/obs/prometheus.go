package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// escapeLabelValue escapes a label value per the Prometheus text
// exposition format: backslash, double-quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func writeSample(w io.Writer, s Sample) error {
	if len(s.Labels) == 0 {
		_, err := fmt.Fprintf(w, "%s %s\n", s.Name, formatValue(s.Value))
		return err
	}
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, l := range s.Labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteString("} ")
	b.WriteString(formatValue(s.Value))
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4): a # HELP and # TYPE line per
// family followed by its samples, in registration order. Histograms
// are rendered as summaries (quantile series plus _sum and _count).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.gather() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.samples {
			if err := writeSample(w, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// RenderLine flattens the whole registry onto one line —
// name{labels}=value pairs separated by single spaces — for the
// server's tab-framed STATS response. Values that are whole numbers
// print without an exponent.
func (r *Registry) RenderLine() string {
	var b strings.Builder
	for i, s := range r.Samples() {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(s.Name)
		if len(s.Labels) > 0 {
			b.WriteByte('{')
			for j, l := range s.Labels {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(l.Key)
				b.WriteByte('=')
				b.WriteString(l.Value)
			}
			b.WriteByte('}')
		}
		b.WriteByte('=')
		b.WriteString(formatValue(s.Value))
	}
	return b.String()
}
