// Package obs is BatchDB's unified observability layer: a
// concurrency-safe registry of named counters, gauges and histograms, a
// stdlib-only Prometheus-text-format exporter served over HTTP
// (/metrics, /healthz), and the freshness tracker that measures the
// paper's defining HTAP quantity — how far the OLAP replica's installed
// snapshot trails the primary's commit watermark, in VIDs and in wall
// time.
//
// Every subsystem keeps its existing stats struct (oltp.Stats,
// olap.SchedulerStats, replica.Stats, metrics.DurabilityStats, ...) and
// registers it here as a *view*: the registry holds pointers to the
// live instruments, so there is exactly one source of truth that the
// server's STATS command, the /metrics endpoint, benchmarks and tests
// all read.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"batchdb/internal/metrics"
)

// Kind classifies a metric family.
type Kind uint8

// Metric family kinds. Histograms are exported in Prometheus summary
// form (quantiles + _sum + _count).
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "summary"
	}
	return "untyped"
}

// Label is one name="value" dimension of a series. Values may contain
// arbitrary bytes; the exporter escapes them.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// series is one labelled instrument inside a family. inst is the live
// instrument: *metrics.Counter, *metrics.Gauge, *metrics.Histogram,
// func() uint64 (counter func) or func() float64 (gauge func).
type series struct {
	labels []Label
	inst   any
}

type family struct {
	name, help string
	kind       Kind
	series     map[string]*series
	order      []*series
}

// Registry is a concurrency-safe collection of metric families. All
// methods may be called from any goroutine; instrument reads during
// export race benignly with writers (each instrument is individually
// atomic, histograms are exported via coherent snapshots).
//
// Registration is by (name, labels): registering the same series twice
// returns/keeps the first instrument, so wiring code can be idempotent.
// Registering a name with a different kind, or a series with a
// different live instrument, panics — those are wiring bugs.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]* — the
// Prometheus metric-name charset.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelKey reports whether s matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelKey(s string) bool {
	if s == "" || strings.ContainsRune(s, ':') {
		return false
	}
	return validName(s)
}

// labelKey canonicalizes a label set (sorted by key) into a map key.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

// register get-or-creates the series (name, labels). mk builds the
// instrument when the series is new; adopt, when non-nil, is an
// existing instrument to install (a registry view of a stats struct).
func (r *Registry) register(name, help string, kind Kind, labels []Label, mk func() any, adopt any) any {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	sorted := append([]Label(nil), labels...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	for _, l := range sorted {
		if !validLabelKey(l.Key) {
			panic(fmt.Sprintf("obs: invalid label key %q on metric %q", l.Key, name))
		}
	}
	key := labelKey(sorted)

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, kind, f.kind))
	}
	if s := f.series[key]; s != nil {
		if adopt != nil && s.inst != adopt {
			panic(fmt.Sprintf("obs: series %q%v already bound to a different instrument", name, labels))
		}
		return s.inst
	}
	inst := adopt
	if inst == nil {
		inst = mk()
	}
	s := &series{labels: sorted, inst: inst}
	f.series[key] = s
	f.order = append(f.order, s)
	return s.inst
}

// Counter get-or-creates a registry-owned counter.
func (r *Registry) Counter(name, help string, labels ...Label) *metrics.Counter {
	inst := r.register(name, help, KindCounter, labels, func() any { return new(metrics.Counter) }, nil)
	c, ok := inst.(*metrics.Counter)
	if !ok {
		panic(fmt.Sprintf("obs: series %q is not a counter", name))
	}
	return c
}

// Gauge get-or-creates a registry-owned gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *metrics.Gauge {
	inst := r.register(name, help, KindGauge, labels, func() any { return new(metrics.Gauge) }, nil)
	g, ok := inst.(*metrics.Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: series %q is not a gauge", name))
	}
	return g
}

// Histogram get-or-creates a registry-owned histogram.
func (r *Registry) Histogram(name, help string, labels ...Label) *metrics.Histogram {
	inst := r.register(name, help, KindHistogram, labels, func() any { return new(metrics.Histogram) }, nil)
	h, ok := inst.(*metrics.Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: series %q is not a histogram", name))
	}
	return h
}

// ObserveCounter registers an existing counter as a series (a registry
// view over a subsystem's stats struct). Idempotent for the same
// instrument.
func (r *Registry) ObserveCounter(name, help string, c *metrics.Counter, labels ...Label) {
	r.register(name, help, KindCounter, labels, nil, c)
}

// ObserveGauge registers an existing gauge as a series.
func (r *Registry) ObserveGauge(name, help string, g *metrics.Gauge, labels ...Label) {
	r.register(name, help, KindGauge, labels, nil, g)
}

// ObserveHistogram registers an existing histogram as a series.
func (r *Registry) ObserveHistogram(name, help string, h *metrics.Histogram, labels ...Label) {
	r.register(name, help, KindHistogram, labels, nil, h)
}

// CounterFunc registers a callback evaluated at export time as a
// counter series. fn must be monotone non-decreasing and safe for
// concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.register(name, help, KindCounter, labels, nil, fn)
}

// GaugeFunc registers a callback evaluated at export time as a gauge
// series. fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, KindGauge, labels, nil, fn)
}

// Sample is one exported time-series value.
type Sample struct {
	// Name is the sample's full metric name (families of histogram
	// kind expand into quantile/_sum/_count samples).
	Name   string
	Labels []Label
	Value  float64
}

// snapshotFamily is one family's coherent export view.
type snapshotFamily struct {
	name, help string
	kind       Kind
	samples    []Sample
}

// gather evaluates every series into samples. Families and series keep
// registration order, so successive exports are diffable.
func (r *Registry) gather() []snapshotFamily {
	r.mu.RLock()
	fams := make([]*family, len(r.order))
	copy(fams, r.order)
	orders := make([][]*series, len(fams))
	for i, f := range fams {
		orders[i] = append([]*series(nil), f.order...)
	}
	r.mu.RUnlock()

	out := make([]snapshotFamily, 0, len(fams))
	for i, f := range fams {
		sf := snapshotFamily{name: f.name, help: f.help, kind: f.kind}
		for _, s := range orders[i] {
			switch inst := s.inst.(type) {
			case *metrics.Counter:
				sf.samples = append(sf.samples, Sample{Name: f.name, Labels: s.labels, Value: float64(inst.Load())})
			case func() uint64:
				sf.samples = append(sf.samples, Sample{Name: f.name, Labels: s.labels, Value: float64(inst())})
			case *metrics.Gauge:
				sf.samples = append(sf.samples, Sample{Name: f.name, Labels: s.labels, Value: float64(inst.Load())})
			case func() float64:
				sf.samples = append(sf.samples, Sample{Name: f.name, Labels: s.labels, Value: inst()})
			case *metrics.Histogram:
				snap := inst.Snapshot()
				for _, q := range [...]struct {
					q string
					p float64
				}{{"0.5", 50}, {"0.9", 90}, {"0.99", 99}} {
					ql := append(append([]Label(nil), s.labels...), Label{Key: "quantile", Value: q.q})
					sf.samples = append(sf.samples, Sample{Name: f.name, Labels: ql, Value: float64(snap.Percentile(q.p))})
				}
				sf.samples = append(sf.samples,
					Sample{Name: f.name + "_sum", Labels: s.labels, Value: float64(snap.Sum)},
					Sample{Name: f.name + "_count", Labels: s.labels, Value: float64(snap.Count)})
			}
		}
		out = append(out, sf)
	}
	return out
}

// Samples returns every exported sample (histograms expanded into
// quantile/_sum/_count rows) in registration order — the programmatic
// counterpart of the /metrics endpoint for tests and the STATS command.
func (r *Registry) Samples() []Sample {
	var out []Sample
	for _, f := range r.gather() {
		out = append(out, f.samples...)
	}
	return out
}
