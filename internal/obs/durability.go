package obs

import (
	"time"

	"batchdb/internal/metrics"
)

// RegisterDurability exposes a DurabilityStats (shared by the WAL
// segment manager, the checkpointer, and recovery) through reg.
func RegisterDurability(reg *Registry, st *metrics.DurabilityStats, labels ...Label) {
	reg.ObserveCounter("batchdb_checkpoints_total", "Completed checkpoints.", &st.Checkpoints, labels...)
	reg.ObserveCounter("batchdb_checkpoint_failures_total", "Checkpoint attempts that failed.", &st.CheckpointFailures, labels...)
	reg.ObserveGauge("batchdb_checkpoint_last_vid", "VID of the most recent completed checkpoint.", &st.LastCheckpointVID, labels...)
	reg.ObserveGauge("batchdb_checkpoint_last_duration_ns", "Duration of the most recent checkpoint (nanoseconds).", &st.LastCheckpointNanos, labels...)
	reg.ObserveGauge("batchdb_checkpoint_last_bytes", "Size of the most recent checkpoint file.", &st.LastCheckpointBytes, labels...)
	reg.GaugeFunc("batchdb_checkpoint_age_seconds",
		"Seconds since the most recent checkpoint completed (-1 before the first).",
		func() float64 {
			t := st.LastCheckpointUnixNanos.Load()
			if t == 0 {
				return -1
			}
			return time.Since(time.Unix(0, t)).Seconds()
		}, labels...)
	reg.ObserveCounter("batchdb_wal_appended_bytes_total", "Bytes group-committed into WAL segments.", &st.WALAppendedBytes, labels...)
	reg.ObserveGauge("batchdb_wal_segments", "Live WAL segment count.", &st.WALSegments, labels...)
	reg.ObserveCounter("batchdb_wal_segments_truncated_total", "WAL segments unlinked after being superseded by a checkpoint.", &st.SegmentsTruncated, labels...)
	reg.ObserveHistogram("batchdb_wal_fsync_ns", "Group-commit fsync latency (nanoseconds, sync mode only).", &st.WALFsyncNanos, labels...)
	reg.ObserveCounter("batchdb_recovery_replayed_total", "Commands replayed from the WAL tail during recovery.", &st.RecoveryReplayed, labels...)
	reg.ObserveGauge("batchdb_recovery_duration_ns", "Duration of the last recovery replay (nanoseconds).", &st.RecoveryNanos, labels...)
	reg.ObserveCounter("batchdb_recovery_fallbacks_total", "Recoveries that fell back past an unverifiable checkpoint.", &st.RecoveryFallbacks, labels...)
}
