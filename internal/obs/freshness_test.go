package obs

import (
	"testing"
	"time"
)

// fakeClock drives Freshness deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeFreshness() (*Freshness, *fakeClock) {
	c := &fakeClock{t: time.Unix(1000, 0)}
	f := NewFreshness()
	f.Now = c.now
	return f, c
}

func TestFreshnessCaughtUp(t *testing.T) {
	f, c := newFakeFreshness()
	f.ObserveWatermark(10, true)
	f.ObserveInstall(10)
	if lag := f.VIDLag(); lag != 0 {
		t.Fatalf("lag %d, want 0", lag)
	}
	if s := f.StalenessNanos(); s != 0 {
		t.Fatalf("staleness %d, want 0", s)
	}
	// Confirmed syncs at the same watermark keep staleness near zero.
	c.advance(time.Second)
	f.ObserveWatermark(10, true)
	if s := f.StalenessNanos(); s != 0 {
		t.Fatalf("staleness after confirmed re-sync %d, want 0", s)
	}
}

func TestFreshnessLagAndStalenessBehind(t *testing.T) {
	f, c := newFakeFreshness()
	f.ObserveWatermark(10, true)
	f.ObserveInstall(10)
	c.advance(time.Second)
	f.ObserveWatermark(25, true) // primary moved on; install hasn't
	if lag := f.VIDLag(); lag != 15 {
		t.Fatalf("lag %d, want 15", lag)
	}
	c.advance(2 * time.Second)
	// Snapshot at 10 has been missing vid>10 since the watermark-25
	// observation two seconds ago.
	if s := f.StalenessNanos(); s != int64(2*time.Second) {
		t.Fatalf("staleness %d, want %d", s, int64(2*time.Second))
	}
	f.ObserveInstall(25)
	if lag := f.VIDLag(); lag != 0 {
		t.Fatalf("lag after install %d, want 0", lag)
	}
	// The snapshot now covers everything the last confirmed sync saw —
	// but that sync was two seconds ago, and commits since then are
	// unknown, so staleness anchors there instead of resetting.
	if s := f.StalenessNanos(); s != int64(2*time.Second) {
		t.Fatalf("staleness after catch-up install %d, want %d", s, int64(2*time.Second))
	}
	// A fresh confirmed sync at the same watermark re-anchors it to now.
	f.ObserveWatermark(25, true)
	if s := f.StalenessNanos(); s != 0 {
		t.Fatalf("staleness after confirmed re-sync %d, want 0", s)
	}
	if f.LagHigh() != 15 {
		t.Fatalf("lag high %d, want 15", f.LagHigh())
	}
}

// During an outage the supervisor answers syncs with the replica's own
// covered VID (unconfirmed): staleness must keep rising even though the
// observed watermark is not moving, and collapse after a confirmed
// resync installs the backlog.
func TestFreshnessOutageRisesThenRecovers(t *testing.T) {
	f, c := newFakeFreshness()
	f.ObserveWatermark(100, true)
	f.ObserveInstall(100)
	// Clear the bootstrap spike (watermark 100 over installed 0), the
	// way both the bench harness and the outage regression test do
	// between measurement phases.
	f.ResetLagHigh()

	for i := 0; i < 5; i++ {
		c.advance(time.Second)
		f.ObserveWatermark(100, false) // degraded fallback
	}
	if s := f.StalenessNanos(); s != int64(5*time.Second) {
		t.Fatalf("staleness during outage %d, want %d", s, int64(5*time.Second))
	}
	if lag := f.VIDLag(); lag != 0 {
		t.Fatalf("vid lag during blind outage %d, want 0 (watermark unobservable)", lag)
	}

	// Reconnect: live sync reveals the backlog, then the apply window
	// installs it.
	c.advance(time.Second)
	f.ObserveWatermark(180, true)
	if lag := f.VIDLag(); lag != 80 {
		t.Fatalf("post-reconnect lag %d, want 80", lag)
	}
	f.ObserveInstall(180)
	if lag := f.VIDLag(); lag != 0 {
		t.Fatalf("post-install lag %d, want 0", lag)
	}
	if s := f.StalenessNanos(); s != 0 {
		t.Fatalf("post-install staleness %d, want 0", s)
	}
	if f.LagHigh() != 80 {
		t.Fatalf("lag high %d, want 80 (the reconnect spike)", f.LagHigh())
	}
	if got := f.stalenessHist.Count(); got != 2 {
		t.Fatalf("staleness samples %d, want 2", got)
	}
}

func TestFreshnessInstallAheadOfWatermark(t *testing.T) {
	f, _ := newFakeFreshness()
	// A resync reload can install a VID never seen via SyncUpdates.
	f.ObserveInstall(50)
	if f.InstalledVID() != 50 || f.VIDLag() != 0 {
		t.Fatalf("installed %d lag %d, want 50/0", f.InstalledVID(), f.VIDLag())
	}
}

func TestFreshnessRingBounded(t *testing.T) {
	f, c := newFakeFreshness()
	for i := 1; i <= 3*maxRing; i++ {
		f.ObserveWatermark(uint64(i), true)
		c.advance(time.Millisecond)
	}
	f.mu.Lock()
	n := len(f.ring)
	f.mu.Unlock()
	if n > maxRing {
		t.Fatalf("ring grew to %d (cap %d)", n, maxRing)
	}
	// Staleness stays computable and bounded by total elapsed time.
	f.ObserveInstall(1)
	if s := f.StalenessNanos(); s <= 0 || s > int64(3*maxRing)*int64(time.Millisecond) {
		t.Fatalf("staleness %d out of range", s)
	}
}

func TestFreshnessRegisterExports(t *testing.T) {
	f, c := newFakeFreshness()
	reg := NewRegistry()
	f.Register(reg, L("class", "chbench"))
	f.ObserveWatermark(7, true)
	c.advance(time.Second)
	f.ObserveInstall(5)
	want := map[string]float64{
		"batchdb_freshness_vid_lag":        2,
		"batchdb_freshness_installed_vid":  5,
		"batchdb_freshness_watermark_vid":  7,
		"batchdb_freshness_installs_total": 1,
	}
	for name, v := range want {
		if got := findSample(t, reg.Samples(), name, L("class", "chbench")).Value; got != v {
			t.Fatalf("%s = %v, want %v", name, got, v)
		}
	}
	if got := findSample(t, reg.Samples(), "batchdb_freshness_staleness_ns", L("class", "chbench")).Value; got != float64(time.Second) {
		t.Fatalf("staleness gauge %v, want %v", got, float64(time.Second))
	}
}
