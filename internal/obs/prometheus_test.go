package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func findParsed(t *testing.T, samples []ParsedSample, name string) ParsedSample {
	t.Helper()
	for _, s := range samples {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("parsed sample %s not found", name)
	return ParsedSample{}
}

// The exporter's output must parse as valid Prometheus text exposition
// and round-trip label values through the escape rules.
func TestWritePrometheusParsesAndEscapes(t *testing.T) {
	r := NewRegistry()
	nasty := "a\\b\"c\nd"
	r.Counter("batchdb_esc_total", "help with \\ and\nnewline", L("path", nasty)).Add(5)
	r.Gauge("batchdb_esc_gauge", "g").Set(-7)
	h := r.Histogram("batchdb_esc_ns", "h")
	for i := int64(1); i <= 100; i++ {
		h.Record(i * 1000)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	samples, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exporter output does not parse: %v\noutput:\n%s", err, text)
	}

	var gotNasty bool
	for _, s := range samples {
		if s.Name == "batchdb_esc_total" {
			for _, l := range s.Labels {
				if l.Key == "path" && l.Value == nasty {
					gotNasty = true
				}
			}
			if s.Value != 5 {
				t.Fatalf("counter value %v, want 5", s.Value)
			}
		}
	}
	if !gotNasty {
		t.Fatalf("label value did not round-trip through escaping:\n%s", text)
	}

	// Histogram renders as a summary: quantiles + _sum + _count.
	for _, want := range []string{
		`batchdb_esc_ns{quantile="0.5"}`,
		`batchdb_esc_ns{quantile="0.9"}`,
		`batchdb_esc_ns{quantile="0.99"}`,
		"batchdb_esc_ns_sum", "batchdb_esc_ns_count",
		"# TYPE batchdb_esc_ns summary",
		"# TYPE batchdb_esc_total counter",
		"# TYPE batchdb_esc_gauge gauge",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

// Counters must be monotone across scrapes even while being written.
func TestCountersMonotoneAcrossScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("batchdb_mono_total", "")
	prev := -1.0
	for i := 0; i < 200; i++ {
		c.Add(uint64(i % 3))
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		samples, err := ParsePrometheus(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		if len(samples) != 1 {
			t.Fatalf("got %d samples, want 1", len(samples))
		}
		if samples[0].Value < prev {
			t.Fatalf("counter went backwards: %v after %v", samples[0].Value, prev)
		}
		prev = samples[0].Value
	}
}

func TestParsePrometheusRejectsInvalid(t *testing.T) {
	for _, bad := range []string{
		"no_type_comment 1\n",
		"# TYPE m counter\nm{l=unquoted} 1\n",
		"# TYPE m counter\nm{l=\"unterminated} 1\n",
		"# TYPE m counter\nm{1bad=\"v\"} 1\n",
		"# TYPE m counter\nm notanumber\n",
		"# TYPE m bogus\nm 1\n",
		"# TYPE m counter\n# TYPE m counter\nm 1\n",
	} {
		if _, err := ParsePrometheus(strings.NewReader(bad)); err == nil {
			t.Fatalf("parser accepted invalid exposition:\n%s", bad)
		}
	}
}

func TestHTTPEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("batchdb_http_total", "h").Add(9)
	ts := httptest.NewServer(Handler(r))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	samples, err := ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v := findParsed(t, samples, "batchdb_http_total").Value; v != 9 {
		t.Fatalf("scraped %v, want 9", v)
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", hz.StatusCode)
	}
}

func TestServeLifecycle(t *testing.T) {
	r := NewRegistry()
	r.Gauge("batchdb_serve_gauge", "").Set(3)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	samples, err := ParsePrometheus(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	findParsed(t, samples, "batchdb_serve_gauge")
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Fatal("server still reachable after Close")
	}
}
