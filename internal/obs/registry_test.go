package obs

import (
	"math"
	"strings"
	"sync"
	"testing"

	"batchdb/internal/metrics"
)

func findSample(t *testing.T, samples []Sample, name string, labels ...Label) Sample {
	t.Helper()
outer:
	for _, s := range samples {
		if s.Name != name || len(s.Labels) != len(labels) {
			continue
		}
		for i := range labels {
			if s.Labels[i] != labels[i] {
				continue outer
			}
		}
		return s
	}
	t.Fatalf("sample %s%v not found in %d samples", name, labels, len(samples))
	return Sample{}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("batchdb_test_total", "help", L("class", "a"))
	c2 := r.Counter("batchdb_test_total", "help", L("class", "a"))
	if c1 != c2 {
		t.Fatal("same series returned different counters")
	}
	c3 := r.Counter("batchdb_test_total", "help", L("class", "b"))
	if c3 == c1 {
		t.Fatal("different label values shared a counter")
	}
	// Label order must not matter.
	g1 := r.Gauge("batchdb_test_gauge", "", L("a", "1"), L("b", "2"))
	g2 := r.Gauge("batchdb_test_gauge", "", L("b", "2"), L("a", "1"))
	if g1 != g2 {
		t.Fatal("label order changed series identity")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("batchdb_conflict", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("batchdb_conflict", "")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	for _, name := range []string{"", "1abc", "has space", "dash-ed", "utf8é"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q did not panic", name)
				}
			}()
			NewRegistry().Counter(name, "")
		}()
	}
}

func TestRegistryObserveAdoptsAndIsIdempotent(t *testing.T) {
	r := NewRegistry()
	var c struct{ n metrics.Counter }
	r.ObserveCounter("batchdb_adopted_total", "h", &c.n)
	r.ObserveCounter("batchdb_adopted_total", "h", &c.n) // same pointer: fine
	c.n.Add(7)
	s := findSample(t, r.Samples(), "batchdb_adopted_total")
	if s.Value != 7 {
		t.Fatalf("adopted counter exported %v, want 7", s.Value)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("binding a second instrument to the same series did not panic")
		}
	}()
	var other metrics.Counter
	r.ObserveCounter("batchdb_adopted_total", "h", &other)
}

// Concurrent registration and recording from many goroutines while
// another goroutine continuously exports: every sample set must be
// internally coherent and the race detector must stay quiet.
func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	expDone := make(chan struct{})

	// Exporter goroutine hammers Samples + WritePrometheus. It runs on
	// its own done channel: it only exits once stop closes, which
	// happens after the workers' wg.Wait.
	go func() {
		defer close(expDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
			for _, s := range r.Samples() {
				if math.IsNaN(s.Value) {
					t.Errorf("NaN sample %s", s.Name)
					return
				}
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := L("worker", string(rune('a'+w)))
			for i := 0; i < perWorker; i++ {
				r.Counter("batchdb_conc_total", "h", lbl).Inc()
				r.Gauge("batchdb_conc_gauge", "h", lbl).Set(int64(i))
				r.Histogram("batchdb_conc_ns", "h").Record(int64(i + 1))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-expDone

	samples := r.Samples()
	var total float64
	for _, s := range samples {
		if s.Name == "batchdb_conc_total" {
			total += s.Value
		}
	}
	if total != workers*perWorker {
		t.Fatalf("counters sum to %v, want %d", total, workers*perWorker)
	}
	if c := findSample(t, samples, "batchdb_conc_ns_count"); c.Value != workers*perWorker {
		t.Fatalf("histogram count %v, want %d", c.Value, workers*perWorker)
	}
}

func TestRegistryFuncs(t *testing.T) {
	r := NewRegistry()
	var n uint64 = 42
	r.CounterFunc("batchdb_fn_total", "h", func() uint64 { return n })
	r.GaugeFunc("batchdb_fn_gauge", "h", func() float64 { return 2.5 })
	s := r.Samples()
	if v := findSample(t, s, "batchdb_fn_total").Value; v != 42 {
		t.Fatalf("counter func exported %v", v)
	}
	if v := findSample(t, s, "batchdb_fn_gauge").Value; v != 2.5 {
		t.Fatalf("gauge func exported %v", v)
	}
}

func TestRenderLine(t *testing.T) {
	r := NewRegistry()
	r.Counter("batchdb_line_total", "", L("class", "x")).Add(3)
	r.Gauge("batchdb_line_gauge", "").Set(-1)
	line := r.RenderLine()
	for _, want := range []string{"batchdb_line_total{class=x}=3", "batchdb_line_gauge=-1"} {
		if !strings.Contains(line, want) {
			t.Fatalf("RenderLine %q missing %q", line, want)
		}
	}
	if strings.ContainsAny(line, "\n\t") {
		t.Fatalf("RenderLine contains framing bytes: %q", line)
	}
}
