package obs

import (
	"fmt"
	"net"
	"net/http"
	"time"
)

// Handler returns an http.Handler serving the registry at /metrics in
// Prometheus text format, with a trivial liveness probe at /healthz.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Server is a running metrics HTTP endpoint.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Serve starts an HTTP server for the registry on addr (e.g.
// "127.0.0.1:9464"; use port 0 to pick a free port). It returns once
// the listener is bound; serving continues in a background goroutine
// until Close.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: Handler(r), ReadHeaderTimeout: 5 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln) // returns http.ErrServerClosed on Close
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and waits for the serve goroutine to exit.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}
