package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParsedSample is one sample line decoded from Prometheus text
// exposition, used by tests to validate the exporter round-trips.
type ParsedSample struct {
	Name   string
	Labels []Label
	Value  float64
}

// ParsePrometheus decodes Prometheus text exposition format (the
// subset WritePrometheus emits: # HELP/# TYPE comments and sample
// lines without timestamps). It validates metric-name and label-key
// charsets, label-value quoting/escapes, and that # TYPE precedes the
// family's samples, returning an error on the first violation.
func ParsePrometheus(r io.Reader) ([]ParsedSample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []ParsedSample
	types := make(map[string]string)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				if !validName(fields[2]) {
					return nil, fmt.Errorf("line %d: invalid metric name %q in TYPE", lineNo, fields[2])
				}
				if len(fields) < 4 {
					return nil, fmt.Errorf("line %d: TYPE without a type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
				}
				if _, dup := types[fields[2]]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, fields[2])
				}
				types[fields[2]] = fields[3]
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		base := s.Name
		for _, suf := range []string{"_sum", "_count", "_bucket"} {
			if t := strings.TrimSuffix(base, suf); t != base {
				if ty := types[t]; ty == "summary" || ty == "histogram" {
					base = t
				}
				break
			}
		}
		if _, ok := types[base]; !ok {
			return nil, fmt.Errorf("line %d: sample %q before its # TYPE", lineNo, s.Name)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSampleLine(line string) (ParsedSample, error) {
	var s ParsedSample
	rest := line
	brace := strings.IndexByte(rest, '{')
	var nameEnd int
	if brace >= 0 {
		nameEnd = brace
	} else if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		nameEnd = sp
	} else {
		return s, fmt.Errorf("no value on sample line %q", line)
	}
	s.Name = rest[:nameEnd]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[nameEnd:]
	if brace >= 0 {
		var err error
		s.Labels, rest, err = parseLabels(rest)
		if err != nil {
			return s, err
		}
	}
	rest = strings.TrimLeft(rest, " ")
	// A trailing timestamp is legal in the format; we don't emit one,
	// so only the value field is expected.
	valStr := rest
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		valStr = rest[:sp]
	}
	v, err := parseValue(valStr)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", valStr, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(v string) (float64, error) {
	switch v {
	case "+Inf", "Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	}
	return strconv.ParseFloat(v, 64)
}

// parseLabels decodes a {k="v",...} block (rest starts at '{') and
// returns the labels plus the remainder of the line.
func parseLabels(rest string) ([]Label, string, error) {
	rest = rest[1:] // consume '{'
	var labels []Label
	for {
		rest = strings.TrimLeft(rest, " ")
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, rest, fmt.Errorf("label without '=' near %q", rest)
		}
		key := strings.TrimSpace(rest[:eq])
		if !validLabelKey(key) {
			return nil, rest, fmt.Errorf("invalid label key %q", key)
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, rest, fmt.Errorf("unquoted label value near %q", rest)
		}
		rest = rest[1:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					return nil, rest, fmt.Errorf("dangling escape in label value")
				}
				i++
				switch rest[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, rest, fmt.Errorf("bad escape \\%c in label value", rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(rest) {
			return nil, rest, fmt.Errorf("unterminated label value")
		}
		labels = append(labels, Label{Key: key, Value: val.String()})
		rest = rest[i+1:]
		rest = strings.TrimLeft(rest, " ")
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
			continue
		}
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		return nil, rest, fmt.Errorf("expected ',' or '}' near %q", rest)
	}
}
