package ingest

import "batchdb/internal/obs"

// RegisterMetrics exposes the loader's counters, admitted rate and
// governor throttle count through reg.
func (l *Loader) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	reg.ObserveCounter("batchdb_ingest_rows_total",
		"Rows durably loaded by the bulk-ingest path.", &l.stats.RowsLoaded, labels...)
	reg.ObserveCounter("batchdb_ingest_chunks_total",
		"Durably committed ingest chunks.", &l.stats.Chunks, labels...)
	reg.ObserveCounter("batchdb_ingest_retries_total",
		"Ingest chunk retries after write-write conflicts.", &l.stats.Retries, labels...)
	reg.GaugeFunc("batchdb_ingest_rate_chunks_per_sec",
		"Currently admitted ingest chunk rate.", l.Rate, labels...)
	reg.CounterFunc("batchdb_ingest_throttles_total",
		"Governor rate cuts taken to protect the OLTP p99 SLO.",
		func() uint64 {
			if l.gov == nil {
				return 0
			}
			return l.gov.Throttles()
		}, labels...)
}
