package ingest

import (
	"errors"
	"fmt"
	"time"

	"batchdb/internal/metrics"
	"batchdb/internal/mvcc"
	"batchdb/internal/oltp"
	"batchdb/internal/resmodel"
	"batchdb/internal/storage"
)

// Config parameterizes a Loader.
type Config struct {
	// ChunkRows is the number of rows per ingest chunk — one chunk is
	// one transaction, one WAL record, one unit of atomicity. Default
	// 1024.
	ChunkRows int
	// Governor configures the admission controller. A zero BaselineP99
	// is auto-measured from the engine's interactive latency histogram
	// over BaselineWindow before the load starts.
	Governor resmodel.GovernorConfig
	// DisableGovernor runs the load open-throttle at the fixed rate
	// Governor.MaxRate (0 = completely unpaced). The bench's
	// governor-off cell uses this to demonstrate the SLO violation the
	// governor prevents.
	DisableGovernor bool
	// SampleEvery is the governor's observation period. Default 50 ms.
	SampleEvery time.Duration
	// MinWindowSamples is the minimum interactive-transaction count a
	// window needs before its p99 is trusted; smaller non-empty windows
	// are extended rather than acted on. Default 8.
	MinWindowSamples int
	// BaselineWindow is how long to measure the unloaded baseline p99
	// when Governor.BaselineP99 is zero. Default 250 ms.
	BaselineWindow time.Duration
	// MaxRetries bounds per-chunk retries on write-write conflicts.
	// Default 8.
	MaxRetries int
	// Ungrouped encodes chunks with the row-at-a-time flag — the
	// pre-grouping baseline the bench compares against.
	Ungrouped bool
	// OnChunk, when set, is called after each chunk's group commit is
	// acknowledged (i.e. the chunk is durable).
	OnChunk func(ChunkAck)
}

func (c *Config) fill() {
	if c.ChunkRows <= 0 {
		c.ChunkRows = 1024
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 50 * time.Millisecond
	}
	if c.MinWindowSamples <= 0 {
		c.MinWindowSamples = 8
	}
	if c.BaselineWindow <= 0 {
		c.BaselineWindow = 250 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 8
	}
}

// ChunkAck reports one durably committed chunk.
type ChunkAck struct {
	// Index is the chunk's ordinal within the load (0-based).
	Index int
	// Rows is the chunk's row count.
	Rows int
	// VID is the chunk transaction's commit VID.
	VID uint64
}

// Report summarizes a completed (or failed) load.
type Report struct {
	Rows    int
	Chunks  int
	Retries int
	Elapsed time.Duration
	// RowsPerSec is the achieved ingest rate over the whole load.
	RowsPerSec float64
	// BaselineP99 and Bound are the governor's anchor and ceiling;
	// MaxWindowP99 is the worst trusted window observed during the load.
	BaselineP99  time.Duration
	Bound        time.Duration
	MaxWindowP99 time.Duration
	// FinalRate is the admitted chunk rate when the load finished;
	// Throttles counts governor rate cuts; GovernorEngaged reports
	// whether the governor ever had to throttle.
	FinalRate       float64
	Throttles       uint64
	GovernorEngaged bool
	// FirstVID and LastVID bracket the load's commit VIDs (0 if no
	// chunk committed).
	FirstVID uint64
	LastVID  uint64
}

// Stats holds the loader's observability counters (see RegisterMetrics).
type Stats struct {
	RowsLoaded metrics.Counter
	Chunks     metrics.Counter
	Retries    metrics.Counter
}

// Loader streams rows into one table through the bulk-ingest stored
// procedure, pacing chunk admission with an SLO governor. One Loader
// drives one load at a time; create one per concurrent stream.
type Loader struct {
	e     *oltp.Engine
	table storage.TableID
	cfg   Config
	gov   *resmodel.Governor
	stats Stats
}

// NewLoader returns a loader targeting table on e. RegisterProc must
// have been called on e before Start.
func NewLoader(e *oltp.Engine, table storage.TableID, cfg Config) *Loader {
	cfg.fill()
	return &Loader{e: e, table: table, cfg: cfg}
}

// Stats returns the loader's counters for metrics registration.
func (l *Loader) Stats() *Stats { return &l.stats }

// Rate returns the currently admitted chunk rate (chunks/sec), or 0
// before a governed load has started.
func (l *Loader) Rate() float64 {
	if l.gov == nil {
		return 0
	}
	return l.gov.Rate()
}

// SliceSource adapts a row slice to the Load source signature.
func SliceSource(rows [][]byte) func() ([]byte, bool) {
	i := 0
	return func() ([]byte, bool) {
		if i >= len(rows) {
			return nil, false
		}
		r := rows[i]
		i++
		return r, true
	}
}

// Load streams rows from src (which returns ok=false at end of stream)
// into the target table. It returns when the stream is exhausted and
// every chunk is durably acknowledged, or on the first unrecoverable
// error — in which case the Report still describes the acknowledged
// prefix, and every acknowledged chunk is durable.
func (l *Loader) Load(src func() ([]byte, bool)) (rep Report, err error) {
	start := time.Now()
	defer func() {
		rep.Elapsed = time.Since(start)
		if rep.Elapsed > 0 {
			rep.RowsPerSec = float64(rep.Rows) / rep.Elapsed.Seconds()
		}
	}()

	hist := &l.e.Stats().Latency
	if !l.cfg.DisableGovernor {
		gcfg := l.cfg.Governor
		if gcfg.BaselineP99 <= 0 {
			gcfg.BaselineP99 = l.measureBaseline(hist)
		}
		l.gov = resmodel.NewGovernor(gcfg)
		rep.BaselineP99 = gcfg.BaselineP99
		rep.Bound = l.gov.Bound()
	}

	rate := 0.0 // chunks/sec; 0 = unpaced
	if l.gov != nil {
		rate = l.gov.Rate()
	} else if l.cfg.Governor.MaxRate > 0 {
		rate = l.cfg.Governor.MaxRate
	}

	prev := hist.Snapshot()
	lastSample := time.Now()
	next := time.Now()
	buf := make([][]byte, 0, l.cfg.ChunkRows)
	for {
		buf = buf[:0]
		for len(buf) < l.cfg.ChunkRows {
			row, ok := src()
			if !ok {
				break
			}
			buf = append(buf, row)
		}
		if len(buf) == 0 {
			break
		}

		// Pace: one chunk per 1/rate seconds. No debt accumulation — a
		// late chunk does not entitle a burst.
		if rate > 0 {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			next = next.Add(time.Duration(float64(time.Second) / rate))
			if now := time.Now(); next.Before(now) {
				next = now
			}
		}

		vid, retries, err := l.execChunk(buf)
		rep.Retries += retries
		if err != nil {
			l.finish(&rep)
			return rep, err
		}
		l.stats.RowsLoaded.Add(uint64(len(buf)))
		l.stats.Chunks.Inc()
		if rep.FirstVID == 0 {
			rep.FirstVID = vid
		}
		rep.LastVID = vid
		rep.Rows += len(buf)
		rep.Chunks++
		if l.cfg.OnChunk != nil {
			l.cfg.OnChunk(ChunkAck{Index: rep.Chunks - 1, Rows: len(buf), VID: vid})
		}

		// Governor observation: a windowed p99 of the interactive
		// histogram. Empty window = idle OLTP side = nothing to protect;
		// a sparse window is extended rather than trusted.
		if l.gov != nil && time.Since(lastSample) >= l.cfg.SampleEvery {
			snap := hist.Snapshot()
			win := snap.Delta(&prev)
			switch {
			case win.Count == 0:
				rate = l.gov.Observe(0)
				prev, lastSample = snap, time.Now()
			case win.Count >= uint64(l.cfg.MinWindowSamples):
				p99 := time.Duration(win.Percentile(99))
				if p99 > rep.MaxWindowP99 {
					rep.MaxWindowP99 = p99
				}
				rate = l.gov.Observe(p99)
				prev, lastSample = snap, time.Now()
			}
		}
	}
	l.finish(&rep)
	return rep, nil
}

func (l *Loader) finish(rep *Report) {
	if l.gov != nil {
		rep.FinalRate = l.gov.Rate()
		rep.Throttles = l.gov.Throttles()
		rep.GovernorEngaged = rep.Throttles > 0
	}
}

// measureBaseline samples the unloaded interactive p99 over the
// configured window. With no interactive traffic at all there is
// nothing to anchor to; fall back to a millisecond so the bound stays
// meaningful instead of degenerating to zero.
func (l *Loader) measureBaseline(hist *metrics.Histogram) time.Duration {
	before := hist.Snapshot()
	time.Sleep(l.cfg.BaselineWindow)
	after := hist.Snapshot()
	win := after.Delta(&before)
	if win.Count > 0 {
		if p99 := time.Duration(win.Percentile(99)); p99 > 0 {
			return p99
		}
	}
	return time.Millisecond
}

// execChunk submits one chunk, retrying conflicts. The ack only
// arrives after the chunk's group commit, so a nil error means the
// chunk is durable (oltp.ErrNotDurable is unrecoverable here: the
// chunk's fate is unknown, and resuming could double-load it).
func (l *Loader) execChunk(rows [][]byte) (vid uint64, retries int, err error) {
	args := EncodeChunk(l.table, rows, !l.cfg.Ungrouped)
	for attempt := 0; ; attempt++ {
		resp := l.e.Exec(ProcName, args)
		if resp.Err == nil {
			return resp.CommitVID, retries, nil
		}
		if !errors.Is(resp.Err, mvcc.ErrConflict) || attempt >= l.cfg.MaxRetries {
			return 0, retries, fmt.Errorf("ingest: chunk failed after %d retries: %w", retries, resp.Err)
		}
		retries++
		l.stats.Retries.Inc()
	}
}
