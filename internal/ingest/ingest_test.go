package ingest_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"batchdb/internal/ingest"
	"batchdb/internal/mvcc"
	"batchdb/internal/obs"
	"batchdb/internal/oltp"
	"batchdb/internal/storage"
)

func itemSchema() *storage.Schema {
	return storage.NewSchema(7, "item", []storage.Column{
		{Name: "id", Type: storage.Int64},
		{Name: "val", Type: storage.Int64},
	}, []int{0})
}

func itemRows(schema *storage.Schema, start, n int) [][]byte {
	rows := make([][]byte, n)
	for i := range rows {
		tup := schema.NewTuple()
		schema.PutInt64(tup, 0, int64(start+i))
		schema.PutInt64(tup, 1, int64(start+i)*3)
		rows[i] = tup
	}
	return rows
}

// newItemEngine builds a started engine with the item table and the
// ingest procedure installed.
func newItemEngine(t *testing.T, schema *storage.Schema) (*oltp.Engine, *mvcc.Table) {
	t.Helper()
	store := mvcc.NewStore()
	tbl := store.CreateTable(schema, func(tup []byte) uint64 {
		return uint64(schema.GetInt64(tup, 0))
	}, 1024)
	e, err := oltp.New(store, oltp.Config{Workers: 2, PushPeriod: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ingest.RegisterProc(e)
	e.Start()
	t.Cleanup(func() { e.Close() })
	return e, tbl
}

func TestChunkRoundTrip(t *testing.T) {
	schema := itemSchema()
	rows := itemRows(schema, 100, 17)
	for _, grouped := range []bool{true, false} {
		args := ingest.EncodeChunk(7, rows, grouped)
		tid, got, g, err := ingest.DecodeChunk(args)
		if err != nil {
			t.Fatal(err)
		}
		if tid != 7 || g != grouped || len(got) != len(rows) {
			t.Fatalf("decode: table=%d grouped=%v rows=%d", tid, g, len(got))
		}
		for i := range rows {
			if string(got[i]) != string(rows[i]) {
				t.Fatalf("row %d mismatch", i)
			}
		}
	}
	for _, bad := range [][]byte{nil, {1, 2, 3}, ingest.EncodeChunk(7, rows, true)[:20]} {
		if _, _, _, err := ingest.DecodeChunk(bad); !errors.Is(err, ingest.ErrBadChunk) {
			t.Fatalf("decode(%d bytes): want ErrBadChunk, got %v", len(bad), err)
		}
	}
}

// TestLoaderLoadsRows loads both grouped and ungrouped and verifies
// exact contents either way.
func TestLoaderLoadsRows(t *testing.T) {
	for _, ungrouped := range []bool{false, true} {
		schema := itemSchema()
		e, tbl := newItemEngine(t, schema)
		const n = 10_000
		rows := itemRows(schema, 0, n)

		l := ingest.NewLoader(e, schema.ID, ingest.Config{
			ChunkRows:       512,
			DisableGovernor: true,
			Ungrouped:       ungrouped,
		})
		rep, err := l.Load(ingest.SliceSource(rows))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Rows != n || rep.Chunks != (n+511)/512 {
			t.Fatalf("report: %d rows in %d chunks", rep.Rows, rep.Chunks)
		}
		if rep.FirstVID == 0 || rep.LastVID < rep.FirstVID {
			t.Fatalf("VID range [%d, %d]", rep.FirstVID, rep.LastVID)
		}
		if got := l.Stats().RowsLoaded.Load(); got != n {
			t.Fatalf("stats counted %d rows", got)
		}

		tx := e.Store().BeginRO()
		for i := 0; i < n; i++ {
			tup, ok := tx.Get(tbl, uint64(i))
			if !ok {
				t.Fatalf("ungrouped=%v: row %d missing", ungrouped, i)
			}
			if v := schema.GetInt64(tup, 1); v != int64(i)*3 {
				t.Fatalf("row %d: val %d", i, v)
			}
		}
		if _, ok := tx.Get(tbl, uint64(n)); ok {
			t.Fatal("phantom row past the stream")
		}
		tx.Abort()
	}
}

// TestLoaderMetrics: the loader's counters land in an obs registry and
// reflect a completed load.
func TestLoaderMetrics(t *testing.T) {
	schema := itemSchema()
	e, _ := newItemEngine(t, schema)
	l := ingest.NewLoader(e, schema.ID, ingest.Config{ChunkRows: 100, DisableGovernor: true})
	reg := obs.NewRegistry()
	l.RegisterMetrics(reg)
	if _, err := l.Load(ingest.SliceSource(itemRows(schema, 0, 250))); err != nil {
		t.Fatal(err)
	}
	line := reg.RenderLine()
	for _, want := range []string{
		"batchdb_ingest_rows_total=250",
		"batchdb_ingest_chunks_total=3",
		"batchdb_ingest_retries_total=0",
		"batchdb_ingest_throttles_total=0",
		"batchdb_ingest_rate_chunks_per_sec",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("registry missing %q in %q", want, line)
		}
	}
}

// TestLoaderChunkAtomicity: a chunk with a key colliding with a
// resident row fails whole — none of its other rows become visible —
// while previously acked chunks stay.
func TestLoaderChunkAtomicity(t *testing.T) {
	schema := itemSchema()
	e, tbl := newItemEngine(t, schema)

	l := ingest.NewLoader(e, schema.ID, ingest.Config{ChunkRows: 100, DisableGovernor: true})
	if _, err := l.Load(ingest.SliceSource(itemRows(schema, 0, 100))); err != nil {
		t.Fatal(err)
	}

	// Second load: first chunk clean, second chunk collides on key 50.
	rows := itemRows(schema, 1000, 100)
	rows = append(rows, itemRows(schema, 50, 1)...)    // duplicate
	rows = append(rows, itemRows(schema, 2000, 98)...) // would ride in the same chunk
	var acked []ingest.ChunkAck
	l2 := ingest.NewLoader(e, schema.ID, ingest.Config{
		ChunkRows: 100, DisableGovernor: true,
		OnChunk: func(a ingest.ChunkAck) { acked = append(acked, a) },
	})
	rep, err := l2.Load(ingest.SliceSource(rows))
	if !errors.Is(err, mvcc.ErrDuplicateKey) {
		t.Fatalf("want ErrDuplicateKey, got %v", err)
	}
	if rep.Chunks != 1 || len(acked) != 1 {
		t.Fatalf("acked %d chunks (report %d)", len(acked), rep.Chunks)
	}

	tx := e.Store().BeginRO()
	defer tx.Abort()
	for i := 1000; i < 1100; i++ { // acked chunk present
		if _, ok := tx.Get(tbl, uint64(i)); !ok {
			t.Fatalf("acked row %d missing", i)
		}
	}
	for i := 2000; i < 2098; i++ { // failed chunk fully absent
		if _, ok := tx.Get(tbl, uint64(i)); ok {
			t.Fatalf("row %d from failed chunk leaked", i)
		}
	}
	if tup, _ := tx.Get(tbl, 50); schema.GetInt64(tup, 1) != 150 {
		t.Fatal("resident row clobbered by failed chunk")
	}
}
