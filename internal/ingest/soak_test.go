package ingest_test

// Deterministic ingest-soak harness: concurrent TPC-C traffic plus a
// governed bulk load, with injected stalls (slow replica apply, WAL
// group-commit delays, checkpoints mid-load). Every scenario asserts
// the load's exact row count and value sum are visible to an OLAP
// batch after the freshness barrier, that chunk acknowledgments carry
// monotone commit VIDs, and that the governor engaged whenever the
// interactive p99 was pushed past its bound. The stall scenarios
// additionally recover the store from its log/checkpoints and assert
// every acknowledged chunk survived. Workloads are seeded; assertions
// avoid wall-clock thresholds so the suite is stable under -race.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"batchdb/internal/checkpoint"
	"batchdb/internal/ingest"
	"batchdb/internal/mvcc"
	"batchdb/internal/olap"
	"batchdb/internal/oltp"
	"batchdb/internal/proplog"
	"batchdb/internal/resmodel"
	"batchdb/internal/storage"
	"batchdb/internal/tpcc"
	"batchdb/internal/wal"
)

const (
	bulkTableID  = 42
	soakRows     = 40_000
	soakChunk    = 2_000
	soakTPCCSeed = 1
)

func bulkSchema() *storage.Schema {
	return storage.NewSchema(bulkTableID, "bulk", []storage.Column{
		{Name: "id", Type: storage.Int64},
		{Name: "val", Type: storage.Int64},
	}, []int{0})
}

// bulkRows generates the deterministic load: val = id*7 + 3.
func bulkRows(schema *storage.Schema, n int) (rows [][]byte, sum int64) {
	rows = make([][]byte, n)
	for i := range rows {
		tup := schema.NewTuple()
		schema.PutInt64(tup, 0, int64(i))
		v := int64(i)*7 + 3
		schema.PutInt64(tup, 1, v)
		sum += v
		rows[i] = tup
	}
	return rows, sum
}

// tally is one OLAP batch observation over the bulk table.
type tally struct {
	snap  uint64
	count int
	sum   int64
}

// slowSink delays every update push — a slow OLAP replica whose apply
// stalls back-pressure the OLTP dispatcher at push boundaries.
type slowSink struct {
	inner oltp.UpdateSink
	delay time.Duration
}

func (s slowSink) ApplyUpdates(b []proplog.Batch, upTo uint64) {
	time.Sleep(s.delay)
	s.inner.ApplyUpdates(b, upTo)
}

// stallLog delays every nth group commit — a disk whose fsync
// occasionally takes an order of magnitude longer than usual.
type stallLog struct {
	inner oltp.CommandLog
	every int
	delay time.Duration
	n     int
}

func (l *stallLog) Append(r wal.Record) error { return l.inner.Append(r) }
func (l *stallLog) Close() error              { return l.inner.Close() }
func (l *stallLog) Commit() error {
	l.n++
	if l.every > 0 && l.n%l.every == 0 {
		time.Sleep(l.delay)
	}
	return l.inner.Commit()
}

// soakRig is one assembled instance: TPC-C store + bulk table on the
// primary, generic OLAP replica receiving only the bulk table, and a
// batch scheduler whose query tallies the replica's bulk rows.
type soakRig struct {
	db     *tpcc.DB
	schema *storage.Schema
	tbl    *mvcc.Table
	engine *oltp.Engine
	sched  *olap.Scheduler[int, tally]
}

func newSoakRig(t *testing.T, replicaDelay time.Duration) *soakRig {
	t.Helper()
	schema := bulkSchema()
	db := tpcc.NewDB(tpcc.SmallScale(1))
	if err := tpcc.Generate(db, soakTPCCSeed); err != nil {
		t.Fatal(err)
	}
	tbl := db.Store.CreateTable(schema, func(tup []byte) uint64 {
		return uint64(schema.GetInt64(tup, 0))
	}, 4096)
	e, err := oltp.New(db.Store, oltp.Config{
		Workers:    2,
		PushPeriod: 5 * time.Millisecond,
		Replicated: map[storage.TableID]bool{bulkTableID: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	tpcc.RegisterProcs(e, db, false)
	ingest.RegisterProc(e)

	rep := olap.NewReplica(4)
	rep.CreateTable(schema, 1024)
	if replicaDelay > 0 {
		e.SetSink(slowSink{inner: rep, delay: replicaDelay})
	} else {
		e.SetSink(rep)
	}
	runBatch := func(queries []int, snap uint64) []tally {
		sv := rep.PinSnapshot()
		defer sv.Unpin()
		var ta tally
		ta.snap = sv.VID()
		for _, p := range sv.Table(bulkTableID).Partitions {
			p.Scan(func(_ uint64, tup []byte) bool {
				ta.count++
				ta.sum += schema.GetInt64(tup, 1)
				return true
			})
		}
		out := make([]tally, len(queries))
		for i := range out {
			out[i] = ta
		}
		return out
	}
	sched := olap.NewScheduler(rep, e, runBatch)
	return &soakRig{db: db, schema: schema, tbl: tbl, engine: e, sched: sched}
}

// startInteractive launches seeded closed-loop TPC-C clients. Returns a
// stop func that waits for them and fails the test on unexpected errors.
func startInteractive(t *testing.T, e *oltp.Engine, scale tpcc.Scale, clients int) (stop func()) {
	t.Helper()
	stopCh := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			drv := tpcc.NewDriver(scale, seed)
			for {
				select {
				case <-stopCh:
					return
				default:
				}
				proc, args := drv.Next()
				r := e.Exec(proc, args)
				switch {
				case r.Err == nil,
					errors.Is(r.Err, tpcc.ErrRollback),
					errors.Is(r.Err, mvcc.ErrConflict):
				case errors.Is(r.Err, oltp.ErrClosed), errors.Is(r.Err, oltp.ErrNotDurable):
					return
				default:
					t.Errorf("interactive txn: %v", r.Err)
					return
				}
			}
		}(int64(c)*131 + 7)
	}
	return func() { close(stopCh); wg.Wait() }
}

// soakGovernor is the governor configuration every scenario loads
// under: auto-measured baseline, 3x SLO, floors high enough that even a
// fully throttled load finishes in about a second.
func soakLoaderConfig() ingest.Config {
	return ingest.Config{
		ChunkRows: soakChunk,
		Governor: resmodel.GovernorConfig{
			SLOMultiplier: 3,
			MinRate:       20,
			MaxRate:       500,
		},
		SampleEvery:      20 * time.Millisecond,
		MinWindowSamples: 8,
		BaselineWindow:   150 * time.Millisecond,
	}
}

// checkAcks asserts chunk acknowledgments are complete and carry
// strictly increasing commit VIDs.
func checkAcks(t *testing.T, acks []ingest.ChunkAck, rep ingest.Report) {
	t.Helper()
	if len(acks) != rep.Chunks {
		t.Fatalf("%d acks for %d chunks", len(acks), rep.Chunks)
	}
	rows := 0
	for i, a := range acks {
		if a.Index != i {
			t.Fatalf("ack %d has index %d", i, a.Index)
		}
		if i > 0 && a.VID <= acks[i-1].VID {
			t.Fatalf("ack VIDs not increasing: %d after %d", a.VID, acks[i-1].VID)
		}
		rows += a.Rows
	}
	if rows != rep.Rows {
		t.Fatalf("acks cover %d rows, report says %d", rows, rep.Rows)
	}
}

// runGovernedLoad drives one governed load against the rig under
// interactive traffic and verifies the OLAP-visible outcome.
func runGovernedLoad(t *testing.T, rig *soakRig, cfg ingest.Config) ingest.Report {
	t.Helper()
	rows, wantSum := bulkRows(rig.schema, soakRows)
	var acks []ingest.ChunkAck
	cfg.OnChunk = func(a ingest.ChunkAck) { acks = append(acks, a) }
	l := ingest.NewLoader(rig.engine, bulkTableID, cfg)

	stop := startInteractive(t, rig.engine, rig.db.Scale, 2)
	rep, err := l.Load(ingest.SliceSource(rows))
	stop()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows != soakRows {
		t.Fatalf("loaded %d rows, want %d", rep.Rows, soakRows)
	}
	checkAcks(t, acks, rep)

	// SLO: either the load never pushed a trusted window past the bound,
	// or the governor engaged and throttled. (A single oversized window
	// cannot be prevented, only reacted to — the property test pins the
	// reaction; here we pin that it actually fired under live load.)
	if rep.MaxWindowP99 > rep.Bound && rep.Throttles == 0 {
		t.Fatalf("window p99 %v exceeded bound %v but governor never throttled", rep.MaxWindowP99, rep.Bound)
	}
	t.Logf("load: %.0f rows/s, baseline p99 %v, bound %v, max window p99 %v, throttles %d, final rate %.1f",
		rep.RowsPerSec, rep.BaselineP99, rep.Bound, rep.MaxWindowP99, rep.Throttles, rep.FinalRate)

	// Freshness barrier: a batch admitted after the load must see every
	// loaded row — exact count, exact sum.
	ta, err := rig.sched.Query(0)
	if err != nil {
		t.Fatal(err)
	}
	if ta.snap < rep.LastVID {
		t.Fatalf("post-load batch snapshot %d below last chunk VID %d", ta.snap, rep.LastVID)
	}
	if ta.count != soakRows || ta.sum != wantSum {
		t.Fatalf("OLAP sees %d rows / sum %d, want %d / %d", ta.count, ta.sum, soakRows, wantSum)
	}
	return rep
}

// TestIngestSoakSteady: governed load under interactive TPC-C with no
// injected faults.
func TestIngestSoakSteady(t *testing.T) {
	rig := newSoakRig(t, 0)
	rig.engine.Start()
	rig.sched.Start()
	defer rig.engine.Close()
	defer rig.sched.Close()
	runGovernedLoad(t, rig, soakLoaderConfig())
}

// TestIngestSoakSlowReplica: every update push stalls, back-pressuring
// the dispatcher. The load must still complete with exact OLAP
// visibility and the governor must absorb the inflated latencies.
func TestIngestSoakSlowReplica(t *testing.T) {
	rig := newSoakRig(t, 2*time.Millisecond)
	rig.engine.Start()
	rig.sched.Start()
	defer rig.engine.Close()
	defer rig.sched.Close()
	rep := runGovernedLoad(t, rig, soakLoaderConfig())
	if rep.FinalRate > soakLoaderConfig().Governor.MaxRate {
		t.Fatalf("final rate %.1f above configured max", rep.FinalRate)
	}
}

// TestIngestSoakWALStall: group commits intermittently stall; acks are
// durability-gated, so the load slows but every acknowledged chunk must
// be recoverable by replaying the command log from the seed state.
func TestIngestSoakWALStall(t *testing.T) {
	walPath := t.TempDir() + "/soak.wal"
	rig := newSoakRig(t, 0)
	inner, err := wal.Create(walPath, wal.Options{Sync: false})
	if err != nil {
		t.Fatal(err)
	}
	rig.engine.SetLog(&stallLog{inner: inner, every: 5, delay: 5 * time.Millisecond})
	rig.engine.Start()
	rig.sched.Start()
	rep := runGovernedLoad(t, rig, soakLoaderConfig())
	rig.sched.Close()
	if err := rig.engine.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover a fresh instance from the log over an identical seed and
	// assert every acknowledged row survived, exactly.
	rig2 := newSoakRig(t, 0)
	defer rig2.sched.Close()
	if _, err := oltp.RecoverEngine(rig2.engine, walPath); err != nil {
		t.Fatal(err)
	}
	if w := rig2.engine.LatestVID(); w < rep.LastVID {
		t.Fatalf("recovered watermark %d below last acked chunk VID %d", w, rep.LastVID)
	}
	verifyBulkRows(t, rig2, soakRows)
	if err := rig2.engine.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestIngestSoakCheckpointMidLoad: checkpoints race the load; after a
// restart from the directory, the recovered store holds every
// acknowledged chunk.
func TestIngestSoakCheckpointMidLoad(t *testing.T) {
	dir := t.TempDir()
	rig := newSoakRig(t, 0)
	st, _, err := checkpoint.Boot(rig.engine, checkpoint.BootConfig{Dir: dir, SegmentBytes: 64 << 10, Sync: false})
	if err != nil {
		t.Fatal(err)
	}
	rig.engine.Start()
	rig.sched.Start()

	ckptStop := make(chan struct{})
	ckptDone := make(chan struct{})
	go func() {
		defer close(ckptDone)
		for {
			select {
			case <-ckptStop:
				return
			case <-time.After(20 * time.Millisecond):
			}
			if _, err := st.Checkpoint(rig.engine); err != nil && !errors.Is(err, checkpoint.ErrNoProgress) {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	rep := runGovernedLoad(t, rig, soakLoaderConfig())
	close(ckptStop)
	<-ckptDone
	rig.sched.Close()
	st.Close()
	if err := rig.engine.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart from the directory (checkpoint + WAL tail).
	has, err := checkpoint.DirHasCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !has {
		t.Fatal("no checkpoint was taken mid-load")
	}
	schema := bulkSchema()
	db2 := tpcc.NewDB(tpcc.SmallScale(1))
	db2.Store.CreateTable(schema, func(tup []byte) uint64 {
		return uint64(schema.GetInt64(tup, 0))
	}, 4096)
	e2, err := oltp.New(db2.Store, oltp.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tpcc.RegisterProcs(e2, db2, false)
	ingest.RegisterProc(e2)
	st2, info, err := checkpoint.Boot(e2, checkpoint.BootConfig{Dir: dir, SegmentBytes: 64 << 10, Sync: false})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	defer st2.Close()
	if info.WatermarkVID < rep.LastVID {
		t.Fatalf("recovered watermark %d below last acked chunk VID %d", info.WatermarkVID, rep.LastVID)
	}
	tx := e2.Store().BeginRO()
	defer tx.Abort()
	tbl2 := e2.Store().Table(bulkTableID)
	for i := 0; i < soakRows; i++ {
		tup, ok := tx.Get(tbl2, uint64(i))
		if !ok {
			t.Fatalf("recovered store lost bulk row %d", i)
		}
		if v := schema.GetInt64(tup, 1); v != int64(i)*7+3 {
			t.Fatalf("recovered row %d has val %d", i, v)
		}
	}
}

// verifyBulkRows asserts the rig's primary store holds exactly rows
// 0..n-1 of the deterministic load.
func verifyBulkRows(t *testing.T, rig *soakRig, n int) {
	t.Helper()
	tx := rig.engine.Store().BeginRO()
	defer tx.Abort()
	for i := 0; i < n; i++ {
		tup, ok := tx.Get(rig.tbl, uint64(i))
		if !ok {
			t.Fatalf("bulk row %d missing after recovery", i)
		}
		if v := rig.schema.GetInt64(tup, 1); v != int64(i)*7+3 {
			t.Fatalf("bulk row %d has val %d", i, v)
		}
	}
	if _, ok := tx.Get(rig.tbl, uint64(n)); ok {
		t.Fatal("phantom bulk row past the load")
	}
}
