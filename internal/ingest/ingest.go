// Package ingest implements BatchDB's bulk-load path: a batch-grouped
// row-stream loader that rides the normal OLTP machinery — every chunk
// is one stored-procedure call, so it inherits snapshot isolation,
// group-commit durability, command-log recovery and update propagation
// to the OLAP replicas for free — governed by an admission controller
// that keeps the interactive OLTP p99 within a configured multiple of
// its unloaded baseline (the paper's performance-isolation promise,
// extended from placement to workload rate).
//
// The grouped insert path follows ALEX's batch-insertion playbook:
// keys are grouped by target index shard before any shared structure is
// touched, so one chunk takes each lock once instead of once per row.
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"

	"batchdb/internal/mvcc"
	"batchdb/internal/oltp"
	"batchdb/internal/storage"
)

// ProcName is the bulk-ingest stored procedure installed by
// RegisterProc. One call inserts one encoded chunk atomically.
const ProcName = "batchdb.ingest"

// Chunk args layout: [1 flags][2 tableID][4 nrows][4 tupSize][rows...].
// The grouping mode travels in the args, not in loader state, so WAL
// replay re-executes exactly the code path the live call took.
const (
	chunkHeaderSize = 1 + 2 + 4 + 4
	flagUngrouped   = 1 << 0 // insert row-at-a-time (baseline for the bench)
)

// ErrBadChunk reports a malformed chunk encoding.
var ErrBadChunk = errors.New("ingest: malformed chunk")

// EncodeChunk packs rows destined for table into one stored-procedure
// argument blob. All rows must have the same length (fixed-size
// tuples). grouped selects the batch-grouped insert path; false falls
// back to row-at-a-time insertion (the measured baseline).
func EncodeChunk(table storage.TableID, rows [][]byte, grouped bool) []byte {
	tupSize := 0
	if len(rows) > 0 {
		tupSize = len(rows[0])
	}
	buf := make([]byte, chunkHeaderSize, chunkHeaderSize+len(rows)*tupSize)
	if !grouped {
		buf[0] = flagUngrouped
	}
	binary.LittleEndian.PutUint16(buf[1:], uint16(table))
	binary.LittleEndian.PutUint32(buf[3:], uint32(len(rows)))
	binary.LittleEndian.PutUint32(buf[7:], uint32(tupSize))
	for _, r := range rows {
		if len(r) != tupSize {
			panic("ingest: ragged rows in chunk")
		}
		buf = append(buf, r...)
	}
	return buf
}

// DecodeChunk unpacks an EncodeChunk blob. The returned rows alias
// args — safe on both the live path (args outlive the call) and the
// replay path (the WAL reader allocates a fresh body per record).
func DecodeChunk(args []byte) (table storage.TableID, rows [][]byte, grouped bool, err error) {
	if len(args) < chunkHeaderSize {
		return 0, nil, false, fmt.Errorf("%w: %d-byte args", ErrBadChunk, len(args))
	}
	flags := args[0]
	table = storage.TableID(binary.LittleEndian.Uint16(args[1:]))
	n := int(binary.LittleEndian.Uint32(args[3:]))
	tupSize := int(binary.LittleEndian.Uint32(args[7:]))
	body := args[chunkHeaderSize:]
	if tupSize <= 0 || n <= 0 || len(body) != n*tupSize {
		return 0, nil, false, fmt.Errorf("%w: %d rows x %d bytes in %d-byte body", ErrBadChunk, n, tupSize, len(body))
	}
	rows = make([][]byte, n)
	for i := range rows {
		rows[i] = body[i*tupSize : (i+1)*tupSize]
	}
	return table, rows, flags&flagUngrouped == 0, nil
}

// RegisterProc installs the bulk-ingest stored procedure on e, in the
// bulk accounting class so chunk latencies stay out of the interactive
// histogram the governor samples. Must be called before Start — and
// before recovery replay on the boot path, so replayed ingest records
// find their procedure.
func RegisterProc(e *oltp.Engine) {
	store := e.Store()
	e.RegisterBulk(ProcName, func(tx *mvcc.Txn, args []byte) ([]byte, error) {
		tid, rows, grouped, err := DecodeChunk(args)
		if err != nil {
			return nil, err
		}
		t := store.Table(tid)
		if t == nil {
			return nil, fmt.Errorf("ingest: no table %d", tid)
		}
		if want := t.Schema.TupleSize(); len(rows[0]) != want {
			return nil, fmt.Errorf("%w: %d-byte rows for table %d (want %d)", ErrBadChunk, len(rows[0]), tid, want)
		}
		if grouped {
			if _, err := tx.InsertBatch(t, rows); err != nil {
				return nil, err
			}
			return nil, nil
		}
		for _, r := range rows {
			if _, err := tx.Insert(t, r); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
}
