package mvcc

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"batchdb/internal/storage"
)

func batchTestTable(id storage.TableID) (*Store, *Table, *storage.Schema) {
	schema := storage.NewSchema(id, fmt.Sprintf("bt%d", id), []storage.Column{
		{Name: "id", Type: storage.Int64},
		{Name: "val", Type: storage.Int64},
	}, []int{0})
	st := NewStore()
	tbl := st.CreateTable(schema, func(tup []byte) uint64 {
		return uint64(schema.GetInt64(tup, 0))
	}, 1024)
	tbl.AddSecondary("by_val", func(tup []byte) uint64 {
		// Non-unique: fold the PK in as a uniquifier.
		return uint64(schema.GetInt64(tup, 1))<<20 | uint64(schema.GetInt64(tup, 0))
	})
	return st, tbl, schema
}

func mkTup(schema *storage.Schema, id, val int64) []byte {
	tup := schema.NewTuple()
	schema.PutInt64(tup, 0, id)
	schema.PutInt64(tup, 1, val)
	return tup
}

// TestInsertBatchParity inserts the same rows through Insert and
// InsertBatch in two stores and checks identical visible state,
// secondary-index content, and RowID block contiguity.
func TestInsertBatchParity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	stA, tblA, schema := batchTestTable(1)
	stB, tblB, _ := batchTestTable(1)

	const rows = 500
	ids := rng.Perm(rows)
	var tupsA, tupsB [][]byte
	for _, id := range ids {
		val := rng.Int63n(1000)
		tupsA = append(tupsA, mkTup(schema, int64(id), val))
		tupsB = append(tupsB, mkTup(schema, int64(id), val))
	}

	txA := stA.Begin()
	for _, tup := range tupsA {
		if _, err := txA.Insert(tblA, tup); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := txA.Commit(); err != nil {
		t.Fatal(err)
	}

	txB := stB.Begin()
	base, err := txB.InsertBatch(tblB, tupsB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := txB.Commit(); err != nil {
		t.Fatal(err)
	}

	roA, roB := stA.BeginRO(), stB.BeginRO()
	defer roA.Release()
	defer roB.Release()
	for i, id := range ids {
		a, okA := roA.Get(tblA, uint64(id))
		b, okB := roB.Get(tblB, uint64(id))
		if !okA || !okB {
			t.Fatalf("row %d: visible %v/%v", id, okA, okB)
		}
		if schema.GetInt64(a, 1) != schema.GetInt64(b, 1) {
			t.Fatalf("row %d: value mismatch", id)
		}
		// RowIDs are a contiguous block in input order.
		rec, _ := roB.GetRecord(tblB, uint64(id))
		if rec.RowID != base+uint64(i) {
			t.Fatalf("row %d: RowID %d, want %d (base %d + %d)", id, rec.RowID, base+uint64(i), base, i)
		}
	}

	// Secondary indexes carry identical entry sets.
	count := func(tbl *Table, ro *Txn) int {
		n := 0
		for it := tbl.Secondary("by_val").Seek(0); it.Valid(); it.Next() {
			if ro.ReadChain(it.Value()) != nil {
				n++
			}
		}
		return n
	}
	if a, b := count(tblA, roA), count(tblB, roB); a != b || a != rows {
		t.Fatalf("secondary entries: single-path %d, batch %d, want %d", a, b, rows)
	}
}

// TestInsertBatchErrors pins duplicate handling: intra-batch duplicates
// fail before touching shared state; conflicts with resident rows fail
// with the same errors Insert produces; an aborted batch leaves nothing
// visible.
func TestInsertBatchErrors(t *testing.T) {
	st, tbl, schema := batchTestTable(1)

	tx := st.Begin()
	if _, err := tx.Insert(tbl, mkTup(schema, 7, 70)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Intra-batch duplicate.
	tx = st.Begin()
	_, err := tx.InsertBatch(tbl, [][]byte{mkTup(schema, 1, 1), mkTup(schema, 1, 2)})
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("intra-batch duplicate: %v, want ErrDuplicateKey", err)
	}
	tx.Abort()

	// Duplicate against a committed row; the batch prefix must unwind on
	// abort.
	tx = st.Begin()
	_, err = tx.InsertBatch(tbl, [][]byte{mkTup(schema, 100, 1), mkTup(schema, 7, 2)})
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("resident duplicate: %v, want ErrDuplicateKey", err)
	}
	tx.Abort()
	ro := st.BeginRO()
	if _, ok := ro.Get(tbl, 100); ok {
		t.Fatal("aborted batch prefix still visible")
	}
	if tup, ok := ro.Get(tbl, 7); !ok || schema.GetInt64(tup, 1) != 70 {
		t.Fatal("pre-existing row damaged by aborted batch")
	}
	ro.Release()

	// Write-write conflict against a concurrent uncommitted insert.
	tx1 := st.Begin()
	if _, err := tx1.Insert(tbl, mkTup(schema, 200, 1)); err != nil {
		t.Fatal(err)
	}
	tx2 := st.Begin()
	_, err = tx2.InsertBatch(tbl, [][]byte{mkTup(schema, 201, 1), mkTup(schema, 200, 2)})
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("conflict with pending insert: %v, want ErrConflict", err)
	}
	tx2.Abort()
	tx1.Abort()
}

// TestInsertBatchConcurrent runs concurrent batch inserts over disjoint
// key ranges plus readers, under -race.
func TestInsertBatchConcurrent(t *testing.T) {
	st, tbl, schema := batchTestTable(1)
	const (
		writers = 4
		batches = 20
		per     = 64
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				var tups [][]byte
				for i := 0; i < per; i++ {
					id := int64(w*batches*per + b*per + i)
					tups = append(tups, mkTup(schema, id, id*2))
				}
				tx := st.Begin()
				if _, err := tx.InsertBatch(tbl, tups); err != nil {
					t.Errorf("writer %d: %v", w, err)
					tx.Abort()
					return
				}
				if _, err := tx.Commit(); err != nil {
					t.Errorf("writer %d commit: %v", w, err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			ro := st.BeginRO()
			n := 0
			tbl.ScanChains(func(c *Chain) bool {
				if ro.ReadChain(c) != nil {
					n++
				}
				return true
			})
			ro.Release()
			if want := writers * batches * per; n != want {
				t.Fatalf("visible rows %d, want %d", n, want)
			}
			return
		default:
			ro := st.BeginRO()
			// Concurrent snapshot reads while batches land.
			for i := 0; i < 100; i++ {
				ro.Get(tbl, uint64(i*37))
			}
			ro.Release()
		}
	}
}
