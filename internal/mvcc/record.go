// Package mvcc implements BatchDB's primary (OLTP) replica storage: a
// Hekaton-style multi-version row store with snapshot isolation (paper
// §4, Fig. 2).
//
// Every logical row is a Chain of Records ordered newest-first. A Record
// carries its validity interval [VIDfrom, VIDto): VIDfrom is the commit
// VID of the transaction that created it, VIDto the commit VID of the
// transaction that superseded or deleted it (vid.Infinity while current).
// While a transaction is in flight, its records carry the transaction's
// marker (a VID with the high bit set) instead of a commit VID; markers
// double as write locks, giving first-writer-wins write-write conflict
// detection without a lock manager.
//
// Memory reclamation differs from Hekaton by design: Hekaton needs
// epoch-based reclamation because C++ has no garbage collector; here Go's
// GC reclaims unlinked versions, so the background version GC (gc.go)
// only has to unlink records that are invisible to every active snapshot.
package mvcc

import (
	"sync/atomic"

	"batchdb/internal/vid"
)

// markerBit distinguishes transaction markers from commit VIDs. A VID
// with this bit set identifies an in-flight transaction and acts as a
// write lock on the record.
const markerBit = uint64(1) << 63

// abortedMarker permanently marks records created by aborted
// transactions; it has markerBit set and matches no transaction ID.
const abortedMarker = markerBit

// isMarker reports whether v is a transaction marker rather than a
// commit VID. vid.Infinity also has the high bit set but is not a
// marker.
func isMarker(v uint64) bool { return v&markerBit != 0 && v != vid.Infinity }

// Record is one version of a row.
type Record struct {
	// RowID is the hidden primary-key surrogate propagated to the OLAP
	// replica (paper §5). All versions of one logical row share it; a
	// re-insert after a delete starts a fresh RowID.
	RowID uint64

	vidFrom atomic.Uint64
	vidTo   atomic.Uint64

	// older links to the version this record superseded (nil for the
	// first version). Readers traverse it to find their snapshot's
	// version; GC unlinks obsolete suffixes.
	older atomic.Pointer[Record]

	// Data is the tuple image. It is immutable once the record is
	// published; updates create a new Record.
	Data []byte
}

// VIDFrom returns the record's creation VID (or in-flight marker).
func (r *Record) VIDFrom() uint64 { return r.vidFrom.Load() }

// VIDTo returns the record's supersession VID, vid.Infinity if current,
// or an in-flight marker if write-locked.
func (r *Record) VIDTo() uint64 { return r.vidTo.Load() }

// Older returns the next older version, if any.
func (r *Record) Older() *Record { return r.older.Load() }

// committedVisible reports whether the record is visible to an
// independent snapshot at snap, ignoring any in-flight transaction
// state: a record locked (VIDto marker) but not yet committed is still
// visible, because the locker's deletion has not committed.
func (r *Record) committedVisible(snap uint64) bool {
	from := r.vidFrom.Load()
	if isMarker(from) || from > snap {
		return false
	}
	to := r.vidTo.Load()
	if isMarker(to) {
		return true
	}
	return snap < to
}

// retiredRecord is a sentinel installed as a chain's head when GC
// retires the chain. Writers that encounter it re-resolve the key
// through the primary index (which GC clears right after poisoning), so
// no insert can land in a chain that is being unlinked.
var retiredRecord = func() *Record {
	r := &Record{}
	r.vidFrom.Store(abortedMarker)
	return r
}()

// Chain anchors the version list of one logical row and its primary key.
type Chain struct {
	// Key is the packed primary key (see storage.KeyFunc).
	Key  uint64
	head atomic.Pointer[Record]
	// slot is the chain's position in its table's scan list, recorded so
	// GC can clear the slot when the chain is retired.
	slot int64
}

// Head returns the newest version, which may be uncommitted.
func (c *Chain) Head() *Record { return c.head.Load() }

// VisibleAt returns the version of this row visible at snapshot snap, or
// nil if none (row did not exist, or was deleted before snap).
func (c *Chain) VisibleAt(snap uint64) *Record {
	for r := c.head.Load(); r != nil; r = r.older.Load() {
		if r.committedVisible(snap) {
			return r
		}
		// Versions are newest-first; once we pass a committed version
		// whose VIDfrom <= snap, older ones are superseded at snap.
		from := r.vidFrom.Load()
		if !isMarker(from) && from <= snap {
			return nil
		}
	}
	return nil
}

// liveAtOrAfter reports whether the chain could still matter to any
// snapshot >= minSnap; used by GC to retire whole chains.
func (c *Chain) liveAtOrAfter(minSnap uint64) bool {
	h := c.head.Load()
	if h == nil || h == retiredRecord {
		return false
	}
	return c.liveWas(h, minSnap)
}

// liveWas reports whether head record h keeps the chain relevant to any
// snapshot >= minSnap.
func (c *Chain) liveWas(h *Record, minSnap uint64) bool {
	to := h.vidTo.Load()
	from := h.vidFrom.Load()
	if isMarker(from) && from != abortedMarker {
		return true // in-flight insert/update
	}
	if isMarker(to) {
		return true // write-locked
	}
	if to == vid.Infinity {
		return from != abortedMarker
	}
	// Head is a committed delete: the row is dead once no active
	// snapshot can still see it.
	return to > minSnap
}
