package mvcc

// GCStats summarizes one garbage-collection pass.
type GCStats struct {
	// Horizon is the snapshot below which versions were reclaimable.
	Horizon uint64
	// VersionsUnlinked counts records cut out of version chains.
	VersionsUnlinked int
	// ChainsRetired counts primary-index entries removed for rows whose
	// deletion is no longer visible to any possible snapshot.
	ChainsRetired int
	// IndexEntriesRemoved counts secondary-index entries dropped because
	// they pointed at retired chains or no longer match any version.
	IndexEntriesRemoved int
}

// CollectGarbage unlinks versions that no active or future snapshot can
// observe and retires fully dead rows from the indexes. It is safe to
// run concurrently with transactions; it corresponds to the background
// garbage collection the paper's OLTP workers amortize across batches
// (§4 "Scheduling"). Memory itself is reclaimed by Go's GC once
// unlinked.
func (s *Store) CollectGarbage() GCStats {
	horizon := s.MinActiveSnapshot()
	st := GCStats{Horizon: horizon}
	for _, t := range s.order {
		s.collectTable(t, horizon, &st)
	}
	return st
}

func (s *Store) collectTable(t *Table, horizon uint64, st *GCStats) {
	t.chains.forEach(func(c *Chain) bool {
		// Pop aborted records stranded at the head.
		for {
			h := c.head.Load()
			if h == nil || h == retiredRecord || h.vidFrom.Load() != abortedMarker {
				break
			}
			if c.head.CompareAndSwap(h, h.older.Load()) {
				st.VersionsUnlinked++
			}
		}
		if !c.liveAtOrAfter(horizon) {
			// The row is dead to every snapshot >= horizon. Poison the
			// chain head so no writer can sneak an insert in, then drop
			// the primary-index entry (only if it still maps to this
			// chain — a re-insert may already have replaced it) and the
			// scan-list slot. Readers that already hold the chain see no
			// visible version, which remains correct.
			h := c.head.Load()
			if h == retiredRecord {
				return true // already retired in an earlier pass
			}
			if !c.head.CompareAndSwap(h, retiredRecord) {
				return true // a writer revived the row; skip this pass
			}
			if h != nil && c.liveWas(h, horizon) {
				// Re-check against the poisoned head: the head we
				// poisoned must itself be dead; otherwise restore.
				c.head.CompareAndSwap(retiredRecord, h)
				return true
			}
			t.pk.CompareAndDelete(c.Key, func(v *Chain) bool { return v == c })
			t.chains.clear(c.slot)
			st.ChainsRetired++
			return true
		}
		// Truncate the chain after the decisive version at the horizon:
		// the newest record with a committed VIDfrom <= horizon serves
		// every snapshot >= horizon, so anything older is unreachable.
		for r := c.head.Load(); r != nil; r = r.older.Load() {
			from := r.vidFrom.Load()
			if isMarker(from) || from > horizon {
				// Also splice out aborted records mid-chain.
				next := r.older.Load()
				for next != nil && next.vidFrom.Load() == abortedMarker {
					skip := next.older.Load()
					if r.older.CompareAndSwap(next, skip) {
						st.VersionsUnlinked++
					}
					next = r.older.Load()
				}
				continue
			}
			if r.older.Load() != nil {
				r.older.Store(nil)
				st.VersionsUnlinked++
			}
			break
		}
		return true
	})
	for _, sec := range t.sec {
		s.collectSecondary(sec, horizon, st)
	}
}

// collectSecondary removes index entries whose chain was retired or
// whose indexed key no longer matches any retained version (stale
// entries left by updates that changed indexed attributes).
func (s *Store) collectSecondary(sec *Secondary, horizon uint64, st *GCStats) {
	type dead struct{ key uint64 }
	var toDelete []dead
	for it := sec.sl.Min(); it.Valid(); it.Next() {
		c := it.Value()
		if !c.liveAtOrAfter(horizon) {
			toDelete = append(toDelete, dead{it.Key()})
			continue
		}
		// Keep the entry if any retained version still derives this key.
		match := false
		for r := c.head.Load(); r != nil; r = r.older.Load() {
			if r.vidFrom.Load() == abortedMarker {
				continue
			}
			if sec.KeyFn(r.Data) == it.Key() {
				match = true
				break
			}
		}
		if !match {
			toDelete = append(toDelete, dead{it.Key()})
		}
	}
	for _, d := range toDelete {
		if sec.sl.Delete(d.key) {
			st.IndexEntriesRemoved++
		}
	}
}
