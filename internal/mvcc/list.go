package mvcc

import "sync/atomic"

const chunkSize = 4096

// chainList is a lock-free, append-only list of chains used for full
// table scans (snapshot bootstrap and the shared-engine baselines). It
// grows in fixed-size chunks so readers can iterate a stable prefix
// while writers append.
type chainList struct {
	head   *listChunk
	length atomic.Int64
}

type listChunk struct {
	items [chunkSize]atomic.Pointer[Chain]
	next  atomic.Pointer[listChunk]
}

func newChainList() *chainList {
	return &chainList{head: &listChunk{}}
}

// append reserves a slot, publishes c into it, and records the slot in
// c so GC can later clear it.
func (l *chainList) append(c *Chain) {
	idx := l.length.Add(1) - 1
	c.slot = idx
	chunk := l.head
	for idx >= chunkSize {
		next := chunk.next.Load()
		if next == nil {
			next = &listChunk{}
			if !chunk.next.CompareAndSwap(nil, next) {
				next = chunk.next.Load()
			}
		}
		chunk = next
		idx -= chunkSize
	}
	chunk.items[idx].Store(c)
}

// clear empties the slot at index idx (used when a chain is retired).
func (l *chainList) clear(idx int64) {
	chunk := l.head
	for idx >= chunkSize {
		chunk = chunk.next.Load()
		if chunk == nil {
			return
		}
		idx -= chunkSize
	}
	chunk.items[idx].Store(nil)
}

// forEach visits every chain published before the call, in insertion
// order. Slots reserved by concurrent appenders that have not yet been
// published are skipped.
func (l *chainList) forEach(fn func(*Chain) bool) {
	n := l.length.Load()
	chunk := l.head
	var base int64
	for chunk != nil && base < n {
		limit := n - base
		if limit > chunkSize {
			limit = chunkSize
		}
		for i := int64(0); i < limit; i++ {
			c := chunk.items[i].Load()
			if c == nil {
				continue // reserved but not yet published
			}
			if !fn(c) {
				return
			}
		}
		base += chunkSize
		chunk = chunk.next.Load()
	}
}

func (l *chainList) len() int { return int(l.length.Load()) }
