package mvcc

import (
	"testing"

	"batchdb/internal/storage"
)

func newLoadTable() (*Store, *Table) {
	s := NewStore()
	schema := storage.NewSchema(1, "kv", []storage.Column{
		{Name: "k", Type: storage.Int64},
		{Name: "v", Type: storage.Int64},
	}, []int{0})
	t := s.CreateTable(schema, func(tup []byte) uint64 {
		return uint64(schema.GetInt64(tup, 0))
	}, 64)
	return s, t
}

func loadTup(tbl *Table, k, v int64) []byte {
	tup := tbl.Schema.NewTuple()
	tbl.Schema.PutInt64(tup, 0, k)
	tbl.Schema.PutInt64(tup, 1, v)
	return tup
}

func TestLoadRowWithID(t *testing.T) {
	s, tbl := newLoadTable()
	// Restore rows under explicit, out-of-order RowIDs (as checkpoint
	// restore does; scan order is not insertion order).
	for _, r := range []struct{ k, rowID int64 }{{1, 17}, {2, 3}, {3, 99}} {
		if err := tbl.LoadRowWithID(uint64(r.rowID), loadTup(tbl, r.k, r.k*10)); err != nil {
			t.Fatal(err)
		}
	}
	ro := s.BeginROAt(0)
	defer ro.Release()
	for _, want := range []struct{ k, rowID int64 }{{1, 17}, {2, 3}, {3, 99}} {
		rec, ok := ro.GetRecord(tbl, uint64(want.k))
		if !ok {
			t.Fatalf("key %d missing", want.k)
		}
		if rec.RowID != uint64(want.rowID) {
			t.Fatalf("key %d: RowID = %d, want %d", want.k, rec.RowID, want.rowID)
		}
	}
	// The allocator must have been bumped past the maximum restored
	// RowID so later inserts cannot collide.
	if got := tbl.AllocRowID(); got != 100 {
		t.Fatalf("next RowID = %d, want 100", got)
	}
	// Duplicate keys are refused like LoadRow.
	if err := tbl.LoadRowWithID(200, loadTup(tbl, 1, 0)); err != ErrDuplicateKey {
		t.Fatalf("duplicate load: %v", err)
	}
}

// TestLoadRowWithIDReservedRowID pins the tombstone-sentinel fix:
// RowID 0 marks dead slots in the OLAP partitions, so a restored row
// under it would replicate as a live-counted but scan-invisible tuple.
// AllocRowID starts at 1, so no legitimate checkpoint contains it.
func TestLoadRowWithIDReservedRowID(t *testing.T) {
	s, tbl := newLoadTable()
	if err := tbl.LoadRowWithID(0, loadTup(tbl, 1, 11)); err == nil {
		t.Fatal("load of reserved RowID 0 accepted")
	}
	// The rejected load must leave no trace: the key stays loadable.
	if err := tbl.LoadRowWithID(7, loadTup(tbl, 1, 11)); err != nil {
		t.Fatal(err)
	}
	ro := s.BeginROAt(0)
	defer ro.Release()
	if rec, ok := ro.GetRecord(tbl, 1); !ok || rec.RowID != 7 {
		t.Fatalf("key 1 after rejected load: %+v %v", rec, ok)
	}
}

func TestLoadRowWithIDVisibleToAllSnapshots(t *testing.T) {
	s, tbl := newLoadTable()
	if err := tbl.LoadRowWithID(5, loadTup(tbl, 1, 11)); err != nil {
		t.Fatal(err)
	}
	// VID-0 data is the "initial load": visible at snapshot 0 and later.
	for _, snap := range []uint64{0, 1, 1 << 40} {
		ro := s.BeginROAt(snap)
		if _, ok := ro.Get(tbl, 1); !ok {
			t.Fatalf("restored row invisible at snapshot %d", snap)
		}
		ro.Release()
	}
}
