package mvcc

import (
	"errors"
	"fmt"
	"runtime"

	"batchdb/internal/vid"
)

// Errors returned by transactional operations. ErrConflict aborts under
// first-writer-wins snapshot isolation and is retryable; the others are
// logic errors surfaced to the stored procedure.
var (
	ErrConflict     = errors.New("mvcc: write-write conflict")
	ErrDuplicateKey = errors.New("mvcc: duplicate primary key")
	ErrNotFound     = errors.New("mvcc: row not found")
)

// OpKind classifies a write-set entry; the values match the propagated
// update types of paper Fig. 3.
type OpKind uint8

// Write-set entry kinds.
const (
	OpInsert OpKind = iota
	OpUpdate
	OpDelete
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// WriteOp records one row mutation for commit/abort processing and for
// update extraction (paper §4: workers export a physical log of updates
// separate from the durable log).
type WriteOp struct {
	Table *Table
	Kind  OpKind
	Chain *Chain
	// New is the record installed by this transaction (insert/update).
	New *Record
	// Old is the superseded committed record (update/delete).
	Old *Record
	// Cols lists the column ordinals changed by an update, enabling
	// field-specific propagation; nil means the whole tuple changed.
	Cols []int
}

// Txn is a transaction against the OLTP store. Read-write transactions
// must finish with exactly one of Commit or Abort. A Txn is not safe for
// concurrent use; each runs on one OLTP worker.
type Txn struct {
	store *Store
	snap  uint64 // snapshot VID
	id    uint64 // marker (markerBit set); 0 for read-only
	slot  int    // active-set slot
	ops   []WriteOp
	done  bool
}

// Snapshot returns the VID this transaction reads at.
func (tx *Txn) Snapshot() uint64 { return tx.snap }

// ReadOnly reports whether the transaction can write.
func (tx *Txn) ReadOnly() bool { return tx.id == 0 }

// Writes exposes the write set. Valid until the Txn is reused; callers
// (the OLTP worker's update extractor) read it immediately after Commit.
func (tx *Txn) Writes() []WriteOp { return tx.ops }

// read returns the version of c visible to tx (own uncommitted writes
// included), or nil.
func (tx *Txn) read(c *Chain) *Record {
	for r := c.head.Load(); r != nil; r = r.older.Load() {
		from := r.vidFrom.Load()
		if from == tx.id && tx.id != 0 {
			if r.vidTo.Load() == tx.id {
				return nil // own delete of own earlier write
			}
			return r
		}
		if isMarker(from) {
			continue // other transaction's pending write, or aborted
		}
		if from > tx.snap {
			continue
		}
		// Committed at or before our snapshot: this is the decisive
		// version — older ones are superseded.
		to := r.vidTo.Load()
		if to == tx.id && tx.id != 0 {
			return nil // we deleted it
		}
		if isMarker(to) || tx.snap < to {
			return r
		}
		return nil
	}
	return nil
}

// Get returns the tuple image of the row with the given packed key
// visible to this transaction.
func (tx *Txn) Get(t *Table, key uint64) ([]byte, bool) {
	c := t.getChain(key)
	if c == nil {
		return nil, false
	}
	r := tx.read(c)
	if r == nil {
		return nil, false
	}
	return r.Data, true
}

// GetRecord is Get returning the version record (for RowID access).
func (tx *Txn) GetRecord(t *Table, key uint64) (*Record, bool) {
	c := t.getChain(key)
	if c == nil {
		return nil, false
	}
	r := tx.read(c)
	return r, r != nil
}

// ReadChain returns the version of an already-located chain visible to
// this transaction (used by secondary-index scans).
func (tx *Txn) ReadChain(c *Chain) *Record { return tx.read(c) }

// findOp locates this transaction's write-set entry for chain c.
func (tx *Txn) findOp(c *Chain) *WriteOp {
	for i := len(tx.ops) - 1; i >= 0; i-- {
		if tx.ops[i].Chain == c {
			return &tx.ops[i]
		}
	}
	return nil
}

// Insert adds a new row. The tuple is adopted (not copied); callers must
// not reuse it. Returns the assigned RowID.
func (tx *Txn) Insert(t *Table, tup []byte) (uint64, error) {
	if tx.ReadOnly() {
		return 0, errors.New("mvcc: insert in read-only transaction")
	}
	c, err := tx.insertIntoChain(t, t.getOrCreateChain(t.KeyFn(tup)), t.AllocRowID(), tup)
	if err != nil {
		return 0, err
	}
	t.indexInto(c, tup)
	return tx.ops[len(tx.ops)-1].New.RowID, nil
}

// insertIntoChain runs the insert protocol against a resolved chain,
// installing tup under rowID and recording the write-set entry. It
// returns the chain actually written (re-resolved if GC retired the
// original mid-flight). Secondary indexing is the caller's job — the
// single-key path indexes immediately, the batch path amortizes it into
// one PutBatch per index.
func (tx *Txn) insertIntoChain(t *Table, c *Chain, rowID uint64, tup []byte) (*Chain, error) {
	for {
		head := c.head.Load()
		if head == retiredRecord {
			// GC is unlinking this chain; it clears the primary-index
			// entry right after poisoning, so re-resolving yields a
			// fresh chain almost immediately.
			runtime.Gosched()
			c = t.getOrCreateChain(c.Key)
			continue
		}
		if head == nil {
			rec := newRecord(rowID, tx.id, tup, nil)
			if !c.head.CompareAndSwap(nil, rec) {
				continue // racing inserter; re-evaluate
			}
			tx.ops = append(tx.ops, WriteOp{Table: t, Kind: OpInsert, Chain: c, New: rec})
			return c, nil
		}
		from := head.vidFrom.Load()
		if from == abortedMarker {
			// Lazily unlink an aborted head and retry.
			c.head.CompareAndSwap(head, head.older.Load())
			continue
		}
		if from == tx.id {
			return nil, ErrDuplicateKey // we already wrote this key
		}
		if isMarker(from) {
			return nil, ErrConflict
		}
		to := head.vidTo.Load()
		if isMarker(to) {
			return nil, ErrConflict
		}
		if to == vid.Infinity {
			if from <= tx.snap {
				return nil, ErrDuplicateKey
			}
			return nil, ErrConflict // row created after our snapshot
		}
		// Head is a committed delete.
		if to > tx.snap {
			return nil, ErrConflict // deleted after our snapshot
		}
		rec := newRecord(rowID, tx.id, tup, head)
		if !c.head.CompareAndSwap(head, rec) {
			return nil, ErrConflict // lost the re-insert race
		}
		tx.ops = append(tx.ops, WriteOp{Table: t, Kind: OpInsert, Chain: c, New: rec})
		return c, nil
	}
}

// InsertBatch adds many new rows in one transaction with batch-grouped
// index access (the ALEX pattern: group keys by target structure before
// touching it). Chains for the whole batch resolve with one primary-
// index lock per touched shard, RowIDs come from one block reservation,
// and each secondary index is populated by a single sorted PutBatch.
// Tuples are adopted; the rows commit or abort atomically with the rest
// of the transaction. Returns the first RowID of the contiguous block
// assigned to the batch (in input order). On error the already-
// installed prefix stays in the write set for Abort to unwind.
func (tx *Txn) InsertBatch(t *Table, tups [][]byte) (uint64, error) {
	if tx.ReadOnly() {
		return 0, errors.New("mvcc: insert in read-only transaction")
	}
	if len(tups) == 0 {
		return 0, nil
	}
	keys := make([]uint64, len(tups))
	for i, tup := range tups {
		keys[i] = t.KeyFn(tup)
	}
	// Duplicate keys inside one batch can never both commit — reject
	// before touching shared structures.
	seen := make(map[uint64]struct{}, len(keys))
	for _, k := range keys {
		if _, dup := seen[k]; dup {
			return 0, ErrDuplicateKey
		}
		seen[k] = struct{}{}
	}
	chains := make([]*Chain, len(keys))
	t.getOrCreateChains(keys, chains)
	base := t.AllocRowIDs(len(tups))
	for i, tup := range tups {
		c, err := tx.insertIntoChain(t, chains[i], base+uint64(i), tup)
		if err != nil {
			return 0, err
		}
		chains[i] = c
	}
	// Batched secondary indexing: one writer-lock acquisition per index
	// for the whole chunk instead of one per row.
	if len(t.sec) > 0 {
		skeys := make([]uint64, len(tups))
		for _, s := range t.sec {
			for i, tup := range tups {
				skeys[i] = s.KeyFn(tup)
			}
			s.sl.PutBatch(skeys, chains)
		}
	}
	return base, nil
}

func newRecord(rowID, from uint64, tup []byte, older *Record) *Record {
	r := &Record{RowID: rowID, Data: tup}
	r.vidFrom.Store(from)
	r.vidTo.Store(vid.Infinity)
	r.older.Store(older)
	return r
}

// lockHead validates that the newest committed version of c is visible
// at tx.snap and write-locks it. It returns the locked head.
func (tx *Txn) lockHead(c *Chain) (*Record, error) {
	head := c.head.Load()
	for head != nil && head != retiredRecord && head.vidFrom.Load() == abortedMarker {
		c.head.CompareAndSwap(head, head.older.Load())
		head = c.head.Load()
	}
	if head == nil || head == retiredRecord {
		return nil, ErrNotFound
	}
	from := head.vidFrom.Load()
	if isMarker(from) {
		return nil, ErrConflict // another transaction's pending write
	}
	if from > tx.snap {
		return nil, ErrConflict // updated after our snapshot
	}
	to := head.vidTo.Load()
	if isMarker(to) {
		return nil, ErrConflict
	}
	if to != vid.Infinity {
		if to > tx.snap {
			return nil, ErrConflict // deleted after our snapshot
		}
		return nil, ErrNotFound // deleted before our snapshot
	}
	if !head.vidTo.CompareAndSwap(vid.Infinity, tx.id) {
		return nil, ErrConflict
	}
	return head, nil
}

// Update modifies the row with the given key. mutate receives a private
// copy of the current tuple and applies its changes in place; cols lists
// the column ordinals being changed (used for field-specific update
// propagation, paper Fig. 3/6). Passing cols == nil propagates the whole
// tuple.
func (tx *Txn) Update(t *Table, key uint64, cols []int, mutate func(tup []byte)) error {
	if tx.ReadOnly() {
		return errors.New("mvcc: update in read-only transaction")
	}
	c := t.getChain(key)
	if c == nil {
		return ErrNotFound
	}
	head := c.head.Load()
	if head != nil && head.vidFrom.Load() == tx.id && tx.findOp(c) != nil {
		return tx.updateOwn(t, c, head, cols, mutate)
	}
	head, err := tx.lockHead(c)
	if err != nil {
		return err
	}
	data := make([]byte, len(head.Data))
	copy(data, head.Data)
	mutate(data)
	rec := newRecord(head.RowID, tx.id, data, head)
	if !c.head.CompareAndSwap(head, rec) {
		// Cannot happen while we hold the write lock; recover anyway.
		head.vidTo.CompareAndSwap(tx.id, vid.Infinity)
		return ErrConflict
	}
	tx.maybeReindex(t, c, head.Data, data)
	tx.ops = append(tx.ops, WriteOp{Table: t, Kind: OpUpdate, Chain: c, New: rec, Old: head, Cols: cols})
	return nil
}

// updateOwn folds a second update of the same row into the existing
// write-set entry.
func (tx *Txn) updateOwn(t *Table, c *Chain, head *Record, cols []int, mutate func([]byte)) error {
	op := tx.findOp(c)
	if op.Kind == OpDelete {
		return ErrNotFound
	}
	data := make([]byte, len(head.Data))
	copy(data, head.Data)
	mutate(data)
	rec := newRecord(head.RowID, tx.id, data, head.older.Load())
	if !c.head.CompareAndSwap(head, rec) {
		return ErrConflict
	}
	tx.maybeReindex(t, c, head.Data, data)
	op.New = rec
	op.Cols = mergeCols(op.Cols, cols)
	return nil
}

// mergeCols unions two changed-column lists; nil means "all columns" and
// absorbs everything.
func mergeCols(a, b []int) []int {
	if a == nil || b == nil {
		return nil
	}
	out := append([]int(nil), a...)
	for _, c := range b {
		found := false
		for _, e := range out {
			if e == c {
				found = true
				break
			}
		}
		if !found {
			out = append(out, c)
		}
	}
	return out
}

// maybeReindex adds secondary-index entries for any index whose derived
// key changed between old and new tuple images.
func (tx *Txn) maybeReindex(t *Table, c *Chain, old, new_ []byte) {
	for _, s := range t.sec {
		if s.KeyFn(old) != s.KeyFn(new_) {
			s.sl.Put(s.KeyFn(new_), c)
		}
	}
}

// Delete removes the row with the given key.
func (tx *Txn) Delete(t *Table, key uint64) error {
	if tx.ReadOnly() {
		return errors.New("mvcc: delete in read-only transaction")
	}
	c := t.getChain(key)
	if c == nil {
		return ErrNotFound
	}
	head := c.head.Load()
	if head != nil && head.vidFrom.Load() == tx.id && tx.findOp(c) != nil {
		return tx.deleteOwn(c, head)
	}
	head, err := tx.lockHead(c)
	if err != nil {
		return err
	}
	tx.ops = append(tx.ops, WriteOp{Table: t, Kind: OpDelete, Chain: c, Old: head})
	return nil
}

// deleteOwn deletes a row this transaction inserted or updated.
func (tx *Txn) deleteOwn(c *Chain, head *Record) error {
	op := tx.findOp(c)
	switch op.Kind {
	case OpDelete:
		return ErrNotFound
	case OpInsert:
		// Unlink our pending insert and drop the op.
		c.head.CompareAndSwap(head, head.older.Load())
		head.vidFrom.Store(abortedMarker)
		tx.removeOp(c)
		return nil
	default: // OpUpdate: revert to deleting the committed version.
		old := op.Old
		c.head.CompareAndSwap(head, old)
		head.vidFrom.Store(abortedMarker)
		op.Kind = OpDelete
		op.New = nil
		op.Cols = nil
		return nil
	}
}

func (tx *Txn) removeOp(c *Chain) {
	for i := range tx.ops {
		if tx.ops[i].Chain == c {
			tx.ops = append(tx.ops[:i], tx.ops[i+1:]...)
			return
		}
	}
}

// Commit installs the transaction's writes at a fresh commit VID and
// publishes it. It returns the commit VID (0 for an empty write set).
func (tx *Txn) Commit() (uint64, error) {
	if tx.done {
		return 0, errors.New("mvcc: transaction already finished")
	}
	tx.done = true
	defer tx.store.release(tx)
	if len(tx.ops) == 0 {
		return 0, nil
	}
	cv := tx.store.VIDs.Allocate()
	for i := range tx.ops {
		op := &tx.ops[i]
		switch op.Kind {
		case OpInsert:
			op.New.vidFrom.Store(cv)
		case OpUpdate:
			op.New.vidFrom.Store(cv)
			op.Old.vidTo.Store(cv)
		case OpDelete:
			op.Old.vidTo.Store(cv)
		}
	}
	tx.store.VIDs.Publish(cv)
	return cv, nil
}

// Abort rolls back all pending writes.
func (tx *Txn) Abort() {
	if tx.done {
		return
	}
	tx.done = true
	defer tx.store.release(tx)
	// Undo in reverse order so chained own-writes unwind correctly.
	for i := len(tx.ops) - 1; i >= 0; i-- {
		op := &tx.ops[i]
		switch op.Kind {
		case OpInsert:
			op.Chain.head.CompareAndSwap(op.New, op.New.older.Load())
			op.New.vidFrom.Store(abortedMarker)
		case OpUpdate:
			op.Chain.head.CompareAndSwap(op.New, op.Old)
			op.New.vidFrom.Store(abortedMarker)
			op.Old.vidTo.CompareAndSwap(tx.id, vid.Infinity)
		case OpDelete:
			op.Old.vidTo.CompareAndSwap(tx.id, vid.Infinity)
		}
	}
	tx.ops = tx.ops[:0]
}
