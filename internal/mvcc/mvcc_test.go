package mvcc

import (
	"errors"
	"testing"

	"batchdb/internal/storage"
)

// testTable returns a store with one two-column table: key (int64) and
// val (int64).
func testTable(t *testing.T) (*Store, *Table) {
	t.Helper()
	s := NewStore()
	schema := storage.NewSchema(1, "kv", []storage.Column{
		{Name: "k", Type: storage.Int64},
		{Name: "v", Type: storage.Int64},
	}, []int{0})
	tbl := s.CreateTable(schema, func(tup []byte) uint64 {
		return uint64(schema.GetInt64(tup, 0))
	}, 64)
	return s, tbl
}

func mustInsert(t *testing.T, tx *Txn, tbl *Table, k, v int64) uint64 {
	t.Helper()
	tup := tbl.Schema.NewTuple()
	tbl.Schema.PutInt64(tup, 0, k)
	tbl.Schema.PutInt64(tup, 1, v)
	rowID, err := tx.Insert(tbl, tup)
	if err != nil {
		t.Fatalf("Insert(%d,%d): %v", k, v, err)
	}
	return rowID
}

func getVal(tx *Txn, tbl *Table, k int64) (int64, bool) {
	tup, ok := tx.Get(tbl, uint64(k))
	if !ok {
		return 0, false
	}
	return tbl.Schema.GetInt64(tup, 1), true
}

func commit(t *testing.T, tx *Txn) uint64 {
	t.Helper()
	cv, err := tx.Commit()
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	return cv
}

func TestInsertCommitRead(t *testing.T) {
	s, tbl := testTable(t)
	tx := s.Begin()
	mustInsert(t, tx, tbl, 1, 100)
	// Own write visible before commit.
	if v, ok := getVal(tx, tbl, 1); !ok || v != 100 {
		t.Fatalf("own write invisible: %d,%v", v, ok)
	}
	// Invisible to a concurrent snapshot.
	ro := s.BeginRO()
	if _, ok := getVal(ro, tbl, 1); ok {
		t.Fatal("uncommitted insert visible to other txn")
	}
	ro.Release()
	commit(t, tx)
	ro2 := s.BeginRO()
	defer ro2.Release()
	if v, ok := getVal(ro2, tbl, 1); !ok || v != 100 {
		t.Fatalf("committed insert not visible: %d,%v", v, ok)
	}
}

func TestSnapshotStability(t *testing.T) {
	s, tbl := testTable(t)
	tx := s.Begin()
	mustInsert(t, tx, tbl, 1, 1)
	commit(t, tx)

	ro := s.BeginRO() // snapshot before the update
	tx2 := s.Begin()
	if err := tx2.Update(tbl, 1, []int{1}, func(tup []byte) {
		tbl.Schema.PutInt64(tup, 1, 2)
	}); err != nil {
		t.Fatal(err)
	}
	commit(t, tx2)

	// Old snapshot still sees old value.
	if v, _ := getVal(ro, tbl, 1); v != 1 {
		t.Fatalf("old snapshot sees %d, want 1", v)
	}
	ro.Release()
	ro2 := s.BeginRO()
	defer ro2.Release()
	if v, _ := getVal(ro2, tbl, 1); v != 2 {
		t.Fatalf("new snapshot sees %d, want 2", v)
	}
}

func TestWriteWriteConflict(t *testing.T) {
	s, tbl := testTable(t)
	tx := s.Begin()
	mustInsert(t, tx, tbl, 1, 1)
	commit(t, tx)

	a := s.Begin()
	b := s.Begin()
	if err := a.Update(tbl, 1, nil, func(tup []byte) { tbl.Schema.PutInt64(tup, 1, 10) }); err != nil {
		t.Fatal(err)
	}
	// First writer wins: b must get a conflict.
	err := b.Update(tbl, 1, nil, func(tup []byte) { tbl.Schema.PutInt64(tup, 1, 20) })
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("second writer got %v, want ErrConflict", err)
	}
	b.Abort()
	commit(t, a)
	ro := s.BeginRO()
	defer ro.Release()
	if v, _ := getVal(ro, tbl, 1); v != 10 {
		t.Fatalf("value = %d, want 10", v)
	}
}

func TestConflictAfterSnapshot(t *testing.T) {
	s, tbl := testTable(t)
	tx := s.Begin()
	mustInsert(t, tx, tbl, 1, 1)
	commit(t, tx)

	b := s.Begin() // snapshot now
	a := s.Begin()
	if err := a.Update(tbl, 1, nil, func(tup []byte) { tbl.Schema.PutInt64(tup, 1, 10) }); err != nil {
		t.Fatal(err)
	}
	commit(t, a) // committed after b's snapshot
	err := b.Update(tbl, 1, nil, func(tup []byte) { tbl.Schema.PutInt64(tup, 1, 20) })
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("stale writer got %v, want ErrConflict", err)
	}
	b.Abort()
}

func TestAbortRollsBack(t *testing.T) {
	s, tbl := testTable(t)
	tx := s.Begin()
	mustInsert(t, tx, tbl, 1, 1)
	commit(t, tx)

	a := s.Begin()
	if err := a.Update(tbl, 1, nil, func(tup []byte) { tbl.Schema.PutInt64(tup, 1, 99) }); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, a, tbl, 2, 2)
	if err := a.Delete(tbl, 1); err != nil {
		// Delete of a row we updated: converts the op.
		t.Fatal(err)
	}
	a.Abort()

	ro := s.BeginRO()
	defer ro.Release()
	if v, ok := getVal(ro, tbl, 1); !ok || v != 1 {
		t.Fatalf("after abort row1 = %d,%v; want 1,true", v, ok)
	}
	if _, ok := getVal(ro, tbl, 2); ok {
		t.Fatal("aborted insert visible")
	}
	// Row must be writable again (lock released).
	b := s.Begin()
	if err := b.Update(tbl, 1, nil, func(tup []byte) { tbl.Schema.PutInt64(tup, 1, 5) }); err != nil {
		t.Fatalf("update after abort: %v", err)
	}
	commit(t, b)
}

func TestDeleteAndReinsert(t *testing.T) {
	s, tbl := testTable(t)
	tx := s.Begin()
	r1 := mustInsert(t, tx, tbl, 1, 1)
	commit(t, tx)

	d := s.Begin()
	if err := d.Delete(tbl, 1); err != nil {
		t.Fatal(err)
	}
	commit(t, d)

	ro := s.BeginRO()
	if _, ok := getVal(ro, tbl, 1); ok {
		t.Fatal("deleted row visible")
	}
	ro.Release()

	i2 := s.Begin()
	r2 := mustInsert(t, i2, tbl, 1, 42)
	commit(t, i2)
	if r2 == r1 {
		t.Fatal("re-insert reused RowID; must get a fresh one")
	}
	ro2 := s.BeginRO()
	defer ro2.Release()
	if v, ok := getVal(ro2, tbl, 1); !ok || v != 42 {
		t.Fatalf("re-inserted row = %d,%v", v, ok)
	}
}

func TestDuplicateInsert(t *testing.T) {
	s, tbl := testTable(t)
	tx := s.Begin()
	mustInsert(t, tx, tbl, 1, 1)
	commit(t, tx)
	tx2 := s.Begin()
	tup := tbl.Schema.NewTuple()
	tbl.Schema.PutInt64(tup, 0, 1)
	if _, err := tx2.Insert(tbl, tup); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("duplicate insert: %v", err)
	}
	tx2.Abort()
}

func TestUpdateMissing(t *testing.T) {
	s, tbl := testTable(t)
	tx := s.Begin()
	defer tx.Abort()
	if err := tx.Update(tbl, 7, nil, func([]byte) {}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update missing: %v", err)
	}
	if err := tx.Delete(tbl, 7); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing: %v", err)
	}
}

func TestOwnWriteSequences(t *testing.T) {
	s, tbl := testTable(t)

	// insert -> update -> commit: write set collapses to one insert.
	tx := s.Begin()
	mustInsert(t, tx, tbl, 1, 1)
	if err := tx.Update(tbl, 1, []int{1}, func(tup []byte) { tbl.Schema.PutInt64(tup, 1, 2) }); err != nil {
		t.Fatal(err)
	}
	if len(tx.Writes()) != 1 || tx.Writes()[0].Kind != OpInsert {
		t.Fatalf("write set = %+v", tx.Writes())
	}
	commit(t, tx)
	ro := s.BeginRO()
	if v, _ := getVal(ro, tbl, 1); v != 2 {
		t.Fatalf("insert+update = %d, want 2", v)
	}
	ro.Release()

	// update -> update merges changed columns.
	tx2 := s.Begin()
	if err := tx2.Update(tbl, 1, []int{1}, func(tup []byte) { tbl.Schema.PutInt64(tup, 1, 3) }); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Update(tbl, 1, []int{0}, func(tup []byte) {}); err != nil {
		t.Fatal(err)
	}
	if len(tx2.Writes()) != 1 || len(tx2.Writes()[0].Cols) != 2 {
		t.Fatalf("merged write set = %+v", tx2.Writes())
	}
	commit(t, tx2)

	// insert -> delete cancels out.
	tx3 := s.Begin()
	mustInsert(t, tx3, tbl, 9, 9)
	if err := tx3.Delete(tbl, 9); err != nil {
		t.Fatal(err)
	}
	if len(tx3.Writes()) != 0 {
		t.Fatalf("insert+delete write set = %+v", tx3.Writes())
	}
	commit(t, tx3)
	ro2 := s.BeginRO()
	defer ro2.Release()
	if _, ok := getVal(ro2, tbl, 9); ok {
		t.Fatal("cancelled insert visible")
	}

	// update -> delete becomes a delete.
	tx4 := s.Begin()
	if err := tx4.Update(tbl, 1, nil, func(tup []byte) { tbl.Schema.PutInt64(tup, 1, 77) }); err != nil {
		t.Fatal(err)
	}
	if err := tx4.Delete(tbl, 1); err != nil {
		t.Fatal(err)
	}
	if len(tx4.Writes()) != 1 || tx4.Writes()[0].Kind != OpDelete {
		t.Fatalf("update+delete write set = %+v", tx4.Writes())
	}
	commit(t, tx4)
	ro3 := s.BeginRO()
	defer ro3.Release()
	if _, ok := getVal(ro3, tbl, 1); ok {
		t.Fatal("deleted row visible after update+delete")
	}
}

func TestReadOnlyCannotWrite(t *testing.T) {
	s, tbl := testTable(t)
	ro := s.BeginRO()
	defer ro.Release()
	tup := tbl.Schema.NewTuple()
	if _, err := ro.Insert(tbl, tup); err == nil {
		t.Fatal("read-only insert succeeded")
	}
	if err := ro.Update(tbl, 1, nil, func([]byte) {}); err == nil {
		t.Fatal("read-only update succeeded")
	}
	if err := ro.Delete(tbl, 1); err == nil {
		t.Fatal("read-only delete succeeded")
	}
}

func TestSecondaryIndexScan(t *testing.T) {
	s := NewStore()
	schema := storage.NewSchema(1, "people", []storage.Column{
		{Name: "id", Type: storage.Int64},
		{Name: "age", Type: storage.Int64},
	}, []int{0})
	tbl := s.CreateTable(schema, func(tup []byte) uint64 {
		return uint64(schema.GetInt64(tup, 0))
	}, 64)
	// Secondary on (age, id) — id bits uniquify.
	byAge := tbl.AddSecondary("by_age", func(tup []byte) uint64 {
		return uint64(schema.GetInt64(tup, 1))<<32 | uint64(schema.GetInt64(tup, 0))
	})

	tx := s.Begin()
	for i := int64(1); i <= 10; i++ {
		tup := schema.NewTuple()
		schema.PutInt64(tup, 0, i)
		schema.PutInt64(tup, 1, i%3) // ages 0,1,2
		if _, err := tx.Insert(tbl, tup); err != nil {
			t.Fatal(err)
		}
	}
	commit(t, tx)

	ro := s.BeginRO()
	defer ro.Release()
	// All people with age == 1: ids 1,4,7,10.
	var ids []int64
	for it := byAge.Seek(1 << 32); it.Valid() && it.Key() < 2<<32; it.Next() {
		rec := ro.ReadChain(it.Value())
		if rec == nil {
			continue
		}
		if schema.GetInt64(rec.Data, 1) != 1 {
			continue // stale entry
		}
		ids = append(ids, schema.GetInt64(rec.Data, 0))
	}
	want := []int64{1, 4, 7, 10}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}

func TestSecondaryReindexOnUpdate(t *testing.T) {
	s := NewStore()
	schema := storage.NewSchema(1, "people", []storage.Column{
		{Name: "id", Type: storage.Int64},
		{Name: "age", Type: storage.Int64},
	}, []int{0})
	tbl := s.CreateTable(schema, func(tup []byte) uint64 {
		return uint64(schema.GetInt64(tup, 0))
	}, 64)
	byAge := tbl.AddSecondary("by_age", func(tup []byte) uint64 {
		return uint64(schema.GetInt64(tup, 1))<<32 | uint64(schema.GetInt64(tup, 0))
	})

	tx := s.Begin()
	mustInsert(t, tx, tbl, 1, 30)
	commit(t, tx)
	tx2 := s.Begin()
	if err := tx2.Update(tbl, 1, []int{1}, func(tup []byte) { schema.PutInt64(tup, 1, 40) }); err != nil {
		t.Fatal(err)
	}
	commit(t, tx2)

	ro := s.BeginRO()
	defer ro.Release()
	// Lookup under the new key must find the row.
	found := false
	for it := byAge.Seek(40 << 32); it.Valid() && it.Key() < 41<<32; it.Next() {
		if rec := ro.ReadChain(it.Value()); rec != nil && schema.GetInt64(rec.Data, 1) == 40 {
			found = true
		}
	}
	if !found {
		t.Fatal("updated row not found under new secondary key")
	}
	// The stale old entry must be filtered by key re-derivation.
	for it := byAge.Seek(30 << 32); it.Valid() && it.Key() < 31<<32; it.Next() {
		rec := ro.ReadChain(it.Value())
		if rec != nil && byAge.KeyFn(rec.Data) == it.Key() {
			t.Fatal("stale index entry matched after update")
		}
	}
}
