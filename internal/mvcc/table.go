package mvcc

import (
	"fmt"
	"sync/atomic"

	"batchdb/internal/index"
	"batchdb/internal/storage"
)

// SecondaryKeyFunc derives a packed secondary-index key from a tuple.
// Non-unique indexes must fold a uniquifier (e.g. low bits of the
// primary key) into the returned value, since index keys are unique.
type SecondaryKeyFunc func(tup []byte) uint64

// Secondary is an ordered secondary index over a table. Entries point to
// chains; because all versions of a row live in one chain, the index may
// return rows whose indexed attributes changed — readers re-derive the
// key from the version visible to them and skip mismatches.
type Secondary struct {
	Name  string
	KeyFn SecondaryKeyFunc
	sl    *index.SkipList[*Chain]
}

// Seek returns an ascending iterator over index entries with key >= key.
func (s *Secondary) Seek(key uint64) *index.Iterator[*Chain] { return s.sl.Seek(key) }

// Table is one relation in the OLTP replica: a primary hash index from
// packed key to version chain, an append-only chain list for scans, and
// optional secondary indexes (paper Fig. 2: hash- and tree-based
// indexes over the same records).
type Table struct {
	Schema *storage.Schema
	// KeyFn packs a tuple's primary key into uint64.
	KeyFn storage.KeyFunc

	pk     *index.Hash[*Chain]
	chains *chainList
	sec    []*Secondary

	nextRowID atomic.Uint64
}

// NewTable creates an empty table. capacityHint sizes the primary index.
func NewTable(schema *storage.Schema, keyFn storage.KeyFunc, capacityHint int) *Table {
	return &Table{
		Schema: schema,
		KeyFn:  keyFn,
		pk:     index.NewHash[*Chain](capacityHint),
		chains: newChainList(),
	}
}

// AddSecondary registers an ordered secondary index. Must be called
// before any data is inserted.
func (t *Table) AddSecondary(name string, fn SecondaryKeyFunc) *Secondary {
	s := &Secondary{Name: name, KeyFn: fn, sl: index.NewSkipList[*Chain](int64(len(t.sec)) + 1)}
	t.sec = append(t.sec, s)
	return s
}

// Secondary returns the named secondary index, or nil.
func (t *Table) Secondary(name string) *Secondary {
	for _, s := range t.sec {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// getChain returns the version chain for key, or nil.
func (t *Table) getChain(key uint64) *Chain {
	c, _ := t.pk.Get(key)
	return c
}

// getOrCreateChain returns the chain for key, creating and indexing an
// empty one if absent. Multiple racing creators converge on one chain.
func (t *Table) getOrCreateChain(key uint64) *Chain {
	if c, ok := t.pk.Get(key); ok {
		return c
	}
	c := &Chain{Key: key}
	won, inserted := t.pk.PutIfAbsent(key, c)
	if inserted {
		t.chains.append(c)
	}
	return won
}

// indexInto adds the chain to every secondary index under keys derived
// from tup.
func (t *Table) indexInto(c *Chain, tup []byte) {
	for _, s := range t.sec {
		s.sl.Put(s.KeyFn(tup), c)
	}
}

// getOrCreateChains resolves the chain for every key into out (input
// order) with one primary-index lock acquisition per touched shard —
// the batch counterpart of getOrCreateChain for bulk insert. Newly
// created chains join the scan list before the call returns; as in the
// single-key path, a chain may briefly be indexed but not yet listed,
// which is invisible because its versions only publish at Commit.
func (t *Table) getOrCreateChains(keys []uint64, out []*Chain) {
	inserted := make([]bool, len(keys))
	t.pk.GetOrPutBatch(keys, func(key uint64) *Chain { return &Chain{Key: key} }, out, inserted)
	for i, created := range inserted {
		if created {
			t.chains.append(out[i])
		}
	}
}

// AllocRowID returns a fresh RowID for a newly inserted logical row.
func (t *Table) AllocRowID() uint64 { return t.nextRowID.Add(1) }

// AllocRowIDs reserves n consecutive RowIDs and returns the first — one
// atomic op for a whole bulk-insert chunk.
func (t *Table) AllocRowIDs(n int) uint64 {
	return t.nextRowID.Add(uint64(n)) - uint64(n) + 1
}

// LoadRow installs a tuple at VID 0, the "initial load" state visible to
// every snapshot. It bypasses transactional machinery and must only be
// used to populate the database before the engine starts (it is what
// recovery re-runs before replaying the command log). Returns the
// assigned RowID.
func (t *Table) LoadRow(tup []byte) (uint64, error) {
	key := t.KeyFn(tup)
	c := t.getOrCreateChain(key)
	if c.Head() != nil {
		return 0, ErrDuplicateKey
	}
	rec := newRecord(t.AllocRowID(), 0, tup, nil)
	if !c.head.CompareAndSwap(nil, rec) {
		return 0, ErrDuplicateKey
	}
	t.indexInto(c, tup)
	return rec.RowID, nil
}

// LoadRowWithID installs a tuple at VID 0 under an explicit RowID — the
// checkpoint-restore counterpart of LoadRow. RowIDs are the OLAP
// replica's row identity, so a restored store must reproduce them
// exactly; the allocator is bumped past the largest restored RowID so
// later inserts cannot collide.
func (t *Table) LoadRowWithID(rowID uint64, tup []byte) error {
	if rowID == 0 {
		// AllocRowID starts at 1; RowID 0 is the OLAP partitions'
		// tombstone sentinel. Restoring a row under it would replicate as
		// a live-counted but scan-invisible tuple — reject it at load.
		return fmt.Errorf("mvcc: load of reserved RowID 0 in table %s", t.Schema.Name)
	}
	key := t.KeyFn(tup)
	c := t.getOrCreateChain(key)
	if c.Head() != nil {
		return ErrDuplicateKey
	}
	rec := newRecord(rowID, 0, tup, nil)
	if !c.head.CompareAndSwap(nil, rec) {
		return ErrDuplicateKey
	}
	t.indexInto(c, tup)
	for {
		cur := t.nextRowID.Load()
		if cur >= rowID || t.nextRowID.CompareAndSwap(cur, rowID) {
			return nil
		}
	}
}

// ScanChains visits every chain in the table (all versions, all states);
// callers apply snapshot visibility via Chain.VisibleAt.
func (t *Table) ScanChains(fn func(*Chain) bool) { t.chains.forEach(fn) }

// NumChains returns the number of chains ever created (live and dead).
func (t *Table) NumChains() int { return t.chains.len() }
