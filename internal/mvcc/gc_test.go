package mvcc

import (
	"testing"

	"batchdb/internal/storage"
)

// Secondary-index entries for deleted rows and for superseded key
// values must be pruned by GC, keeping range scans from degrading — the
// regression behind TPC-C Delivery slowing down as delivered new_order
// entries accumulated.
func TestGCPrunesSecondaryIndex(t *testing.T) {
	s := NewStore()
	schema := storage.NewSchema(1, "q", []storage.Column{
		{Name: "k", Type: storage.Int64},
		{Name: "grp", Type: storage.Int64},
	}, []int{0})
	tbl := s.CreateTable(schema, func(tup []byte) uint64 {
		return uint64(schema.GetInt64(tup, 0))
	}, 64)
	byGrp := tbl.AddSecondary("by_grp", func(tup []byte) uint64 {
		return uint64(schema.GetInt64(tup, 1))<<32 | uint64(schema.GetInt64(tup, 0))
	})

	tx := s.Begin()
	for i := int64(1); i <= 100; i++ {
		tup := schema.NewTuple()
		schema.PutInt64(tup, 0, i)
		schema.PutInt64(tup, 1, 1)
		if _, err := tx.Insert(tbl, tup); err != nil {
			t.Fatal(err)
		}
	}
	commit(t, tx)

	// Delete 80 rows, move 10 to another group.
	for i := int64(1); i <= 80; i++ {
		tx := s.Begin()
		if err := tx.Delete(tbl, uint64(i)); err != nil {
			t.Fatal(err)
		}
		commit(t, tx)
	}
	for i := int64(81); i <= 90; i++ {
		tx := s.Begin()
		if err := tx.Update(tbl, uint64(i), []int{1}, func(tup []byte) {
			schema.PutInt64(tup, 1, 2)
		}); err != nil {
			t.Fatal(err)
		}
		commit(t, tx)
	}

	countEntries := func() int {
		n := 0
		for it := byGrp.Seek(0); it.Valid(); it.Next() {
			n++
		}
		return n
	}
	// 100 original + 10 new-group entries before GC.
	if got := countEntries(); got != 110 {
		t.Fatalf("entries before GC = %d, want 110", got)
	}
	st := s.CollectGarbage()
	// After GC: 20 live rows, 10 of them re-grouped (old entries pruned)
	// = exactly 20 entries.
	if got := countEntries(); got != 20 {
		t.Fatalf("entries after GC = %d, want 20 (stats %+v)", got, st)
	}
	if st.IndexEntriesRemoved != 90 {
		t.Fatalf("IndexEntriesRemoved = %d, want 90", st.IndexEntriesRemoved)
	}
	// Remaining entries resolve to live, matching rows.
	ro := s.BeginRO()
	defer ro.Release()
	for it := byGrp.Seek(0); it.Valid(); it.Next() {
		rec := ro.ReadChain(it.Value())
		if rec == nil {
			t.Fatal("pruned index still holds dead entry")
		}
		if byGrp.KeyFn(rec.Data) != it.Key() {
			t.Fatal("pruned index holds mismatched entry")
		}
	}
}

// GC while a long snapshot is pinned must keep exactly the versions the
// snapshot can see and prune the rest once it releases.
func TestGCHorizonBoundaries(t *testing.T) {
	s, tbl := testTable(t)
	tx := s.Begin()
	mustInsert(t, tx, tbl, 1, 1)
	commit(t, tx) // VID 1

	pinned := s.BeginRO() // snapshot 1
	for v := int64(2); v <= 10; v++ {
		tx := s.Begin()
		if err := tx.Update(tbl, 1, []int{1}, func(tup []byte) {
			tbl.Schema.PutInt64(tup, 1, v)
		}); err != nil {
			t.Fatal(err)
		}
		commit(t, tx)
	}
	s.CollectGarbage()
	// Versions 1 (pinned) and 10 (current) must survive; at least those.
	if n := chainLen(tbl.getChain(1)); n < 2 {
		t.Fatalf("chain over-pruned under pinned snapshot: len=%d", n)
	}
	if v, ok := getValNT(pinned, tbl, 1); !ok || v != 1 {
		t.Fatalf("pinned snapshot reads %d,%v", v, ok)
	}
	pinned.Release()
	s.CollectGarbage()
	if n := chainLen(tbl.getChain(1)); n != 1 {
		t.Fatalf("chain after release = %d, want 1", n)
	}
}
