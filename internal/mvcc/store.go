package mvcc

import (
	"sync/atomic"

	"batchdb/internal/storage"
	"batchdb/internal/vid"
)

// activeSlots bounds concurrently running transactions; BatchDB executes
// transactions on a small set of OLTP workers, so this is generous.
const activeSlots = 1024

// activeSet tracks the snapshots of running transactions so GC knows the
// oldest snapshot that can still read old versions. It plays the role of
// Hekaton's epoch management (paper §4) but for version visibility only;
// memory reclamation is the Go runtime's job.
type activeSet struct {
	slots [activeSlots]atomic.Uint64 // snap+1, 0 = free
	hint  atomic.Uint32
}

// register claims a slot holding snap. To avoid a race with GC, callers
// first register a conservative snapshot (0), then read the watermark,
// then raise the slot with update — so the slot value never exceeds the
// transaction's true snapshot while it runs.
func (a *activeSet) register(snap uint64) int {
	h := a.hint.Add(1)
	for i := 0; i < activeSlots; i++ {
		idx := (int(h) + i) % activeSlots
		if a.slots[idx].CompareAndSwap(0, snap+1) {
			return idx
		}
	}
	// All slots busy: with bounded OLTP workers this cannot happen; -1
	// disables tracking for this transaction (GC then relies on the
	// other registered snapshots, which bound the horizon anyway).
	return -1
}

func (a *activeSet) update(slot int, snap uint64) {
	if slot >= 0 {
		a.slots[slot].Store(snap + 1)
	}
}

func (a *activeSet) unregister(slot int) {
	if slot >= 0 {
		a.slots[slot].Store(0)
	}
}

// min returns the smallest registered snapshot, or def if none.
func (a *activeSet) min(def uint64) uint64 {
	m := def
	for i := range a.slots {
		if v := a.slots[i].Load(); v != 0 && v-1 < m {
			m = v - 1
		}
	}
	return m
}

// Store is the OLTP replica's storage engine: a set of versioned tables
// sharing one commit-VID space.
type Store struct {
	VIDs   *vid.Allocator
	tables map[storage.TableID]*Table
	order  []*Table
	txnIDs atomic.Uint64
	active activeSet
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{VIDs: vid.NewAllocator(), tables: make(map[storage.TableID]*Table)}
}

// CreateTable registers a new table. Not safe to call concurrently with
// transactions; do all DDL up front.
func (s *Store) CreateTable(schema *storage.Schema, keyFn storage.KeyFunc, capacityHint int) *Table {
	t := NewTable(schema, keyFn, capacityHint)
	s.tables[schema.ID] = t
	s.order = append(s.order, t)
	return t
}

// Table returns the table with the given ID, or nil.
func (s *Store) Table(id storage.TableID) *Table { return s.tables[id] }

// Tables returns all tables in creation order.
func (s *Store) Tables() []*Table { return s.order }

// Begin starts a read-write transaction at the current watermark.
func (s *Store) Begin() *Txn {
	slot := s.active.register(0)
	snap := s.VIDs.Watermark()
	s.active.update(slot, snap)
	return &Txn{
		store: s,
		snap:  snap,
		id:    s.txnIDs.Add(1) | markerBit,
		slot:  slot,
	}
}

// BeginRO starts a read-only transaction at the current watermark. It
// must finish with Release.
func (s *Store) BeginRO() *Txn {
	slot := s.active.register(0)
	snap := s.VIDs.Watermark()
	s.active.update(slot, snap)
	return &Txn{store: s, snap: snap, slot: slot}
}

// BeginROAt starts a read-only transaction at an explicit snapshot VID
// (which must be <= the watermark to be meaningful).
func (s *Store) BeginROAt(snap uint64) *Txn {
	slot := s.active.register(0)
	s.active.update(slot, snap)
	return &Txn{store: s, snap: snap, slot: slot}
}

// BeginAt starts a read-write transaction at an explicit snapshot. It
// exists for command-log replay: recovery re-executes each logged
// procedure at its original ReadVID so it observes exactly the data the
// original execution saw (paper §4 "Logging": read and committed
// snapshot versions are logged for correct recovery).
func (s *Store) BeginAt(snap uint64) *Txn {
	slot := s.active.register(0)
	s.active.update(slot, snap)
	return &Txn{
		store: s,
		snap:  snap,
		id:    s.txnIDs.Add(1) | markerBit,
		slot:  slot,
	}
}

// Release finishes a read-only transaction.
func (tx *Txn) Release() {
	if tx.done {
		return
	}
	tx.done = true
	tx.store.release(tx)
}

func (s *Store) release(tx *Txn) { s.active.unregister(tx.slot) }

// MinActiveSnapshot returns the oldest snapshot any running transaction
// reads at (or the current watermark if none) — the GC horizon.
func (s *Store) MinActiveSnapshot() uint64 {
	return s.active.min(s.VIDs.Watermark())
}
