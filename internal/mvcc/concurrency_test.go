package mvcc

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"batchdb/internal/storage"
)

// TestConcurrentTransfers runs the classic bank-transfer invariant:
// concurrent transfers between accounts must conserve the total balance,
// and every snapshot must observe a conserved total (snapshot isolation
// forbids seeing half a transfer).
func TestConcurrentTransfers(t *testing.T) {
	s, tbl := testTable(t)
	const accounts = 20
	const initial = 1000
	tx := s.Begin()
	for i := int64(0); i < accounts; i++ {
		mustInsert(t, tx, tbl, i, initial)
	}
	commit(t, tx)

	var conflicts atomic.Int64
	var wg, readers sync.WaitGroup
	stop := make(chan struct{})

	// Readers continuously verify conservation on live snapshots.
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ro := s.BeginRO()
				total := int64(0)
				for i := int64(0); i < accounts; i++ {
					v, ok := getValNT(ro, tbl, i)
					if !ok {
						t.Errorf("account %d missing", i)
						ro.Release()
						return
					}
					total += v
				}
				ro.Release()
				if total != accounts*initial {
					t.Errorf("snapshot total = %d, want %d", total, accounts*initial)
					return
				}
			}
		}(int64(r))
	}

	// Writers transfer random amounts.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				from := rng.Int63n(accounts)
				to := rng.Int63n(accounts)
				if from == to {
					continue
				}
				amt := rng.Int63n(10) + 1
				tx := s.Begin()
				err := tx.Update(tbl, uint64(from), []int{1}, func(tup []byte) {
					tbl.Schema.PutInt64(tup, 1, tbl.Schema.GetInt64(tup, 1)-amt)
				})
				if err == nil {
					err = tx.Update(tbl, uint64(to), []int{1}, func(tup []byte) {
						tbl.Schema.PutInt64(tup, 1, tbl.Schema.GetInt64(tup, 1)+amt)
					})
				}
				if err != nil {
					if !errors.Is(err, ErrConflict) {
						t.Errorf("transfer failed: %v", err)
						tx.Abort()
						return
					}
					conflicts.Add(1)
					tx.Abort()
					continue
				}
				if _, err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(int64(w + 100))
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	ro := s.BeginRO()
	defer ro.Release()
	total := int64(0)
	for i := int64(0); i < accounts; i++ {
		v, _ := getValNT(ro, tbl, i)
		total += v
	}
	if total != accounts*initial {
		t.Fatalf("final total = %d, want %d (conflicts=%d)", total, accounts*initial, conflicts.Load())
	}
}

func getValNT(tx *Txn, tbl *Table, k int64) (int64, bool) {
	tup, ok := tx.Get(tbl, uint64(k))
	if !ok {
		return 0, false
	}
	return tbl.Schema.GetInt64(tup, 1), true
}

// TestConcurrentInsertsUniqueKeys: racing inserters on the same key —
// exactly one must win per key.
func TestConcurrentInsertRace(t *testing.T) {
	s, tbl := testTable(t)
	const keys = 100
	const racers = 4
	var wins atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < racers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for k := int64(0); k < keys; k++ {
				tx := s.Begin()
				tup := tbl.Schema.NewTuple()
				tbl.Schema.PutInt64(tup, 0, k)
				tbl.Schema.PutInt64(tup, 1, int64(r))
				if _, err := tx.Insert(tbl, tup); err == nil {
					if _, err := tx.Commit(); err == nil {
						wins.Add(1)
					}
				} else {
					tx.Abort()
				}
			}
		}(r)
	}
	wg.Wait()
	if wins.Load() != keys {
		t.Fatalf("winning inserts = %d, want %d", wins.Load(), keys)
	}
	ro := s.BeginRO()
	defer ro.Release()
	for k := int64(0); k < keys; k++ {
		if _, ok := getValNT(ro, tbl, k); !ok {
			t.Fatalf("key %d missing", k)
		}
	}
}

func TestGCUnlinksOldVersions(t *testing.T) {
	s, tbl := testTable(t)
	tx := s.Begin()
	mustInsert(t, tx, tbl, 1, 0)
	commit(t, tx)
	for i := 1; i <= 50; i++ {
		tx := s.Begin()
		if err := tx.Update(tbl, 1, []int{1}, func(tup []byte) {
			tbl.Schema.PutInt64(tup, 1, int64(i))
		}); err != nil {
			t.Fatal(err)
		}
		commit(t, tx)
	}
	c := tbl.getChain(1)
	if n := chainLen(c); n != 51 {
		t.Fatalf("chain length before GC = %d, want 51", n)
	}
	st := s.CollectGarbage()
	if n := chainLen(c); n != 1 {
		t.Fatalf("chain length after GC = %d, want 1 (stats %+v)", n, st)
	}
	ro := s.BeginRO()
	defer ro.Release()
	if v, _ := getValNT(ro, tbl, 1); v != 50 {
		t.Fatalf("value after GC = %d, want 50", v)
	}
}

func TestGCRespectsActiveSnapshot(t *testing.T) {
	s, tbl := testTable(t)
	tx := s.Begin()
	mustInsert(t, tx, tbl, 1, 1)
	commit(t, tx)

	ro := s.BeginRO() // pin snapshot 1
	for i := 2; i <= 5; i++ {
		tx := s.Begin()
		if err := tx.Update(tbl, 1, []int{1}, func(tup []byte) {
			tbl.Schema.PutInt64(tup, 1, int64(i))
		}); err != nil {
			t.Fatal(err)
		}
		commit(t, tx)
	}
	s.CollectGarbage()
	// The pinned snapshot must still read its version.
	if v, ok := getValNT(ro, tbl, 1); !ok || v != 1 {
		t.Fatalf("pinned snapshot reads %d,%v; want 1,true", v, ok)
	}
	ro.Release()
	s.CollectGarbage()
	if n := chainLen(tbl.getChain(1)); n != 1 {
		t.Fatalf("chain length after release+GC = %d, want 1", n)
	}
}

func TestGCRetiresDeletedRows(t *testing.T) {
	s, tbl := testTable(t)
	tx := s.Begin()
	for i := int64(0); i < 10; i++ {
		mustInsert(t, tx, tbl, i, i)
	}
	commit(t, tx)
	for i := int64(0); i < 5; i++ {
		tx := s.Begin()
		if err := tx.Delete(tbl, uint64(i)); err != nil {
			t.Fatal(err)
		}
		commit(t, tx)
	}
	st := s.CollectGarbage()
	if st.ChainsRetired != 5 {
		t.Fatalf("ChainsRetired = %d, want 5 (stats %+v)", st.ChainsRetired, st)
	}
	// Deleted keys can be re-inserted afterwards.
	tx2 := s.Begin()
	mustInsert(t, tx2, tbl, 2, 222)
	commit(t, tx2)
	ro := s.BeginRO()
	defer ro.Release()
	if v, ok := getValNT(ro, tbl, 2); !ok || v != 222 {
		t.Fatalf("re-insert after retire = %d,%v", v, ok)
	}
	// Survivors intact.
	for i := int64(5); i < 10; i++ {
		if v, ok := getValNT(ro, tbl, i); !ok || v != i {
			t.Fatalf("survivor %d = %d,%v", i, v, ok)
		}
	}
}

func TestGCConcurrentWithWriters(t *testing.T) {
	s, tbl := testTable(t)
	tx := s.Begin()
	for i := int64(0); i < 50; i++ {
		mustInsert(t, tx, tbl, i, 0)
	}
	commit(t, tx)

	var wg, gcwg sync.WaitGroup
	stop := make(chan struct{})
	gcwg.Add(1)
	go func() { // GC loop
		defer gcwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.CollectGarbage()
			}
		}
	}()
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 3000; i++ {
				k := rng.Int63n(50)
				tx := s.Begin()
				var err error
				switch rng.Intn(3) {
				case 0: // update
					err = tx.Update(tbl, uint64(k), []int{1}, func(tup []byte) {
						tbl.Schema.PutInt64(tup, 1, int64(i))
					})
				case 1: // delete
					err = tx.Delete(tbl, uint64(k))
				default: // insert (may be dup)
					tup := tbl.Schema.NewTuple()
					tbl.Schema.PutInt64(tup, 0, k)
					tbl.Schema.PutInt64(tup, 1, int64(i))
					_, err = tx.Insert(tbl, tup)
				}
				if err != nil {
					tx.Abort()
					continue
				}
				if _, err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(int64(w + 7))
	}
	wg.Wait()
	close(stop)
	gcwg.Wait()

	// Every surviving row must be readable and every read consistent.
	ro := s.BeginRO()
	defer ro.Release()
	for i := int64(0); i < 50; i++ {
		getValNT(ro, tbl, i) // must not panic or hang
	}
}

// Property: a serial history of random ops against the store matches a
// plain map (serializable == snapshot-isolated for serial execution).
func TestSerialHistoryMatchesMap(t *testing.T) {
	type op struct {
		Key uint64
		Val int64
		Op  uint8
	}
	f := func(ops []op) bool {
		s, _ := quickStoreTable()
		tbl := s.Tables()[0]
		ref := make(map[uint64]int64)
		for _, o := range ops {
			k := o.Key % 32
			tx := s.Begin()
			var err error
			switch o.Op % 3 {
			case 0: // insert
				tup := tbl.Schema.NewTuple()
				tbl.Schema.PutInt64(tup, 0, int64(k))
				tbl.Schema.PutInt64(tup, 1, o.Val)
				_, err = tx.Insert(tbl, tup)
				if _, exists := ref[k]; exists {
					if !errors.Is(err, ErrDuplicateKey) {
						return false
					}
				} else if err == nil {
					ref[k] = o.Val
				}
			case 1: // update
				err = tx.Update(tbl, k, nil, func(tup []byte) {
					tbl.Schema.PutInt64(tup, 1, o.Val)
				})
				if _, exists := ref[k]; exists {
					if err != nil {
						return false
					}
					ref[k] = o.Val
				} else if !errors.Is(err, ErrNotFound) {
					return false
				}
			default: // delete
				err = tx.Delete(tbl, k)
				if _, exists := ref[k]; exists {
					if err != nil {
						return false
					}
					delete(ref, k)
				} else if !errors.Is(err, ErrNotFound) {
					return false
				}
			}
			if err != nil {
				tx.Abort()
			} else if _, cerr := tx.Commit(); cerr != nil {
				return false
			}
		}
		ro := s.BeginRO()
		defer ro.Release()
		for k := uint64(0); k < 32; k++ {
			tup, ok := ro.Get(tbl, k)
			want, exists := ref[k]
			if ok != exists {
				return false
			}
			if ok && tbl.Schema.GetInt64(tup, 1) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func quickStoreTable() (*Store, *storage.Schema) {
	s := NewStore()
	schema := storage.NewSchema(1, "kv", []storage.Column{
		{Name: "k", Type: storage.Int64},
		{Name: "v", Type: storage.Int64},
	}, []int{0})
	s.CreateTable(schema, func(tup []byte) uint64 {
		return uint64(schema.GetInt64(tup, 0))
	}, 64)
	return s, schema
}

func chainLen(c *Chain) int {
	n := 0
	for r := c.Head(); r != nil; r = r.Older() {
		n++
	}
	return n
}
