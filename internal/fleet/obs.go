package fleet

import (
	"strconv"

	"batchdb/internal/metrics"
	"batchdb/internal/obs"
)

// Stats exposes the router's counters. Invariants (asserted by the
// chaos soak test):
//
//	Queries   == Answered + Rejected + Shed
//	Attempts  == Σ member Routed
//	Ejections − Readmits == currently ejected members
//	HedgeWins ≤ Hedges, Probes ≥ Readmits' probe successes
type Stats struct {
	// Queries counts routed query calls; exactly one of Answered,
	// Rejected, Shed is counted per call.
	Queries  metrics.Counter
	Answered metrics.Counter
	Rejected metrics.Counter
	// Shed counts queries rejected by the MaxInFlight load gate.
	Shed metrics.Counter
	// Attempts counts dispatches to members (primaries + hedges);
	// Failures the dispatches that returned a genuine error (cancels
	// excluded); Retries the re-picks after a failed attempt.
	Attempts metrics.Counter
	Failures metrics.Counter
	Retries  metrics.Counter
	// Hedges counts hedge dispatches, HedgeWins the hedges whose answer
	// was the one returned.
	Hedges    metrics.Counter
	HedgeWins metrics.Counter
	// StaleServed counts answers returned flagged Stale under
	// StaleServe; StaleRejected counts answers discarded for exceeding
	// the query's staleness bound.
	StaleServed   metrics.Counter
	StaleRejected metrics.Counter
	// Ejections, Probes, Readmits trace the breaker state machine.
	Ejections metrics.Counter
	Probes    metrics.Counter
	Readmits  metrics.Counter
	// Latency is the end-to-end routed latency (including retries and
	// backoff); AttemptLatency the per-dispatch latency of successful
	// attempts (the hedge threshold's input).
	Latency        metrics.Histogram
	AttemptLatency metrics.Histogram
}

type memberStats struct {
	Routed   metrics.Counter
	Failures metrics.Counter
	// Ejected is 1 while the breaker holds the member ejected.
	Ejected metrics.Gauge
}

// Register exposes the stats through reg under batchdb_fleet_*.
func (st *Stats) Register(reg *obs.Registry, labels ...obs.Label) {
	reg.ObserveCounter("batchdb_fleet_queries_total",
		"Queries submitted to the fleet router.", &st.Queries, labels...)
	reg.ObserveCounter("batchdb_fleet_answered_total",
		"Queries answered (including stale-served).", &st.Answered, labels...)
	reg.ObserveCounter("batchdb_fleet_rejected_total",
		"Queries failed with a routing error.", &st.Rejected, labels...)
	reg.ObserveCounter("batchdb_fleet_shed_total",
		"Queries shed by the in-flight load gate.", &st.Shed, labels...)
	reg.ObserveCounter("batchdb_fleet_attempts_total",
		"Dispatches to fleet members (primaries + hedges).", &st.Attempts, labels...)
	reg.ObserveCounter("batchdb_fleet_attempt_failures_total",
		"Dispatches that returned a genuine error.", &st.Failures, labels...)
	reg.ObserveCounter("batchdb_fleet_retries_total",
		"Retry rounds after a failed attempt.", &st.Retries, labels...)
	reg.ObserveCounter("batchdb_fleet_hedges_total",
		"Hedge dispatches issued.", &st.Hedges, labels...)
	reg.ObserveCounter("batchdb_fleet_hedge_wins_total",
		"Hedges whose answer won.", &st.HedgeWins, labels...)
	reg.ObserveCounter("batchdb_fleet_stale_served_total",
		"Answers served beyond the staleness bound, flagged Stale.", &st.StaleServed, labels...)
	reg.ObserveCounter("batchdb_fleet_stale_rejected_total",
		"Answers discarded for exceeding the staleness bound.", &st.StaleRejected, labels...)
	reg.ObserveCounter("batchdb_fleet_ejections_total",
		"Breaker ejections.", &st.Ejections, labels...)
	reg.ObserveCounter("batchdb_fleet_probes_total",
		"Probe queries routed to ejected members.", &st.Probes, labels...)
	reg.ObserveCounter("batchdb_fleet_readmits_total",
		"Ejected members re-admitted after a successful probe.", &st.Readmits, labels...)
	reg.ObserveHistogram("batchdb_fleet_query_latency_ns",
		"End-to-end routed query latency (nanoseconds).", &st.Latency, labels...)
	reg.ObserveHistogram("batchdb_fleet_attempt_latency_ns",
		"Per-dispatch latency of successful attempts (nanoseconds).", &st.AttemptLatency, labels...)
}

// RegisterMetrics exposes the router's stats, in-flight gauge, and
// per-member counters through reg.
func (r *Router[Q, R]) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	r.stats.Register(reg, labels...)
	reg.GaugeFunc("batchdb_fleet_inflight",
		"Queries currently being routed.",
		func() float64 { return float64(r.inFlight.Load()) }, labels...)
	reg.GaugeFunc("batchdb_fleet_ejected",
		"Members currently held ejected by the breaker.",
		func() float64 { return float64(r.EjectedCount()) }, labels...)
	for _, m := range r.members {
		ml := append(append([]obs.Label(nil), labels...), obs.L("member", strconv.Itoa(m.idx)))
		reg.ObserveCounter("batchdb_fleet_member_routed_total",
			"Dispatches routed to this member.", &m.stats.Routed, ml...)
		reg.ObserveCounter("batchdb_fleet_member_failures_total",
			"Genuine dispatch failures on this member.", &m.stats.Failures, ml...)
		reg.ObserveGauge("batchdb_fleet_member_ejected",
			"1 while the breaker holds this member ejected.", &m.stats.Ejected, ml...)
	}
}
