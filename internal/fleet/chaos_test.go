// Chaos soak: a 3-node fleet under a live OLTP feed while connections
// are killed, severed, and delayed at random. Asserts the router's
// robustness contract — no lost answers (every query returns within its
// deadline), no silently stale results (anything beyond the bound is
// flagged Stale or rejected), and counter/gauge consistency — then that
// the fleet converges back to fresh answers once the chaos stops.
//
// External test package: it wires real nodes (internal/fleet/node),
// which imports internal/fleet.
package fleet_test

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"batchdb/internal/fleet"
	"batchdb/internal/fleet/node"
	"batchdb/internal/mvcc"
	"batchdb/internal/network"
	"batchdb/internal/olap"
	"batchdb/internal/olap/exec"
	"batchdb/internal/oltp"
	"batchdb/internal/replica"
	"batchdb/internal/storage"
)

func putArgs(k, v int64) []byte {
	b := make([]byte, 16)
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(k) >> (8 * i))
		b[8+i] = byte(uint64(v) >> (8 * i))
	}
	return b
}

// chaosPrimary is a served kv primary: a "put" procedure, a replication
// accept loop, and a live push feed — the same wiring as the root API's
// ServeReplicas, scaled down to one table.
type chaosPrimary struct {
	engine *oltp.Engine
	schema *storage.Schema
	addr   string
}

func newChaosPrimary(t *testing.T) *chaosPrimary {
	t.Helper()
	schema := storage.NewSchema(1, "kv", []storage.Column{
		{Name: "k", Type: storage.Int64},
		{Name: "v", Type: storage.Int64},
	}, []int{0})
	store := mvcc.NewStore()
	tbl := store.CreateTable(schema, func(tup []byte) uint64 {
		return uint64(schema.GetInt64(tup, 0))
	}, 4096)
	engine, err := oltp.New(store, oltp.Config{Workers: 2, PushPeriod: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	engine.Register("put", func(tx *mvcc.Txn, args []byte) ([]byte, error) {
		tup := schema.NewTuple()
		schema.PutInt64(tup, 0, schema.GetInt64(args, 0))
		schema.PutInt64(tup, 1, schema.GetInt64(args, 1))
		_, err := tx.Insert(tbl, tup)
		return nil, err
	})
	l, err := network.Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			pub := replica.NewPublisher(conn, engine)
			engine.AddSink(pub)
			go func() {
				pub.Serve()
				engine.RemoveSink(pub)
			}()
			go func() {
				if _, err := replica.ShipSnapshot(conn, engine.Store(), []storage.TableID{1}, 64); err != nil {
					conn.Close()
				}
			}()
		}
	}()
	engine.Start()
	t.Cleanup(func() {
		l.Close()
		engine.Close()
	})
	return &chaosPrimary{engine: engine, schema: schema, addr: l.Addr()}
}

func (p *chaosPrimary) connectNode(t *testing.T) *node.Node {
	t.Helper()
	rep := olap.NewReplica(2)
	rep.CreateTable(p.schema, 4096)
	n, err := node.Connect(p.addr, rep, node.Config{
		Workers:        2,
		Retry:          network.RetryPolicy{Attempts: 30, BaseDelay: 5 * time.Millisecond},
		ReconnectPause: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n
}

func TestChaosSoak(t *testing.T) {
	soak := 4 * time.Second
	clients := 6
	if testing.Short() {
		soak = 1500 * time.Millisecond
		clients = 4
	}
	seed := time.Now().UnixNano()
	t.Logf("chaos seed %d", seed)

	p := newChaosPrimary(t)
	const replicas = 3
	nodes := make([]*node.Node, replicas)
	backends := make([]fleet.Backend[*exec.Query, exec.Result], replicas)
	for i := range nodes {
		nodes[i] = p.connectNode(t)
		backends[i] = nodes[i]
	}
	// The bound is short enough that a held-down replica's answers
	// exceed it mid-soak, and the deadline short enough that a wedged
	// replica times out — so staleness enforcement, retries, and the
	// breaker all see real traffic.
	const bound = 600 * time.Millisecond
	router, err := fleet.NewRouter[*exec.Query, exec.Result](backends, fleet.Config{
		Deadline:         1 * time.Second,
		MaxAttempts:      3,
		RetryBackoff:     2 * time.Millisecond,
		FailureThreshold: 3,
		ProbeBackoff:     20 * time.Millisecond,
		EjectStaleness:   bound,
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// OLTP writers: a monotone stream of inserts with unique keys, so a
	// replica's row count never exceeds the primary's at any moment.
	var nextKey, written atomic.Int64
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := nextKey.Add(1)
				if r := p.engine.Exec("put", putArgs(k, k)); r.Err != nil {
					t.Errorf("put: %v", r.Err)
					return
				}
				written.Add(1)
			}
		}()
	}

	// Chaos injector: every few milliseconds, hit a random node with a
	// connection kill, a one-shot sever, a held-down outage longer than
	// the staleness bound (exercising stale gating/serving), or a wedge
	// delay longer than the query deadline (exercising timeouts, retry,
	// and the breaker).
	wg.Add(1)
	go func() {
		defer wg.Done()
		rnd := rand.New(rand.NewSource(seed))
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Duration(20+rnd.Intn(60)) * time.Millisecond):
			}
			n := nodes[rnd.Intn(len(nodes))]
			switch rnd.Intn(4) {
			case 0:
				n.KillConnection()
			case 1:
				n.InjectFault(network.SeverAfter(network.FaultRecv, 1+rnd.Intn(20)))
			case 2:
				// Hold the node down past the staleness bound: repeated
				// kills defeat its reconnect loop for outage long.
				outage := bound + time.Duration(rnd.Intn(600))*time.Millisecond
				wg.Add(1)
				go func() {
					defer wg.Done()
					end := time.Now().Add(outage)
					for time.Now().Before(end) {
						n.KillConnection()
						select {
						case <-stop:
							return
						case <-time.After(10 * time.Millisecond):
						}
					}
				}()
			case 3:
				n.InjectFault(network.DelayAll(network.FaultRecv,
					time.Duration(500+rnd.Intn(1500))*time.Millisecond))
			}
		}
	}()

	// Query clients: closed loop against the router. Every call must
	// return (the deadline guarantees it); successes must be consistent
	// (count ≤ rows written) and never silently beyond the bound.
	countQ := func() *exec.Query {
		return &exec.Query{Name: "count", Driver: 1, Aggs: []exec.AggSpec{{Kind: exec.Count}}}
	}
	var launched, returned, answered, staleServed, boundViolations, tooMany atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				launched.Add(1)
				res, meta, err := router.Query(context.Background(), countQ(), fleet.Budget{
					MaxStaleness: bound,
					StalePolicy:  fleet.StaleServe,
				})
				returned.Add(1)
				if err != nil {
					continue // typed rejection, not a lost answer
				}
				answered.Add(1)
				if meta.Stale {
					staleServed.Add(1)
				} else if meta.StalenessNanos > int64(bound) {
					boundViolations.Add(1)
				}
				if res.Err == nil && int64(res.Values[0]) > written.Load() {
					tooMany.Add(1)
				}
			}
		}()
	}

	time.Sleep(soak)
	close(stop)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("workload did not drain: a query was lost past its deadline")
	}

	if launched.Load() != returned.Load() {
		t.Fatalf("lost answers: launched %d, returned %d", launched.Load(), returned.Load())
	}
	if answered.Load() == 0 {
		t.Fatal("no query answered during the soak")
	}
	if v := boundViolations.Load(); v != 0 {
		t.Fatalf("%d results exceeded the staleness bound without a Stale flag", v)
	}
	if v := tooMany.Load(); v != 0 {
		t.Fatalf("%d results counted rows the primary never committed", v)
	}
	st := router.Stats()
	if st.Queries.Load() != st.Answered.Load()+st.Rejected.Load()+st.Shed.Load() {
		t.Fatalf("counter drift: queries %d != answered %d + rejected %d + shed %d",
			st.Queries.Load(), st.Answered.Load(), st.Rejected.Load(), st.Shed.Load())
	}
	if int(st.Ejections.Load())-int(st.Readmits.Load()) != router.EjectedCount() {
		t.Fatalf("breaker gauge drift: ejections %d, readmits %d, currently ejected %d",
			st.Ejections.Load(), st.Readmits.Load(), router.EjectedCount())
	}
	if st.HedgeWins.Load() > st.Hedges.Load() {
		t.Fatal("hedge wins exceed hedges")
	}
	t.Logf("soak: %d queries, %d answered (%d stale-served), %d rejected; %d ejections, %d probes, %d readmits, %d retries",
		st.Queries.Load(), st.Answered.Load(), staleServed.Load(), st.Rejected.Load(),
		st.Ejections.Load(), st.Probes.Load(), st.Readmits.Load(), st.Retries.Load())

	// After the chaos stops, the fleet must converge: faults cleared,
	// every node reconnects, and a bounded-staleness query succeeds
	// fresh.
	for _, n := range nodes {
		n.InjectFault(nil)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		res, meta, err := router.Query(context.Background(), countQ(), fleet.Budget{
			MaxStaleness: bound,
		})
		if err == nil && !meta.Stale && res.Err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet did not recover after chaos: err=%v meta=%+v", err, meta)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
