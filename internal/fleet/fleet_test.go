package fleet

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"batchdb/internal/obs"
)

// fakeBackend is a scriptable fleet member. All mutable fields are
// guarded so tests can flip behavior mid-flight under -race.
type fakeBackend struct {
	mu     sync.Mutex
	health Health
	delay  time.Duration
	err    error
	res    int
	calls  int
}

func (f *fakeBackend) set(fn func(*fakeBackend)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fn(f)
}

func (f *fakeBackend) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func (f *fakeBackend) QueryContext(ctx context.Context, q int) (int, error) {
	f.mu.Lock()
	f.calls++
	d, err, res := f.delay, f.err, f.res
	f.mu.Unlock()
	if d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	if err != nil {
		return 0, err
	}
	if res != 0 {
		return res, nil
	}
	return q * 2, nil
}

func (f *fakeBackend) Health() Health {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.health
}

func healthy() Health { return Health{Connected: true} }

func newTestRouter(t *testing.T, cfg Config, fakes ...*fakeBackend) *Router[int, int] {
	t.Helper()
	backends := make([]Backend[int, int], len(fakes))
	for i, f := range fakes {
		backends[i] = f
	}
	r, err := NewRouter[int, int](backends, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNoBackends(t *testing.T) {
	if _, err := NewRouter[int, int](nil, Config{}); !errors.Is(err, ErrNoBackends) {
		t.Fatalf("NewRouter(nil) = %v, want ErrNoBackends", err)
	}
}

func TestRoutesToLeastLoaded(t *testing.T) {
	a := &fakeBackend{health: Health{Connected: true, QueueDepth: 5}}
	b := &fakeBackend{health: Health{Connected: true, QueueDepth: 0}}
	c := &fakeBackend{health: Health{Connected: true, QueueDepth: 9}}
	r := newTestRouter(t, Config{}, a, b, c)
	for i := 0; i < 10; i++ {
		res, meta, err := r.Query(context.Background(), i, Budget{})
		if err != nil {
			t.Fatal(err)
		}
		if res != i*2 {
			t.Fatalf("res = %d, want %d", res, i*2)
		}
		if meta.Backend != 1 {
			t.Fatalf("routed to %d, want least-loaded member 1", meta.Backend)
		}
	}
	if a.callCount() != 0 || c.callCount() != 0 {
		t.Fatalf("loaded members received traffic: a=%d c=%d", a.callCount(), c.callCount())
	}
}

func TestRetryOnDifferentMember(t *testing.T) {
	bad := &fakeBackend{health: healthy(), err: errors.New("boom")}
	good := &fakeBackend{health: Health{Connected: true, QueueDepth: 1}}
	r := newTestRouter(t, Config{RetryBackoff: time.Millisecond}, bad, good)
	res, meta, err := r.Query(context.Background(), 7, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if res != 14 || meta.Backend != 1 {
		t.Fatalf("res=%d backend=%d, want 14 from member 1", res, meta.Backend)
	}
	if meta.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", meta.Attempts)
	}
	st := r.Stats()
	if st.Retries.Load() != 1 || st.Failures.Load() != 1 {
		t.Fatalf("retries=%d failures=%d, want 1/1", st.Retries.Load(), st.Failures.Load())
	}
}

func TestDeadlineBoundsQuery(t *testing.T) {
	slow := &fakeBackend{health: healthy(), delay: 10 * time.Second}
	r := newTestRouter(t, Config{}, slow, slow)
	t0 := time.Now()
	_, _, err := r.Query(context.Background(), 1, Budget{Deadline: 50 * time.Millisecond})
	if err == nil {
		t.Fatal("query against hung fleet succeeded")
	}
	if el := time.Since(t0); el > 2*time.Second {
		t.Fatalf("deadline not enforced: took %v", el)
	}
	if r.Stats().Rejected.Load() != 1 {
		t.Fatalf("rejected = %d, want 1", r.Stats().Rejected.Load())
	}
}

func TestEjectProbeReadmit(t *testing.T) {
	flaky := &fakeBackend{health: healthy(), err: errors.New("down")}
	steady := &fakeBackend{health: Health{Connected: true, QueueDepth: 1}}
	cfg := Config{
		FailureThreshold: 2,
		ProbeBackoff:     20 * time.Millisecond,
		RetryBackoff:     time.Millisecond,
	}
	r := newTestRouter(t, cfg, flaky, steady)

	// Drive failures until the breaker ejects member 0.
	for i := 0; i < 4 && r.EjectedCount() == 0; i++ {
		if _, _, err := r.Query(context.Background(), i, Budget{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.EjectedCount(); got != 1 {
		t.Fatalf("ejected = %d, want 1", got)
	}
	if r.Stats().Ejections.Load() != 1 {
		t.Fatalf("ejections = %d, want 1", r.Stats().Ejections.Load())
	}

	// While ejected (probe not yet due), member 0 takes no traffic.
	calls := flaky.callCount()
	for i := 0; i < 5; i++ {
		if _, meta, err := r.Query(context.Background(), i, Budget{}); err != nil || meta.Backend != 1 {
			t.Fatalf("query during ejection: backend=%d err=%v", meta.Backend, err)
		}
	}
	if flaky.callCount() != calls {
		t.Fatal("ejected member received non-probe traffic")
	}

	// Heal the member; after the probe backoff a query probes and
	// re-admits it.
	flaky.set(func(f *fakeBackend) { f.err = nil })
	deadline := time.Now().Add(5 * time.Second)
	for r.EjectedCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("healed member never re-admitted")
		}
		time.Sleep(25 * time.Millisecond)
		if _, _, err := r.Query(context.Background(), 1, Budget{}); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.Probes.Load() < 1 || st.Readmits.Load() != 1 {
		t.Fatalf("probes=%d readmits=%d", st.Probes.Load(), st.Readmits.Load())
	}
	if int(st.Ejections.Load()-st.Readmits.Load()) != r.EjectedCount() {
		t.Fatal("ejections − readmits != currently ejected")
	}
}

func TestFailedProbeBacksOff(t *testing.T) {
	flaky := &fakeBackend{health: healthy(), err: errors.New("down")}
	steady := &fakeBackend{health: Health{Connected: true, QueueDepth: 1}}
	cfg := Config{
		FailureThreshold: 1,
		ProbeBackoff:     10 * time.Millisecond,
		MaxProbeBackoff:  50 * time.Millisecond,
		RetryBackoff:     time.Millisecond,
	}
	r := newTestRouter(t, cfg, flaky, steady)
	if _, _, err := r.Query(context.Background(), 1, Budget{}); err != nil {
		t.Fatal(err)
	}
	if r.EjectedCount() != 1 {
		t.Fatal("member not ejected")
	}
	// Probes keep failing; the member must stay ejected and each failed
	// probe must reschedule the next one (no wedged probing flag).
	for i := 0; i < 6; i++ {
		time.Sleep(15 * time.Millisecond)
		if _, _, err := r.Query(context.Background(), i, Budget{}); err != nil {
			t.Fatal(err)
		}
	}
	if r.EjectedCount() != 1 {
		t.Fatal("failing member re-admitted")
	}
	if r.Stats().Probes.Load() < 2 {
		t.Fatalf("probes = %d, want repeated probing", r.Stats().Probes.Load())
	}
}

func TestQueueDepthGate(t *testing.T) {
	deep := &fakeBackend{health: Health{Connected: true, QueueDepth: 100}}
	ok := &fakeBackend{health: Health{Connected: true, QueueDepth: 1}}
	r := newTestRouter(t, Config{MaxQueueDepth: 10}, deep, ok)
	for i := 0; i < 5; i++ {
		_, meta, err := r.Query(context.Background(), i, Budget{})
		if err != nil || meta.Backend != 1 {
			t.Fatalf("backend=%d err=%v, want member 1", meta.Backend, err)
		}
	}
	if deep.callCount() != 0 {
		t.Fatal("overloaded member received traffic")
	}

	// All members beyond the gate: the router waits out the deadline for
	// one to drain, then reports the typed no-healthy error.
	all := newTestRouter(t, Config{MaxQueueDepth: 10}, deep, deep)
	_, _, err := all.Query(context.Background(), 1, Budget{Deadline: 50 * time.Millisecond})
	if !errors.Is(err, ErrNoHealthy) {
		t.Fatalf("err = %v, want ErrNoHealthy", err)
	}
}

func TestStaleRejectPolicy(t *testing.T) {
	stale := &fakeBackend{health: Health{Connected: false, StalenessNanos: int64(10 * time.Second)}}
	r := newTestRouter(t, Config{}, stale)
	_, _, err := r.Query(context.Background(), 1, Budget{
		Deadline:     50 * time.Millisecond, // waits for the member to catch up, then rejects typed
		MaxStaleness: time.Second,
	})
	if !errors.Is(err, ErrStalenessUnmet) {
		t.Fatalf("err = %v, want ErrStalenessUnmet", err)
	}
	if r.Stats().Rejected.Load() != 1 {
		t.Fatalf("rejected = %d", r.Stats().Rejected.Load())
	}
}

func TestStaleServePolicy(t *testing.T) {
	fresher := &fakeBackend{health: Health{Connected: false, StalenessNanos: int64(3 * time.Second), InstalledVID: 7}}
	staler := &fakeBackend{health: Health{Connected: false, StalenessNanos: int64(30 * time.Second)}}
	r := newTestRouter(t, Config{}, staler, fresher)
	res, meta, err := r.Query(context.Background(), 5,
		Budget{MaxStaleness: time.Second, StalePolicy: StaleServe})
	if err != nil {
		t.Fatal(err)
	}
	if res != 10 {
		t.Fatalf("res = %d", res)
	}
	if !meta.Stale || meta.Backend != 1 {
		t.Fatalf("meta = %+v, want Stale from freshest member 1", meta)
	}
	if r.Stats().StaleServed.Load() != 1 {
		t.Fatalf("stale served = %d", r.Stats().StaleServed.Load())
	}
	// Stale-served answers still count as Answered.
	if r.Stats().Answered.Load() != 1 {
		t.Fatalf("answered = %d", r.Stats().Answered.Load())
	}
}

// staleRes carries its own snapshot provenance, like exec.Result.
type staleRes struct {
	v   int
	ns  int64
	vid uint64
}

func (s staleRes) SnapshotMeta() (uint64, int64, bool) { return s.vid, s.ns, true }

type provBackend struct {
	ns  int64
	vid uint64
}

func (p *provBackend) QueryContext(_ context.Context, q int) (staleRes, error) {
	return staleRes{v: q * 2, ns: p.ns, vid: p.vid}, nil
}
func (p *provBackend) Health() Health { return Health{Connected: true} }

// A connected member whose *answer* violates the bound (stamped via
// SnapshotMeta) is stale-rejected post-answer; under StaleServe the
// freshest collected answer is served flagged.
func TestPostAnswerStalenessEnforcement(t *testing.T) {
	a := &provBackend{ns: int64(8 * time.Second), vid: 3}
	b := &provBackend{ns: int64(4 * time.Second), vid: 5}
	r, err := NewRouter[int, staleRes]([]Backend[int, staleRes]{a, b},
		Config{RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	res, meta, err := r.Query(context.Background(), 6,
		Budget{MaxStaleness: time.Second, StalePolicy: StaleServe})
	if err != nil {
		t.Fatal(err)
	}
	if !meta.Stale || res.v != 12 {
		t.Fatalf("meta=%+v res=%+v", meta, res)
	}
	if meta.StalenessNanos != int64(4*time.Second) || meta.SnapshotVID != 5 {
		t.Fatalf("served answer is not the freshest: %+v", meta)
	}
	if r.Stats().StaleRejected.Load() < 1 {
		t.Fatal("no stale rejection recorded")
	}

	// Under StaleReject the same fleet yields ErrStalenessUnmet.
	r2, _ := NewRouter[int, staleRes]([]Backend[int, staleRes]{a, b},
		Config{RetryBackoff: time.Millisecond})
	if _, _, err := r2.Query(context.Background(), 6, Budget{MaxStaleness: time.Second}); !errors.Is(err, ErrStalenessUnmet) {
		t.Fatalf("err = %v, want ErrStalenessUnmet", err)
	}
}

func TestLoadShedding(t *testing.T) {
	slow := &fakeBackend{health: healthy(), delay: 200 * time.Millisecond}
	r := newTestRouter(t, Config{MaxInFlight: 1}, slow)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, _, err := r.Query(context.Background(), 1, Budget{}); err != nil {
			t.Error(err)
		}
	}()
	time.Sleep(30 * time.Millisecond) // first query now occupies the slot
	_, _, err := r.Query(context.Background(), 2, Budget{})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	<-done
	st := r.Stats()
	if st.Shed.Load() != 1 || st.Answered.Load() != 1 {
		t.Fatalf("shed=%d answered=%d", st.Shed.Load(), st.Answered.Load())
	}
	if st.Queries.Load() != st.Answered.Load()+st.Rejected.Load()+st.Shed.Load() {
		t.Fatal("Queries != Answered + Rejected + Shed")
	}
}

func TestHedgeWins(t *testing.T) {
	slow := &fakeBackend{health: Health{Connected: true, QueueDepth: 0}, delay: 300 * time.Millisecond}
	fast := &fakeBackend{health: Health{Connected: true, QueueDepth: 1}}
	r := newTestRouter(t, Config{HedgeAfter: 20 * time.Millisecond}, slow, fast)
	t0 := time.Now()
	res, meta, err := r.Query(context.Background(), 3, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if res != 6 {
		t.Fatalf("res = %d", res)
	}
	if !meta.Hedged || !meta.HedgeWon || meta.Backend != 1 {
		t.Fatalf("meta = %+v, want hedge win from member 1", meta)
	}
	if el := time.Since(t0); el > 250*time.Millisecond {
		t.Fatalf("hedge did not cut latency: %v", el)
	}
	st := r.Stats()
	if st.Hedges.Load() != 1 || st.HedgeWins.Load() != 1 {
		t.Fatalf("hedges=%d wins=%d", st.Hedges.Load(), st.HedgeWins.Load())
	}
}

func TestClosedRouter(t *testing.T) {
	b := &fakeBackend{health: healthy()}
	r := newTestRouter(t, Config{}, b)
	r.Close()
	r.Close() // idempotent
	if _, _, err := r.Query(context.Background(), 1, Budget{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestCounterConsistency(t *testing.T) {
	flaky := &fakeBackend{health: healthy(), err: errors.New("boom")}
	good := &fakeBackend{health: Health{Connected: true, QueueDepth: 1}}
	r := newTestRouter(t, Config{RetryBackoff: time.Millisecond, FailureThreshold: 3}, flaky, good)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				r.Query(context.Background(), i, Budget{})
			}
		}(g)
	}
	wg.Wait()
	st := r.Stats()
	if st.Queries.Load() != 100 {
		t.Fatalf("queries = %d", st.Queries.Load())
	}
	if st.Queries.Load() != st.Answered.Load()+st.Rejected.Load()+st.Shed.Load() {
		t.Fatalf("Queries %d != Answered %d + Rejected %d + Shed %d",
			st.Queries.Load(), st.Answered.Load(), st.Rejected.Load(), st.Shed.Load())
	}
	var routed uint64
	for _, m := range r.members {
		routed += m.stats.Routed.Load()
	}
	if st.Attempts.Load() != routed {
		t.Fatalf("Attempts %d != Σ member routed %d", st.Attempts.Load(), routed)
	}
	if st.HedgeWins.Load() > st.Hedges.Load() {
		t.Fatal("HedgeWins > Hedges")
	}
	if int(st.Ejections.Load())-int(st.Readmits.Load()) != r.EjectedCount() {
		t.Fatal("breaker gauge out of sync with counters")
	}
}

func TestRegisterMetrics(t *testing.T) {
	a := &fakeBackend{health: healthy()}
	b := &fakeBackend{health: Health{Connected: true, QueueDepth: 1}}
	r := newTestRouter(t, Config{}, a, b)
	if _, _, err := r.Query(context.Background(), 1, Budget{}); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	r.RegisterMetrics(reg, obs.L("tier", "olap"))
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"batchdb_fleet_queries_total",
		"batchdb_fleet_ejected",
		"batchdb_fleet_inflight",
		`batchdb_fleet_member_routed_total{member="0",tier="olap"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("scrape missing %q:\n%s", want, out)
		}
	}
	if r.Members() != 2 {
		t.Fatalf("members = %d", r.Members())
	}
	_ = r.MemberHealth(0)
}

// TestWaitsOutMomentaryFullOutage pins the deadline-as-budget contract:
// when every member is momentarily unroutable (here: failing hard enough
// to stay ejected with no probe due), a query whose deadline outlives
// the outage is answered, not rejected — the router keeps re-picking,
// re-opening already-tried members, until one recovers.
func TestWaitsOutMomentaryFullOutage(t *testing.T) {
	a := &fakeBackend{health: healthy(), err: errors.New("down")}
	b := &fakeBackend{health: healthy(), err: errors.New("down")}
	cfg := Config{
		FailureThreshold: 1,
		RetryBackoff:     time.Millisecond,
		ProbeBackoff:     5 * time.Second, // no probe rescues us within the test
		MaxAttempts:      10,
	}
	r := newTestRouter(t, cfg, a, b)

	// Eject both members.
	if _, _, err := r.Query(context.Background(), 1, Budget{Deadline: 100 * time.Millisecond}); err == nil {
		t.Fatal("query against dead fleet succeeded")
	}
	if r.EjectedCount() != 2 {
		t.Fatalf("ejected = %d, want 2", r.EjectedCount())
	}

	// Heal member 1 mid-query: the router is waiting for a probe slot,
	// and member 1's probe comes due 30ms in — well inside the deadline.
	b.set(func(f *fakeBackend) { f.err = nil })
	r.members[1].mu.Lock()
	r.members[1].nextProbe = time.Now().Add(30 * time.Millisecond)
	r.members[1].mu.Unlock()
	t0 := time.Now()
	res, meta, err := r.Query(context.Background(), 21, Budget{Deadline: 2 * time.Second})
	if err != nil {
		t.Fatalf("query across momentary full outage: %v", err)
	}
	if res != 42 || meta.Backend != 1 {
		t.Fatalf("res=%d backend=%d, want 42 from member 1", res, meta.Backend)
	}
	if el := time.Since(t0); el < 20*time.Millisecond {
		t.Fatalf("answered in %v — did not actually wait for the probe", el)
	}
	if r.EjectedCount() != 1 {
		t.Fatalf("ejected = %d after readmit, want 1", r.EjectedCount())
	}
}
