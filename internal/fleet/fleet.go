// Package fleet is the OLAP replica fleet router (paper §8 elasticity;
// ROADMAP item 1). Clients submit queries to the router, never to a
// replica: the router owns health, placement, and failure handling for
// the fleet as a unit, the dispatch-tier shape of MPP systems like
// Greenplum.
//
// Robustness model:
//
//   - Per-query budgets. Every query carries a deadline and an optional
//     max-staleness bound (Budget). The deadline caps the whole routed
//     operation — queueing, retries, hedges included.
//
//   - Health-gated selection. A circuit breaker per member ejects a
//     replica after consecutive failures; ejected members receive no
//     traffic until a probe query (one at a time, exponential backoff)
//     succeeds and re-admits them. Selection additionally consults the
//     backend's live Health snapshot: members whose scheduler queue is
//     beyond MaxQueueDepth are skipped, and disconnected members whose
//     snapshot has aged past the eject bound (or the query's own
//     staleness bound) are set aside as stale-only candidates.
//
//   - Bounded retry. A failed or timed-out attempt is retried on a
//     *different* member after a doubling backoff, up to MaxAttempts,
//     within the deadline. When no member is routable at all, the
//     router waits — bounded by the deadline — for a probe to come due
//     or a member to reconnect, re-opening already-tried members, so a
//     momentary full-fleet outage shorter than the deadline degrades
//     latency, not availability.
//
//   - Hedging (optional). When an attempt's latency crosses the fleet's
//     observed p<HedgeQuantile> attempt latency (floored by HedgeAfter),
//     the router dispatches a second copy to another member and takes
//     whichever answers first. Lost hedges are abandoned, not awaited.
//
//   - Staleness enforcement. Answers are stamped with snapshot
//     provenance (via the SnapshotMeta structural interface, falling
//     back to the member's Health). An answer beyond the query's bound
//     is not silently served: under StaleReject the router retries
//     elsewhere and ultimately returns ErrStalenessUnmet; under
//     StaleServe it returns the freshest answer it found, flagged
//     Meta.Stale.
//
//   - Load shedding. Beyond MaxInFlight concurrently routed queries the
//     router rejects immediately with ErrOverloaded instead of letting
//     the fleet's queues grow without bound.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Backend is one routable replica: a context-aware query entry point
// plus a live health snapshot. *node.Node and fakes in tests implement
// it.
type Backend[Q, R any] interface {
	QueryContext(ctx context.Context, q Q) (R, error)
	Health() Health
}

// Health is a point-in-time view of one replica's fitness to serve.
type Health struct {
	// Connected reports a live, bootstrapped feed from the primary.
	Connected bool
	// InstalledVID is the snapshot version visible to queries.
	InstalledVID uint64
	// StalenessNanos is the wall-clock age of that snapshot.
	StalenessNanos int64
	// VIDLag is primary watermark minus installed VID, in transactions.
	VIDLag int64
	// QueueDepth is the scheduler's admission-queue depth.
	QueueDepth int
}

// SnapshotMetaer is implemented by results that carry their own
// snapshot provenance (exec.Result does); the router prefers it over
// the member's Health, which may have moved since the answer was
// computed.
type SnapshotMetaer interface {
	SnapshotMeta() (vid uint64, stalenessNanos int64, degraded bool)
}

// StalePolicy selects what happens when no replica can answer within
// the query's staleness bound.
type StalePolicy int

const (
	// StaleDefault defers to the router config (whose own default is
	// StaleReject).
	StaleDefault StalePolicy = iota
	// StaleReject returns ErrStalenessUnmet.
	StaleReject
	// StaleServe returns the freshest available answer, flagged
	// Meta.Stale.
	StaleServe
)

// Budget is the per-query SLO: how long the caller will wait and how
// stale an answer it will accept. Zero fields inherit router defaults
// (MaxStaleness 0 = unbounded).
type Budget struct {
	Deadline     time.Duration
	MaxStaleness time.Duration
	StalePolicy  StalePolicy
}

// Config parameterizes a Router. Zero values select the documented
// defaults; hedging is off unless HedgeAfter or HedgeQuantile is set.
type Config struct {
	// Deadline is the default per-query deadline (2s).
	Deadline time.Duration
	// MaxAttempts bounds primary dispatches per query, each to a member
	// not yet tried (3).
	MaxAttempts int
	// RetryBackoff is the pause before the first retry, doubling per
	// retry (2ms).
	RetryBackoff time.Duration
	// HedgeAfter, when > 0, hedges any attempt still unanswered after
	// this long. With HedgeQuantile it acts as the floor under the
	// adaptive threshold.
	HedgeAfter time.Duration
	// HedgeQuantile, when > 0, hedges after the fleet's observed
	// attempt-latency percentile (e.g. 95 for p95; the [0,100] scale of
	// metrics.Histogram.Percentile). Needs hedgeMinSamples observations
	// before it activates; until then HedgeAfter alone applies.
	HedgeQuantile float64
	// StalePolicy applies to queries that don't set their own
	// (StaleDefault here means StaleReject).
	StalePolicy StalePolicy
	// FailureThreshold is the consecutive-failure count that ejects a
	// member (3).
	FailureThreshold int
	// ProbeBackoff is the delay before an ejected member's first probe,
	// doubling per failed probe up to MaxProbeBackoff (50ms, 2s).
	ProbeBackoff    time.Duration
	MaxProbeBackoff time.Duration
	// MaxQueueDepth skips members whose scheduler queue is deeper (8192).
	MaxQueueDepth int
	// EjectStaleness health-gates *disconnected* members whose snapshot
	// is older than this, independent of any per-query bound (5s). A
	// connected member's staleness is transient (it collapses on the
	// next sync), so it is judged per-answer instead.
	EjectStaleness time.Duration
	// MaxInFlight sheds queries beyond this many concurrently routed
	// (4096).
	MaxInFlight int
}

func (c Config) withDefaults() Config {
	if c.Deadline <= 0 {
		c.Deadline = 2 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.ProbeBackoff <= 0 {
		c.ProbeBackoff = 50 * time.Millisecond
	}
	if c.MaxProbeBackoff <= 0 {
		c.MaxProbeBackoff = 2 * time.Second
	}
	if c.MaxQueueDepth <= 0 {
		c.MaxQueueDepth = 8192
	}
	if c.EjectStaleness <= 0 {
		c.EjectStaleness = 5 * time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4096
	}
	return c
}

// hedgeMinSamples is how many attempt-latency observations the adaptive
// hedge threshold needs before the percentile is trusted.
const hedgeMinSamples = 50

// maxPickWait caps the doubling pause between re-picks while a query
// waits, within its deadline, for any member to become routable.
const maxPickWait = 50 * time.Millisecond

// Typed routing errors. All router failures wrap one of these.
var (
	ErrNoBackends     = errors.New("fleet: no backends configured")
	ErrClosed         = errors.New("fleet: router closed")
	ErrOverloaded     = errors.New("fleet: overloaded, query shed")
	ErrNoHealthy      = errors.New("fleet: no healthy replica available")
	ErrStalenessUnmet = errors.New("fleet: no replica meets the staleness bound")
	ErrExhausted      = errors.New("fleet: retry attempts exhausted")
)

// Meta describes how one query was routed.
type Meta struct {
	// Backend is the index of the member that produced the answer (-1
	// on failure).
	Backend int
	// Attempts counts primary dispatches (1 = first try answered).
	Attempts int
	// Hedged reports a hedge was dispatched; HedgeWon that the hedge's
	// answer was the one returned.
	Hedged   bool
	HedgeWon bool
	// Stale marks an answer served beyond the requested staleness bound
	// under StaleServe. SnapshotVID/StalenessNanos/Degraded carry the
	// answer's provenance either way.
	Stale          bool
	Degraded       bool
	SnapshotVID    uint64
	StalenessNanos int64
}

// memberState is the circuit-breaker state machine:
//
//	healthy --FailureThreshold consecutive failures--> ejected
//	ejected --probe success--> healthy (re-admitted)
//	ejected --probe failure--> ejected (backoff doubled)
//
// An ejected member takes no traffic except a single in-flight probe
// query once its backoff expires.
type memberState int

const (
	stateHealthy memberState = iota
	stateEjected
)

type member[Q, R any] struct {
	backend Backend[Q, R]
	idx     int

	mu           sync.Mutex
	state        memberState
	consecFails  int
	probing      bool
	probeStarted time.Time
	probeBackoff time.Duration
	nextProbe    time.Time

	stats memberStats
}

func (m *member[Q, R]) ejectedNow() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state == stateEjected
}

// tryBeginProbe claims the member's probe slot when it is due: ejected,
// backoff expired, and no probe in flight. A probe whose caller
// vanished (deadline, abandoned hedge) is considered expired after
// expiry and may be reclaimed.
func (m *member[Q, R]) tryBeginProbe(now time.Time, expiry time.Duration) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state != stateEjected {
		return false
	}
	if m.probing && now.Sub(m.probeStarted) <= expiry {
		return false
	}
	if !m.probing && now.Before(m.nextProbe) {
		return false
	}
	m.probing = true
	m.probeStarted = now
	return true
}

func (m *member[Q, R]) recordFailure(cfg *Config, st *Stats) {
	m.stats.Failures.Inc()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.consecFails++
	switch m.state {
	case stateHealthy:
		if m.consecFails >= cfg.FailureThreshold {
			m.state = stateEjected
			m.probing = false
			m.probeBackoff = cfg.ProbeBackoff
			m.nextProbe = time.Now().Add(m.probeBackoff)
			m.stats.Ejected.Set(1)
			st.Ejections.Inc()
		}
	case stateEjected:
		if m.probing {
			m.probing = false
			m.probeBackoff *= 2
			if m.probeBackoff > cfg.MaxProbeBackoff {
				m.probeBackoff = cfg.MaxProbeBackoff
			}
		}
		m.nextProbe = time.Now().Add(m.probeBackoff)
	}
}

func (m *member[Q, R]) recordSuccess(st *Stats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state == stateEjected {
		m.state = stateHealthy
		m.stats.Ejected.Set(0)
		st.Readmits.Inc()
	}
	m.probing = false
	m.consecFails = 0
}

// Router fans queries across a fleet of replica backends.
type Router[Q, R any] struct {
	cfg     Config
	members []*member[Q, R]

	stats    Stats
	inFlight atomic.Int64
	rr       atomic.Uint64
	closed   atomic.Bool
}

// NewRouter creates a router over backends. The backends' lifecycles
// remain the caller's: Close stops routing but does not close them.
func NewRouter[Q, R any](backends []Backend[Q, R], cfg Config) (*Router[Q, R], error) {
	if len(backends) == 0 {
		return nil, ErrNoBackends
	}
	r := &Router[Q, R]{cfg: cfg.withDefaults()}
	for i, b := range backends {
		r.members = append(r.members, &member[Q, R]{backend: b, idx: i})
	}
	return r, nil
}

// Stats returns the router's counters.
func (r *Router[Q, R]) Stats() *Stats { return &r.stats }

// Members returns the fleet size.
func (r *Router[Q, R]) Members() int { return len(r.members) }

// EjectedCount returns how many members the breaker currently holds
// ejected. Invariant: Ejections − Readmits == EjectedCount.
func (r *Router[Q, R]) EjectedCount() int {
	n := 0
	for _, m := range r.members {
		if m.ejectedNow() {
			n++
		}
	}
	return n
}

// MemberHealth returns member i's live health snapshot.
func (r *Router[Q, R]) MemberHealth(i int) Health { return r.members[i].backend.Health() }

// Close stops routing: subsequent queries return ErrClosed. In-flight
// queries finish. Idempotent.
func (r *Router[Q, R]) Close() { r.closed.Store(true) }

type pickKind int

const (
	pickHealthy pickKind = iota
	pickProbe
	pickStale
)

// pick selects the next member to try: a due probe first (so ejected
// members regain traffic even while the rest of the fleet is healthy),
// else the least-loaded healthy member (round-robin tiebreak), else —
// under StaleServe only — the freshest stale-only candidate. staleOnly
// reports that candidates existed but all exceeded a staleness gate.
func (r *Router[Q, R]) pick(tried map[int]bool, b Budget, policy StalePolicy) (idx int, kind pickKind, staleOnly bool) {
	n := len(r.members)
	start := int(r.rr.Add(1)) % n
	now := time.Now()
	best, bestDepth := -1, 0
	probeIdx := -1
	staleIdx, staleBest := -1, int64(0)
	sawStale := false
	for o := 0; o < n; o++ {
		i := (start + o) % n
		if tried[i] {
			continue
		}
		m := r.members[i]
		if m.ejectedNow() {
			if probeIdx < 0 && m.tryBeginProbe(now, 2*r.cfg.Deadline) {
				probeIdx = i
			}
			continue
		}
		h := m.backend.Health()
		if !h.Connected {
			over := h.StalenessNanos > int64(r.cfg.EjectStaleness) ||
				(b.MaxStaleness > 0 && h.StalenessNanos > int64(b.MaxStaleness))
			if over {
				sawStale = true
				if staleIdx < 0 || h.StalenessNanos < staleBest {
					staleIdx, staleBest = i, h.StalenessNanos
				}
				continue
			}
		}
		if h.QueueDepth > r.cfg.MaxQueueDepth {
			continue
		}
		if best < 0 || h.QueueDepth < bestDepth {
			best, bestDepth = i, h.QueueDepth
		}
	}
	if probeIdx >= 0 {
		return probeIdx, pickProbe, false
	}
	if best >= 0 {
		return best, pickHealthy, false
	}
	if policy == StaleServe && staleIdx >= 0 {
		return staleIdx, pickStale, true
	}
	return -1, pickHealthy, sawStale
}

// pickHedge selects a healthy member for a hedge dispatch: never a
// probe, never a stale-only candidate — a hedge exists to beat a slow
// attempt, not to gamble on a degraded member.
func (r *Router[Q, R]) pickHedge(tried map[int]bool, b Budget) (int, bool) {
	n := len(r.members)
	start := int(r.rr.Add(1)) % n
	best, bestDepth := -1, 0
	for o := 0; o < n; o++ {
		i := (start + o) % n
		if tried[i] {
			continue
		}
		m := r.members[i]
		if m.ejectedNow() {
			continue
		}
		h := m.backend.Health()
		if !h.Connected &&
			(h.StalenessNanos > int64(r.cfg.EjectStaleness) ||
				(b.MaxStaleness > 0 && h.StalenessNanos > int64(b.MaxStaleness))) {
			continue
		}
		if h.QueueDepth > r.cfg.MaxQueueDepth {
			continue
		}
		if best < 0 || h.QueueDepth < bestDepth {
			best, bestDepth = i, h.QueueDepth
		}
	}
	return best, best >= 0
}

type outcome[R any] struct {
	res   R
	err   error
	idx   int
	hedge bool
}

// dispatch runs one query copy on member m. Success and genuine failure
// feed the breaker; context.Canceled does not — a canceled dispatch is
// a hedge loser or an abandoned caller, not evidence about the member.
// A deadline expiry *is* evidence (the member was too slow) and counts.
func (r *Router[Q, R]) dispatch(ctx context.Context, m *member[Q, R], q Q, hedge bool, ch chan<- outcome[R]) {
	t0 := time.Now()
	res, err := m.backend.QueryContext(ctx, q)
	if err != nil {
		if !errors.Is(err, context.Canceled) {
			m.recordFailure(&r.cfg, &r.stats)
			r.stats.Failures.Inc()
		}
	} else {
		m.recordSuccess(&r.stats)
		r.stats.AttemptLatency.RecordSince(t0)
	}
	ch <- outcome[R]{res: res, err: err, idx: m.idx, hedge: hedge}
}

// hedgeDelay computes the current hedge threshold; 0 disables hedging.
func (r *Router[Q, R]) hedgeDelay() time.Duration {
	q, after := r.cfg.HedgeQuantile, r.cfg.HedgeAfter
	if q <= 0 && after <= 0 {
		return 0
	}
	if q > 0 && r.stats.AttemptLatency.Count() >= hedgeMinSamples {
		if p := time.Duration(r.stats.AttemptLatency.Percentile(q)); p > after {
			return p
		}
	}
	return after
}

// attempt dispatches q to member idx and waits for the first answer,
// hedging to a second member if the hedge threshold passes first.
// Returns the winning member's index. Losing dispatches are abandoned
// (the outcome channel is buffered for both).
func (r *Router[Q, R]) attempt(ctx context.Context, q Q, idx int, tried map[int]bool, b Budget, meta *Meta) (R, int, error) {
	var zero R
	ch := make(chan outcome[R], 2)
	m := r.members[idx]
	m.stats.Routed.Inc()
	r.stats.Attempts.Inc()
	go r.dispatch(ctx, m, q, false, ch)

	var hedgeC <-chan time.Time
	if d := r.hedgeDelay(); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}
	pending := 1
	var firstErr error
	for pending > 0 {
		select {
		case out := <-ch:
			pending--
			if out.err == nil {
				if out.hedge {
					meta.HedgeWon = true
					r.stats.HedgeWins.Inc()
				}
				return out.res, out.idx, nil
			}
			if firstErr == nil {
				firstErr = out.err
			}
		case <-hedgeC:
			hedgeC = nil
			if hidx, ok := r.pickHedge(tried, b); ok {
				tried[hidx] = true
				meta.Hedged = true
				r.stats.Hedges.Inc()
				r.stats.Attempts.Inc()
				hm := r.members[hidx]
				hm.stats.Routed.Inc()
				pending++
				go r.dispatch(ctx, hm, q, true, ch)
			}
		case <-ctx.Done():
			return zero, -1, ctx.Err()
		}
	}
	return zero, -1, firstErr
}

// sleepCtx pauses for d or until ctx expires; reports whether the full
// pause elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// provenanceOf extracts an answer's snapshot provenance, preferring the
// result's own stamp over the member's (possibly newer) health.
func provenanceOf[R any](res R, h Health) (vid uint64, ns int64, degraded bool) {
	if sm, ok := any(res).(SnapshotMetaer); ok {
		return sm.SnapshotMeta()
	}
	return h.InstalledVID, h.StalenessNanos, !h.Connected
}

type staleBest[R any] struct {
	res  R
	meta Meta
}

// Query routes one query through the fleet under budget b and reports
// how it was routed. Exactly one of three outcomes is counted per call:
// Answered (success, including stale-served), Shed (load rejection), or
// Rejected (any other error).
func (r *Router[Q, R]) Query(ctx context.Context, q Q, b Budget) (R, Meta, error) {
	var zero R
	meta := Meta{Backend: -1}
	r.stats.Queries.Inc()
	if r.closed.Load() {
		r.stats.Rejected.Inc()
		return zero, meta, ErrClosed
	}
	if cur := r.inFlight.Add(1); cur > int64(r.cfg.MaxInFlight) {
		r.inFlight.Add(-1)
		r.stats.Shed.Inc()
		return zero, meta, fmt.Errorf("fleet: %d queries in flight: %w", cur-1, ErrOverloaded)
	}
	defer r.inFlight.Add(-1)

	t0 := time.Now()
	res, m, err := r.route(ctx, q, b, &meta)
	r.stats.Latency.RecordSince(t0)
	if err != nil {
		r.stats.Rejected.Inc()
		return zero, meta, err
	}
	r.stats.Answered.Inc()
	return res, m, nil
}

func (r *Router[Q, R]) route(ctx context.Context, q Q, b Budget, meta *Meta) (R, Meta, error) {
	var zero R
	deadline := b.Deadline
	if deadline <= 0 {
		deadline = r.cfg.Deadline
	}
	ctx, cancel := context.WithTimeout(ctx, deadline)
	defer cancel()
	policy := b.StalePolicy
	if policy == StaleDefault {
		policy = r.cfg.StalePolicy
	}
	if policy == StaleDefault {
		policy = StaleReject
	}

	tried := make(map[int]bool, len(r.members))
	var best *staleBest[R]
	var lastErr error
	sawStaleOnly := false
	backoff := r.cfg.RetryBackoff
	waitPause := r.cfg.RetryBackoff
	for try := 0; try < r.cfg.MaxAttempts; try++ {
		if try > 0 {
			r.stats.Retries.Inc()
			if !sleepCtx(ctx, backoff) {
				lastErr = ctx.Err()
				break
			}
			backoff *= 2
		}
		var idx int
		var kind pickKind
		for {
			var staleOnly bool
			idx, kind, staleOnly = r.pick(tried, b, policy)
			sawStaleOnly = sawStaleOnly || staleOnly || kind == pickStale
			if idx >= 0 {
				break
			}
			// Nothing is routable right now — every candidate is already
			// tried, ejected with no probe due, or gated. The deadline,
			// not one unlucky pick, is the query's budget: re-open tried
			// members (they may have recovered or resynced) and wait for
			// a probe to come due or a member to reconnect. A fleet that
			// goes fully dark for a moment then answers within the
			// deadline is a success, not a rejection.
			if len(tried) > 0 {
				clear(tried)
			}
			if !sleepCtx(ctx, waitPause) {
				break
			}
			if waitPause *= 2; waitPause > maxPickWait {
				waitPause = maxPickWait
			}
		}
		if idx < 0 {
			break // deadline expired while waiting for a routable member
		}
		tried[idx] = true
		if kind == pickProbe {
			r.stats.Probes.Inc()
		}
		meta.Attempts++
		res, winIdx, err := r.attempt(ctx, q, idx, tried, b, meta)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				break
			}
			continue
		}
		meta.Backend = winIdx
		vid, ns, degraded := provenanceOf(res, r.members[winIdx].backend.Health())
		meta.SnapshotVID, meta.StalenessNanos, meta.Degraded = vid, ns, degraded
		if b.MaxStaleness > 0 && ns > int64(b.MaxStaleness) {
			sawStaleOnly = true
			r.stats.StaleRejected.Inc()
			if best == nil || ns < best.meta.StalenessNanos {
				best = &staleBest[R]{res: res, meta: *meta}
			}
			lastErr = fmt.Errorf("fleet: replica %d staleness %v exceeds bound %v: %w",
				winIdx, time.Duration(ns), b.MaxStaleness, ErrStalenessUnmet)
			continue
		}
		return res, *meta, nil
	}

	if best != nil && policy == StaleServe {
		m := best.meta
		m.Stale = true
		r.stats.StaleServed.Inc()
		return best.res, m, nil
	}
	switch {
	case lastErr == nil && sawStaleOnly:
		lastErr = ErrStalenessUnmet
	case lastErr == nil:
		lastErr = ErrNoHealthy
	}
	if meta.Attempts >= r.cfg.MaxAttempts {
		return zero, *meta, fmt.Errorf("%w (%d attempts): %w", ErrExhausted, meta.Attempts, lastErr)
	}
	return zero, *meta, lastErr
}
