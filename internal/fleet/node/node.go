// Package node wires one remote OLAP replica node: a supervised
// replication feed (replica.Supervisor), a local columnar replica, the
// shared-execution engine, and a batch-at-a-time scheduler. It is the
// fleet.Backend the router fans queries across, factored out of the
// root package so internal consumers (benchkit's chaos harness, the
// fleet tests, batchdb-server) can build fleets without importing the
// public API.
package node

import (
	"context"
	"time"

	"batchdb/internal/fleet"
	"batchdb/internal/network"
	"batchdb/internal/obs"
	"batchdb/internal/olap"
	"batchdb/internal/olap/exec"
	"batchdb/internal/replica"
)

// Config parameterizes one replica node. The replica itself (tables
// created, zone maps/compression enabled) is supplied by the caller, so
// any schema set — root DB tables, CH-benCHmark, test fixtures — wires
// the same way.
type Config struct {
	// Workers bounds scan/build/apply parallelism (default 4).
	Workers int
	// MorselTuples is the executor's scan morsel size (0 = default).
	MorselTuples int
	// DisableVectorized turns off the compressed-block predicate
	// kernels (set when the replica has no zone maps or compression).
	DisableVectorized bool
	// Retry, Transport, ReconnectPause, Fault parameterize the
	// supervised connection exactly as replica.SupervisorConfig. Zero
	// Send/Grant timeouts default to 10s.
	Retry          network.RetryPolicy
	Transport      network.Options
	ReconnectPause time.Duration
	Fault          network.FaultPolicy
	// Metrics, when non-nil, receives the node's dispatcher, freshness,
	// and supervisor instruments under MetricsLabels.
	Metrics       *obs.Registry
	MetricsLabels []obs.Label
}

// Node is one remote analytical replica node. It implements
// fleet.Backend[*exec.Query, exec.Result].
type Node struct {
	sup   *replica.Supervisor
	rep   *olap.Replica
	execE *exec.Engine
	sched *olap.Scheduler[*exec.Query, exec.Result]
}

// Connect dials primaryAddr, bootstraps rep from the primary's
// snapshot, and starts the node's scheduler. rep must already have its
// tables created (matching the primary's analytical set).
func Connect(primaryAddr string, rep *olap.Replica, cfg Config) (*Node, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Transport.SendTimeout <= 0 {
		cfg.Transport.SendTimeout = 10 * time.Second
	}
	if cfg.Transport.GrantTimeout <= 0 {
		cfg.Transport.GrantTimeout = 10 * time.Second
	}
	sup := replica.NewSupervisor(primaryAddr, rep, replica.SupervisorConfig{
		Retry:          cfg.Retry,
		Transport:      cfg.Transport,
		ReconnectPause: cfg.ReconnectPause,
		Fault:          cfg.Fault,
	})
	sup.Start()
	if _, err := sup.WaitBootstrap(); err != nil {
		sup.Close()
		return nil, err
	}
	n := &Node{sup: sup, rep: rep}
	rep.SetApplyWorkers(cfg.Workers)
	n.execE = exec.NewEngine(rep, cfg.Workers)
	if cfg.MorselTuples > 0 {
		n.execE.MorselTuples = cfg.MorselTuples
	}
	n.execE.DisableVectorized = cfg.DisableVectorized
	n.sched = olap.NewScheduler[*exec.Query, exec.Result](rep, sup, n.execE.RunBatch)
	n.execE.AttachStats(n.sched.Stats())
	n.execE.AttachFreshness(n.sched.Freshness())
	if cfg.Metrics != nil {
		n.sched.RegisterMetrics(cfg.Metrics, cfg.MetricsLabels...)
		sup.RegisterMetrics(cfg.Metrics, cfg.MetricsLabels...)
	}
	n.sched.Start()
	return n, nil
}

// Query submits one analytical query to this node's batch schedule.
func (n *Node) Query(q *exec.Query) (exec.Result, error) {
	return n.QueryContext(context.Background(), q)
}

// QueryContext submits one analytical query, honoring ctx. Answers
// computed while the node's feed from the primary is down are marked
// Degraded: the snapshot VID and wall-clock staleness stamped by the
// engine then describe data that cannot advance until resync, so
// callers (and the fleet router) can tell a stale answer from a fresh
// one instead of receiving them indistinguishably.
func (n *Node) QueryContext(ctx context.Context, q *exec.Query) (exec.Result, error) {
	res, err := n.sched.QueryContext(ctx, q)
	if err != nil {
		return res, err
	}
	if !n.sup.Status().Connected {
		res.Degraded = true
		// Re-stamp staleness at answer time: during an outage it keeps
		// growing past the batch-start stamp, and underreporting
		// staleness is the one direction the bound contract forbids.
		if ns := n.sched.Freshness().StalenessNanos(); ns > res.StalenessNanos {
			res.StalenessNanos = ns
		}
	}
	return res, nil
}

// Health implements fleet.Backend: the supervisor's connection state
// plus the freshness tracker's live snapshot-age signals and the
// scheduler's admission-queue depth.
func (n *Node) Health() fleet.Health {
	f := n.sched.Freshness()
	return fleet.Health{
		Connected:      n.sup.Status().Connected,
		InstalledVID:   f.InstalledVID(),
		StalenessNanos: f.StalenessNanos(),
		VIDLag:         f.VIDLag(),
		QueueDepth:     n.sched.QueueDepth(),
	}
}

// Stats returns the node's dispatcher counters.
func (n *Node) Stats() *olap.SchedulerStats { return n.sched.Stats() }

// Replica exposes the node's local replica state.
func (n *Node) Replica() *olap.Replica { return n.rep }

// Engine exposes the node's executor (ablation toggles).
func (n *Node) Engine() *exec.Engine { return n.execE }

// Freshness returns the node's snapshot-freshness tracker.
func (n *Node) Freshness() *obs.Freshness { return n.sched.Freshness() }

// TransportStats returns the node's network counters.
func (n *Node) TransportStats() *network.Stats { return n.sup.NetStats() }

// ReplicaStats returns the node's robustness counters.
func (n *Node) ReplicaStats() *replica.Stats { return n.sup.Stats() }

// Status reports the replication channel's health.
func (n *Node) Status() replica.Status { return n.sup.Status() }

// KillConnection severs the node's current connection to the primary —
// a fault hook for tests and drills. The node reconnects and resyncs.
func (n *Node) KillConnection() { n.sup.KillConnection() }

// InjectFault installs a fault policy on the node's current connection.
func (n *Node) InjectFault(p network.FaultPolicy) { n.sup.InjectFault(p) }

// Close stops the node's scheduler and disconnects.
func (n *Node) Close() {
	n.sched.Close()
	n.sup.Close()
}
