package network

import "batchdb/internal/obs"

// Register exposes the transport counters through reg as registry
// views.
func (s *Stats) Register(reg *obs.Registry, labels ...obs.Label) {
	with := func(extra ...obs.Label) []obs.Label {
		return append(append([]obs.Label(nil), labels...), extra...)
	}
	reg.ObserveCounter("batchdb_net_msgs_total",
		"Frames sent by path.", &s.EagerMsgs, with(obs.L("path", "eager"))...)
	reg.ObserveCounter("batchdb_net_msgs_total",
		"Frames sent by path.", &s.RendezvousMsgs, with(obs.L("path", "rendezvous"))...)
	reg.ObserveCounter("batchdb_net_bytes_total",
		"Payload bytes by direction.", &s.BytesSent, with(obs.L("dir", "sent"))...)
	reg.ObserveCounter("batchdb_net_bytes_total",
		"Payload bytes by direction.", &s.BytesReceived, with(obs.L("dir", "received"))...)
	reg.ObserveCounter("batchdb_net_buffers_total",
		"Frame buffers by origin.", &s.BuffersReused, with(obs.L("origin", "reused"))...)
	reg.ObserveCounter("batchdb_net_buffers_total",
		"Frame buffers by origin.", &s.BuffersAlloced, with(obs.L("origin", "alloced"))...)
	reg.ObserveCounter("batchdb_net_dial_retries_total",
		"Dial attempts beyond each first try.", &s.Retries, labels...)
	reg.ObserveCounter("batchdb_net_dropped_grants_total",
		"Rendezvous grants that arrived with no waiting sender.", &s.DroppedGrants, labels...)
	reg.ObserveCounter("batchdb_net_grant_timeouts_total",
		"Rendezvous handshakes abandoned on grant deadline.", &s.GrantTimeouts, labels...)
	reg.ObserveCounter("batchdb_net_severed_total",
		"Connections that transitioned to failed.", &s.Severed, labels...)
}
