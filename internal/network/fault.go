package network

import (
	"errors"
	"sync/atomic"
	"time"
)

// FaultDir distinguishes the two directions a FaultPolicy observes on
// one connection.
type FaultDir uint8

const (
	// FaultSend frames are about to be written by this side.
	FaultSend FaultDir = iota
	// FaultRecv frames were just read from the peer.
	FaultRecv
)

// FaultAction is a FaultPolicy's verdict for one frame.
type FaultAction uint8

const (
	// FaultPass lets the frame through untouched.
	FaultPass FaultAction = iota
	// FaultDrop swallows the frame: a sent frame is reported as
	// delivered without touching the wire; a received frame is discarded
	// before dispatch. Dropping control frames (grants, announcements)
	// deliberately desynchronizes the handshake — that is the point: it
	// exercises the sender's grant deadline exactly like a real loss.
	FaultDrop
	// FaultSever fails the connection at this frame boundary.
	FaultSever
)

// errInjectedSever marks a connection failed by a FaultPolicy.
var errInjectedSever = errors.New("network: connection severed by fault policy")

// IsInjectedFault reports whether err originated from a FaultSever
// verdict, so tests can tell injected failures from organic ones.
func IsInjectedFault(err error) bool { return errors.Is(err, errInjectedSever) }

// FaultPolicy injects deterministic transport faults at frame
// granularity. Frame is consulted once per frame with the frame kind
// (FrameEager, FrameRendezvous, FrameGrant, FrameBulk), the application
// message type, and the payload length; the returned delay (if any) is
// applied before the action. Implementations must be safe for
// concurrent use: Send may run from many goroutines.
type FaultPolicy interface {
	Frame(dir FaultDir, kind, msgType uint8, payloadLen int) (FaultAction, time.Duration)
}

// FaultFunc adapts a function to a FaultPolicy.
type FaultFunc func(dir FaultDir, kind, msgType uint8, payloadLen int) (FaultAction, time.Duration)

// Frame implements FaultPolicy.
func (f FaultFunc) Frame(dir FaultDir, kind, msgType uint8, payloadLen int) (FaultAction, time.Duration) {
	return f(dir, kind, msgType, payloadLen)
}

// DropKind drops every frame of the given kind in the given direction —
// e.g. DropKind(FaultRecv, FrameGrant) starves rendezvous senders to
// exercise their grant deadline.
func DropKind(dir FaultDir, kind uint8) FaultPolicy {
	return FaultFunc(func(d FaultDir, k, _ uint8, _ int) (FaultAction, time.Duration) {
		if d == dir && k == kind {
			return FaultDrop, 0
		}
		return FaultPass, 0
	})
}

// SeverAfter severs the connection when the n-th frame (1-based) in the
// given direction is observed; earlier and later frames pass. Firing
// exactly once lets a reconnecting client recover on its next
// connection even when the policy is reinstalled.
func SeverAfter(dir FaultDir, n int) FaultPolicy {
	var seen atomic.Int64
	return FaultFunc(func(d FaultDir, _, _ uint8, _ int) (FaultAction, time.Duration) {
		if d != dir {
			return FaultPass, 0
		}
		if seen.Add(1) == int64(n) {
			return FaultSever, 0
		}
		return FaultPass, 0
	})
}

// DelayAll sleeps d before every frame in the given direction — a
// deterministic slow-network model.
func DelayAll(dir FaultDir, d time.Duration) FaultPolicy {
	return FaultFunc(func(dd FaultDir, _, _ uint8, _ int) (FaultAction, time.Duration) {
		if dd == dir {
			return FaultPass, d
		}
		return FaultPass, 0
	})
}

type faultHolder struct{ p FaultPolicy }

// SetFaultPolicy installs p on the connection; nil removes the current
// policy. Safe to call concurrently with Send/Recv.
func (c *Conn) SetFaultPolicy(p FaultPolicy) {
	if p == nil {
		c.fault.Store(nil)
		return
	}
	c.fault.Store(&faultHolder{p: p})
}

// faultAction consults the installed policy (if any) for one frame and
// applies its delay.
func (c *Conn) faultAction(dir FaultDir, kind, msgType uint8, payloadLen int) FaultAction {
	h := c.fault.Load()
	if h == nil {
		return FaultPass
	}
	act, d := h.p.Frame(dir, kind, msgType, payloadLen)
	if d > 0 {
		time.Sleep(d)
	}
	return act
}
