// Package network is BatchDB's transport for shipping updates between
// machines (paper §6).
//
// The paper uses RDMA over 4xFDR InfiniBand; this machine has neither,
// so the package substitutes a TCP transport that mirrors the paper's
// protocol structure rather than its latency constants:
//
//   - Small messages travel on the eager path: they are written
//     directly, and the receiver lands them in pre-registered receive
//     buffers drawn from a pool (the analogue of two-sided RDMA into
//     registered buffers).
//   - Messages larger than EagerLimit use a rendezvous handshake: the
//     sender first transmits the required size, the receiver allocates
//     and "registers" a buffer from its large-buffer pool and replies
//     with a grant, and only then does the bulk transfer proceed (the
//     analogue of the paper's handshake + one-sided RDMA write). To
//     reduce allocation and registration cost, large buffers are pooled
//     and reused — exactly the paper's buffer-pool motivation.
//
// The paper assumes the replication channel is always available; a TCP
// substitute cannot, so the transport treats failure as a first-class
// state. A connection that errors (peer death, deadline, injected
// fault, Close) transitions to failed exactly once: the first error is
// recorded, Done() is closed, and every sender blocked in a rendezvous
// handshake is woken with that error instead of hanging. Rendezvous
// grants are correlated with their senders through a FIFO waiter queue
// (grants arrive in the order the rendezvous announcements were
// written, because the stream is ordered), so concurrent large sends
// never steal or drop each other's grants. Optional per-frame write
// deadlines and a grant deadline bound how long a send can stall on a
// sick peer, and DialRetry adds exponential backoff with jitter for
// connection establishment. A FaultPolicy hook injects deterministic
// drop/delay/sever faults at frame granularity so every failure mode is
// testable without real network flakiness.
//
// The code path that matters to BatchDB — serialize update batches,
// ship them, hand them to the remote replica — is identical in shape;
// only the wire is slower. Statistics expose which path each message
// took so benchmarks can report protocol behaviour.
package network

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"batchdb/internal/metrics"
)

// EagerLimit is the largest payload sent without a rendezvous handshake.
// The paper uses 1024 KB receive buffers; we keep the same value.
const EagerLimit = 1 << 20

// Frame kinds on the wire. Exported so FaultPolicy implementations can
// target specific protocol steps (e.g. drop grants to exercise the
// sender's grant deadline).
const (
	FrameEager      = 0x01
	FrameRendezvous = 0x02 // header only: announces a large transfer
	FrameGrant      = 0x03 // receiver's go-ahead
	FrameBulk       = 0x04 // the large payload itself
)

// Stats counts transport events.
type Stats struct {
	EagerMsgs      metrics.Counter
	RendezvousMsgs metrics.Counter
	BytesSent      metrics.Counter
	BytesReceived  metrics.Counter
	BuffersReused  metrics.Counter
	BuffersAlloced metrics.Counter
	// Retries counts dial attempts beyond each first try (DialRetry).
	Retries metrics.Counter
	// DroppedGrants counts grants that arrived with no waiting sender —
	// zero in a healthy connection; non-zero indicates a protocol bug or
	// an injected fault.
	DroppedGrants metrics.Counter
	// GrantTimeouts counts rendezvous handshakes abandoned because the
	// grant deadline expired.
	GrantTimeouts metrics.Counter
	// Severed counts connections that transitioned to failed (error,
	// deadline, injected fault, or Close).
	Severed metrics.Counter
}

// Options bounds how long a connection may stall on a sick peer. The
// zero value disables all deadlines (trusted-loopback behaviour).
type Options struct {
	// SendTimeout is the write deadline applied to each frame write
	// (including its flush). Zero means no deadline.
	SendTimeout time.Duration
	// GrantTimeout bounds how long a rendezvous sender waits for the
	// receiver's grant. Zero means wait until the connection fails.
	GrantTimeout time.Duration
}

// ErrClosed reports use of a connection after Close.
var ErrClosed = errors.New("network: connection closed")

// Conn is a message-oriented connection. Send may be called from
// multiple goroutines; Recv must be called from a single reader
// goroutine (the usual demultiplexer pattern).
type Conn struct {
	c    net.Conn
	r    *bufio.Reader
	wm   sync.Mutex
	w    *bufio.Writer
	opts Options

	// waiters is the FIFO of senders awaiting rendezvous grants, in the
	// order their announcements hit the wire: the stream is ordered, so
	// the k-th grant received answers the k-th announcement written.
	gm      sync.Mutex
	waiters []chan struct{}

	failOnce sync.Once
	done     chan struct{}
	errMu    sync.Mutex
	err      error

	fault atomic.Pointer[faultHolder]

	pool  *bufferPool
	stats *Stats
}

// NewConn wraps an established net.Conn with no deadlines.
func NewConn(c net.Conn, stats *Stats) *Conn {
	return NewConnOpts(c, stats, Options{})
}

// NewConnOpts wraps an established net.Conn with the given deadlines.
func NewConnOpts(c net.Conn, stats *Stats, opts Options) *Conn {
	if stats == nil {
		stats = &Stats{}
	}
	return &Conn{
		c:     c,
		r:     bufio.NewReaderSize(c, 1<<20),
		w:     bufio.NewWriterSize(c, 1<<20),
		opts:  opts,
		done:  make(chan struct{}),
		pool:  newBufferPool(stats),
		stats: stats,
	}
}

// Dial connects to a BatchDB peer.
func Dial(addr string, stats *Stats) (*Conn, error) {
	return DialOpts(addr, stats, Options{})
}

// DialOpts connects to a BatchDB peer with the given deadlines.
func DialOpts(addr string, stats *Stats, opts Options) (*Conn, error) {
	return dialOnce(addr, stats, opts, 0)
}

func dialOnce(addr string, stats *Stats, opts Options, timeout time.Duration) (*Conn, error) {
	var c net.Conn
	var err error
	if timeout > 0 {
		c, err = net.DialTimeout("tcp", addr, timeout)
	} else {
		c, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, fmt.Errorf("network: dial %s: %w", addr, err)
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return NewConnOpts(c, stats, opts), nil
}

// RetryPolicy parameterizes DialRetry: per-attempt timeout plus
// exponential backoff with jitter between attempts.
type RetryPolicy struct {
	// Attempts is the total number of dial attempts (values below 1 mean
	// a single try).
	Attempts int
	// BaseDelay is the backoff before the second attempt (default 25ms);
	// it doubles per attempt up to MaxDelay (default 1s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter adds a uniformly random fraction of the current delay, in
	// [0, Jitter]; it decorrelates reconnect storms (default 0.2).
	Jitter float64
	// DialTimeout bounds each individual attempt. Zero means none.
	DialTimeout time.Duration
}

func (rp RetryPolicy) withDefaults() RetryPolicy {
	if rp.Attempts < 1 {
		rp.Attempts = 1
	}
	if rp.BaseDelay <= 0 {
		rp.BaseDelay = 25 * time.Millisecond
	}
	if rp.MaxDelay <= 0 {
		rp.MaxDelay = time.Second
	}
	if rp.Jitter <= 0 {
		rp.Jitter = 0.2
	}
	return rp
}

// DialRetry dials with retry and exponential backoff + jitter. A nil
// cancel channel disables cancellation; closing it aborts the next
// backoff sleep and returns the last dial error.
func DialRetry(addr string, stats *Stats, opts Options, rp RetryPolicy, cancel <-chan struct{}) (*Conn, error) {
	if stats == nil {
		stats = &Stats{}
	}
	rp = rp.withDefaults()
	delay := rp.BaseDelay
	var lastErr error
	for i := 0; i < rp.Attempts; i++ {
		if i > 0 {
			d := delay + time.Duration(rand.Float64()*rp.Jitter*float64(delay))
			select {
			case <-time.After(d):
			case <-cancel:
				return nil, fmt.Errorf("network: dial %s canceled: %w", addr, lastErr)
			}
			delay *= 2
			if delay > rp.MaxDelay {
				delay = rp.MaxDelay
			}
			stats.Retries.Inc()
		}
		c, err := dialOnce(addr, stats, opts, rp.DialTimeout)
		if err == nil {
			return c, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// Stats returns the connection's transport counters.
func (c *Conn) Stats() *Stats { return c.stats }

// Done is closed when the connection has failed (error or Close); Err
// then reports the cause.
func (c *Conn) Done() <-chan struct{} { return c.done }

// Err returns the error that failed the connection, or nil while it is
// healthy. The first failure wins; later errors are discarded.
func (c *Conn) Err() error {
	select {
	case <-c.done:
	default:
		return nil
	}
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

// fail transitions the connection to failed exactly once: it records
// the cause, closes Done (waking senders blocked in rendezvous waits),
// and tears down the socket (waking the Recv loop).
func (c *Conn) fail(err error) {
	c.failOnce.Do(func() {
		c.errMu.Lock()
		c.err = err
		c.errMu.Unlock()
		close(c.done)
		c.c.Close()
		c.stats.Severed.Inc()
	})
}

// Close tears down the connection. Senders blocked in Send return
// ErrClosed instead of hanging.
func (c *Conn) Close() error {
	c.fail(ErrClosed)
	return nil
}

// Send transmits one message of the given application type. Payloads at
// or below EagerLimit go out immediately; larger ones run the rendezvous
// handshake and block until the receiver grants a buffer, the grant
// deadline expires, or the connection fails.
func (c *Conn) Send(msgType uint8, payload []byte) error {
	if err := c.Err(); err != nil {
		return err
	}
	if len(payload) <= EagerLimit {
		switch c.faultAction(FaultSend, FrameEager, msgType, len(payload)) {
		case FaultDrop:
			return nil // simulated lost message
		case FaultSever:
			c.fail(errInjectedSever)
			return c.Err()
		}
		if err := c.sendLocked(FrameEager, msgType, payload); err != nil {
			return err
		}
		c.stats.EagerMsgs.Inc()
		c.stats.BytesSent.Add(uint64(len(payload)))
		return nil
	}

	// Rendezvous: announce size, wait for the grant, then bulk-send. The
	// waiter is enqueued while the write lock is held so queue order
	// matches the wire order of announcements — that is what correlates
	// the k-th incoming grant with the k-th waiting sender.
	switch c.faultAction(FaultSend, FrameRendezvous, msgType, len(payload)) {
	case FaultSever:
		c.fail(errInjectedSever)
		return c.Err()
	case FaultDrop:
		// Simulate a lost announcement: the sender still waits (and times
		// out) as it would on a real loss, but nothing hits the wire.
		return c.waitGrant(make(chan struct{}, 1))
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(payload)))
	waiter := make(chan struct{}, 1)
	c.wm.Lock()
	c.gm.Lock()
	c.waiters = append(c.waiters, waiter)
	c.gm.Unlock()
	err := c.writeFlushLocked(FrameRendezvous, msgType, hdr[:])
	c.wm.Unlock()
	if err != nil {
		c.fail(err)
		return c.Err()
	}
	if err := c.waitGrant(waiter); err != nil {
		return err
	}
	switch c.faultAction(FaultSend, FrameBulk, msgType, len(payload)) {
	case FaultDrop:
		return nil
	case FaultSever:
		c.fail(errInjectedSever)
		return c.Err()
	}
	if err := c.sendLocked(FrameBulk, msgType, payload); err != nil {
		return err
	}
	c.stats.RendezvousMsgs.Inc()
	c.stats.BytesSent.Add(uint64(len(payload)))
	return nil
}

// waitGrant blocks until the receiver's grant arrives, the grant
// deadline expires, or the connection fails. On the no-grant exits the
// sender's waiter is removed from the queue, keeping the FIFO invariant
// (queue position k == k-th outstanding announcement) self-contained
// rather than relying on the connection being failed right after.
func (c *Conn) waitGrant(waiter chan struct{}) error {
	var timeoutCh <-chan time.Time
	if c.opts.GrantTimeout > 0 {
		t := time.NewTimer(c.opts.GrantTimeout)
		defer t.Stop()
		timeoutCh = t.C
	}
	select {
	case <-waiter:
		return nil
	case <-c.done:
		c.removeWaiter(waiter)
		return fmt.Errorf("network: connection failed awaiting rendezvous grant: %w", c.Err())
	case <-timeoutCh:
		c.stats.GrantTimeouts.Inc()
		c.removeWaiter(waiter)
		// The protocol state is undefined now (the receiver may still
		// send the grant later), so the connection cannot be reused.
		c.fail(fmt.Errorf("network: rendezvous grant timeout after %v", c.opts.GrantTimeout))
		return c.Err()
	}
}

// removeWaiter takes one sender's waiter out of the grant queue (no-op
// when a concurrent grant already popped it, or when the waiter was
// never enqueued — the simulated-loss path).
func (c *Conn) removeWaiter(waiter chan struct{}) {
	c.gm.Lock()
	for i, w := range c.waiters {
		if w == waiter {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			break
		}
	}
	c.gm.Unlock()
}

// sendLocked writes and flushes one frame under the write lock, failing
// the connection on error.
func (c *Conn) sendLocked(kind, msgType uint8, payload []byte) error {
	c.wm.Lock()
	err := c.writeFlushLocked(kind, msgType, payload)
	c.wm.Unlock()
	if err != nil {
		c.fail(err)
		return c.Err()
	}
	return nil
}

// writeFlushLocked writes one frame and flushes, applying the write
// deadline. Caller holds wm.
func (c *Conn) writeFlushLocked(kind, msgType uint8, payload []byte) error {
	if c.opts.SendTimeout > 0 {
		c.c.SetWriteDeadline(time.Now().Add(c.opts.SendTimeout))
		defer c.c.SetWriteDeadline(time.Time{})
	}
	if err := c.writeFrame(kind, msgType, payload); err != nil {
		return err
	}
	return c.w.Flush()
}

func (c *Conn) writeFrame(kind, msgType uint8, payload []byte) error {
	var hdr [6]byte
	hdr[0] = kind
	hdr[1] = msgType
	binary.LittleEndian.PutUint32(hdr[2:], uint32(len(payload)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := c.w.Write(payload)
	return err
}

// Recv returns the next application message. The returned payload is
// drawn from the receive-buffer pool; call release when done with it to
// recycle the buffer (releasing is optional but keeps the pool
// effective). Recv transparently services rendezvous handshakes. When
// Recv returns an error the connection has failed: Done is closed and
// blocked senders have been woken.
func (c *Conn) Recv() (msgType uint8, payload []byte, release func(), err error) {
	for {
		var hdr [6]byte
		if _, err = io.ReadFull(c.r, hdr[:]); err != nil {
			c.fail(err)
			return 0, nil, nil, c.Err()
		}
		kind, mt := hdr[0], hdr[1]
		n := int(binary.LittleEndian.Uint32(hdr[2:]))
		switch kind {
		case FrameEager, FrameBulk:
			buf := c.pool.get(n)
			if _, err = io.ReadFull(c.r, buf); err != nil {
				c.fail(err)
				return 0, nil, nil, c.Err()
			}
			switch c.faultAction(FaultRecv, kind, mt, n) {
			case FaultDrop:
				c.pool.put(buf)
				continue
			case FaultSever:
				c.fail(errInjectedSever)
				return 0, nil, nil, c.Err()
			}
			c.stats.BytesReceived.Add(uint64(n))
			return mt, buf, func() { c.pool.put(buf) }, nil
		case FrameRendezvous:
			// Pre-register a large buffer, then grant. The bulk frame
			// follows on the same ordered stream.
			var szb [8]byte
			if _, err = io.ReadFull(c.r, szb[:]); err != nil {
				c.fail(err)
				return 0, nil, nil, c.Err()
			}
			sz := int(binary.LittleEndian.Uint64(szb[:]))
			switch c.faultAction(FaultRecv, FrameRendezvous, mt, sz) {
			case FaultDrop:
				continue // never grant: the sender observes a loss
			case FaultSever:
				c.fail(errInjectedSever)
				return 0, nil, nil, c.Err()
			}
			c.pool.reserve(sz)
			if err := c.sendLocked(FrameGrant, 0, nil); err != nil {
				return 0, nil, nil, err
			}
		case FrameGrant:
			switch c.faultAction(FaultRecv, FrameGrant, mt, n) {
			case FaultDrop:
				continue
			case FaultSever:
				c.fail(errInjectedSever)
				return 0, nil, nil, c.Err()
			}
			var wtr chan struct{}
			c.gm.Lock()
			if len(c.waiters) > 0 {
				wtr = c.waiters[0]
				c.waiters = c.waiters[1:]
			}
			c.gm.Unlock()
			if wtr != nil {
				wtr <- struct{}{} // cap 1: never blocks
			} else {
				c.stats.DroppedGrants.Inc()
			}
		default:
			err = fmt.Errorf("network: unknown frame kind 0x%02x", kind)
			c.fail(err)
			return 0, nil, nil, c.Err()
		}
	}
}

// Listener accepts BatchDB connections.
type Listener struct {
	l     net.Listener
	stats *Stats
	opts  Options
}

// Listen binds a TCP listener with no deadlines on accepted conns.
func Listen(addr string, stats *Stats) (*Listener, error) {
	return ListenOpts(addr, stats, Options{})
}

// ListenOpts binds a TCP listener; accepted connections carry opts.
func ListenOpts(addr string, stats *Stats, opts Options) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("network: listen %s: %w", addr, err)
	}
	if stats == nil {
		stats = &Stats{}
	}
	return &Listener{l: l, stats: stats, opts: opts}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept waits for the next connection.
func (l *Listener) Accept() (*Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return NewConnOpts(c, l.stats, l.opts), nil
}

// Close stops the listener.
func (l *Listener) Close() error { return l.l.Close() }

// bufferPool recycles receive buffers, mirroring the paper's
// pre-allocated and cached RDMA buffer pool.
type bufferPool struct {
	mu    sync.Mutex
	bufs  [][]byte
	stats *Stats
}

func newBufferPool(stats *Stats) *bufferPool {
	return &bufferPool{stats: stats}
}

// get returns a buffer of exactly n bytes, reusing pooled storage when
// large enough.
func (p *bufferPool) get(n int) []byte {
	p.mu.Lock()
	for i := len(p.bufs) - 1; i >= 0; i-- {
		if cap(p.bufs[i]) >= n {
			b := p.bufs[i]
			p.bufs = append(p.bufs[:i], p.bufs[i+1:]...)
			p.mu.Unlock()
			p.stats.BuffersReused.Inc()
			return b[:n]
		}
	}
	p.mu.Unlock()
	p.stats.BuffersAlloced.Inc()
	return make([]byte, n)
}

// put returns a buffer to the pool.
func (p *bufferPool) put(b []byte) {
	if cap(b) == 0 {
		return
	}
	p.mu.Lock()
	if len(p.bufs) < 64 {
		p.bufs = append(p.bufs, b[:0])
	}
	p.mu.Unlock()
}

// reserve pre-registers capacity for an announced large transfer.
func (p *bufferPool) reserve(n int) {
	p.mu.Lock()
	for _, b := range p.bufs {
		if cap(b) >= n {
			p.mu.Unlock()
			return
		}
	}
	p.bufs = append(p.bufs, make([]byte, 0, n))
	p.mu.Unlock()
	p.stats.BuffersAlloced.Inc()
}
