// Package network is BatchDB's transport for shipping updates between
// machines (paper §6).
//
// The paper uses RDMA over 4xFDR InfiniBand; this machine has neither,
// so the package substitutes a TCP transport that mirrors the paper's
// protocol structure rather than its latency constants:
//
//   - Small messages travel on the eager path: they are written
//     directly, and the receiver lands them in pre-registered receive
//     buffers drawn from a pool (the analogue of two-sided RDMA into
//     registered buffers).
//   - Messages larger than EagerLimit use a rendezvous handshake: the
//     sender first transmits the required size, the receiver allocates
//     and "registers" a buffer from its large-buffer pool and replies
//     with a grant, and only then does the bulk transfer proceed (the
//     analogue of the paper's handshake + one-sided RDMA write). To
//     reduce allocation and registration cost, large buffers are pooled
//     and reused — exactly the paper's buffer-pool motivation.
//
// The code path that matters to BatchDB — serialize update batches,
// ship them, hand them to the remote replica — is identical in shape;
// only the wire is slower. Statistics expose which path each message
// took so benchmarks can report protocol behaviour.
package network

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"batchdb/internal/metrics"
)

// EagerLimit is the largest payload sent without a rendezvous handshake.
// The paper uses 1024 KB receive buffers; we keep the same value.
const EagerLimit = 1 << 20

// frame kinds on the wire (invisible to users of Conn).
const (
	frameEager      = 0x01
	frameRendezvous = 0x02 // header only: announces a large transfer
	frameGrant      = 0x03 // receiver's go-ahead
	frameBulk       = 0x04 // the large payload itself
)

// Stats counts transport events.
type Stats struct {
	EagerMsgs      metrics.Counter
	RendezvousMsgs metrics.Counter
	BytesSent      metrics.Counter
	BytesReceived  metrics.Counter
	BuffersReused  metrics.Counter
	BuffersAlloced metrics.Counter
}

// Conn is a message-oriented connection. Send may be called from
// multiple goroutines; Recv must be called from a single reader
// goroutine (the usual demultiplexer pattern).
type Conn struct {
	c  net.Conn
	r  *bufio.Reader
	wm sync.Mutex
	w  *bufio.Writer

	// grantCh delivers rendezvous grants from the reader goroutine to a
	// blocked sender.
	grantCh chan struct{}

	pool  *bufferPool
	stats *Stats
}

// NewConn wraps an established net.Conn.
func NewConn(c net.Conn, stats *Stats) *Conn {
	if stats == nil {
		stats = &Stats{}
	}
	return &Conn{
		c:       c,
		r:       bufio.NewReaderSize(c, 1<<20),
		w:       bufio.NewWriterSize(c, 1<<20),
		grantCh: make(chan struct{}, 1),
		pool:    newBufferPool(stats),
		stats:   stats,
	}
}

// Dial connects to a BatchDB peer.
func Dial(addr string, stats *Stats) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("network: dial %s: %w", addr, err)
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return NewConn(c, stats), nil
}

// Stats returns the connection's transport counters.
func (c *Conn) Stats() *Stats { return c.stats }

// Close tears down the connection.
func (c *Conn) Close() error { return c.c.Close() }

// Send transmits one message of the given application type. Payloads at
// or below EagerLimit go out immediately; larger ones run the rendezvous
// handshake and block until the receiver grants a buffer.
func (c *Conn) Send(msgType uint8, payload []byte) error {
	if len(payload) <= EagerLimit {
		c.wm.Lock()
		defer c.wm.Unlock()
		if err := c.writeFrame(frameEager, msgType, payload); err != nil {
			return err
		}
		c.stats.EagerMsgs.Inc()
		c.stats.BytesSent.Add(uint64(len(payload)))
		return c.w.Flush()
	}
	// Rendezvous: announce size, wait for the grant, then bulk-send.
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(payload)))
	c.wm.Lock()
	if err := c.writeFrame(frameRendezvous, msgType, hdr[:]); err != nil {
		c.wm.Unlock()
		return err
	}
	if err := c.w.Flush(); err != nil {
		c.wm.Unlock()
		return err
	}
	c.wm.Unlock()
	<-c.grantCh // receiver registered a buffer
	c.wm.Lock()
	defer c.wm.Unlock()
	if err := c.writeFrame(frameBulk, msgType, payload); err != nil {
		return err
	}
	c.stats.RendezvousMsgs.Inc()
	c.stats.BytesSent.Add(uint64(len(payload)))
	return c.w.Flush()
}

func (c *Conn) writeFrame(kind, msgType uint8, payload []byte) error {
	var hdr [6]byte
	hdr[0] = kind
	hdr[1] = msgType
	binary.LittleEndian.PutUint32(hdr[2:], uint32(len(payload)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := c.w.Write(payload)
	return err
}

// Recv returns the next application message. The returned payload is
// drawn from the receive-buffer pool; call release when done with it to
// recycle the buffer (releasing is optional but keeps the pool
// effective). Recv transparently services rendezvous handshakes.
func (c *Conn) Recv() (msgType uint8, payload []byte, release func(), err error) {
	for {
		var hdr [6]byte
		if _, err = io.ReadFull(c.r, hdr[:]); err != nil {
			return 0, nil, nil, err
		}
		kind, mt := hdr[0], hdr[1]
		n := int(binary.LittleEndian.Uint32(hdr[2:]))
		switch kind {
		case frameEager, frameBulk:
			buf := c.pool.get(n)
			if _, err = io.ReadFull(c.r, buf); err != nil {
				return 0, nil, nil, err
			}
			c.stats.BytesReceived.Add(uint64(n))
			return mt, buf, func() { c.pool.put(buf) }, nil
		case frameRendezvous:
			// Pre-register a large buffer, then grant. The bulk frame
			// follows on the same ordered stream.
			var szb [8]byte
			if _, err = io.ReadFull(c.r, szb[:]); err != nil {
				return 0, nil, nil, err
			}
			sz := int(binary.LittleEndian.Uint64(szb[:]))
			c.pool.reserve(sz)
			c.wm.Lock()
			if err = c.writeFrame(frameGrant, 0, nil); err != nil {
				c.wm.Unlock()
				return 0, nil, nil, err
			}
			err = c.w.Flush()
			c.wm.Unlock()
			if err != nil {
				return 0, nil, nil, err
			}
		case frameGrant:
			select {
			case c.grantCh <- struct{}{}:
			default:
			}
		default:
			return 0, nil, nil, fmt.Errorf("network: unknown frame kind 0x%02x", kind)
		}
	}
}

// Listener accepts BatchDB connections.
type Listener struct {
	l     net.Listener
	stats *Stats
}

// Listen binds a TCP listener.
func Listen(addr string, stats *Stats) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("network: listen %s: %w", addr, err)
	}
	if stats == nil {
		stats = &Stats{}
	}
	return &Listener{l: l, stats: stats}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept waits for the next connection.
func (l *Listener) Accept() (*Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return NewConn(c, l.stats), nil
}

// Close stops the listener.
func (l *Listener) Close() error { return l.l.Close() }

// bufferPool recycles receive buffers, mirroring the paper's
// pre-allocated and cached RDMA buffer pool.
type bufferPool struct {
	mu    sync.Mutex
	bufs  [][]byte
	stats *Stats
}

func newBufferPool(stats *Stats) *bufferPool {
	return &bufferPool{stats: stats}
}

// get returns a buffer of exactly n bytes, reusing pooled storage when
// large enough.
func (p *bufferPool) get(n int) []byte {
	p.mu.Lock()
	for i := len(p.bufs) - 1; i >= 0; i-- {
		if cap(p.bufs[i]) >= n {
			b := p.bufs[i]
			p.bufs = append(p.bufs[:i], p.bufs[i+1:]...)
			p.mu.Unlock()
			p.stats.BuffersReused.Inc()
			return b[:n]
		}
	}
	p.mu.Unlock()
	p.stats.BuffersAlloced.Inc()
	return make([]byte, n)
}

// put returns a buffer to the pool.
func (p *bufferPool) put(b []byte) {
	if cap(b) == 0 {
		return
	}
	p.mu.Lock()
	if len(p.bufs) < 64 {
		p.bufs = append(p.bufs, b[:0])
	}
	p.mu.Unlock()
}

// reserve pre-registers capacity for an announced large transfer.
func (p *bufferPool) reserve(n int) {
	p.mu.Lock()
	for _, b := range p.bufs {
		if cap(b) >= n {
			p.mu.Unlock()
			return
		}
	}
	p.bufs = append(p.bufs, make([]byte, 0, n))
	p.mu.Unlock()
	p.stats.BuffersAlloced.Inc()
}
