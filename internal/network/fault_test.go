package network

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// pairOpts returns two connected Conns (client, server) with deadlines.
func pairOpts(t *testing.T, opts Options) (*Conn, *Conn) {
	t.Helper()
	l, err := ListenOpts("127.0.0.1:0", nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	type res struct {
		c   *Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		ch <- res{c, err}
	}()
	cli, err := DialOpts(l.Addr(), nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { cli.Close(); r.c.Close() })
	return cli, r.c
}

// Regression test for the rendezvous grant mismatch: N goroutines
// concurrently sending payloads larger than EagerLimit over one Conn
// must all complete. With the old single uncorrelated grant channel
// (capacity 1, non-blocking send), racing grants were dropped and one
// sender deadlocked.
func TestConcurrentLargeSends(t *testing.T) {
	cli, srv := pair(t)
	// The client's reader loop delivers incoming grants to its senders.
	go func() {
		for {
			if _, _, _, err := cli.Recv(); err != nil {
				return
			}
		}
	}()
	const senders = 6
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			payload := make([]byte, EagerLimit+1+s*1024)
			for i := range payload {
				payload[i] = byte(s)
			}
			if err := cli.Send(uint8(s), payload); err != nil {
				t.Errorf("sender %d: %v", s, err)
			}
		}(s)
	}
	got := make(map[uint8]int)
	for i := 0; i < senders; i++ {
		mt, payload, release, err := srv.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if len(payload) != EagerLimit+1+int(mt)*1024 {
			t.Fatalf("sender %d payload %d bytes", mt, len(payload))
		}
		for _, b := range payload {
			if b != byte(mt) {
				t.Fatalf("sender %d payload corrupted", mt)
			}
		}
		got[mt]++
		release()
	}
	wg.Wait()
	for s := 0; s < senders; s++ {
		if got[uint8(s)] != 1 {
			t.Fatalf("sender %d delivered %d messages", s, got[uint8(s)])
		}
	}
	if n := cli.Stats().RendezvousMsgs.Load(); n != senders {
		t.Fatalf("rendezvous messages = %d, want %d", n, senders)
	}
	if n := cli.Stats().DroppedGrants.Load(); n != 0 {
		t.Fatalf("%d grants dropped", n)
	}
}

// A sender blocked waiting for a rendezvous grant must be woken with an
// error when the connection is closed, not hang forever.
func TestSendUnblocksOnClose(t *testing.T) {
	cli, _ := pair(t)
	// No reader loop on either side: the grant can never arrive.
	errCh := make(chan error, 1)
	go func() { errCh <- cli.Send(1, make([]byte, EagerLimit+1)) }()
	time.Sleep(20 * time.Millisecond) // let the sender reach the grant wait
	cli.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("Send succeeded with no receiver grant")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Send still blocked after Close")
	}
	if cli.Err() == nil {
		t.Fatal("Err() nil after Close")
	}
	// Subsequent sends fail fast.
	if err := cli.Send(1, []byte("x")); err == nil {
		t.Fatal("Send succeeded on failed connection")
	}
}

// A sender whose peer dies mid-handshake must be woken when the reader
// loop observes the connection error.
func TestSendUnblocksOnPeerDeath(t *testing.T) {
	cli, srv := pair(t)
	go func() {
		for {
			if _, _, _, err := cli.Recv(); err != nil {
				return
			}
		}
	}()
	// The server never runs Recv, so it never grants; kill it instead.
	errCh := make(chan error, 1)
	go func() { errCh <- cli.Send(1, make([]byte, EagerLimit+1)) }()
	time.Sleep(20 * time.Millisecond)
	srv.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("Send succeeded after peer death")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Send still blocked after peer death")
	}
}

// The grant deadline bounds a rendezvous wait when the grant is lost.
func TestGrantTimeout(t *testing.T) {
	cli, srv := pairOpts(t, Options{GrantTimeout: 100 * time.Millisecond})
	// Lose every grant on the client's receive side, as a flaky network
	// would.
	cli.SetFaultPolicy(DropKind(FaultRecv, FrameGrant))
	go func() {
		for {
			if _, _, _, err := cli.Recv(); err != nil {
				return
			}
		}
	}()
	go func() {
		for {
			if _, _, _, err := srv.Recv(); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	err := cli.Send(1, make([]byte, EagerLimit+1))
	if err == nil {
		t.Fatal("Send succeeded with all grants dropped")
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("grant timeout took %v", d)
	}
	if cli.Stats().GrantTimeouts.Load() != 1 {
		t.Fatalf("GrantTimeouts = %d", cli.Stats().GrantTimeouts.Load())
	}
	// The timed-out sender must have removed itself from the grant
	// queue: the FIFO invariant (position k == k-th outstanding
	// announcement) holds on its own, not just because the connection
	// happens to be failed.
	cli.gm.Lock()
	left := len(cli.waiters)
	cli.gm.Unlock()
	if left != 0 {
		t.Fatalf("waiter queue not cleaned after grant timeout: %d left", left)
	}
}

// An injected sever mid-stream fails the connection deterministically
// and is distinguishable from organic errors.
func TestSeverAfterFrames(t *testing.T) {
	cli, srv := pair(t)
	srv.SetFaultPolicy(SeverAfter(FaultRecv, 2))
	go func() {
		for i := 0; i < 3; i++ {
			if err := cli.Send(1, []byte(fmt.Sprintf("m%d", i))); err != nil {
				return
			}
		}
	}()
	if _, _, release, err := srv.Recv(); err != nil {
		t.Fatalf("first frame: %v", err)
	} else {
		release()
	}
	_, _, _, err := srv.Recv()
	if err == nil {
		t.Fatal("second frame passed a SeverAfter(2) policy")
	}
	if !IsInjectedFault(err) {
		t.Fatalf("sever error not marked injected: %v", err)
	}
	select {
	case <-srv.Done():
	default:
		t.Fatal("Done not closed after injected sever")
	}
}

// Dropped eager frames vanish without breaking the stream.
func TestDropEagerFrame(t *testing.T) {
	cli, srv := pair(t)
	cli.SetFaultPolicy(DropKind(FaultSend, FrameEager))
	if err := cli.Send(1, []byte("lost")); err != nil {
		t.Fatalf("dropped send reported error: %v", err)
	}
	cli.SetFaultPolicy(nil)
	want := []byte("marker")
	go cli.Send(2, want)
	mt, got, release, err := srv.Recv()
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if mt != 2 || !bytes.Equal(got, want) {
		t.Fatalf("received type %d payload %q; dropped frame leaked?", mt, got)
	}
}

// DialRetry retries with backoff until the listener appears, and counts
// the retries.
func TestDialRetry(t *testing.T) {
	l, err := Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr()
	l.Close() // free the port: first attempts must fail

	stats := &Stats{}
	go func() {
		// Rebind the same address after a short outage.
		time.Sleep(80 * time.Millisecond)
		l2, err := ListenOpts(addr, nil, Options{})
		if err != nil {
			return // port raced away; the dial will exhaust attempts
		}
		defer l2.Close()
		if c, err := l2.Accept(); err == nil {
			defer c.Close()
			for {
				if _, _, _, err := c.Recv(); err != nil {
					return
				}
			}
		}
	}()
	c, err := DialRetry(addr, stats, Options{}, RetryPolicy{
		Attempts:  20,
		BaseDelay: 20 * time.Millisecond,
		MaxDelay:  50 * time.Millisecond,
	}, nil)
	if err != nil {
		t.Skipf("port rebind raced: %v", err) // environment-dependent; not a code failure
	}
	defer c.Close()
	if stats.Retries.Load() == 0 {
		t.Fatal("connection succeeded with no retries despite initial outage")
	}
}

// DialRetry honours cancellation during backoff.
func TestDialRetryCancel(t *testing.T) {
	cancel := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		// 127.0.0.1:1 is essentially never listening.
		_, err := DialRetry("127.0.0.1:1", nil, Options{}, RetryPolicy{
			Attempts:  1000,
			BaseDelay: 50 * time.Millisecond,
			MaxDelay:  time.Second,
		}, cancel)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	close(cancel)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("canceled dial returned a connection")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("DialRetry ignored cancellation")
	}
}
