package network

import (
	"sync"
	"sync/atomic"
)

// Frame-buffer pool for send-side payload encoding.
//
// Propagation frames — update pushes and sync replies — are
// append-encoded into a scratch buffer and handed to Conn.Send, which
// never retains the payload past its return (the eager path writes and
// flushes synchronously; the rendezvous path blocks through the bulk
// write). That lifetime makes the buffers poolable: callers draw from
// GetFrameBuf, encode, Send, and give the buffer back with PutFrameBuf,
// so steady-state pushes stop allocating per frame.
var (
	frameBufs      sync.Pool
	frameBufGets   atomic.Uint64
	frameBufMisses atomic.Uint64
)

// GetFrameBuf returns an empty buffer with whatever capacity a previous
// frame left behind. Append-encode into it; pass the result to
// PutFrameBuf once the frame is sent.
func GetFrameBuf() []byte {
	frameBufGets.Add(1)
	if b, ok := frameBufs.Get().(*[]byte); ok {
		return (*b)[:0]
	}
	frameBufMisses.Add(1)
	return make([]byte, 0, 4096)
}

// PutFrameBuf recycles a buffer obtained from GetFrameBuf (any
// append-grown capacity rides along). Safe for buffers that did not
// come from the pool; the next GetFrameBuf reuses them all the same.
func PutFrameBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	frameBufs.Put(&b)
}

// FrameBufStats reports pool traffic since process start: total
// GetFrameBuf calls and how many missed the pool (allocated fresh).
// Steady-state propagation should show misses ≪ gets.
func FrameBufStats() (gets, misses uint64) {
	return frameBufGets.Load(), frameBufMisses.Load()
}
