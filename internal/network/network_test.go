package network

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// pair returns two connected Conns (client, server).
func pair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	l, err := Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	type res struct {
		c   *Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		ch <- res{c, err}
	}()
	cli, err := Dial(l.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { cli.Close(); r.c.Close() })
	return cli, r.c
}

func TestEagerRoundTrip(t *testing.T) {
	cli, srv := pair(t)
	want := []byte("hello batchdb")
	go func() {
		if err := cli.Send(7, want); err != nil {
			t.Errorf("send: %v", err)
		}
	}()
	mt, got, release, err := srv.Recv()
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if mt != 7 || !bytes.Equal(got, want) {
		t.Fatalf("got type %d payload %q", mt, got)
	}
	if cli.Stats().EagerMsgs.Load() != 1 || cli.Stats().RendezvousMsgs.Load() != 0 {
		t.Fatalf("eager path not taken: %+v", cli.Stats())
	}
}

func TestLargeMessageRendezvous(t *testing.T) {
	cli, srv := pair(t)
	want := make([]byte, EagerLimit+12345)
	for i := range want {
		want[i] = byte(i * 31)
	}
	// The sender blocks until the receiver grants, and the receiver's
	// Recv loop services the handshake — both sides must run.
	errCh := make(chan error, 1)
	go func() { errCh <- cli.Send(9, want) }()
	// The client must also run a reader to receive the grant.
	go func() {
		if _, _, _, err := cli.Recv(); err != nil {
			// Connection closes at test end; ignore.
			_ = err
		}
	}()
	mt, got, release, err := srv.Recv()
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if err := <-errCh; err != nil {
		t.Fatalf("send: %v", err)
	}
	if mt != 9 || !bytes.Equal(got, want) {
		t.Fatalf("large payload mismatch (type %d, %d bytes)", mt, len(got))
	}
	if cli.Stats().RendezvousMsgs.Load() != 1 {
		t.Fatalf("rendezvous path not taken: %+v", cli.Stats())
	}
}

func TestManyMessagesOrdered(t *testing.T) {
	cli, srv := pair(t)
	const n = 500
	go func() {
		for i := 0; i < n; i++ {
			if err := cli.Send(1, []byte(fmt.Sprintf("msg-%04d", i))); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		_, got, release, err := srv.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("msg-%04d", i); string(got) != want {
			t.Fatalf("message %d = %q, want %q (reordered?)", i, got, want)
		}
		release()
	}
	// Buffer pool must have recycled.
	if srv.Stats().BuffersReused.Load() == 0 {
		t.Fatal("receive buffers never reused")
	}
}

func TestConcurrentSenders(t *testing.T) {
	cli, srv := pair(t)
	const senders, per = 4, 100
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := cli.Send(uint8(s), []byte{byte(i)}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	counts := map[uint8]int{}
	for i := 0; i < senders*per; i++ {
		mt, _, release, err := srv.Recv()
		if err != nil {
			t.Fatal(err)
		}
		counts[mt]++
		release()
	}
	wg.Wait()
	for s := 0; s < senders; s++ {
		if counts[uint8(s)] != per {
			t.Fatalf("sender %d delivered %d messages", s, counts[uint8(s)])
		}
	}
}

func TestRecvAfterClose(t *testing.T) {
	cli, srv := pair(t)
	cli.Close()
	if _, _, _, err := srv.Recv(); err == nil {
		t.Fatal("Recv after peer close returned no error")
	}
}

func TestBufferPoolReserve(t *testing.T) {
	st := &Stats{}
	p := newBufferPool(st)
	p.reserve(1000)
	b := p.get(900)
	if cap(b) < 900 {
		t.Fatal("reserve did not provision capacity")
	}
	if st.BuffersReused.Load() != 1 {
		t.Fatalf("reserved buffer not reused: %+v", st)
	}
	p.put(b)
	b2 := p.get(1000)
	if st.BuffersReused.Load() != 2 {
		t.Fatal("returned buffer not reused")
	}
	_ = b2
}
