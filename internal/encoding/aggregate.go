// Vectorized aggregate kernels over the encoded block forms: SUM is
// computed directly on the packed payload — closed-form for constant
// and RLE runs, a streamed field walk for FOR and dictionary blocks —
// so a block whose every tuple qualifies never materializes a row.
// Like the filter kernels, everything runs in the order-preserving
// int64 key space; float columns hand SumConv an inverse mapping
// because ord keys are order- but not value-preserving.
package encoding

// SumInt returns the sum of every position's value. The values must be
// value-preserving ord keys (integer and time columns — not floats,
// whose ord keys are a bit-level bijection; use SumConv). Arithmetic
// wraps like any int64 sum of the decoded values would.
func (v *Vector) SumInt() int64 {
	switch v.kind {
	case FOR:
		sum := int64(v.n) * v.base
		if v.width == 0 {
			return sum
		}
		for i, bit := 0, 0; i < v.n; i, bit = i+1, bit+int(v.width) {
			w, off := bit>>6, uint(bit&63)
			x := v.packed[w] >> off
			if off+v.width > 64 {
				x |= v.packed[w+1] << (64 - off)
			}
			sum += int64(x & v.mask)
		}
		return sum
	case Dict:
		if v.width == 0 {
			return int64(v.n) * v.dict[0]
		}
		var sum int64
		for i, bit := 0, 0; i < v.n; i, bit = i+1, bit+int(v.width) {
			w, off := bit>>6, uint(bit&63)
			x := v.packed[w] >> off
			if off+v.width > 64 {
				x |= v.packed[w+1] << (64 - off)
			}
			sum += v.dict[x&v.mask]
		}
		return sum
	default: // RLE: one multiply per run
		var sum int64
		pos := int32(0)
		for r, val := range v.runVals {
			end := v.runEnds[r]
			sum += int64(end-pos) * val
			pos = end
		}
		return sum
	}
}

// SumConv returns the sum of conv(value) over every position — the
// float-column sum, with conv the ord-key inverse
// (storage.Float64FromOrdKey). Constant and RLE blocks convert once
// per run; dictionary blocks convert once per distinct value by
// counting code occurrences; FOR blocks convert per position (still
// without touching row storage).
func (v *Vector) SumConv(conv func(int64) float64) float64 {
	switch v.kind {
	case FOR:
		if v.width == 0 {
			return float64(v.n) * conv(v.base)
		}
		var sum float64
		for i, bit := 0, 0; i < v.n; i, bit = i+1, bit+int(v.width) {
			w, off := bit>>6, uint(bit&63)
			x := v.packed[w] >> off
			if off+v.width > 64 {
				x |= v.packed[w+1] << (64 - off)
			}
			sum += conv(v.base + int64(x&v.mask))
		}
		return sum
	case Dict:
		if v.width == 0 {
			return float64(v.n) * conv(v.dict[0])
		}
		var counts [maxDictSize]int32
		for i, bit := 0, 0; i < v.n; i, bit = i+1, bit+int(v.width) {
			w, off := bit>>6, uint(bit&63)
			x := v.packed[w] >> off
			if off+v.width > 64 {
				x |= v.packed[w+1] << (64 - off)
			}
			counts[x&v.mask]++
		}
		var sum float64
		for c, n := range counts[:len(v.dict)] {
			if n != 0 {
				sum += float64(n) * conv(v.dict[c])
			}
		}
		return sum
	default: // RLE
		var sum float64
		pos := int32(0)
		for r, val := range v.runVals {
			end := v.runEnds[r]
			sum += float64(end-pos) * conv(val)
			pos = end
		}
		return sum
	}
}
