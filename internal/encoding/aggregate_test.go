package encoding

import (
	"math"
	"math/rand"
	"testing"
)

// genVectors produces one vector of every encoding kind the aggregate
// kernels must serve, each paired with its raw values.
func genVectors(rng *rand.Rand) map[string][]int64 {
	n := 200 + rng.Intn(300)
	cases := map[string][]int64{}

	forVals := make([]int64, n)
	base := rng.Int63n(1_000_000) - 500_000
	for i := range forVals {
		forVals[i] = base + rng.Int63n(1000)
	}
	cases["for"] = forVals

	dictVals := make([]int64, n)
	domain := make([]int64, 5+rng.Intn(20))
	for i := range domain {
		domain[i] = rng.Int63n(1 << 40)
	}
	for i := range dictVals {
		dictVals[i] = domain[rng.Intn(len(domain))]
	}
	cases["dict"] = dictVals

	rleVals := make([]int64, 0, n)
	for len(rleVals) < n {
		v := rng.Int63n(1 << 30)
		run := 1 + rng.Intn(40)
		for j := 0; j < run && len(rleVals) < n; j++ {
			rleVals = append(rleVals, v)
		}
	}
	cases["rle"] = rleVals

	constVals := make([]int64, n)
	cv := rng.Int63n(1 << 50)
	for i := range constVals {
		constVals[i] = cv
	}
	cases["const"] = constVals
	return cases
}

func TestSumIntMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var sc Scratch
	for trial := 0; trial < 50; trial++ {
		for name, vals := range genVectors(rng) {
			v := Encode(vals, 64, &sc)
			var want int64
			for _, x := range vals {
				want += x
			}
			if got := v.SumInt(); got != want {
				t.Fatalf("trial %d %s (kind %v): SumInt = %d, want %d", trial, name, v.Kind(), got, want)
			}
		}
	}
	// Explicit constant vector (width-0 FOR closed form).
	c := Constant(137, 42)
	if got := c.SumInt(); got != 137*42 {
		t.Fatalf("constant SumInt = %d, want %d", got, 137*42)
	}
}

func TestSumConvMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var sc Scratch
	conv := func(k int64) float64 { return float64(k) * 0.5 }
	for trial := 0; trial < 50; trial++ {
		for name, vals := range genVectors(rng) {
			v := Encode(vals, 64, &sc)
			var want float64
			for _, x := range vals {
				want += conv(x)
			}
			got := v.SumConv(conv)
			if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
				t.Fatalf("trial %d %s (kind %v): SumConv = %f, want %f", trial, name, v.Kind(), got, want)
			}
		}
	}
	c := Constant(64, 7)
	if got := c.SumConv(conv); got != 64*3.5 {
		t.Fatalf("constant SumConv = %f, want %f", got, 64*3.5)
	}
}
