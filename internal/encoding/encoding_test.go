package encoding

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"testing"
)

// genBlock produces value blocks of the shapes the chooser must tell
// apart: constants, low-cardinality pools (dictionary), narrow ranges
// (FOR), sorted runs (RLE) and wide random data (incompressible).
func genBlock(rng *rand.Rand, shape string, n int) []int64 {
	vals := make([]int64, n)
	switch shape {
	case "const":
		c := rng.Int63n(1000) - 500
		for i := range vals {
			vals[i] = c
		}
	case "dict":
		pool := make([]int64, 1+rng.Intn(64))
		for i := range pool {
			pool[i] = rng.Int63() - math.MaxInt64/2
		}
		for i := range vals {
			vals[i] = pool[rng.Intn(len(pool))]
		}
	case "for":
		base := rng.Int63() - math.MaxInt64/2
		for i := range vals {
			vals[i] = base + int64(rng.Intn(1<<12))
		}
	case "rle":
		v := rng.Int63n(100)
		for i := range vals {
			if rng.Intn(40) == 0 {
				v = rng.Int63n(100)
			}
			vals[i] = v
		}
	case "wide":
		for i := range vals {
			vals[i] = rng.Int63() - math.MaxInt64/2
		}
	}
	return vals
}

var shapes = []string{"const", "dict", "for", "rle", "wide"}

// TestEncodeRoundTrip proves Value(i) reproduces the input exactly for
// every shape that encodes, and that wide random int64 data is
// honestly reported incompressible.
func TestEncodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var sc Scratch
	for _, shape := range shapes {
		for trial := 0; trial < 20; trial++ {
			n := 1 + rng.Intn(1100)
			vals := genBlock(rng, shape, n)
			v := Encode(vals, 64, &sc)
			if v == nil {
				if shape != "wide" && n > 64 {
					t.Fatalf("%s block of %d values did not encode", shape, n)
				}
				continue
			}
			if shape == "wide" && n > 8 {
				t.Fatalf("wide random block of %d values encoded as %s", n, v.Kind())
			}
			if v.Len() != n {
				t.Fatalf("%s: Len %d, want %d", shape, v.Len(), n)
			}
			for i, want := range vals {
				if got := v.Value(i); got != want {
					t.Fatalf("%s/%s: Value(%d) = %d, want %d", shape, v.Kind(), i, got, want)
				}
			}
			if eb := v.EncodedBytes(); eb <= 0 || (n > 64 && eb >= n*8) {
				t.Fatalf("%s/%s: EncodedBytes %d for %d values", shape, v.Kind(), eb, n)
			}
		}
	}
}

// TestEncodeChoosesKind pins the chooser on unambiguous inputs.
func TestEncodeChoosesKind(t *testing.T) {
	var sc Scratch
	n := 1024
	cases := []struct {
		shape string
		want  Kind
	}{
		{"const", FOR}, // width-0 FOR beats a 1-run RLE
		{"rle", RLE},
		{"wide", None},
	}
	rng := rand.New(rand.NewSource(2))
	for _, c := range cases {
		v := Encode(genBlock(rng, c.shape, n), 64, &sc)
		got := None
		if v != nil {
			got = v.Kind()
		}
		if got != c.want {
			t.Fatalf("%s: encoded as %s, want %s", c.shape, got, c.want)
		}
	}
	// A 4096-value pool in a 2^40 range: too wide for FOR to win at
	// rawBits 64? FOR width 40 < 64 still wins vs raw; but with rawBits
	// 32 nothing should encode.
	wide32 := make([]int64, n)
	for i := range wide32 {
		wide32[i] = int64(int32(rng.Uint32()))
	}
	if v := Encode(wide32, 32, &sc); v != nil {
		t.Fatalf("full-range int32 data encoded as %s at rawBits 32", v.Kind())
	}
}

// naiveFilter is the oracle: the bitmap FilterAnd must produce.
func naiveFilter(vals []int64, pre []uint64, lo, hi int64, set []int64) []uint64 {
	out := make([]uint64, (len(vals)+63)/64)
	for i, v := range vals {
		if pre[i>>6]&(1<<uint(i&63)) == 0 {
			continue
		}
		if v < lo || v > hi {
			continue
		}
		if set != nil && !member(set, v) {
			continue
		}
		out[i>>6] |= 1 << uint(i&63)
	}
	return out
}

// TestFilterAndMatchesOracle drives FilterAnd over every shape with
// random intervals, IN-sets, empty intervals and pre-narrowed input
// bitmaps (the AND-chaining case), comparing bit-exactly against the
// scalar oracle.
func TestFilterAndMatchesOracle(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			var sc Scratch
			for _, shape := range shapes[:4] { // wide never encodes
				for trial := 0; trial < 40; trial++ {
					n := 1 + rng.Intn(700)
					vals := genBlock(rng, shape, n)
					v := Encode(vals, 64, &sc)
					if v == nil {
						continue
					}
					nw := (n + 63) / 64
					pre := make([]uint64, nw)
					for i := range pre {
						pre[i] = ^uint64(0)
					}
					if trial%3 == 0 { // pre-narrowed input: AND semantics
						for i := range pre {
							pre[i] = rng.Uint64()
						}
					}
					// Bound the interval near the data so it is sometimes
					// empty, sometimes partial, sometimes everything.
					a := vals[rng.Intn(n)] + int64(rng.Intn(9)-4)
					b := vals[rng.Intn(n)] + int64(rng.Intn(9)-4)
					lo, hi := min(a, b), max(a, b)
					switch rng.Intn(5) {
					case 0:
						lo, hi = math.MinInt64, math.MaxInt64
					case 1:
						lo, hi = hi, lo // usually empty
					}
					var set []int64
					if rng.Intn(2) == 0 {
						set = make([]int64, 1+rng.Intn(6))
						for i := range set {
							if rng.Intn(3) == 0 {
								set[i] = rng.Int63()
							} else {
								set[i] = vals[rng.Intn(n)]
							}
						}
						slices.Sort(set)
						set = slices.Compact(set)
					}
					want := naiveFilter(vals, pre, lo, hi, set)
					got := append([]uint64(nil), pre...)
					v.FilterAnd(got, lo, hi, set)
					for w := range got {
						if got[w] != want[w] {
							t.Fatalf("%s/%s n=%d [%d,%d] set=%v: word %d = %064b, want %064b",
								shape, v.Kind(), n, lo, hi, set, w, got[w], want[w])
						}
					}
				}
			}
		})
	}
}

// TestFilterPackedRangeParity pins the word-parallel filter kernels
// width by width: for each packed field width it builds a block the
// chooser must encode at exactly that width (FOR across every width
// class, Dict across the code widths its 256-entry cap allows), then
// checks FilterAnd bit-for-bit against the scalar oracle under full,
// random-dense and sparse selection bitmaps — so the SWAR lanes
// (4/8/16), the width-1 bitwise path, the streaming scalar path and
// the sparse per-bit fallback all face the same truth.
func TestFilterPackedRangeParity(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	var sc Scratch

	check := func(t *testing.T, vals []int64, v *Vector, wantKind Kind, wantWidth int) {
		t.Helper()
		if v == nil || v.Kind() != wantKind || int(v.width) != wantWidth {
			got := "nil"
			if v != nil {
				got = fmt.Sprintf("%s/width=%d", v.Kind(), v.width)
			}
			t.Fatalf("chooser produced %s, want %s/width=%d", got, wantKind, wantWidth)
		}
		n := len(vals)
		nw := (n + 63) / 64
		for trial := 0; trial < 24; trial++ {
			pre := make([]uint64, nw)
			switch trial % 3 {
			case 0: // full: dense word-parallel path
				for i := range pre {
					pre[i] = ^uint64(0)
				}
			case 1: // random dense
				for i := range pre {
					pre[i] = rng.Uint64() | rng.Uint64()
				}
			case 2: // sparse: per-set-bit fallback
				for i := range pre {
					pre[i] = 1<<uint(rng.Intn(64)) | 1<<uint(rng.Intn(64))
				}
			}
			a := vals[rng.Intn(n)] + int64(rng.Intn(5)-2)
			b := vals[rng.Intn(n)] + int64(rng.Intn(5)-2)
			lo, hi := min(a, b), max(a, b)
			switch rng.Intn(6) {
			case 0:
				lo, hi = math.MinInt64, math.MaxInt64
			case 1:
				lo, hi = hi+1, lo-1 // empty interval
			}
			var set []int64
			if trial%4 == 3 {
				set = make([]int64, 1+rng.Intn(5))
				for i := range set {
					set[i] = vals[rng.Intn(n)]
				}
				slices.Sort(set)
				set = slices.Compact(set)
			}
			want := naiveFilter(vals, pre, lo, hi, set)
			got := append([]uint64(nil), pre...)
			v.FilterAnd(got, lo, hi, set)
			for w := range got {
				if got[w] != want[w] {
					t.Fatalf("trial %d [%d,%d] set=%v: word %d = %064b, want %064b",
						trial, lo, hi, set, w, got[w], want[w])
				}
			}
		}
	}

	// FOR: contiguous high-cardinality offset domains pin every width
	// class, including the SWAR-aligned ones and the cross-word widths.
	for _, w := range []int{1, 2, 3, 4, 5, 7, 8, 9, 12, 16, 20, 32} {
		t.Run(fmt.Sprintf("for-width%d", w), func(t *testing.T) {
			n := 320 + rng.Intn(400)
			base := rng.Int63() - math.MaxInt64/2
			vals := make([]int64, n)
			var top uint64 = 1<<uint(w) - 1
			for i := range vals {
				vals[i] = base + int64(rng.Uint64()&top)
			}
			vals[0], vals[1] = base, base+int64(top) // pin the width exactly
			check(t, vals, Encode(vals, 64, &sc), FOR, w)
		})
	}

	// Dict: wide random pools sized to force each code width the
	// 256-entry dictionary cap allows.
	for _, w := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
		t.Run(fmt.Sprintf("dict-width%d", w), func(t *testing.T) {
			nd := 1 << uint(w)
			pool := make([]int64, nd)
			for i := range pool {
				pool[i] = rng.Int63() - math.MaxInt64/2
			}
			slices.Sort(pool)
			pool = slices.Compact(pool)
			n := max(512, 4*len(pool))
			vals := make([]int64, n)
			copy(vals, pool) // every pool value present: dict size is exact
			for i := len(pool); i < n; i++ {
				vals[i] = pool[rng.Intn(len(pool))]
			}
			check(t, vals, Encode(vals, 64, &sc), Dict, bitsLen(len(pool)-1))
		})
	}
}

func bitsLen(x int) int {
	n := 0
	for ; x > 0; x >>= 1 {
		n++
	}
	return n
}

// TestFilterAndClearsTail proves bits beyond Len are cleared so a
// partial tail block cannot leak phantom selections.
func TestFilterAndClearsTail(t *testing.T) {
	var sc Scratch
	vals := make([]int64, 70) // 2 words, 58 tail bits
	for i := range vals {
		vals[i] = 5
	}
	v := Encode(vals, 64, &sc)
	if v == nil {
		t.Fatal("constant block did not encode")
	}
	sel := []uint64{^uint64(0), ^uint64(0)}
	v.FilterAnd(sel, 0, 10, nil)
	if sel[0] != ^uint64(0) || sel[1] != (1<<6)-1 {
		t.Fatalf("tail bits leaked: %064b %064b", sel[0], sel[1])
	}
}

func TestClearRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(4)
		sel := make([]uint64, n)
		want := make([]uint64, n)
		for i := range sel {
			sel[i] = rng.Uint64()
			want[i] = sel[i]
		}
		from := rng.Intn(n * 64)
		to := from + rng.Intn(n*64-from+1)
		clearRange(sel, from, to)
		for i := from; i < to; i++ {
			want[i>>6] &^= 1 << uint(i&63)
		}
		for w := range sel {
			if sel[w] != want[w] {
				t.Fatalf("clearRange(%d,%d) word %d = %064b, want %064b", from, to, w, sel[w], want[w])
			}
		}
	}
}

// TestScratchEpochWrap drives the scratch through an epoch wrap to
// prove stale stamps cannot alias distinct counting.
func TestScratchEpochWrap(t *testing.T) {
	var sc Scratch
	sc.epoch = math.MaxUint32 - 1
	for round := 0; round < 4; round++ {
		sc.reset()
		for v := int64(0); v < 10; v++ {
			sc.add(v)
			sc.add(v) // duplicate must not double-count
		}
		if len(sc.vals) != 10 {
			t.Fatalf("round %d: %d distinct, want 10", round, len(sc.vals))
		}
	}
}

// TestConstant pins the no-gather constructor: every position decodes
// to the given value and filters see a width-0 FOR.
func TestConstant(t *testing.T) {
	v := Constant(100, -42)
	if v.Kind() != FOR || v.Len() != 100 {
		t.Fatalf("Constant: kind %s len %d", v.Kind(), v.Len())
	}
	for _, i := range []int{0, 50, 99} {
		if got := v.Value(i); got != -42 {
			t.Fatalf("Value(%d) = %d, want -42", i, got)
		}
	}
	sel := []uint64{^uint64(0), ^uint64(0)}
	v.FilterAnd(sel, -42, -42, nil)
	if sel[0] != ^uint64(0) || sel[1] != (1<<36)-1 {
		t.Fatalf("constant filter: %064b %064b", sel[0], sel[1])
	}
	v.FilterAnd(sel, 0, 10, nil)
	if sel[0] != 0 || sel[1] != 0 {
		t.Fatal("constant filter kept bits outside the value")
	}
}

// TestDecodeAll proves the streaming decode agrees with Value for
// every shape that encodes.
func TestDecodeAll(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var sc Scratch
	for _, shape := range shapes[:4] {
		for trial := 0; trial < 20; trial++ {
			n := 1 + rng.Intn(1100)
			vals := genBlock(rng, shape, n)
			v := Encode(vals, 64, &sc)
			if v == nil {
				continue
			}
			dst := make([]int64, n)
			v.DecodeAll(dst)
			for i, want := range vals {
				if dst[i] != want {
					t.Fatalf("%s/%s: DecodeAll[%d] = %d, want %d", shape, v.Kind(), i, dst[i], want)
				}
			}
		}
	}
}

// TestTryPatch drives random in-place patches against a decode oracle:
// accepted patches must be visible exactly, rejected ones must leave
// the vector untouched, and RLE must always reject.
func TestTryPatch(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var sc Scratch
	for _, shape := range shapes[:4] {
		for trial := 0; trial < 30; trial++ {
			n := 1 + rng.Intn(900)
			vals := genBlock(rng, shape, n)
			v := Encode(vals, 64, &sc)
			if v == nil {
				continue
			}
			for round := 0; round < 64; round++ {
				i := rng.Intn(n)
				var nv int64
				if rng.Intn(2) == 0 {
					nv = vals[rng.Intn(n)] // in-domain for Dict, in-range for FOR
				} else {
					nv = rng.Int63() - math.MaxInt64/2 // usually out of domain
				}
				if v.TryPatch(i, nv) {
					if v.Kind() == RLE {
						t.Fatal("RLE accepted an in-place patch")
					}
					vals[i] = nv
				}
				// The patch (applied or refused) must leave every position
				// agreeing with the oracle.
				for _, j := range []int{i, 0, n - 1, rng.Intn(n)} {
					if got := v.Value(j); got != vals[j] {
						t.Fatalf("%s/%s: after TryPatch(%d,%d): Value(%d) = %d, want %d",
							shape, v.Kind(), i, nv, j, got, vals[j])
					}
				}
			}
		}
	}
}

// TestTryPatchFORRange pins the FOR domain boundary: base and
// base+mask are accepted, one past either end is refused.
func TestTryPatchFORRange(t *testing.T) {
	var sc Scratch
	vals := make([]int64, 256)
	for i := range vals {
		// Narrow range, high cardinality: FOR wins, any dictionary loses.
		vals[i] = 1000 + int64(i%200)*3
	}
	v := Encode(vals, 64, &sc)
	if v == nil || v.Kind() != FOR {
		t.Fatalf("expected FOR, got %v", v)
	}
	top := v.base + int64(v.mask)
	if !v.TryPatch(3, v.base) || !v.TryPatch(4, top) {
		t.Fatal("in-range FOR patch refused")
	}
	if v.TryPatch(5, v.base-1) || v.TryPatch(6, top+1) {
		t.Fatal("out-of-range FOR patch accepted")
	}
	if v.Value(3) != v.base || v.Value(4) != top {
		t.Fatal("accepted patches not visible")
	}
}

// TestRecycle proves recycled buffers cannot corrupt later vectors:
// encode, recycle, re-encode from the pool, and check the recycled
// vector was defanged while the new one round-trips.
func TestRecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var sc Scratch
	for trial := 0; trial < 200; trial++ {
		shape := shapes[rng.Intn(4)]
		n := 1 + rng.Intn(900)
		vals := genBlock(rng, shape, n)
		v := Encode(vals, 64, &sc)
		if v == nil {
			continue
		}
		// Hold a fresh copy of the expected values, re-encode other data
		// through the pool, then verify the retained vector if kept or
		// the new one if recycled.
		if rng.Intn(2) == 0 {
			sc.Recycle(v)
			if v.packed != nil || v.dict != nil || v.runVals != nil || v.runEnds != nil {
				t.Fatal("Recycle left payload attached")
			}
			continue
		}
		other := genBlock(rng, shapes[rng.Intn(4)], 1+rng.Intn(900))
		ov := Encode(other, 64, &sc)
		for i, want := range vals {
			if got := v.Value(i); got != want {
				t.Fatalf("trial %d: pooled encode corrupted live vector at %d: %d != %d", trial, i, got, want)
			}
		}
		if ov != nil {
			for i, want := range other {
				if got := ov.Value(i); got != want {
					t.Fatalf("trial %d: pooled vector wrong at %d: %d != %d", trial, i, got, want)
				}
			}
		}
		sc.Recycle(v)
		sc.Recycle(ov)
	}
}
