// Package encoding implements the per-block lightweight column
// encodings behind BatchDB's compressed scan path: frame-of-reference
// (FOR) with bit-packed offsets, order-preserving dictionary coding,
// and run-length encoding, chosen per (block, column) by a cheap
// stats pass.
//
// All values are order-preserving int64 keys (storage.Schema.OrdKey
// space), so one Vector representation serves every numeric column
// type and predicate constants translate into the encoded domain with
// pure integer arithmetic: a FOR vector turns an interval predicate
// into an unsigned offset interval, a dictionary vector turns it into
// a code interval (codes are assigned in value order) and an IN-list
// into code-set membership. FilterAnd evaluates predicates directly on
// the encoded form and narrows a selection bitmap; nothing is decoded
// until the executor materializes the surviving tuples.
//
// Encoding is chosen by estimated size: the cheapest candidate whose
// footprint beats the raw column wins, otherwise Encode reports the
// block as incompressible and the caller keeps the tuple-at-a-time
// path for it. That keeps the fallback honest — blocks with high
// cardinality, wide ranges and no runs stay uncompressed.
package encoding

import (
	"fmt"
	"math/bits"
	"slices"
)

// Kind identifies a vector's encoding.
type Kind uint8

// Encodings. None is returned in stats for blocks where no candidate
// beat the raw column footprint (Encode returns a nil *Vector).
const (
	None Kind = iota
	FOR
	Dict
	RLE
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case FOR:
		return "for"
	case Dict:
		return "dict"
	case RLE:
		return "rle"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// maxDictSize caps dictionary cardinality; the stats pass bails out of
// distinct tracking beyond it. 256 keeps the dictionary inside four
// cache lines and code widths at or under one byte.
const maxDictSize = 256

// probeSize is the open-addressing table backing the distinct counter:
// a power of two with load factor <= 1/4 at maxDictSize.
const probeSize = 1024

// Scratch holds the reusable state of Encode's stats pass (the
// distinct-value probe table). One Scratch serves one encoder
// goroutine; BatchDB's apply step is single-goroutine per partition,
// so each partition owns one.
type Scratch struct {
	keys  [probeSize]int64
	stamp [probeSize]uint32
	epoch uint32
	vals  []int64
	// codes[slot] is keys[slot]'s dictionary code once assigned — the
	// Dict pack loop resolves value->code with one hash probe instead
	// of a per-value binary search over the dictionary.
	codes [probeSize]int32

	// Retired payload buffers (see Recycle): re-encoding a block every
	// apply window would otherwise allocate fresh packed/dict/run slices
	// each time and leave the old ones to the collector — on the apply
	// critical path, the garbage costs more than the encoding.
	words [][]uint64
	ints  [][]int64
	ends  [][]int32
}

// poolSlots bounds each recycle pool; one encoder goroutine touches at
// most a handful of buffers between reuses.
const poolSlots = 8

// Recycle returns v's payload buffers to the scratch pools for later
// Encode calls and nils them out (stale readers fail loudly instead of
// silently reading reused memory). Only safe when no reader can still
// hold v — i.e. inside the quiesced window that replaced it.
func (sc *Scratch) Recycle(v *Vector) {
	if sc == nil || v == nil {
		return
	}
	if v.packed != nil && len(sc.words) < poolSlots {
		sc.words = append(sc.words, v.packed[:0])
	}
	if v.dict != nil && len(sc.ints) < poolSlots {
		sc.ints = append(sc.ints, v.dict[:0])
	}
	if v.runVals != nil && len(sc.ints) < poolSlots {
		sc.ints = append(sc.ints, v.runVals[:0])
	}
	if v.runEnds != nil && len(sc.ends) < poolSlots {
		sc.ends = append(sc.ends, v.runEnds[:0])
	}
	v.packed, v.dict, v.runVals, v.runEnds = nil, nil, nil, nil
}

// getWords takes a zeroed n-word slice from the pool or allocates one.
func (sc *Scratch) getWords(n int) []uint64 {
	if sc != nil {
		for i, w := range sc.words {
			if cap(w) >= n {
				sc.words[i] = sc.words[len(sc.words)-1]
				sc.words = sc.words[:len(sc.words)-1]
				w = w[:n]
				for j := range w {
					w[j] = 0
				}
				return w
			}
		}
	}
	return make([]uint64, n)
}

// getInts takes an empty int64 slice with capacity >= n, pooled or new.
func (sc *Scratch) getInts(n int) []int64 {
	if sc != nil {
		for i, s := range sc.ints {
			if cap(s) >= n {
				sc.ints[i] = sc.ints[len(sc.ints)-1]
				sc.ints = sc.ints[:len(sc.ints)-1]
				return s[:0]
			}
		}
	}
	return make([]int64, 0, n)
}

// getEnds takes an empty int32 slice with capacity >= n, pooled or new.
func (sc *Scratch) getEnds(n int) []int32 {
	if sc != nil {
		for i, s := range sc.ends {
			if cap(s) >= n {
				sc.ends[i] = sc.ends[len(sc.ends)-1]
				sc.ends = sc.ends[:len(sc.ends)-1]
				return s[:0]
			}
		}
	}
	return make([]int32, 0, n)
}

func (sc *Scratch) reset() {
	sc.epoch++
	if sc.epoch == 0 { // stamp wrap: invalidate everything explicitly
		for i := range sc.stamp {
			sc.stamp[i] = 0
		}
		sc.epoch = 1
	}
	sc.vals = sc.vals[:0]
}

// add records v as seen and reports whether distinct tracking is still
// within maxDictSize.
func (sc *Scratch) add(v int64) bool {
	h := (uint64(v) * 0x9E3779B97F4A7C15) >> (64 - 10)
	for {
		if sc.stamp[h] != sc.epoch {
			sc.stamp[h] = sc.epoch
			sc.keys[h] = v
			sc.vals = append(sc.vals, v)
			return len(sc.vals) <= maxDictSize
		}
		if sc.keys[h] == v {
			return true
		}
		h = (h + 1) & (probeSize - 1)
	}
}

// slot returns v's probe-table slot; v must have been added this epoch.
func (sc *Scratch) slot(v int64) uint64 {
	h := (uint64(v) * 0x9E3779B97F4A7C15) >> (64 - 10)
	for sc.stamp[h] != sc.epoch || sc.keys[h] != v {
		h = (h + 1) & (probeSize - 1)
	}
	return h
}

// Vector is one encoded column block: n order-preserving int64 values
// in one of the supported encodings. Vectors never change outside a
// quiesced maintenance window; inside one, a point write whose value
// the encoded domain already covers is patched in place (TryPatch) and
// anything else forces a re-encode.
type Vector struct {
	kind Kind
	n    int

	// FOR: value i = base + packed[i] (unsigned offsets, width bits).
	// Dict: value i = dict[packed[i]] (codes in value order, width bits).
	base  int64
	width uint
	mask  uint64
	packed []uint64

	// dict holds the sorted distinct values (Dict only). Sorted order
	// means code order equals value order, so interval predicates map to
	// code intervals by binary search.
	dict []int64

	// RLE: run r covers positions [runEnds[r-1], runEnds[r]) with value
	// runVals[r].
	runVals []int64
	runEnds []int32
}

// Kind returns the vector's encoding.
func (v *Vector) Kind() Kind { return v.kind }

// Len returns the number of encoded values.
func (v *Vector) Len() int { return v.n }

// EncodedBytes returns the approximate in-memory footprint of the
// encoded payload (the compression-ratio numerator).
func (v *Vector) EncodedBytes() int {
	switch v.kind {
	case FOR:
		return len(v.packed)*8 + 16
	case Dict:
		return len(v.packed)*8 + len(v.dict)*8 + 16
	case RLE:
		return len(v.runVals)*8 + len(v.runEnds)*4 + 16
	default:
		return 0
	}
}

// get unpacks the width-bit field at position i of packed.
func (v *Vector) get(i int) uint64 {
	if v.width == 0 {
		return 0
	}
	bit := i * int(v.width)
	w, off := bit>>6, uint(bit&63)
	x := v.packed[w] >> off
	if off+v.width > 64 {
		x |= v.packed[w+1] << (64 - off)
	}
	return x & v.mask
}

// put packs the width-bit field at position i of packed; fields are
// written in order into zeroed words. width 0 stores nothing (the
// vector is constant).
func put(packed []uint64, i int, width uint, x uint64) {
	if width == 0 {
		return
	}
	bit := i * int(width)
	w, off := bit>>6, uint(bit&63)
	packed[w] |= x << off
	if off+width > 64 {
		packed[w+1] |= x >> (64 - off)
	}
}

// TryPatch overwrites position i with val without re-encoding and
// reports whether it could: a FOR vector accepts any value inside its
// offset range, a Dict vector any value already in its dictionary.
// Steady-state patch traffic repeats a small value set (carrier IDs,
// the current delivery timestamp), so after one re-encode has admitted
// a value to the block's domain, later windows patch bits instead of
// rebuilding the vector. RLE (and out-of-domain values) return false —
// the caller falls back to a rebuild; a partially patched vector is
// safe to rebuild since every patched position is rewritten from the
// rows anyway.
func (v *Vector) TryPatch(i int, val int64) bool {
	switch v.kind {
	case FOR:
		if val < v.base {
			return false
		}
		d := uint64(val) - uint64(v.base)
		if v.width == 0 {
			return d == 0
		}
		if d > v.mask {
			return false
		}
		v.set(i, d)
		return true
	case Dict:
		c, ok := slices.BinarySearch(v.dict, val)
		if !ok {
			return false
		}
		if v.width != 0 {
			v.set(i, uint64(c))
		}
		return true
	default: // RLE: a point write splits runs; rebuild instead
		return false
	}
}

// set overwrites the width-bit field at position i of packed
// (read-modify-write, unlike put's OR-into-zeroed).
func (v *Vector) set(i int, x uint64) {
	bit := i * int(v.width)
	w, off := bit>>6, uint(bit&63)
	v.packed[w] = v.packed[w]&^(v.mask<<off) | x<<off
	if off+v.width > 64 {
		rem := 64 - off
		v.packed[w+1] = v.packed[w+1]&^(v.mask>>rem) | x>>rem
	}
}

// DecodeAll writes every position's value into dst (len >= Len()).
// It is the incremental re-encode primitive: a block dirtied by a few
// point patches is rebuilt by decoding the old vector sequentially —
// the packed payload is a fraction of the row bytes and streams
// through cache — and overwriting just the patched slots, instead of
// re-gathering the whole block from strided row storage.
func (v *Vector) DecodeAll(dst []int64) {
	switch v.kind {
	case FOR:
		if v.width == 0 {
			for i := 0; i < v.n; i++ {
				dst[i] = v.base
			}
			return
		}
		for i, bit := 0, 0; i < v.n; i, bit = i+1, bit+int(v.width) {
			w, off := bit>>6, uint(bit&63)
			x := v.packed[w] >> off
			if off+v.width > 64 {
				x |= v.packed[w+1] << (64 - off)
			}
			dst[i] = v.base + int64(x&v.mask)
		}
	case Dict:
		if v.width == 0 {
			for i := 0; i < v.n; i++ {
				dst[i] = v.dict[0]
			}
			return
		}
		for i, bit := 0, 0; i < v.n; i, bit = i+1, bit+int(v.width) {
			w, off := bit>>6, uint(bit&63)
			x := v.packed[w] >> off
			if off+v.width > 64 {
				x |= v.packed[w+1] << (64 - off)
			}
			dst[i] = v.dict[x&v.mask]
		}
	default: // RLE
		pos := 0
		for r, val := range v.runVals {
			end := int(v.runEnds[r])
			for ; pos < end; pos++ {
				dst[pos] = val
			}
		}
	}
}

// Value decodes position i — the parity oracle for tests and a
// debugging aid; scans never decode wholesale.
func (v *Vector) Value(i int) int64 {
	switch v.kind {
	case FOR:
		return v.base + int64(v.get(i))
	case Dict:
		return v.dict[v.get(i)]
	default: // RLE
		lo, hi := 0, len(v.runEnds)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if int(v.runEnds[mid]) <= i {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return v.runVals[lo]
	}
}

// Encode analyzes vals with a cheap stats pass (min/max, run count)
// and materializes the cheapest encoding, or returns nil when no
// candidate beats the raw column footprint of rawBits bits per value.
// sc may be nil to skip dictionary probing.
func Encode(vals []int64, rawBits int, sc *Scratch) *Vector {
	n := len(vals)
	if n == 0 {
		return nil
	}
	minV, maxV := vals[0], vals[0]
	runs := 1
	prev := vals[0]
	for _, v := range vals[1:] {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
		if v != prev {
			runs++
			prev = v
		}
	}
	return EncodeStats(vals, rawBits, sc, minV, maxV, runs)
}

// Constant builds the width-0 FOR vector every position of which
// decodes to val — the degenerate block a caller can recognize from
// its own metadata (e.g. a synopsis with min == max) without gathering
// the rows at all.
func Constant(n int, val int64) *Vector {
	v := &Vector{kind: FOR, n: n, base: val, width: 0}
	v.finishPacked(nil)
	return v
}

// EncodeStats is Encode for callers that already know the block's
// stats — BatchDB's apply step computes min/max/run-count inside the
// row-gather loop, so re-deriving them here would double-scan the
// block. minV/maxV must bound every value (loose bounds only widen the
// FOR width); runs must be the exact run count.
//
// Dictionary candidates are priced only when FOR needs more than a
// byte per value — below that, FOR already packs within 8x of any
// dictionary's code width — and when RLE hasn't already reached ~2
// bits per value, where no dictionary can save enough to pay for the
// per-value distinct probing. The probe pass therefore runs second,
// gated on the cheap stats.
func EncodeStats(vals []int64, rawBits int, sc *Scratch, minV, maxV int64, runs int) *Vector {
	n := len(vals)
	if n == 0 {
		return nil
	}
	// Tiny-cardinality fast path: blocks dirtied by point patches are
	// typically a handful of distinct values (a date column holding
	// "unset" plus a few delivery timestamps), and four registers
	// compare much faster than the hash probe. Fall into the table only
	// from the first value that overflows them. Gated on the same test
	// encodeSeeded applies, so callers that will not dict-probe skip
	// the scan entirely.
	var d [4]int64
	d[0] = vals[0]
	nd, i := 1, 1
	if forWidth := bits.Len64(uint64(maxV) - uint64(minV)); sc != nil && forWidth > 8 && runs*(64+32) > 2*n {
	scan:
		for ; i < n; i++ {
			v := vals[i]
			switch {
			case v == d[0]:
			case nd > 1 && v == d[1]:
			case nd > 2 && v == d[2]:
			case nd > 3 && v == d[3]:
			default:
				if nd == 4 {
					break scan
				}
				d[nd] = v
				nd++
			}
		}
	}
	return encodeSeeded(vals, rawBits, sc, minV, maxV, runs, &d, nd, i)
}

// encodeSeeded is the shared back half of Encode/EncodeStats: d[:nd]
// holds the distinct values seen before position over (at most four —
// the callers' tiny-cardinality registers), and the hash probe resumes
// from over for whatever the registers could not absorb.
func encodeSeeded(vals []int64, rawBits int, sc *Scratch, minV, maxV int64, runs int, d *[4]int64, nd, over int) *Vector {
	n := len(vals)
	forWidth := bits.Len64(uint64(maxV) - uint64(minV))
	dictOK := sc != nil && forWidth > 8 && runs*(64+32) > 2*n
	if dictOK {
		sc.reset()
		for k := 0; k < nd; k++ {
			sc.add(d[k])
		}
		for i := over; i < n; i++ {
			if dictOK = sc.add(vals[i]); !dictOK {
				break
			}
		}
	}

	// Candidate footprints in bits; the 128-bit constant stands in for
	// the per-vector header. A candidate must undercut the raw column by
	// at least 1/8 — marginal wins (a 63-bit FOR over 64-bit data) are
	// not worth the re-encode traffic.
	const header = 128
	raw := n * rawBits
	best, kind := raw-raw>>3, None
	if c := n*forWidth + header; forWidth < 64 && c < best {
		best, kind = c, FOR
	}
	if dictOK {
		nd := len(sc.vals)
		if c := n*bits.Len(uint(nd-1)) + nd*64 + header; c < best {
			best, kind = c, Dict
		}
	}
	if c := runs*(64+32) + header; c < best {
		best, kind = c, RLE
	}
	_ = best

	switch kind {
	case FOR:
		v := &Vector{kind: FOR, n: n, base: minV, width: uint(forWidth)}
		v.finishPacked(sc)
		v.packFOR(vals)
		return v
	case Dict:
		dict := append(sc.getInts(len(sc.vals)), sc.vals...)
		slices.Sort(dict)
		v := &Vector{
			kind: Dict, n: n, dict: dict,
			width: uint(bits.Len(uint(len(dict) - 1))),
		}
		v.finishPacked(sc)
		if nd := len(dict); nd >= 2 && nd <= 4 {
			// Patch-dirtied blocks are dominated by 2-4 distinct values (a
			// date column holding "unset" plus a few delivery timestamps);
			// a register compare chain beats the hash probe per value.
			// Unused lanes repeat dict[nd-1]: a duplicate value matches its
			// earlier case first, so padding can never assign a wrong code.
			d1, d2, d3 := dict[1], dict[nd-1], dict[nd-1]
			if nd > 2 {
				d2 = dict[2]
			}
			if nd > 3 {
				d3 = dict[3]
			}
			width := v.width
			var cur uint64
			shift, wi := uint(0), 0
			for _, x := range vals {
				var c uint64
				switch x {
				case d1:
					c = 1
				case d2:
					c = 2
				case d3:
					c = 3
				}
				cur |= c << shift
				shift += width
				if shift >= 64 {
					v.packed[wi] = cur
					wi++
					shift -= 64
					cur = 0
					if shift > 0 {
						cur = c >> (width - shift)
					}
				}
			}
			if shift > 0 {
				v.packed[wi] = cur
			}
			return v
		}
		// Sorting reordered the codes; stamp each entry's code into the
		// probe table (nd probes), then the pack loop resolves value->code
		// with one probe per value and streams the fields like packFOR.
		for i, dv := range dict {
			sc.codes[sc.slot(dv)] = int32(i)
		}
		width := v.width
		var cur uint64
		shift, wi := uint(0), 0
		for _, x := range vals {
			c := uint64(sc.codes[sc.slot(x)])
			cur |= c << shift
			shift += width
			if shift >= 64 {
				v.packed[wi] = cur
				wi++
				shift -= 64
				cur = 0
				if shift > 0 {
					cur = c >> (width - shift)
				}
			}
		}
		if shift > 0 {
			v.packed[wi] = cur
		}
		return v
	case RLE:
		v := &Vector{kind: RLE, n: n,
			runVals: sc.getInts(runs), runEnds: sc.getEnds(runs)}
		for i := 0; i < n; {
			j := i + 1
			for j < n && vals[j] == vals[i] {
				j++
			}
			v.runVals = append(v.runVals, vals[i])
			v.runEnds = append(v.runEnds, int32(j))
			i = j
		}
		return v
	default:
		return nil
	}
}

// finishPacked sizes the packed words and mask for the chosen width,
// drawing the word buffer from sc's recycle pool when available.
func (v *Vector) finishPacked(sc *Scratch) {
	if v.width == 0 {
		v.mask = 0
		return
	}
	v.mask = ^uint64(0) >> (64 - v.width)
	v.packed = sc.getWords((v.n*int(v.width) + 63) >> 6)
}

// packFOR streams the base offsets into packed in order, carrying the
// write position across values instead of re-deriving word and bit
// offset per field as put does — this is Encode's hot loop.
func (v *Vector) packFOR(vals []int64) {
	width := v.width
	if width == 0 {
		return
	}
	base := uint64(v.base)
	var cur uint64
	shift, wi := uint(0), 0
	for _, x := range vals {
		d := uint64(x) - base
		cur |= d << shift
		shift += width
		if shift >= 64 {
			v.packed[wi] = cur
			wi++
			shift -= 64
			cur = 0
			if shift > 0 {
				cur = d >> (width - shift)
			}
		}
	}
	if shift > 0 {
		v.packed[wi] = cur
	}
}

// FilterAnd narrows sel to the values satisfying
// `lo <= value <= hi && (set == nil || value IN set)`: bit i of sel
// corresponds to position i of the vector, and every bit whose value
// fails the predicate is cleared (set bits are never added, so
// repeated calls AND conjuncts). set must be sorted ascending. Bits at
// positions in [Len(), 64*ceil(Len()/64)) are cleared too, so a
// partial tail block yields a clean bitmap. len(sel) must be at least
// ceil(Len()/64); later words are left untouched.
//
// The predicate constant is translated into the encoded domain once
// per call — an unsigned offset interval for FOR, a code interval (and
// code-membership mask) for Dict, per-run verdicts for RLE — so the
// hot loop compares packed fields without decoding.
func (v *Vector) FilterAnd(sel []uint64, lo, hi int64, set []int64) {
	nw := (v.n + 63) >> 6
	if tail := uint(v.n & 63); tail != 0 {
		sel[nw-1] &= ^uint64(0) >> (64 - tail)
	}
	sel = sel[:nw]
	if lo > hi {
		clearWords(sel)
		return
	}
	switch v.kind {
	case FOR:
		v.filterFOR(sel, lo, hi, set)
	case Dict:
		v.filterDict(sel, lo, hi, set)
	default:
		v.filterRLE(sel, lo, hi, set)
	}
}

func clearWords(sel []uint64) {
	for i := range sel {
		sel[i] = 0
	}
}

// member reports set membership; set is sorted ascending.
func member(set []int64, x int64) bool {
	_, ok := slices.BinarySearch(set, x)
	return ok
}

func (v *Vector) filterFOR(sel []uint64, lo, hi int64, set []int64) {
	if hi < v.base {
		clearWords(sel)
		return
	}
	if v.width == 0 { // constant block: one verdict decides every bit
		if v.base < lo || (set != nil && !member(set, v.base)) {
			clearWords(sel)
		}
		return
	}
	// Translate [lo, hi] into the unsigned offset domain. Offsets are
	// deltas from base, so the comparison runs on packed fields as-is.
	var dlo uint64
	if lo > v.base {
		dlo = uint64(lo) - uint64(v.base)
	}
	dhi := uint64(hi) - uint64(v.base)
	if dlo > v.mask {
		clearWords(sel)
		return
	}
	if dhi > v.mask {
		dhi = v.mask
	}
	v.filterPackedRange(sel, dlo, dhi)
	if set == nil {
		return
	}
	// Set membership runs scalar on the range pass's survivors.
	for wi, m := range sel {
		for m != 0 {
			j := bits.TrailingZeros64(m)
			m &= m - 1
			if !member(set, v.base+int64(v.get(wi<<6|j))) {
				sel[wi] &^= 1 << uint(j)
			}
		}
	}
}

func (v *Vector) filterDict(sel []uint64, lo, hi int64, set []int64) {
	// Codes are assigned in value order, so the value interval becomes a
	// code interval by two binary searches over the dictionary.
	cLo, _ := slices.BinarySearch(v.dict, lo)
	cHi, ok := slices.BinarySearch(v.dict, hi)
	if !ok {
		cHi--
	}
	if cLo > cHi {
		clearWords(sel)
		return
	}
	// IN-lists become a bitmask over the (at most maxDictSize) codes:
	// one membership probe per dictionary entry, then the survivor loop
	// tests a single bit per value.
	var codeOK [maxDictSize / 64]uint64
	if set != nil {
		any := false
		for c := cLo; c <= cHi; c++ {
			if member(set, v.dict[c]) {
				codeOK[c>>6] |= 1 << uint(c&63)
				any = true
			}
		}
		if !any {
			clearWords(sel)
			return
		}
	}
	v.filterPackedRange(sel, uint64(cLo), uint64(cHi))
	if set == nil {
		return
	}
	for wi, m := range sel {
		for m != 0 {
			j := bits.TrailingZeros64(m)
			m &= m - 1
			c := v.get(wi<<6 | j)
			if codeOK[c>>6]&(1<<uint(c&63)) == 0 {
				sel[wi] &^= 1 << uint(j)
			}
		}
	}
}

// filterPackedRange is the shared range kernel behind the FOR and Dict
// paths: it clears every sel bit whose packed field value (an offset or
// a code) falls outside [dlo, dhi]. Callers guarantee dlo <= dhi and
// dhi <= mask. Widths that align with the word (4/8/16 bits) compare a
// whole packed word of lanes at once (filterAlignedRange); width 1 is
// pure bitwise; everything else streams fields with a branchless
// unsigned-span compare.
func (v *Vector) filterPackedRange(sel []uint64, dlo, dhi uint64) {
	switch v.width {
	case 0:
		// Every field decodes to 0 (degenerate one-entry dictionary).
		if dlo > 0 {
			clearWords(sel)
		}
	case 1:
		// Field i is bit i of packed word i: the verdict IS the payload.
		for wi := range sel {
			switch {
			case dlo == 0 && dhi >= 1: // both values pass
			case dlo == 0:
				sel[wi] &^= v.packed[wi]
			default:
				sel[wi] &= v.packed[wi]
			}
		}
	case 4, 8, 16:
		v.filterAlignedRange(sel, dlo, dhi)
	default:
		v.filterScalarRange(sel, dlo, dhi)
	}
}

// filterScalarRange handles widths the SWAR kernel cannot: sparse
// selection words test only their set bits; dense words stream all 64
// fields with a carried bit cursor and a single branchless unsigned
// compare (x - dlo <= span catches both bounds at once).
func (v *Vector) filterScalarRange(sel []uint64, dlo, dhi uint64) {
	span := dhi - dlo
	width := v.width
	for wi, m := range sel {
		if m == 0 {
			continue
		}
		if bits.OnesCount64(m) < 16 {
			for ; m != 0; m &= m - 1 {
				j := bits.TrailingZeros64(m)
				if v.get(wi<<6|j)-dlo > span {
					sel[wi] &^= 1 << uint(j)
				}
			}
			continue
		}
		base := wi << 6
		n64 := v.n - base
		if n64 > 64 {
			n64 = 64
		}
		var keep uint64
		bit := base * int(width)
		for j := 0; j < n64; j++ {
			w, off := bit>>6, uint(bit&63)
			x := v.packed[w] >> off
			if off+width > 64 {
				x |= v.packed[w+1] << (64 - off)
			}
			if x&v.mask-dlo <= span {
				keep |= 1 << uint(j)
			}
			bit += int(width)
		}
		sel[wi] &= keep
	}
}

// filterAlignedRange is the word-parallel range kernel for field widths
// w in {4, 8, 16}: fields never straddle packed words, so each packed
// word is compared as SWAR lanes of s = 2w bits — even fields in one
// pass, odd fields in a second, each field sitting in its lane's low
// half with the top half zero as overflow headroom. Per lane,
// (x|H)-dlo keeps the lane's high bit iff x >= dlo and (dhi|H)-x keeps
// it iff x <= dhi (no borrow can cross lanes); the verdict high bits
// are gathered into a dense mask with one multiply (the movemask
// multiply generalized to s-bit lanes — collision-free for s >= 8),
// and the even/odd masks interleave back into position order with a
// Morton bit-spread. 64 bits of payload cost a handful of ALU ops
// instead of 64/w unpack-compare iterations.
func (v *Vector) filterAlignedRange(sel []uint64, dlo, dhi uint64) {
	w := v.width
	s := 2 * w      // SWAR lane width
	nf := 32 / int(w) // fields per lane pass (even or odd halves)
	var H, L uint64
	switch s {
	case 8:
		H, L = 0x8080808080808080, 0x0101010101010101
	case 16:
		H, L = 0x8000800080008000, 0x0001000100010001
	default: // 32
		H, L = 0x8000000080000000, 0x0000000100000001
	}
	evenMask := v.mask * L
	dloL, dhiL := dlo*L, dhi*L|H
	var gather uint64 // Σ 2^(m(s-1)): the movemask multiply constant
	for m := 0; m < nf; m++ {
		gather |= 1 << (uint(m) * (s - 1))
	}
	gshift := uint(nf-1) * (s - 1)
	lowNf := uint64(1)<<uint(nf) - 1
	k := 64 / int(w) // fields per packed word
	pw := int(w)     // packed words per selection word (64/k)
	np := len(v.packed)
	span := dhi - dlo
	for wi, m := range sel {
		if m == 0 {
			continue
		}
		if bits.OnesCount64(m) < 8 {
			// Sparse survivors: unpacking whole words would evaluate
			// mostly-dead lanes; test the set bits directly.
			for ; m != 0; m &= m - 1 {
				j := bits.TrailingZeros64(m)
				if v.get(wi<<6|j)-dlo > span {
					sel[wi] &^= 1 << uint(j)
				}
			}
			continue
		}
		var keep uint64
		shift := uint(0)
		for g, pos := 0, wi*pw; g < pw && pos+g < np; g++ {
			x := v.packed[pos+g]
			xe := x & evenMask
			xo := (x >> w) & evenMask
			ve := ((xe | H) - dloL) & (dhiL - xe) & H
			vo := ((xo | H) - dloL) & (dhiL - xo) & H
			ge := ((ve >> (s - 1)) * gather) >> gshift & lowNf
			go_ := ((vo >> (s - 1)) * gather) >> gshift & lowNf
			keep |= (spreadBits(ge) | spreadBits(go_)<<1) << shift
			shift += uint(k)
		}
		sel[wi] &= keep
	}
}

// spreadBits inserts a zero between consecutive low bits (Morton
// spread): bit i moves to bit 2i. Defined for the low 32 bits.
func spreadBits(x uint64) uint64 {
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

func (v *Vector) filterRLE(sel []uint64, lo, hi int64, set []int64) {
	pos := 0
	for r, val := range v.runVals {
		end := int(v.runEnds[r])
		if val < lo || val > hi || (set != nil && !member(set, val)) {
			clearRange(sel, pos, end)
		}
		pos = end
	}
}

// clearRange clears bits [from, to) of sel.
func clearRange(sel []uint64, from, to int) {
	if from >= to {
		return
	}
	fw, tw := from>>6, (to-1)>>6
	fm := ^uint64(0) << uint(from&63)
	tm := ^uint64(0) >> uint(63-(to-1)&63)
	if fw == tw {
		sel[fw] &^= fm & tm
		return
	}
	sel[fw] &^= fm
	for w := fw + 1; w < tw; w++ {
		sel[w] = 0
	}
	sel[tw] &^= tm
}
