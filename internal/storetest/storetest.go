// Package storetest is the shared conformance suite for BatchDB's two
// partition implementations — the OLAP replica's row partitions
// (internal/olap) and the column-layout partitions (internal/colstore).
//
// Both implement the same storage-op surface with the same contract:
// RowID 0 is the reserved tombstone sentinel, duplicate inserts and
// patches to dead slots are rejected, deletes recycle slots without
// growing the slot space, and scans skip tombstones. The two packages
// run Run against their own constructors, so the layouts cannot drift
// apart — extend this suite when extending either surface.
package storetest

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"batchdb/internal/storage"
)

// Store is the storage-op surface shared by olap.Partition and
// colstore.Partition.
type Store interface {
	Insert(rowID uint64, tuple []byte) error
	UpdateField(rowID uint64, offset uint32, data []byte) error
	PatchSlot(slot int32, offset uint32, data []byte) error
	Locate(rowID uint64) (int32, bool)
	Delete(rowID uint64) error
	Get(rowID uint64) ([]byte, bool)
	Live() int
	Slots() int
	Scan(fn func(rowID uint64, tuple []byte) bool)
	ScanRange(lo, hi int, fn func(rowID uint64, tuple []byte) bool)
}

// Schema returns the relation the suite drives stores with: a mix of
// every numeric type plus a string column, so field patches cross both
// encodable and non-encodable byte ranges.
func Schema() *storage.Schema {
	return storage.NewSchema(990, "storetest", []storage.Column{
		{Name: "id", Type: storage.Int64},
		{Name: "a", Type: storage.Int32},
		{Name: "b", Type: storage.Float64},
		{Name: "s", Type: storage.String, Size: 8},
		{Name: "c", Type: storage.Int64},
	}, []int{0})
}

// Run exercises one Store implementation against the shared contract.
// mk must return a fresh, empty store over Schema() on every call.
func Run(t *testing.T, mk func() Store) {
	t.Run("Directed", func(t *testing.T) { directed(t, mk()) })
	t.Run("Randomized", func(t *testing.T) { randomized(t, mk()) })
}

func mkTuple(s *storage.Schema, id int64, a int32, b float64, c int64) []byte {
	tup := s.NewTuple()
	s.PutInt64(tup, 0, id)
	s.PutInt32(tup, 1, a)
	s.PutFloat64(tup, 2, b)
	copy(tup[s.Offset(3):], "str")
	s.PutInt64(tup, 4, c)
	return tup
}

// directed checks the explicit error contract: the reserved sentinel,
// duplicates, dead-slot patches, bounds, unknown rows, and slot
// recycling.
func directed(t *testing.T, p Store) {
	s := Schema()
	if err := p.Insert(0, mkTuple(s, 0, 0, 0, 0)); err == nil {
		t.Fatal("insert of reserved RowID 0 accepted")
	}
	if err := p.Insert(1, mkTuple(s, 1, 10, 1.5, 100)); err != nil {
		t.Fatal(err)
	}
	if err := p.Insert(1, mkTuple(s, 1, 11, 1.5, 100)); err == nil {
		t.Fatal("duplicate insert accepted")
	}
	if err := p.Insert(2, mkTuple(s, 2, 20, 2.5, 200)); err != nil {
		t.Fatal(err)
	}

	// Patch path: a located slot accepts patches while live.
	slot, ok := p.Locate(1)
	if !ok {
		t.Fatal("Locate(1) failed")
	}
	patch := make([]byte, s.ColSize(4))
	binary.LittleEndian.PutUint64(patch, 101)
	if err := p.PatchSlot(slot, uint32(s.Offset(4)), patch); err != nil {
		t.Fatal(err)
	}
	if tup, ok := p.Get(1); !ok || s.GetInt64(tup, 4) != 101 {
		t.Fatalf("patched value not visible: %v %v", tup, ok)
	}
	if err := p.PatchSlot(slot, uint32(s.TupleSize()), []byte{1}); err == nil {
		t.Fatal("out-of-bounds patch accepted")
	}
	if err := p.PatchSlot(-1, 0, []byte{1}); err == nil {
		t.Fatal("negative-slot patch accepted")
	}
	if err := p.PatchSlot(int32(p.Slots()), 0, []byte{1}); err == nil {
		t.Fatal("beyond-slots patch accepted")
	}
	if err := p.UpdateField(99, 0, []byte{1}); err == nil {
		t.Fatal("update of unknown row accepted")
	}
	if err := p.Delete(99); err == nil {
		t.Fatal("delete of unknown row accepted")
	}

	// Delete, then patch the stale slot handle: the slot is dead (and
	// may be recycled by a future insert), so the patch must be refused
	// instead of silently corrupting whatever lives there next.
	if err := p.Delete(1); err != nil {
		t.Fatal(err)
	}
	if err := p.PatchSlot(slot, uint32(s.Offset(4)), patch); err == nil {
		t.Fatal("patch of tombstoned slot accepted")
	}
	if p.Live() != 1 || p.Slots() != 2 {
		t.Fatalf("Live=%d Slots=%d after delete", p.Live(), p.Slots())
	}
	p.Scan(func(rowID uint64, _ []byte) bool {
		if rowID == 1 {
			t.Fatal("tombstoned row visible in scan")
		}
		return true
	})

	// Recycling: the freed slot is reused, the slot space does not grow,
	// and the stale handle now addresses the recycled tuple — patching
	// through it would hit row 3, which is why the dead-slot guard above
	// is load-bearing.
	if err := p.Insert(3, mkTuple(s, 3, 30, 3.5, 300)); err != nil {
		t.Fatal(err)
	}
	if p.Slots() != 2 {
		t.Fatalf("Slots=%d after recycling insert, want 2", p.Slots())
	}
	if got, _ := p.Locate(3); got != slot {
		t.Fatalf("recycled slot %d, want %d", got, slot)
	}
}

// randomized drives the store with a random op mix against a model map
// and checks full-state equivalence after every burst.
func randomized(t *testing.T, p Store) {
	s := Schema()
	rng := rand.New(rand.NewSource(7))
	model := make(map[uint64][]byte)
	var live []uint64
	nextRow := uint64(1)

	check := func() {
		t.Helper()
		if p.Live() != len(model) {
			t.Fatalf("Live=%d, model has %d", p.Live(), len(model))
		}
		seen := 0
		p.Scan(func(rowID uint64, tup []byte) bool {
			want, ok := model[rowID]
			if !ok {
				t.Fatalf("scan surfaced unknown row %d", rowID)
			}
			if string(tup) != string(want) {
				t.Fatalf("row %d: scan %x, model %x", rowID, tup, want)
			}
			seen++
			return true
		})
		if seen != len(model) {
			t.Fatalf("scan saw %d rows, model has %d", seen, len(model))
		}
		// Ranged scans cover the same rows, whatever the cut.
		step := 1 + rng.Intn(p.Slots()+1)
		ranged := 0
		for lo := 0; lo < p.Slots(); lo += step {
			p.ScanRange(lo, lo+step, func(uint64, []byte) bool { ranged++; return true })
		}
		if ranged != len(model) {
			t.Fatalf("ranged scan saw %d rows, model has %d", ranged, len(model))
		}
	}

	for burst := 0; burst < 20; burst++ {
		for op := 0; op < 50; op++ {
			switch k := rng.Intn(10); {
			case k < 5 || len(live) == 0: // insert
				tup := mkTuple(s, int64(nextRow), int32(rng.Intn(100)),
					float64(rng.Intn(100))/4, int64(rng.Intn(1000)))
				if err := p.Insert(nextRow, tup); err != nil {
					t.Fatal(err)
				}
				model[nextRow] = append([]byte(nil), tup...)
				live = append(live, nextRow)
				nextRow++
			case k < 8: // patch one random column through UpdateField
				rid := live[rng.Intn(len(live))]
				col := rng.Intn(len(s.Columns))
				patch := make([]byte, s.ColSize(col))
				rng.Read(patch)
				if err := p.UpdateField(rid, uint32(s.Offset(col)), patch); err != nil {
					t.Fatal(err)
				}
				copy(model[rid][s.Offset(col):], patch)
			default: // delete
				i := rng.Intn(len(live))
				rid := live[i]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				if err := p.Delete(rid); err != nil {
					t.Fatal(err)
				}
				delete(model, rid)
			}
		}
		check()
	}
}
