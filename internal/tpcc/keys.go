package tpcc

// Packed uint64 primary keys. Bit budgets (high to low):
//
//	warehouse:  w
//	district:   w<<4  | d            (d in 1..10)
//	customer:   w<<16 | d<<12 | c    (c in 1..3000)
//	orders:     (w<<4|d)<<32 | o     (o < 2^32)
//	new_order:  same as orders
//	order_line: ((w<<4|d)<<32|o)<<4 | n  (n in 1..15)
//	item:       i                    (i in 1..100000)
//	stock:      w<<20 | i
//	history:    (w<<16|d<<12|c)<<20 | paymentCnt
//
// These stay within 64 bits for w < 2^24, far beyond laptop scale.

// WarehouseKey packs a warehouse primary key.
func WarehouseKey(w int64) uint64 { return uint64(w) }

// DistrictKey packs a district primary key.
func DistrictKey(w, d int64) uint64 { return uint64(w)<<4 | uint64(d) }

// CustomerKey packs a customer primary key.
func CustomerKey(w, d, c int64) uint64 { return uint64(w)<<16 | uint64(d)<<12 | uint64(c) }

// OrderKey packs an order primary key.
func OrderKey(w, d, o int64) uint64 { return (uint64(w)<<4|uint64(d))<<32 | uint64(o) }

// NewOrderKey packs a new_order primary key.
func NewOrderKey(w, d, o int64) uint64 { return OrderKey(w, d, o) }

// OrderLineKey packs an order_line primary key.
func OrderLineKey(w, d, o, n int64) uint64 { return OrderKey(w, d, o)<<4 | uint64(n) }

// ItemKey packs an item primary key.
func ItemKey(i int64) uint64 { return uint64(i) }

// StockKey packs a stock primary key.
func StockKey(w, i int64) uint64 { return uint64(w)<<20 | uint64(i) }

// HistoryKey packs the synthetic history key: unique because a
// customer's payment count increments with every payment.
func HistoryKey(w, d, c, paymentCnt int64) uint64 {
	return CustomerKey(w, d, c)<<20 | uint64(paymentCnt)
}

// SupplierKey, NationKey and RegionKey pack the CH dimension keys.
func SupplierKey(k int64) uint64 { return uint64(k) }

// NationKey packs a nation primary key.
func NationKey(k int64) uint64 { return uint64(k) }

// RegionKey packs a region primary key.
func RegionKey(k int64) uint64 { return uint64(k) }

// SupplierOf derives the CH-benCHmark's stock->supplier relationship:
// su_suppkey = (s_w_id * s_i_id) mod 10000.
func SupplierOf(w, i int64) int64 { return (w * i) % NumSuppliers }

// Secondary index keys ---------------------------------------------------

// CustomerNameKey orders customers by (w, d, hash(last), c): lookups by
// last name seek the 40-bit prefix and verify the name on the tuple.
func CustomerNameKey(w, d int64, last string, c int64) uint64 {
	return (uint64(w)<<4|uint64(d))<<40 | uint64(nameHash(last))<<24 | uint64(c)
}

// CustomerNamePrefix returns the [lo, hi) key range of a (w, d, last)
// group in the customer name index.
func CustomerNamePrefix(w, d int64, last string) (uint64, uint64) {
	base := (uint64(w)<<4|uint64(d))<<40 | uint64(nameHash(last))<<24
	return base, base + 1<<24
}

func nameHash(s string) uint16 {
	var h uint16 = 0xABCD
	for i := 0; i < len(s); i++ {
		h = h*31 + uint16(s[i])
	}
	return h
}

// OrderCustomerKey orders the orders of one customer by o_id:
// (w, d, c, o). OrderStatus seeks the end of the prefix for the
// customer's most recent order.
func OrderCustomerKey(w, d, c, o int64) uint64 {
	return ((uint64(w)<<4|uint64(d))<<12|uint64(c))<<32 | uint64(o)
}

// OrderCustomerPrefix returns the [lo, hi) range of one customer's
// orders in the order-customer index.
func OrderCustomerPrefix(w, d, c int64) (uint64, uint64) {
	base := ((uint64(w)<<4|uint64(d))<<12 | uint64(c)) << 32
	return base, base + 1<<32
}

// NewOrderDistrictPrefix returns the [lo, hi) range of one district's
// new_order entries (ordered by o_id) — Delivery picks the oldest.
func NewOrderDistrictPrefix(w, d int64) (uint64, uint64) {
	base := (uint64(w)<<4 | uint64(d)) << 32
	return base, base + 1<<32
}
