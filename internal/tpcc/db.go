package tpcc

import (
	"batchdb/internal/mvcc"
	"batchdb/internal/storage"
)

// Scale controls dataset cardinalities. Spec values describe the full
// TPC-C benchmark; SmallScale keeps unit tests fast. The paper scales by
// warehouse count only; scaling the per-district constants as well lets
// the reproduction run on laptop-class machines while preserving all
// ratios.
type Scale struct {
	Warehouses               int
	DistrictsPerWarehouse    int
	CustomersPerDistrict     int
	InitialOrdersPerDistrict int
	// UndeliveredOrders is how many of the newest initial orders per
	// district start undelivered (spec: 900 of 3000).
	UndeliveredOrders int
	Items             int
	// MaxItemID bounds item ids used in NURand; equals Items.
}

// SpecScale returns the TPC-C specification cardinalities for the given
// warehouse count.
func SpecScale(warehouses int) Scale {
	return Scale{
		Warehouses:               warehouses,
		DistrictsPerWarehouse:    10,
		CustomersPerDistrict:     3000,
		InitialOrdersPerDistrict: 3000,
		UndeliveredOrders:        900,
		Items:                    100000,
	}
}

// SmallScale returns a laptop-test scale with all spec ratios preserved
// (30% of initial orders undelivered, etc.).
func SmallScale(warehouses int) Scale {
	return Scale{
		Warehouses:               warehouses,
		DistrictsPerWarehouse:    4,
		CustomersPerDistrict:     60,
		InitialOrdersPerDistrict: 60,
		UndeliveredOrders:        18,
		Items:                    500,
	}
}

// BenchScale is the laptop benchmark scale: spec district count with
// per-district cardinalities reduced 10x (so one warehouse is ~1/10 of
// a spec warehouse). The paper's 100-warehouse runs map to ~10
// warehouses at this scale.
func BenchScale(warehouses int) Scale {
	return Scale{
		Warehouses:               warehouses,
		DistrictsPerWarehouse:    10,
		CustomersPerDistrict:     300,
		InitialOrdersPerDistrict: 300,
		UndeliveredOrders:        90,
		Items:                    5000,
	}
}

// DB bundles the TPC-C tables, their secondary indexes and the scale.
type DB struct {
	Scale   Scale
	Schemas *Schemas
	Store   *mvcc.Store

	Warehouse, District, Customer, History, NewOrder, Order,
	OrderLine, Item, Stock, Supplier, Nation, Region *mvcc.Table

	// CustByName supports Payment/OrderStatus lookups by last name.
	CustByName *mvcc.Secondary
	// OrdByCust supports OrderStatus's "most recent order of customer".
	OrdByCust *mvcc.Secondary
	// NOByDist supports Delivery's "oldest undelivered order".
	NOByDist *mvcc.Secondary
}

// NewDB creates the tables (with secondary indexes) in a fresh store.
func NewDB(scale Scale) *DB {
	sch := NewSchemas()
	st := mvcc.NewStore()
	db := &DB{Scale: scale, Schemas: sch, Store: st}

	hint := scale.Warehouses * scale.DistrictsPerWarehouse * scale.CustomersPerDistrict

	db.Warehouse = st.CreateTable(sch.Warehouse, func(t []byte) uint64 {
		return WarehouseKey(sch.Warehouse.GetInt64(t, WID))
	}, scale.Warehouses)
	db.District = st.CreateTable(sch.District, func(t []byte) uint64 {
		return DistrictKey(sch.District.GetInt64(t, DWID), sch.District.GetInt64(t, DID))
	}, scale.Warehouses*scale.DistrictsPerWarehouse)
	db.Customer = st.CreateTable(sch.Customer, func(t []byte) uint64 {
		return CustomerKey(sch.Customer.GetInt64(t, CWID), sch.Customer.GetInt64(t, CDID), sch.Customer.GetInt64(t, CID))
	}, hint)
	db.History = st.CreateTable(sch.History, func(t []byte) uint64 {
		return uint64(sch.History.GetInt64(t, HPK))
	}, hint)
	db.NewOrder = st.CreateTable(sch.NewOrder, func(t []byte) uint64 {
		return NewOrderKey(sch.NewOrder.GetInt64(t, NOWID), sch.NewOrder.GetInt64(t, NODID), sch.NewOrder.GetInt64(t, NOOID))
	}, hint)
	db.Order = st.CreateTable(sch.Order, func(t []byte) uint64 {
		return OrderKey(sch.Order.GetInt64(t, OWID), sch.Order.GetInt64(t, ODID), sch.Order.GetInt64(t, OID))
	}, hint)
	db.OrderLine = st.CreateTable(sch.OrderLine, func(t []byte) uint64 {
		return OrderLineKey(sch.OrderLine.GetInt64(t, OLWID), sch.OrderLine.GetInt64(t, OLDID),
			sch.OrderLine.GetInt64(t, OLOID), sch.OrderLine.GetInt64(t, OLNumber))
	}, hint*10)
	db.Item = st.CreateTable(sch.Item, func(t []byte) uint64 {
		return ItemKey(sch.Item.GetInt64(t, IID))
	}, scale.Items)
	db.Stock = st.CreateTable(sch.Stock, func(t []byte) uint64 {
		return StockKey(sch.Stock.GetInt64(t, SWID), sch.Stock.GetInt64(t, SIID))
	}, scale.Warehouses*scale.Items)
	db.Supplier = st.CreateTable(sch.Supplier, func(t []byte) uint64 {
		return SupplierKey(sch.Supplier.GetInt64(t, SUSuppKey))
	}, NumSuppliers)
	db.Nation = st.CreateTable(sch.Nation, func(t []byte) uint64 {
		return NationKey(sch.Nation.GetInt64(t, NNationKey))
	}, NumNations)
	db.Region = st.CreateTable(sch.Region, func(t []byte) uint64 {
		return RegionKey(sch.Region.GetInt64(t, RRegionKey))
	}, NumRegions)

	db.CustByName = db.Customer.AddSecondary("by_name", func(t []byte) uint64 {
		return CustomerNameKey(sch.Customer.GetInt64(t, CWID), sch.Customer.GetInt64(t, CDID),
			sch.Customer.GetString(t, CLast), sch.Customer.GetInt64(t, CID))
	})
	db.OrdByCust = db.Order.AddSecondary("by_cust", func(t []byte) uint64 {
		return OrderCustomerKey(sch.Order.GetInt64(t, OWID), sch.Order.GetInt64(t, ODID),
			sch.Order.GetInt64(t, OCID), sch.Order.GetInt64(t, OID))
	})
	db.NOByDist = db.NewOrder.AddSecondary("by_dist", func(t []byte) uint64 {
		return NewOrderKey(sch.NewOrder.GetInt64(t, NOWID), sch.NewOrder.GetInt64(t, NODID),
			sch.NewOrder.GetInt64(t, NOOID))
	})
	return db
}

// TableByID returns the mvcc table for a table ID (nil if unknown).
func (db *DB) TableByID(id storage.TableID) *mvcc.Table {
	switch id {
	case TWarehouse:
		return db.Warehouse
	case TDistrict:
		return db.District
	case TCustomer:
		return db.Customer
	case THistory:
		return db.History
	case TNewOrder:
		return db.NewOrder
	case TOrder:
		return db.Order
	case TOrderLine:
		return db.OrderLine
	case TItem:
		return db.Item
	case TStock:
		return db.Stock
	case TSupplier:
		return db.Supplier
	case TNation:
		return db.Nation
	case TRegion:
		return db.Region
	default:
		return nil
	}
}
