package tpcc

import (
	"math/rand"
	"time"
)

// Mix is the standard TPC-C transaction mix in percent.
var Mix = map[string]int{
	ProcNewOrder:    45,
	ProcPayment:     43,
	ProcOrderStatus: 4,
	ProcDelivery:    4,
	ProcStockLevel:  4,
}

// Driver generates TPC-C transaction requests. Each client owns one
// Driver (they are not safe for concurrent use); all randomness is drawn
// here and shipped in the arguments, so stored procedures stay
// deterministic.
type Driver struct {
	scale Scale
	rng   *rand.Rand
	// NewOrderOnly restricts the mix for microbenchmarks.
	NewOrderOnly bool
}

// NewDriver creates a driver with its own deterministic random stream.
func NewDriver(scale Scale, seed int64) *Driver {
	return &Driver{scale: scale, rng: rand.New(rand.NewSource(seed))}
}

func (d *Driver) randWID() int64 { return 1 + d.rng.Int63n(int64(d.scale.Warehouses)) }
func (d *Driver) randDID() int64 { return 1 + d.rng.Int63n(int64(d.scale.DistrictsPerWarehouse)) }

func (d *Driver) randCID() int64 {
	n := int64(d.scale.CustomersPerDistrict)
	return nuRand(d.rng, 1023, cNURandCID, 1, n)
}

func (d *Driver) randItem() int64 {
	return nuRand(d.rng, 8191, cNURandItem, 1, int64(d.scale.Items))
}

// randLastName picks a last name that is guaranteed to exist at this
// scale (the loader assigns names 0..min(999, customers-1) to the first
// customers).
func (d *Driver) randLastName() string {
	max := int64(d.scale.CustomersPerDistrict)
	if max > 1000 {
		max = 1000
	}
	return LastName(nuRand(d.rng, 255, cNURandLast, 0, max-1))
}

// Next produces the next request per the standard mix.
func (d *Driver) Next() (proc string, args []byte) {
	if d.NewOrderOnly {
		return ProcNewOrder, d.NewOrder().Encode()
	}
	r := d.rng.Intn(100)
	switch {
	case r < 45:
		return ProcNewOrder, d.NewOrder().Encode()
	case r < 88:
		return ProcPayment, d.Payment().Encode()
	case r < 92:
		return ProcOrderStatus, d.OrderStatus().Encode()
	case r < 96:
		return ProcDelivery, d.Delivery().Encode()
	default:
		return ProcStockLevel, d.StockLevel().Encode()
	}
}

// NewOrder draws New-Order arguments: home warehouse/district, NURand
// customer and items, 5-15 lines, 1% remote lines, 1% intentional
// rollback via an unused item number.
func (d *Driver) NewOrder() *NewOrderArgs {
	w := d.randWID()
	a := &NewOrderArgs{
		WID:    w,
		DID:    d.randDID(),
		CID:    d.randCID(),
		EntryD: time.Now().UnixNano(),
	}
	olCnt := 5 + d.rng.Intn(11)
	rollback := d.rng.Intn(100) == 0
	for i := 0; i < olCnt; i++ {
		l := OrderLineReq{
			ItemID:    d.randItem(),
			SupplyWID: w,
			Quantity:  1 + d.rng.Int63n(10),
		}
		if d.scale.Warehouses > 1 && d.rng.Intn(100) == 0 {
			for l.SupplyWID == w {
				l.SupplyWID = d.randWID()
			}
		}
		if rollback && i == olCnt-1 {
			l.ItemID = 0 // unused item number
		}
		a.Lines = append(a.Lines, l)
	}
	return a
}

// Payment draws Payment arguments: 85% home district, 15% remote
// customer, 60% selection by last name.
func (d *Driver) Payment() *PaymentArgs {
	w := d.randWID()
	a := &PaymentArgs{
		WID:    w,
		DID:    d.randDID(),
		CWID:   w,
		CDID:   0,
		Amount: 1 + float64(d.rng.Intn(499900))/100,
		Date:   time.Now().UnixNano(),
	}
	a.CDID = d.randDID()
	if d.scale.Warehouses > 1 && d.rng.Intn(100) < 15 {
		for a.CWID == w {
			a.CWID = d.randWID()
		}
	}
	if d.rng.Intn(100) < 60 {
		a.ByName = true
		a.CLast = d.randLastName()
	} else {
		a.CID = d.randCID()
	}
	return a
}

// OrderStatus draws Order-Status arguments (60% by last name).
func (d *Driver) OrderStatus() *OrderStatusArgs {
	a := &OrderStatusArgs{WID: d.randWID(), DID: d.randDID()}
	if d.rng.Intn(100) < 60 {
		a.ByName = true
		a.CLast = d.randLastName()
	} else {
		a.CID = d.randCID()
	}
	return a
}

// Delivery draws Delivery arguments.
func (d *Driver) Delivery() *DeliveryArgs {
	return &DeliveryArgs{
		WID:       d.randWID(),
		CarrierID: 1 + d.rng.Int63n(10),
		Date:      time.Now().UnixNano(),
	}
}

// StockLevel draws Stock-Level arguments.
func (d *Driver) StockLevel() *StockLevelArgs {
	return &StockLevelArgs{
		WID:       d.randWID(),
		DID:       d.randDID(),
		Threshold: 10 + d.rng.Int63n(11),
	}
}
