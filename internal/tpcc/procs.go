package tpcc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"batchdb/internal/mvcc"
	"batchdb/internal/oltp"
)

// ErrRollback is the New-Order transaction's intentional 1% rollback
// (unused item number, TPC-C 2.4.1.4). It aborts the transaction but
// counts as a successfully completed business interaction.
var ErrRollback = errors.New("tpcc: new-order rollback (unused item number)")

// Procedure names.
const (
	ProcNewOrder    = "new_order"
	ProcPayment     = "payment"
	ProcOrderStatus = "order_status"
	ProcDelivery    = "delivery"
	ProcStockLevel  = "stock_level"
)

// RegisterProcs installs the five TPC-C transactions on the engine. With
// constantSize set, New-Order also deletes the order that falls out of a
// per-district sliding window (and its order lines and any new_order
// entry), keeping the database size constant — the modification the
// paper makes for the right-hand plots of Fig. 7a.
func RegisterProcs(e *oltp.Engine, db *DB, constantSize bool) {
	e.Register(ProcNewOrder, db.newOrderProc(constantSize))
	e.Register(ProcPayment, db.payment)
	e.Register(ProcOrderStatus, db.orderStatus)
	e.Register(ProcDelivery, db.delivery)
	e.Register(ProcStockLevel, db.stockLevel)
}

func (db *DB) newOrderProc(constantSize bool) oltp.Procedure {
	return func(tx *mvcc.Txn, raw []byte) ([]byte, error) {
		a, err := DecodeNewOrderArgs(raw)
		if err != nil {
			return nil, err
		}
		return db.newOrder(tx, a, constantSize)
	}
}

func (db *DB) newOrder(tx *mvcc.Txn, a NewOrderArgs, constantSize bool) ([]byte, error) {
	s := db.Schemas

	wt, ok := tx.Get(db.Warehouse, WarehouseKey(a.WID))
	if !ok {
		return nil, fmt.Errorf("tpcc: warehouse %d missing", a.WID)
	}
	wTax := s.Warehouse.GetFloat64(wt, WTax)

	// Read district tax and allocate the order id while bumping
	// d_next_o_id under the row's write lock.
	var dTax float64
	var oID int64
	if err := tx.Update(db.District, DistrictKey(a.WID, a.DID), []int{DNextOID}, func(tup []byte) {
		dTax = s.District.GetFloat64(tup, DTax)
		oID = s.District.GetInt64(tup, DNextOID)
		s.District.PutInt64(tup, DNextOID, oID+1)
	}); err != nil {
		return nil, err
	}

	ct, ok := tx.Get(db.Customer, CustomerKey(a.WID, a.DID, a.CID))
	if !ok {
		return nil, fmt.Errorf("tpcc: customer %d/%d/%d missing", a.WID, a.DID, a.CID)
	}
	cDiscount := s.Customer.GetFloat64(ct, CDiscount)

	allLocal := int64(1)
	for _, l := range a.Lines {
		if l.SupplyWID != a.WID {
			allLocal = 0
		}
	}

	// Insert the order and its new_order entry.
	ot := s.Order.NewTuple()
	s.Order.PutInt64(ot, OID, oID)
	s.Order.PutInt64(ot, ODID, a.DID)
	s.Order.PutInt64(ot, OWID, a.WID)
	s.Order.PutInt64(ot, OCID, a.CID)
	s.Order.PutInt64(ot, OEntryD, a.EntryD)
	s.Order.PutInt64(ot, OOlCnt, int64(len(a.Lines)))
	s.Order.PutInt64(ot, OAllLocal, allLocal)
	if _, err := tx.Insert(db.Order, ot); err != nil {
		return nil, err
	}
	nt := s.NewOrder.NewTuple()
	s.NewOrder.PutInt64(nt, NOOID, oID)
	s.NewOrder.PutInt64(nt, NODID, a.DID)
	s.NewOrder.PutInt64(nt, NOWID, a.WID)
	if _, err := tx.Insert(db.NewOrder, nt); err != nil {
		return nil, err
	}

	total := 0.0
	for i, l := range a.Lines {
		if l.ItemID == 0 {
			// Unused item number: intentional rollback (1%).
			return nil, ErrRollback
		}
		it, ok := tx.Get(db.Item, ItemKey(l.ItemID))
		if !ok {
			return nil, ErrRollback
		}
		price := s.Item.GetFloat64(it, IPrice)

		var distInfo string
		if err := tx.Update(db.Stock, StockKey(l.SupplyWID, l.ItemID),
			[]int{SQuantity, SYtd, SOrderCnt, SRemoteCnt}, func(st []byte) {
				q := s.Stock.GetInt64(st, SQuantity)
				if q >= l.Quantity+10 {
					q -= l.Quantity
				} else {
					q = q - l.Quantity + 91
				}
				s.Stock.PutInt64(st, SQuantity, q)
				s.Stock.PutFloat64(st, SYtd, s.Stock.GetFloat64(st, SYtd)+float64(l.Quantity))
				s.Stock.PutInt64(st, SOrderCnt, s.Stock.GetInt64(st, SOrderCnt)+1)
				if l.SupplyWID != a.WID {
					s.Stock.PutInt64(st, SRemoteCnt, s.Stock.GetInt64(st, SRemoteCnt)+1)
				}
				distInfo = s.Stock.GetString(st, SDist01+int(a.DID-1))
			}); err != nil {
			return nil, err
		}

		amount := float64(l.Quantity) * price
		total += amount
		lt := s.OrderLine.NewTuple()
		s.OrderLine.PutInt64(lt, OLOID, oID)
		s.OrderLine.PutInt64(lt, OLDID, a.DID)
		s.OrderLine.PutInt64(lt, OLWID, a.WID)
		s.OrderLine.PutInt64(lt, OLNumber, int64(i+1))
		s.OrderLine.PutInt64(lt, OLIID, l.ItemID)
		s.OrderLine.PutInt64(lt, OLSupplyWID, l.SupplyWID)
		s.OrderLine.PutInt64(lt, OLQuantity, l.Quantity)
		s.OrderLine.PutFloat64(lt, OLAmount, amount)
		s.OrderLine.PutString(lt, OLDistInfo, distInfo)
		if _, err := tx.Insert(db.OrderLine, lt); err != nil {
			return nil, err
		}
	}
	total *= (1 - cDiscount) * (1 + wTax + dTax)

	if constantSize {
		if err := db.trimOldOrder(tx, a.WID, a.DID, oID-int64(db.Scale.InitialOrdersPerDistrict)); err != nil {
			return nil, err
		}
	}

	out := make([]byte, 16)
	binary.LittleEndian.PutUint64(out, uint64(oID))
	binary.LittleEndian.PutUint64(out[8:], uint64(int64(total*100)))
	return out, nil
}

// trimOldOrder deletes the order that slid out of the constant-size
// window, with its order lines and new_order entry if still present.
func (db *DB) trimOldOrder(tx *mvcc.Txn, w, d, oID int64) error {
	if oID <= 0 {
		return nil
	}
	s := db.Schemas
	ot, ok := tx.Get(db.Order, OrderKey(w, d, oID))
	if !ok {
		return nil // already trimmed (e.g. after recovery overlap)
	}
	olCnt := s.Order.GetInt64(ot, OOlCnt)
	for n := int64(1); n <= olCnt; n++ {
		if err := tx.Delete(db.OrderLine, OrderLineKey(w, d, oID, n)); err != nil && !errors.Is(err, mvcc.ErrNotFound) {
			return err
		}
	}
	if err := tx.Delete(db.Order, OrderKey(w, d, oID)); err != nil {
		return err
	}
	if err := tx.Delete(db.NewOrder, NewOrderKey(w, d, oID)); err != nil && !errors.Is(err, mvcc.ErrNotFound) {
		return err
	}
	return nil
}

// resolveCustomer returns the customer key for a (by id | by last name)
// selection. By-name selection picks the spec's "middle" customer when
// ordered by first name (TPC-C 2.5.2.2).
func (db *DB) resolveCustomer(tx *mvcc.Txn, w, d int64, byName bool, cID int64, cLast string) (uint64, []byte, error) {
	s := db.Schemas.Customer
	if !byName {
		key := CustomerKey(w, d, cID)
		tup, ok := tx.Get(db.Customer, key)
		if !ok {
			return 0, nil, fmt.Errorf("tpcc: customer %d/%d/%d missing", w, d, cID)
		}
		return key, tup, nil
	}
	lo, hi := CustomerNamePrefix(w, d, cLast)
	type cand struct {
		key   uint64
		first string
		tup   []byte
	}
	var cands []cand
	for it := db.CustByName.Seek(lo); it.Valid() && it.Key() < hi; it.Next() {
		rec := tx.ReadChain(it.Value())
		if rec == nil {
			continue
		}
		if s.GetString(rec.Data, CLast) != cLast {
			continue // 16-bit hash collision or stale entry
		}
		cands = append(cands, cand{
			key:   CustomerKey(w, d, s.GetInt64(rec.Data, CID)),
			first: s.GetString(rec.Data, CFirst),
			tup:   rec.Data,
		})
	}
	if len(cands) == 0 {
		return 0, nil, fmt.Errorf("tpcc: no customer with last name %q in %d/%d", cLast, w, d)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].first < cands[j].first })
	pick := cands[len(cands)/2]
	return pick.key, pick.tup, nil
}

func (db *DB) payment(tx *mvcc.Txn, raw []byte) ([]byte, error) {
	a, err := DecodePaymentArgs(raw)
	if err != nil {
		return nil, err
	}
	s := db.Schemas

	if err := tx.Update(db.Warehouse, WarehouseKey(a.WID), []int{WYtd}, func(t []byte) {
		s.Warehouse.PutFloat64(t, WYtd, s.Warehouse.GetFloat64(t, WYtd)+a.Amount)
	}); err != nil {
		return nil, err
	}
	if err := tx.Update(db.District, DistrictKey(a.WID, a.DID), []int{DYtd}, func(t []byte) {
		s.District.PutFloat64(t, DYtd, s.District.GetFloat64(t, DYtd)+a.Amount)
	}); err != nil {
		return nil, err
	}

	cKey, cTup, err := db.resolveCustomer(tx, a.CWID, a.CDID, a.ByName, a.CID, a.CLast)
	if err != nil {
		return nil, err
	}
	cID := s.Customer.GetInt64(cTup, CID)
	badCredit := s.Customer.GetString(cTup, CCredit) == "BC"
	var paymentCnt int64
	cols := []int{CBalance, CYtdPayment, CPaymentCnt}
	if badCredit {
		cols = append(cols, CData)
	}
	if err := tx.Update(db.Customer, cKey, cols, func(t []byte) {
		s.Customer.PutFloat64(t, CBalance, s.Customer.GetFloat64(t, CBalance)-a.Amount)
		s.Customer.PutFloat64(t, CYtdPayment, s.Customer.GetFloat64(t, CYtdPayment)+a.Amount)
		paymentCnt = s.Customer.GetInt64(t, CPaymentCnt) + 1
		s.Customer.PutInt64(t, CPaymentCnt, paymentCnt)
		if badCredit {
			// Prepend the payment record to c_data (truncated to width).
			info := fmt.Sprintf("%d %d %d %d %d %.2f|", cID, a.CDID, a.CWID, a.DID, a.WID, a.Amount)
			old := s.Customer.GetString(t, CData)
			s.Customer.PutString(t, CData, info+old)
		}
	}); err != nil {
		return nil, err
	}

	ht := s.History.NewTuple()
	s.History.PutInt64(ht, HPK, int64(HistoryKey(a.CWID, a.CDID, cID, paymentCnt)))
	s.History.PutInt64(ht, HCID, cID)
	s.History.PutInt64(ht, HCDID, a.CDID)
	s.History.PutInt64(ht, HCWID, a.CWID)
	s.History.PutInt64(ht, HDID, a.DID)
	s.History.PutInt64(ht, HWID, a.WID)
	s.History.PutInt64(ht, HDate, a.Date)
	s.History.PutFloat64(ht, HAmount, a.Amount)
	s.History.PutString(ht, HData, "payment")
	if _, err := tx.Insert(db.History, ht); err != nil {
		return nil, err
	}
	return nil, nil
}

func (db *DB) orderStatus(tx *mvcc.Txn, raw []byte) ([]byte, error) {
	a, err := DecodeOrderStatusArgs(raw)
	if err != nil {
		return nil, err
	}
	s := db.Schemas
	_, cTup, err := db.resolveCustomer(tx, a.WID, a.DID, a.ByName, a.CID, a.CLast)
	if err != nil {
		return nil, err
	}
	cID := s.Customer.GetInt64(cTup, CID)

	// Most recent order: walk the customer's order range and keep the
	// largest o_id whose row is visible.
	lo, hi := OrderCustomerPrefix(a.WID, a.DID, cID)
	var lastOrder []byte
	var lastOID int64 = -1
	for it := db.OrdByCust.Seek(lo); it.Valid() && it.Key() < hi; it.Next() {
		rec := tx.ReadChain(it.Value())
		if rec == nil || s.Order.GetInt64(rec.Data, OCID) != cID {
			continue
		}
		if o := s.Order.GetInt64(rec.Data, OID); o > lastOID {
			lastOID = o
			lastOrder = rec.Data
		}
	}
	if lastOrder == nil {
		// A customer may have no surviving order under constant-size
		// trimming; report empty status.
		return []byte{0}, nil
	}
	olCnt := s.Order.GetInt64(lastOrder, OOlCnt)
	lines := 0
	for n := int64(1); n <= olCnt; n++ {
		if _, ok := tx.Get(db.OrderLine, OrderLineKey(a.WID, a.DID, lastOID, n)); ok {
			lines++
		}
	}
	out := make([]byte, 9)
	out[0] = 1
	binary.LittleEndian.PutUint64(out[1:], uint64(lines))
	return out, nil
}

func (db *DB) delivery(tx *mvcc.Txn, raw []byte) ([]byte, error) {
	a, err := DecodeDeliveryArgs(raw)
	if err != nil {
		return nil, err
	}
	s := db.Schemas
	delivered := int64(0)
	for d := int64(1); d <= int64(db.Scale.DistrictsPerWarehouse); d++ {
		// Oldest undelivered order of the district.
		lo, hi := NewOrderDistrictPrefix(a.WID, d)
		var oID int64 = -1
		for it := db.NOByDist.Seek(lo); it.Valid() && it.Key() < hi; it.Next() {
			rec := tx.ReadChain(it.Value())
			if rec == nil {
				continue
			}
			oID = s.NewOrder.GetInt64(rec.Data, NOOID)
			break
		}
		if oID < 0 {
			continue // district fully delivered
		}
		if err := tx.Delete(db.NewOrder, NewOrderKey(a.WID, d, oID)); err != nil {
			if errors.Is(err, mvcc.ErrNotFound) {
				continue // raced with another delivery
			}
			return nil, err
		}

		var cID, olCnt int64
		if err := tx.Update(db.Order, OrderKey(a.WID, d, oID), []int{OCarrierID}, func(t []byte) {
			cID = s.Order.GetInt64(t, OCID)
			olCnt = s.Order.GetInt64(t, OOlCnt)
			s.Order.PutInt64(t, OCarrierID, a.CarrierID)
		}); err != nil {
			return nil, err
		}
		sum := 0.0
		for n := int64(1); n <= olCnt; n++ {
			if err := tx.Update(db.OrderLine, OrderLineKey(a.WID, d, oID, n), []int{OLDeliveryD}, func(t []byte) {
				sum += s.OrderLine.GetFloat64(t, OLAmount)
				s.OrderLine.PutInt64(t, OLDeliveryD, a.Date)
			}); err != nil {
				return nil, err
			}
		}
		if err := tx.Update(db.Customer, CustomerKey(a.WID, d, cID), []int{CBalance, CDeliveryCnt}, func(t []byte) {
			s.Customer.PutFloat64(t, CBalance, s.Customer.GetFloat64(t, CBalance)+sum)
			s.Customer.PutInt64(t, CDeliveryCnt, s.Customer.GetInt64(t, CDeliveryCnt)+1)
		}); err != nil {
			return nil, err
		}
		delivered++
	}
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, uint64(delivered))
	return out, nil
}

func (db *DB) stockLevel(tx *mvcc.Txn, raw []byte) ([]byte, error) {
	a, err := DecodeStockLevelArgs(raw)
	if err != nil {
		return nil, err
	}
	s := db.Schemas
	dt, ok := tx.Get(db.District, DistrictKey(a.WID, a.DID))
	if !ok {
		return nil, fmt.Errorf("tpcc: district %d/%d missing", a.WID, a.DID)
	}
	nextO := s.District.GetInt64(dt, DNextOID)
	seen := make(map[int64]bool)
	low := int64(0)
	from := nextO - 20
	if from < 1 {
		from = 1
	}
	for o := from; o < nextO; o++ {
		ot, ok := tx.Get(db.Order, OrderKey(a.WID, a.DID, o))
		if !ok {
			continue
		}
		olCnt := s.Order.GetInt64(ot, OOlCnt)
		for n := int64(1); n <= olCnt; n++ {
			lt, ok := tx.Get(db.OrderLine, OrderLineKey(a.WID, a.DID, o, n))
			if !ok {
				continue
			}
			iID := s.OrderLine.GetInt64(lt, OLIID)
			if seen[iID] {
				continue
			}
			seen[iID] = true
			st, ok := tx.Get(db.Stock, StockKey(a.WID, iID))
			if ok && s.Stock.GetInt64(st, SQuantity) < a.Threshold {
				low++
			}
		}
	}
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, uint64(low))
	return out, nil
}
