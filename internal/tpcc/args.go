package tpcc

import (
	"encoding/binary"
	"errors"
)

// Stored-procedure argument records. All randomness is drawn by the
// driver and carried in the arguments, keeping procedures deterministic
// for command-log recovery (paper §4 "Logging").

// OrderLineReq is one requested line of a New-Order transaction.
type OrderLineReq struct {
	ItemID    int64 // 0 encodes the spec's intentional invalid item
	SupplyWID int64
	Quantity  int64
}

// NewOrderArgs parameterizes the New-Order transaction.
type NewOrderArgs struct {
	WID, DID, CID int64
	EntryD        int64
	Lines         []OrderLineReq
}

// PaymentArgs parameterizes the Payment transaction.
type PaymentArgs struct {
	WID, DID   int64
	CWID, CDID int64
	ByName     bool
	CID        int64
	CLast      string
	Amount     float64
	Date       int64
}

// OrderStatusArgs parameterizes the Order-Status transaction.
type OrderStatusArgs struct {
	WID, DID int64
	ByName   bool
	CID      int64
	CLast    string
}

// DeliveryArgs parameterizes the Delivery transaction.
type DeliveryArgs struct {
	WID       int64
	CarrierID int64
	Date      int64
}

// StockLevelArgs parameterizes the Stock-Level transaction.
type StockLevelArgs struct {
	WID, DID  int64
	Threshold int64
}

// errShortArgs reports a malformed argument record.
var errShortArgs = errors.New("tpcc: short argument record")

func appendI64(b []byte, v int64) []byte { return binary.LittleEndian.AppendUint64(b, uint64(v)) }
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(int64(v*100))) // cents, exact
}
func appendStr(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

type argReader struct {
	b   []byte
	pos int
	err error
}

func (r *argReader) i64() int64 {
	if r.err != nil || len(r.b)-r.pos < 8 {
		r.err = errShortArgs
		return 0
	}
	v := int64(binary.LittleEndian.Uint64(r.b[r.pos:]))
	r.pos += 8
	return v
}

func (r *argReader) f64() float64 { return float64(r.i64()) / 100 }

func (r *argReader) str() string {
	if r.err != nil || len(r.b)-r.pos < 2 {
		r.err = errShortArgs
		return ""
	}
	n := int(binary.LittleEndian.Uint16(r.b[r.pos:]))
	r.pos += 2
	if len(r.b)-r.pos < n {
		r.err = errShortArgs
		return ""
	}
	s := string(r.b[r.pos : r.pos+n])
	r.pos += n
	return s
}

// Encode serializes NewOrderArgs.
func (a *NewOrderArgs) Encode() []byte {
	b := make([]byte, 0, 64+24*len(a.Lines))
	b = appendI64(b, a.WID)
	b = appendI64(b, a.DID)
	b = appendI64(b, a.CID)
	b = appendI64(b, a.EntryD)
	b = appendI64(b, int64(len(a.Lines)))
	for _, l := range a.Lines {
		b = appendI64(b, l.ItemID)
		b = appendI64(b, l.SupplyWID)
		b = appendI64(b, l.Quantity)
	}
	return b
}

// DecodeNewOrderArgs parses NewOrderArgs.
func DecodeNewOrderArgs(b []byte) (NewOrderArgs, error) {
	r := argReader{b: b}
	var a NewOrderArgs
	a.WID, a.DID, a.CID, a.EntryD = r.i64(), r.i64(), r.i64(), r.i64()
	n := r.i64()
	for i := int64(0); i < n && r.err == nil; i++ {
		a.Lines = append(a.Lines, OrderLineReq{r.i64(), r.i64(), r.i64()})
	}
	return a, r.err
}

// Encode serializes PaymentArgs.
func (a *PaymentArgs) Encode() []byte {
	b := make([]byte, 0, 96)
	b = appendI64(b, a.WID)
	b = appendI64(b, a.DID)
	b = appendI64(b, a.CWID)
	b = appendI64(b, a.CDID)
	if a.ByName {
		b = appendI64(b, 1)
	} else {
		b = appendI64(b, 0)
	}
	b = appendI64(b, a.CID)
	b = appendStr(b, a.CLast)
	b = appendF64(b, a.Amount)
	b = appendI64(b, a.Date)
	return b
}

// DecodePaymentArgs parses PaymentArgs.
func DecodePaymentArgs(b []byte) (PaymentArgs, error) {
	r := argReader{b: b}
	var a PaymentArgs
	a.WID, a.DID, a.CWID, a.CDID = r.i64(), r.i64(), r.i64(), r.i64()
	a.ByName = r.i64() != 0
	a.CID = r.i64()
	a.CLast = r.str()
	a.Amount = r.f64()
	a.Date = r.i64()
	return a, r.err
}

// Encode serializes OrderStatusArgs.
func (a *OrderStatusArgs) Encode() []byte {
	b := make([]byte, 0, 64)
	b = appendI64(b, a.WID)
	b = appendI64(b, a.DID)
	if a.ByName {
		b = appendI64(b, 1)
	} else {
		b = appendI64(b, 0)
	}
	b = appendI64(b, a.CID)
	b = appendStr(b, a.CLast)
	return b
}

// DecodeOrderStatusArgs parses OrderStatusArgs.
func DecodeOrderStatusArgs(b []byte) (OrderStatusArgs, error) {
	r := argReader{b: b}
	var a OrderStatusArgs
	a.WID, a.DID = r.i64(), r.i64()
	a.ByName = r.i64() != 0
	a.CID = r.i64()
	a.CLast = r.str()
	return a, r.err
}

// Encode serializes DeliveryArgs.
func (a *DeliveryArgs) Encode() []byte {
	b := make([]byte, 0, 24)
	b = appendI64(b, a.WID)
	b = appendI64(b, a.CarrierID)
	b = appendI64(b, a.Date)
	return b
}

// DecodeDeliveryArgs parses DeliveryArgs.
func DecodeDeliveryArgs(b []byte) (DeliveryArgs, error) {
	r := argReader{b: b}
	var a DeliveryArgs
	a.WID, a.CarrierID, a.Date = r.i64(), r.i64(), r.i64()
	return a, r.err
}

// Encode serializes StockLevelArgs.
func (a *StockLevelArgs) Encode() []byte {
	b := make([]byte, 0, 24)
	b = appendI64(b, a.WID)
	b = appendI64(b, a.DID)
	b = appendI64(b, a.Threshold)
	return b
}

// DecodeStockLevelArgs parses StockLevelArgs.
func DecodeStockLevelArgs(b []byte) (StockLevelArgs, error) {
	r := argReader{b: b}
	var a StockLevelArgs
	a.WID, a.DID, a.Threshold = r.i64(), r.i64(), r.i64()
	return a, r.err
}
