// Package tpcc implements the TPC-C workload used by the paper's
// evaluation (§8.1): the full nine-table schema, a spec-shaped data
// generator, and all five transactions as BatchDB stored procedures —
// plus the TPC-H-side relations the CH-benCHmark adds (supplier,
// nation, region) and the derived nation key on customer.
//
// Two deliberate deviations from the letter of the spec, both
// documented for the reproduction:
//
//   - String fields are fixed-width (BatchDB propagates physical
//     sub-tuple patches, which requires stable offsets); c_data is 250
//     bytes instead of 500 to keep laptop-scale datasets in memory.
//   - The benchmark runs without think times and with configurable
//     scale (warehouse count and per-district cardinalities), like the
//     paper's driver, which saturates the engine with a client count
//     rather than spec-timed terminals.
package tpcc

import "batchdb/internal/storage"

// Table IDs.
const (
	TWarehouse storage.TableID = 1 + iota
	TDistrict
	TCustomer
	THistory
	TNewOrder
	TOrder
	TOrderLine
	TItem
	TStock
	TSupplier
	TNation
	TRegion
)

// Column ordinals per table (must match the NewSchema definitions).
const (
	WID = iota
	WName
	WStreet1
	WStreet2
	WCity
	WState
	WZip
	WTax
	WYtd
)

const (
	DID = iota
	DWID
	DName
	DStreet1
	DStreet2
	DCity
	DState
	DZip
	DTax
	DYtd
	DNextOID
)

const (
	CID = iota
	CDID
	CWID
	CFirst
	CMiddle
	CLast
	CStreet1
	CStreet2
	CCity
	CState
	CZip
	CPhone
	CSince
	CCredit
	CCreditLim
	CDiscount
	CBalance
	CYtdPayment
	CPaymentCnt
	CDeliveryCnt
	CData
	CNationKey // CH-benCHmark: customer's nation
)

const (
	HPK = iota // synthetic unique key: (w,d,c,paymentCnt)
	HCID
	HCDID
	HCWID
	HDID
	HWID
	HDate
	HAmount
	HData
)

const (
	NOOID = iota
	NODID
	NOWID
)

const (
	OID = iota
	ODID
	OWID
	OCID
	OEntryD
	OCarrierID
	OOlCnt
	OAllLocal
)

const (
	OLOID = iota
	OLDID
	OLWID
	OLNumber
	OLIID
	OLSupplyWID
	OLDeliveryD
	OLQuantity
	OLAmount
	OLDistInfo
)

const (
	IID = iota
	IImID
	IName
	IPrice
	IData
)

const (
	SIID = iota
	SWID
	SQuantity
	SDist01 // 10 consecutive s_dist_XX columns follow
	SYtd    = SDist01 + 10
	SOrderCnt
	SRemoteCnt
	SData
)

const (
	SUSuppKey = iota
	SUName
	SUNationKey
	SUPhone
	SUAcctBal
	SUComment
)

const (
	NNationKey = iota
	NName
	NRegionKey
)

const (
	RRegionKey = iota
	RName
)

// NumNations and NumRegions follow the paper's Appendix A: predicates
// draw from 62 nation names and 5 region names.
const (
	NumNations   = 62
	NumRegions   = 5
	NumSuppliers = 10000
)

// Schemas bundles every relation's schema.
type Schemas struct {
	Warehouse, District, Customer, History, NewOrder, Order,
	OrderLine, Item, Stock, Supplier, Nation, Region *storage.Schema
}

// NewSchemas builds the full CH-benCHmark schema set.
func NewSchemas() *Schemas {
	str := func(name string, n int) storage.Column {
		return storage.Column{Name: name, Type: storage.String, Size: n}
	}
	i64 := func(name string) storage.Column { return storage.Column{Name: name, Type: storage.Int64} }
	f64 := func(name string) storage.Column { return storage.Column{Name: name, Type: storage.Float64} }

	s := &Schemas{}
	s.Warehouse = storage.NewSchema(TWarehouse, "warehouse", []storage.Column{
		i64("w_id"), str("w_name", 10), str("w_street_1", 20), str("w_street_2", 20),
		str("w_city", 20), str("w_state", 2), str("w_zip", 9), f64("w_tax"), f64("w_ytd"),
	}, []int{WID})
	s.District = storage.NewSchema(TDistrict, "district", []storage.Column{
		i64("d_id"), i64("d_w_id"), str("d_name", 10), str("d_street_1", 20), str("d_street_2", 20),
		str("d_city", 20), str("d_state", 2), str("d_zip", 9), f64("d_tax"), f64("d_ytd"), i64("d_next_o_id"),
	}, []int{DID, DWID})
	s.Customer = storage.NewSchema(TCustomer, "customer", []storage.Column{
		i64("c_id"), i64("c_d_id"), i64("c_w_id"), str("c_first", 16), str("c_middle", 2), str("c_last", 16),
		str("c_street_1", 20), str("c_street_2", 20), str("c_city", 20), str("c_state", 2), str("c_zip", 9),
		str("c_phone", 16), i64("c_since"), str("c_credit", 2), f64("c_credit_lim"), f64("c_discount"),
		f64("c_balance"), f64("c_ytd_payment"), i64("c_payment_cnt"), i64("c_delivery_cnt"),
		str("c_data", 250), i64("c_nationkey"),
	}, []int{CID, CDID, CWID})
	s.History = storage.NewSchema(THistory, "history", []storage.Column{
		i64("h_pk"), i64("h_c_id"), i64("h_c_d_id"), i64("h_c_w_id"), i64("h_d_id"), i64("h_w_id"),
		i64("h_date"), f64("h_amount"), str("h_data", 24),
	}, []int{HPK})
	s.NewOrder = storage.NewSchema(TNewOrder, "new_order", []storage.Column{
		i64("no_o_id"), i64("no_d_id"), i64("no_w_id"),
	}, []int{NOOID, NODID, NOWID})
	s.Order = storage.NewSchema(TOrder, "orders", []storage.Column{
		i64("o_id"), i64("o_d_id"), i64("o_w_id"), i64("o_c_id"), i64("o_entry_d"),
		i64("o_carrier_id"), i64("o_ol_cnt"), i64("o_all_local"),
	}, []int{OID, ODID, OWID})
	olCols := []storage.Column{
		i64("ol_o_id"), i64("ol_d_id"), i64("ol_w_id"), i64("ol_number"), i64("ol_i_id"),
		i64("ol_supply_w_id"), i64("ol_delivery_d"), i64("ol_quantity"), f64("ol_amount"),
		str("ol_dist_info", 24),
	}
	s.OrderLine = storage.NewSchema(TOrderLine, "order_line", olCols, []int{OLOID, OLDID, OLWID, OLNumber})
	s.Item = storage.NewSchema(TItem, "item", []storage.Column{
		i64("i_id"), i64("i_im_id"), str("i_name", 24), f64("i_price"), str("i_data", 50),
	}, []int{IID})
	stockCols := []storage.Column{
		i64("s_i_id"), i64("s_w_id"), i64("s_quantity"),
	}
	for d := 1; d <= 10; d++ {
		stockCols = append(stockCols, str(distColName(d), 24))
	}
	stockCols = append(stockCols, f64("s_ytd"), i64("s_order_cnt"), i64("s_remote_cnt"), str("s_data", 50))
	s.Stock = storage.NewSchema(TStock, "stock", stockCols, []int{SIID, SWID})
	s.Supplier = storage.NewSchema(TSupplier, "supplier", []storage.Column{
		i64("su_suppkey"), str("su_name", 25), i64("su_nationkey"), str("su_phone", 15),
		f64("su_acctbal"), str("su_comment", 100),
	}, []int{SUSuppKey})
	s.Nation = storage.NewSchema(TNation, "nation", []storage.Column{
		i64("n_nationkey"), str("n_name", 25), i64("n_regionkey"),
	}, []int{NNationKey})
	s.Region = storage.NewSchema(TRegion, "region", []storage.Column{
		i64("r_regionkey"), str("r_name", 25),
	}, []int{RRegionKey})
	return s
}

func distColName(d int) string {
	return "s_dist_" + string(rune('0'+d/10)) + string(rune('0'+d%10))
}

// All returns every schema in table-ID order.
func (s *Schemas) All() []*storage.Schema {
	return []*storage.Schema{
		s.Warehouse, s.District, s.Customer, s.History, s.NewOrder, s.Order,
		s.OrderLine, s.Item, s.Stock, s.Supplier, s.Nation, s.Region,
	}
}

// ReplicatedTables lists the relations propagated to the OLAP replica:
// per paper §8.3 those used by the analytical workload — Stock,
// Customer, Order and OrderLine (about 85% of updated tuples) — plus
// NewOrder-free static dimensions loaded directly at the replica.
func ReplicatedTables() map[storage.TableID]bool {
	return map[storage.TableID]bool{
		TStock: true, TCustomer: true, TOrder: true, TOrderLine: true,
	}
}
