package tpcc

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"batchdb/internal/mvcc"
	"batchdb/internal/oltp"
)

func newLoadedDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB(SmallScale(2))
	if err := Generate(db, 42); err != nil {
		t.Fatal(err)
	}
	return db
}

func newEngine(t *testing.T, db *DB, constantSize bool) *oltp.Engine {
	t.Helper()
	e, err := oltp.New(db.Store, oltp.Config{Workers: 2, PushPeriod: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	RegisterProcs(e, db, constantSize)
	e.Start()
	t.Cleanup(func() { e.Close() })
	return e
}

func TestGenerateCardinalities(t *testing.T) {
	db := newLoadedDB(t)
	sc := db.Scale
	ro := db.Store.BeginRO()
	defer ro.Release()

	counts := map[string]struct {
		tbl  interface{ NumChains() int }
		want int
	}{
		"warehouse": {db.Warehouse, sc.Warehouses},
		"district":  {db.District, sc.Warehouses * sc.DistrictsPerWarehouse},
		"customer":  {db.Customer, sc.Warehouses * sc.DistrictsPerWarehouse * sc.CustomersPerDistrict},
		"item":      {db.Item, sc.Items},
		"stock":     {db.Stock, sc.Warehouses * sc.Items},
		"order":     {db.Order, sc.Warehouses * sc.DistrictsPerWarehouse * sc.InitialOrdersPerDistrict},
		"new_order": {db.NewOrder, sc.Warehouses * sc.DistrictsPerWarehouse * sc.UndeliveredOrders},
		"supplier":  {db.Supplier, NumSuppliers},
		"nation":    {db.Nation, NumNations},
		"region":    {db.Region, NumRegions},
	}
	for name, c := range counts {
		if got := c.tbl.NumChains(); got != c.want {
			t.Errorf("%s count = %d, want %d", name, got, c.want)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := NewDB(SmallScale(1))
	b := NewDB(SmallScale(1))
	if err := Generate(a, 7); err != nil {
		t.Fatal(err)
	}
	if err := Generate(b, 7); err != nil {
		t.Fatal(err)
	}
	// Compare a sample of rows byte-for-byte.
	roA, roB := a.Store.BeginRO(), b.Store.BeginRO()
	defer roA.Release()
	defer roB.Release()
	for c := int64(1); c <= 10; c++ {
		ta, _ := roA.Get(a.Customer, CustomerKey(1, 1, c))
		tb, _ := roB.Get(b.Customer, CustomerKey(1, 1, c))
		if string(ta) != string(tb) {
			t.Fatalf("customer %d differs across identical seeds", c)
		}
	}
}

// checkConsistency verifies core TPC-C consistency conditions.
func checkConsistency(t *testing.T, db *DB, constantSize bool) {
	t.Helper()
	s := db.Schemas
	ro := db.Store.BeginRO()
	defer ro.Release()

	for w := int64(1); w <= int64(db.Scale.Warehouses); w++ {
		wt, ok := ro.Get(db.Warehouse, WarehouseKey(w))
		if !ok {
			t.Fatalf("warehouse %d missing", w)
		}
		wYtd := s.Warehouse.GetFloat64(wt, WYtd)
		var dSum float64
		for d := int64(1); d <= int64(db.Scale.DistrictsPerWarehouse); d++ {
			dt, ok := ro.Get(db.District, DistrictKey(w, d))
			if !ok {
				t.Fatalf("district %d/%d missing", w, d)
			}
			dSum += s.District.GetFloat64(dt, DYtd)

			// Consistency 1: d_next_o_id - 1 = max(o_id) = max(no_o_id).
			nextO := s.District.GetInt64(dt, DNextOID)
			if _, ok := ro.Get(db.Order, OrderKey(w, d, nextO)); ok {
				t.Errorf("order %d exists beyond d_next_o_id %d", nextO, nextO)
			}
			if !constantSize {
				if _, ok := ro.Get(db.Order, OrderKey(w, d, nextO-1)); !ok {
					t.Errorf("order %d/%d/%d (d_next_o_id-1) missing", w, d, nextO-1)
				}
			}

			// Consistency 3: every new_order's order exists, undelivered.
			lo, hi := NewOrderDistrictPrefix(w, d)
			for it := db.NOByDist.Seek(lo); it.Valid() && it.Key() < hi; it.Next() {
				rec := ro.ReadChain(it.Value())
				if rec == nil {
					continue
				}
				oID := s.NewOrder.GetInt64(rec.Data, NOOID)
				ot, ok := ro.Get(db.Order, OrderKey(w, d, oID))
				if !ok {
					t.Errorf("new_order %d/%d/%d has no order", w, d, oID)
					continue
				}
				if s.Order.GetInt64(ot, OCarrierID) != 0 {
					t.Errorf("new_order %d/%d/%d already delivered", w, d, oID)
				}
			}
		}
		// Consistency: scaled initial district YTD is 1/10 of spec, so
		// compare sums directly.
		initial := 300000.0
		initialD := 30000.0 * float64(db.Scale.DistrictsPerWarehouse)
		if math.Abs((wYtd-initial)-(dSum-initialD)) > 0.01 {
			t.Errorf("warehouse %d YTD delta %.2f != district sum delta %.2f",
				w, wYtd-initial, dSum-initialD)
		}
	}
}

func TestMixedWorkloadConsistency(t *testing.T) {
	db := newLoadedDB(t)
	e := newEngine(t, db, false)
	drv := NewDriver(db.Scale, 99)

	committed, rollbacks := 0, 0
	for i := 0; i < 800; i++ {
		proc, args := drv.Next()
		for {
			r := e.Exec(proc, args)
			if r.Err == nil {
				committed++
				break
			}
			if errors.Is(r.Err, ErrRollback) {
				rollbacks++
				break
			}
			if errors.Is(r.Err, mvcc.ErrConflict) {
				continue // retry
			}
			t.Fatalf("%s failed: %v", proc, r.Err)
		}
	}
	if committed < 700 {
		t.Fatalf("only %d committed", committed)
	}
	checkConsistency(t, db, false)
}

func TestMixedWorkloadConcurrentClients(t *testing.T) {
	db := newLoadedDB(t)
	e := newEngine(t, db, false)

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			drv := NewDriver(db.Scale, seed)
			for i := 0; i < 200; i++ {
				proc, args := drv.Next()
				for {
					r := e.Exec(proc, args)
					if r.Err == nil || errors.Is(r.Err, ErrRollback) {
						break
					}
					if !errors.Is(r.Err, mvcc.ErrConflict) {
						t.Errorf("%s failed: %v", proc, r.Err)
						return
					}
				}
			}
		}(int64(c + 1))
	}
	wg.Wait()
	checkConsistency(t, db, false)
}

func TestConstantSizeKeepsOrderCount(t *testing.T) {
	db := newLoadedDB(t)
	e := newEngine(t, db, true)
	drv := NewDriver(db.Scale, 5)
	drv.NewOrderOnly = true

	before := countVisible(t, db, db.Order)
	for i := 0; i < 300; i++ {
		_, args := drv.Next()
		for {
			r := e.Exec(ProcNewOrder, args)
			if r.Err == nil || errors.Is(r.Err, ErrRollback) {
				break
			}
			if !errors.Is(r.Err, mvcc.ErrConflict) {
				t.Fatalf("new_order: %v", r.Err)
			}
		}
	}
	after := countVisible(t, db, db.Order)
	// The window keeps per-district order counts constant; rollbacks
	// consume an order id without inserting, so the count may dip
	// slightly below the initial value but must never grow.
	if after > before {
		t.Fatalf("constant-size DB grew: %d -> %d orders", before, after)
	}
	if after < before-before/10 {
		t.Fatalf("constant-size DB shrank too much: %d -> %d", before, after)
	}
	checkConsistency(t, db, true)
}

func countVisible(t *testing.T, db *DB, tbl *mvcc.Table) int {
	t.Helper()
	ro := db.Store.BeginRO()
	defer ro.Release()
	n := 0
	tbl.ScanChains(func(c *mvcc.Chain) bool {
		if ro.ReadChain(c) != nil {
			n++
		}
		return true
	})
	return n
}

func TestNewOrderRollbackLeavesNoTrace(t *testing.T) {
	db := newLoadedDB(t)
	e := newEngine(t, db, false)

	ordersBefore := countVisible(t, db, db.Order)
	a := NewDriver(db.Scale, 3).NewOrder()
	a.Lines[len(a.Lines)-1].ItemID = 0 // force rollback
	r := e.Exec(ProcNewOrder, a.Encode())
	if !errors.Is(r.Err, ErrRollback) {
		t.Fatalf("err = %v, want ErrRollback", r.Err)
	}
	if got := countVisible(t, db, db.Order); got != ordersBefore {
		t.Fatalf("rolled-back order visible: %d -> %d", ordersBefore, got)
	}
	// The district's next_o_id must also be unchanged (rollback undoes
	// the increment).
	checkConsistency(t, db, false)
}

func TestPaymentByName(t *testing.T) {
	db := newLoadedDB(t)
	e := newEngine(t, db, false)
	// Customer 1 of district 1/1 has the deterministic name BARBARBAR.
	a := &PaymentArgs{
		WID: 1, DID: 1, CWID: 1, CDID: 1,
		ByName: true, CLast: LastName(0),
		Amount: 100, Date: time.Now().UnixNano(),
	}
	if r := e.Exec(ProcPayment, a.Encode()); r.Err != nil {
		t.Fatalf("payment by name: %v", r.Err)
	}
	// The paid customer carries the name and an incremented counter.
	ro := db.Store.BeginRO()
	defer ro.Release()
	s := db.Schemas.Customer
	found := false
	db.Customer.ScanChains(func(c *mvcc.Chain) bool {
		rec := ro.ReadChain(c)
		if rec == nil {
			return true
		}
		if s.GetString(rec.Data, CLast) == LastName(0) &&
			s.GetInt64(rec.Data, CWID) == 1 && s.GetInt64(rec.Data, CDID) == 1 &&
			s.GetInt64(rec.Data, CPaymentCnt) > 1 {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Fatal("no customer with last name shows the payment")
	}
}

func TestDeliveryDeliversOldest(t *testing.T) {
	db := newLoadedDB(t)
	e := newEngine(t, db, false)
	s := db.Schemas

	// Oldest undelivered order in district 1/1 before delivery.
	ro := db.Store.BeginRO()
	lo, hi := NewOrderDistrictPrefix(1, 1)
	var oldest int64 = -1
	for it := db.NOByDist.Seek(lo); it.Valid() && it.Key() < hi; it.Next() {
		if rec := ro.ReadChain(it.Value()); rec != nil {
			oldest = s.NewOrder.GetInt64(rec.Data, NOOID)
			break
		}
	}
	ro.Release()
	if oldest < 0 {
		t.Fatal("no undelivered orders in fixture")
	}

	a := &DeliveryArgs{WID: 1, CarrierID: 7, Date: time.Now().UnixNano()}
	r := e.Exec(ProcDelivery, a.Encode())
	if r.Err != nil {
		t.Fatalf("delivery: %v", r.Err)
	}

	ro2 := db.Store.BeginRO()
	defer ro2.Release()
	if _, ok := ro2.Get(db.NewOrder, NewOrderKey(1, 1, oldest)); ok {
		t.Fatal("delivered new_order entry still present")
	}
	ot, ok := ro2.Get(db.Order, OrderKey(1, 1, oldest))
	if !ok || s.Order.GetInt64(ot, OCarrierID) != 7 {
		t.Fatal("order carrier not set by delivery")
	}
	// Its order lines carry the delivery date.
	olCnt := s.Order.GetInt64(ot, OOlCnt)
	for n := int64(1); n <= olCnt; n++ {
		lt, ok := ro2.Get(db.OrderLine, OrderLineKey(1, 1, oldest, n))
		if !ok || s.OrderLine.GetInt64(lt, OLDeliveryD) == 0 {
			t.Fatalf("order line %d not delivered", n)
		}
	}
}

func TestOrderStatusAndStockLevel(t *testing.T) {
	db := newLoadedDB(t)
	e := newEngine(t, db, false)
	os := &OrderStatusArgs{WID: 1, DID: 1, CID: 1}
	if r := e.Exec(ProcOrderStatus, os.Encode()); r.Err != nil {
		t.Fatalf("order status: %v", r.Err)
	}
	sl := &StockLevelArgs{WID: 1, DID: 1, Threshold: 20}
	r := e.Exec(ProcStockLevel, sl.Encode())
	if r.Err != nil {
		t.Fatalf("stock level: %v", r.Err)
	}
	if len(r.Payload) != 8 {
		t.Fatalf("stock level payload %v", r.Payload)
	}
}

func TestRecoveryReproducesState(t *testing.T) {
	dir := t.TempDir()
	logPath := dir + "/tpcc.log"

	db := NewDB(SmallScale(1))
	if err := Generate(db, 11); err != nil {
		t.Fatal(err)
	}
	e, err := oltp.New(db.Store, oltp.Config{Workers: 2, WALPath: logPath, PushPeriod: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	RegisterProcs(e, db, false)
	e.Start()
	drv := NewDriver(db.Scale, 77)
	for i := 0; i < 300; i++ {
		proc, args := drv.Next()
		for {
			r := e.Exec(proc, args)
			if r.Err == nil || errors.Is(r.Err, ErrRollback) {
				break
			}
			if !errors.Is(r.Err, mvcc.ErrConflict) {
				t.Fatalf("%s: %v", proc, r.Err)
			}
		}
	}
	finalVID := e.LatestVID()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Fresh DB: same generation seed, then replay.
	db2 := NewDB(SmallScale(1))
	if err := Generate(db2, 11); err != nil {
		t.Fatal(err)
	}
	e2, err := oltp.New(db2.Store, oltp.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	RegisterProcs(e2, db2, false)
	n, err := oltp.RecoverEngine(e2, logPath)
	if err != nil {
		t.Fatalf("recovery failed after %d commands: %v", n, err)
	}
	if got := db2.Store.VIDs.Watermark(); got != finalVID {
		t.Fatalf("recovered watermark %d, want %d", got, finalVID)
	}

	// Compare district rows (the hottest table) byte-for-byte.
	roA, roB := db.Store.BeginRO(), db2.Store.BeginRO()
	defer roA.Release()
	defer roB.Release()
	for d := int64(1); d <= int64(db.Scale.DistrictsPerWarehouse); d++ {
		ta, _ := roA.Get(db.District, DistrictKey(1, d))
		tb, _ := roB.Get(db2.District, DistrictKey(1, d))
		if string(ta) != string(tb) {
			t.Fatalf("district %d diverged after recovery", d)
		}
	}
	checkConsistency(t, db2, false)
}
