package tpcc

import (
	"fmt"
	"math/rand"
	"time"
)

// NURand constants. The spec draws the runtime constant from a range
// around the load-time constant; using identical constants is the
// simplest valid-enough choice for a reproduction and keeps recovery
// deterministic.
const (
	cNURandLast = 173
	cNURandCID  = 521
	cNURandItem = 3847
)

// nuRand is the spec's non-uniform random function NURand(A, x, y).
func nuRand(rng *rand.Rand, a, c, x, y int64) int64 {
	return (((rng.Int63n(a+1) | (x + rng.Int63n(y-x+1))) + c) % (y - x + 1)) + x
}

// lastNameSyllables per TPC-C 4.3.2.3.
var lastNameSyllables = []string{
	"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
}

// LastName builds the spec's synthetic customer last name for a number
// in [0, 999].
func LastName(num int64) string {
	return lastNameSyllables[num/100] + lastNameSyllables[(num/10)%10] + lastNameSyllables[num%10]
}

const alnum = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"

func randStr(rng *rand.Rand, lo, hi int) string {
	n := lo
	if hi > lo {
		n += rng.Intn(hi - lo + 1)
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = alnum[rng.Intn(len(alnum))]
	}
	return string(b)
}

func randZip(rng *rand.Rand) string {
	b := make([]byte, 9)
	for i := 0; i < 4; i++ {
		b[i] = byte('0' + rng.Intn(10))
	}
	copy(b[4:], "11111")
	return string(b)
}

// LoadEpoch is the fixed "now" of the initial population, so that data
// generation is deterministic and recovery reproducible.
var LoadEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano()

// Generate populates db at VID 0 using a deterministic seed. Call once,
// before the engine starts.
func Generate(db *DB, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	if err := genRegionsNations(db, rng); err != nil {
		return err
	}
	if err := genSuppliers(db, rng); err != nil {
		return err
	}
	if err := genItems(db, rng); err != nil {
		return err
	}
	for w := 1; w <= db.Scale.Warehouses; w++ {
		if err := genWarehouse(db, rng, int64(w)); err != nil {
			return err
		}
	}
	return nil
}

func genRegionsNations(db *DB, rng *rand.Rand) error {
	s := db.Schemas.Region
	for r := int64(0); r < NumRegions; r++ {
		t := s.NewTuple()
		s.PutInt64(t, RRegionKey, r)
		s.PutString(t, RName, fmt.Sprintf("REGION_%d", r))
		if _, err := db.Region.LoadRow(t); err != nil {
			return err
		}
	}
	n := db.Schemas.Nation
	for k := int64(0); k < NumNations; k++ {
		t := n.NewTuple()
		n.PutInt64(t, NNationKey, k)
		n.PutString(t, NName, fmt.Sprintf("NATION_%02d", k))
		n.PutInt64(t, NRegionKey, k%NumRegions)
		if _, err := db.Nation.LoadRow(t); err != nil {
			return err
		}
	}
	return nil
}

func genSuppliers(db *DB, rng *rand.Rand) error {
	s := db.Schemas.Supplier
	for k := int64(0); k < NumSuppliers; k++ {
		t := s.NewTuple()
		s.PutInt64(t, SUSuppKey, k)
		s.PutString(t, SUName, fmt.Sprintf("Supplier#%09d", k))
		s.PutInt64(t, SUNationKey, rng.Int63n(NumNations))
		s.PutString(t, SUPhone, randStr(rng, 12, 12))
		s.PutFloat64(t, SUAcctBal, float64(rng.Intn(1000000))/100)
		comment := randStr(rng, 30, 60)
		if rng.Intn(20) == 0 { // 5% complainers (Q16 predicate)
			comment = comment[:10] + "Complaints" + comment[20:]
		}
		s.PutString(t, SUComment, comment)
		if _, err := db.Supplier.LoadRow(t); err != nil {
			return err
		}
	}
	return nil
}

func genItems(db *DB, rng *rand.Rand) error {
	s := db.Schemas.Item
	for i := int64(1); i <= int64(db.Scale.Items); i++ {
		t := s.NewTuple()
		s.PutInt64(t, IID, i)
		s.PutInt64(t, IImID, 1+rng.Int63n(10000))
		s.PutString(t, IName, randStr(rng, 14, 24))
		s.PutFloat64(t, IPrice, 1+float64(rng.Intn(9900))/100)
		data := randStr(rng, 26, 50)
		if rng.Intn(10) == 0 { // 10% carry ORIGINAL per spec
			data = data[:5] + "ORIGINAL" + data[13:]
		}
		s.PutString(t, IData, data)
		if _, err := db.Item.LoadRow(t); err != nil {
			return err
		}
	}
	return nil
}

func genWarehouse(db *DB, rng *rand.Rand, w int64) error {
	ws := db.Schemas.Warehouse
	t := ws.NewTuple()
	ws.PutInt64(t, WID, w)
	ws.PutString(t, WName, randStr(rng, 6, 10))
	ws.PutString(t, WStreet1, randStr(rng, 10, 20))
	ws.PutString(t, WStreet2, randStr(rng, 10, 20))
	ws.PutString(t, WCity, randStr(rng, 10, 20))
	ws.PutString(t, WState, randStr(rng, 2, 2))
	ws.PutString(t, WZip, randZip(rng))
	ws.PutFloat64(t, WTax, float64(rng.Intn(2001))/10000)
	ws.PutFloat64(t, WYtd, 300000)
	if _, err := db.Warehouse.LoadRow(t); err != nil {
		return err
	}

	// Stock for every item.
	ss := db.Schemas.Stock
	for i := int64(1); i <= int64(db.Scale.Items); i++ {
		st := ss.NewTuple()
		ss.PutInt64(st, SIID, i)
		ss.PutInt64(st, SWID, w)
		ss.PutInt64(st, SQuantity, 10+rng.Int63n(91))
		for d := 0; d < 10; d++ {
			ss.PutString(st, SDist01+d, randStr(rng, 24, 24))
		}
		data := randStr(rng, 26, 50)
		if rng.Intn(10) == 0 {
			data = data[:5] + "ORIGINAL" + data[13:]
		}
		ss.PutString(st, SData, data)
		if _, err := db.Stock.LoadRow(st); err != nil {
			return err
		}
	}

	for d := 1; d <= db.Scale.DistrictsPerWarehouse; d++ {
		if err := genDistrict(db, rng, w, int64(d)); err != nil {
			return err
		}
	}
	return nil
}

func genDistrict(db *DB, rng *rand.Rand, w, d int64) error {
	ds := db.Schemas.District
	t := ds.NewTuple()
	ds.PutInt64(t, DID, d)
	ds.PutInt64(t, DWID, w)
	ds.PutString(t, DName, randStr(rng, 6, 10))
	ds.PutString(t, DStreet1, randStr(rng, 10, 20))
	ds.PutString(t, DStreet2, randStr(rng, 10, 20))
	ds.PutString(t, DCity, randStr(rng, 10, 20))
	ds.PutString(t, DState, randStr(rng, 2, 2))
	ds.PutString(t, DZip, randZip(rng))
	ds.PutFloat64(t, DTax, float64(rng.Intn(2001))/10000)
	ds.PutFloat64(t, DYtd, 30000)
	ds.PutInt64(t, DNextOID, int64(db.Scale.InitialOrdersPerDistrict)+1)
	if _, err := db.District.LoadRow(t); err != nil {
		return err
	}

	nCust := int64(db.Scale.CustomersPerDistrict)
	cs := db.Schemas.Customer
	for c := int64(1); c <= nCust; c++ {
		ct := cs.NewTuple()
		cs.PutInt64(ct, CID, c)
		cs.PutInt64(ct, CDID, d)
		cs.PutInt64(ct, CWID, w)
		cs.PutString(ct, CFirst, randStr(rng, 8, 16))
		cs.PutString(ct, CMiddle, "OE")
		var lastNum int64
		if c <= 1000 {
			lastNum = (c - 1) % 1000
		} else {
			lastNum = nuRand(rng, 255, cNURandLast, 0, 999)
		}
		cs.PutString(ct, CLast, LastName(lastNum))
		cs.PutString(ct, CStreet1, randStr(rng, 10, 20))
		cs.PutString(ct, CStreet2, randStr(rng, 10, 20))
		cs.PutString(ct, CCity, randStr(rng, 10, 20))
		cs.PutString(ct, CState, randStr(rng, 2, 2))
		cs.PutString(ct, CZip, randZip(rng))
		cs.PutString(ct, CPhone, randStr(rng, 16, 16))
		cs.PutInt64(ct, CSince, LoadEpoch)
		if rng.Intn(10) == 0 { // 10% bad credit
			cs.PutString(ct, CCredit, "BC")
		} else {
			cs.PutString(ct, CCredit, "GC")
		}
		cs.PutFloat64(ct, CCreditLim, 50000)
		cs.PutFloat64(ct, CDiscount, float64(rng.Intn(5001))/10000)
		cs.PutFloat64(ct, CBalance, -10)
		cs.PutFloat64(ct, CYtdPayment, 10)
		cs.PutInt64(ct, CPaymentCnt, 1)
		cs.PutInt64(ct, CDeliveryCnt, 0)
		cs.PutString(ct, CData, randStr(rng, 100, 250))
		cs.PutInt64(ct, CNationKey, rng.Int63n(NumNations))
		if _, err := db.Customer.LoadRow(ct); err != nil {
			return err
		}

		// One initial history row per customer.
		hs := db.Schemas.History
		ht := hs.NewTuple()
		hs.PutInt64(ht, HPK, int64(HistoryKey(w, d, c, 0)))
		hs.PutInt64(ht, HCID, c)
		hs.PutInt64(ht, HCDID, d)
		hs.PutInt64(ht, HCWID, w)
		hs.PutInt64(ht, HDID, d)
		hs.PutInt64(ht, HWID, w)
		hs.PutInt64(ht, HDate, LoadEpoch)
		hs.PutFloat64(ht, HAmount, 10)
		hs.PutString(ht, HData, randStr(rng, 12, 24))
		if _, err := db.History.LoadRow(ht); err != nil {
			return err
		}
	}

	// Initial orders over a random permutation of customers.
	nOrders := int64(db.Scale.InitialOrdersPerDistrict)
	perm := rng.Perm(int(nCust))
	os := db.Schemas.Order
	ols := db.Schemas.OrderLine
	nos := db.Schemas.NewOrder
	deliveredUpTo := nOrders - int64(db.Scale.UndeliveredOrders)
	for o := int64(1); o <= nOrders; o++ {
		cID := int64(perm[int((o-1))%len(perm)]) + 1
		olCnt := 5 + rng.Int63n(11)
		entry := LoadEpoch - rng.Int63n(int64(30*24*time.Hour))
		ot := os.NewTuple()
		os.PutInt64(ot, OID, o)
		os.PutInt64(ot, ODID, d)
		os.PutInt64(ot, OWID, w)
		os.PutInt64(ot, OCID, cID)
		os.PutInt64(ot, OEntryD, entry)
		if o <= deliveredUpTo {
			os.PutInt64(ot, OCarrierID, 1+rng.Int63n(10))
		}
		os.PutInt64(ot, OOlCnt, olCnt)
		os.PutInt64(ot, OAllLocal, 1)
		if _, err := db.Order.LoadRow(ot); err != nil {
			return err
		}
		for n := int64(1); n <= olCnt; n++ {
			lt := ols.NewTuple()
			ols.PutInt64(lt, OLOID, o)
			ols.PutInt64(lt, OLDID, d)
			ols.PutInt64(lt, OLWID, w)
			ols.PutInt64(lt, OLNumber, n)
			ols.PutInt64(lt, OLIID, 1+rng.Int63n(int64(db.Scale.Items)))
			ols.PutInt64(lt, OLSupplyWID, w)
			if o <= deliveredUpTo {
				ols.PutInt64(lt, OLDeliveryD, entry)
			}
			ols.PutInt64(lt, OLQuantity, 5)
			// Deviation from strict TPC-C initial population (which
			// zeroes delivered amounts): CH-benCHmark analytics need
			// non-degenerate amounts on day one.
			ols.PutFloat64(lt, OLAmount, float64(1+rng.Intn(999999))/100)
			ols.PutString(lt, OLDistInfo, randStr(rng, 24, 24))
			if _, err := db.OrderLine.LoadRow(lt); err != nil {
				return err
			}
		}
		if o > deliveredUpTo {
			nt := nos.NewTuple()
			nos.PutInt64(nt, NOOID, o)
			nos.PutInt64(nt, NODID, d)
			nos.PutInt64(nt, NOWID, w)
			if _, err := db.NewOrder.LoadRow(nt); err != nil {
				return err
			}
		}
	}
	return nil
}
