package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"batchdb/internal/crash"
	"batchdb/internal/metrics"
)

// Segment files are named by the first commit VID they may contain
// ("wal-00000000000000000042.seg"), so recovery can skip whole segments
// that a checkpoint supersedes without opening them, and truncation is a
// plain unlink.
const (
	segPrefix = "wal-"
	segSuffix = ".seg"
)

func segName(firstVID uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, firstVID, segSuffix)
}

type segInfo struct {
	first uint64 // first commit VID this segment may contain
	path  string
}

// listSegments returns the directory's segments sorted by first VID.
func listSegments(dir string) ([]segInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segInfo
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		first, err := strconv.ParseUint(num, 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, segInfo{first: first, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// DirOptions configures a segmented log Manager.
type DirOptions struct {
	// Sync forces an fsync per group commit.
	Sync bool
	// SegmentBytes is the rotation threshold (default 16 MiB): a Commit
	// that finds the current segment at or above it opens a new one.
	SegmentBytes int64
	// StartVID names the first segment when the directory is empty: the
	// first VID that will be appended (the store watermark + 1).
	StartVID uint64
	// Inj is the crash-injection hook (nil in production).
	Inj *crash.Injector
	// Stats receives WAL byte/segment counters (optional).
	Stats *metrics.DurabilityStats
}

// Manager is a segmented command log: the data-dir counterpart of Log.
// Same frame format per segment, plus rotation at a size threshold and
// truncation of segments superseded by a checkpoint. Append/Commit are
// called by the single OLTP dispatcher; TruncateTo by the checkpointer
// goroutine — a mutex serializes them.
type Manager struct {
	dir  string
	sync bool
	inj  *crash.Injector
	st   *metrics.DurabilityStats

	mu        sync.Mutex
	f         *os.File
	segs      []segInfo
	size      int64 // bytes in the current (last) segment
	segBytes  int64
	appended  int64 // bytes appended since open (for checkpoint policy)
	pend      []byte
	pendFirst uint64 // first commit VID in pend (0 = none)
	scratch   []byte
}

// OpenDir opens (or initializes) a segment directory for appending. An
// existing last segment has its torn tail truncated — recovery must have
// replayed the directory first, so the intact prefix is exactly what
// recovery saw.
func OpenDir(dir string, o DirOptions) (*Manager, error) {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 16 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open dir: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: open dir: %w", err)
	}
	m := &Manager{dir: dir, sync: o.Sync, inj: o.Inj, st: o.Stats, segs: segs, segBytes: o.SegmentBytes}
	if len(segs) == 0 {
		first := o.StartVID
		if first == 0 {
			first = 1
		}
		if err := m.newSegment(first); err != nil {
			return nil, err
		}
	} else {
		last := segs[len(segs)-1]
		validLen, _, _, err := scanValidPrefix(last.path)
		if err != nil {
			return nil, fmt.Errorf("wal: resume %s: %w", last.path, err)
		}
		f, err := os.OpenFile(last.path, os.O_RDWR, 0)
		if err != nil {
			return nil, fmt.Errorf("wal: resume: %w", err)
		}
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if validLen == 0 {
			// Crash during rotation before the header reached disk.
			if _, err := f.WriteString(magic); err != nil {
				f.Close()
				return nil, err
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, err
			}
			validLen = int64(len(magic))
		} else if _, err := f.Seek(validLen, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		m.f = f
		m.size = validLen
	}
	if m.st != nil {
		m.st.WALSegments.Set(int64(len(m.segs)))
	}
	return m, nil
}

// newSegment creates and opens a fresh segment named by firstVID. The
// header is synced before the directory entry, so a crash between the
// two leaves either no segment or a valid empty one.
func (m *Manager) newSegment(firstVID uint64) error {
	path := filepath.Join(m.dir, segName(firstVID))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: new segment: %w", err)
	}
	if _, err := f.WriteString(magic); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := m.inj.Hit(crash.WALRotate); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(m.dir); err != nil {
		f.Close()
		return err
	}
	m.f = f
	m.size = int64(len(magic))
	m.segs = append(m.segs, segInfo{first: firstVID, path: path})
	if m.st != nil {
		m.st.WALSegments.Set(int64(len(m.segs)))
	}
	return nil
}

// Append buffers one record; it becomes durable at the next Commit. The
// Manager batches into its own buffer (not a bufio.Writer) so crash
// injection controls exactly which bytes reach the file.
func (m *Manager) Append(r Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.pendFirst == 0 {
		m.pendFirst = r.CommitVID
	}
	m.scratch = encodeBody(m.scratch[:0], r)
	m.pend = appendFrame(m.pend, m.scratch)
	return nil
}

// Commit makes the buffered batch durable: rotate if the current segment
// is full, write the batch, optionally fsync. After an error (including
// an injected crash) the pending batch is dropped — the dispatcher
// reports the affected transactions as not durable.
func (m *Manager) Commit() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.pend) == 0 {
		return nil
	}
	defer func() {
		m.pend = m.pend[:0]
		m.pendFirst = 0
	}()
	if m.size >= m.segBytes {
		// Seal the current segment and open one named by the first VID
		// of the batch about to be written.
		if err := m.f.Sync(); err != nil {
			return err
		}
		if err := m.f.Close(); err != nil {
			return err
		}
		if err := m.newSegment(m.pendFirst); err != nil {
			return err
		}
	}
	k, err := m.inj.HitWrite(crash.WALFlush, len(m.pend))
	if err != nil {
		if k > 0 {
			m.f.Write(m.pend[:k]) // the torn prefix a dying process left
			m.size += int64(k)
		}
		return err
	}
	n, err := m.f.Write(m.pend)
	m.size += int64(n)
	if err != nil {
		return err
	}
	m.appended += int64(n)
	if m.st != nil {
		m.st.WALAppendedBytes.Add(uint64(n))
	}
	if m.sync {
		if err := m.inj.Hit(crash.WALSync); err != nil {
			return err
		}
		t0 := time.Now()
		if err := m.f.Sync(); err != nil {
			return err
		}
		if m.st != nil {
			m.st.WALFsyncNanos.RecordSince(t0)
		}
		return nil
	}
	return nil
}

// Appended returns the bytes appended since open (checkpoint policy
// input).
func (m *Manager) Appended() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.appended
}

// Segments returns the current segment count.
func (m *Manager) Segments() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.segs)
}

// TruncateTo unlinks segments wholly covered by VID cover: segment i is
// removable when the next segment starts at or below cover+1, meaning
// every record with VID > cover lives in a later segment. The last
// segment is never removed (it is the append target).
func (m *Manager) TruncateTo(cover uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.segs) >= 2 && m.segs[1].first <= cover+1 {
		if err := m.inj.Hit(crash.WALTruncate); err != nil {
			return err
		}
		if err := os.Remove(m.segs[0].path); err != nil {
			return err
		}
		m.segs = m.segs[1:]
		if m.st != nil {
			m.st.SegmentsTruncated.Inc()
			m.st.WALSegments.Set(int64(len(m.segs)))
		}
	}
	return syncDir(m.dir)
}

// Close flushes any pending batch and closes the current segment.
func (m *Manager) Close() error {
	if err := m.Commit(); err != nil {
		m.mu.Lock()
		m.f.Close()
		m.mu.Unlock()
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.f.Close()
}

// ReplayDir replays every record with CommitVID > after from a segment
// directory, in order. Segments wholly covered by after are skipped
// without being read (recovery cost is bounded by the WAL tail, not
// total history). A torn tail is tolerated only in the final segment;
// anywhere else it is ErrCorrupt, because rotation sealed those files.
func ReplayDir(dir string, after uint64, fn func(Record) error) (int, error) {
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("wal: replay dir: %w", err)
	}
	replayed := 0
	for i, s := range segs {
		if i+1 < len(segs) && segs[i+1].first <= after+1 {
			continue // every record here has VID <= after
		}
		final := i == len(segs)-1
		err := replayFile(s.path, final, func(r Record) error {
			if r.CommitVID <= after {
				return nil
			}
			replayed++
			return fn(r)
		})
		if err != nil {
			return replayed, fmt.Errorf("wal: segment %s: %w", filepath.Base(s.path), err)
		}
	}
	return replayed, nil
}
