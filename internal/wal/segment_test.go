package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func rec(vid uint64) Record {
	return Record{CommitVID: vid, ReadVID: vid - 1, Proc: "p", Args: []byte("0123456789abcdef")}
}

func TestCreateRefusesNonEmpty(t *testing.T) {
	path := tmpLog(t)
	l, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Append(rec(1))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(path, Options{}); !errors.Is(err, ErrExists) {
		t.Fatalf("Create over a non-empty log: err = %v, want ErrExists", err)
	}
	// The records must still be there (no silent truncation).
	n := 0
	if err := Replay(path, func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("log lost records: replayed %d, want 1", n)
	}
}

func TestOpenAppendResume(t *testing.T) {
	path := tmpLog(t)
	l, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(1); v <= 3; v++ {
		l.Append(rec(v))
	}
	l.Close()

	l2, lastVID, n, err := OpenAppend(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lastVID != 3 || n != 3 {
		t.Fatalf("resume: lastVID=%d n=%d, want 3/3", lastVID, n)
	}
	l2.Append(rec(4))
	l2.Close()

	var got []uint64
	if err := Replay(path, func(r Record) error { got = append(got, r.CommitVID); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[3] != 4 {
		t.Fatalf("after resume+append: %v", got)
	}
}

func TestOpenAppendTruncatesTornTail(t *testing.T) {
	path := tmpLog(t)
	l, _ := Create(path, Options{})
	for v := uint64(1); v <= 3; v++ {
		l.Append(rec(v))
	}
	l.Close()
	fi, _ := os.Stat(path)
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	l2, lastVID, n, err := OpenAppend(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lastVID != 2 || n != 2 {
		t.Fatalf("torn resume: lastVID=%d n=%d, want 2/2", lastVID, n)
	}
	l2.Append(rec(3))
	l2.Close()
	var got []uint64
	if err := Replay(path, func(r Record) error { got = append(got, r.CommitVID); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("after torn resume: %v", got)
	}
}

// Satellite property test: a log truncated at EVERY byte offset (the
// full space of torn tails a crash can leave) must always replay as an
// intact record prefix — never ErrCorrupt, never a partial record — and
// OpenAppend must agree with Replay on where the prefix ends.
func TestTornTailEveryOffset(t *testing.T) {
	master := filepath.Join(t.TempDir(), "master.log")
	l, err := Create(master, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int64 // file size after each record, sizes[0] = header only
	sizes = append(sizes, int64(len(magic)))
	const records = 6
	for v := uint64(1); v <= records; v++ {
		r := Record{CommitVID: v, ReadVID: v - 1, Proc: "proc", Args: []byte("payload-bytes")}
		l.Append(r)
		if err := l.Commit(); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, sizes[len(sizes)-1]+int64(frameSize(r)))
	}
	l.Close()
	full, err := os.ReadFile(master)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != sizes[records] {
		t.Fatalf("frameSize accounting: file is %d bytes, computed %d", len(full), sizes[records])
	}

	// intactBelow(sz) = how many whole records fit in the first sz bytes.
	intactBelow := func(sz int64) int {
		n := 0
		for n < records && sizes[n+1] <= sz {
			n++
		}
		return n
	}

	dir := t.TempDir()
	for cut := int64(0); cut <= int64(len(full)); cut++ {
		path := filepath.Join(dir, "cut.log")
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		want := intactBelow(cut)

		got := 0
		lastVID := uint64(0)
		if err := Replay(path, func(r Record) error {
			got++
			if r.CommitVID != lastVID+1 {
				t.Fatalf("cut=%d: VID gap (%d after %d)", cut, r.CommitVID, lastVID)
			}
			lastVID = r.CommitVID
			return nil
		}); err != nil {
			t.Fatalf("cut=%d: Replay must tolerate any torn tail, got %v", cut, err)
		}
		if got != want {
			t.Fatalf("cut=%d: replayed %d records, want intact prefix %d", cut, got, want)
		}

		validLen, scanVID, scanN, err := scanValidPrefix(path)
		if err != nil {
			t.Fatalf("cut=%d: scanValidPrefix: %v", cut, err)
		}
		if scanN != want || scanVID != uint64(want) {
			t.Fatalf("cut=%d: scan found %d records (last VID %d), want %d", cut, scanN, scanVID, want)
		}
		wantLen := sizes[want]
		if cut < wantLen {
			wantLen = 0 // torn inside the header: whole file invalid
		}
		if validLen != wantLen && !(cut < int64(len(magic)) && validLen == 0) {
			t.Fatalf("cut=%d: validLen=%d, want %d", cut, validLen, wantLen)
		}
		os.Remove(path)
	}
}

func openTestDir(t *testing.T, dir string, o DirOptions) *Manager {
	t.Helper()
	m, err := OpenDir(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	m := openTestDir(t, dir, DirOptions{SegmentBytes: 128, StartVID: 1})
	// Each record is ~46 bytes; with a 128-byte threshold the manager
	// rotates every few commits.
	for v := uint64(1); v <= 20; v++ {
		m.Append(rec(v))
		if err := m.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	if segs[0].first != 1 {
		t.Fatalf("first segment named %d, want 1", segs[0].first)
	}
	// Segment names must match their first contained VID: replay each
	// sealed segment and check its first record.
	for i, s := range segs {
		first := uint64(0)
		replayFile(s.path, i == len(segs)-1, func(r Record) error {
			if first == 0 {
				first = r.CommitVID
			}
			return nil
		})
		if first != 0 && first != s.first {
			t.Fatalf("segment %s starts at VID %d", filepath.Base(s.path), first)
		}
	}
	var got []uint64
	n, err := ReplayDir(dir, 0, func(r Record) error { got = append(got, r.CommitVID); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 || len(got) != 20 {
		t.Fatalf("full replay got %d records", n)
	}
	for i, v := range got {
		if v != uint64(i+1) {
			t.Fatalf("replay out of order at %d: %v", i, got)
		}
	}
}

func TestReplayDirSkipsCoveredSegments(t *testing.T) {
	dir := t.TempDir()
	m := openTestDir(t, dir, DirOptions{SegmentBytes: 128, StartVID: 1})
	for v := uint64(1); v <= 20; v++ {
		m.Append(rec(v))
		m.Commit()
	}
	m.Close()
	for after := uint64(0); after <= 20; after++ {
		var got []uint64
		n, err := ReplayDir(dir, after, func(r Record) error { got = append(got, r.CommitVID); return nil })
		if err != nil {
			t.Fatal(err)
		}
		if n != int(20-after) {
			t.Fatalf("after=%d: replayed %d, want %d", after, n, 20-after)
		}
		if n > 0 && (got[0] != after+1 || got[n-1] != 20) {
			t.Fatalf("after=%d: got range [%d,%d]", after, got[0], got[n-1])
		}
	}
}

func TestTruncateTo(t *testing.T) {
	dir := t.TempDir()
	m := openTestDir(t, dir, DirOptions{SegmentBytes: 128, StartVID: 1})
	for v := uint64(1); v <= 20; v++ {
		m.Append(rec(v))
		m.Commit()
	}
	before := m.Segments()
	if before < 3 {
		t.Fatalf("need several segments, got %d", before)
	}
	if err := m.TruncateTo(10); err != nil {
		t.Fatal(err)
	}
	if m.Segments() >= before {
		t.Fatalf("TruncateTo removed nothing (%d -> %d segments)", before, m.Segments())
	}
	// Everything above the cover must still replay.
	var got []uint64
	if _, err := ReplayDir(dir, 10, func(r Record) error { got = append(got, r.CommitVID); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != 11 || got[9] != 20 {
		t.Fatalf("post-truncate replay: %v", got)
	}
	// Truncating everything still keeps the live append segment.
	if err := m.TruncateTo(20); err != nil {
		t.Fatal(err)
	}
	if m.Segments() != 1 {
		t.Fatalf("truncate-all kept %d segments, want 1 (append target)", m.Segments())
	}
	m.Close()
}

func TestOpenDirResumesAfterTornTail(t *testing.T) {
	dir := t.TempDir()
	m := openTestDir(t, dir, DirOptions{SegmentBytes: 1 << 20, StartVID: 1})
	for v := uint64(1); v <= 5; v++ {
		m.Append(rec(v))
		m.Commit()
	}
	m.Close()
	segs, _ := listSegments(dir)
	if len(segs) != 1 {
		t.Fatalf("segments = %d", len(segs))
	}
	fi, _ := os.Stat(segs[0].path)
	if err := os.Truncate(segs[0].path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	// Recovery replays the intact prefix...
	n, err := ReplayDir(dir, 0, func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("replayed %d, want 4", n)
	}
	// ...and reopening truncates the torn bytes and appends after them.
	m2 := openTestDir(t, dir, DirOptions{SegmentBytes: 1 << 20})
	m2.Append(rec(5))
	if err := m2.Commit(); err != nil {
		t.Fatal(err)
	}
	m2.Close()
	var got []uint64
	ReplayDir(dir, 0, func(r Record) error { got = append(got, r.CommitVID); return nil })
	if len(got) != 5 || got[4] != 5 {
		t.Fatalf("after torn resume: %v", got)
	}
}

func TestReplayDirEmptyAndMissing(t *testing.T) {
	n, err := ReplayDir(filepath.Join(t.TempDir(), "nope"), 0, func(Record) error { return nil })
	if err != nil || n != 0 {
		t.Fatalf("missing dir: n=%d err=%v", n, err)
	}
	dir := t.TempDir()
	m := openTestDir(t, dir, DirOptions{})
	m.Close()
	n, err = ReplayDir(dir, 0, func(Record) error { return nil })
	if err != nil || n != 0 {
		t.Fatalf("empty dir: n=%d err=%v", n, err)
	}
}
