// Package wal implements BatchDB's durability mechanism: logical command
// logging with group commit (paper §4 "Logging").
//
// Like VoltDB [38], the log records the *command* (stored-procedure name
// and arguments), not physical changes. Because the engine runs under
// snapshot isolation, each record also carries the transaction's read
// snapshot VID and commit VID so that recovery can replay commands
// against the same snapshots and reproduce the exact same state. The
// OLTP dispatcher appends all records of a batch and then issues a
// single Commit (flush + optional fsync), amortizing I/O latency across
// the batch — the group commit of [12].
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Record is one logged command.
type Record struct {
	// CommitVID is the VID assigned at commit.
	CommitVID uint64
	// ReadVID is the snapshot the transaction read at; replay must use
	// the same snapshot for deterministic re-execution.
	ReadVID uint64
	// Proc names the stored procedure.
	Proc string
	// Args is the procedure's serialized argument record.
	Args []byte
}

const magic = "BDBWAL01"

var (
	// ErrCorrupt reports a record that fails its checksum; replay stops
	// at the last intact prefix, mirroring torn-tail handling.
	ErrCorrupt = errors.New("wal: corrupt record")
	crcTable   = crc32.MakeTable(crc32.Castagnoli)
)

// Log is an append-only command log. Append buffers; Commit makes the
// batch durable. A Log is not safe for concurrent use: the OLTP
// dispatcher is its single writer, which is exactly the paper's design.
type Log struct {
	f    *os.File
	w    *bufio.Writer
	sync bool
	buf  []byte
}

// Options configures a Log.
type Options struct {
	// Sync forces an fsync on every Commit. Off by default for
	// benchmarks on machines without fast stable storage; the group
	// commit structure is identical either way.
	Sync bool
}

// Create creates (or truncates) a log file and writes its header.
func Create(path string, opts Options) (*Log, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	l := &Log{f: f, w: bufio.NewWriterSize(f, 1<<20), sync: opts.Sync}
	if _, err := l.w.WriteString(magic); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// Append buffers one record. It becomes durable at the next Commit.
func (l *Log) Append(r Record) error {
	need := 8 + 8 + 2 + len(r.Proc) + 4 + len(r.Args)
	l.buf = l.buf[:0]
	l.buf = binary.LittleEndian.AppendUint64(l.buf, r.CommitVID)
	l.buf = binary.LittleEndian.AppendUint64(l.buf, r.ReadVID)
	l.buf = binary.LittleEndian.AppendUint16(l.buf, uint16(len(r.Proc)))
	l.buf = append(l.buf, r.Proc...)
	l.buf = binary.LittleEndian.AppendUint32(l.buf, uint32(len(r.Args)))
	l.buf = append(l.buf, r.Args...)
	if len(l.buf) != need {
		return fmt.Errorf("wal: internal encoding length mismatch")
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(l.buf)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(l.buf, crcTable))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := l.w.Write(l.buf)
	return err
}

// Commit flushes the buffered batch and, if configured, fsyncs. This is
// the group-commit point: after Commit returns, every record appended
// since the previous Commit is durable.
func (l *Log) Commit() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if l.sync {
		return l.f.Sync()
	}
	return nil
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	if err := l.Commit(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Replay reads a log file and invokes fn for every intact record in
// append order. A torn or corrupt tail ends replay without error (the
// corresponding transactions never acknowledged); corruption in the
// middle of the file returns ErrCorrupt.
func Replay(path string, fn func(Record) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: open: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(r, hdr); err != nil || string(hdr) != magic {
		return fmt.Errorf("wal: bad header: %w", ErrCorrupt)
	}
	var lenCRC [8]byte
	for {
		if _, err := io.ReadFull(r, lenCRC[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return nil // torn header at tail
		}
		n := binary.LittleEndian.Uint32(lenCRC[0:])
		want := binary.LittleEndian.Uint32(lenCRC[4:])
		if n > 64<<20 {
			return ErrCorrupt
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			return nil // torn body at tail
		}
		if crc32.Checksum(body, crcTable) != want {
			// Distinguish torn tail (nothing after) from mid-file rot.
			if _, err := r.Peek(1); err == io.EOF {
				return nil
			}
			return ErrCorrupt
		}
		rec, err := decode(body)
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

func decode(b []byte) (Record, error) {
	var r Record
	if len(b) < 22 {
		return r, ErrCorrupt
	}
	r.CommitVID = binary.LittleEndian.Uint64(b[0:])
	r.ReadVID = binary.LittleEndian.Uint64(b[8:])
	pn := int(binary.LittleEndian.Uint16(b[16:]))
	if len(b) < 18+pn+4 {
		return r, ErrCorrupt
	}
	r.Proc = string(b[18 : 18+pn])
	an := int(binary.LittleEndian.Uint32(b[18+pn:]))
	if len(b) != 18+pn+4+an {
		return r, ErrCorrupt
	}
	r.Args = append([]byte(nil), b[18+pn+4:]...)
	return r, nil
}
