// Package wal implements BatchDB's durability mechanism: logical command
// logging with group commit (paper §4 "Logging").
//
// Like VoltDB [38], the log records the *command* (stored-procedure name
// and arguments), not physical changes. Because the engine runs under
// snapshot isolation, each record also carries the transaction's read
// snapshot VID and commit VID so that recovery can replay commands
// against the same snapshots and reproduce the exact same state. The
// OLTP dispatcher appends all records of a batch and then issues a
// single Commit (flush + optional fsync), amortizing I/O latency across
// the batch — the group commit of [12].
//
// Two log shapes share one file format (magic + CRC-framed records):
// the single-file Log below, and the segmented Manager (segment.go)
// used by the checkpointing data-dir mode, which rotates segments at a
// size threshold and truncates those superseded by a checkpoint.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Record is one logged command.
type Record struct {
	// CommitVID is the VID assigned at commit.
	CommitVID uint64
	// ReadVID is the snapshot the transaction read at; replay must use
	// the same snapshot for deterministic re-execution.
	ReadVID uint64
	// Proc names the stored procedure.
	Proc string
	// Args is the procedure's serialized argument record.
	Args []byte
}

const magic = "BDBWAL01"

var (
	// ErrCorrupt reports a record that fails its checksum; replay stops
	// at the last intact prefix, mirroring torn-tail handling.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrExists reports a Create against an existing non-empty log.
	// Silently truncating a command log is data loss; OpenAppend is the
	// resume path.
	ErrExists = errors.New("wal: log exists and is non-empty (use OpenAppend to resume)")
	crcTable  = crc32.MakeTable(crc32.Castagnoli)
)

// Log is an append-only command log. Append buffers; Commit makes the
// batch durable. A Log is not safe for concurrent use: the OLTP
// dispatcher is its single writer, which is exactly the paper's design.
type Log struct {
	f    *os.File
	w    *bufio.Writer
	sync bool
	buf  []byte
}

// Options configures a Log.
type Options struct {
	// Sync forces an fsync on every Commit. Off by default for
	// benchmarks on machines without fast stable storage; the group
	// commit structure is identical either way.
	Sync bool
}

// Create creates a log file and writes its header. It refuses to
// overwrite an existing non-empty log (ErrExists). The header and the
// parent directory are fsynced so a crash right after startup cannot
// lose the file itself.
func Create(path string, opts Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	if st.Size() > 0 {
		f.Close()
		return nil, fmt.Errorf("wal: create %s: %w", path, ErrExists)
	}
	if _, err := f.WriteString(magic); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return &Log{f: f, w: bufio.NewWriterSize(f, 1<<20), sync: opts.Sync}, nil
}

// OpenAppend resumes an existing log after a crash or clean shutdown: it
// scans the intact record prefix, truncates any torn tail left by a
// crash mid-append, and positions the log to append. It returns the log,
// the last intact CommitVID (0 if none), and the intact record count.
func OpenAppend(path string, opts Options) (*Log, uint64, int, error) {
	validLen, lastVID, n, err := scanValidPrefix(path)
	if err != nil {
		return nil, 0, 0, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("wal: open append: %w", err)
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, 0, 0, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if validLen == 0 {
		// Even the header was torn; rewrite it.
		if _, err := f.WriteString(magic); err != nil {
			f.Close()
			return nil, 0, 0, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, 0, 0, err
		}
	} else if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, 0, 0, err
	}
	return &Log{f: f, w: bufio.NewWriterSize(f, 1<<20), sync: opts.Sync}, lastVID, n, nil
}

// encodeBody appends r's body (the checksummed payload, without the
// frame header) to dst.
func encodeBody(dst []byte, r Record) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, r.CommitVID)
	dst = binary.LittleEndian.AppendUint64(dst, r.ReadVID)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.Proc)))
	dst = append(dst, r.Proc...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Args)))
	dst = append(dst, r.Args...)
	return dst
}

// frameSize returns the on-disk size of r's frame (header + body).
func frameSize(r Record) int {
	return 8 + 8 + 8 + 2 + len(r.Proc) + 4 + len(r.Args)
}

// appendFrame appends [len u32][crc u32][body] to dst.
func appendFrame(dst, body []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(body, crcTable))
	return append(dst, body...)
}

// Append buffers one record. It becomes durable at the next Commit.
func (l *Log) Append(r Record) error {
	l.buf = encodeBody(l.buf[:0], r)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(l.buf)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(l.buf, crcTable))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := l.w.Write(l.buf)
	return err
}

// Commit flushes the buffered batch and, if configured, fsyncs. This is
// the group-commit point: after Commit returns, every record appended
// since the previous Commit is durable.
func (l *Log) Commit() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if l.sync {
		return l.f.Sync()
	}
	return nil
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	if err := l.Commit(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Replay reads a log file and invokes fn for every intact record in
// append order. A torn or corrupt tail ends replay without error (the
// corresponding transactions never acknowledged); corruption in the
// middle of the file returns ErrCorrupt.
func Replay(path string, fn func(Record) error) error {
	return replayFile(path, true, fn)
}

// replayFile replays one log file. allowTorn tolerates a torn tail (a
// crash mid-append) as a clean end; with allowTorn false any torn tail
// is ErrCorrupt — the right policy for non-final WAL segments, which
// were sealed by a rotation and must be fully intact.
func replayFile(path string, allowTorn bool, fn func(Record) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: open: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(r, hdr); err != nil {
		// Shorter than the header: a crash before the header reached
		// disk. No record was ever acknowledged from this file.
		if allowTorn && (err == io.EOF || err == io.ErrUnexpectedEOF) {
			return nil
		}
		return fmt.Errorf("wal: bad header: %w", ErrCorrupt)
	}
	if string(hdr) != magic {
		return fmt.Errorf("wal: bad header: %w", ErrCorrupt)
	}
	var lenCRC [8]byte
	for {
		if _, err := io.ReadFull(r, lenCRC[:]); err != nil {
			if err == io.EOF {
				return nil // clean end
			}
			if allowTorn {
				return nil // torn frame header at tail
			}
			return ErrCorrupt
		}
		n := binary.LittleEndian.Uint32(lenCRC[0:])
		want := binary.LittleEndian.Uint32(lenCRC[4:])
		if n > 64<<20 {
			return ErrCorrupt
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			if allowTorn {
				return nil // torn body at tail
			}
			return ErrCorrupt
		}
		if crc32.Checksum(body, crcTable) != want {
			// Distinguish torn tail (nothing after) from mid-file rot.
			if _, err := r.Peek(1); err == io.EOF && allowTorn {
				return nil
			}
			return ErrCorrupt
		}
		rec, err := decode(body)
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// scanValidPrefix walks a log file and returns the byte length of its
// intact record prefix, the last intact CommitVID, and the intact record
// count. Torn tails (including a torn file header) shorten the prefix;
// corruption that is provably mid-file returns ErrCorrupt.
func scanValidPrefix(path string) (validLen int64, lastVID uint64, n int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("wal: open: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, 0, 0, nil // torn header: empty prefix
	}
	if string(hdr) != magic {
		return 0, 0, 0, fmt.Errorf("wal: bad header: %w", ErrCorrupt)
	}
	validLen = int64(len(magic))
	var lenCRC [8]byte
	for {
		if _, err := io.ReadFull(r, lenCRC[:]); err != nil {
			return validLen, lastVID, n, nil
		}
		sz := binary.LittleEndian.Uint32(lenCRC[0:])
		want := binary.LittleEndian.Uint32(lenCRC[4:])
		if sz > 64<<20 {
			return 0, 0, 0, ErrCorrupt
		}
		body := make([]byte, sz)
		if _, err := io.ReadFull(r, body); err != nil {
			return validLen, lastVID, n, nil
		}
		if crc32.Checksum(body, crcTable) != want {
			if _, err := r.Peek(1); err == io.EOF {
				return validLen, lastVID, n, nil
			}
			return 0, 0, 0, ErrCorrupt
		}
		rec, err := decode(body)
		if err != nil {
			return 0, 0, 0, err
		}
		lastVID = rec.CommitVID
		n++
		validLen += int64(8 + len(body))
	}
}

func decode(b []byte) (Record, error) {
	var r Record
	if len(b) < 22 {
		return r, ErrCorrupt
	}
	r.CommitVID = binary.LittleEndian.Uint64(b[0:])
	r.ReadVID = binary.LittleEndian.Uint64(b[8:])
	pn := int(binary.LittleEndian.Uint16(b[16:]))
	if len(b) < 18+pn+4 {
		return r, ErrCorrupt
	}
	r.Proc = string(b[18 : 18+pn])
	an := int(binary.LittleEndian.Uint32(b[18+pn:]))
	if len(b) != 18+pn+4+an {
		return r, ErrCorrupt
	}
	r.Args = append([]byte(nil), b[18+pn+4:]...)
	return r, nil
}

// syncDir fsyncs a directory so that entry operations (create, rename,
// unlink) inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
