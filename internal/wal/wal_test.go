package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func tmpLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "cmd.log")
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := tmpLog(t)
	l, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{CommitVID: 1, ReadVID: 0, Proc: "new_order", Args: []byte("a")},
		{CommitVID: 2, ReadVID: 1, Proc: "payment", Args: nil},
		{CommitVID: 3, ReadVID: 1, Proc: "delivery", Args: []byte{0, 1, 2, 255}},
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got []Record
	if err := Replay(path, func(r Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].CommitVID != want[i].CommitVID || got[i].ReadVID != want[i].ReadVID ||
			got[i].Proc != want[i].Proc || string(got[i].Args) != string(want[i].Args) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestGroupCommitVisibility(t *testing.T) {
	path := tmpLog(t)
	l, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(Record{CommitVID: 1, Proc: "p"}); err != nil {
		t.Fatal(err)
	}
	// Before Commit, the record may be buffered; after Commit it must be
	// in the file.
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := Replay(path, func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d records after Commit, want 1", n)
	}
}

func TestReplayTornTail(t *testing.T) {
	path := tmpLog(t)
	l, _ := Create(path, Options{})
	for i := uint64(1); i <= 5; i++ {
		l.Append(Record{CommitVID: i, Proc: "p", Args: []byte("0123456789")})
	}
	l.Close()
	// Truncate mid-record to simulate a crash during the last write.
	fi, _ := os.Stat(path)
	if err := os.Truncate(path, fi.Size()-7); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := Replay(path, func(Record) error { n++; return nil }); err != nil {
		t.Fatalf("torn tail must not error: %v", err)
	}
	if n != 4 {
		t.Fatalf("replayed %d records, want 4 (intact prefix)", n)
	}
}

func TestReplayMidFileCorruption(t *testing.T) {
	path := tmpLog(t)
	l, _ := Create(path, Options{})
	for i := uint64(1); i <= 5; i++ {
		l.Append(Record{CommitVID: i, Proc: "p", Args: []byte("0123456789")})
	}
	l.Close()
	// Flip a byte inside the second record's body.
	b, _ := os.ReadFile(path)
	b[len(magic)+8+10] ^= 0xFF
	os.WriteFile(path, b, 0o644)
	err := Replay(path, func(Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-file corruption: err = %v, want ErrCorrupt", err)
	}
}

func TestReplayEmptyLog(t *testing.T) {
	path := tmpLog(t)
	l, _ := Create(path, Options{})
	l.Close()
	if err := Replay(path, func(Record) error { t.Fatal("unexpected record"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestReplayBadHeader(t *testing.T) {
	path := tmpLog(t)
	os.WriteFile(path, []byte("NOTAWAL!"), 0o644)
	if err := Replay(path, func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad header: err = %v", err)
	}
}

func TestReplayCallbackError(t *testing.T) {
	path := tmpLog(t)
	l, _ := Create(path, Options{})
	l.Append(Record{CommitVID: 1, Proc: "p"})
	l.Close()
	sentinel := errors.New("stop")
	if err := Replay(path, func(Record) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("callback error not propagated: %v", err)
	}
}

// Property: arbitrary records survive the encode/replay round trip.
func TestRoundTripProperty(t *testing.T) {
	f := func(recs []Record) bool {
		path := filepath.Join(t.TempDir(), "q.log")
		l, err := Create(path, Options{})
		if err != nil {
			return false
		}
		for i := range recs {
			if len(recs[i].Proc) > 1000 {
				recs[i].Proc = recs[i].Proc[:1000]
			}
			if err := l.Append(recs[i]); err != nil {
				return false
			}
		}
		if err := l.Close(); err != nil {
			return false
		}
		var got []Record
		if err := Replay(path, func(r Record) error { got = append(got, r); return nil }); err != nil {
			return false
		}
		if len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i].CommitVID != recs[i].CommitVID || got[i].Proc != recs[i].Proc ||
				string(got[i].Args) != string(recs[i].Args) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSyncOption(t *testing.T) {
	path := tmpLog(t)
	l, err := Create(path, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{CommitVID: 1, Proc: "p"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
