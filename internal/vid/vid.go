// Package vid manages snapshot version identifiers (VIDs) for BatchDB.
//
// Every committed transaction is assigned a unique, monotonically
// increasing VID. Readers take snapshots at the current "watermark": the
// highest VID such that every transaction with a smaller-or-equal VID has
// finished installing its versions. Because VIDs are assigned before
// version installation completes, commits may finish out of order; the
// watermark is only advanced once all earlier commits have published.
// This guarantees that a snapshot never observes half of a transaction,
// which is the property the OLAP replica relies on when it asks the
// primary for "the latest committed snapshot version" (paper §4, §5).
package vid

import (
	"sync"
	"sync/atomic"
)

// Infinity marks a version that is still visible to all future snapshots
// (the VIDto of the newest version in a chain, paper Fig. 2).
const Infinity = ^uint64(0)

// Allocator hands out commit VIDs and tracks the publication watermark.
//
// The zero value is not usable; call NewAllocator. VID 0 is reserved for
// "initial load": data present before the first transaction commits.
type Allocator struct {
	next atomic.Uint64 // last VID handed out

	mu        sync.Mutex
	watermark atomic.Uint64 // highest fully published prefix
	published map[uint64]struct{}
	waiters   []chan struct{}
}

// NewAllocator returns an allocator whose watermark starts at 0, meaning
// only initially loaded data (VID 0) is visible.
func NewAllocator() *Allocator {
	return &Allocator{published: make(map[uint64]struct{})}
}

// Allocate reserves the next commit VID. The caller must eventually call
// Publish with the returned VID once all versions of the committing
// transaction are installed, otherwise the watermark stalls.
func (a *Allocator) Allocate() uint64 {
	return a.next.Add(1)
}

// Publish marks a previously Allocated VID as fully installed and
// advances the watermark over any contiguous published prefix.
func (a *Allocator) Publish(v uint64) {
	a.mu.Lock()
	a.published[v] = struct{}{}
	w := a.watermark.Load()
	advanced := false
	for {
		if _, ok := a.published[w+1]; !ok {
			break
		}
		delete(a.published, w+1)
		w++
		advanced = true
	}
	if advanced {
		a.watermark.Store(w)
		for _, ch := range a.waiters {
			close(ch)
		}
		a.waiters = a.waiters[:0]
	}
	a.mu.Unlock()
}

// StartAt repositions the allocator at base: the watermark becomes base
// and the next Allocate returns base+1. It exists for checkpoint
// restore, which rebuilds the store's state as-of the checkpoint VID and
// must resume the dense VID sequence there. Must not race any
// transaction — call before the engine starts.
func (a *Allocator) StartAt(base uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.next.Store(base)
	a.watermark.Store(base)
	for v := range a.published {
		delete(a.published, v)
	}
}

// Watermark returns the highest VID v such that all transactions with
// VIDs <= v are fully published. Reading at this VID yields a consistent
// snapshot.
func (a *Allocator) Watermark() uint64 {
	return a.watermark.Load()
}

// Last returns the last VID handed out (published or not). Useful for
// tests and for draining: once Watermark() == Last() every allocated
// commit has published.
func (a *Allocator) Last() uint64 {
	return a.next.Load()
}

// WaitFor blocks until the watermark reaches at least v. It is used by
// the OLAP dispatcher when it has been promised updates up to a VID that
// is still being installed.
func (a *Allocator) WaitFor(v uint64) {
	for {
		if a.watermark.Load() >= v {
			return
		}
		a.mu.Lock()
		if a.watermark.Load() >= v {
			a.mu.Unlock()
			return
		}
		ch := make(chan struct{})
		a.waiters = append(a.waiters, ch)
		a.mu.Unlock()
		<-ch
	}
}

// Visible reports whether a version with lifetime [from, to) is visible
// at snapshot snap, following the paper's Fig. 2 semantics: a version is
// visible if it was created at or before the snapshot and superseded
// strictly after it.
func Visible(from, to, snap uint64) bool {
	return from <= snap && snap < to
}
