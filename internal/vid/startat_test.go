package vid

import "testing"

func TestStartAt(t *testing.T) {
	a := NewAllocator()
	for i := 0; i < 5; i++ {
		a.Publish(a.Allocate())
	}
	if a.Watermark() != 5 {
		t.Fatalf("watermark = %d", a.Watermark())
	}
	// Leave a hole so the published map is non-empty...
	a.Allocate()          // 6, never published
	a.Publish(a.Allocate() /* 7 */)
	// ...then reposition, as checkpoint restore does.
	a.StartAt(42)
	if a.Watermark() != 42 || a.Last() != 42 {
		t.Fatalf("after StartAt: watermark=%d last=%d", a.Watermark(), a.Last())
	}
	// The dense sequence resumes at base+1 and the stale published entry
	// (7) must not let the watermark jump a hole.
	v := a.Allocate()
	if v != 43 {
		t.Fatalf("first VID after StartAt = %d", v)
	}
	a.Publish(v)
	if a.Watermark() != 43 {
		t.Fatalf("watermark after publish = %d", a.Watermark())
	}
	w := a.Allocate() // 44, unpublished
	_ = w
	x := a.Allocate() // 45
	a.Publish(x)
	if a.Watermark() != 43 {
		t.Fatalf("watermark advanced over the hole: %d", a.Watermark())
	}
	a.Publish(44)
	if a.Watermark() != 45 {
		t.Fatalf("watermark = %d, want 45", a.Watermark())
	}
}
