package vid

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestAllocateMonotonic(t *testing.T) {
	a := NewAllocator()
	prev := uint64(0)
	for i := 0; i < 1000; i++ {
		v := a.Allocate()
		if v <= prev {
			t.Fatalf("Allocate not monotonic: got %d after %d", v, prev)
		}
		prev = v
	}
}

func TestWatermarkInOrderPublish(t *testing.T) {
	a := NewAllocator()
	for i := 1; i <= 10; i++ {
		v := a.Allocate()
		a.Publish(v)
		if got := a.Watermark(); got != uint64(i) {
			t.Fatalf("watermark = %d, want %d", got, i)
		}
	}
}

func TestWatermarkOutOfOrderPublish(t *testing.T) {
	a := NewAllocator()
	v1, v2, v3 := a.Allocate(), a.Allocate(), a.Allocate()
	a.Publish(v3)
	if a.Watermark() != 0 {
		t.Fatalf("watermark advanced past unpublished VIDs: %d", a.Watermark())
	}
	a.Publish(v1)
	if a.Watermark() != v1 {
		t.Fatalf("watermark = %d, want %d", a.Watermark(), v1)
	}
	a.Publish(v2)
	if a.Watermark() != v3 {
		t.Fatalf("watermark = %d, want %d", a.Watermark(), v3)
	}
}

func TestWaitFor(t *testing.T) {
	a := NewAllocator()
	v := a.Allocate()
	done := make(chan struct{})
	go func() {
		a.WaitFor(v)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("WaitFor returned before Publish")
	default:
	}
	a.Publish(v)
	<-done // must not hang
}

func TestWaitForAlreadyPublished(t *testing.T) {
	a := NewAllocator()
	v := a.Allocate()
	a.Publish(v)
	a.WaitFor(v) // must return immediately
}

func TestConcurrentPublish(t *testing.T) {
	a := NewAllocator()
	const n = 500
	vids := make([]uint64, n)
	for i := range vids {
		vids[i] = a.Allocate()
	}
	rand.New(rand.NewSource(42)).Shuffle(n, func(i, j int) { vids[i], vids[j] = vids[j], vids[i] })
	var wg sync.WaitGroup
	for _, v := range vids {
		wg.Add(1)
		go func(v uint64) {
			defer wg.Done()
			a.Publish(v)
		}(v)
	}
	wg.Wait()
	if a.Watermark() != uint64(n) {
		t.Fatalf("watermark = %d, want %d", a.Watermark(), n)
	}
	if a.Last() != uint64(n) {
		t.Fatalf("Last = %d, want %d", a.Last(), n)
	}
}

// Property: the watermark never exceeds the number of published VIDs and
// equals the length of the contiguous published prefix.
func TestWatermarkPrefixProperty(t *testing.T) {
	f := func(perm []uint8) bool {
		n := len(perm)
		if n == 0 {
			return true
		}
		a := NewAllocator()
		vids := make([]uint64, n)
		for i := range vids {
			vids[i] = a.Allocate()
		}
		// Derive a publish order from perm (stable pseudo-shuffle).
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		for i := n - 1; i > 0; i-- {
			j := int(perm[i%len(perm)]) % (i + 1)
			order[i], order[j] = order[j], order[i]
		}
		published := make(map[uint64]bool)
		for _, idx := range order {
			a.Publish(vids[idx])
			published[vids[idx]] = true
			// Compute expected contiguous prefix.
			want := uint64(0)
			for published[want+1] {
				want++
			}
			if a.Watermark() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVisible(t *testing.T) {
	cases := []struct {
		from, to, snap uint64
		want           bool
	}{
		{1, Infinity, 0, false}, // created after snapshot
		{1, Infinity, 1, true},
		{1, 5, 4, true},
		{1, 5, 5, false}, // superseded at snapshot
		{0, Infinity, 0, true},
		{3, 3, 3, false}, // empty lifetime
	}
	for _, c := range cases {
		if got := Visible(c.from, c.to, c.snap); got != c.want {
			t.Errorf("Visible(%d,%d,%d) = %v, want %v", c.from, c.to, c.snap, got, c.want)
		}
	}
}
