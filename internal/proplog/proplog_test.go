package proplog

import (
	"bytes"
	"testing"
	"testing/quick"

	"batchdb/internal/storage"
)

func TestBufferAccumulatesPerTable(t *testing.T) {
	b := NewBuffer(3)
	b.Add(1, Entry{VID: 1, Kind: Insert, RowID: 10, Size: 2, Data: []byte{1, 2}})
	b.Add(2, Entry{VID: 1, Kind: Delete, RowID: 20})
	b.Add(1, Entry{VID: 2, Kind: Update, RowID: 10, Offset: 4, Size: 1, Data: []byte{9}})
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	batch := b.Take()
	if batch.Worker != 3 || len(batch.Tables) != 2 {
		t.Fatalf("batch = %+v", batch)
	}
	if batch.NumEntries() != 3 {
		t.Fatalf("NumEntries = %d", batch.NumEntries())
	}
	if len(batch.Tables[0].Entries) != 2 || batch.Tables[0].Table != 1 {
		t.Fatalf("table grouping wrong: %+v", batch.Tables)
	}
	// Buffer is reset.
	if b.Len() != 0 {
		t.Fatalf("buffer not reset: %d", b.Len())
	}
	empty := b.Take()
	if !empty.Empty() {
		t.Fatal("fresh buffer not empty")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	b := NewBuffer(7)
	b.Add(4, Entry{VID: 100, Kind: Insert, RowID: 1, Size: 3, Data: []byte{1, 2, 3}})
	b.Add(4, Entry{VID: 101, Kind: Update, RowID: 1, Offset: 8, Size: 2, Data: []byte{5, 6}})
	b.Add(4, Entry{VID: 102, Kind: Delete, RowID: 1})
	b.Add(9, Entry{VID: 100, Kind: Insert, RowID: 2, Size: 1, Data: []byte{7}})
	batch := b.Take()

	enc := AppendEncode(nil, &batch)
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Worker != 7 || len(got.Tables) != 2 {
		t.Fatalf("decoded = %+v", got)
	}
	for ti := range batch.Tables {
		if got.Tables[ti].Table != batch.Tables[ti].Table {
			t.Fatalf("table %d id mismatch", ti)
		}
		for i := range batch.Tables[ti].Entries {
			w, g := batch.Tables[ti].Entries[i], got.Tables[ti].Entries[i]
			if w.VID != g.VID || w.Kind != g.Kind || w.RowID != g.RowID ||
				w.Offset != g.Offset || w.Size != g.Size || !bytes.Equal(w.Data, g.Data) {
				t.Fatalf("entry %d/%d: %+v != %+v", ti, i, g, w)
			}
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	b := NewBuffer(0)
	b.Add(1, Entry{VID: 1, Kind: Insert, RowID: 1, Size: 8, Data: make([]byte, 8)})
	batch := b.Take()
	enc := AppendEncode(nil, &batch)
	for cut := 1; cut < len(enc); cut++ {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("Decode accepted truncation at %d/%d bytes", cut, len(enc))
		}
	}
}

// Property: arbitrary batches survive the wire round trip.
func TestRoundTripProperty(t *testing.T) {
	f := func(entries []Entry, tables []uint8, worker uint16) bool {
		b := NewBuffer(int(worker))
		for i, e := range entries {
			e.Size = uint32(len(e.Data))
			if len(tables) > 0 {
				b.Add(storage.TableID(2+uint16(tables[i%len(tables)])), e)
			} else {
				b.Add(1, e)
			}
		}
		batch := b.Take()
		want := batch.NumEntries()
		enc := AppendEncode(nil, &batch)
		got, err := Decode(enc)
		if err != nil {
			return false
		}
		if got.NumEntries() != want || got.Worker != int(worker) {
			return false
		}
		for ti := range batch.Tables {
			for i := range batch.Tables[ti].Entries {
				w, g := batch.Tables[ti].Entries[i], got.Tables[ti].Entries[i]
				if w.VID != g.VID || w.Kind != g.Kind || w.RowID != g.RowID ||
					w.Offset != g.Offset || !bytes.Equal(w.Data, g.Data) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if Insert.String() != "I" || Update.String() != "U" || Delete.String() != "D" {
		t.Fatal("Kind.String wrong")
	}
}
