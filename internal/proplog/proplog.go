// Package proplog defines BatchDB's physical update-propagation log
// (paper §4 "Update propagation", Fig. 3).
//
// Unlike the durable command log (internal/wal), which records logical
// stored-procedure calls, the propagation log carries *physical* updates
// to individual records so the OLAP replica can apply them without
// re-executing transactions. To avoid synchronization between OLTP
// worker threads, each worker accumulates its own Buffer; updates from
// one worker are ordered by snapshot VID (a worker's commits are
// sequential), while updates of one transaction may interleave with
// other workers' transactions — exactly the situation of Fig. 3/4, which
// the OLAP replica's step-1 merge resolves.
package proplog

import (
	"encoding/binary"
	"errors"
	"fmt"

	"batchdb/internal/storage"
)

// Kind is the update type of paper Fig. 3.
type Kind uint8

// Update kinds.
const (
	Insert Kind = iota
	Update
	Delete
)

func (k Kind) String() string {
	switch k {
	case Insert:
		return "I"
	case Update:
		return "U"
	case Delete:
		return "D"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Entry is one propagated update (one row of Fig. 3). A transaction that
// changes several fields of a tuple produces one Entry per contiguous
// field when field-specific propagation is enabled, or a single
// whole-tuple Entry otherwise.
type Entry struct {
	// VID is the commit VID of the producing transaction.
	VID uint64
	// Kind says whether this inserts, patches, or deletes a tuple.
	Kind Kind
	// RowID uniquely identifies the target tuple at the OLAP replica
	// (the hidden primary-key surrogate, paper §5).
	RowID uint64
	// Offset and Size delimit the patched byte range for updates; for
	// inserts Offset is 0 and Size the full tuple width; for deletes
	// both are 0.
	Offset uint32
	Size   uint32
	// Data holds Size bytes: the new field value or the inserted tuple.
	Data []byte
}

// TableBatch groups a worker's entries for one table.
type TableBatch struct {
	Table   storage.TableID
	Entries []Entry
}

// Batch is one worker's push: all updates it extracted since the last
// push, grouped by table, VID-ordered within the worker.
type Batch struct {
	Worker int
	Tables []TableBatch
}

// Empty reports whether the batch carries no entries.
func (b *Batch) Empty() bool {
	for i := range b.Tables {
		if len(b.Tables[i].Entries) > 0 {
			return false
		}
	}
	return true
}

// NumEntries counts all entries in the batch.
func (b *Batch) NumEntries() int {
	n := 0
	for i := range b.Tables {
		n += len(b.Tables[i].Entries)
	}
	return n
}

// Buffer accumulates one worker's updates between pushes. It is owned by
// a single OLTP worker and requires no synchronization (paper §4: "each
// thread prepares its own set of updates").
type Buffer struct {
	worker  int
	byTable map[storage.TableID]int
	tables  []TableBatch
	entries int
	// lastTable/lastIdx cache the previous Add's table: a transaction's
	// writes cluster by table, making this the common case.
	lastTable storage.TableID
	lastIdx   int
}

// NewBuffer returns an empty buffer for the given worker.
func NewBuffer(worker int) *Buffer {
	return &Buffer{worker: worker, byTable: make(map[storage.TableID]int)}
}

// Add appends an entry for a table.
func (b *Buffer) Add(table storage.TableID, e Entry) {
	var i int
	if b.entries > 0 && table == b.lastTable {
		i = b.lastIdx
	} else {
		var ok bool
		i, ok = b.byTable[table]
		if !ok {
			i = len(b.tables)
			b.byTable[table] = i
			b.tables = append(b.tables, TableBatch{Table: table})
		}
		b.lastTable, b.lastIdx = table, i
	}
	b.tables[i].Entries = append(b.tables[i].Entries, e)
	b.entries++
}

// Len returns the number of buffered entries.
func (b *Buffer) Len() int { return b.entries }

// Take returns the buffered batch and resets the buffer. The returned
// batch owns its storage; the buffer starts fresh.
func (b *Buffer) Take() Batch {
	out := Batch{Worker: b.worker, Tables: b.tables}
	b.tables = nil
	b.byTable = make(map[storage.TableID]int, len(b.byTable))
	b.entries = 0
	b.lastTable, b.lastIdx = 0, 0
	return out
}

// --- wire encoding ----------------------------------------------------

// ErrTruncated reports a batch that ends mid-record.
var ErrTruncated = errors.New("proplog: truncated batch")

// AppendEncode serializes the batch onto dst and returns the result.
// The format is length-delimited and position-independent so batches can
// be shipped over the network transport as single messages.
func AppendEncode(dst []byte, b *Batch) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(b.Worker))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b.Tables)))
	for i := range b.Tables {
		tb := &b.Tables[i]
		dst = binary.LittleEndian.AppendUint16(dst, uint16(tb.Table))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(tb.Entries)))
		for j := range tb.Entries {
			e := &tb.Entries[j]
			dst = binary.LittleEndian.AppendUint64(dst, e.VID)
			dst = append(dst, byte(e.Kind))
			dst = binary.LittleEndian.AppendUint64(dst, e.RowID)
			dst = binary.LittleEndian.AppendUint32(dst, e.Offset)
			dst = binary.LittleEndian.AppendUint32(dst, e.Size)
			dst = append(dst, e.Data...)
		}
	}
	return dst
}

// Decode parses a batch produced by AppendEncode. Entry Data slices
// alias buf; callers that retain entries beyond buf's lifetime must
// copy.
func Decode(buf []byte) (Batch, error) {
	var b Batch
	if len(buf) < 8 {
		return b, ErrTruncated
	}
	b.Worker = int(binary.LittleEndian.Uint32(buf))
	nt := int(binary.LittleEndian.Uint32(buf[4:]))
	pos := 8
	b.Tables = make([]TableBatch, 0, nt)
	for t := 0; t < nt; t++ {
		if len(buf)-pos < 6 {
			return b, ErrTruncated
		}
		tb := TableBatch{Table: storage.TableID(binary.LittleEndian.Uint16(buf[pos:]))}
		ne := int(binary.LittleEndian.Uint32(buf[pos+2:]))
		pos += 6
		tb.Entries = make([]Entry, 0, ne)
		for i := 0; i < ne; i++ {
			if len(buf)-pos < 25 {
				return b, ErrTruncated
			}
			var e Entry
			e.VID = binary.LittleEndian.Uint64(buf[pos:])
			e.Kind = Kind(buf[pos+8])
			e.RowID = binary.LittleEndian.Uint64(buf[pos+9:])
			e.Offset = binary.LittleEndian.Uint32(buf[pos+17:])
			e.Size = binary.LittleEndian.Uint32(buf[pos+21:])
			pos += 25
			if e.Size > 0 {
				if len(buf)-pos < int(e.Size) {
					return b, ErrTruncated
				}
				e.Data = buf[pos : pos+int(e.Size) : pos+int(e.Size)]
				pos += int(e.Size)
			}
			tb.Entries = append(tb.Entries, e)
		}
		b.Tables = append(b.Tables, tb)
	}
	return b, nil
}
