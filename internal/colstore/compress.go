package colstore

import (
	"encoding/binary"
	"math"
	"math/bits"

	"batchdb/internal/encoding"
	"batchdb/internal/storage"
)

// Per-block encoded slabs for the column layout — the colstore
// counterpart of olap's zone-map-attached vectors (olap/compress.go).
//
// Each numeric column's slab is shadowed, block by block, with an
// encoded vector over the column's order-preserving keys (dictionary /
// frame-of-reference / RLE, chosen by internal/encoding's stats pass).
// The slab remains the source of truth: vectors only serve FilterBlocks,
// which turns an interval-plus-IN-set predicate into an exact selection
// bitmap without touching the slab. colstore has no lazy synopsis
// activation, so encoding covers every numeric column eagerly.
//
// Maintenance follows the same exclusive-phase rule as the rest of the
// package: inserts and overlapping patches mark a block stale, deletes
// do not (the slab bytes — and hence the vector — are unchanged, and
// dead slots' verdicts are don't-cares skipped at materialization),
// and ReencodeDirty rebuilds stale blocks in the quiesced apply
// window.
type colEnc struct {
	block int
	shift uint
	// cols lists the encoded (numeric) column ordinals; colPos maps a
	// schema ordinal to its index in cols, -1 when not encoded.
	cols   []int
	colPos []int
	// vecs[b*len(cols)+ci] is block b's vector for cols[ci]; nil when
	// the block-column did not encode profitably.
	vecs     []*encoding.Vector
	stale    []bool
	anyStale bool

	vals []int64
	sc   encoding.Scratch
}

// EnableCompression attaches per-block encoded vectors covering every
// numeric column, with blockTuples slots per block (rounded down to a
// power of two, minimum 64 so selection bitmaps stay word-aligned).
// Must run in a quiesced window; all blocks start stale and are built
// by the next ReencodeDirty.
func (p *Partition) EnableCompression(blockTuples int) {
	cols := p.schema.NumericColumns()
	if blockTuples < 64 || len(cols) == 0 {
		p.enc = nil
		return
	}
	shift := uint(bits.Len(uint(blockTuples))) - 1
	e := &colEnc{block: 1 << shift, shift: shift, cols: cols,
		colPos: make([]int, len(p.schema.Columns))}
	for i := range e.colPos {
		e.colPos[i] = -1
	}
	for ci, c := range cols {
		e.colPos[c] = ci
	}
	p.enc = e
	e.grow(len(p.rowIDs))
}

// Compressed reports whether the partition carries encoded vectors.
func (p *Partition) Compressed() bool { return p.enc != nil }

// grow extends the per-block arrays to cover nslots slots; new blocks
// start stale.
func (e *colEnc) grow(nslots int) {
	need := (nslots + e.block - 1) >> e.shift
	for len(e.stale) < need {
		e.stale = append(e.stale, true)
		e.anyStale = true
		for range e.cols {
			e.vecs = append(e.vecs, nil)
		}
	}
}

func (e *colEnc) markStale(slot, nslots int) {
	e.grow(nslots)
	b := slot >> e.shift
	e.stale[b] = true
	e.anyStale = true
}

// markStaleIfOverlap flags the slot's block only when the row-format
// patch range [lo, hi) overlaps an encoded column — patches confined
// to string columns never invalidate vectors.
func (p *Partition) markStaleIfOverlap(slot, lo, hi int) {
	e := p.enc
	for _, c := range e.cols {
		if p.starts[c]+p.widths[c] > lo && p.starts[c] < hi {
			e.markStale(slot, len(p.rowIDs))
			return
		}
	}
}

// ordKey decodes slot i of encoded column ci into the order-preserving
// key space (mirrors storage.Schema.OrdKey over slab bytes).
func (p *Partition) ordKey(ci, i int) int64 {
	col := p.enc.cols[ci]
	w := p.widths[col]
	field := p.cols[col][i*w:]
	switch p.schema.Columns[col].Type {
	case storage.Int32:
		return int64(int32(binary.LittleEndian.Uint32(field)))
	case storage.Float64:
		return storage.OrdKeyFloat64(math.Float64frombits(binary.LittleEndian.Uint64(field)))
	default: // Int64, Time
		return int64(binary.LittleEndian.Uint64(field))
	}
}

// blockSlots clamps block b's slot range to the allocated slots.
func (p *Partition) blockSlots(b int) (lo, hi int) {
	lo = b << p.enc.shift
	hi = min(lo+p.enc.block, len(p.rowIDs))
	return lo, hi
}

// ReencodeDirty rebuilds the encoded vectors of every stale block.
// The column replica's apply loop calls it per partition inside the
// quiesced window (after the round's entries are in), so scans never
// see a stale vector.
func (p *Partition) ReencodeDirty() {
	e := p.enc
	if e == nil || !e.anyStale {
		return
	}
	for b, s := range e.stale {
		if !s {
			continue
		}
		p.encodeBlock(b)
		e.stale[b] = false
	}
	e.anyStale = false
}

// encodeBlock rebuilds all of block b's vectors from the slabs. Dead
// slots are encoded as the block's live minimum — their filter
// verdicts are don't-cares — so tombstones cost no encoding width.
func (p *Partition) encodeBlock(b int) {
	e := p.enc
	lo, hi := p.blockSlots(b)
	base := b * len(e.cols)
	if cap(e.vals) < hi-lo {
		e.vals = make([]int64, hi-lo)
	}
	vals := e.vals[:hi-lo]
	for ci, col := range e.cols {
		live := 0
		minV := int64(math.MaxInt64)
		for i := lo; i < hi; i++ {
			if p.rowIDs[i] == 0 {
				continue
			}
			k := p.ordKey(ci, i)
			vals[i-lo] = k
			live++
			if k < minV {
				minV = k
			}
		}
		if live == 0 {
			e.vecs[base+ci] = nil
			continue
		}
		for i := lo; i < hi; i++ {
			if p.rowIDs[i] == 0 {
				vals[i-lo] = minV
			}
		}
		rawBits := 64
		if p.schema.Columns[col].Type == storage.Int32 {
			rawBits = 32
		}
		e.vecs[base+ci] = encoding.Encode(vals, rawBits, &e.sc)
	}
}

// FilterBlocks evaluates `keyLo <= col <= keyHi && (set == nil || col
// IN set)` over the slot range [lo, hi) directly on the encoded
// vectors, writing the exact selection bitmap into sel (bit i ↔ slot
// lo+i, dead slots don't-care; set sorted ascending). It returns false
// — leaving sel undefined — when the encoded path cannot serve the
// range exactly (compression disabled, misaligned range, stale block,
// non-encoded column or block), in which case the caller scans the
// slab tuple-at-a-time. sel must hold at least ceil((hi-lo)/64) words.
func (p *Partition) FilterBlocks(lo, hi, col int, keyLo, keyHi int64, set []int64, sel []uint64) bool {
	e := p.enc
	if e == nil || col < 0 || col >= len(e.colPos) || e.colPos[col] < 0 {
		return false
	}
	ci := e.colPos[col]
	if hi > len(p.rowIDs) {
		hi = len(p.rowIDs)
	}
	if lo < 0 || lo >= hi || lo&(e.block-1) != 0 {
		return false
	}
	if hi&(e.block-1) != 0 && hi != len(p.rowIDs) {
		return false
	}
	for b := lo >> e.shift; b<<e.shift < hi; b++ {
		if e.stale[b] {
			return false
		}
		if hasLive := e.vecs[b*len(e.cols)+ci] != nil; !hasLive {
			// nil vector means either an all-dead block (fine: zero it) or
			// an incompressible one (fallback). Disambiguate by scanning
			// rowIDs — cheap relative to the slab scan being avoided.
			blo, bhi := p.blockSlots(b)
			for i := blo; i < bhi; i++ {
				if p.rowIDs[i] != 0 {
					return false
				}
			}
		}
	}
	for b := lo >> e.shift; b<<e.shift < hi; b++ {
		blo, bhi := p.blockSlots(b)
		words := sel[(blo-lo)>>6 : (blo-lo)>>6+(bhi-blo+63)>>6]
		v := e.vecs[b*len(e.cols)+ci]
		if v == nil {
			for i := range words {
				words[i] = 0
			}
			continue
		}
		for i := range words {
			words[i] = ^uint64(0)
		}
		v.FilterAnd(words, keyLo, keyHi, set)
	}
	return true
}

// ScanSelected visits live tuples in [lo, hi) whose bit is set in sel
// (bit i ↔ slot lo+i; nil sel visits all), reassembling each into a
// reused row-format scratch buffer — the materialization step after
// FilterBlocks. The callback contract matches ScanRange, with the slot
// offset relative to lo prepended.
func (p *Partition) ScanSelected(lo, hi int, sel []uint64, fn func(off int, rowID uint64, tuple []byte) bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > len(p.rowIDs) {
		hi = len(p.rowIDs)
	}
	tup := p.schema.NewTuple()
	emit := func(i int) bool {
		rid := p.rowIDs[i]
		if rid == 0 {
			return true
		}
		for c := range p.cols {
			w := p.widths[c]
			copy(tup[p.starts[c]:], p.cols[c][i*w:(i+1)*w])
		}
		return fn(i-lo, rid, tup)
	}
	if sel == nil {
		for i := lo; i < hi; i++ {
			if !emit(i) {
				return
			}
		}
		return
	}
	for wi, m := range sel {
		for m != 0 {
			j := bits.TrailingZeros64(m)
			m &= m - 1
			i := lo + wi<<6 + j
			if i >= hi {
				return
			}
			if !emit(i) {
				return
			}
		}
	}
}

// CompressedBytes reports the raw and encoded footprint of the encoded
// columns (blocks that did not encode count raw on both sides), the
// compression-ratio input of the compress benchmark.
func (p *Partition) CompressedBytes() (raw, encoded int64) {
	e := p.enc
	if e == nil {
		return 0, 0
	}
	for ci, col := range e.cols {
		w := int64(p.widths[col])
		for b := range e.stale {
			lo, hi := p.blockSlots(b)
			if hi == lo {
				continue
			}
			rb := int64(hi-lo) * w
			raw += rb
			if v := e.vecs[b*len(e.cols)+ci]; v != nil && !e.stale[b] {
				encoded += int64(v.EncodedBytes())
			} else {
				encoded += rb
			}
		}
	}
	return raw, encoded
}
