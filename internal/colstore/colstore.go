// Package colstore provides a column-oriented partition with the same
// update-application interface as the OLAP replica's row partitions.
//
// The paper's OLAP replica uses uncompressed row storage, but §8.3
// evaluates the update-propagation mechanism against a column-oriented
// format too (Fig. 6): field-specific updates touch a single column and
// stay fast, while whole-tuple updates scatter writes across every
// column slab — more random DRAM accesses — and slow down by more than
// 2x. This package reproduces that storage layout so the Fig. 6
// benchmark can measure exactly that effect.
package colstore

import (
	"fmt"

	"batchdb/internal/storage"
)

// Partition stores tuples decomposed into per-column slabs. Slot i of
// column c lives at i*width(c) in slab c. Like olap.Partition it is
// unsynchronized: BatchDB's batch scheduling guarantees exclusive
// access phases.
//
// Contract: Partition intentionally mirrors olap.Partition's
// storage-op surface — Insert / UpdateField / PatchSlot / Locate /
// Delete / Get / Live / Slots / Scan / ScanRange — with identical
// error semantics (RowID 0 reserved as the tombstone sentinel,
// duplicate inserts rejected, patches to dead slots rejected). The
// shared conformance suite in internal/storetest runs against both
// implementations so the two layouts cannot drift; extend it when
// extending either surface. Per-block encoded vectors live in
// compress.go (the column layout's counterpart of olap's zone-map-
// attached vectors; colstore has no zone maps, so encoding covers all
// numeric columns eagerly).
type Partition struct {
	schema *storage.Schema
	// cols[c] is the slab for column c.
	cols [][]byte
	// widths[c] caches the byte width of column c.
	widths []int
	// starts[c] caches the row-format byte offset of column c, for
	// translating (Offset, Size) patches into column coordinates.
	starts []int

	rowIDs []uint64
	free   []int32
	index  map[uint64]int32
	live   int

	// enc holds the optional per-block encoded column vectors
	// (compress.go); nil when compression is disabled.
	enc *colEnc
}

// NewPartition creates an empty column-oriented partition.
func NewPartition(schema *storage.Schema, capacityHint int) *Partition {
	if capacityHint < 16 {
		capacityHint = 16
	}
	p := &Partition{
		schema: schema,
		cols:   make([][]byte, len(schema.Columns)),
		widths: make([]int, len(schema.Columns)),
		starts: make([]int, len(schema.Columns)),
		rowIDs: make([]uint64, 0, capacityHint),
		index:  make(map[uint64]int32, capacityHint),
	}
	for c := range schema.Columns {
		p.widths[c] = schema.ColSize(c)
		p.starts[c] = schema.Offset(c)
		p.cols[c] = make([]byte, 0, capacityHint*p.widths[c])
	}
	return p
}

// Insert decomposes a row-format tuple into the column slabs.
func (p *Partition) Insert(rowID uint64, tuple []byte) error {
	if rowID == 0 {
		// RowID 0 is the tombstone sentinel: a row stored under it would
		// be counted live and indexed yet invisible to every scan.
		return fmt.Errorf("colstore: insert of reserved RowID 0")
	}
	if _, dup := p.index[rowID]; dup {
		return fmt.Errorf("colstore: duplicate insert of RowID %d", rowID)
	}
	var slot int32
	if n := len(p.free); n > 0 {
		slot = p.free[n-1]
		p.free = p.free[:n-1]
		for c := range p.cols {
			w := p.widths[c]
			copy(p.cols[c][int(slot)*w:], tuple[p.starts[c]:p.starts[c]+w])
		}
		p.rowIDs[slot] = rowID
	} else {
		slot = int32(len(p.rowIDs))
		for c := range p.cols {
			w := p.widths[c]
			p.cols[c] = append(p.cols[c], tuple[p.starts[c]:p.starts[c]+w]...)
		}
		p.rowIDs = append(p.rowIDs, rowID)
	}
	p.index[rowID] = slot
	p.live++
	if p.enc != nil {
		p.enc.markStale(int(slot), len(p.rowIDs))
	}
	return nil
}

// Locate resolves a RowID to its slot through the hash index.
func (p *Partition) Locate(rowID uint64) (int32, bool) {
	slot, ok := p.index[rowID]
	return slot, ok
}

// UpdateField applies a row-format byte patch [offset, offset+len(data))
// to the decomposed storage. A patch confined to one column touches one
// slab (the fast case); a whole-tuple patch scatters into all of them.
func (p *Partition) UpdateField(rowID uint64, offset uint32, data []byte) error {
	slot, ok := p.index[rowID]
	if !ok {
		return fmt.Errorf("colstore: update of unknown RowID %d", rowID)
	}
	return p.PatchSlot(slot, offset, data)
}

// PatchSlot applies a row-format byte patch to an already-located
// slot. The slot must hold a live tuple: patching a tombstoned or
// free-listed slot would silently corrupt whatever tuple later
// recycles it, so it is rejected.
func (p *Partition) PatchSlot(slot int32, offset uint32, data []byte) error {
	if slot < 0 || int(slot) >= len(p.rowIDs) || p.rowIDs[slot] == 0 {
		return fmt.Errorf("colstore: patch of dead slot %d", slot)
	}
	end := int(offset) + len(data)
	if end > p.schema.TupleSize() {
		return fmt.Errorf("colstore: update beyond tuple bounds (offset %d, size %d)", offset, len(data))
	}
	if p.enc != nil {
		p.markStaleIfOverlap(int(slot), int(offset), end)
	}
	for c := range p.cols {
		cs, ce := p.starts[c], p.starts[c]+p.widths[c]
		if ce <= int(offset) || cs >= end {
			continue // column outside the patch
		}
		lo := max(cs, int(offset))
		hi := min(ce, end)
		copy(p.cols[c][int(slot)*p.widths[c]+(lo-cs):], data[lo-int(offset):hi-int(offset)])
	}
	return nil
}

// Delete tombstones the row and recycles its slot.
func (p *Partition) Delete(rowID uint64) error {
	slot, ok := p.index[rowID]
	if !ok {
		return fmt.Errorf("colstore: delete of unknown RowID %d", rowID)
	}
	delete(p.index, rowID)
	p.rowIDs[slot] = 0
	p.free = append(p.free, slot)
	p.live--
	return nil
}

// Live returns the number of live tuples.
func (p *Partition) Live() int { return p.live }

// Get reassembles the row-format tuple for rowID (allocates).
func (p *Partition) Get(rowID uint64) ([]byte, bool) {
	slot, ok := p.index[rowID]
	if !ok {
		return nil, false
	}
	tup := p.schema.NewTuple()
	for c := range p.cols {
		w := p.widths[c]
		copy(tup[p.starts[c]:], p.cols[c][int(slot)*w:(int(slot)+1)*w])
	}
	return tup, true
}

// Slots returns the number of allocated slots (live + tombstoned), the
// space a morsel dispatcher cuts into ranges.
func (p *Partition) Slots() int { return len(p.rowIDs) }

// Scan visits every live tuple, mirroring olap.Partition.Scan. The
// callback receives the RowID and the row-format tuple reassembled
// into a scratch buffer that is reused between callbacks — do not
// retain it. Returning false stops the scan.
func (p *Partition) Scan(fn func(rowID uint64, tuple []byte) bool) {
	p.ScanRange(0, len(p.rowIDs), fn)
}

// ScanRange visits every live tuple in the slot range [lo, hi), clamped
// to the allocated slots, mirroring olap.Partition.ScanRange so
// morsel-driven dispatch works over the column layout too. The tuple is
// reassembled in row format into a scratch buffer that is reused
// between callbacks — do not retain it. Returning false stops the scan.
func (p *Partition) ScanRange(lo, hi int, fn func(rowID uint64, tuple []byte) bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > len(p.rowIDs) {
		hi = len(p.rowIDs)
	}
	tup := p.schema.NewTuple()
	for i := lo; i < hi; i++ {
		rid := p.rowIDs[i]
		if rid == 0 {
			continue // tombstone
		}
		for c := range p.cols {
			w := p.widths[c]
			copy(tup[p.starts[c]:], p.cols[c][i*w:(i+1)*w])
		}
		if !fn(rid, tup) {
			return
		}
	}
}

// ScanColumn visits one column of every live tuple — the access pattern
// column stores exist for.
func (p *Partition) ScanColumn(col int, fn func(rowID uint64, field []byte) bool) {
	w := p.widths[col]
	slab := p.cols[col]
	for i, rid := range p.rowIDs {
		if rid == 0 {
			continue
		}
		if !fn(rid, slab[i*w:(i+1)*w]) {
			return
		}
	}
}
