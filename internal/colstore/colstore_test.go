package colstore

import (
	"bytes"
	"testing"
	"testing/quick"

	"batchdb/internal/storage"
)

func wideSchema() *storage.Schema {
	return storage.NewSchema(1, "wide", []storage.Column{
		{Name: "id", Type: storage.Int64},
		{Name: "a", Type: storage.Int32},
		{Name: "b", Type: storage.Float64},
		{Name: "name", Type: storage.String, Size: 12},
		{Name: "c", Type: storage.Int64},
	}, []int{0})
}

func sampleTuple(s *storage.Schema, id int64) []byte {
	tup := s.NewTuple()
	s.PutInt64(tup, 0, id)
	s.PutInt32(tup, 1, int32(id*2))
	s.PutFloat64(tup, 2, float64(id)*1.5)
	s.PutString(tup, 3, "row")
	s.PutInt64(tup, 4, id*100)
	return tup
}

func TestInsertGetRoundTrip(t *testing.T) {
	s := wideSchema()
	p := NewPartition(s, 8)
	for i := int64(1); i <= 20; i++ {
		if err := p.Insert(uint64(i), sampleTuple(s, i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(1); i <= 20; i++ {
		got, ok := p.Get(uint64(i))
		if !ok {
			t.Fatalf("row %d missing", i)
		}
		if !bytes.Equal(got, sampleTuple(s, i)) {
			t.Fatalf("row %d reassembly mismatch", i)
		}
	}
	if p.Live() != 20 {
		t.Fatalf("Live = %d", p.Live())
	}
}

func TestFieldUpdateSingleColumn(t *testing.T) {
	s := wideSchema()
	p := NewPartition(s, 8)
	p.Insert(1, sampleTuple(s, 1))
	// Patch column "b" only.
	patch := make([]byte, 8)
	want := sampleTuple(s, 1)
	s.PutFloat64(want, 2, 99.5)
	copy(patch, want[s.Offset(2):s.Offset(2)+8])
	if err := p.UpdateField(1, uint32(s.Offset(2)), patch); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Get(1)
	if !bytes.Equal(got, want) {
		t.Fatalf("after single-column patch:\n got %v\nwant %v", got, want)
	}
}

func TestWholeTupleUpdateScatters(t *testing.T) {
	s := wideSchema()
	p := NewPartition(s, 8)
	p.Insert(1, sampleTuple(s, 1))
	replacement := sampleTuple(s, 42)
	s.PutInt64(replacement, 0, 1) // keep the key stable
	if err := p.UpdateField(1, 0, replacement); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Get(1)
	if !bytes.Equal(got, replacement) {
		t.Fatalf("whole-tuple update mismatch:\n got %v\nwant %v", got, replacement)
	}
}

func TestCrossColumnPatch(t *testing.T) {
	// A patch spanning the boundary between columns "a" and "b".
	s := wideSchema()
	p := NewPartition(s, 8)
	orig := sampleTuple(s, 1)
	p.Insert(1, orig)
	want := append([]byte(nil), orig...)
	start := s.Offset(1) + 2 // mid-column a
	end := s.Offset(2) + 3   // into column b
	for i := start; i < end; i++ {
		want[i] = 0xAB
	}
	if err := p.UpdateField(1, uint32(start), want[start:end]); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Get(1)
	if !bytes.Equal(got, want) {
		t.Fatalf("cross-column patch mismatch:\n got %v\nwant %v", got, want)
	}
}

func TestDeleteAndSlotReuse(t *testing.T) {
	s := wideSchema()
	p := NewPartition(s, 8)
	p.Insert(1, sampleTuple(s, 1))
	p.Insert(2, sampleTuple(s, 2))
	if err := p.Delete(1); err != nil {
		t.Fatal(err)
	}
	if p.Live() != 1 {
		t.Fatalf("Live = %d", p.Live())
	}
	p.Insert(3, sampleTuple(s, 3))
	got, ok := p.Get(3)
	if !ok || !bytes.Equal(got, sampleTuple(s, 3)) {
		t.Fatal("slot reuse corrupted row 3")
	}
	if _, ok := p.Get(1); ok {
		t.Fatal("deleted row still present")
	}
}

func TestScanColumn(t *testing.T) {
	s := wideSchema()
	p := NewPartition(s, 8)
	for i := int64(1); i <= 10; i++ {
		p.Insert(uint64(i), sampleTuple(s, i))
	}
	p.Delete(5)
	sum := int64(0)
	p.ScanColumn(4, func(rowID uint64, field []byte) bool {
		sum += s.GetInt64(append(make([]byte, s.Offset(4)), field...), 4)
		return true
	})
	want := int64(0)
	for i := int64(1); i <= 10; i++ {
		if i != 5 {
			want += i * 100
		}
	}
	if sum != want {
		t.Fatalf("column scan sum = %d, want %d", sum, want)
	}
}

func TestErrors(t *testing.T) {
	s := wideSchema()
	p := NewPartition(s, 8)
	p.Insert(1, sampleTuple(s, 1))
	if err := p.Insert(1, sampleTuple(s, 1)); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := p.Delete(9); err == nil {
		t.Fatal("unknown delete accepted")
	}
	if err := p.UpdateField(9, 0, []byte{1}); err == nil {
		t.Fatal("unknown update accepted")
	}
	if err := p.UpdateField(1, uint32(s.TupleSize()), []byte{1}); err == nil {
		t.Fatal("out-of-bounds update accepted")
	}
}

// Property: colstore and a plain row image agree under random patches.
func TestPatchEquivalenceProperty(t *testing.T) {
	s := wideSchema()
	f := func(patches []struct {
		Off  uint16
		Data []byte
	}) bool {
		p := NewPartition(s, 4)
		ref := sampleTuple(s, 1)
		p.Insert(1, append([]byte(nil), ref...))
		for _, patch := range patches {
			if len(patch.Data) == 0 {
				continue
			}
			off := int(patch.Off) % s.TupleSize()
			data := patch.Data
			if off+len(data) > s.TupleSize() {
				data = data[:s.TupleSize()-off]
			}
			copy(ref[off:], data)
			if err := p.UpdateField(1, uint32(off), data); err != nil {
				return false
			}
		}
		got, ok := p.Get(1)
		return ok && bytes.Equal(got, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
