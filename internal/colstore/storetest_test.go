package colstore

import (
	"testing"

	"batchdb/internal/storetest"
)

// TestStoreConformance runs the shared partition conformance suite
// (internal/storetest) against the column layout, bare and with encoded
// vectors. The same suite runs against olap.Partition, pinning the two
// layouts to one contract.
func TestStoreConformance(t *testing.T) {
	configs := []struct {
		name string
		mk   func() storetest.Store
	}{
		{"Bare", func() storetest.Store {
			return NewPartition(storetest.Schema(), 16)
		}},
		{"Compressed", func() storetest.Store {
			p := NewPartition(storetest.Schema(), 16)
			p.EnableCompression(64)
			return p
		}},
	}
	for _, c := range configs {
		t.Run(c.name, func(t *testing.T) { storetest.Run(t, c.mk) })
	}
}

// TestInsertReservedRowID pins the tombstone-sentinel fix: RowID 0 is
// how tombstones are marked in rowIDs, so inserting under it would
// create a live-counted, indexed, yet scan-invisible row.
func TestInsertReservedRowID(t *testing.T) {
	p := NewPartition(wideSchema(), 8)
	if err := p.Insert(0, sampleTuple(wideSchema(), 1)); err == nil {
		t.Fatal("insert of reserved RowID 0 accepted")
	}
	if p.Live() != 0 || p.Slots() != 0 {
		t.Fatalf("rejected insert left state: Live=%d Slots=%d", p.Live(), p.Slots())
	}
}

// TestPatchDeadSlotRejected pins the stale-slot-handle fix: a patch
// through a slot handle captured before a delete must be refused — the
// slot is tombstoned (and may be recycled), so writing through it would
// corrupt an unrelated row.
func TestPatchDeadSlotRejected(t *testing.T) {
	s := wideSchema()
	p := NewPartition(s, 8)
	p.Insert(1, sampleTuple(s, 1))
	p.Insert(2, sampleTuple(s, 2))
	slot, ok := p.Locate(1)
	if !ok {
		t.Fatal("Locate(1) failed")
	}
	if err := p.Delete(1); err != nil {
		t.Fatal(err)
	}
	if err := p.PatchSlot(slot, 0, []byte{0xFF}); err == nil {
		t.Fatal("patch of tombstoned slot accepted")
	}
	// After the slot is recycled, the stale handle addresses row 3; the
	// guard above is what kept the earlier patch from corrupting it.
	p.Insert(3, sampleTuple(s, 3))
	got, _ := p.Get(3)
	want := sampleTuple(s, 3)
	if string(got) != string(want) {
		t.Fatal("recycled row corrupted")
	}
}
