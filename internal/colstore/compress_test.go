package colstore

import (
	"fmt"
	"math/rand"
	"testing"

	"batchdb/internal/storage"
)

// naiveFilter recomputes FilterBlocks's verdict for one live slot from
// the reassembled row.
func naiveMatch(s *storage.Schema, tup []byte, col int, lo, hi int64, set []int64) bool {
	k := s.OrdKey(tup, col)
	if k < lo || k > hi {
		return false
	}
	if set == nil {
		return true
	}
	for _, m := range set {
		if k == m {
			return true
		}
	}
	return false
}

// TestFilterBlocksMatchesScan drives a compressed column partition
// through randomized rounds of inserts, patches and deletes (with slot
// recycling), re-encodes in a simulated quiesced window, and checks
// that FilterBlocks's bitmap agrees with a raw ScanRange for every live
// slot — intervals and IN-sets, across all numeric columns. Rounds
// that skip re-encoding must make FilterBlocks refuse stale blocks.
func TestFilterBlocksMatchesScan(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			s := wideSchema()
			p := NewPartition(s, 8)
			p.EnableCompression(64)
			if !p.Compressed() {
				t.Fatal("EnableCompression did not attach")
			}
			nextRow := uint64(1)
			var live []uint64
			served := 0

			randTuple := func(id uint64) []byte {
				tup := s.NewTuple()
				s.PutInt64(tup, 0, int64(id))
				s.PutInt32(tup, 1, int32(rng.Intn(21)-10))
				s.PutFloat64(tup, 2, float64(rng.Intn(9)-4)/2)
				s.PutString(tup, 3, "r")
				s.PutInt64(tup, 4, int64(rng.Intn(41)-20))
				return tup
			}

			for round := 0; round < 20; round++ {
				for op := 0; op < 100; op++ {
					switch k := rng.Intn(10); {
					case k < 5 || len(live) == 0:
						if err := p.Insert(nextRow, randTuple(nextRow)); err != nil {
							t.Fatal(err)
						}
						live = append(live, nextRow)
						nextRow++
					case k < 8:
						rid := live[rng.Intn(len(live))]
						col := rng.Intn(len(s.Columns))
						full := randTuple(rid)
						if err := p.UpdateField(rid, uint32(s.Offset(col)),
							full[s.Offset(col):s.Offset(col)+s.ColSize(col)]); err != nil {
							t.Fatal(err)
						}
					default:
						i := rng.Intn(len(live))
						rid := live[i]
						live[i] = live[len(live)-1]
						live = live[:len(live)-1]
						if err := p.Delete(rid); err != nil {
							t.Fatal(err)
						}
					}
				}
				stale := round%4 == 3
				if !stale {
					p.ReencodeDirty()
				}

				for trial := 0; trial < 10; trial++ {
					col := []int{0, 1, 2, 4}[rng.Intn(4)]
					lo := int64(rng.Intn(41) - 20)
					hi := lo + int64(rng.Intn(10))
					var set []int64
					if rng.Intn(3) == 0 {
						set = []int64{lo, lo + 1 + int64(rng.Intn(5))}
						hi = set[1]
					}
					for b := 0; b*64 < p.Slots(); b++ {
						blo, bhi := p.blockSlots(b)
						var sel [1]uint64
						if !p.FilterBlocks(blo, bhi, col, lo, hi, set, sel[:]) {
							// Refusals are only legitimate for stale blocks or
							// blocks whose column honestly declined to encode.
							if !p.enc.stale[b] && p.enc.vecs[b*len(p.enc.cols)+p.enc.colPos[col]] != nil {
								t.Fatalf("round %d block %d col %d: refused fresh encoded block",
									round, b, col)
							}
							if p.enc.stale[b] && !stale {
								t.Fatalf("round %d block %d: stale after ReencodeDirty", round, b)
							}
							continue
						}
						served++
						p.ScanRange(blo, bhi, func(rid uint64, tup []byte) bool {
							slot, _ := p.Locate(rid)
							got := sel[(int(slot)-blo)>>6]>>(uint(int(slot)-blo)&63)&1 == 1
							want := naiveMatch(s, tup, col, lo, hi, set)
							if got != want {
								t.Fatalf("round %d slot %d col %d: vectorized %v, raw %v",
									round, slot, col, got, want)
							}
							return true
						})
					}
				}

				// ScanSelected materializes exactly the selected live rows.
				if !p.enc.anyStale && p.Slots() > 0 {
					words := (p.Slots() + 63) / 64
					sel := make([]uint64, words)
					if p.FilterBlocks(0, p.Slots(), 1, -5, 5, nil, sel) {
						want := map[uint64]bool{}
						p.ScanRange(0, p.Slots(), func(rid uint64, tup []byte) bool {
							if naiveMatch(s, tup, 1, -5, 5, nil) {
								want[rid] = true
							}
							return true
						})
						got := map[uint64]bool{}
						p.ScanSelected(0, p.Slots(), sel, func(off int, rid uint64, tup []byte) bool {
							if s.GetInt64(tup, 0) != int64(rid) {
								t.Fatalf("row %d materialized wrong tuple", rid)
							}
							if slot, _ := p.Locate(rid); int(slot) != off {
								t.Fatalf("row %d: off %d, slot %d", rid, off, slot)
							}
							got[rid] = true
							return true
						})
						if len(got) != len(want) {
							t.Fatalf("ScanSelected saw %d rows, want %d", len(got), len(want))
						}
						for rid := range want {
							if !got[rid] {
								t.Fatalf("row %d missing from ScanSelected", rid)
							}
						}
					}
				}
			}

			if served == 0 {
				t.Fatal("FilterBlocks never served a block — parity check is vacuous")
			}
			raw, encoded := p.CompressedBytes()
			if raw <= 0 || encoded <= 0 || encoded > raw {
				t.Fatalf("CompressedBytes: raw=%d encoded=%d", raw, encoded)
			}
		})
	}
}

// TestFilterBlocksRefusals pins the fallback conditions: misaligned
// ranges, non-numeric columns, and disabled compression all make
// FilterBlocks decline rather than answer approximately.
func TestFilterBlocksRefusals(t *testing.T) {
	s := wideSchema()
	p := NewPartition(s, 8)
	p.EnableCompression(64)
	for i := uint64(1); i <= 100; i++ {
		p.Insert(i, sampleTuple(s, int64(i)))
	}
	p.ReencodeDirty()
	sel := make([]uint64, 2)
	if p.FilterBlocks(1, 65, 1, 0, 10, nil, sel) {
		t.Fatal("misaligned lo served")
	}
	if p.FilterBlocks(0, 63, 1, 0, 10, nil, sel) {
		t.Fatal("misaligned hi served")
	}
	if p.FilterBlocks(0, 64, 3, 0, 10, nil, sel) {
		t.Fatal("string column served")
	}
	if !p.FilterBlocks(0, 64, 1, 0, 10, nil, sel) {
		t.Fatal("aligned block refused")
	}
	bare := NewPartition(s, 8)
	bare.Insert(1, sampleTuple(s, 1))
	if bare.FilterBlocks(0, 1, 1, 0, 10, nil, sel) {
		t.Fatal("uncompressed partition served")
	}
	// Too-small blocks or all-string schemas must disable cleanly.
	small := NewPartition(s, 8)
	small.EnableCompression(32)
	if small.Compressed() {
		t.Fatal("sub-64-tuple blocks accepted")
	}
}
