package replica

import "batchdb/internal/obs"

// Register exposes the robustness counters through reg as registry
// views.
func (s *Stats) Register(reg *obs.Registry, labels ...obs.Label) {
	reg.ObserveCounter("batchdb_replica_reconnects_total",
		"Connections re-established after a loss.", &s.Reconnects, labels...)
	reg.ObserveCounter("batchdb_replica_resyncs_total",
		"Snapshot resyncs staged after a reconnect.", &s.Resyncs, labels...)
	reg.GaugeFunc("batchdb_replica_degraded_seconds",
		"Cumulative time spent without a live connection to the primary.",
		func() float64 { return s.Degraded.Busy().Seconds() }, labels...)
}

// RegisterMetrics exposes the supervisor's robustness counters, its
// transport counters, and its live connection state through reg.
func (s *Supervisor) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	s.stats.Register(reg, labels...)
	s.netStats.Register(reg, labels...)
	reg.GaugeFunc("batchdb_replica_connected",
		"1 when a live, bootstrapped connection to the primary exists.",
		func() float64 {
			if s.Status().Connected {
				return 1
			}
			return 0
		}, labels...)
}

// QueueDepth returns the number of frames queued in the publisher's
// bounded send queue — propagation backpressure toward one replica.
func (p *Publisher) QueueDepth() int { return len(p.out) }
