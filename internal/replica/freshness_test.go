package replica

// Freshness-lag regression: the observability tracker must see an
// outage. While the link is down the supervisor answers SyncUpdates
// with the replica's own covered VID, so the naive VID-lag gauge stays
// at zero — the wall-clock staleness signal has to rise instead, and
// after reconnect + resync the lag high-watermark has to record the
// backlog spike while the live gauges collapse back to fresh.

import (
	"testing"
	"time"

	"batchdb/internal/network"
	"batchdb/internal/obs"
	"batchdb/internal/olap"
	"batchdb/internal/oltp"
)

func TestFreshnessThroughOutage(t *testing.T) {
	engine, schema := newPutEngine(t)
	l, err := network.Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr()
	go serveReplicaConns(engine, l)
	engine.Start()
	defer engine.Close()

	rep := olap.NewReplica(2)
	rep.CreateTable(schema, 1024)
	sup := NewSupervisor(addr, rep, SupervisorConfig{
		Retry:          network.RetryPolicy{Attempts: 3, BaseDelay: 5 * time.Millisecond},
		ReconnectPause: 10 * time.Millisecond,
	})
	sup.Start()
	defer sup.Close()

	// The real scheduler drives the freshness hooks: sync (watermark
	// observation) then apply (snapshot install).
	run := func(queries []int, snap uint64) []int64 {
		out := make([]int64, len(queries))
		for i := range out {
			out[i] = int64(rep.Table(1).Live())
		}
		return out
	}
	sched := olap.NewScheduler(rep, sup, run)
	fresh := sched.Freshness()
	reg := obs.NewRegistry()
	sched.RegisterMetrics(reg)
	sched.Start()
	defer sched.Close()

	if _, err := sup.WaitBootstrap(); err != nil {
		t.Fatal(err)
	}

	putRange(t, engine, 1, 40)
	if _, err := sched.Query(0); err != nil {
		t.Fatal(err)
	}
	if got := fresh.InstalledVID(); got != 40 {
		t.Fatalf("installed VID after first batch = %d, want 40", got)
	}
	if lag := fresh.VIDLag(); lag != 0 {
		t.Fatalf("VID lag while caught up = %d", lag)
	}

	// Outage: no listener to reconnect to, current connection severed.
	l.Close()
	sup.KillConnection()
	putRange(t, engine, 41, 80) // committed while the replica is dark
	fresh.ResetLagHigh()

	const outage = 150 * time.Millisecond
	time.Sleep(outage)
	if _, err := sched.Query(0); err != nil {
		t.Fatal(err)
	}
	if sup.Status().Connected {
		t.Fatal("supervisor claims a live connection during the outage")
	}
	// Degraded syncs answer with the replica's own covered VID, so the
	// lag gauge is blind here — that is exactly why staleness exists.
	if lag := fresh.VIDLag(); lag != 0 {
		t.Fatalf("degraded VID lag = %d, want 0 (fallback answers)", lag)
	}
	peak := fresh.StalenessNanos()
	if peak < int64(outage) {
		t.Fatalf("staleness during outage = %v, want >= %v",
			time.Duration(peak), outage)
	}

	// Recovery: restore the listener; the supervisor reconnects and
	// stages a resync snapshot, installed at the next apply round.
	l2, err := network.Listen(addr, nil)
	if err != nil {
		t.Fatalf("re-listen on %s: %v", addr, err)
	}
	defer l2.Close()
	go serveReplicaConns(engine, l2)

	deadline := time.Now().Add(20 * time.Second)
	for {
		if _, err := sched.Query(0); err != nil {
			t.Fatal(err)
		}
		if sup.Status().Connected && rep.AppliedVID() >= engine.LatestVID() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never recovered: applied %d, primary %d, connected %v",
				rep.AppliedVID(), engine.LatestVID(), sup.Status().Connected)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The first post-reconnect sync sees the full backlog before the
	// apply window installs it: 40 commits happened in the dark.
	if high := fresh.LagHigh(); high < 40 {
		t.Fatalf("post-outage lag high-watermark = %d, want >= 40", high)
	}
	if lag := fresh.VIDLag(); lag != 0 {
		t.Fatalf("VID lag after recovery = %d, want 0", lag)
	}
	if got := fresh.InstalledVID(); got < 80 {
		t.Fatalf("installed VID after recovery = %d, want >= 80", got)
	}
	if after := fresh.StalenessNanos(); after >= peak {
		t.Fatalf("staleness did not collapse after resync: %v >= %v",
			time.Duration(after), time.Duration(peak))
	}
	if sup.Status().Resyncs < 1 {
		t.Fatalf("resyncs = %d, want >= 1", sup.Status().Resyncs)
	}

	// The registered gauges tell the same story through the registry.
	if v, ok := findRegValue(reg, "batchdb_freshness_vid_lag"); !ok || v != 0 {
		t.Fatalf("registry vid lag = %v,%v", v, ok)
	}
	if v, ok := findRegValue(reg, "batchdb_freshness_vid_lag_high"); !ok || v < 40 {
		t.Fatalf("registry vid lag high = %v,%v", v, ok)
	}
	if v, ok := findRegValue(reg, "batchdb_freshness_installs_total"); !ok || v < 2 {
		t.Fatalf("registry installs = %v,%v", v, ok)
	}
}

func putRange(t *testing.T, engine *oltp.Engine, from, to int64) {
	t.Helper()
	for i := from; i <= to; i++ {
		if r := engine.Exec("put", args2(i, i)); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
}

// findRegValue returns the first sample with the given name.
func findRegValue(reg *obs.Registry, name string) (float64, bool) {
	for _, s := range reg.Samples() {
		if s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}
