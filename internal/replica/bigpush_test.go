package replica

import (
	"encoding/binary"
	"testing"
	"time"

	"batchdb/internal/mvcc"
	"batchdb/internal/network"
	"batchdb/internal/olap"
	"batchdb/internal/oltp"
	"batchdb/internal/storage"
)

// Regression test: a sync request whose answering push exceeds the
// transport's eager limit must not deadlock. (The primary's dispatcher
// blocks in the rendezvous send waiting for a grant; the grant is
// delivered by the primary's reader loop, which therefore must never
// block on the engine while a sync is in flight.)
func TestSyncWithOversizedPush(t *testing.T) {
	schema := storage.NewSchema(1, "blobs", []storage.Column{
		{Name: "k", Type: storage.Int64},
		{Name: "payload", Type: storage.String, Size: 2048},
	}, []int{0})
	store := mvcc.NewStore()
	tbl := store.CreateTable(schema, func(tup []byte) uint64 {
		return uint64(schema.GetInt64(tup, 0))
	}, 4096)
	engine, err := oltp.New(store, oltp.Config{Workers: 2, PushPeriod: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	engine.Register("put", func(tx *mvcc.Txn, args []byte) ([]byte, error) {
		tup := schema.NewTuple()
		schema.PutInt64(tup, 0, int64(binary.LittleEndian.Uint64(args)))
		schema.PutString(tup, 1, "x")
		_, err := tx.Insert(tbl, tup)
		return nil, err
	})

	rep := olap.NewReplica(2)
	rep.CreateTable(schema, 4096)

	l, err := network.Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	connCh := make(chan *network.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			connCh <- c
		}
	}()
	cliConn, err := network.Dial(l.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srvConn := <-connCh
	l.Close()
	defer cliConn.Close()
	defer srvConn.Close()

	pub := NewPublisher(srvConn, engine)
	engine.SetSink(pub)
	client := NewClient(cliConn, rep)
	go pub.Serve()
	go client.Serve()
	engine.Start()
	defer engine.Close()

	// Accumulate well over the 1 MiB eager limit before any push: 1000
	// inserts x ~2 KB tuples ~ 2 MB of update log.
	args := make([]byte, 8)
	for i := uint64(1); i <= 1000; i++ {
		binary.LittleEndian.PutUint64(args, i)
		if r := engine.Exec("put", args); r.Err != nil {
			t.Fatal(r.Err)
		}
	}

	done := make(chan uint64, 1)
	go func() { done <- client.SyncUpdates() }()
	select {
	case covered := <-done:
		if covered != 1000 {
			t.Fatalf("covered = %d, want 1000", covered)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("sync with oversized push deadlocked")
	}
	if _, err := rep.ApplyPending(1000); err != nil {
		t.Fatal(err)
	}
	if rep.Table(1).Live() != 1000 {
		t.Fatalf("replica rows = %d", rep.Table(1).Live())
	}
	// The big push must have taken the rendezvous path.
	if srvConn.Stats().RendezvousMsgs.Load() == 0 {
		t.Fatal("push below eager limit; test no longer exercises rendezvous")
	}
}
