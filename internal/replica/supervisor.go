package replica

import (
	"errors"
	"sync"
	"time"

	"batchdb/internal/metrics"
	"batchdb/internal/network"
	"batchdb/internal/olap"
)

// Stats counts replication-channel robustness events for one replica
// node. Dial-level retries are counted in the supervisor's
// network.Stats (Retries).
type Stats struct {
	// Reconnects counts connections re-established after a loss.
	Reconnects metrics.Counter
	// Resyncs counts snapshot resyncs staged after a reconnect.
	Resyncs metrics.Counter
	// Degraded accumulates time spent without a live connection to the
	// primary (queries keep serving stale-but-consistent data).
	Degraded metrics.BusyTracker
}

// SupervisorConfig parameterizes a Supervisor. The zero value gives
// modest deadlines and persistent reconnection.
type SupervisorConfig struct {
	// Retry governs each dial round (attempts, backoff, jitter). The
	// zero value is replaced with 5 attempts from 25ms base delay.
	Retry network.RetryPolicy
	// Transport sets per-connection deadlines.
	Transport network.Options
	// ReconnectPause is the pause between failed reconnect rounds
	// (default 100ms). Reconnect rounds repeat until Close.
	ReconnectPause time.Duration
	// NetStats, when non-nil, accumulates transport counters across all
	// connections the supervisor establishes.
	NetStats *network.Stats
	// Stats, when non-nil, receives the robustness counters.
	Stats *Stats
	// Fault, when non-nil, is installed on every new connection —
	// deterministic fault injection for tests and drills.
	Fault network.FaultPolicy
}

// Status is a point-in-time view of the replication channel.
type Status struct {
	// Connected reports a live, bootstrapped connection to the primary.
	Connected bool
	// BootstrapVID is the first successful bootstrap's snapshot VID.
	BootstrapVID uint64
	// Reconnects and Resyncs mirror Stats.
	Reconnects uint64
	Resyncs    uint64
	// Degraded is the cumulative time without a live connection,
	// including the current outage if disconnected now.
	Degraded time.Duration
	// CurrentOutage is the duration of the outage in progress (zero when
	// connected) — the health signal a fleet router ejects on.
	CurrentOutage time.Duration
	// LastError is the most recent connection or bootstrap error.
	LastError error
}

// Supervisor keeps one replica node's connection to the primary alive:
// it dials with retry and backoff, runs a Client over each connection,
// and on connection loss reconnects and resyncs from a fresh snapshot
// (staged, then installed atomically at the next quiesced apply round
// with the VID floor raised — no update lost, none double-applied).
// While disconnected the node is explicitly degraded: SyncUpdates falls
// back to the highest covered VID so queries keep serving stale but
// consistent data, and Status/Stats report the outage.
//
// Supervisor implements olap.Primary, so it plugs directly into the
// OLAP scheduler.
type Supervisor struct {
	addr     string
	rep      *olap.Replica
	cfg      SupervisorConfig
	netStats *network.Stats
	stats    *Stats

	mu            sync.Mutex
	cur           *Client
	curConn       *network.Conn
	degradedSince time.Time
	bootVID       uint64
	lastErr       error

	firstBoot chan struct{}
	bootOnce  sync.Once
	firstErr  error

	closing   chan struct{}
	closed    chan struct{}
	closeOnce sync.Once
}

// NewSupervisor creates a supervisor for the replica node at addr. Call
// Start, then WaitBootstrap.
func NewSupervisor(addr string, rep *olap.Replica, cfg SupervisorConfig) *Supervisor {
	if cfg.Retry.Attempts < 1 {
		cfg.Retry.Attempts = 5
	}
	if cfg.ReconnectPause <= 0 {
		cfg.ReconnectPause = 100 * time.Millisecond
	}
	if cfg.NetStats == nil {
		cfg.NetStats = &network.Stats{}
	}
	if cfg.Stats == nil {
		cfg.Stats = &Stats{}
	}
	return &Supervisor{
		addr:      addr,
		rep:       rep,
		cfg:       cfg,
		netStats:  cfg.NetStats,
		stats:     cfg.Stats,
		firstBoot: make(chan struct{}),
		closing:   make(chan struct{}),
		closed:    make(chan struct{}),
	}
}

// Start launches the supervision loop.
func (s *Supervisor) Start() { go s.run() }

// WaitBootstrap blocks until the first bootstrap completes and returns
// its snapshot VID. The first connection is strict: if it cannot be
// established or bootstrapped, the error is returned and the supervisor
// stops (reconnection persistence applies only after a first success).
func (s *Supervisor) WaitBootstrap() (uint64, error) {
	<-s.firstBoot
	if s.firstErr != nil {
		return 0, s.firstErr
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bootVID, nil
}

// SyncUpdates implements olap.Primary. While degraded it falls back to
// the highest covered VID so the OLAP dispatcher keeps serving.
func (s *Supervisor) SyncUpdates() uint64 {
	s.mu.Lock()
	cli := s.cur
	s.mu.Unlock()
	if cli == nil {
		return s.rep.Covered()
	}
	return cli.SyncUpdates() // falls back itself if the conn dies mid-sync
}

// FreshSync implements olap.FreshnessConfirmer: it reports whether the
// most recent SyncUpdates answer came from a live exchange with the
// primary (false while degraded, when SyncUpdates falls back to the
// replica's own covered VID).
func (s *Supervisor) FreshSync() bool {
	s.mu.Lock()
	cli := s.cur
	s.mu.Unlock()
	return cli != nil && cli.FreshSync()
}

// Status reports the channel's current health.
func (s *Supervisor) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		Connected:    s.cur != nil,
		BootstrapVID: s.bootVID,
		Reconnects:   s.stats.Reconnects.Load(),
		Resyncs:      s.stats.Resyncs.Load(),
		Degraded:     s.stats.Degraded.Busy(),
		LastError:    s.lastErr,
	}
	if !s.degradedSince.IsZero() {
		st.CurrentOutage = time.Since(s.degradedSince)
		st.Degraded += st.CurrentOutage
	}
	return st
}

// Stats returns the robustness counters.
func (s *Supervisor) Stats() *Stats { return s.stats }

// NetStats returns the transport counters accumulated across every
// connection this supervisor established.
func (s *Supervisor) NetStats() *network.Stats { return s.netStats }

// KillConnection severs the current connection (no-op when already
// disconnected) — a fault hook for tests and operational drills. The
// supervisor reconnects and resyncs.
func (s *Supervisor) KillConnection() {
	s.mu.Lock()
	conn := s.curConn
	s.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// InjectFault installs a fault policy on the current connection only
// (no-op when disconnected). For persistent injection across reconnects
// use SupervisorConfig.Fault.
func (s *Supervisor) InjectFault(p network.FaultPolicy) {
	s.mu.Lock()
	conn := s.curConn
	s.mu.Unlock()
	if conn != nil {
		conn.SetFaultPolicy(p)
	}
}

// Close stops the supervision loop and severs any live connection.
func (s *Supervisor) Close() {
	s.closeOnce.Do(func() { close(s.closing) })
	s.mu.Lock()
	conn := s.curConn
	s.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	<-s.closed
}

func (s *Supervisor) noteError(err error) {
	s.mu.Lock()
	s.lastErr = err
	s.mu.Unlock()
}

// ErrSupervisorClosed reports a Close that arrived before the first
// bootstrap completed.
var ErrSupervisorClosed = errors.New("replica: supervisor closed before bootstrap")

func (s *Supervisor) run() {
	defer close(s.closed)
	// Whatever path exits the loop, never leave WaitBootstrap callers
	// hanging: if the first bootstrap neither succeeded nor recorded its
	// own error (e.g. Close raced the dial), fail it explicitly.
	defer s.bootOnce.Do(func() {
		if s.firstErr == nil {
			s.firstErr = ErrSupervisorClosed
		}
		close(s.firstBoot)
	})
	first := true
	for {
		select {
		case <-s.closing:
			return
		default:
		}
		conn, err := network.DialRetry(s.addr, s.netStats, s.cfg.Transport, s.cfg.Retry, s.closing)
		if err != nil {
			s.noteError(err)
			if first {
				s.firstErr = err
				s.bootOnce.Do(func() { close(s.firstBoot) })
				return
			}
			select {
			case <-s.closing:
				return
			case <-time.After(s.cfg.ReconnectPause):
			}
			continue
		}
		if s.cfg.Fault != nil {
			conn.SetFaultPolicy(s.cfg.Fault)
		}
		// Record the connection before (re)bootstrapping so Close and
		// KillConnection can sever it while the snapshot is still in
		// flight — a primary that wedges mid-ship must not make Close
		// block forever, and the kill drill must work during a resync.
		// s.cur stays nil until the bootstrap succeeds (Status reports
		// Connected only for a live, bootstrapped channel).
		s.mu.Lock()
		s.curConn = conn
		s.mu.Unlock()
		select {
		case <-s.closing:
			// Close ran before it could see curConn; sever here.
			conn.Close()
			s.mu.Lock()
			s.curConn = nil
			s.mu.Unlock()
			return
		default:
		}
		var cli *Client
		if first {
			cli = NewClient(conn, s.rep)
		} else {
			cli = NewResyncClient(conn, s.rep)
		}
		serveDone := make(chan error, 1)
		go func() { serveDone <- cli.Serve() }()
		bootVID, berr := cli.WaitBootstrap()
		if berr != nil {
			conn.Close()
			<-serveDone
			s.mu.Lock()
			s.curConn = nil
			s.mu.Unlock()
			s.noteError(berr)
			if first {
				s.firstErr = berr
				s.bootOnce.Do(func() { close(s.firstBoot) })
				return
			}
			select {
			case <-s.closing:
				return
			case <-time.After(s.cfg.ReconnectPause):
			}
			continue
		}
		s.mu.Lock()
		s.cur, s.curConn = cli, conn
		if !s.degradedSince.IsZero() {
			s.stats.Degraded.Track(time.Since(s.degradedSince))
			s.degradedSince = time.Time{}
		}
		if first {
			s.bootVID = bootVID
		} else {
			s.stats.Reconnects.Inc()
			s.stats.Resyncs.Inc()
		}
		s.mu.Unlock()
		if first {
			s.bootOnce.Do(func() { close(s.firstBoot) })
			first = false
		}
		select {
		case err := <-serveDone:
			s.noteError(err)
			s.mu.Lock()
			s.cur, s.curConn = nil, nil
			s.degradedSince = time.Now()
			s.mu.Unlock()
			conn.Close()
		case <-s.closing:
			s.mu.Lock()
			s.cur, s.curConn = nil, nil
			s.mu.Unlock()
			conn.Close()
			<-serveDone
			return
		}
	}
}
