package replica

import (
	"encoding/binary"
	"testing"
	"time"

	"batchdb/internal/mvcc"
	"batchdb/internal/network"
	"batchdb/internal/olap"
	"batchdb/internal/oltp"
	"batchdb/internal/storage"
)

// testCluster wires a primary engine and a remote OLAP replica over a
// real TCP loopback connection.
type testCluster struct {
	engine  *oltp.Engine
	tbl     *mvcc.Table
	schema  *storage.Schema
	replica *olap.Replica
	client  *Client
	pub     *Publisher
}

func newCluster(t *testing.T) *testCluster {
	t.Helper()
	schema := storage.NewSchema(1, "kv", []storage.Column{
		{Name: "k", Type: storage.Int64},
		{Name: "v", Type: storage.Int64},
	}, []int{0})

	// Primary node.
	store := mvcc.NewStore()
	tbl := store.CreateTable(schema, func(tup []byte) uint64 {
		return uint64(schema.GetInt64(tup, 0))
	}, 1024)
	engine, err := oltp.New(store, oltp.Config{Workers: 2, PushPeriod: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	engine.Register("put", func(tx *mvcc.Txn, args []byte) ([]byte, error) {
		k := int64(binary.LittleEndian.Uint64(args))
		v := int64(binary.LittleEndian.Uint64(args[8:]))
		tup := schema.NewTuple()
		schema.PutInt64(tup, 0, k)
		schema.PutInt64(tup, 1, v)
		_, err := tx.Insert(tbl, tup)
		return nil, err
	})
	engine.Register("add", func(tx *mvcc.Txn, args []byte) ([]byte, error) {
		k := int64(binary.LittleEndian.Uint64(args))
		d := int64(binary.LittleEndian.Uint64(args[8:]))
		return nil, tx.Update(tbl, uint64(k), []int{1}, func(tup []byte) {
			schema.PutInt64(tup, 1, schema.GetInt64(tup, 1)+d)
		})
	})

	// Replica node.
	rep := olap.NewReplica(2)
	rep.CreateTable(schema, 1024)

	// Wire them over loopback TCP.
	l, err := network.Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	connCh := make(chan *network.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			connCh <- c
		}
	}()
	cliConn, err := network.Dial(l.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srvConn := <-connCh
	l.Close()

	pub := NewPublisher(srvConn, engine)
	engine.SetSink(pub)
	client := NewClient(cliConn, rep)
	go pub.Serve()
	go client.Serve()

	t.Cleanup(func() {
		engine.Close()
		cliConn.Close()
		srvConn.Close()
	})
	return &testCluster{engine: engine, tbl: tbl, schema: schema, replica: rep, client: client, pub: pub}
}

func args2(k, v int64) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b, uint64(k))
	binary.LittleEndian.PutUint64(b[8:], uint64(v))
	return b
}

func TestRemoteReplicaEndToEnd(t *testing.T) {
	c := newCluster(t)
	c.engine.Start()

	for i := int64(1); i <= 100; i++ {
		if r := c.engine.Exec("put", args2(i, i*10)); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	for i := int64(1); i <= 50; i++ {
		if r := c.engine.Exec("add", args2(i, 1)); r.Err != nil {
			t.Fatal(r.Err)
		}
	}

	// Sync through the remote path, then apply and verify.
	covered := c.client.SyncUpdates()
	if covered != 150 {
		t.Fatalf("covered = %d, want 150", covered)
	}
	if _, err := c.replica.ApplyPending(covered); err != nil {
		t.Fatal(err)
	}
	tbl := c.replica.Table(1)
	if tbl.Live() != 100 {
		t.Fatalf("replica live = %d, want 100", tbl.Live())
	}
	sum := int64(0)
	for _, p := range tbl.Partitions {
		p.Scan(func(_ uint64, tup []byte) bool {
			sum += c.schema.GetInt64(tup, 1)
			return true
		})
	}
	want := int64(0)
	for i := int64(1); i <= 100; i++ {
		want += i * 10
	}
	want += 50
	if sum != want {
		t.Fatalf("replica sum = %d, want %d", sum, want)
	}
}

func TestBootstrapThenLiveUpdates(t *testing.T) {
	c := newCluster(t)
	// Load data before the engine starts (initial load path).
	store := c.engine.Store()
	tx := store.Begin()
	for i := int64(1); i <= 500; i++ {
		tup := c.schema.NewTuple()
		c.schema.PutInt64(tup, 0, i)
		c.schema.PutInt64(tup, 1, i)
		if _, err := tx.Insert(c.tbl, tup); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Ship the snapshot, then start the engine and apply live updates.
	snapVID, err := ShipSnapshot(c.pub.conn, store, []storage.TableID{1}, 128)
	if err != nil {
		t.Fatal(err)
	}
	bootVID, err := c.client.WaitBootstrap()
	if err != nil {
		t.Fatal(err)
	}
	if bootVID != snapVID {
		t.Fatalf("bootstrap VID %d != shipped %d", bootVID, snapVID)
	}
	if c.replica.Table(1).Live() != 500 {
		t.Fatalf("bootstrapped %d rows", c.replica.Table(1).Live())
	}

	c.engine.Start()
	for i := int64(1); i <= 100; i++ {
		if r := c.engine.Exec("add", args2(i, 1000)); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	covered := c.client.SyncUpdates()
	if _, err := c.replica.ApplyPending(covered); err != nil {
		t.Fatal(err)
	}
	// Spot-check values: rows 1..100 were incremented.
	tbl := c.replica.Table(1)
	sum := int64(0)
	for _, p := range tbl.Partitions {
		p.Scan(func(_ uint64, tup []byte) bool {
			sum += c.schema.GetInt64(tup, 1)
			return true
		})
	}
	want := int64(0)
	for i := int64(1); i <= 500; i++ {
		want += i
	}
	want += 100 * 1000
	if sum != want {
		t.Fatalf("sum after live updates = %d, want %d", sum, want)
	}
}

func TestRemoteSchedulerIntegration(t *testing.T) {
	c := newCluster(t)
	c.engine.Start()
	for i := int64(1); i <= 20; i++ {
		if r := c.engine.Exec("put", args2(i, 1)); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	// Scheduler over the remote primary: each query batch syncs over
	// the network and sees fresh data.
	run := func(qs []int, snap uint64) []int {
		out := make([]int, len(qs))
		for i := range qs {
			out[i] = c.replica.Table(1).Live()
		}
		return out
	}
	sched := olap.NewScheduler(c.replica, c.client, run)
	sched.Start()
	defer sched.Close()

	got, err := sched.Query(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 20 {
		t.Fatalf("remote-scheduled query saw %d rows, want 20", got)
	}
	for i := int64(21); i <= 30; i++ {
		c.engine.Exec("put", args2(i, 1))
	}
	got, _ = sched.Query(0)
	if got != 30 {
		t.Fatalf("second query saw %d rows, want 30", got)
	}
}

func TestMultiSinkFanOut(t *testing.T) {
	// Two local replicas fed by one engine through MultiSink.
	schema := storage.NewSchema(1, "kv", []storage.Column{
		{Name: "k", Type: storage.Int64},
		{Name: "v", Type: storage.Int64},
	}, []int{0})
	store := mvcc.NewStore()
	tbl := store.CreateTable(schema, func(tup []byte) uint64 {
		return uint64(schema.GetInt64(tup, 0))
	}, 64)
	engine, err := oltp.New(store, oltp.Config{Workers: 1, PushPeriod: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	engine.Register("put", func(tx *mvcc.Txn, args []byte) ([]byte, error) {
		k := int64(binary.LittleEndian.Uint64(args))
		tup := schema.NewTuple()
		schema.PutInt64(tup, 0, k)
		schema.PutInt64(tup, 1, k)
		_, err := tx.Insert(tbl, tup)
		return nil, err
	})
	r1, r2 := olap.NewReplica(1), olap.NewReplica(1)
	r1.CreateTable(schema, 64)
	r2.CreateTable(schema, 64)
	engine.SetSink(MultiSink{r1, r2})
	engine.Start()
	defer engine.Close()

	for i := int64(1); i <= 10; i++ {
		engine.Exec("put", args2(i, i))
	}
	covered := engine.SyncUpdates()
	for _, r := range []*olap.Replica{r1, r2} {
		if _, err := r.ApplyPending(covered); err != nil {
			t.Fatal(err)
		}
		if r.Table(1).Live() != 10 {
			t.Fatalf("fan-out replica has %d rows", r.Table(1).Live())
		}
	}
}
