// Package replica implements BatchDB's cross-machine replication: the
// primary node ships its physical update log and bootstrap snapshots to
// remote OLAP replicas over the network transport (paper §6; the
// "Distributed (RDMA) Replicas" configuration of Fig. 7).
//
// Wire protocol, all multiplexed on one ordered connection:
//
//	replica -> primary: sync            (fetch latest snapshot version)
//	primary -> replica: updates         (pushed update batches + upTo)
//	primary -> replica: syncReply       (covered VID; ordered after the
//	                                     updates it covers)
//	primary -> replica: bootRows        (snapshot chunk during bootstrap)
//	primary -> replica: bootDone        (snapshot VID)
//
// Because the connection delivers in order and the primary writes the
// updates before the matching syncReply, a replica that has read the
// syncReply is guaranteed to have enqueued every update the reply
// covers — the same reasoning the paper applies to its RDMA channel.
package replica

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"batchdb/internal/mvcc"
	"batchdb/internal/network"
	"batchdb/internal/olap"
	"batchdb/internal/oltp"
	"batchdb/internal/proplog"
	"batchdb/internal/storage"
)

// Message types.
const (
	msgSync      = 1
	msgSyncReply = 2
	msgUpdates   = 3
	msgBootRows  = 4
	msgBootDone  = 5
)

// MultiSink fans updates out to several sinks (e.g. the local replica
// plus one forwarder per remote replica — the paper's elasticity story:
// the network is fast enough to feed multiple secondaries).
type MultiSink []oltp.UpdateSink

// ApplyUpdates delivers the push to every sink.
func (m MultiSink) ApplyUpdates(batches []proplog.Batch, upTo uint64) {
	for _, s := range m {
		s.ApplyUpdates(batches, upTo)
	}
}

// --- primary side ------------------------------------------------------

// DefaultPublisherQueue bounds the pushes a Publisher buffers for one
// replica. A replica that falls further behind (or is disconnected) is
// severed rather than silently skipped: dropping an update push would
// violate the coverage invariant (a sync reply promises every update it
// covers was delivered), so the only safe degradation is to cut the
// connection and let the replica reconnect and resync from a fresh
// snapshot.
const DefaultPublisherQueue = 256

// outMsg is one queued transmission (an update push or a sync reply).
// buf is drawn from the network package's frame-buffer pool; whoever
// finishes with the message (the send loop, or enqueue on overflow)
// returns it.
type outMsg struct {
	mt  uint8
	buf []byte
}

// Publisher runs on the primary node: it ships update pushes to one
// remote replica through a bounded send queue, and its Serve loop
// answers that replica's sync requests. The queue decouples the OLTP
// dispatcher from the replica's network: a slow or dead replica can
// never wedge transaction processing — it is severed when the queue
// overflows.
type Publisher struct {
	conn   *network.Conn
	engine *oltp.Engine
	out    chan outMsg
	lagged atomic.Bool
}

// NewPublisher wraps an established connection to a replica node and
// starts its send loop (which exits when the connection fails).
func NewPublisher(conn *network.Conn, engine *oltp.Engine) *Publisher {
	p := &Publisher{conn: conn, engine: engine, out: make(chan outMsg, DefaultPublisherQueue)}
	go p.sendLoop()
	return p
}

func (p *Publisher) sendLoop() {
	for {
		select {
		case m := <-p.out:
			err := p.conn.Send(m.mt, m.buf)
			// Send never retains the payload past its return, so the
			// frame buffer can be recycled even on failure.
			network.PutFrameBuf(m.buf)
			if err != nil {
				return
			}
		case <-p.conn.Done():
			return
		}
	}
}

// enqueue queues one message for the send loop. Overflow means the
// replica cannot keep up: the connection is severed so the replica
// reconnects and resyncs (see DefaultPublisherQueue).
func (p *Publisher) enqueue(mt uint8, buf []byte) {
	select {
	case p.out <- outMsg{mt: mt, buf: buf}:
	default:
		network.PutFrameBuf(buf)
		p.lagged.Store(true)
		p.conn.Close()
	}
}

// Lagged reports whether this publisher severed its connection because
// the replica fell behind the bounded send queue.
func (p *Publisher) Lagged() bool { return p.lagged.Load() }

// ApplyUpdates implements oltp.UpdateSink by queueing the push for the
// send loop. It is called from the OLTP dispatcher at batch boundaries
// and never blocks: a dead replica must not wedge the primary.
func (p *Publisher) ApplyUpdates(batches []proplog.Batch, upTo uint64) {
	if p.conn.Err() != nil {
		return // dead feed; the serve loop is tearing down
	}
	buf := binary.LittleEndian.AppendUint64(network.GetFrameBuf(), upTo)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(batches)))
	for i := range batches {
		lenPos := len(buf)
		buf = append(buf, 0, 0, 0, 0)
		buf = proplog.AppendEncode(buf, &batches[i])
		binary.LittleEndian.PutUint32(buf[lenPos:], uint32(len(buf)-lenPos-4))
	}
	p.enqueue(msgUpdates, buf)
}

// Serve answers sync requests until the connection closes.
//
// The reader loop must never block on the engine: a sync request makes
// the engine's dispatcher push updates through ApplyUpdates, and a push
// larger than the transport's eager limit waits for a rendezvous grant
// that only this connection's Recv loop can deliver. Handling syncs on
// a separate goroutine keeps the reader free to service grants, which
// breaks that cycle.
//
// Sync replies travel through the same FIFO queue as update pushes, so
// a reply is always ordered after the updates it covers — the coverage
// invariant the replica's sync round trip relies on.
func (p *Publisher) Serve() error {
	// Whatever ends this loop, fail the connection so the send loop and
	// any queued senders unwind too.
	defer p.conn.Close()
	syncs := make(chan struct{}, 64)
	defer close(syncs)
	go func() {
		for range syncs {
			// SyncUpdates pushes through our ApplyUpdates (among the
			// engine's sinks) before returning, so enqueueing the reply
			// here orders it after the updates it covers.
			covered := p.engine.SyncUpdates()
			b := binary.LittleEndian.AppendUint64(network.GetFrameBuf(), covered)
			p.enqueue(msgSyncReply, b)
		}
	}()
	for {
		mt, _, release, err := p.conn.Recv()
		if err != nil {
			return err
		}
		if release != nil {
			release()
		}
		if mt != msgSync {
			return fmt.Errorf("replica: primary received unexpected message type %d", mt)
		}
		// Every request gets exactly one reply (the client performs one
		// sync round trip at a time, so this never blocks in practice).
		syncs <- struct{}{}
	}
}

// ShipSnapshot streams the current committed state of the given tables
// to the replica node, chunked so large tables exercise the bulk
// (rendezvous) path, and finishes with the snapshot VID. Attach the
// Publisher to the engine's sink set *before* calling this: the replica
// discards any update the snapshot already contains (VID floor). The
// Publisher's Serve loop must already be running, because bulk chunks
// wait for the receiver's rendezvous grant, which Serve's Recv loop
// delivers.
func ShipSnapshot(conn *network.Conn, store *mvcc.Store, tables []storage.TableID, chunkRows int) (uint64, error) {
	if chunkRows <= 0 {
		chunkRows = 4096
	}
	ro := store.BeginRO()
	defer ro.Release()
	snap := ro.Snapshot()
	for _, id := range tables {
		t := store.Table(id)
		if t == nil {
			return 0, fmt.Errorf("replica: snapshot of unknown table %d", id)
		}
		var buf []byte
		var n int
		var scanErr error
		flush := func() error {
			if n == 0 {
				return nil
			}
			hdr := make([]byte, 6, 6+len(buf))
			binary.LittleEndian.PutUint16(hdr, uint16(id))
			binary.LittleEndian.PutUint32(hdr[2:], uint32(n))
			if err := conn.Send(msgBootRows, append(hdr, buf...)); err != nil {
				return err
			}
			buf, n = buf[:0], 0
			return nil
		}
		t.ScanChains(func(c *mvcc.Chain) bool {
			rec := ro.ReadChain(c)
			if rec == nil {
				return true
			}
			buf = binary.LittleEndian.AppendUint64(buf, rec.RowID)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Data)))
			buf = append(buf, rec.Data...)
			n++
			if n >= chunkRows {
				if err := flush(); err != nil {
					scanErr = err
					return false
				}
			}
			return true
		})
		if scanErr != nil {
			return 0, scanErr
		}
		if err := flush(); err != nil {
			return 0, err
		}
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], snap)
	if err := conn.Send(msgBootDone, b[:]); err != nil {
		return 0, err
	}
	return snap, nil
}

// LoadLocal populates a co-located OLAP replica directly from the
// primary store's current committed state and sets the replica's floor
// to the snapshot VID (the local-machine bootstrap; remote replicas use
// ShipSnapshot instead). Attach the replica as an update sink before
// calling so no update between snapshot and first push is lost.
func LoadLocal(rep *olap.Replica, store *mvcc.Store, tables []storage.TableID) (uint64, error) {
	ro := store.BeginRO()
	defer ro.Release()
	snap := ro.Snapshot()
	for _, id := range tables {
		t := store.Table(id)
		if t == nil {
			return 0, fmt.Errorf("replica: local load of unknown table %d", id)
		}
		var loadErr error
		t.ScanChains(func(c *mvcc.Chain) bool {
			rec := ro.ReadChain(c)
			if rec == nil {
				return true
			}
			tup := append([]byte(nil), rec.Data...)
			if err := rep.LoadTuple(id, rec.RowID, tup); err != nil {
				loadErr = err
				return false
			}
			return true
		})
		if loadErr != nil {
			return 0, loadErr
		}
	}
	rep.SetFloor(snap)
	return snap, nil
}

// --- replica side -------------------------------------------------------

// Client runs on the replica node: it feeds received updates and
// bootstrap rows into the local olap.Replica and implements olap.Primary
// by forwarding sync requests to the primary node.
type Client struct {
	conn    *network.Conn
	replica *olap.Replica

	// staged, when non-nil, redirects bootstrap rows AND live update
	// pushes into a Reload that is installed atomically on bootDone
	// instead of touching the replica directly — the resync path for
	// reconnecting replicas whose old data is still serving queries.
	// Only the Serve goroutine touches it.
	staged *olap.Reload

	syncMu    sync.Mutex // serializes sync round trips
	syncReply chan uint64
	// syncLive records whether the most recent SyncUpdates round-tripped
	// to the primary (false when it fell back to the covered VID because
	// the connection died mid-sync). Feeds the freshness tracker.
	syncLive atomic.Bool

	bootDone chan uint64
	bootOnce sync.Once
	done     chan struct{}
	doneOnce sync.Once

	errMu sync.Mutex
	err   error
}

// NewClient wraps an established connection to the primary node.
// Bootstrap rows load directly into the replica, so the replica must
// not be serving queries yet (first connection).
func NewClient(conn *network.Conn, replica *olap.Replica) *Client {
	return &Client{
		conn:      conn,
		replica:   replica,
		syncReply: make(chan uint64, 1),
		bootDone:  make(chan uint64, 1),
		done:      make(chan struct{}),
	}
}

// NewResyncClient wraps a re-established connection to the primary
// node. Bootstrap rows — and any update pushes that arrive while the
// snapshot is in flight — are staged into an olap.Reload while queries
// keep running against the replica's old data; the completed snapshot
// is installed atomically (and the VID floor raised) by the next
// quiesced apply round, with the staged pushes queued right behind it.
func NewResyncClient(conn *network.Conn, replica *olap.Replica) *Client {
	c := NewClient(conn, replica)
	c.staged = replica.NewReload()
	return c
}

// Serve demultiplexes messages from the primary until the connection
// closes. Run it in its own goroutine.
func (c *Client) Serve() error {
	for {
		mt, payload, release, err := c.conn.Recv()
		if err != nil {
			c.errMu.Lock()
			c.err = err
			c.errMu.Unlock()
			c.bootOnce.Do(func() { close(c.bootDone) })
			c.doneOnce.Do(func() { close(c.done) })
			return err
		}
		switch mt {
		case msgUpdates:
			err = c.handleUpdates(payload)
		case msgSyncReply:
			if len(payload) >= 8 {
				c.syncReply <- binary.LittleEndian.Uint64(payload)
			}
		case msgBootRows:
			err = c.handleBootRows(payload)
		case msgBootDone:
			if len(payload) >= 8 {
				vid := binary.LittleEndian.Uint64(payload)
				if c.staged != nil {
					c.replica.InstallReload(c.staged, vid)
					// Later pushes belong to the live queue: the reload
					// (and the pushes buffered inside it) is already
					// queued ahead of them for the next apply round.
					c.staged = nil
				} else {
					c.replica.SetFloor(vid)
				}
				c.bootOnce.Do(func() { c.bootDone <- vid })
			}
		default:
			err = fmt.Errorf("replica: unexpected message type %d", mt)
		}
		if release != nil {
			release()
		}
		if err != nil {
			c.errMu.Lock()
			c.err = err
			c.errMu.Unlock()
			c.doneOnce.Do(func() { close(c.done) })
			return err
		}
	}
}

func (c *Client) handleUpdates(payload []byte) error {
	if len(payload) < 12 {
		return errors.New("replica: short updates message")
	}
	upTo := binary.LittleEndian.Uint64(payload)
	n := int(binary.LittleEndian.Uint32(payload[8:]))
	pos := 12
	batches := make([]proplog.Batch, 0, n)
	for i := 0; i < n; i++ {
		if len(payload)-pos < 4 {
			return errors.New("replica: truncated updates message")
		}
		bl := int(binary.LittleEndian.Uint32(payload[pos:]))
		pos += 4
		if len(payload)-pos < bl {
			return errors.New("replica: truncated batch")
		}
		// Copy: decoded entries alias the receive buffer, which is
		// recycled after this handler returns, while entries stay
		// queued until the next OLAP batch boundary.
		chunk := append([]byte(nil), payload[pos:pos+bl]...)
		pos += bl
		b, err := proplog.Decode(chunk)
		if err != nil {
			return err
		}
		batches = append(batches, b)
	}
	if c.staged != nil {
		// Resync in flight: the replica's data predates the outage, so
		// these pushes must not reach its live pending queue (an apply
		// round would lay them over data missing the outage gap, and the
		// reload would then wipe them for good). Buffer them in the
		// staged Reload; InstallReload splices them into the queue
		// atomically with the snapshot.
		c.staged.ApplyUpdates(batches, upTo)
		return nil
	}
	c.replica.ApplyUpdates(batches, upTo)
	return nil
}

func (c *Client) handleBootRows(payload []byte) error {
	if len(payload) < 6 {
		return errors.New("replica: short bootstrap message")
	}
	id := storage.TableID(binary.LittleEndian.Uint16(payload))
	n := int(binary.LittleEndian.Uint32(payload[2:]))
	pos := 6
	for i := 0; i < n; i++ {
		if len(payload)-pos < 12 {
			return errors.New("replica: truncated bootstrap row")
		}
		rowID := binary.LittleEndian.Uint64(payload[pos:])
		l := int(binary.LittleEndian.Uint32(payload[pos+8:]))
		pos += 12
		if len(payload)-pos < l {
			return errors.New("replica: truncated bootstrap tuple")
		}
		tup := append([]byte(nil), payload[pos:pos+l]...)
		pos += l
		if c.staged != nil {
			if err := c.staged.LoadTuple(id, rowID, tup); err != nil {
				return err
			}
		} else if err := c.replica.LoadTuple(id, rowID, tup); err != nil {
			return err
		}
	}
	return nil
}

// WaitBootstrap blocks until the snapshot finished loading and returns
// its VID.
func (c *Client) WaitBootstrap() (uint64, error) {
	v, ok := <-c.bootDone
	if !ok {
		c.errMu.Lock()
		defer c.errMu.Unlock()
		return 0, fmt.Errorf("replica: connection failed during bootstrap: %v", c.err)
	}
	return v, nil
}

// SyncUpdates implements olap.Primary: it performs one sync round trip
// with the primary node. By the time the reply arrives, every update it
// covers has been enqueued (ordered channel).
func (c *Client) SyncUpdates() uint64 {
	c.syncMu.Lock()
	defer c.syncMu.Unlock()
	if err := c.conn.Send(msgSync, nil); err != nil {
		c.syncLive.Store(false)
		return c.replica.Covered()
	}
	select {
	case v := <-c.syncReply:
		c.syncLive.Store(true)
		return v
	case <-c.done:
		// Connection lost: fall back to what we already hold so the
		// OLAP dispatcher keeps serving (stale but consistent data).
		c.syncLive.Store(false)
		return c.replica.Covered()
	}
}

// FreshSync reports whether the most recent SyncUpdates round-tripped
// to the primary.
func (c *Client) FreshSync() bool { return c.syncLive.Load() }
