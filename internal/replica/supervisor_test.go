package replica

import (
	"testing"
	"time"

	"batchdb/internal/mvcc"
	"batchdb/internal/network"
	"batchdb/internal/olap"
	"batchdb/internal/oltp"
	"batchdb/internal/storage"
)

// servedCluster mirrors the root API's ServeReplicas accept loop: every
// connection gets a Publisher attached as an engine sink, a bootstrap
// snapshot shipped, and the sink detached when the connection ends — so
// a Supervisor can kill its connection, reconnect, and resync against
// it, exactly like a remote replica node against a live primary.
type servedCluster struct {
	engine *oltp.Engine
	schema *storage.Schema
	addr   string
}

// newPutEngine builds a started-but-unserved primary: a kv table and a
// "put" procedure over a fresh MVCC store.
func newPutEngine(t *testing.T) (*oltp.Engine, *storage.Schema) {
	t.Helper()
	schema := storage.NewSchema(1, "kv", []storage.Column{
		{Name: "k", Type: storage.Int64},
		{Name: "v", Type: storage.Int64},
	}, []int{0})
	store := mvcc.NewStore()
	tbl := store.CreateTable(schema, func(tup []byte) uint64 {
		return uint64(schema.GetInt64(tup, 0))
	}, 1024)
	engine, err := oltp.New(store, oltp.Config{Workers: 2, PushPeriod: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	engine.Register("put", func(tx *mvcc.Txn, args []byte) ([]byte, error) {
		tup := schema.NewTuple()
		schema.PutInt64(tup, 0, int64(leU64(args)))
		schema.PutInt64(tup, 1, int64(leU64(args[8:])))
		_, err := tx.Insert(tbl, tup)
		return nil, err
	})
	return engine, schema
}

// serveReplicaConns runs the primary-side accept loop for replica
// connections on l, mirroring the root API's ServeReplicas.
func serveReplicaConns(engine *oltp.Engine, l *network.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		pub := NewPublisher(conn, engine)
		engine.AddSink(pub)
		go func() {
			pub.Serve()
			engine.RemoveSink(pub)
		}()
		go func() {
			if _, err := ShipSnapshot(conn, engine.Store(), []storage.TableID{1}, 64); err != nil {
				conn.Close()
			}
		}()
	}
}

func newServedCluster(t *testing.T) *servedCluster {
	t.Helper()
	engine, schema := newPutEngine(t)
	l, err := network.Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	go serveReplicaConns(engine, l)
	engine.Start()
	t.Cleanup(func() {
		l.Close()
		engine.Close()
	})
	return &servedCluster{engine: engine, schema: schema, addr: l.Addr()}
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func (sc *servedCluster) put(t *testing.T, from, to int64) {
	t.Helper()
	for i := from; i <= to; i++ {
		if r := sc.engine.Exec("put", args2(i, i)); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
}

func newTestSupervisor(sc *servedCluster) (*Supervisor, *olap.Replica) {
	rep := olap.NewReplica(2)
	rep.CreateTable(sc.schema, 1024)
	sup := NewSupervisor(sc.addr, rep, SupervisorConfig{
		Retry:          network.RetryPolicy{Attempts: 20, BaseDelay: 5 * time.Millisecond},
		ReconnectPause: 10 * time.Millisecond,
	})
	sup.Start()
	return sup, rep
}

// converge drives sync + apply rounds (what the OLAP scheduler does
// between query batches) until the replica's applied VID reaches the
// primary's committed watermark.
func converge(t *testing.T, sup *Supervisor, rep *olap.Replica, sc *servedCluster) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		covered := sup.SyncUpdates()
		if _, err := rep.ApplyPending(covered); err != nil {
			t.Fatal(err)
		}
		if rep.AppliedVID() >= sc.engine.LatestVID() && sup.Status().Connected {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica did not converge: applied %d, primary %d, connected %v",
				rep.AppliedVID(), sc.engine.LatestVID(), sup.Status().Connected)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A replica whose connection is killed must reconnect, resync from a
// fresh snapshot (VID floor raised, nothing lost or double-applied),
// and catch up to the primary's commit watermark.
func TestSupervisorKillReconnectResync(t *testing.T) {
	sc := newServedCluster(t)
	sup, rep := newTestSupervisor(sc)
	defer sup.Close()
	if _, err := sup.WaitBootstrap(); err != nil {
		t.Fatal(err)
	}
	sc.put(t, 1, 50)
	converge(t, sup, rep, sc)
	if got := rep.Table(1).Live(); got != 50 {
		t.Fatalf("pre-kill rows = %d, want 50", got)
	}

	sup.KillConnection()
	sc.put(t, 51, 100) // committed while the replica is disconnected
	converge(t, sup, rep, sc)

	if got := rep.Table(1).Live(); got != 100 {
		t.Fatalf("post-reconnect rows = %d, want 100", got)
	}
	st := sup.Status()
	if st.Reconnects < 1 {
		t.Fatalf("reconnects = %d, want >= 1", st.Reconnects)
	}
	if st.Resyncs < 1 {
		t.Fatalf("resyncs = %d, want >= 1", st.Resyncs)
	}
	if !st.Connected {
		t.Fatal("not connected after recovery")
	}
	if st.Degraded <= 0 {
		t.Fatal("degraded time not accounted")
	}
}

// An injected sever mid-batch (after N received frames) must trigger
// the same reconnect + VID-floor resync, and the injected error must be
// identifiable.
func TestSupervisorSeverMidBatch(t *testing.T) {
	sc := newServedCluster(t)
	sup, rep := newTestSupervisor(sc)
	defer sup.Close()
	if _, err := sup.WaitBootstrap(); err != nil {
		t.Fatal(err)
	}
	sc.put(t, 1, 20)
	converge(t, sup, rep, sc)

	// Sever on the next frame the replica receives: the cut lands on
	// the update push carrying the new rows, mid-stream.
	sup.InjectFault(network.SeverAfter(network.FaultRecv, 1))
	sc.put(t, 21, 120)
	converge(t, sup, rep, sc)

	if got := rep.Table(1).Live(); got != 120 {
		t.Fatalf("rows after severed batch = %d, want 120", got)
	}
	st := sup.Status()
	if st.Reconnects < 1 {
		t.Fatalf("reconnects = %d, want >= 1", st.Reconnects)
	}
	if !network.IsInjectedFault(st.LastError) {
		t.Fatalf("LastError = %v, want injected fault", st.LastError)
	}
}

// The first connection is strict: an unreachable primary fails
// WaitBootstrap instead of retrying forever.
func TestSupervisorBootstrapFailFast(t *testing.T) {
	rep := olap.NewReplica(1)
	sup := NewSupervisor("127.0.0.1:1", rep, SupervisorConfig{
		Retry: network.RetryPolicy{Attempts: 2, BaseDelay: time.Millisecond},
	})
	sup.Start()
	defer sup.Close()
	done := make(chan error, 1)
	go func() {
		_, err := sup.WaitBootstrap()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("bootstrap succeeded against a dead address")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("WaitBootstrap hung on unreachable primary")
	}
}

// Close must sever a connection that is still mid-bootstrap: the
// supervisor records the dialing connection before WaitBootstrap
// succeeds, so a primary that wedges while shipping the snapshot cannot
// make Close (or the KillConnection drill) block forever.
func TestSupervisorCloseDuringWedgedBootstrap(t *testing.T) {
	l, err := network.Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// A primary that accepts and then wedges: no snapshot, no bootDone.
	conns := make(chan *network.Conn, 4)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			conns <- c
		}
	}()

	sup := NewSupervisor(l.Addr(), olap.NewReplica(1), SupervisorConfig{
		Retry: network.RetryPolicy{Attempts: 2, BaseDelay: time.Millisecond},
	})
	sup.Start()
	// Wait until the wedged primary holds the supervisor's connection
	// (the client is now blocked waiting for a bootstrap that never
	// arrives).
	select {
	case c := <-conns:
		defer c.Close()
	case <-time.After(5 * time.Second):
		t.Fatal("supervisor never dialed")
	}

	done := make(chan struct{})
	go func() { sup.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung while the primary wedged mid-bootstrap")
	}
	if _, err := sup.WaitBootstrap(); err == nil {
		t.Fatal("WaitBootstrap reported success against a wedged primary")
	}
}

// Close is idempotent and leaves no goroutine blocked.
func TestSupervisorCloseIdempotent(t *testing.T) {
	sc := newServedCluster(t)
	sup, _ := newTestSupervisor(sc)
	if _, err := sup.WaitBootstrap(); err != nil {
		t.Fatal(err)
	}
	sup.Close()
	sup.Close()
	if sup.Status().Connected {
		t.Fatal("still connected after Close")
	}
}
