package replica

import (
	"testing"
	"time"

	"batchdb/internal/storage"
)

// A replica whose connection to the primary dies must keep answering
// queries from its last consistent snapshot: SyncUpdates falls back to
// the highest covered VID instead of blocking forever.
func TestSyncAfterConnectionLoss(t *testing.T) {
	c := newCluster(t)
	c.engine.Start()
	for i := int64(1); i <= 10; i++ {
		if r := c.engine.Exec("put", args2(i, i)); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	covered := c.client.SyncUpdates()
	if covered != 10 {
		t.Fatalf("covered = %d", covered)
	}
	if _, err := c.replica.ApplyPending(covered); err != nil {
		t.Fatal(err)
	}

	// Kill the transport.
	c.pub.conn.Close()

	done := make(chan uint64, 1)
	go func() { done <- c.client.SyncUpdates() }()
	select {
	case v := <-done:
		if v != covered {
			t.Fatalf("fallback covered = %d, want %d", v, covered)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("SyncUpdates blocked after connection loss")
	}
	// The replica's data stays queryable (stale but consistent).
	if c.replica.Table(1).Live() != 10 {
		t.Fatalf("replica lost data after disconnect: %d rows", c.replica.Table(1).Live())
	}
}

// WaitBootstrap must fail fast when the connection dies before the
// snapshot completes.
func TestBootstrapFailure(t *testing.T) {
	c := newCluster(t)
	c.pub.conn.Close() // primary side goes away before shipping
	done := make(chan error, 1)
	go func() {
		_, err := c.client.WaitBootstrap()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("WaitBootstrap succeeded with a dead primary")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("WaitBootstrap hung on dead connection")
	}
}

// Updates received both via bootstrap snapshot and the live feed are
// applied exactly once (the VID-floor dedup).
func TestFloorPreventsDoubleApply(t *testing.T) {
	c := newCluster(t)
	c.engine.Start()
	// Commit before the snapshot so these rows are in both the snapshot
	// and (because the sink is attached from the start) the update feed.
	for i := int64(1); i <= 20; i++ {
		if r := c.engine.Exec("put", args2(i, 5)); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	c.engine.SyncUpdates() // push the updates into the feed
	if _, err := ShipSnapshot(c.pub.conn, c.engine.Store(), tableIDs1(), 8); err != nil {
		t.Fatal(err)
	}
	if _, err := c.client.WaitBootstrap(); err != nil {
		t.Fatal(err)
	}
	covered := c.client.SyncUpdates()
	if _, err := c.replica.ApplyPending(covered); err != nil {
		t.Fatalf("double-apply not deduplicated: %v", err)
	}
	if got := c.replica.Table(1).Live(); got != 20 {
		t.Fatalf("rows = %d, want 20", got)
	}
	// Post-snapshot updates still apply.
	for i := int64(21); i <= 25; i++ {
		if r := c.engine.Exec("put", args2(i, 1)); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	covered = c.client.SyncUpdates()
	if _, err := c.replica.ApplyPending(covered); err != nil {
		t.Fatal(err)
	}
	if got := c.replica.Table(1).Live(); got != 25 {
		t.Fatalf("rows after live updates = %d, want 25", got)
	}
}

func tableIDs1() []storage.TableID { return []storage.TableID{1} }
