package replica

import (
	"testing"
	"time"

	"batchdb/internal/network"
	"batchdb/internal/storage"
)

// A replica whose connection to the primary dies must keep answering
// queries from its last consistent snapshot: SyncUpdates falls back to
// the highest covered VID instead of blocking forever.
func TestSyncAfterConnectionLoss(t *testing.T) {
	c := newCluster(t)
	c.engine.Start()
	for i := int64(1); i <= 10; i++ {
		if r := c.engine.Exec("put", args2(i, i)); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	covered := c.client.SyncUpdates()
	if covered != 10 {
		t.Fatalf("covered = %d", covered)
	}
	if _, err := c.replica.ApplyPending(covered); err != nil {
		t.Fatal(err)
	}

	// Kill the transport.
	c.pub.conn.Close()

	done := make(chan uint64, 1)
	go func() { done <- c.client.SyncUpdates() }()
	select {
	case v := <-done:
		if v != covered {
			t.Fatalf("fallback covered = %d, want %d", v, covered)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("SyncUpdates blocked after connection loss")
	}
	// The replica's data stays queryable (stale but consistent).
	if c.replica.Table(1).Live() != 10 {
		t.Fatalf("replica lost data after disconnect: %d rows", c.replica.Table(1).Live())
	}
}

// WaitBootstrap must fail fast when the connection dies before the
// snapshot completes.
func TestBootstrapFailure(t *testing.T) {
	c := newCluster(t)
	c.pub.conn.Close() // primary side goes away before shipping
	done := make(chan error, 1)
	go func() {
		_, err := c.client.WaitBootstrap()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("WaitBootstrap succeeded with a dead primary")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("WaitBootstrap hung on dead connection")
	}
}

// Updates received both via bootstrap snapshot and the live feed are
// applied exactly once (the VID-floor dedup).
func TestFloorPreventsDoubleApply(t *testing.T) {
	c := newCluster(t)
	c.engine.Start()
	// Commit before the snapshot so these rows are in both the snapshot
	// and (because the sink is attached from the start) the update feed.
	for i := int64(1); i <= 20; i++ {
		if r := c.engine.Exec("put", args2(i, 5)); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	c.engine.SyncUpdates() // push the updates into the feed
	if _, err := ShipSnapshot(c.pub.conn, c.engine.Store(), tableIDs1(), 8); err != nil {
		t.Fatal(err)
	}
	if _, err := c.client.WaitBootstrap(); err != nil {
		t.Fatal(err)
	}
	covered := c.client.SyncUpdates()
	if _, err := c.replica.ApplyPending(covered); err != nil {
		t.Fatalf("double-apply not deduplicated: %v", err)
	}
	if got := c.replica.Table(1).Live(); got != 20 {
		t.Fatalf("rows = %d, want 20", got)
	}
	// Post-snapshot updates still apply.
	for i := int64(21); i <= 25; i++ {
		if r := c.engine.Exec("put", args2(i, 1)); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	covered = c.client.SyncUpdates()
	if _, err := c.replica.ApplyPending(covered); err != nil {
		t.Fatal(err)
	}
	if got := c.replica.Table(1).Live(); got != 25 {
		t.Fatalf("rows after live updates = %d, want 25", got)
	}
}

// Updates pushed while a resync snapshot is in flight must not leak
// into the replica's live pending queue: an apply round running
// mid-resync (the OLAP dispatcher does not stop for a reconnect) would
// lay them over stale data that is missing the outage gap, and the
// installed snapshot would then wipe their effect for good.
func TestResyncBuffersLiveUpdates(t *testing.T) {
	c := newCluster(t)
	c.engine.Start()
	// Baseline: rows 1..10 applied on the replica.
	for i := int64(1); i <= 10; i++ {
		if r := c.engine.Exec("put", args2(i, i)); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if _, err := c.replica.ApplyPending(c.client.SyncUpdates()); err != nil {
		t.Fatal(err)
	}
	if got := c.replica.Table(1).Live(); got != 10 {
		t.Fatalf("baseline rows = %d, want 10", got)
	}

	// Outage: the connection dies and rows 11..20 commit unseen — the
	// gap only a fresh snapshot can close.
	c.pub.conn.Close()
	for i := int64(11); i <= 20; i++ {
		if r := c.engine.Exec("put", args2(i, i)); r.Err != nil {
			t.Fatal(r.Err)
		}
	}

	// Reconnect with a resync client; the stale data keeps serving.
	l, err := network.Listen("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	connCh := make(chan *network.Conn, 1)
	go func() {
		if sc, err := l.Accept(); err == nil {
			connCh <- sc
		}
	}()
	cliConn, err := network.Dial(l.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srvConn := <-connCh
	l.Close()
	t.Cleanup(func() { cliConn.Close(); srvConn.Close() })
	pub := NewPublisher(srvConn, c.engine)
	c.engine.SetSink(pub)
	cli := NewResyncClient(cliConn, c.replica)
	go pub.Serve()
	go cli.Serve()

	// Rows 21..25 commit and are pushed before the snapshot has even
	// started shipping. The sync round trip is the ordering barrier: once
	// it returns, the client has consumed the pushes.
	for i := int64(21); i <= 25; i++ {
		if r := c.engine.Exec("put", args2(i, i)); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	cli.SyncUpdates()

	// A mid-resync apply round (the dispatcher's degraded path targets
	// the highest covered VID) must see none of that traffic.
	if _, err := c.replica.ApplyPending(c.replica.Covered()); err != nil {
		t.Fatal(err)
	}
	if got := c.replica.Table(1).Live(); got != 10 {
		t.Fatalf("resync-era updates leaked onto stale data: live = %d, want 10", got)
	}

	// Ship the snapshot and let the client install it; with post-boot
	// traffic on top, the replica must converge with nothing lost and
	// nothing double-applied.
	if _, err := ShipSnapshot(srvConn, c.engine.Store(), tableIDs1(), 8); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.WaitBootstrap(); err != nil {
		t.Fatal(err)
	}
	for i := int64(26); i <= 30; i++ {
		if r := c.engine.Exec("put", args2(i, i)); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if _, err := c.replica.ApplyPending(cli.SyncUpdates()); err != nil {
		t.Fatal(err)
	}
	if got := c.replica.Table(1).Live(); got != 30 {
		t.Fatalf("rows after resync = %d, want 30", got)
	}
}

func tableIDs1() []storage.TableID { return []storage.TableID{1} }
