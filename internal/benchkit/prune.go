package benchkit

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"time"

	"batchdb/internal/chbench"
	"batchdb/internal/mvcc"
	"batchdb/internal/olap"
	"batchdb/internal/olap/exec"
	"batchdb/internal/oltp"
	"batchdb/internal/tpcc"
)

// PruneOpts parameterizes the zone-map pruning benchmark: a CH-scale
// snapshot plus a stream of fresh orders applied through the update
// pipeline, then a selectivity sweep of `ol_o_id >= cutoff` scans with
// pruning on vs off, and a warm ApplyPending round timed with and
// without zone-map maintenance.
type PruneOpts struct {
	Scale      tpcc.Scale
	Partitions int
	// Workers is the engine worker count of the sweep scans.
	Workers int
	// Reps is the timed repetitions per cell (best-of).
	Reps int
	// MorselTuples sets both the morsel size and the zone-map block
	// size. Smaller than the engine default on purpose: the sweep wants
	// several blocks per partition even at laptop scale.
	MorselTuples int
	// AppendOrders is how many NewOrder transactions are pushed through
	// the OLTP engine and applied before the sweep (~10% of the initial
	// order-line count by default). Fresh lines carry o_ids above the
	// initial population's ceiling and land clustered in tail blocks.
	AppendOrders int
	OLTPWorkers  int
	Seed         int64
}

// PrunePoint is one selectivity cell of the sweep. Selectivity and skip
// rates are measured, not the nominal target.
type PrunePoint struct {
	// Target is the nominal selectivity label ("10%", "1%", ...).
	Target string `json:"target"`
	// Cutoff is the ol_o_id lower bound realizing the target.
	Cutoff int64 `json:"cutoff"`
	// Selectivity is matched rows / live rows, measured.
	Selectivity float64 `json:"selectivity"`
	Rows        int     `json:"rows"`
	// WallOnNS / WallOffNS are best-of-reps scan times with pruning
	// enabled / disabled (same replica, zone maps maintained in both).
	WallOnNS  int64   `json:"wall_on_ns"`
	WallOffNS int64   `json:"wall_off_ns"`
	Speedup   float64 `json:"speedup"`
	// BlocksScanned/BlocksSkipped/TuplesPruned are the pruning-on
	// dispatch counts of one scan.
	BlocksScanned int64   `json:"blocks_scanned"`
	BlocksSkipped int64   `json:"blocks_skipped"`
	TuplesPruned  int64   `json:"tuples_pruned"`
	SkipFrac      float64 `json:"skip_frac"`
}

// PruneQueryStats records the morsel skip rate of one CH-benCHmark
// query on the same snapshot (zero for queries with no pushed-down
// range, e.g. string predicates).
type PruneQueryStats struct {
	Name          string  `json:"name"`
	BlocksScanned int64   `json:"blocks_scanned"`
	BlocksSkipped int64   `json:"blocks_skipped"`
	SkipFrac      float64 `json:"skip_frac"`
}

// PruneSummary is the JSON record written to BENCH_PRUNE.json.
type PruneSummary struct {
	GOMAXPROCS   int    `json:"gomaxprocs"`
	NumCPU       int    `json:"num_cpu"`
	Note         string `json:"note"`
	Warehouses   int    `json:"warehouses"`
	Partitions   int    `json:"partitions"`
	Workers      int    `json:"workers"`
	MorselTuples int    `json:"morsel_tuples"`
	// OrderLines is the live order-line count at sweep time;
	// AppendedLines of those arrived through the apply pipeline.
	OrderLines    int `json:"order_lines"`
	AppendedLines int `json:"appended_lines"`

	Sweep []PrunePoint      `json:"sweep"`
	CH    []PruneQueryStats `json:"ch_queries"`

	// ApplyWarmOnNSPerEntry / ApplyWarmOffNSPerEntry time the same warm
	// ApplyPending round (identical captured stream, equal workers) on a
	// replica with zone maps enabled vs one without (best over the
	// pairs); OverheadFrac is the median over pairs of the per-pair
	// on/off ratio minus one — the maintenance cost the ≤10% budget
	// bounds.
	ApplyWarmOnNSPerEntry  float64 `json:"apply_warm_on_ns_per_entry"`
	ApplyWarmOffNSPerEntry float64 `json:"apply_warm_off_ns_per_entry"`
	ApplyOverheadFrac      float64 `json:"apply_overhead_frac"`
}

// RunPrune measures zone-map morsel skipping over a CH-scale snapshot
// and the incremental-maintenance overhead of keeping the maps fresh.
func RunPrune(o PruneOpts) (*PruneSummary, error) {
	if o.Scale.Warehouses == 0 {
		o.Scale = tpcc.BenchScale(4)
	}
	if o.Partitions <= 0 {
		o.Partitions = 8
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Reps <= 0 {
		o.Reps = 5
	}
	if o.MorselTuples <= 0 {
		o.MorselTuples = 1024
	}
	if o.AppendOrders <= 0 {
		// ~10% of the initial order count: the "recent data" region the
		// low-selectivity cells land in.
		o.AppendOrders = o.Scale.Warehouses * o.Scale.DistrictsPerWarehouse *
			o.Scale.InitialOrdersPerDistrict / 10
	}
	if o.OLTPWorkers <= 0 {
		o.OLTPWorkers = 4
	}

	db := tpcc.NewDB(o.Scale)
	if err := tpcc.Generate(db, o.Seed); err != nil {
		return nil, err
	}
	// Every replica must bootstrap before the OLTP run (NewReplica
	// raises the VID floor to the primary's current snapshot). Several
	// zone-mapped / plain pairs let the warm-apply comparison take a
	// best-of instead of trusting one timing; repsOn[0] hosts the sweep.
	const applyPairs = 4
	var repsOn, repsOff []*olap.Replica
	for i := 0; i < applyPairs; i++ {
		rOn, err := chbench.NewReplica(db, o.Partitions)
		if err != nil {
			return nil, err
		}
		rOn.EnableZoneMaps(o.MorselTuples)
		rOff, err := chbench.NewReplica(db, o.Partitions)
		if err != nil {
			return nil, err
		}
		repsOn, repsOff = append(repsOn, rOn), append(repsOff, rOff)
	}
	repOn := repsOn[0]

	initialLines := repOn.Table(tpcc.TOrderLine).Live()

	// Push fresh orders through the OLTP engine in two batches so the
	// capture has a push boundary: the first half warms the apply
	// pipeline, the second half is the measured warm round.
	sink := &pushCapture{}
	e, err := oltp.New(db.Store, oltp.Config{
		Workers: o.OLTPWorkers, PushPeriod: time.Hour,
		Replicated: tpcc.ReplicatedTables(), FieldSpecific: true,
	})
	if err != nil {
		return nil, err
	}
	tpcc.RegisterProcs(e, db, false)
	e.SetSink(sink)
	e.Start()
	drv := tpcc.NewDriver(db.Scale, o.Seed+1)
	newOrders := func(n int) error {
		for i := 0; i < n; i++ {
			a := drv.NewOrder()
			for {
				r := e.Exec(tpcc.ProcNewOrder, a.Encode())
				if r.Err == nil || errors.Is(r.Err, tpcc.ErrRollback) {
					break
				}
				if !errors.Is(r.Err, mvcc.ErrConflict) {
					return r.Err
				}
			}
		}
		return nil
	}
	if err := newOrders(o.AppendOrders / 2); err != nil {
		e.Close()
		return nil, err
	}
	e.SyncUpdates()
	if err := newOrders(o.AppendOrders - o.AppendOrders/2); err != nil {
		e.Close()
		return nil, err
	}
	// Deliveries patch delivery dates onto the fresh orders, exercising
	// the zone-map widen/dirty path alongside pure inserts.
	for w := int64(1); w <= int64(o.Scale.Warehouses); w++ {
		for i := 0; i < 10; i++ {
			d := &tpcc.DeliveryArgs{WID: w, CarrierID: 1, Date: tpcc.LoadEpoch + int64(time.Hour)}
			r := e.Exec(tpcc.ProcDelivery, d.Encode())
			if r.Err != nil && !errors.Is(r.Err, mvcc.ErrConflict) {
				e.Close()
				return nil, r.Err
			}
		}
	}
	e.SyncUpdates()
	e.Close()
	if len(sink.pushes) < 2 {
		return nil, fmt.Errorf("benchkit: prune capture has %d pushes, need 2", len(sink.pushes))
	}

	sum := &PruneSummary{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Note: "sweep cells scan order_line with ol_o_id >= cutoff; cells whose cutoff falls in " +
			"the initial population (o_ids restart per district, so every block spans the whole " +
			"domain) cannot prune and show speedup ~1; cells in the appended tail (monotone o_ids) " +
			"skip nearly everything — the interactive-application 'recent data' case. Synopses " +
			"activate lazily per queried column; the warm-apply timings run with the workload's " +
			"steady-state active set (ol_o_id, ol_delivery_d, ol_quantity, o_carrier_id)",
		Warehouses: o.Scale.Warehouses, Partitions: o.Partitions,
		Workers: o.Workers, MorselTuples: o.MorselTuples,
	}

	// Synopses activate lazily, per queried column. Give every
	// zone-mapped replica the workload's steady-state active set — the
	// sweep filters on ol_o_id, the CH mix on delivery dates, carrier
	// and quantity — before the timed applies, so the warm round pays
	// the real maintenance cost of the queried columns (including the
	// patch-heavy ones) rather than zero or all-columns.
	for _, rep := range repsOn {
		rep.Table(tpcc.TOrderLine).RequestSynopses([]olap.ColRange{
			{Col: tpcc.OLOID}, {Col: tpcc.OLDeliveryD}, {Col: tpcc.OLQuantity},
		})
		rep.Table(tpcc.TOrder).RequestSynopses([]olap.ColRange{{Col: tpcc.OCarrierID}})
		rep.ActivateSynopses()
	}

	// Apply the captured stream: first push cold (pipeline warmup),
	// second push timed warm. Each prefix must use the coverage VID of
	// its own last push. Interleaved on/off rounds, GC fenced, best-of
	// across the pairs — a single timing attributes GC debt and OS noise
	// to whichever mode runs first.
	warm := func(rep *olap.Replica) (float64, error) {
		a, aUpTo := sink.prefix(1)
		rep.SetApplyWorkers(o.Workers)
		rep.ApplyUpdates(a, aUpTo)
		if _, err := rep.ApplyPending(aUpTo); err != nil {
			return 0, err
		}
		rep.ApplyUpdates(sink.suffix(1), sink.upTo)
		runtime.GC()
		t0 := time.Now()
		st, err := rep.ApplyPending(sink.upTo)
		wall := time.Since(t0)
		if err != nil {
			return 0, err
		}
		if st.Entries == 0 {
			return 0, fmt.Errorf("benchkit: warm apply round had no entries")
		}
		return float64(wall) / float64(st.Entries), nil
	}
	var ratios []float64
	for i := 0; i < applyPairs; i++ {
		// Alternate which mode runs first: the first timed apply after a
		// GC fence absorbs any leftover assist debt, and alternating
		// keeps that from charging one mode systematically.
		var on, off float64
		var err error
		if i%2 == 0 {
			on, err = warm(repsOn[i])
			if err == nil {
				off, err = warm(repsOff[i])
			}
		} else {
			off, err = warm(repsOff[i])
			if err == nil {
				on, err = warm(repsOn[i])
			}
		}
		if err != nil {
			return nil, fmt.Errorf("benchkit: prune warm apply: %w", err)
		}
		ratios = append(ratios, on/off)
		if sum.ApplyWarmOnNSPerEntry == 0 || on < sum.ApplyWarmOnNSPerEntry {
			sum.ApplyWarmOnNSPerEntry = on
		}
		if sum.ApplyWarmOffNSPerEntry == 0 || off < sum.ApplyWarmOffNSPerEntry {
			sum.ApplyWarmOffNSPerEntry = off
		}
	}
	// The overhead is the median of the per-pair on/off ratios: a pair's
	// two timings share heap size and allocator state, so their ratio is
	// far more stable than a cross-pair best-of quotient on a loaded box.
	sort.Float64s(ratios)
	sum.ApplyOverheadFrac = ratios[len(ratios)/2] - 1
	if len(ratios)%2 == 0 {
		sum.ApplyOverheadFrac = (ratios[len(ratios)/2-1]+ratios[len(ratios)/2])/2 - 1
	}

	// Collect the live o_id distribution so cutoffs hit measured, not
	// nominal, selectivities.
	ols := db.Schemas.OrderLine
	var oids []int64
	for _, p := range repOn.Table(tpcc.TOrderLine).Partitions {
		p.Scan(func(_ uint64, tup []byte) bool {
			oids = append(oids, ols.GetInt64(tup, tpcc.OLOID))
			return true
		})
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	sum.OrderLines = len(oids)
	sum.AppendedLines = len(oids) - initialLines

	eng := exec.NewEngine(repOn, o.Workers)
	eng.MorselTuples = o.MorselTuples
	var stats olap.SchedulerStats
	eng.AttachStats(&stats)

	targets := []struct {
		label string
		sel   float64
	}{{"100%", 1}, {"10%", 0.1}, {"1%", 0.01}, {"0.1%", 0.001}}
	for _, tg := range targets {
		idx := int(float64(len(oids)) * (1 - tg.sel))
		if idx >= len(oids) {
			idx = len(oids) - 1
		}
		cutoff := oids[idx]
		matched := len(oids) - sort.Search(len(oids), func(i int) bool { return oids[i] >= cutoff })
		q := &exec.Query{
			Name:   "prune" + tg.label,
			Driver: tpcc.TOrderLine,
			Where:  []exec.Pred{exec.CmpInt(tpcc.OLOID, exec.GE, cutoff)},
			Aggs: []exec.AggSpec{
				{Kind: exec.Sum, Value: func(d []byte, _ [][]byte) float64 { return ols.GetFloat64(d, tpcc.OLAmount) }},
				{Kind: exec.Count},
			},
		}
		run := func(disable bool) (exec.Result, time.Duration, error) {
			eng.DisablePruning = disable
			res := eng.RunBatch([]*exec.Query{q}, 0) // warmup + result capture
			if res[0].Err != nil {
				return res[0], 0, res[0].Err
			}
			wall := bestOf(o.Reps, func() error {
				return eng.RunBatch([]*exec.Query{q}, 0)[0].Err
			})
			if wall < 0 {
				return res[0], 0, fmt.Errorf("benchkit: prune scan failed")
			}
			return res[0], wall, nil
		}
		// One counted run for the dispatch stats, outside the timing.
		s0, k0, t0 := stats.ExecBlocksScanned.Load(), stats.ExecBlocksSkipped.Load(), stats.ExecTuplesPruned.Load()
		eng.DisablePruning = false
		if r := eng.RunBatch([]*exec.Query{q}, 0); r[0].Err != nil {
			return nil, r[0].Err
		}
		scanned := int64(stats.ExecBlocksScanned.Load() - s0)
		skipped := int64(stats.ExecBlocksSkipped.Load() - k0)
		pruned := int64(stats.ExecTuplesPruned.Load() - t0)

		resOn, wallOn, err := run(false)
		if err != nil {
			return nil, err
		}
		resOff, wallOff, err := run(true)
		if err != nil {
			return nil, err
		}
		if resOn.Rows != resOff.Rows || !aggsClose(resOn.Values, resOff.Values) {
			return nil, fmt.Errorf("benchkit: pruning changed %s results: %d/%v vs %d/%v",
				q.Name, resOn.Rows, resOn.Values, resOff.Rows, resOff.Values)
		}
		pt := PrunePoint{
			Target: tg.label, Cutoff: cutoff, Rows: matched,
			Selectivity: float64(matched) / float64(len(oids)),
			WallOnNS:    int64(wallOn), WallOffNS: int64(wallOff),
			BlocksScanned: scanned, BlocksSkipped: skipped, TuplesPruned: pruned,
		}
		if wallOn > 0 {
			pt.Speedup = float64(wallOff) / float64(wallOn)
		}
		if scanned+skipped > 0 {
			pt.SkipFrac = float64(skipped) / float64(scanned+skipped)
		}
		sum.Sweep = append(sum.Sweep, pt)
	}

	// CH-benCHmark skip rates: what the declarative predicates of the
	// real query mix buy on this snapshot. A first pass registers each
	// query's pushed-down columns; activation then materializes their
	// bounds so the measured pass prunes — the scheduler gets the same
	// effect from the apply round between batches.
	g := chbench.NewGen(db.Schemas, o.Seed+2)
	eng.DisablePruning = false
	chQueries := make([]*exec.Query, len(chbench.QueryNames))
	for i, name := range chbench.QueryNames {
		chQueries[i] = g.ByName(name)
		if res := eng.RunBatch([]*exec.Query{chQueries[i]}, 0); res[0].Err != nil {
			return nil, fmt.Errorf("benchkit: prune CH %s: %w", name, res[0].Err)
		}
	}
	repOn.ActivateSynopses()
	for i, name := range chbench.QueryNames {
		s0, k0 := stats.ExecBlocksScanned.Load(), stats.ExecBlocksSkipped.Load()
		res := eng.RunBatch([]*exec.Query{chQueries[i]}, 0)
		if res[0].Err != nil {
			return nil, fmt.Errorf("benchkit: prune CH %s: %w", name, res[0].Err)
		}
		qs := PruneQueryStats{
			Name:          name,
			BlocksScanned: int64(stats.ExecBlocksScanned.Load() - s0),
			BlocksSkipped: int64(stats.ExecBlocksSkipped.Load() - k0),
		}
		if tot := qs.BlocksScanned + qs.BlocksSkipped; tot > 0 {
			qs.SkipFrac = float64(qs.BlocksSkipped) / float64(tot)
		}
		sum.CH = append(sum.CH, qs)
	}
	return sum, nil
}

func aggsClose(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		d := a[i] - b[i]
		if d > 1e-6 || d < -1e-6 {
			return false
		}
	}
	return true
}
