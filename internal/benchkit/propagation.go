package benchkit

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"batchdb/internal/chbench"
	"batchdb/internal/colstore"
	"batchdb/internal/mvcc"
	"batchdb/internal/network"
	"batchdb/internal/olap"
	"batchdb/internal/proplog"
	"batchdb/internal/resmodel"
	"batchdb/internal/storage"
	"batchdb/internal/tpcc"
)

// PropagationOpts parameterizes the update-propagation microbenchmark
// (paper §8.3, Fig. 6 and Table 1).
type PropagationOpts struct {
	Scale      tpcc.Scale
	Workers    int
	Clients    int
	Duration   time.Duration
	Seed       int64
	Partitions int
	// Cores lists the OLAP core counts to project rates for (Fig. 6's
	// x-axis). Defaults to 1..40 in paper steps.
	Cores []int
}

// PropagationVariant names one curve of Fig. 6.
type PropagationVariant struct {
	ColumnStore   bool
	FieldSpecific bool
}

func (v PropagationVariant) String() string {
	s := "row"
	if v.ColumnStore {
		s = "column"
	}
	if v.FieldSpecific {
		return s + "/field-specific"
	}
	return s + "/whole-tuple"
}

// PropagationResult reports one variant's apply measurements.
type PropagationResult struct {
	Variant PropagationVariant
	// Entries is the number of applied physical update-log entries
	// (field patches count individually).
	Entries int
	// Tuples is the number of inserted/updated/deleted tuples — the
	// paper's #Tup of eq. 1 (a multi-field update counts once).
	Tuples int
	// Txns is the number of committed update transactions (#Txn, eq. 2).
	Txns uint64
	// Step1/2/3 are CPU times (step 3 summed over partition workers).
	Step1, Step2, Step3 time.Duration
	// PerTable breaks the row-store apply down by relation (Table 1).
	PerTable map[storage.TableID]*olap.TableApplyStats
	// RateAtCores maps a projected OLAP core count to (Ptup, Ptxn):
	// measured single-core work combined with the Amdahl model of
	// internal/resmodel (step 1 serial, steps 2-3 parallel).
	RateAtCores map[int][2]float64
	// MeasuredPtup and MeasuredPtxn are the raw host measurements
	// (no projection): entries / CPU-time and txns / CPU-time.
	MeasuredPtup, MeasuredPtxn float64
	// FrameAlloc compares per-push allocation of encoding this
	// granularity's captured update stream into propagation frames with
	// and without the network frame-buffer pool. Identical for the row
	// and column variant of one granularity (same stream).
	FrameAlloc FrameAllocStats
}

// FrameAllocStats reports the allocation cost of frame encoding for one
// captured update stream, measured both ways: fresh buffer per push
// (the pre-pool behaviour) vs drawing from network's frame-buffer pool
// (what replica.Publisher does on the wire path).
type FrameAllocStats struct {
	// Pushes is the number of captured ApplyUpdates calls.
	Pushes int
	// UnpooledBytesPerPush / PooledBytesPerPush are heap bytes
	// allocated per encoded push; the Allocs pair counts heap objects.
	UnpooledBytesPerPush  float64
	PooledBytesPerPush    float64
	UnpooledAllocsPerPush float64
	PooledAllocsPerPush   float64
}

// captureSink records pushed batches grouped by (worker, table),
// remembering push boundaries so frame encoding can be replayed
// push-by-push.
type captureSink struct {
	mu      sync.Mutex
	batches []proplog.Batch
	// pushes holds the batch count of each ApplyUpdates call.
	pushes []int
	upTo   uint64
}

func (c *captureSink) ApplyUpdates(batches []proplog.Batch, upTo uint64) {
	c.mu.Lock()
	c.pushes = append(c.pushes, len(batches))
	// Copy the entry slices (entry Data aliases immutable MVCC record
	// images, which the Go GC keeps alive for us).
	for _, b := range batches {
		nb := proplog.Batch{Worker: b.Worker}
		for _, tb := range b.Tables {
			ntb := proplog.TableBatch{Table: tb.Table}
			ntb.Entries = append([]proplog.Entry(nil), tb.Entries...)
			nb.Tables = append(nb.Tables, ntb)
		}
		c.batches = append(c.batches, nb)
	}
	if upTo > c.upTo {
		c.upTo = upTo
	}
	c.mu.Unlock()
}

// RunPropagation generates a TPC-C update stream once per granularity
// and measures applying it to a row-store replica and a column-store
// replica.
func RunPropagation(o PropagationOpts) ([]PropagationResult, error) {
	if len(o.Cores) == 0 {
		o.Cores = []int{1, 2, 5, 10, 20, 30, 40}
	}
	var out []PropagationResult
	for _, field := range []bool{true, false} {
		db := tpcc.NewDB(o.Scale)
		if err := tpcc.Generate(db, o.Seed); err != nil {
			return nil, err
		}
		// Bootstrap both replicas from the same initial state, plus
		// scratch copies used for an unmeasured warmup apply (the first
		// pass over a fresh replica pays page faults and allocator
		// growth that would distort the variant comparison).
		rowRep, err := chbench.NewReplica(db, o.Partitions)
		if err != nil {
			return nil, err
		}
		rowWarm, err := chbench.NewReplica(db, o.Partitions)
		if err != nil {
			return nil, err
		}
		colRep := newColReplica(db, o.Partitions)
		colWarm := newColReplica(db, o.Partitions)

		sink := &captureSink{}
		res, err := func() (OLTPResult, error) {
			return RunOLTPOn(db, OLTPOpts{
				Scale: o.Scale, Workers: o.Workers, Clients: o.Clients,
				Duration: o.Duration, Seed: o.Seed + 1000,
				FieldSpecific: field, Sink: sink, NewOrderOnly: false,
			})
		}()
		if err != nil {
			return nil, err
		}

		entries := 0
		for _, b := range sink.batches {
			for _, tb := range b.Tables {
				entries += len(tb.Entries)
			}
		}

		// Warmup applies (unmeasured).
		rowWarm.ApplyUpdates(sink.batches, sink.upTo)
		if _, err := rowWarm.ApplyPending(sink.upTo); err != nil {
			return nil, fmt.Errorf("row warmup apply (%v): %w", field, err)
		}
		if _, _, _, _, _, err := colWarm.apply(sink.batches); err != nil {
			return nil, fmt.Errorf("column warmup apply (%v): %w", field, err)
		}

		// Row store: the replica's own 3-step apply, instrumented.
		rowRep.ApplyUpdates(sink.batches, sink.upTo)
		st, err := rowRep.ApplyPending(sink.upTo)
		if err != nil {
			return nil, fmt.Errorf("row apply (%v): %w", field, err)
		}
		rowTuples := 0
		for _, ts := range st.PerTable {
			rowTuples += ts.Inserted + ts.Updated + ts.Deleted
		}
		out = append(out, buildResult(PropagationVariant{ColumnStore: false, FieldSpecific: field},
			st.Entries, rowTuples, res.Committed, st.Step1, st.Step2, st.Step3, st.PerTable, o.Cores))

		// Column store: same algorithm against colstore partitions.
		s1, s2, s3, n, colTuples, err := colRep.apply(sink.batches)
		if err != nil {
			return nil, fmt.Errorf("column apply (%v): %w", field, err)
		}
		out = append(out, buildResult(PropagationVariant{ColumnStore: true, FieldSpecific: field},
			n, colTuples, res.Committed, s1, s2, s3, nil, o.Cores))

		// Cross-check the two layouts with morsel-dispatched scans (the
		// same dispatch shape the executor uses, over colstore.ScanRange
		// on the column side) and measure the frame-encoding allocation
		// delta for this granularity's captured stream.
		if err := verifyReplicas(rowRep, colRep, o.Workers); err != nil {
			return nil, fmt.Errorf("post-apply verification (%v): %w", field, err)
		}
		fa := measureFrameAllocs(sink)
		out[len(out)-2].FrameAlloc = fa
		out[len(out)-1].FrameAlloc = fa
	}
	return out, nil
}

// scanRanger is the morsel-scan surface shared by the row-store and
// column-store partitions.
type scanRanger interface {
	Slots() int
	ScanRange(lo, hi int, fn func(rowID uint64, tuple []byte) bool)
}

// verifyMorselTuples is the slot-range granularity of the verification
// scans — small enough that even SmallScale fixtures produce several
// morsels per partition.
const verifyMorselTuples = 4096

// morselChecksum folds an order-independent hash over every live
// (rowID, tuple) pair, dispatching fixed-size slot ranges to workers
// off an atomic cursor — the executor's morsel discipline.
func morselChecksum(parts []scanRanger, workers int) uint64 {
	type mrsl struct {
		p      scanRanger
		lo, hi int
	}
	var ms []mrsl
	for _, p := range parts {
		n := p.Slots()
		for lo := 0; lo < n; lo += verifyMorselTuples {
			hi := lo + verifyMorselTuples
			if hi > n {
				hi = n
			}
			ms = append(ms, mrsl{p, lo, hi})
		}
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(ms) {
		workers = len(ms)
	}
	var cursor atomic.Int64
	var total atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sum uint64
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(ms) {
					break
				}
				m := ms[i]
				m.p.ScanRange(m.lo, m.hi, func(rowID uint64, tup []byte) bool {
					h := rowID * 0x9E3779B97F4A7C15
					for _, b := range tup {
						h = (h ^ uint64(b)) * 1099511628211 // FNV-1a step
					}
					sum += h // commutative: morsel order doesn't matter
					return true
				})
			}
			total.Add(sum)
		}()
	}
	wg.Wait()
	return total.Load()
}

// verifyReplicas cross-checks every table of the row and column
// replicas after the measured applies. Both sides partition RowIDs
// identically, but the checksum is order-independent, so comparing per
// table is sufficient (and robust to layout details).
func verifyReplicas(rowRep *olap.Replica, colRep *colReplica, workers int) error {
	for _, id := range chbench.Tables() {
		t := rowRep.Table(id)
		if t == nil || colRep.tables[id] == nil {
			return fmt.Errorf("benchkit: table %d missing from a replica", id)
		}
		rps := make([]scanRanger, len(t.Partitions))
		for i, p := range t.Partitions {
			rps[i] = p
		}
		cps := make([]scanRanger, len(colRep.tables[id]))
		for i, p := range colRep.tables[id] {
			cps[i] = p
		}
		if r, c := morselChecksum(rps, workers), morselChecksum(cps, workers); r != c {
			return fmt.Errorf("benchkit: replica divergence on table %s (row %x != column %x)", t.Schema.Name, r, c)
		}
	}
	return nil
}

// appendFrame encodes one update push exactly like the replication
// publisher's wire path (header, batch count, length-prefixed batches).
func appendFrame(buf []byte, batches []proplog.Batch, upTo uint64) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, upTo)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(batches)))
	for i := range batches {
		lenPos := len(buf)
		buf = append(buf, 0, 0, 0, 0)
		buf = proplog.AppendEncode(buf, &batches[i])
		binary.LittleEndian.PutUint32(buf[lenPos:], uint32(len(buf)-lenPos-4))
	}
	return buf
}

// frameSink keeps the encoded frames observable so the encoding loops
// below cannot be optimized away.
var frameSink int

// measureFrameAllocs replays the captured stream's pushes through the
// publisher's frame encoding twice — fresh buffer per push vs the
// network frame-buffer pool — and reports heap bytes and objects per
// push for each. The pooled pass is warmed once so it measures
// steady-state reuse, which is what the send loop sees.
func measureFrameAllocs(sink *captureSink) FrameAllocStats {
	st := FrameAllocStats{Pushes: len(sink.pushes)}
	if st.Pushes == 0 {
		return st
	}
	forEachPush := func(fn func(batches []proplog.Batch)) {
		off := 0
		for _, n := range sink.pushes {
			fn(sink.batches[off : off+n])
			off += n
		}
	}
	var ms0, ms1 runtime.MemStats

	runtime.ReadMemStats(&ms0)
	forEachPush(func(bs []proplog.Batch) {
		buf := appendFrame(nil, bs, sink.upTo)
		frameSink += len(buf)
	})
	runtime.ReadMemStats(&ms1)
	st.UnpooledBytesPerPush = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(st.Pushes)
	st.UnpooledAllocsPerPush = float64(ms1.Mallocs-ms0.Mallocs) / float64(st.Pushes)

	// Warm the pool to the largest frame, then measure reuse.
	forEachPush(func(bs []proplog.Batch) {
		buf := appendFrame(network.GetFrameBuf(), bs, sink.upTo)
		frameSink += len(buf)
		network.PutFrameBuf(buf)
	})
	runtime.ReadMemStats(&ms0)
	forEachPush(func(bs []proplog.Batch) {
		buf := appendFrame(network.GetFrameBuf(), bs, sink.upTo)
		frameSink += len(buf)
		network.PutFrameBuf(buf)
	})
	runtime.ReadMemStats(&ms1)
	st.PooledBytesPerPush = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(st.Pushes)
	st.PooledAllocsPerPush = float64(ms1.Mallocs-ms0.Mallocs) / float64(st.Pushes)
	return st
}

func buildResult(v PropagationVariant, entries, tuples int, txns uint64,
	s1, s2, s3 time.Duration, perTable map[storage.TableID]*olap.TableApplyStats,
	cores []int) PropagationResult {

	r := PropagationResult{
		Variant: v, Entries: entries, Tuples: tuples, Txns: txns,
		Step1: s1, Step2: s2, Step3: s3,
		PerTable:    perTable,
		RateAtCores: make(map[int][2]float64),
	}
	total := (s1 + s2 + s3).Seconds()
	if total > 0 {
		r.MeasuredPtup = float64(tuples) / total
		r.MeasuredPtxn = float64(txns) / total
	}
	for _, k := range cores {
		ptup := resmodel.ProjectRate(s1, s2+s3, tuples, k)
		ptxn := resmodel.ProjectRate(s1, s2+s3, int(txns), k)
		r.RateAtCores[k] = [2]float64{ptup, ptxn}
	}
	return r
}

// RunOLTPOn drives an already-generated database (so the caller can
// pre-bootstrap replicas from the same initial state).
func RunOLTPOn(db *tpcc.DB, o OLTPOpts) (OLTPResult, error) {
	e, err := newEngineFor(db, o)
	if err != nil {
		return OLTPResult{}, err
	}
	e.Start()
	defer e.Close()
	return driveOLTP(e, db, o)
}

// --- column-store replica ------------------------------------------------

// colReplica mirrors the OLAP replica's partitioning over colstore
// partitions for the §8.3 microbenchmark.
type colReplica struct {
	tables map[storage.TableID][]*colstore.Partition
}

func newColReplica(db *tpcc.DB, parts int) *colReplica {
	c := &colReplica{tables: make(map[storage.TableID][]*colstore.Partition)}
	ro := db.Store.BeginRO()
	defer ro.Release()
	for _, id := range chbench.Tables() {
		tbl := db.TableByID(id)
		ps := make([]*colstore.Partition, parts)
		for i := range ps {
			ps[i] = colstore.NewPartition(tbl.Schema, 1024)
		}
		c.tables[id] = ps
		tbl.ScanChains(func(ch *mvcc.Chain) bool {
			rec := ro.ReadChain(ch)
			if rec == nil {
				return true
			}
			p := ps[partitionOf(rec.RowID, len(ps))]
			p.Insert(rec.RowID, rec.Data)
			return true
		})
	}
	return c
}

func partitionOf(rowID uint64, parts int) int {
	return int((rowID * 0x9E3779B97F4A7C15) % uint64(parts))
}

// apply runs the 3-step algorithm over the column partitions and
// returns per-step CPU times, the entry count, and the tuple count
// (coalescing per-tuple patch runs, which is what Ptup measures).
func (c *colReplica) apply(batches []proplog.Batch) (s1, s2, s3 time.Duration, n, tuples int, err error) {
	// Group per (table, worker).
	perTable := make(map[storage.TableID]map[int][]proplog.Entry)
	for _, b := range batches {
		for _, tb := range b.Tables {
			m := perTable[tb.Table]
			if m == nil {
				m = make(map[int][]proplog.Entry)
				perTable[tb.Table] = m
			}
			m[b.Worker] = append(m[b.Worker], tb.Entries...)
		}
	}
	for id, byWorker := range perTable {
		ps := c.tables[id]
		if ps == nil {
			return s1, s2, s3, n, tuples, fmt.Errorf("benchkit: column apply to unknown table %d", id)
		}
		streams := make([][]proplog.Entry, 0, len(byWorker))
		for _, s := range byWorker {
			streams = append(streams, s)
		}
		t0 := time.Now()
		merged := olap.MergeWorkerStreams(streams)
		s1 += time.Since(t0)
		n += len(merged)

		t0 = time.Now()
		perPart := make([][]proplog.Entry, len(ps))
		for _, e := range merged {
			pi := partitionOf(e.RowID, len(ps))
			perPart[pi] = append(perPart[pi], e)
		}
		s2 += time.Since(t0)

		var wg sync.WaitGroup
		var mu sync.Mutex
		for pi, entries := range perPart {
			if len(entries) == 0 {
				continue
			}
			wg.Add(1)
			go func(p *colstore.Partition, entries []proplog.Entry) {
				defer wg.Done()
				t := time.Now()
				var aerr error
				tuplesHere := 0
				for i := 0; i < len(entries); i++ {
					e := &entries[i]
					switch e.Kind {
					case proplog.Insert:
						aerr = p.Insert(e.RowID, e.Data)
						tuplesHere++
					case proplog.Update:
						slot, ok := p.Locate(e.RowID)
						if !ok {
							aerr = fmt.Errorf("benchkit: update of unknown RowID %d", e.RowID)
							break
						}
						aerr = p.PatchSlot(slot, e.Offset, e.Data)
						for aerr == nil && i+1 < len(entries) && entries[i+1].Kind == proplog.Update &&
							entries[i+1].RowID == e.RowID && entries[i+1].VID == e.VID {
							i++
							aerr = p.PatchSlot(slot, entries[i].Offset, entries[i].Data)
						}
						tuplesHere++
					case proplog.Delete:
						aerr = p.Delete(e.RowID)
						tuplesHere++
					}
					if aerr != nil {
						break
					}
				}
				// Re-encode blocks this round staled, inside the same
				// quiesced per-partition window (a no-op when the column
				// replica runs uncompressed).
				if aerr == nil {
					p.ReencodeDirty()
				}
				d := time.Since(t)
				mu.Lock()
				s3 += d
				tuples += tuplesHere
				if aerr != nil && err == nil {
					err = aerr
				}
				mu.Unlock()
			}(ps[pi], entries)
		}
		wg.Wait()
		if err != nil {
			return s1, s2, s3, n, tuples, err
		}
	}
	return s1, s2, s3, n, tuples, nil
}
