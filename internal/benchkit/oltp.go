// Package benchkit contains the measurement harnesses that regenerate
// every table and figure of the paper's evaluation (§8). The same
// functions back the cmd/batchdb-bench CLI and the root testing.B
// benchmarks; durations and scales shrink for unit-test use.
//
// Scale note: the paper's testbed is a 40-core 4-socket machine with
// 100-200 warehouses and up to 2000 clients. This reproduction runs at
// laptop scale (configurable warehouses, tens of clients); shapes,
// ratios and crossovers are the reproduction target, not absolute
// numbers. Where a figure depends on hardware this machine lacks
// (core counts, NUMA), measured values are combined with the documented
// model in internal/resmodel and clearly labelled "projected".
package benchkit

import (
	"errors"
	"sync"
	"time"

	"batchdb/internal/metrics"
	"batchdb/internal/mvcc"
	"batchdb/internal/oltp"
	"batchdb/internal/tpcc"
)

// OLTPOpts parameterizes a standalone TPC-C run (paper Fig. 5).
type OLTPOpts struct {
	Scale    tpcc.Scale
	Workers  int
	Clients  int
	Duration time.Duration
	Warmup   time.Duration
	Seed     int64
	// ConstantSize makes New-Order trim old orders (Fig. 7 right).
	ConstantSize bool
	// Sink, when non-nil, receives propagated updates (replication on).
	Sink oltp.UpdateSink
	// FieldSpecific selects sub-tuple update extraction.
	FieldSpecific bool
	// Mix restricts the workload to New-Order only when set.
	NewOrderOnly bool
	// PushPeriod overrides the update-propagation period (default 200ms).
	PushPeriod time.Duration
}

// OLTPResult reports a standalone TPC-C run.
type OLTPResult struct {
	Throughput         float64 // committed txns/second (incl. spec rollbacks)
	Committed          uint64
	Conflicts          uint64
	P50, P90, P99, Max time.Duration
	Elapsed            time.Duration
	BusyFrac           float64 // worker busy time / elapsed (single host core)
}

// RunOLTP loads a fresh TPC-C database and drives it with closed-loop
// clients for the configured duration.
func RunOLTP(o OLTPOpts) (OLTPResult, error) {
	db := tpcc.NewDB(o.Scale)
	if err := tpcc.Generate(db, o.Seed); err != nil {
		return OLTPResult{}, err
	}
	e, err := newEngineFor(db, o)
	if err != nil {
		return OLTPResult{}, err
	}
	e.Start()
	defer e.Close()
	return driveOLTP(e, db, o)
}

// newEngineFor builds an engine for a loaded database per the options.
func newEngineFor(db *tpcc.DB, o OLTPOpts) (*oltp.Engine, error) {
	push := o.PushPeriod
	if push <= 0 {
		push = 200 * time.Millisecond
	}
	e, err := oltp.New(db.Store, oltp.Config{
		Workers:       o.Workers,
		Replicated:    tpcc.ReplicatedTables(),
		FieldSpecific: o.FieldSpecific,
		PushPeriod:    push,
	})
	if err != nil {
		return nil, err
	}
	tpcc.RegisterProcs(e, db, o.ConstantSize)
	if o.Sink != nil {
		e.SetSink(o.Sink)
	}
	return e, nil
}

// driveOLTP runs the client loop against an already-started engine.
func driveOLTP(e *oltp.Engine, db *tpcc.DB, o OLTPOpts) (OLTPResult, error) {
	var hist metrics.Histogram
	var committed, conflicts metrics.Counter
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var failure error
	var failOnce sync.Once

	measuring := make(chan struct{}) // closed when warmup ends
	for c := 0; c < o.Clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			drv := tpcc.NewDriver(db.Scale, seed)
			drv.NewOrderOnly = o.NewOrderOnly
			for {
				select {
				case <-stop:
					return
				default:
				}
				proc, args := drv.Next()
				start := time.Now()
				r := e.Exec(proc, args)
				switch {
				case r.Err == nil, errors.Is(r.Err, tpcc.ErrRollback):
					select {
					case <-measuring:
						hist.RecordSince(start)
						committed.Inc()
					default:
					}
				case errors.Is(r.Err, mvcc.ErrConflict):
					select {
					case <-measuring:
						conflicts.Inc()
					default:
					}
				case errors.Is(r.Err, oltp.ErrClosed):
					return
				default:
					failOnce.Do(func() { failure = r.Err })
					return
				}
			}
		}(o.Seed + int64(c) + 1)
	}
	time.Sleep(o.Warmup)
	busy0 := e.Stats().Busy.Busy()
	t0 := time.Now()
	close(measuring)
	time.Sleep(o.Duration)
	elapsed := time.Since(t0)
	close(stop)
	wg.Wait()
	if failure != nil {
		return OLTPResult{}, failure
	}
	busy := e.Stats().Busy.Busy() - busy0
	return OLTPResult{
		Throughput: float64(committed.Load()) / elapsed.Seconds(),
		Committed:  committed.Load(),
		Conflicts:  conflicts.Load(),
		P50:        time.Duration(hist.Percentile(50)),
		P90:        time.Duration(hist.Percentile(90)),
		P99:        time.Duration(hist.Percentile(99)),
		Max:        time.Duration(hist.Max()),
		Elapsed:    elapsed,
		BusyFrac:   busy.Seconds() / elapsed.Seconds(),
	}, nil
}
