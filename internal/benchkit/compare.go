package benchkit

import (
	"errors"
	"sync"
	"time"

	"batchdb/internal/baseline"
	"batchdb/internal/chbench"
	"batchdb/internal/metrics"
	"batchdb/internal/mvcc"
	"batchdb/internal/resmodel"
	"batchdb/internal/tpcc"
)

// BaselineOpts parameterizes a hybrid run against one of the shared
// single-replica baseline engines (paper §8.5, Fig. 8).
type BaselineOpts struct {
	Scale             tpcc.Scale
	Policy            baseline.Policy
	Workers           int
	TxnClients        int
	AnalyticalClients int
	Duration          time.Duration
	Warmup            time.Duration
	Seed              int64
}

// BaselineResult reports one (TC, AC) cell for a baseline engine.
type BaselineResult struct {
	TxnPerSec     float64
	QueriesPerMin float64
}

// RunBaseline executes one hybrid cell on a shared-engine baseline.
func RunBaseline(o BaselineOpts) (BaselineResult, error) {
	db := tpcc.NewDB(o.Scale)
	if err := tpcc.Generate(db, o.Seed); err != nil {
		return BaselineResult{}, err
	}
	e := baseline.New(db, o.Workers, o.Policy)
	defer e.Close()

	var txnCount, qryCount metrics.Counter
	var failure error
	var failOnce sync.Once
	stop := make(chan struct{})
	measuring := make(chan struct{})
	var wg sync.WaitGroup

	for c := 0; c < o.TxnClients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			drv := tpcc.NewDriver(db.Scale, seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				proc, args := drv.Next()
				r := e.ExecTxn(proc, args)
				switch {
				case r.Err == nil, errors.Is(r.Err, tpcc.ErrRollback):
					select {
					case <-measuring:
						txnCount.Inc()
					default:
					}
				case errors.Is(r.Err, mvcc.ErrConflict):
				default:
					failOnce.Do(func() { failure = r.Err })
					return
				}
			}
		}(o.Seed + int64(c) + 1)
	}
	for c := 0; c < o.AnalyticalClients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			gen := chbench.NewGen(db.Schemas, seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				res := e.Query(gen.Next())
				if res.Err != nil {
					return // engine closed
				}
				select {
				case <-measuring:
					qryCount.Inc()
				default:
				}
			}
		}(o.Seed + 10000 + int64(c))
	}
	time.Sleep(o.Warmup)
	close(measuring)
	t0 := time.Now()
	time.Sleep(o.Duration)
	elapsed := time.Since(t0)
	close(stop)
	wg.Wait()
	if failure != nil {
		return BaselineResult{}, failure
	}
	return BaselineResult{
		TxnPerSec:     float64(txnCount.Load()) / elapsed.Seconds(),
		QueriesPerMin: float64(qryCount.Load()) / elapsed.Minutes(),
	}, nil
}

// InterferenceOpts parameterizes the implicit-resource-sharing
// experiment (paper §8.6, Fig. 9): OLTP co-located with an independent
// bandwidth-intensive scan.
type InterferenceOpts struct {
	Scale    tpcc.Scale
	Workers  int
	Clients  int
	Duration time.Duration
	Warmup   time.Duration
	Seed     int64
	// ScanThreads is the number of scan goroutines (paper: 5 cores).
	ScanThreads int
	// ScanBytes sizes the scanned array (paper: larger than LLC).
	ScanBytes int
}

// InterferenceResult reports Fig. 9's three bars. MeasuredColocated
// comes from actually running scan goroutines next to the engine on
// this host (on a single-core host this mixes CPU time-sharing with
// cache pollution); the Projected values apply the proportional
// memory-bandwidth model of internal/resmodel to the paper's testbed
// (co-located: OLTP and scan saturate one socket's controller -> 0.5;
// remote NUMA node: no shared controller -> 1.0).
type InterferenceResult struct {
	BaselineTPS        float64
	MeasuredColocated  float64
	ProjectedColocated float64
	ProjectedRemote    float64
}

// RunInterference measures the three scenarios of Fig. 9.
func RunInterference(o InterferenceOpts) (InterferenceResult, error) {
	if o.ScanBytes <= 0 {
		o.ScanBytes = 64 << 20
	}
	if o.ScanThreads <= 0 {
		o.ScanThreads = 2
	}
	base, err := RunOLTP(OLTPOpts{
		Scale: o.Scale, Workers: o.Workers, Clients: o.Clients,
		Duration: o.Duration, Warmup: o.Warmup, Seed: o.Seed,
	})
	if err != nil {
		return InterferenceResult{}, err
	}

	// Co-located: independent bandwidth-intensive scans over a separate
	// dataset in the same process (paper: separate process, same NUMA
	// node — the shared resource is the memory subsystem either way).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	data := make([]int64, o.ScanBytes/8)
	for i := range data {
		data[i] = int64(i)
	}
	var blackhole int64
	for s := 0; s < o.ScanThreads; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sum int64
			for {
				select {
				case <-stop:
					blackhole += sum
					return
				default:
				}
				for i := 0; i < len(data); i += 8 {
					sum += data[i]
				}
			}
		}()
	}
	col, err := RunOLTP(OLTPOpts{
		Scale: o.Scale, Workers: o.Workers, Clients: o.Clients,
		Duration: o.Duration, Warmup: o.Warmup, Seed: o.Seed,
	})
	close(stop)
	wg.Wait()
	if err != nil {
		return InterferenceResult{}, err
	}

	// Model projection for the paper's testbed: a bandwidth-saturating
	// scan sharing the OLTP socket's memory controller halves OLTP
	// throughput; on a remote socket it contributes no demand.
	colFactor := resmodel.ThroughputFactor(1.0, 1.0, 1.0)
	remFactor := resmodel.ThroughputFactor(1.0, 1.0)
	return InterferenceResult{
		BaselineTPS:        base.Throughput,
		MeasuredColocated:  col.Throughput,
		ProjectedColocated: base.Throughput * colFactor,
		ProjectedRemote:    base.Throughput * remFactor,
	}, nil
}
