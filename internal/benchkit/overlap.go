package benchkit

import (
	"runtime"
	"time"

	"batchdb/internal/tpcc"
)

// OverlapOpts parameterizes the sub-batch freshness experiment: the
// same hybrid CH-benCHmark cell is run twice per analytical-client
// count — once with the overlap scheduler (apply rounds build the next
// snapshot version concurrently with the running batch) and once
// quiesced (apply runs exclusively between batches, the pre-overlap
// behavior) — so the sweep isolates what concurrent snapshot
// construction buys in staleness and what it costs in batch latency.
type OverlapOpts struct {
	Scale      tpcc.Scale
	TxnClients int
	// AnalyticalClients values to sweep; more clients mean bigger
	// batches, longer batch rounds, and therefore more staleness for the
	// quiesced scheduler to accumulate between applies.
	AnalyticalClients []int
	Duration          time.Duration
	Warmup            time.Duration
	Seed              int64
}

// OverlapCell is one (mode, AC) measurement.
type OverlapCell struct {
	TxnPerSec     float64
	QueriesPerMin float64
	Batches       uint64
	// BatchPeriodNS is the measured wall time between batch starts —
	// the staleness floor a quiesced scheduler cannot beat, since its
	// snapshot only advances once per batch round.
	BatchPeriodNS int64
	// Pure batch execution time (the regression guard: overlap must not
	// slow batches down by stealing their snapshot stability).
	BatchExecP50NS, BatchExecP99NS int64
	// Client-visible query latency.
	QueryP50NS, QueryP99NS int64
	// Wall-clock staleness of the installed snapshot.
	StaleP50NS, StaleP99NS int64
	// Dispatcher freshness-barrier wait (overlap mode only; the
	// quiesced path applies inline so it never waits on a barrier).
	SnapWaitP50NS, SnapWaitP99NS int64
	// Apply-round duration, off the batch path in overlap mode.
	ApplyP50NS, ApplyP99NS int64
	AppliedEntries         uint64
}

// OverlapPoint pairs the two modes at one analytical-client count.
type OverlapPoint struct {
	AnalyticalClients    int
	Overlapped, Quiesced OverlapCell
	// StaleP50Ratio is overlapped/quiesced median staleness (<1 means
	// the overlap scheduler serves fresher snapshots).
	StaleP50Ratio float64
	// BatchExecDeltaFrac is the overlap mode's median batch-execution
	// regression vs quiesced (+0.05 = 5% slower; the acceptance bound).
	BatchExecDeltaFrac float64
	// StaleBelowBatchPeriod reports whether the overlapped median
	// staleness beat the quiesced scheduler's batch-period floor.
	StaleBelowBatchPeriod bool
}

// OverlapSummary is the JSON artifact (BENCH_OVERLAP.json).
type OverlapSummary struct {
	GOMAXPROCS int
	NumCPU     int
	TxnClients int
	DurationNS int64
	Sweep      []OverlapPoint
}

// RunOverlap executes the overlapped-vs-quiesced sweep.
func RunOverlap(o OverlapOpts) (OverlapSummary, error) {
	if len(o.AnalyticalClients) == 0 {
		o.AnalyticalClients = []int{1, 4, 8}
	}
	if o.TxnClients == 0 {
		o.TxnClients = 8
	}
	sum := OverlapSummary{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		TxnClients: o.TxnClients,
		DurationNS: int64(o.Duration),
	}
	cell := func(ac int, quiesced bool) (OverlapCell, error) {
		r, err := RunHybrid(HybridOpts{
			Scale: o.Scale, OLTPWorkers: 4, OLAPWorkers: 4, Partitions: 8,
			TxnClients: o.TxnClients, AnalyticalClients: ac,
			Duration: o.Duration, Warmup: o.Warmup, Seed: o.Seed,
			ConstantSize: true, QuiescedApply: quiesced,
		})
		if err != nil {
			return OverlapCell{}, err
		}
		c := OverlapCell{
			TxnPerSec:      r.TxnPerSec,
			QueriesPerMin:  r.QueriesPerMin,
			Batches:        r.Batches,
			BatchExecP50NS: int64(r.BatchExecP50),
			BatchExecP99NS: int64(r.BatchExecP99),
			QueryP50NS:     int64(r.QueryP50),
			QueryP99NS:     int64(r.QueryP99),
			StaleP50NS:     int64(r.FreshStaleP50),
			StaleP99NS:     int64(r.FreshStaleP99),
			SnapWaitP50NS:  int64(r.SnapWaitP50),
			SnapWaitP99NS:  int64(r.SnapWaitP99),
			ApplyP50NS:     int64(r.ApplyP50),
			ApplyP99NS:     int64(r.ApplyP99),
			AppliedEntries: r.AppliedEntries,
		}
		if r.Batches > 0 {
			c.BatchPeriodNS = int64(o.Duration) / int64(r.Batches)
		}
		return c, nil
	}
	for _, ac := range o.AnalyticalClients {
		over, err := cell(ac, false)
		if err != nil {
			return sum, err
		}
		qui, err := cell(ac, true)
		if err != nil {
			return sum, err
		}
		p := OverlapPoint{AnalyticalClients: ac, Overlapped: over, Quiesced: qui}
		if qui.StaleP50NS > 0 {
			p.StaleP50Ratio = float64(over.StaleP50NS) / float64(qui.StaleP50NS)
		}
		if qui.BatchExecP50NS > 0 {
			p.BatchExecDeltaFrac = float64(over.BatchExecP50NS)/float64(qui.BatchExecP50NS) - 1
		}
		p.StaleBelowBatchPeriod = qui.BatchPeriodNS > 0 && over.StaleP50NS < qui.BatchPeriodNS
		sum.Sweep = append(sum.Sweep, p)
	}
	return sum, nil
}
