package benchkit

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"batchdb/internal/chbench"
	"batchdb/internal/olap"
	"batchdb/internal/olap/exec"
	"batchdb/internal/proplog"
	"batchdb/internal/resmodel"
	"batchdb/internal/storage"
	"batchdb/internal/tpcc"
)

// OLAPScaleOpts parameterizes the OLAP-path scaling benchmark: how
// morsel-driven scans, sharded build construction, and the parallel
// apply pipeline respond to the worker count. The scan layout is
// deliberately skewed (SkewFrac of the tuples in one partition) because
// that is exactly the case partition-granular dispatch cannot balance
// and morsel dispatch can.
type OLAPScaleOpts struct {
	// Tuples is the driver-table size of the scan experiment.
	Tuples int
	// BuildRows is the build-side table size of the build experiment.
	BuildRows int
	// Partitions is the replica partition count.
	Partitions int
	// SkewFrac is the fraction of driver tuples routed to partition 0
	// (default 0.5 — one partition holds half the data).
	SkewFrac float64
	// Workers lists the worker counts to sweep; defaults to powers of
	// two from 1 to max(8, NumCPU).
	Workers []int
	// MorselTuples overrides the engine's morsel size (0 = default).
	MorselTuples int
	// Reps is the number of timed repetitions per cell (best-of).
	Reps int
	// ApplyScale/ApplyWorkers/ApplyClients/ApplyDuration drive the
	// TPC-C update stream of the apply experiment.
	ApplyScale    tpcc.Scale
	ApplyWorkers  int
	ApplyClients  int
	ApplyDuration time.Duration
	Seed          int64
}

// OLAPScalePoint is one (worker count) cell of a scan or build sweep.
// Measured numbers are wall clock on this host; Projected* numbers come
// from the documented resource model (internal/resmodel) and are only
// meaningful where the host has fewer cores than Workers.
type OLAPScalePoint struct {
	Workers int `json:"workers"`
	// WallNS is the best-of-reps wall time of one pass.
	WallNS int64 `json:"wall_ns"`
	// ItemsPerSec is tuples (scan) or build rows (build) per wall second.
	ItemsPerSec float64 `json:"items_per_sec"`
	// MeasuredSpeedup is WallNS(workers=1) / WallNS(this cell).
	MeasuredSpeedup float64 `json:"measured_speedup"`
	// ProjectedSpeedup applies the Amdahl model to the 1-worker
	// measurement: morsel dispatch has no serial fraction, so the
	// projection is linear in workers.
	ProjectedSpeedup float64 `json:"projected_speedup"`
	// PartitionDispatchBound is the speedup ceiling of the old
	// partition-granular dispatch on this layout: the scan cannot finish
	// before its largest partition, capping speedup at 1/SkewFrac.
	PartitionDispatchBound float64 `json:"partition_dispatch_bound"`
}

// OLAPApplyPoint is one (worker count) cell of the ApplyPending sweep,
// all cells applying the identical captured TPC-C update stream.
type OLAPApplyPoint struct {
	Workers int   `json:"workers"`
	WallNS  int64 `json:"wall_ns"`
	Entries int   `json:"entries"`
	// Step1/2/3NS are the round's per-step CPU times.
	Step1NS int64 `json:"step1_ns"`
	Step2NS int64 `json:"step2_ns"`
	Step3NS int64 `json:"step3_ns"`
	// EntriesPerSec is entries / wall second (measured).
	EntriesPerSec float64 `json:"entries_per_sec"`
	// ProjectedEntriesPerSec projects the 1-worker step times onto this
	// worker count (step 1 serial, steps 2-3 parallel; resmodel).
	ProjectedEntriesPerSec float64 `json:"projected_entries_per_sec"`
}

// OLAPScaleSummary is the JSON record written to BENCH_OLAP.json.
type OLAPScaleSummary struct {
	// Host facts: with NumCPU < max(Workers), measured speedups are
	// bounded by the host, and the Projected* fields carry the scaling
	// claim (see Note).
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Note       string `json:"note"`

	Tuples       int     `json:"tuples"`
	BuildRows    int     `json:"build_rows"`
	Partitions   int     `json:"partitions"`
	SkewFrac     float64 `json:"skew_frac"`
	MorselTuples int     `json:"morsel_tuples"`

	// Scan sweeps a shared scan-only query over the skewed layout.
	Scan []OLAPScalePoint `json:"scan"`
	// Build sweeps cold shared-build construction (sharded, two-phase).
	Build []OLAPScalePoint `json:"build"`
	// Apply sweeps ApplyPending over one captured TPC-C update stream.
	Apply []OLAPApplyPoint `json:"apply"`
	// ApplyColdNSPerEntry / ApplyWarmNSPerEntry compare the first apply
	// round on a fresh replica (cold: routing buffers allocated) against
	// a later round reusing per-table scratch — the measurable win of
	// buffer reuse at equal worker count.
	ApplyColdNSPerEntry float64 `json:"apply_cold_ns_per_entry"`
	ApplyWarmNSPerEntry float64 `json:"apply_warm_ns_per_entry"`
}

// defaultWorkerSweep is 1..max(8, NumCPU) in powers of two.
func defaultWorkerSweep() []int {
	top := runtime.NumCPU()
	if top < 8 {
		top = 8
	}
	var ws []int
	for w := 1; w <= top; w *= 2 {
		ws = append(ws, w)
	}
	if ws[len(ws)-1] != top {
		ws = append(ws, top)
	}
	return ws
}

// RunOLAPScale measures scan, build-construction, and update-apply
// scaling over the worker sweep and returns the summary recorded in
// BENCH_OLAP.json.
func RunOLAPScale(o OLAPScaleOpts) (*OLAPScaleSummary, error) {
	if o.Tuples <= 0 {
		o.Tuples = 400_000
	}
	if o.BuildRows <= 0 {
		o.BuildRows = 200_000
	}
	if o.Partitions <= 0 {
		o.Partitions = 8
	}
	if o.SkewFrac <= 0 {
		o.SkewFrac = 0.5
	}
	if len(o.Workers) == 0 {
		o.Workers = defaultWorkerSweep()
	}
	if o.Reps <= 0 {
		o.Reps = 3
	}
	if o.ApplyWorkers <= 0 {
		o.ApplyWorkers = 4
	}
	if o.ApplyClients <= 0 {
		o.ApplyClients = 8
	}
	if o.ApplyDuration <= 0 {
		o.ApplyDuration = time.Second
	}
	if o.ApplyScale.Warehouses == 0 {
		o.ApplyScale = tpcc.BenchScale(2)
	}

	sum := &OLAPScaleSummary{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Note: "measured_* fields are wall clock on this host (bounded by num_cpu); " +
			"projected_* fields apply internal/resmodel's documented Amdahl model to the " +
			"1-worker measurement and are the scaling claim when num_cpu < workers",
		Tuples:       o.Tuples,
		BuildRows:    o.BuildRows,
		Partitions:   o.Partitions,
		SkewFrac:     o.SkewFrac,
		MorselTuples: o.MorselTuples,
	}

	if err := runScanScale(o, sum); err != nil {
		return nil, err
	}
	if err := runBuildScale(o, sum); err != nil {
		return nil, err
	}
	if err := runApplyScale(o, sum); err != nil {
		return nil, err
	}
	return sum, nil
}

// Scan/build fixture schemas (a miniature of the CH fact/dimension
// shape, kept local so the benchmark does not depend on TPC-C sizing).
const (
	scaleDriverID storage.TableID = 9001
	scaleBuildID  storage.TableID = 9002
)

func scaleSchemas() (driver, build *storage.Schema) {
	driver = storage.NewSchema(scaleDriverID, "scale_fact", []storage.Column{
		{Name: "id", Type: storage.Int64},
		{Name: "dim", Type: storage.Int64},
		{Name: "amount", Type: storage.Float64},
	}, []int{0})
	build = storage.NewSchema(scaleBuildID, "scale_dim", []storage.Column{
		{Name: "id", Type: storage.Int64},
		{Name: "weight", Type: storage.Float64},
	}, []int{0})
	return driver, build
}

// skewedRowIDs returns rowIDs such that skewFrac of them hash to
// partition 0 — the layout partition-granular dispatch cannot balance.
func skewedRowIDs(n, parts int, skewFrac float64) []uint64 {
	ids := make([]uint64, 0, n)
	hot := int(float64(n) * skewFrac)
	rid := uint64(1)
	nextTo := func(part uint64) uint64 {
		for {
			if (rid*0x9E3779B97F4A7C15)%uint64(parts) == part {
				r := rid
				rid++
				return r
			}
			rid++
		}
	}
	for i := 0; i < n; i++ {
		if i < hot {
			ids = append(ids, nextTo(0))
		} else {
			ids = append(ids, nextTo(uint64(1+i%(parts-1))))
		}
	}
	return ids
}

func runScanScale(o OLAPScaleOpts, sum *OLAPScaleSummary) error {
	driver, _ := scaleSchemas()
	rep := olap.NewReplica(o.Partitions)
	rep.CreateTable(driver, o.Tuples)
	for i, rid := range skewedRowIDs(o.Tuples, o.Partitions, o.SkewFrac) {
		tup := driver.NewTuple()
		driver.PutInt64(tup, 0, int64(i))
		driver.PutInt64(tup, 1, int64(i%1024))
		driver.PutFloat64(tup, 2, float64(i%1000)/10)
		if err := rep.LoadTuple(scaleDriverID, rid, tup); err != nil {
			return fmt.Errorf("benchkit: olapscale load: %w", err)
		}
	}
	q := &exec.Query{
		Name:       "scaleScan",
		Driver:     scaleDriverID,
		DriverPred: func(tup []byte) bool { return driver.GetInt64(tup, 0)%2 == 0 },
		Aggs: []exec.AggSpec{
			{Kind: exec.Sum, Value: func(d []byte, _ [][]byte) float64 { return driver.GetFloat64(d, 2) }},
			{Kind: exec.Count},
		},
	}
	var base float64
	for _, w := range o.Workers {
		e := exec.NewEngine(rep, w)
		e.MorselTuples = o.MorselTuples
		e.RunBatch([]*exec.Query{q}, 0) // warmup
		wall := bestOf(o.Reps, func() error {
			res := e.RunBatch([]*exec.Query{q}, 0)
			return res[0].Err
		})
		if wall < 0 {
			return fmt.Errorf("benchkit: olapscale scan failed")
		}
		p := scalePoint(w, wall, o.Tuples, &base, o.SkewFrac)
		sum.Scan = append(sum.Scan, p)
	}
	return nil
}

func runBuildScale(o OLAPScaleOpts, sum *OLAPScaleSummary) error {
	driver, build := scaleSchemas()
	rep := olap.NewReplica(o.Partitions)
	rep.CreateTable(driver, 1024)
	rep.CreateTable(build, o.BuildRows)
	// Tiny driver: the measured batch is dominated by cold shared-build
	// construction over the large dimension table (no PK index, so the
	// "dim" build cannot be probed incrementally and must be built).
	for i := 0; i < 1024; i++ {
		tup := driver.NewTuple()
		driver.PutInt64(tup, 0, int64(i))
		driver.PutInt64(tup, 1, int64(i%o.BuildRows))
		driver.PutFloat64(tup, 2, 1)
		if err := rep.LoadTuple(scaleDriverID, uint64(i+1), tup); err != nil {
			return err
		}
	}
	for i := 0; i < o.BuildRows; i++ {
		tup := build.NewTuple()
		build.PutInt64(tup, 0, int64(i))
		build.PutFloat64(tup, 1, float64(i%97))
		if err := rep.LoadTuple(scaleBuildID, uint64(i+1), tup); err != nil {
			return err
		}
	}
	q := &exec.Query{
		Name:   "scaleBuild",
		Driver: scaleDriverID,
		Probes: []exec.Probe{{
			Table:      scaleBuildID,
			BuildKeyID: "dim",
			BuildKey:   func(tup []byte) uint64 { return uint64(build.GetInt64(tup, 0)) },
			ProbeKey:   func(d []byte, _ [][]byte) uint64 { return uint64(driver.GetInt64(d, 1)) },
		}},
		Aggs: []exec.AggSpec{{Kind: exec.Count}},
	}
	var base float64
	for _, w := range o.Workers {
		wall := bestOf(o.Reps, func() error {
			// Fresh engine per rep: the build cache must be cold so the
			// measurement is construction, not a version check.
			e := exec.NewEngine(rep, w)
			e.MorselTuples = o.MorselTuples
			res := e.RunBatch([]*exec.Query{q}, 0)
			return res[0].Err
		})
		if wall < 0 {
			return fmt.Errorf("benchkit: olapscale build failed")
		}
		p := scalePoint(w, wall, o.BuildRows, &base, 1/float64(o.Partitions))
		// Build-side scans were already partition-parallel before; the
		// bound that matters is the old single-goroutine construction.
		p.PartitionDispatchBound = 1
		sum.Build = append(sum.Build, p)
	}
	return nil
}

// pushCapture records every propagation push separately, with the
// coverage VID reported at that push. A prefix of pushes replayed with
// its own coverage VID is a valid shorter stream; captureSink's single
// flattened slice cannot be split that way.
type pushCapture struct {
	mu     sync.Mutex
	pushes [][]proplog.Batch
	upTos  []uint64
	upTo   uint64
}

func (c *pushCapture) ApplyUpdates(batches []proplog.Batch, upTo uint64) {
	c.mu.Lock()
	c.pushes = append(c.pushes, batches)
	c.upTos = append(c.upTos, upTo)
	if upTo > c.upTo {
		c.upTo = upTo
	}
	c.mu.Unlock()
}

func (c *pushCapture) flat() []proplog.Batch {
	var out []proplog.Batch
	for _, p := range c.pushes {
		out = append(out, p...)
	}
	return out
}

// prefix returns the first n pushes flattened plus the coverage VID
// that was true after the n-th push.
func (c *pushCapture) prefix(n int) ([]proplog.Batch, uint64) {
	var out []proplog.Batch
	for _, p := range c.pushes[:n] {
		out = append(out, p...)
	}
	return out, c.upTos[n-1]
}

func (c *pushCapture) suffix(n int) []proplog.Batch {
	var out []proplog.Batch
	for _, p := range c.pushes[n:] {
		out = append(out, p...)
	}
	return out
}

func runApplyScale(o OLAPScaleOpts, sum *OLAPScaleSummary) error {
	// Capture one TPC-C update stream, then apply the identical stream
	// at every worker count (equal entry counts by construction). Every
	// replica must bootstrap from the pre-run state — NewReplica raises
	// the VID floor to the primary's current snapshot, which would
	// discard the captured stream if created after the run.
	db := tpcc.NewDB(o.ApplyScale)
	if err := tpcc.Generate(db, o.Seed); err != nil {
		return err
	}
	reps := make([]*olap.Replica, len(o.Workers)+1)
	for i := range reps {
		r, err := chbench.NewReplica(db, o.Partitions)
		if err != nil {
			return err
		}
		reps[i] = r
	}
	sink := &pushCapture{}
	if _, err := RunOLTPOn(db, OLTPOpts{
		Scale: o.ApplyScale, Workers: o.ApplyWorkers, Clients: o.ApplyClients,
		Duration: o.ApplyDuration, Seed: o.Seed + 1, FieldSpecific: true, Sink: sink,
		// Several pushes per run so the cold/warm experiment below has
		// push boundaries to split on.
		PushPeriod: o.ApplyDuration / 8,
	}); err != nil {
		return err
	}

	var oneWorker olap.ApplyStats
	for i, w := range o.Workers {
		rep := reps[i]
		rep.SetApplyWorkers(w)
		rep.ApplyUpdates(sink.flat(), sink.upTo)
		t0 := time.Now()
		st, err := rep.ApplyPending(sink.upTo)
		wall := time.Since(t0)
		if err != nil {
			return fmt.Errorf("benchkit: olapscale apply (w=%d): %w", w, err)
		}
		if w == o.Workers[0] {
			oneWorker = st
		}
		pt := OLAPApplyPoint{
			Workers: w, WallNS: int64(wall), Entries: st.Entries,
			Step1NS: int64(st.Step1), Step2NS: int64(st.Step2), Step3NS: int64(st.Step3),
		}
		if wall > 0 {
			pt.EntriesPerSec = float64(st.Entries) / wall.Seconds()
		}
		pt.ProjectedEntriesPerSec = resmodel.ProjectRate(
			oneWorker.Step1, oneWorker.Step2+oneWorker.Step3, oneWorker.Entries, w)
		sum.Apply = append(sum.Apply, pt)
	}

	// Cold vs warm round at a fixed worker count: split the stream in
	// two halves on a push boundary and apply them back to back on one
	// replica. The second round reuses every per-table scratch buffer
	// the first one grew. Each half must be applied with the coverage
	// VID that was true at its last push — applying a prefix with the
	// final coverage VID would release updates whose prerequisite
	// inserts are still in the later pushes.
	rep := reps[len(reps)-1]
	rep.SetApplyWorkers(o.ApplyWorkers)
	half := len(sink.pushes) / 2
	if half == 0 {
		half = 1
	}
	a, aUpTo := sink.prefix(half)
	b := sink.suffix(half)
	rep.ApplyUpdates(a, aUpTo)
	t0 := time.Now()
	stA, err := rep.ApplyPending(aUpTo)
	wallA := time.Since(t0)
	if err != nil {
		return fmt.Errorf("benchkit: olapscale apply cold round: %w", err)
	}
	rep.ApplyUpdates(b, sink.upTo)
	t0 = time.Now()
	stB, err := rep.ApplyPending(sink.upTo)
	wallB := time.Since(t0)
	if err != nil {
		return fmt.Errorf("benchkit: olapscale apply warm round: %w", err)
	}
	if stA.Entries > 0 {
		sum.ApplyColdNSPerEntry = float64(wallA) / float64(stA.Entries)
	}
	if stB.Entries > 0 {
		sum.ApplyWarmNSPerEntry = float64(wallB) / float64(stB.Entries)
	}
	return nil
}

// scalePoint assembles one sweep cell; *base is set from the first cell
// (workers[0], expected to be 1) and reused for speedups.
func scalePoint(w int, wall time.Duration, items int, base *float64, skewFrac float64) OLAPScalePoint {
	if *base == 0 {
		*base = float64(wall)
	}
	p := OLAPScalePoint{Workers: w, WallNS: int64(wall)}
	if wall > 0 {
		p.ItemsPerSec = float64(items) / wall.Seconds()
		p.MeasuredSpeedup = *base / float64(wall)
	}
	// Morsel dispatch has no serial phase: Amdahl with serial fraction 0.
	p.ProjectedSpeedup = resmodel.Speedup(0, w)
	// Partition-granular dispatch cannot beat the largest partition.
	bound := 1 / skewFrac
	if float64(w) < bound {
		bound = float64(w)
	}
	p.PartitionDispatchBound = bound
	return p
}

// bestOf runs fn reps times and returns the smallest wall time, or a
// negative duration if fn ever fails.
func bestOf(reps int, fn func() error) time.Duration {
	best := time.Duration(-1)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return -1
		}
		d := time.Since(t0)
		if best < 0 || d < best {
			best = d
		}
	}
	return best
}
