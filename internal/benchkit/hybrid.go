package benchkit

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"batchdb/internal/chbench"
	"batchdb/internal/metrics"
	"batchdb/internal/mvcc"
	"batchdb/internal/network"
	"batchdb/internal/olap"
	"batchdb/internal/olap/exec"
	"batchdb/internal/oltp"
	"batchdb/internal/replica"
	"batchdb/internal/tpcc"
)

// HybridOpts parameterizes the CH-benCHmark hybrid experiment
// (paper §8.4, Fig. 7).
type HybridOpts struct {
	Scale       tpcc.Scale
	OLTPWorkers int
	OLAPWorkers int
	Partitions  int
	// TxnClients (TC) and AnalyticalClients (AC) are the closed-loop
	// client counts of Fig. 7's axes.
	TxnClients        int
	AnalyticalClients int
	Duration          time.Duration
	Warmup            time.Duration
	Seed              int64
	// ConstantSize keeps the database size constant (Fig. 7a right).
	ConstantSize bool
	// Distributed places the OLAP replica behind the TCP (RDMA-model)
	// transport instead of in-process ("Distributed (RDMA) Replicas").
	Distributed bool
	// NoRep disables replication entirely (Fig. 7d reference line);
	// analytical clients must be 0.
	NoRep bool
	// QueryAtATime disables shared execution (ablation).
	QueryAtATime bool
	// QuiescedApply reverts the scheduler to the pre-overlap mode where
	// the apply round runs exclusively between batches (ablation for the
	// overlap experiment).
	QuiescedApply bool
}

// HybridResult reports one (TC, AC) cell of Fig. 7.
type HybridResult struct {
	// OLTP side.
	TxnPerSec              float64
	TxnP50, TxnP90, TxnP99 time.Duration
	Conflicts              uint64
	// OLAP side.
	QueriesPerMin                float64
	QueryP50, QueryP90, QueryP99 time.Duration
	Batches                      uint64
	AppliedEntries               uint64
	// Busy fractions of measured wall time (single host; Fig. 7c maps
	// them onto the modeled sockets via resmodel).
	OLTPBusyFrac, OLAPBusyFrac float64
	// Freshness of the installed OLAP snapshot over the whole run:
	// staleness percentiles sampled at each batch install and the
	// highest watermark-minus-installed VID lag seen after warmup.
	Queries       uint64
	FreshStaleP50 time.Duration
	FreshStaleP99 time.Duration
	FreshLagHigh  int64
	// Pure batch execution time and the dispatcher's freshness-barrier
	// wait (zero when QuiescedApply, where apply time sits on the batch
	// path instead).
	BatchExecP50, BatchExecP99 time.Duration
	SnapWaitP50, SnapWaitP99   time.Duration
	ApplyP50, ApplyP99         time.Duration
	// TxnPerBusySec and QueriesPerBusyMin normalize throughput by the
	// CPU time each component actually received — the dedicated-
	// resources projection. On the paper's machine each replica owns
	// its sockets, so wall time and busy time coincide; on a shared
	// host, wall-clock throughput conflates time-sharing with the
	// logical interference the paper isolates. The normalized series is
	// the paper-comparable one; both are reported.
	TxnPerBusySec     float64
	QueriesPerBusyMin float64
	// Transport statistics for the distributed configuration.
	Transport *network.Stats
}

// RunHybrid executes one cell of the hybrid experiment.
func RunHybrid(o HybridOpts) (HybridResult, error) {
	if o.NoRep && o.AnalyticalClients > 0 {
		return HybridResult{}, errors.New("benchkit: NoRep run cannot have analytical clients")
	}
	db := tpcc.NewDB(o.Scale)
	if err := tpcc.Generate(db, o.Seed); err != nil {
		return HybridResult{}, err
	}
	engine, err := oltp.New(db.Store, oltp.Config{
		Workers:       o.OLTPWorkers,
		Replicated:    tpcc.ReplicatedTables(),
		FieldSpecific: true,
		PushPeriod:    200 * time.Millisecond,
	})
	if err != nil {
		return HybridResult{}, err
	}
	tpcc.RegisterProcs(engine, db, o.ConstantSize)

	var sched *olap.Scheduler[*exec.Query, exec.Result]
	var schedStats *olap.SchedulerStats
	var transport *network.Stats
	cleanup := func() {}

	if !o.NoRep {
		if o.Distributed {
			rep := chbench.EmptyReplica(db, o.Partitions)
			ln, err := network.Listen("127.0.0.1:0", nil)
			if err != nil {
				return HybridResult{}, err
			}
			connCh := make(chan *network.Conn, 1)
			go func() {
				c, err := ln.Accept()
				if err == nil {
					connCh <- c
				}
			}()
			cliConn, err := network.Dial(ln.Addr(), nil)
			if err != nil {
				return HybridResult{}, err
			}
			srvConn := <-connCh
			ln.Close()
			transport = srvConn.Stats()

			pub := replica.NewPublisher(srvConn, engine)
			engine.SetSink(pub)
			go pub.Serve()
			client := replica.NewClient(cliConn, rep)
			go client.Serve()
			if _, err := replica.ShipSnapshot(srvConn, db.Store, chbench.Tables(), 4096); err != nil {
				return HybridResult{}, fmt.Errorf("snapshot: %w", err)
			}
			if _, err := client.WaitBootstrap(); err != nil {
				return HybridResult{}, err
			}
			rep.SetApplyWorkers(o.OLAPWorkers)
			ex := exec.NewEngine(rep, o.OLAPWorkers)
			ex.QueryAtATime = o.QueryAtATime
			sched = olap.NewScheduler[*exec.Query, exec.Result](rep, client, ex.RunBatch)
			ex.AttachStats(sched.Stats())
			cleanup = func() { cliConn.Close(); srvConn.Close() }
		} else {
			rep, err := chbench.NewReplica(db, o.Partitions)
			if err != nil {
				return HybridResult{}, err
			}
			engine.SetSink(rep)
			rep.SetApplyWorkers(o.OLAPWorkers)
			ex := exec.NewEngine(rep, o.OLAPWorkers)
			ex.QueryAtATime = o.QueryAtATime
			sched = olap.NewScheduler[*exec.Query, exec.Result](rep, engine, ex.RunBatch)
			ex.AttachStats(sched.Stats())
		}
		if o.QuiescedApply {
			sched.SetQuiescedApply()
		}
		sched.Start()
		schedStats = sched.Stats()
	}
	engine.Start()
	defer func() {
		if sched != nil {
			sched.Close()
		}
		engine.Close()
		cleanup()
	}()

	var (
		txnHist, qryHist   metrics.Histogram
		txnCount, qryCount metrics.Counter
		conflicts          metrics.Counter
		failure            error
		failOnce           sync.Once
	)
	stop := make(chan struct{})
	measuring := make(chan struct{})
	var wg sync.WaitGroup

	for c := 0; c < o.TxnClients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			drv := tpcc.NewDriver(db.Scale, seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				proc, args := drv.Next()
				start := time.Now()
				r := engine.Exec(proc, args)
				switch {
				case r.Err == nil, errors.Is(r.Err, tpcc.ErrRollback):
					select {
					case <-measuring:
						txnHist.RecordSince(start)
						txnCount.Inc()
					default:
					}
				case errors.Is(r.Err, mvcc.ErrConflict):
					select {
					case <-measuring:
						conflicts.Inc()
					default:
					}
				case errors.Is(r.Err, oltp.ErrClosed):
					return
				default:
					failOnce.Do(func() { failure = r.Err })
					return
				}
			}
		}(o.Seed + int64(c) + 1)
	}
	for c := 0; c < o.AnalyticalClients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			gen := chbench.NewGen(db.Schemas, seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := gen.Next()
				start := time.Now()
				res, err := sched.Query(q)
				if err != nil {
					return // scheduler closed
				}
				if res.Err != nil {
					failOnce.Do(func() { failure = res.Err })
					return
				}
				select {
				case <-measuring:
					qryHist.RecordSince(start)
					qryCount.Inc()
				default:
				}
			}
		}(o.Seed + 10000 + int64(c))
	}

	time.Sleep(o.Warmup)
	oltpBusy0 := engine.Stats().Busy.Busy()
	var olapBusy0 time.Duration
	var applied0 uint64
	if schedStats != nil {
		olapBusy0 = schedStats.Busy.Busy()
		applied0 = schedStats.AppliedEntries.Load()
	}
	if sched != nil {
		sched.Freshness().ResetLagHigh() // measure the post-warmup peak only
	}
	close(measuring)
	t0 := time.Now()
	time.Sleep(o.Duration)
	elapsed := time.Since(t0)
	close(stop)
	wg.Wait()
	if failure != nil {
		return HybridResult{}, failure
	}

	oltpBusy := (engine.Stats().Busy.Busy() - oltpBusy0).Seconds()
	r := HybridResult{
		TxnPerSec:     float64(txnCount.Load()) / elapsed.Seconds(),
		TxnP50:        time.Duration(txnHist.Percentile(50)),
		TxnP90:        time.Duration(txnHist.Percentile(90)),
		TxnP99:        time.Duration(txnHist.Percentile(99)),
		Conflicts:     conflicts.Load(),
		QueriesPerMin: float64(qryCount.Load()) / elapsed.Minutes(),
		QueryP50:      time.Duration(qryHist.Percentile(50)),
		QueryP90:      time.Duration(qryHist.Percentile(90)),
		QueryP99:      time.Duration(qryHist.Percentile(99)),
		OLTPBusyFrac:  oltpBusy / elapsed.Seconds(),
		Transport:     transport,
	}
	if oltpBusy > 0 {
		r.TxnPerBusySec = float64(txnCount.Load()) / oltpBusy
	}
	if schedStats != nil {
		r.Batches = schedStats.Batches.Load()
		r.Queries = schedStats.Queries.Load()
		r.AppliedEntries = schedStats.AppliedEntries.Load() - applied0
		olapBusy := (schedStats.Busy.Busy() - olapBusy0).Seconds()
		r.OLAPBusyFrac = olapBusy / elapsed.Seconds()
		if olapBusy > 0 {
			r.QueriesPerBusyMin = float64(qryCount.Load()) / (olapBusy / 60)
		}
		fresh := sched.Freshness()
		hist := fresh.StalenessHistogram()
		r.FreshStaleP50 = time.Duration(hist.Percentile(50))
		r.FreshStaleP99 = time.Duration(hist.Percentile(99))
		r.FreshLagHigh = fresh.LagHigh()
		r.BatchExecP50 = time.Duration(schedStats.BatchExec.Percentile(50))
		r.BatchExecP99 = time.Duration(schedStats.BatchExec.Percentile(99))
		r.SnapWaitP50 = time.Duration(schedStats.SnapWait.Percentile(50))
		r.SnapWaitP99 = time.Duration(schedStats.SnapWait.Percentile(99))
		r.ApplyP50 = time.Duration(schedStats.ApplyTime.Percentile(50))
		r.ApplyP99 = time.Duration(schedStats.ApplyTime.Percentile(99))
	}
	return r, nil
}
