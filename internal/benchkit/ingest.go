package benchkit

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"batchdb/internal/ingest"
	"batchdb/internal/metrics"
	"batchdb/internal/mvcc"
	"batchdb/internal/olap"
	"batchdb/internal/oltp"
	"batchdb/internal/resmodel"
	"batchdb/internal/storage"
	"batchdb/internal/tpcc"
)

// IngestOpts parameterizes the SLO-governed bulk-ingest experiment:
// interactive TPC-C clients run throughout, an unloaded OLTP p99
// baseline is measured, and then two equal-length load cells run —
// governor on (paced to hold baseline x SLOMultiplier) and governor
// off (open throttle, the rate an ungoverned bulk loader offers).
type IngestOpts struct {
	Scale       tpcc.Scale
	OLTPWorkers int
	TxnClients  int
	// ChunkRows is the ingest transaction size for both cells.
	ChunkRows int
	// SLOMultiplier sets the governor bound (default 1.5).
	SLOMultiplier float64
	// Duration is the length of each load cell; Warmup precedes the
	// baseline window; Baseline is the unloaded measurement window.
	Duration time.Duration
	Warmup   time.Duration
	Baseline time.Duration
	Seed     int64
}

// IngestCell is one load cell's measurement.
type IngestCell struct {
	Governed bool
	// Load side.
	Rows       int
	Chunks     int
	RowsPerSec float64
	FinalRate  float64
	Throttles  uint64
	// Interactive side over the cell: committed txn rate and latency
	// percentiles of the same histogram the governor samples.
	TxnPerSec          float64
	TxnP50NS, TxnP99NS int64
	MaxWindowP99NS     int64
	ElapsedNS          int64
}

// IngestSummary is the whole experiment, JSON-ready (BENCH_INGEST.json).
type IngestSummary struct {
	GOMAXPROCS, NumCPU int
	TxnClients         int
	ChunkRows          int
	SLOMultiplier      float64
	// Unloaded anchor: interactive p99 and txn rate with no load
	// running, and the governor bound derived from it.
	BaselineP99NS     int64
	BoundNS           int64
	UnloadedTxnPerSec float64
	Governed          IngestCell
	Ungoverned        IngestCell
	// Acceptance: the governed cell's interactive p99 stays within the
	// bound while the ungoverned cell's breaks it.
	GovernedHoldsSLO   bool
	UngovernedViolates bool
	// OLAP visibility after the freshness barrier: rows a post-load
	// batch observed and the snapshot VID it ran at.
	OLAPRows    int
	OLAPSnapVID uint64
}

const ingestBenchTable storage.TableID = 42

func ingestBenchSchema() *storage.Schema {
	return storage.NewSchema(ingestBenchTable, "bulk", []storage.Column{
		{Name: "id", Type: storage.Int64},
		{Name: "val", Type: storage.Int64},
	}, []int{0})
}

// RunIngest executes the experiment.
func RunIngest(o IngestOpts) (IngestSummary, error) {
	if o.SLOMultiplier <= 0 {
		o.SLOMultiplier = 1.5
	}
	if o.ChunkRows <= 0 {
		o.ChunkRows = 4096
	}
	if o.Baseline <= 0 {
		o.Baseline = o.Duration
	}
	schema := ingestBenchSchema()
	db := tpcc.NewDB(o.Scale)
	if err := tpcc.Generate(db, o.Seed); err != nil {
		return IngestSummary{}, err
	}
	db.Store.CreateTable(schema, func(tup []byte) uint64 {
		return uint64(schema.GetInt64(tup, 0))
	}, 4096)
	engine, err := oltp.New(db.Store, oltp.Config{
		Workers:    o.OLTPWorkers,
		PushPeriod: 20 * time.Millisecond,
		Replicated: map[storage.TableID]bool{ingestBenchTable: true},
	})
	if err != nil {
		return IngestSummary{}, err
	}
	tpcc.RegisterProcs(engine, db, false)
	ingest.RegisterProc(engine)

	// The chunks ride the normal push path into a generic OLAP replica;
	// the scheduler's freshness barrier is what makes the post-load
	// batch see every chunk.
	rep := olap.NewReplica(4)
	rep.CreateTable(schema, 4096)
	engine.SetSink(rep)
	type tally struct {
		snap uint64
		rows int
	}
	runBatch := func(queries []int, snap uint64) []tally {
		sv := rep.PinSnapshot()
		defer sv.Unpin()
		var ta tally
		ta.snap = sv.VID()
		for _, p := range sv.Table(ingestBenchTable).Partitions {
			p.Scan(func(uint64, []byte) bool { ta.rows++; return true })
		}
		out := make([]tally, len(queries))
		for i := range out {
			out[i] = ta
		}
		return out
	}
	sched := olap.NewScheduler(rep, engine, runBatch)
	sched.Start()
	engine.Start()
	defer func() {
		sched.Close()
		engine.Close()
	}()

	var (
		commits  atomic.Uint64
		failure  error
		failOnce sync.Once
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < o.TxnClients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			drv := tpcc.NewDriver(db.Scale, seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				proc, args := drv.Next()
				r := engine.Exec(proc, args)
				switch {
				case r.Err == nil, errors.Is(r.Err, tpcc.ErrRollback):
					commits.Add(1)
				case errors.Is(r.Err, mvcc.ErrConflict):
				case errors.Is(r.Err, oltp.ErrClosed):
					return
				default:
					failOnce.Do(func() { failure = r.Err })
					return
				}
			}
		}(o.Seed + int64(c) + 1)
	}
	defer func() {
		select {
		case <-stop:
		default:
			close(stop)
		}
		wg.Wait()
	}()

	hist := &engine.Stats().Latency

	// window measures interactive rate and latency over one phase.
	type window struct {
		snap    metrics.Snapshot
		commits uint64
		start   time.Time
	}
	open := func() window {
		return window{snap: hist.Snapshot(), commits: commits.Load(), start: time.Now()}
	}
	closeWin := func(w window) (txnPerSec float64, p50, p99 time.Duration) {
		elapsed := time.Since(w.start)
		snap := hist.Snapshot()
		delta := snap.Delta(&w.snap)
		txnPerSec = float64(commits.Load()-w.commits) / elapsed.Seconds()
		return txnPerSec, time.Duration(delta.Percentile(50)), time.Duration(delta.Percentile(99))
	}

	time.Sleep(o.Warmup)
	base := open()
	time.Sleep(o.Baseline)
	unloadedTPS, _, baselineP99 := closeWin(base)
	if baselineP99 <= 0 {
		baselineP99 = time.Millisecond
	}
	bound := time.Duration(float64(baselineP99) * o.SLOMultiplier)

	sum := IngestSummary{
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		NumCPU:            runtime.NumCPU(),
		TxnClients:        o.TxnClients,
		ChunkRows:         o.ChunkRows,
		SLOMultiplier:     o.SLOMultiplier,
		BaselineP99NS:     int64(baselineP99),
		BoundNS:           int64(bound),
		UnloadedTxnPerSec: unloadedTPS,
	}

	// runCell drives one duration-bounded load. The source only stops
	// at chunk boundaries, so both cells submit full chunks for the
	// entire window; ids continue across cells so keys never collide.
	nextID := int64(0)
	totalRows := 0
	var lastVID uint64
	runCell := func(governed bool) (IngestCell, error) {
		cfg := ingest.Config{
			ChunkRows:       o.ChunkRows,
			DisableGovernor: !governed,
		}
		if governed {
			// A floor of 1 chunk/s keeps the feedback loop observing even
			// on hosts where the sustainable rate is very low (the loader
			// only samples after each chunk, so a near-zero floor would
			// starve the governor of observations).
			cfg.Governor = resmodel.GovernorConfig{
				BaselineP99:   baselineP99,
				SLOMultiplier: o.SLOMultiplier,
				MinRate:       1,
				MaxRate:       256,
			}
		}
		l := ingest.NewLoader(engine, ingestBenchTable, cfg)
		deadline := time.Now().Add(o.Duration)
		start := nextID
		w := open()
		rep, err := l.Load(func() ([]byte, bool) {
			if (nextID-start)%int64(o.ChunkRows) == 0 && time.Now().After(deadline) {
				return nil, false
			}
			tup := schema.NewTuple()
			schema.PutInt64(tup, 0, nextID)
			schema.PutInt64(tup, 1, nextID*7+3)
			nextID++
			return tup, true
		})
		if err != nil {
			return IngestCell{}, err
		}
		tps, p50, p99 := closeWin(w)
		totalRows += rep.Rows
		if rep.LastVID > lastVID {
			lastVID = rep.LastVID
		}
		return IngestCell{
			Governed:       governed,
			Rows:           rep.Rows,
			Chunks:         rep.Chunks,
			RowsPerSec:     rep.RowsPerSec,
			FinalRate:      rep.FinalRate,
			Throttles:      rep.Throttles,
			TxnPerSec:      tps,
			TxnP50NS:       int64(p50),
			TxnP99NS:       int64(p99),
			MaxWindowP99NS: int64(rep.MaxWindowP99),
			ElapsedNS:      int64(rep.Elapsed),
		}, nil
	}

	if sum.Governed, err = runCell(true); err != nil {
		return sum, err
	}
	// Cool down so the ungoverned cell's window starts from the same
	// quiescent point the governed one did.
	time.Sleep(o.Baseline / 2)
	if sum.Ungoverned, err = runCell(false); err != nil {
		return sum, err
	}
	if failure != nil {
		return sum, failure
	}

	sum.GovernedHoldsSLO = sum.Governed.TxnP99NS <= sum.BoundNS
	sum.UngovernedViolates = sum.Ungoverned.TxnP99NS > sum.BoundNS

	// Freshness barrier: a batch admitted after both loads must observe
	// every chunk.
	ta, err := sched.Query(0)
	if err != nil {
		return sum, err
	}
	sum.OLAPRows = ta.rows
	sum.OLAPSnapVID = ta.snap
	if ta.rows != totalRows {
		return sum, errors.New("benchkit: OLAP batch after freshness barrier missed ingested rows")
	}
	if ta.snap < lastVID {
		return sum, errors.New("benchkit: post-load batch snapshot below last chunk VID")
	}
	return sum, nil
}
