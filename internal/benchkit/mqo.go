package benchkit

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"time"

	"batchdb/internal/chbench"
	"batchdb/internal/olap"
	"batchdb/internal/olap/exec"
	"batchdb/internal/tpcc"
)

// mqoTemplate is the CH query the sweep instantiates: Q5 is the
// workload's deepest shared shape — a full order-line scan through a
// seven-probe join chain into a GROUP BY customer nation — so pipeline
// merging has the most per-tuple work to deduplicate and query-at-a-
// time has the most to lose.
const mqoTemplate = "Q5"

// MQOOpts parameterizes the multi-query-optimization benchmark: a
// batch-size × overlap-fraction sweep of CH-style batches, each cell
// timed with the batch planner's pipeline sharing on vs off on the same
// snapshot, plus a cost-model admission demo fed from the sweep's own
// phase histograms.
type MQOOpts struct {
	Scale      tpcc.Scale
	Partitions int
	// Workers is the engine worker count (identical in both modes, so
	// wall-clock ratios equal CPU ratios).
	Workers int
	// Reps is the timed repetitions per (cell, mode) — best-of.
	Reps         int
	MorselTuples int
	// BatchSizes and Overlaps span the sweep grid. Overlap is the
	// fraction of the batch sharing one template instance-for-instance
	// (equal ShareKey); the rest run the same template under uniquified
	// keys, so every cell does identical logical work and ns/query is
	// comparable across the row.
	BatchSizes []int
	Overlaps   []float64
	// AdmitBatchSize is the batch the admission demo offers to the cost
	// model after the sweep has populated the histograms.
	AdmitBatchSize int
	Seed           int64
}

// MQOPoint is one cell of the sweep.
type MQOPoint struct {
	BatchSize int     `json:"batch_size"`
	Overlap   float64 `json:"overlap"`
	// SharedQueries is how many of the batch's queries the planner
	// actually placed in multi-member cohorts (stats-counted);
	// ShareRate is that over the batch size.
	SharedQueries int64   `json:"shared_queries"`
	ShareRate     float64 `json:"share_rate"`
	// SharedNSPerQuery / PrivateNSPerQuery are best-of-reps wall time
	// per query with sharing on / off (DisableSharing). Worker count is
	// identical, so Speedup = private/shared is the batch CPU reduction.
	SharedNSPerQuery  int64   `json:"shared_ns_per_query"`
	PrivateNSPerQuery int64   `json:"private_ns_per_query"`
	Speedup           float64 `json:"speedup"`
}

// MQOAdmission records the cost-based admission demo: what
// Engine.AdmitBatch, calibrated by the sweep's own scan histograms,
// does to an oversized batch under a deliberately tight budget.
type MQOAdmission struct {
	// PerQueryScanNS is the historical scan estimate the model divides
	// the budget by; BudgetNS the budget offered.
	PerQueryScanNS float64 `json:"per_query_scan_ns"`
	BudgetNS       int64   `json:"budget_ns"`
	BatchSize      int     `json:"batch_size"`
	// AdmittedFirst is the first dispatch round's size; Rounds, Splits
	// and Deferred replay the scheduler's carry loop to exhaustion
	// (deferred queries go ahead of new arrivals in the next round).
	AdmittedFirst int `json:"admitted_first_round"`
	Rounds        int `json:"rounds"`
	Splits        int `json:"splits"`
	Deferred      int `json:"deferred"`
}

// MQOSummary is the JSON record written to BENCH_MQO.json.
type MQOSummary struct {
	GOMAXPROCS   int    `json:"gomaxprocs"`
	NumCPU       int    `json:"num_cpu"`
	Note         string `json:"note"`
	Warehouses   int    `json:"warehouses"`
	Partitions   int    `json:"partitions"`
	Workers      int    `json:"workers"`
	MorselTuples int    `json:"morsel_tuples"`
	Template     string `json:"template"`
	Reps         int    `json:"reps"`

	Sweep     []MQOPoint   `json:"sweep"`
	Admission MQOAdmission `json:"admission"`
}

// RunMQO measures shared-pipeline execution against query-at-a-time on
// identical batches and demonstrates the cost-based admission model.
// Every cell's shared and private runs are verified to produce
// identical per-query results (rows, aggregates and groups) before
// their timings are accepted.
func RunMQO(o MQOOpts) (*MQOSummary, error) {
	if o.Scale.Warehouses == 0 {
		o.Scale = tpcc.BenchScale(4)
	}
	if o.Partitions <= 0 {
		o.Partitions = 8
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Reps <= 0 {
		o.Reps = 7
	}
	if o.MorselTuples <= 0 {
		o.MorselTuples = 1024
	}
	if len(o.BatchSizes) == 0 {
		o.BatchSizes = []int{4, 8, 16}
	}
	if len(o.Overlaps) == 0 {
		o.Overlaps = []float64{0, 0.5, 1}
	}
	if o.AdmitBatchSize <= 0 {
		o.AdmitBatchSize = 16
	}

	db := tpcc.NewDB(o.Scale)
	if err := tpcc.Generate(db, o.Seed); err != nil {
		return nil, err
	}
	rep, err := chbench.NewReplica(db, o.Partitions)
	if err != nil {
		return nil, err
	}
	eng := exec.NewEngine(rep, o.Workers)
	eng.MorselTuples = o.MorselTuples
	var stats olap.SchedulerStats
	eng.AttachStats(&stats)

	sum := &MQOSummary{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Note: "every cell runs batch_size instances of CH " + mqoTemplate + " (randomized region " +
			"predicates) on one snapshot; an overlap-f cell leaves f of them under the template's " +
			"ShareKey (mergeable into one cohort) and uniquifies the rest, so private work is " +
			"constant across a row and speedup isolates what pipeline sharing saves. Worker count " +
			"is identical in both modes, so wall ratios are CPU ratios. overlap=0 prices pure " +
			"planner overhead (must stay within noise of 1.0); the admission section replays the " +
			"scheduler's carry loop under a budget of ~2.5 historical per-query scan times",
		Warehouses: o.Scale.Warehouses, Partitions: o.Partitions,
		Workers: o.Workers, MorselTuples: o.MorselTuples,
		Template: mqoTemplate, Reps: o.Reps,
	}

	// One generator for the whole sweep keeps cells deterministic given
	// (Seed, grid). runBatch mirrors the scheduler's bookkeeping — the
	// engine records the phase histograms, the dispatcher the query
	// count — so the admission model below is fed exactly what a live
	// scheduler would feed it.
	g := chbench.NewGen(db.Schemas, o.Seed+1)
	runBatch := func(qs []*exec.Query, private bool) ([]exec.Result, error) {
		eng.DisableSharing = private
		res := eng.RunBatch(qs, 0)
		stats.Queries.Add(uint64(len(qs)))
		for i := range res {
			if res[i].Err != nil {
				return nil, fmt.Errorf("benchkit: mqo %s[%d]: %w", qs[i].Name, i, res[i].Err)
			}
		}
		return res, nil
	}

	for _, n := range o.BatchSizes {
		for _, f := range o.Overlaps {
			shared := int(math.Round(f * float64(n)))
			qs := make([]*exec.Query, n)
			for i := range qs {
				q := g.ByName(mqoTemplate)
				if i >= shared {
					q.ShareKey = fmt.Sprintf("%s!%d", q.ShareKey, i)
				}
				qs[i] = q
			}

			// Counted run: planner share decisions, plus result capture
			// for the parity check.
			qs0 := stats.ExecQueriesShared.Load()
			resShared, err := runBatch(qs, false)
			if err != nil {
				return nil, err
			}
			sharedQueries := int64(stats.ExecQueriesShared.Load() - qs0)
			resPrivate, err := runBatch(qs, true)
			if err != nil {
				return nil, err
			}
			for i := range resShared {
				if !mqoResultsMatch(&resShared[i], &resPrivate[i]) {
					return nil, fmt.Errorf("benchkit: mqo n=%d f=%.2f: sharing changed query %d: %d/%v (%d groups) vs %d/%v (%d groups)",
						n, f, i, resShared[i].Rows, resShared[i].Values, len(resShared[i].Groups),
						resPrivate[i].Rows, resPrivate[i].Values, len(resPrivate[i].Groups))
				}
			}

			timed := func(private bool) (time.Duration, error) {
				wall := bestOf(o.Reps, func() error {
					_, err := runBatch(qs, private)
					return err
				})
				if wall < 0 {
					return 0, fmt.Errorf("benchkit: mqo n=%d f=%.2f timed run failed", n, f)
				}
				return wall, nil
			}
			wallShared, err := timed(false)
			if err != nil {
				return nil, err
			}
			wallPrivate, err := timed(true)
			if err != nil {
				return nil, err
			}

			pt := MQOPoint{
				BatchSize: n, Overlap: f,
				SharedQueries:     sharedQueries,
				ShareRate:         float64(sharedQueries) / float64(n),
				SharedNSPerQuery:  int64(wallShared) / int64(n),
				PrivateNSPerQuery: int64(wallPrivate) / int64(n),
			}
			if wallShared > 0 {
				pt.Speedup = float64(wallPrivate) / float64(wallShared)
			}
			sum.Sweep = append(sum.Sweep, pt)
		}
	}

	// Admission demo: the sweep's runs are the history. Offer an
	// oversized all-shared batch under a budget of ~2.5 per-query scan
	// estimates and replay the dispatcher's carry loop: each round
	// admits a prefix, the rest are deferred ahead of new arrivals.
	nq := stats.Queries.Load()
	adm := MQOAdmission{BatchSize: o.AdmitBatchSize}
	if nq > 0 {
		adm.PerQueryScanNS = float64(stats.ExecScan.Sum()) / float64(nq)
	}
	budget := time.Duration(stats.ExecBuildPrepare.Mean() + 2.5*adm.PerQueryScanNS)
	adm.BudgetNS = int64(budget)
	eng.AdmitBudget = budget
	batch := make([]*exec.Query, o.AdmitBatchSize)
	for i := range batch {
		batch[i] = g.ByName(mqoTemplate)
	}
	for remaining := len(batch); remaining > 0; {
		k := eng.AdmitBatch(batch[:remaining])
		if adm.Rounds == 0 {
			adm.AdmittedFirst = k
		}
		adm.Rounds++
		if k < remaining {
			adm.Splits++
			adm.Deferred += remaining - k
		}
		remaining -= k
	}
	eng.AdmitBudget = 0
	sum.Admission = adm
	return sum, nil
}

// mqoResultsMatch verifies a query's shared and private results agree:
// total rows, aggregate values and the full per-group breakdown.
func mqoResultsMatch(a, b *exec.Result) bool {
	if a.Rows != b.Rows || !aggsClose(a.Values, b.Values) || len(a.Groups) != len(b.Groups) {
		return false
	}
	for i := range a.Groups {
		ga, gb := &a.Groups[i], &b.Groups[i]
		if ga.Rows != gb.Rows || !slices.Equal(ga.Key, gb.Key) || !aggsClose(ga.Values, gb.Values) {
			return false
		}
	}
	return true
}
