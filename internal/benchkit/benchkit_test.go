package benchkit

import (
	"testing"
	"time"

	"batchdb/internal/baseline"
	"batchdb/internal/tpcc"
)

// Short smoke runs: the harness functions must produce sane,
// self-consistent measurements at tiny scales.

func smallOpts() OLTPOpts {
	return OLTPOpts{
		Scale: tpcc.SmallScale(1), Workers: 2, Clients: 4,
		Duration: 150 * time.Millisecond, Warmup: 50 * time.Millisecond, Seed: 1,
	}
}

func TestRunOLTPSmoke(t *testing.T) {
	res, err := RunOLTP(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 || res.Committed == 0 {
		t.Fatalf("no progress: %+v", res)
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("implausible latencies: %+v", res)
	}
}

func TestRunPropagationSmoke(t *testing.T) {
	results, err := RunPropagation(PropagationOpts{
		Scale: tpcc.SmallScale(1), Workers: 2, Clients: 4,
		Duration: 150 * time.Millisecond, Seed: 2, Partitions: 4,
		Cores: []int{1, 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("variants = %d, want 4 (row/col x field/whole)", len(results))
	}
	for _, r := range results {
		if r.Entries == 0 || r.Txns == 0 {
			t.Fatalf("%s: empty stream", r.Variant)
		}
		if r.MeasuredPtup <= 0 {
			t.Fatalf("%s: no rate", r.Variant)
		}
		r1 := r.RateAtCores[1][0]
		r10 := r.RateAtCores[10][0]
		if r10 < r1 {
			t.Fatalf("%s: projection not monotone (%f -> %f)", r.Variant, r1, r10)
		}
		if !r.Variant.ColumnStore && r.PerTable == nil {
			t.Fatalf("%s: missing per-table stats", r.Variant)
		}
	}
	// The paper's Fig. 6 headline: update propagation power exceeds the
	// OLTP generation rate by a wide margin; at tiny scale we at least
	// require field-specific row apply to beat 1 txn per CPU-second by
	// a lot.
	for _, r := range results {
		if r.Variant.FieldSpecific && !r.Variant.ColumnStore && r.MeasuredPtxn < 100 {
			t.Fatalf("row/field apply rate implausibly low: %f txn/s", r.MeasuredPtxn)
		}
	}
}

func TestRunHybridSmoke(t *testing.T) {
	res, err := RunHybrid(HybridOpts{
		Scale: tpcc.SmallScale(1), OLTPWorkers: 2, OLAPWorkers: 2, Partitions: 2,
		TxnClients: 2, AnalyticalClients: 2,
		Duration: 200 * time.Millisecond, Warmup: 50 * time.Millisecond, Seed: 3,
		ConstantSize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TxnPerSec <= 0 {
		t.Fatalf("no OLTP progress: %+v", res)
	}
	if res.QueriesPerMin <= 0 {
		t.Fatalf("no OLAP progress: %+v", res)
	}
}

func TestRunHybridDistributedSmoke(t *testing.T) {
	res, err := RunHybrid(HybridOpts{
		Scale: tpcc.SmallScale(1), OLTPWorkers: 2, OLAPWorkers: 2, Partitions: 2,
		TxnClients: 2, AnalyticalClients: 1,
		Duration: 200 * time.Millisecond, Warmup: 50 * time.Millisecond, Seed: 4,
		Distributed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TxnPerSec <= 0 || res.QueriesPerMin <= 0 {
		t.Fatalf("no progress: %+v", res)
	}
	if res.Transport == nil || res.Transport.BytesSent.Load() == 0 {
		t.Fatal("distributed run moved no bytes over the transport")
	}
}

func TestRunHybridNoRep(t *testing.T) {
	res, err := RunHybrid(HybridOpts{
		Scale: tpcc.SmallScale(1), OLTPWorkers: 2,
		TxnClients: 2, Duration: 150 * time.Millisecond, Seed: 5, NoRep: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TxnPerSec <= 0 {
		t.Fatal("NoRep run made no progress")
	}
	if _, err := RunHybrid(HybridOpts{NoRep: true, AnalyticalClients: 1}); err == nil {
		t.Fatal("NoRep with analytical clients accepted")
	}
}

func TestRunBaselineSmoke(t *testing.T) {
	for _, p := range []baseline.Policy{baseline.FairShared, baseline.OLTPPriority} {
		res, err := RunBaseline(BaselineOpts{
			Scale: tpcc.SmallScale(1), Policy: p, Workers: 2,
			TxnClients: 2, AnalyticalClients: 1,
			Duration: 150 * time.Millisecond, Warmup: 30 * time.Millisecond, Seed: 6,
		})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.TxnPerSec <= 0 {
			t.Fatalf("%v: no txn progress", p)
		}
	}
}

func TestRunInterferenceSmoke(t *testing.T) {
	res, err := RunInterference(InterferenceOpts{
		Scale: tpcc.SmallScale(1), Workers: 2, Clients: 2,
		Duration: 150 * time.Millisecond, Warmup: 30 * time.Millisecond, Seed: 7,
		ScanThreads: 1, ScanBytes: 8 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineTPS <= 0 {
		t.Fatal("no baseline throughput")
	}
	if res.ProjectedColocated >= res.BaselineTPS {
		t.Fatalf("projected co-located must degrade: %+v", res)
	}
	if res.ProjectedRemote != res.BaselineTPS {
		t.Fatalf("projected remote must not degrade: %+v", res)
	}
}

func TestRunOLAPScaleSmoke(t *testing.T) {
	sum, err := RunOLAPScale(OLAPScaleOpts{
		Tuples: 10_000, BuildRows: 5_000, Partitions: 4,
		Workers: []int{1, 2}, Reps: 1,
		ApplyScale: tpcc.SmallScale(1), ApplyWorkers: 2, ApplyClients: 2,
		ApplyDuration: 150 * time.Millisecond, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Scan) != 2 || len(sum.Build) != 2 || len(sum.Apply) != 2 {
		t.Fatalf("missing sweep points: %+v", sum)
	}
	for _, p := range sum.Scan {
		if p.ItemsPerSec <= 0 {
			t.Fatalf("scan cell w=%d made no progress", p.Workers)
		}
	}
	// The projection model, not the host, carries the scaling claim: at
	// 8 workers morsel dispatch projects 8x while partition-granular
	// dispatch is bounded by the skewed partition at 1/SkewFrac = 2x.
	p8 := scalePoint(8, time.Millisecond, 1000, new(float64), sum.SkewFrac)
	if p8.ProjectedSpeedup < 2*p8.PartitionDispatchBound {
		t.Fatalf("morsel projection %0.1fx not ahead of partition bound %0.1fx",
			p8.ProjectedSpeedup, p8.PartitionDispatchBound)
	}
	if sum.Apply[0].Entries == 0 || sum.Apply[0].Entries != sum.Apply[1].Entries {
		t.Fatalf("apply cells must share one stream: %+v", sum.Apply)
	}
	if sum.ApplyColdNSPerEntry <= 0 || sum.ApplyWarmNSPerEntry <= 0 {
		t.Fatalf("cold/warm apply not measured: %+v", sum)
	}
}

// BenchmarkOLAPScale gives CI a one-iteration smoke over the scan /
// build / apply scaling sweep ("-bench . -benchtime 1x"); real numbers
// come from cmd/batchdb-bench -exp olapscale.
func BenchmarkOLAPScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunOLAPScale(OLAPScaleOpts{
			Tuples: 10_000, BuildRows: 5_000, Partitions: 4,
			Workers: []int{1, 2}, Reps: 1,
			ApplyScale: tpcc.SmallScale(1), ApplyWorkers: 2, ApplyClients: 2,
			ApplyDuration: 100 * time.Millisecond, Seed: 8,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
