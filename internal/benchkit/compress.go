package benchkit

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"time"

	"batchdb/internal/chbench"
	"batchdb/internal/mvcc"
	"batchdb/internal/olap"
	"batchdb/internal/olap/exec"
	"batchdb/internal/oltp"
	"batchdb/internal/storage"
	"batchdb/internal/tpcc"
)

// CompressOpts parameterizes the compressed-block benchmark: a CH-scale
// snapshot freshened through the update pipeline, then shared scans
// whose predicates zone maps cannot disprove (ol_quantity is 1..10 in
// every block) run with the vectorized encoded-domain kernels on vs
// off, and a warm ApplyPending round timed with and without per-block
// re-encoding.
type CompressOpts struct {
	Scale      tpcc.Scale
	Partitions int
	// Workers is the engine worker count of the sweep scans.
	Workers int
	// Reps is the timed repetitions per cell (best-of).
	Reps int
	// MorselTuples sets the morsel, zone-map block and encoded-block
	// size (they share the block grid).
	MorselTuples int
	// AppendOrders freshens the snapshot through the apply pipeline so
	// the timed warm round re-encodes dirtied blocks, not nothing.
	AppendOrders int
	OLTPWorkers  int
	Seed         int64
}

// CompressPoint is one query cell of the sweep: the same scan evaluated
// by the encoded-domain bitmap kernels vs per-tuple comparisons on the
// identical replica (zone maps active in both; the predicates are
// chosen so they cannot prune and the vectors decide every tuple).
type CompressPoint struct {
	Name string `json:"name"`
	// Selectivity is matched rows / live driver rows, measured.
	Selectivity float64 `json:"selectivity"`
	Rows        int     `json:"rows"`
	// WallVecNS / WallScalarNS are best-of-reps scan times with the
	// vectorized kernels enabled / disabled.
	WallVecNS    int64   `json:"wall_vec_ns"`
	WallScalarNS int64   `json:"wall_scalar_ns"`
	Speedup      float64 `json:"speedup"`
	// BlocksVectorized / BlocksScanned are the dispatch counts of one
	// vectorized run: morsels answered from bitmaps vs all scanned
	// morsels (the gap is mixed/stale/unencodable fallbacks).
	BlocksVectorized int64   `json:"blocks_vectorized"`
	BlocksScanned    int64   `json:"blocks_scanned"`
	VecFrac          float64 `json:"vec_frac"`
}

// CompressColStat reports the encoded footprint of one synopsis-active
// column: how many of its blocks chose each encoding and the byte
// ratio. None blocks declined honestly (encoding would not have saved
// >=1/8) and fall back to raw scans.
type CompressColStat struct {
	Table        string  `json:"table"`
	Column       string  `json:"column"`
	Blocks       int     `json:"blocks"`
	RawBytes     int64   `json:"raw_bytes"`
	EncodedBytes int64   `json:"encoded_bytes"`
	Ratio        float64 `json:"ratio"`
	NoneBlocks   int     `json:"none_blocks"`
	ForBlocks    int     `json:"for_blocks"`
	DictBlocks   int     `json:"dict_blocks"`
	RleBlocks    int     `json:"rle_blocks"`
}

// CompressSummary is the JSON record written to BENCH_COMPRESS.json.
type CompressSummary struct {
	GOMAXPROCS   int    `json:"gomaxprocs"`
	NumCPU       int    `json:"num_cpu"`
	Note         string `json:"note"`
	Warehouses   int    `json:"warehouses"`
	Partitions   int    `json:"partitions"`
	Workers      int    `json:"workers"`
	MorselTuples int    `json:"morsel_tuples"`
	OrderLines   int    `json:"order_lines"`

	Sweep   []CompressPoint   `json:"sweep"`
	Columns []CompressColStat `json:"columns"`

	// ApplyWarmOnNSPerEntry / ApplyWarmOffNSPerEntry time the same warm
	// ApplyPending round (identical captured stream, equal workers) on a
	// compressed replica vs a zone-mapped-only one (best over the
	// pairs); OverheadFrac is the median over pairs of the per-pair
	// on/off ratio minus one — the re-encoding cost the <=15% budget
	// bounds, on top of zone-map maintenance.
	ApplyWarmOnNSPerEntry  float64 `json:"apply_warm_on_ns_per_entry"`
	ApplyWarmOffNSPerEntry float64 `json:"apply_warm_off_ns_per_entry"`
	ApplyOverheadFrac      float64 `json:"apply_overhead_frac"`
}

// RunCompress measures what the per-block encoded vectors buy on scans
// zone maps cannot help with, and what maintaining them costs in the
// quiesced apply windows.
func RunCompress(o CompressOpts) (*CompressSummary, error) {
	if o.Scale.Warehouses == 0 {
		o.Scale = tpcc.BenchScale(4)
	}
	if o.Partitions <= 0 {
		o.Partitions = 8
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Reps <= 0 {
		o.Reps = 5
	}
	if o.MorselTuples <= 0 {
		o.MorselTuples = 1024
	}
	if o.AppendOrders <= 0 {
		o.AppendOrders = o.Scale.Warehouses * o.Scale.DistrictsPerWarehouse *
			o.Scale.InitialOrdersPerDistrict / 10
	}
	if o.OLTPWorkers <= 0 {
		o.OLTPWorkers = 4
	}

	db := tpcc.NewDB(o.Scale)
	if err := tpcc.Generate(db, o.Seed); err != nil {
		return nil, err
	}
	// Pairs of replicas for the warm-apply comparison: both maintain
	// zone maps (that cost is priced in BENCH_PRUNE.json); only the "on"
	// side re-encodes dirty blocks, so the ratio isolates the
	// compression increment. repsOn[0] hosts the scan sweep.
	const applyPairs = 4
	var repsOn, repsOff []*olap.Replica
	for i := 0; i < applyPairs; i++ {
		rOn, err := chbench.NewReplica(db, o.Partitions)
		if err != nil {
			return nil, err
		}
		rOn.EnableZoneMaps(o.MorselTuples)
		rOn.EnableCompression()
		rOff, err := chbench.NewReplica(db, o.Partitions)
		if err != nil {
			return nil, err
		}
		rOff.EnableZoneMaps(o.MorselTuples)
		repsOn, repsOff = append(repsOn, rOn), append(repsOff, rOff)
	}
	repOn := repsOn[0]

	// Freshen the snapshot through the OLTP engine so the timed warm
	// round has dirty blocks to re-encode; deliveries patch delivery
	// dates, dirtying already-encoded blocks (the re-encode path), not
	// just appending fresh ones.
	sink := &pushCapture{}
	e, err := oltp.New(db.Store, oltp.Config{
		Workers: o.OLTPWorkers, PushPeriod: time.Hour,
		Replicated: tpcc.ReplicatedTables(), FieldSpecific: true,
	})
	if err != nil {
		return nil, err
	}
	tpcc.RegisterProcs(e, db, false)
	e.SetSink(sink)
	e.Start()
	drv := tpcc.NewDriver(db.Scale, o.Seed+1)
	newOrders := func(n int) error {
		for i := 0; i < n; i++ {
			a := drv.NewOrder()
			for {
				r := e.Exec(tpcc.ProcNewOrder, a.Encode())
				if r.Err == nil || errors.Is(r.Err, tpcc.ErrRollback) {
					break
				}
				if !errors.Is(r.Err, mvcc.ErrConflict) {
					return r.Err
				}
			}
		}
		return nil
	}
	if err := newOrders(o.AppendOrders / 2); err != nil {
		e.Close()
		return nil, err
	}
	e.SyncUpdates()
	if err := newOrders(o.AppendOrders - o.AppendOrders/2); err != nil {
		e.Close()
		return nil, err
	}
	for w := int64(1); w <= int64(o.Scale.Warehouses); w++ {
		for i := 0; i < 10; i++ {
			d := &tpcc.DeliveryArgs{WID: w, CarrierID: 1, Date: tpcc.LoadEpoch + int64(time.Hour)}
			r := e.Exec(tpcc.ProcDelivery, d.Encode())
			if r.Err != nil && !errors.Is(r.Err, mvcc.ErrConflict) {
				e.Close()
				return nil, r.Err
			}
		}
	}
	e.SyncUpdates()
	e.Close()
	if len(sink.pushes) < 2 {
		return nil, fmt.Errorf("benchkit: compress capture has %d pushes, need 2", len(sink.pushes))
	}

	sum := &CompressSummary{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Note: "sweep scans order_line with predicates on ol_quantity (5 in every initially " +
			"loaded line, 1..10 uniform in appended ones, so blocks mixing both defeat zone-map " +
			"pruning and the encoded-domain kernels decide the tuples) plus one all-pass cell " +
			"where vectorization can only add overhead. Speedup tracks selectivity: selective " +
			"cells touch only bitmap survivors, the all-pass cell materializes everything " +
			"anyway. Warm-apply overhead is re-encoding on top of zone-map maintenance (both " +
			"sides maintain zone maps); it is all re-encode CPU, so on a single-core host it " +
			"lands on the apply wall in full, while multi-core hosts overlap it across " +
			"partition apply workers",
		Warehouses: o.Scale.Warehouses, Partitions: o.Partitions,
		Workers: o.Workers, MorselTuples: o.MorselTuples,
	}

	// The workload's steady-state synopsis set (same as the pruning
	// bench): sweep and CH predicates filter quantity, o_id, delivery
	// dates and carrier. Encoded vectors cover exactly these columns.
	for _, rep := range append(append([]*olap.Replica{}, repsOn...), repsOff...) {
		rep.Table(tpcc.TOrderLine).RequestSynopses([]olap.ColRange{
			{Col: tpcc.OLOID}, {Col: tpcc.OLDeliveryD}, {Col: tpcc.OLQuantity},
		})
		rep.Table(tpcc.TOrder).RequestSynopses([]olap.ColRange{{Col: tpcc.OCarrierID}})
		rep.ActivateSynopses()
	}

	// Warm-apply cost: identical stream, interleaved on/off rounds, GC
	// fenced, median of per-pair ratios (see RunPrune for rationale).
	warm := func(rep *olap.Replica) (float64, error) {
		a, aUpTo := sink.prefix(1)
		rep.SetApplyWorkers(o.Workers)
		rep.ApplyUpdates(a, aUpTo)
		if _, err := rep.ApplyPending(aUpTo); err != nil {
			return 0, err
		}
		rep.ApplyUpdates(sink.suffix(1), sink.upTo)
		runtime.GC()
		t0 := time.Now()
		st, err := rep.ApplyPending(sink.upTo)
		wall := time.Since(t0)
		if err != nil {
			return 0, err
		}
		if st.Entries == 0 {
			return 0, fmt.Errorf("benchkit: warm apply round had no entries")
		}
		return float64(wall) / float64(st.Entries), nil
	}
	var ratios []float64
	for i := 0; i < applyPairs; i++ {
		var on, off float64
		var err error
		if i%2 == 0 {
			on, err = warm(repsOn[i])
			if err == nil {
				off, err = warm(repsOff[i])
			}
		} else {
			off, err = warm(repsOff[i])
			if err == nil {
				on, err = warm(repsOn[i])
			}
		}
		if err != nil {
			return nil, fmt.Errorf("benchkit: compress warm apply: %w", err)
		}
		ratios = append(ratios, on/off)
		if sum.ApplyWarmOnNSPerEntry == 0 || on < sum.ApplyWarmOnNSPerEntry {
			sum.ApplyWarmOnNSPerEntry = on
		}
		if sum.ApplyWarmOffNSPerEntry == 0 || off < sum.ApplyWarmOffNSPerEntry {
			sum.ApplyWarmOffNSPerEntry = off
		}
	}
	sort.Float64s(ratios)
	sum.ApplyOverheadFrac = ratios[len(ratios)/2] - 1
	if len(ratios)%2 == 0 {
		sum.ApplyOverheadFrac = (ratios[len(ratios)/2-1]+ratios[len(ratios)/2])/2 - 1
	}

	live := repOn.Table(tpcc.TOrderLine).Live()
	sum.OrderLines = live

	eng := exec.NewEngine(repOn, o.Workers)
	eng.MorselTuples = o.MorselTuples
	var stats olap.SchedulerStats
	eng.AttachStats(&stats)

	ols := db.Schemas.OrderLine
	sumAmount := exec.AggSpec{Kind: exec.Sum, Value: func(d []byte, _ [][]byte) float64 {
		return ols.GetFloat64(d, tpcc.OLAmount)
	}}
	cells := []struct {
		name  string
		where []exec.Pred
	}{
		// ol_quantity is 5 in every initially loaded line and uniform
		// 1..10 only in appended ones, so qty=5 passes most tuples while
		// the {2,7,9} membership and <=3 interval cells select only
		// appended lines — dictionary membership and FOR-offset interval
		// kernels at very different selectivities.
		{"qty=5", []exec.Pred{exec.CmpInt(tpcc.OLQuantity, exec.EQ, 5)}},
		{"qty in {2,7,9}", []exec.Pred{exec.InInt(tpcc.OLQuantity, 2, 7, 9)}},
		{"qty<=3", []exec.Pred{exec.CmpInt(tpcc.OLQuantity, exec.LE, 3)}},
		// Conjunction: both columns must vectorize for the bitmap path.
		{"qty=5 & delivered", []exec.Pred{
			exec.CmpInt(tpcc.OLQuantity, exec.EQ, 5),
			exec.CmpInt(tpcc.OLDeliveryD, exec.GE, 1),
		}},
		// All-pass: every tuple survives the bitmap, so this cell prices
		// pure kernel overhead (speedup ~1 or slightly below is honest).
		{"qty>=1 (all)", []exec.Pred{exec.CmpInt(tpcc.OLQuantity, exec.GE, 1)}},
	}
	for _, c := range cells {
		q := &exec.Query{
			Name:   c.name,
			Driver: tpcc.TOrderLine,
			Where:  c.where,
			Aggs:   []exec.AggSpec{{Kind: exec.Count}, sumAmount},
		}
		run := func(disable bool) (exec.Result, time.Duration, error) {
			eng.DisableVectorized = disable
			res := eng.RunBatch([]*exec.Query{q}, 0) // warmup + result capture
			if res[0].Err != nil {
				return res[0], 0, res[0].Err
			}
			wall := bestOf(o.Reps, func() error {
				return eng.RunBatch([]*exec.Query{q}, 0)[0].Err
			})
			if wall < 0 {
				return res[0], 0, fmt.Errorf("benchkit: compress scan failed")
			}
			return res[0], wall, nil
		}
		// One counted run for the dispatch stats, outside the timing.
		v0, s0 := stats.ExecBlocksVectorized.Load(), stats.ExecBlocksScanned.Load()
		eng.DisableVectorized = false
		if r := eng.RunBatch([]*exec.Query{q}, 0); r[0].Err != nil {
			return nil, r[0].Err
		}
		vectorized := int64(stats.ExecBlocksVectorized.Load() - v0)
		scanned := int64(stats.ExecBlocksScanned.Load() - s0)

		resVec, wallVec, err := run(false)
		if err != nil {
			return nil, err
		}
		resScalar, wallScalar, err := run(true)
		if err != nil {
			return nil, err
		}
		if resVec.Rows != resScalar.Rows || !aggsClose(resVec.Values, resScalar.Values) {
			return nil, fmt.Errorf("benchkit: vectorization changed %s results: %d/%v vs %d/%v",
				q.Name, resVec.Rows, resVec.Values, resScalar.Rows, resScalar.Values)
		}
		pt := CompressPoint{
			Name: c.name, Rows: int(resVec.Rows),
			Selectivity:      float64(resVec.Rows) / float64(live),
			WallVecNS:        int64(wallVec),
			WallScalarNS:     int64(wallScalar),
			BlocksVectorized: vectorized,
			BlocksScanned:    scanned,
		}
		if wallVec > 0 {
			pt.Speedup = float64(wallScalar) / float64(wallVec)
		}
		if scanned > 0 {
			pt.VecFrac = float64(vectorized) / float64(scanned)
		}
		sum.Sweep = append(sum.Sweep, pt)
	}

	// Per-column encoded footprints of the active synopsis set.
	for _, tc := range []struct {
		name string
		id   storage.TableID
	}{{"order_line", tpcc.TOrderLine}, {"order", tpcc.TOrder}} {
		tbl := repOn.Table(tc.id)
		for _, cc := range tbl.CompressionStats() {
			cs := CompressColStat{
				Table:        tc.name,
				Column:       tbl.Schema.Columns[cc.Col].Name,
				Blocks:       cc.Blocks,
				RawBytes:     cc.RawBytes,
				EncodedBytes: cc.EncodedBytes,
				NoneBlocks:   cc.Kinds[0],
				ForBlocks:    cc.Kinds[1],
				DictBlocks:   cc.Kinds[2],
				RleBlocks:    cc.Kinds[3],
			}
			if cc.RawBytes > 0 {
				cs.Ratio = float64(cc.EncodedBytes) / float64(cc.RawBytes)
			}
			sum.Columns = append(sum.Columns, cs)
		}
	}
	return sum, nil
}
