package benchkit

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"batchdb/internal/chbench"
	"batchdb/internal/fleet"
	"batchdb/internal/fleet/node"
	"batchdb/internal/metrics"
	"batchdb/internal/mvcc"
	"batchdb/internal/network"
	"batchdb/internal/olap/exec"
	"batchdb/internal/oltp"
	"batchdb/internal/replica"
	"batchdb/internal/tpcc"
)

// ChaosOpts parameterizes the fleet fault-injection experiment: a TPC-C
// primary feeding a router-fronted fleet of remote OLAP replicas while
// connections are killed and severed at random (ISSUE 7 acceptance).
type ChaosOpts struct {
	Scale       tpcc.Scale
	OLTPWorkers int
	OLAPWorkers int
	Partitions  int
	// Replicas is the fleet size (paper-model: one replica per OLAP
	// socket; default 3).
	Replicas int
	// TxnClients and AnalyticalClients are closed-loop client counts.
	TxnClients        int
	AnalyticalClients int
	Duration          time.Duration
	Warmup            time.Duration
	Seed              int64
	// Deadline is the per-query routing deadline; MaxStaleness the
	// per-query snapshot-age bound (StaleServe: older answers come back
	// flagged, never silently).
	Deadline     time.Duration
	MaxStaleness time.Duration
	// FaultEvery is the mean period between injected faults (kill or
	// one-shot sever on a random member).
	FaultEvery time.Duration
	// OverheadProbes is the number of query pairs used to price the
	// router against direct node dispatch on the healthy path.
	OverheadProbes int
}

// ChaosResult reports the robustness contract the router must hold
// under fault injection.
type ChaosResult struct {
	// Routing outcome counts over the measured window.
	Queries  uint64
	Answered uint64
	Rejected uint64
	Shed     uint64
	// SuccessRate is Answered/Queries (acceptance: >= 0.99 under
	// kill/sever chaos with 3 replicas).
	SuccessRate float64
	// StaleServed counts answers beyond the bound that were served
	// flagged; BoundViolations counts answers beyond the bound that
	// were NOT flagged (acceptance: zero).
	StaleServed     uint64
	BoundViolations uint64
	// Fault-injection and recovery machinery counts.
	Kills     uint64
	Severs    uint64
	Ejections uint64
	Probes    uint64
	Readmits  uint64
	Retries   uint64
	Hedges    uint64
	HedgeWins uint64
	// Routed query latency under chaos.
	QueryP50, QueryP99 time.Duration
	// Healthy-path overhead: median direct node query vs median routed
	// query before any fault is injected (acceptance: <= 5%).
	DirectP50    time.Duration
	RoutedP50    time.Duration
	OverheadFrac float64
	// OLTP side stays alive through the chaos.
	TxnPerSec float64
}

func (o *ChaosOpts) defaults() {
	if o.Replicas <= 0 {
		o.Replicas = 3
	}
	if o.Deadline <= 0 {
		o.Deadline = 2 * time.Second
	}
	if o.MaxStaleness <= 0 {
		o.MaxStaleness = 1 * time.Second
	}
	if o.FaultEvery <= 0 {
		o.FaultEvery = 80 * time.Millisecond
	}
	if o.OverheadProbes <= 0 {
		o.OverheadProbes = 60
	}
}

// RunChaos executes the fleet fault-injection experiment.
func RunChaos(o ChaosOpts) (ChaosResult, error) {
	o.defaults()
	db := tpcc.NewDB(o.Scale)
	if err := tpcc.Generate(db, o.Seed); err != nil {
		return ChaosResult{}, err
	}
	engine, err := oltp.New(db.Store, oltp.Config{
		Workers:       o.OLTPWorkers,
		Replicated:    tpcc.ReplicatedTables(),
		FieldSpecific: true,
		PushPeriod:    20 * time.Millisecond,
	})
	if err != nil {
		return ChaosResult{}, err
	}
	tpcc.RegisterProcs(engine, db, true)

	// Replication accept loop: every (re)connecting node gets a
	// publisher on the live feed plus a fresh snapshot — the same
	// contract as the root API's ServeReplicas.
	ln, err := network.Listen("127.0.0.1:0", nil)
	if err != nil {
		return ChaosResult{}, err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			pub := replica.NewPublisher(conn, engine)
			engine.AddSink(pub)
			go func() {
				pub.Serve()
				engine.RemoveSink(pub)
			}()
			go func() {
				if _, err := replica.ShipSnapshot(conn, db.Store, chbench.Tables(), 4096); err != nil {
					conn.Close()
				}
			}()
		}
	}()
	engine.Start()

	nodes := make([]*node.Node, o.Replicas)
	backends := make([]fleet.Backend[*exec.Query, exec.Result], o.Replicas)
	for i := range nodes {
		rep := chbench.EmptyReplica(db, o.Partitions)
		n, err := node.Connect(ln.Addr(), rep, node.Config{
			Workers:        o.OLAPWorkers,
			Retry:          network.RetryPolicy{Attempts: 50, BaseDelay: 5 * time.Millisecond},
			ReconnectPause: 10 * time.Millisecond,
		})
		if err != nil {
			ln.Close()
			engine.Close()
			return ChaosResult{}, fmt.Errorf("node %d: %w", i, err)
		}
		nodes[i] = n
		backends[i] = n
	}
	router, err := fleet.NewRouter[*exec.Query, exec.Result](backends, fleet.Config{
		Deadline:         o.Deadline,
		MaxAttempts:      3,
		FailureThreshold: 3,
		ProbeBackoff:     20 * time.Millisecond,
		EjectStaleness:   o.MaxStaleness,
	})
	if err != nil {
		ln.Close()
		engine.Close()
		return ChaosResult{}, err
	}
	defer func() {
		router.Close()
		for _, n := range nodes {
			n.Close()
		}
		ln.Close()
		engine.Close()
	}()

	// Healthy-path overhead: interleaved direct-vs-routed probes on the
	// same freshly generated queries, before any fault. The probe router
	// fronts only node 0 — the node the direct calls hit — so both sides
	// pay the same batch sync round on the same member and the delta is
	// pure router machinery (health reads, breaker, budget bookkeeping).
	var res ChaosResult
	var directHist, routedHist metrics.Histogram
	probeGen := chbench.NewGen(db.Schemas, o.Seed+555)
	budget := fleet.Budget{MaxStaleness: o.MaxStaleness, StalePolicy: fleet.StaleServe}
	probeRouter, err := fleet.NewRouter[*exec.Query, exec.Result](backends[:1], fleet.Config{
		Deadline: o.Deadline,
	})
	if err != nil {
		return ChaosResult{}, err
	}
	for i := 0; i < o.OverheadProbes; i++ {
		q := probeGen.Next()
		start := time.Now()
		if _, err := nodes[0].QueryContext(context.Background(), q); err != nil {
			return ChaosResult{}, fmt.Errorf("direct probe: %w", err)
		}
		directHist.RecordSince(start)
		start = time.Now()
		if _, _, err := probeRouter.Query(context.Background(), q, budget); err != nil {
			return ChaosResult{}, fmt.Errorf("routed probe: %w", err)
		}
		routedHist.RecordSince(start)
	}
	probeRouter.Close()
	res.DirectP50 = time.Duration(directHist.Percentile(50))
	res.RoutedP50 = time.Duration(routedHist.Percentile(50))
	if res.DirectP50 > 0 {
		res.OverheadFrac = float64(res.RoutedP50-res.DirectP50) / float64(res.DirectP50)
	}
	// Snapshot so chaos-phase counters start clean of the probe phase.
	baseRejected := router.Stats().Rejected.Load()
	baseShed := router.Stats().Shed.Load()

	var (
		txnCount                                atomic.Uint64
		queries, answered, staleServed, bounded atomic.Uint64
		kills, severs                           atomic.Uint64
		qryHist                                 metrics.Histogram
		failure                                 error
		failOnce                                sync.Once
	)
	stop := make(chan struct{})
	measuring := make(chan struct{})
	var wg sync.WaitGroup

	for c := 0; c < o.TxnClients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			drv := tpcc.NewDriver(db.Scale, seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				proc, args := drv.Next()
				r := engine.Exec(proc, args)
				switch {
				case r.Err == nil, errors.Is(r.Err, tpcc.ErrRollback), errors.Is(r.Err, mvcc.ErrConflict):
					select {
					case <-measuring:
						if r.Err == nil {
							txnCount.Add(1)
						}
					default:
					}
				case errors.Is(r.Err, oltp.ErrClosed):
					return
				default:
					failOnce.Do(func() { failure = r.Err })
					return
				}
			}
		}(o.Seed + int64(c) + 1)
	}

	for c := 0; c < o.AnalyticalClients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			gen := chbench.NewGen(db.Schemas, seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := gen.Next()
				start := time.Now()
				r, meta, err := router.Query(context.Background(), q, budget)
				measured := false
				select {
				case <-measuring:
					measured = true
				default:
				}
				if measured {
					queries.Add(1)
				}
				if err != nil {
					continue // typed rejection within the deadline, not a hang
				}
				if r.Err != nil {
					failOnce.Do(func() { failure = r.Err })
					return
				}
				if measured {
					answered.Add(1)
					qryHist.RecordSince(start)
					if meta.Stale {
						staleServed.Add(1)
					} else if meta.StalenessNanos > int64(o.MaxStaleness) {
						bounded.Add(1)
					}
				}
			}
		}(o.Seed + 10000 + int64(c))
	}

	// Fault injector: repeated kills and one-shot severs on random
	// members — the acceptance-criteria fault mix.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rnd := rand.New(rand.NewSource(o.Seed + 99))
		for {
			select {
			case <-stop:
				return
			case <-time.After(o.FaultEvery/2 + time.Duration(rnd.Int63n(int64(o.FaultEvery)))):
			}
			n := nodes[rnd.Intn(len(nodes))]
			if rnd.Intn(2) == 0 {
				n.KillConnection()
				kills.Add(1)
			} else {
				n.InjectFault(network.SeverAfter(network.FaultRecv, 1+rnd.Intn(50)))
				severs.Add(1)
			}
		}
	}()

	time.Sleep(o.Warmup)
	close(measuring)
	t0 := time.Now()
	time.Sleep(o.Duration)
	elapsed := time.Since(t0)
	close(stop)
	wg.Wait()
	if failure != nil {
		return ChaosResult{}, failure
	}

	st := router.Stats()
	res.Queries = queries.Load()
	res.Answered = answered.Load()
	res.Rejected = st.Rejected.Load() - baseRejected
	res.Shed = st.Shed.Load() - baseShed
	if res.Queries > 0 {
		res.SuccessRate = float64(res.Answered) / float64(res.Queries)
	}
	res.StaleServed = staleServed.Load()
	res.BoundViolations = bounded.Load()
	res.Kills = kills.Load()
	res.Severs = severs.Load()
	res.Ejections = st.Ejections.Load()
	res.Probes = st.Probes.Load()
	res.Readmits = st.Readmits.Load()
	res.Retries = st.Retries.Load()
	res.Hedges = st.Hedges.Load()
	res.HedgeWins = st.HedgeWins.Load()
	res.QueryP50 = time.Duration(qryHist.Percentile(50))
	res.QueryP99 = time.Duration(qryHist.Percentile(99))
	res.TxnPerSec = float64(txnCount.Load()) / elapsed.Seconds()
	return res, nil
}
