package resmodel

import (
	"math/rand"
	"testing"
	"time"
)

// plant is a simulated latency source: p99 stays at baseline up to a
// knee rate, then grows linearly. Deterministic, monotone in rate —
// the simplest model of "co-batched ingest chunks inflate every
// transaction's latency past some admission rate".
type plant struct {
	baseline time.Duration
	knee     float64
	beta     float64 // fractional latency growth per rate unit past knee
}

func (p plant) p99(rate float64) time.Duration {
	if rate <= p.knee {
		return p.baseline
	}
	return time.Duration(float64(p.baseline) * (1 + p.beta*(rate-p.knee)))
}

// TestGovernorConverges drives the controller against randomized plants,
// baselines and SLO multipliers and asserts the ISSUE's three
// controller properties: convergence into a bounded band around the
// crossing rate, no oscillation beyond that band, and cuts happening
// exactly on bound violations.
func TestGovernorConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		baseline := time.Duration(1+rng.Intn(50)) * time.Millisecond
		mult := 1.2 + rng.Float64()*1.8
		knee := 5 + rng.Float64()*45
		rStar := knee + 5 + rng.Float64()*95 // rate where p99 crosses the bound
		beta := (mult - 1) / (rStar - knee)
		pl := plant{baseline: baseline, knee: knee, beta: beta}

		cfg := GovernorConfig{
			BaselineP99:   baseline,
			SLOMultiplier: mult,
			MinRate:       0.5,
			MaxRate:       rStar * (1.5 + rng.Float64()*2.5),
		}
		g := NewGovernor(cfg)
		cfg.fill() // resolve defaults for the assertions below
		bound := float64(g.Bound())
		// Rate below which the plant sits under the headroom threshold
		// (the governor's probe region). headroom*mult > 1 for every
		// generated multiplier, so rHead is well-defined.
		rHead := knee + (cfg.Headroom*mult-1)/beta

		const (
			ticks  = 300
			settle = 150
		)
		rate := g.Rate()
		var rates []float64
		for i := 0; i < ticks; i++ {
			obs := pl.p99(rate)
			prev := rate
			rate = g.Observe(obs)
			if rate < cfg.MinRate-1e-9 || rate > cfg.MaxRate+1e-9 {
				t.Fatalf("trial %d: rate %v outside [%v, %v]", trial, rate, cfg.MinRate, cfg.MaxRate)
			}
			if float64(obs) > bound {
				// Violation ⇒ monotone throttle response: the rate must
				// not grow, and must shrink unless already clamped.
				if rate > prev {
					t.Fatalf("trial %d tick %d: rate rose on a violation (%v -> %v)", trial, i, prev, rate)
				}
				if rate >= prev && prev > cfg.MinRate {
					t.Fatalf("trial %d tick %d: no cut on violation at rate %v", trial, i, prev)
				}
			} else if rate < prev {
				t.Fatalf("trial %d tick %d: rate cut without a violation (p99=%v bound=%v)", trial, i, obs, bound)
			}
			if i >= settle {
				rates = append(rates, rate)
			}
		}
		if g.Throttles() == 0 {
			// Legitimate only if slow start parked inside the hold band
			// before ever crossing: the plant is then held at the bound
			// with zero cuts, which is ideal convergence.
			final := rates[len(rates)-1]
			if final < rHead-1e-9 || float64(pl.p99(final)) > bound {
				t.Fatalf("trial %d: no throttle and parked badly at %v (rHead %v, rStar %v)", trial, final, rHead, rStar)
			}
		}
		// Post-settle band. Ceiling: an additive probe overshoots the
		// probe region by at most one step, and a slow-start park sits at
		// most one doubling past rHead but never past the crossing.
		// Floor: cuts only fire above the crossing rate, so a cut lands
		// no lower than DecreaseFactor*rStar, and a park sits at rHead or
		// above.
		hi := rHead + cfg.IncreaseStep
		park := 2 * rHead
		if park > rStar {
			park = rStar
		}
		if park > hi {
			hi = park
		}
		if hi > cfg.MaxRate {
			hi = cfg.MaxRate
		}
		lo := cfg.DecreaseFactor * rStar
		if rHead < lo {
			lo = rHead
		}
		if lo < cfg.MinRate {
			lo = cfg.MinRate
		}
		for i, r := range rates {
			if r > hi+1e-9 {
				t.Fatalf("trial %d: settled rate %v above band ceiling %v (tick %d)", trial, r, hi, settle+i)
			}
			if r < lo-1e-9 {
				t.Fatalf("trial %d: settled rate %v below band floor %v (tick %d)", trial, r, lo, settle+i)
			}
		}
		// No oscillation beyond bound: a violation is cut back under the
		// crossing within at most two observations (DecreaseFactor^2
		// times any reachable rate sits below rStar for every generated
		// plant), so three consecutive violating rates cannot happen.
		for i := 2; i < len(rates); i++ {
			if rates[i-2] > rStar && rates[i-1] > rStar && rates[i] > rStar {
				t.Fatalf("trial %d: three consecutive settled rates above the crossing (%v, %v, %v > %v)",
					trial, rates[i-2], rates[i-1], rates[i], rStar)
			}
		}
	}
}

// TestGovernorMonotoneStep pins single-step monotonicity from identical
// states: observing a larger p99 never yields a larger rate.
func TestGovernorMonotoneStep(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		cfg := GovernorConfig{
			BaselineP99:   time.Duration(1+rng.Intn(40)) * time.Millisecond,
			SLOMultiplier: 1.1 + rng.Float64()*2,
		}
		startRate := 0.5 + rng.Float64()*200
		slow := rng.Intn(2) == 0
		mk := func() *Governor {
			g := NewGovernor(cfg)
			g.rate = startRate
			g.slowStart = slow
			return g
		}
		a := time.Duration(rng.Int63n(int64(200 * time.Millisecond)))
		b := time.Duration(rng.Int63n(int64(200 * time.Millisecond)))
		if a > b {
			a, b = b, a
		}
		ra := mk().Observe(a)
		rb := mk().Observe(b)
		if rb > ra {
			t.Fatalf("trial %d: p99 %v -> rate %v but larger p99 %v -> larger rate %v", trial, a, ra, b, rb)
		}
	}
}

// TestGovernorHoldBandAndIdle pins the two non-moving behaviours: inside
// the hold band the rate parks, and a signal-free window (no OLTP
// traffic) probes upward because there is nothing to protect.
func TestGovernorHoldBandAndIdle(t *testing.T) {
	cfg := GovernorConfig{BaselineP99: 10 * time.Millisecond, SLOMultiplier: 1.5}
	g := NewGovernor(cfg)
	g.slowStart = false
	g.rate = 42

	inBand := time.Duration(float64(g.Bound()) * 0.95) // above headroom, below bound
	if r := g.Observe(inBand); r != 42 {
		t.Fatalf("rate moved inside hold band: %v", r)
	}
	if r := g.Observe(0); r <= 42 {
		t.Fatalf("idle window did not probe upward: %v", r)
	}

	// Sustained violation walks the rate down to MinRate and no further.
	for i := 0; i < 100; i++ {
		g.Observe(time.Second)
	}
	cfg2 := cfg
	cfg2.fill()
	if r := g.Rate(); r != cfg2.MinRate {
		t.Fatalf("sustained violation settled at %v, want MinRate %v", r, cfg2.MinRate)
	}
	if g.Throttles() == 0 {
		t.Fatal("throttle counter never moved")
	}
}
