package resmodel

import (
	"sync"
	"time"
)

// GovernorConfig parameterizes an ingest admission-control governor.
type GovernorConfig struct {
	// BaselineP99 is the unloaded OLTP p99 the SLO is anchored to.
	BaselineP99 time.Duration
	// SLOMultiplier bounds tolerable degradation: the governor holds the
	// observed p99 at or below BaselineP99 * SLOMultiplier. Default 1.5.
	SLOMultiplier float64
	// MinRate and MaxRate clamp the admitted rate (units are the
	// caller's — chunks/sec for the ingest loader). Defaults 0.25 and
	// 256.
	MinRate float64
	MaxRate float64
	// IncreaseStep is the additive probe applied when the signal is
	// comfortably under the bound. Default (MaxRate-MinRate)/64.
	IncreaseStep float64
	// DecreaseFactor is the multiplicative cut applied on a bound
	// violation. Default 0.5.
	DecreaseFactor float64
	// Headroom defines the hold band: the rate only increases while
	// p99 < Headroom * bound, so the controller parks between probe and
	// cut instead of oscillating against the bound. Default 0.85.
	Headroom float64
}

func (c *GovernorConfig) fill() {
	if c.SLOMultiplier <= 1 {
		c.SLOMultiplier = 1.5
	}
	if c.MinRate <= 0 {
		c.MinRate = 0.25
	}
	if c.MaxRate <= c.MinRate {
		c.MaxRate = c.MinRate * 1024
	}
	if c.IncreaseStep <= 0 {
		c.IncreaseStep = (c.MaxRate - c.MinRate) / 64
	}
	if c.DecreaseFactor <= 0 || c.DecreaseFactor >= 1 {
		c.DecreaseFactor = 0.5
	}
	if c.Headroom <= 0 || c.Headroom > 1 {
		c.Headroom = 0.85
	}
}

// Governor is the feedback controller that throttles bulk-ingest
// admission to keep the interactive OLTP p99 within a configured
// multiple of its unloaded baseline — the admission-control half of the
// paper's performance-isolation promise, extended from physical
// placement to workload rate (Greenplum gates bulk loads with resource
// groups the same way).
//
// The control law is AIMD with a slow-start prologue, the same shape
// that makes TCP converge: while the windowed p99 violates the bound
// the rate is cut multiplicatively (fast, monotone backoff); while it
// sits comfortably below the bound the rate probes upward —
// multiplicatively (×2) until the first violation ever, additively
// after — and inside the hold band it parks. Observations with no
// signal (an idle OLTP side: zero samples in the window) count as
// "nothing to protect" and probe upward.
//
// Observe is the single mutating entry point, so the controller is
// deterministic given its observation sequence — the property its
// convergence test exploits.
type Governor struct {
	mu        sync.Mutex
	cfg       GovernorConfig
	rate      float64
	slowStart bool
	throttles uint64
	probes    uint64
}

// NewGovernor returns a governor starting at MinRate in slow-start.
func NewGovernor(cfg GovernorConfig) *Governor {
	cfg.fill()
	return &Governor{cfg: cfg, rate: cfg.MinRate, slowStart: true}
}

// Bound returns the latency ceiling: BaselineP99 * SLOMultiplier.
func (g *Governor) Bound() time.Duration {
	return time.Duration(float64(g.cfg.BaselineP99) * g.cfg.SLOMultiplier)
}

// Rate returns the currently admitted rate.
func (g *Governor) Rate() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.rate
}

// Throttles returns how many observations triggered a rate cut.
func (g *Governor) Throttles() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.throttles
}

// Observe feeds one windowed p99 measurement (0 = no samples in the
// window) and returns the new admitted rate. Within one observation the
// response is monotone: a larger p99 never yields a larger rate.
func (g *Governor) Observe(p99 time.Duration) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	bound := float64(g.cfg.BaselineP99) * g.cfg.SLOMultiplier
	switch {
	case p99 > 0 && float64(p99) > bound:
		g.slowStart = false
		g.rate *= g.cfg.DecreaseFactor
		if g.rate < g.cfg.MinRate {
			g.rate = g.cfg.MinRate
		}
		g.throttles++
	case p99 <= 0 || float64(p99) < g.cfg.Headroom*bound:
		if g.slowStart {
			g.rate *= 2
		} else {
			g.rate += g.cfg.IncreaseStep
		}
		if g.rate > g.cfg.MaxRate {
			g.rate = g.cfg.MaxRate
		}
		g.probes++
		// Inside the hold band [Headroom*bound, bound]: park.
	}
	return g.rate
}
