package resmodel

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestPaperTestbed(t *testing.T) {
	tb := PaperTestbed()
	if tb.Cores() != 40 {
		t.Fatalf("paper testbed cores = %d, want 40", tb.Cores())
	}
}

func TestProjectRate(t *testing.T) {
	// 1s serial + 9s parallel over 10 items.
	r1 := ProjectRate(time.Second, 9*time.Second, 10, 1)
	if math.Abs(r1-1.0) > 1e-9 {
		t.Fatalf("1-core rate = %f, want 1", r1)
	}
	// On 9 cores: 1 + 1 = 2s -> 5 items/s.
	r9 := ProjectRate(time.Second, 9*time.Second, 10, 9)
	if math.Abs(r9-5.0) > 1e-9 {
		t.Fatalf("9-core rate = %f, want 5", r9)
	}
	// Rates must be monotonically nondecreasing in cores.
	prev := 0.0
	for k := 1; k <= 64; k++ {
		r := ProjectRate(time.Second, 9*time.Second, 10, k)
		if r < prev {
			t.Fatalf("rate decreased at %d cores", k)
		}
		prev = r
	}
	if ProjectRate(0, 0, 10, 4) != 0 {
		t.Fatal("zero-time rate not zero")
	}
}

func TestSpeedupAmdahl(t *testing.T) {
	if s := Speedup(0, 10); math.Abs(s-10) > 1e-9 {
		t.Fatalf("fully parallel speedup = %f", s)
	}
	if s := Speedup(1, 10); math.Abs(s-1) > 1e-9 {
		t.Fatalf("fully serial speedup = %f", s)
	}
	// 10% serial caps speedup below 10 regardless of cores.
	if s := Speedup(0.1, 1000000); s >= 10 {
		t.Fatalf("Amdahl cap violated: %f", s)
	}
}

func TestThroughputFactor(t *testing.T) {
	// Unsaturated socket: full speed.
	if f := ThroughputFactor(1.0, 0.3, 0.5); f != 1 {
		t.Fatalf("unsaturated factor = %f", f)
	}
	// OLTP + bandwidth-saturating scan on one socket: both halve
	// (paper Fig. 9: ~50% OLTP degradation).
	if f := ThroughputFactor(1.0, 1.0, 1.0); math.Abs(f-0.5) > 1e-9 {
		t.Fatalf("co-located factor = %f, want 0.5", f)
	}
	// Scan on a remote socket contributes no demand: full speed.
	if f := ThroughputFactor(1.0, 1.0); f != 1 {
		t.Fatalf("isolated factor = %f, want 1", f)
	}
}

// Property: the factor is in (0, 1] and monotonically nonincreasing as
// demand is added.
func TestThroughputFactorProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		demands := make([]float64, 0, len(raw))
		factor := 1.0
		for _, r := range raw {
			demands = append(demands, float64(r)/64)
			nf := ThroughputFactor(1.0, demands...)
			if nf <= 0 || nf > 1 || nf > factor+1e-12 {
				return false
			}
			factor = nf
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPaperPlacement(t *testing.T) {
	p := PaperPlacement(PaperTestbed())
	if len(p) != 4 {
		t.Fatalf("placements = %d", len(p))
	}
	if p[0].Component != "oltp" || p[0].Socket != 0 {
		t.Fatalf("first placement = %+v", p[0])
	}
	olap := 0
	for _, pl := range p[1:] {
		if pl.Component == "olap" {
			olap++
		}
	}
	if olap != 3 {
		t.Fatalf("olap sockets = %d, want 3", olap)
	}
}

func TestScaleUtilization(t *testing.T) {
	// 500ms busy over 1s, component owns 1 core -> 50%.
	if u := ScaleUtilization(500*time.Millisecond, time.Second, 1, 1); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("u = %f", u)
	}
	// Spread over 10 modeled cores -> 5%.
	if u := ScaleUtilization(500*time.Millisecond, time.Second, 1, 10); math.Abs(u-0.05) > 1e-9 {
		t.Fatalf("u = %f", u)
	}
	// Capped at 1.
	if u := ScaleUtilization(10*time.Second, time.Second, 1, 1); u != 1 {
		t.Fatalf("u = %f", u)
	}
}
