// Package resmodel is the explicit hardware resource model used to
// project single-core measurements onto the paper's testbed shape
// (4 × 10-core Xeon E5-4650v2 sockets with per-socket memory
// controllers and a 4xFDR InfiniBand interconnect, §8.1).
//
// This reproduction runs on whatever machine is available — possibly a
// single core — so the isolation experiments that depend on physical
// placement (Figs. 6, 7c, 9) cannot be measured directly. Instead the
// harness measures real single-core work and applies two deliberately
// simple, fully documented models:
//
//  1. Amdahl projection. The update-application pipeline's measured
//     serial time (step 1 ordering) and parallel time (steps 2-3, which
//     partition perfectly by hash(RowID)) are combined as
//     t(k) = serial + parallel/k to project the k-core rate of Fig. 6.
//  2. Proportional bandwidth sharing. A socket's memory controller
//     serves concurrent demands proportionally; when the sum of demands
//     exceeds capacity, every component's throughput scales by
//     capacity/total. A bandwidth-saturating scan co-located with a
//     memory-bound OLTP workload therefore halves OLTP throughput
//     (Fig. 9's ~50% degradation), while the same scan on another
//     socket has no effect.
//
// Every number produced through this package is labelled "projected" in
// benchmark output; raw measured values are always reported alongside.
package resmodel

import "time"

// Testbed describes the modeled machine.
type Testbed struct {
	Sockets        int
	CoresPerSocket int
	// MemBWPerSocket is the per-socket memory bandwidth in arbitrary
	// units; demands are expressed in the same units.
	MemBWPerSocket float64
}

// PaperTestbed returns the paper's machine shape (§8.1).
func PaperTestbed() Testbed {
	return Testbed{Sockets: 4, CoresPerSocket: 10, MemBWPerSocket: 1.0}
}

// Cores returns the total core count.
func (t Testbed) Cores() int { return t.Sockets * t.CoresPerSocket }

// ProjectRate converts measured per-item serial and parallel work into
// an items/second rate on k cores: rate(k) = items / (serial +
// parallel/k). It is exact for perfectly partitionable parallel phases,
// which steps 2-3 of the update-application algorithm are (disjoint
// partitions, no shared state).
func ProjectRate(serial, parallel time.Duration, items int, cores int) float64 {
	if cores < 1 {
		cores = 1
	}
	t := serial.Seconds() + parallel.Seconds()/float64(cores)
	if t <= 0 {
		return 0
	}
	return float64(items) / t
}

// Speedup returns the projected speedup on k cores for work with the
// given serial fraction (Amdahl's law).
func Speedup(serialFraction float64, cores int) float64 {
	if cores < 1 {
		cores = 1
	}
	if serialFraction < 0 {
		serialFraction = 0
	}
	if serialFraction > 1 {
		serialFraction = 1
	}
	return 1 / (serialFraction + (1-serialFraction)/float64(cores))
}

// ThroughputFactor models proportional sharing of one socket's memory
// bandwidth: each component achieves min(1, capacity/Σdemands) of its
// standalone throughput. Components on other sockets contribute no
// demand (the paper's replicated, NUMA-isolated placement).
func ThroughputFactor(capacity float64, demands ...float64) float64 {
	total := 0.0
	for _, d := range demands {
		total += d
	}
	if total <= capacity || total == 0 {
		return 1
	}
	return capacity / total
}

// Placement maps a named component to a socket for CPU-utilization
// reports (Fig. 7c: 1 socket OLTP, 3 sockets OLAP).
type Placement struct {
	Component string
	Socket    int
	Cores     int
}

// PaperPlacement returns the paper's local-replica deployment: the OLTP
// replica on socket 0 and the OLAP replica on sockets 1-3.
func PaperPlacement(t Testbed) []Placement {
	p := []Placement{{Component: "oltp", Socket: 0, Cores: t.CoresPerSocket}}
	for s := 1; s < t.Sockets; s++ {
		p = append(p, Placement{Component: "olap", Socket: s, Cores: t.CoresPerSocket})
	}
	return p
}

// ScaleUtilization converts busy time measured on the host into a
// utilization figure for a component that owns `cores` modeled cores:
// the measured single-core busy fraction is interpreted as demand and
// spread over the component's cores, capped at 1.
func ScaleUtilization(busy, elapsed time.Duration, hostCores, modelCores int) float64 {
	if elapsed <= 0 || modelCores <= 0 {
		return 0
	}
	if hostCores < 1 {
		hostCores = 1
	}
	u := busy.Seconds() / elapsed.Seconds() / float64(modelCores)
	if u > 1 {
		u = 1
	}
	return u
}
