package oltp

import (
	"encoding/binary"
	"errors"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"batchdb/internal/mvcc"
	"batchdb/internal/proplog"
	"batchdb/internal/storage"
)

// kvSchema builds a simple key/value table and registers get/put/add/del
// procedures on a fresh engine.
func newKVEngine(t *testing.T, cfg Config) (*Engine, *mvcc.Table) {
	t.Helper()
	store := mvcc.NewStore()
	schema := storage.NewSchema(1, "kv", []storage.Column{
		{Name: "k", Type: storage.Int64},
		{Name: "v", Type: storage.Int64},
	}, []int{0})
	tbl := store.CreateTable(schema, func(tup []byte) uint64 {
		return uint64(schema.GetInt64(tup, 0))
	}, 1024)
	e, err := New(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	registerKVProcs(e, tbl)
	return e, tbl
}

func registerKVProcs(e *Engine, tbl *mvcc.Table) {
	schema := tbl.Schema
	e.Register("put", func(tx *mvcc.Txn, args []byte) ([]byte, error) {
		k := int64(binary.LittleEndian.Uint64(args))
		v := int64(binary.LittleEndian.Uint64(args[8:]))
		tup := schema.NewTuple()
		schema.PutInt64(tup, 0, k)
		schema.PutInt64(tup, 1, v)
		if _, err := tx.Insert(tbl, tup); err != nil {
			return nil, err
		}
		return nil, nil
	})
	e.Register("add", func(tx *mvcc.Txn, args []byte) ([]byte, error) {
		k := int64(binary.LittleEndian.Uint64(args))
		d := int64(binary.LittleEndian.Uint64(args[8:]))
		return nil, tx.Update(tbl, uint64(k), []int{1}, func(tup []byte) {
			schema.PutInt64(tup, 1, schema.GetInt64(tup, 1)+d)
		})
	})
	e.Register("del", func(tx *mvcc.Txn, args []byte) ([]byte, error) {
		k := int64(binary.LittleEndian.Uint64(args))
		return nil, tx.Delete(tbl, uint64(k))
	})
	e.Register("get", func(tx *mvcc.Txn, args []byte) ([]byte, error) {
		k := int64(binary.LittleEndian.Uint64(args))
		tup, ok := tx.Get(tbl, uint64(k))
		if !ok {
			return nil, mvcc.ErrNotFound
		}
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, uint64(schema.GetInt64(tup, 1)))
		return out, nil
	})
}

func kvArgs(k, v int64) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b, uint64(k))
	binary.LittleEndian.PutUint64(b[8:], uint64(v))
	return b
}

func TestExecCommit(t *testing.T) {
	e, _ := newKVEngine(t, Config{Workers: 2})
	e.Start()
	defer e.Close()

	r := e.Exec("put", kvArgs(1, 100))
	if r.Err != nil {
		t.Fatalf("put: %v", r.Err)
	}
	if r.CommitVID == 0 {
		t.Fatal("put got no commit VID")
	}
	g := e.Exec("get", kvArgs(1, 0))
	if g.Err != nil {
		t.Fatalf("get: %v", g.Err)
	}
	if v := int64(binary.LittleEndian.Uint64(g.Payload)); v != 100 {
		t.Fatalf("get = %d", v)
	}
	if g.CommitVID != 0 {
		t.Fatal("read-only get allocated a commit VID")
	}
}

func TestExecUnknownProc(t *testing.T) {
	e, _ := newKVEngine(t, Config{Workers: 1})
	e.Start()
	defer e.Close()
	if r := e.Exec("nope", nil); !errors.Is(r.Err, ErrUnknownProc) {
		t.Fatalf("err = %v", r.Err)
	}
}

func TestConcurrentClients(t *testing.T) {
	e, _ := newKVEngine(t, Config{Workers: 4})
	e.Start()
	defer e.Close()

	if r := e.Exec("put", kvArgs(1, 0)); r.Err != nil {
		t.Fatal(r.Err)
	}
	const clients, per = 8, 50
	var applied atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				// Retry on conflict, like a TPC-C driver.
				for {
					r := e.Exec("add", kvArgs(1, 1))
					if r.Err == nil {
						applied.Add(1)
						break
					}
					if !errors.Is(r.Err, mvcc.ErrConflict) {
						t.Errorf("add: %v", r.Err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	g := e.Exec("get", kvArgs(1, 0))
	if v := int64(binary.LittleEndian.Uint64(g.Payload)); v != clients*per {
		t.Fatalf("counter = %d, want %d (applied %d)", v, clients*per, applied.Load())
	}
	if e.Stats().Committed.Load() < clients*per {
		t.Fatalf("committed = %d", e.Stats().Committed.Load())
	}
}

// captureSink records pushed batches.
type captureSink struct {
	mu      sync.Mutex
	upTo    uint64
	entries []proplog.Entry
	pushes  int
}

func (c *captureSink) ApplyUpdates(batches []proplog.Batch, upTo uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.upTo = upTo
	c.pushes++
	for _, b := range batches {
		for _, tb := range b.Tables {
			c.entries = append(c.entries, tb.Entries...)
		}
	}
}

func (c *captureSink) snapshot() (uint64, []proplog.Entry, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.upTo, append([]proplog.Entry(nil), c.entries...), c.pushes
}

func TestUpdateExtractionAndSync(t *testing.T) {
	sink := &captureSink{}
	e, _ := newKVEngine(t, Config{Workers: 2, FieldSpecific: true, PushPeriod: time.Hour})
	e.SetSink(sink)
	e.Start()
	defer e.Close()

	e.Exec("put", kvArgs(1, 10)) // insert
	e.Exec("add", kvArgs(1, 5))  // field update
	e.Exec("put", kvArgs(2, 20))
	e.Exec("del", kvArgs(2, 0)) // delete

	covered := e.SyncUpdates()
	if covered != e.LatestVID() || covered != 4 {
		t.Fatalf("covered = %d, latest = %d", covered, e.LatestVID())
	}
	_, entries, _ := sink.snapshot()
	if len(entries) != 4 {
		t.Fatalf("extracted %d entries, want 4: %+v", len(entries), entries)
	}
	kinds := map[proplog.Kind]int{}
	for _, en := range entries {
		kinds[en.Kind]++
	}
	if kinds[proplog.Insert] != 2 || kinds[proplog.Update] != 1 || kinds[proplog.Delete] != 1 {
		t.Fatalf("kind histogram = %v", kinds)
	}
	for _, en := range entries {
		if en.Kind == proplog.Update {
			if en.Offset != 8 || en.Size != 8 {
				t.Fatalf("field-specific update = %+v, want offset 8 size 8", en)
			}
			if int64(binary.LittleEndian.Uint64(en.Data)) != 15 {
				t.Fatalf("update payload = %d, want 15", binary.LittleEndian.Uint64(en.Data))
			}
		}
	}
}

func TestWholeTupleExtraction(t *testing.T) {
	sink := &captureSink{}
	e, tbl := newKVEngine(t, Config{Workers: 1, FieldSpecific: false, PushPeriod: time.Hour})
	e.SetSink(sink)
	e.Start()
	defer e.Close()

	e.Exec("put", kvArgs(1, 10))
	e.Exec("add", kvArgs(1, 5))
	e.SyncUpdates()
	_, entries, _ := sink.snapshot()
	for _, en := range entries {
		if en.Kind == proplog.Update {
			if int(en.Size) != tbl.Schema.TupleSize() || en.Offset != 0 {
				t.Fatalf("whole-tuple update = %+v", en)
			}
		}
	}
}

func TestPeriodicPush(t *testing.T) {
	sink := &captureSink{}
	e, _ := newKVEngine(t, Config{Workers: 1, PushPeriod: 20 * time.Millisecond})
	e.SetSink(sink)
	e.Start()
	defer e.Close()

	e.Exec("put", kvArgs(1, 1))
	deadline := time.After(2 * time.Second)
	for {
		_, entries, _ := sink.snapshot()
		if len(entries) == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("periodic push never delivered the update")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestReplicatedTableFilter(t *testing.T) {
	sink := &captureSink{}
	e, _ := newKVEngine(t, Config{
		Workers: 1, PushPeriod: time.Hour,
		Replicated: map[storage.TableID]bool{99: true}, // not our table
	})
	e.SetSink(sink)
	e.Start()
	defer e.Close()
	e.Exec("put", kvArgs(1, 1))
	e.SyncUpdates()
	if _, entries, _ := sink.snapshot(); len(entries) != 0 {
		t.Fatalf("filtered table leaked %d entries", len(entries))
	}
}

func TestSyncWithoutLoad(t *testing.T) {
	sink := &captureSink{}
	e, _ := newKVEngine(t, Config{Workers: 1, PushPeriod: time.Hour})
	e.SetSink(sink)
	e.Start()
	defer e.Close()
	// Sync with no transactions at all must return promptly.
	done := make(chan uint64, 1)
	go func() { done <- e.SyncUpdates() }()
	select {
	case v := <-done:
		if v != 0 {
			t.Fatalf("covered = %d, want 0", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("SyncUpdates hung on idle engine")
	}
}

func TestRecovery(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "cmd.log")

	e, _ := newKVEngine(t, Config{Workers: 2, WALPath: logPath})
	e.Start()
	e.Exec("put", kvArgs(1, 10))
	e.Exec("put", kvArgs(2, 20))
	e.Exec("add", kvArgs(1, 5))
	e.Exec("del", kvArgs(2, 0))
	e.Exec("add", kvArgs(1, 1))
	want := int64(16)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Fresh engine + store, replay the log.
	e2, tbl2 := newKVEngine(t, Config{Workers: 2})
	n, err := RecoverEngine(e2, logPath)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if n != 5 {
		t.Fatalf("replayed %d commands, want 5", n)
	}
	ro := e2.Store().BeginRO()
	defer ro.Release()
	tup, ok := ro.Get(tbl2, 1)
	if !ok {
		t.Fatal("row 1 missing after recovery")
	}
	if v := tbl2.Schema.GetInt64(tup, 1); v != want {
		t.Fatalf("recovered value = %d, want %d", v, want)
	}
	if _, ok := ro.Get(tbl2, 2); ok {
		t.Fatal("deleted row resurrected by recovery")
	}
}

func TestCloseRejectsNewWork(t *testing.T) {
	e, _ := newKVEngine(t, Config{Workers: 1})
	e.Start()
	e.Close()
	if r := e.Exec("put", kvArgs(1, 1)); !errors.Is(r.Err, ErrClosed) {
		t.Fatalf("after close: %v", r.Err)
	}
}
