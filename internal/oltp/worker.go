package oltp

import (
	"sort"
	"time"

	"batchdb/internal/mvcc"
	"batchdb/internal/proplog"
)

// worker executes stored procedures handed to it by the dispatcher and
// extracts the physical update log of its commits (paper §4: "each
// thread prepares its own set of updates" to avoid synchronization).
type worker struct {
	id     int
	engine *Engine

	// in carries one batch slice per dispatcher round.
	in   chan []request
	out  chan workerResult
	done chan struct{}

	// updates accumulates extracted updates between pushes. Only the
	// worker touches it while running; the dispatcher takes it at batch
	// boundaries when all workers are idle.
	updates *proplog.Buffer
}

// workerResult reports a finished batch share: the WAL records of the
// transactions this worker committed, in commit-VID order, plus the
// client acknowledgments the dispatcher must deliver after group commit
// (logged commits are acknowledged durability-last).
type workerResult struct {
	walRecs []walRec
	acks    []pendingAck
}

type walRec struct {
	commitVID uint64
	readVID   uint64
	proc      string
	args      []byte
}

// pendingAck is a successful logged commit whose reply is withheld until
// the batch's group commit succeeds.
type pendingAck struct {
	reply   chan Response
	resp    Response
	arrived time.Time
	bulk    bool
}

func newWorker(id int, e *Engine) *worker {
	return &worker{
		id:      id,
		engine:  e,
		in:      make(chan []request, 1),
		out:     make(chan workerResult, 1),
		done:    make(chan struct{}),
		updates: proplog.NewBuffer(id),
	}
}

func (w *worker) run() {
	defer close(w.done)
	for batch := range w.in {
		start := time.Now()
		var res workerResult
		for _, req := range batch {
			w.execOne(req, &res)
		}
		w.engine.stats.Busy.TrackSince(start)
		w.out <- res
	}
}

func (w *worker) execOne(req request, res *workerResult) {
	e := w.engine
	proc := e.procs[req.proc]
	tx := e.store.Begin()
	payload, err := proc(tx, req.args)
	if err != nil {
		tx.Abort()
		e.stats.Aborted.Inc()
		if err == mvcc.ErrConflict {
			e.stats.Conflicts.Inc()
		}
		req.reply <- Response{Err: err}
		return
	}
	readVID := tx.Snapshot()
	writes := tx.Writes()
	cv, err := tx.Commit()
	if err != nil {
		e.stats.Aborted.Inc()
		req.reply <- Response{Err: err}
		return
	}
	if cv != 0 {
		if e.sink.Load() != nil {
			// Extraction only runs with a sink attached: the paper's
			// NoRep configuration measures the engine without update
			// propagation (Fig. 7d).
			w.extract(writes, cv)
		}
		if e.log != nil {
			res.walRecs = append(res.walRecs, walRec{
				commitVID: cv, readVID: readVID, proc: req.proc, args: req.args,
			})
			// Withhold the acknowledgment until the dispatcher's group
			// commit makes the record durable; latency is recorded at
			// ack time so it covers durability.
			e.stats.Committed.Inc()
			if req.bulk {
				e.stats.BulkCommitted.Inc()
			}
			res.acks = append(res.acks, pendingAck{
				reply:   req.reply,
				resp:    Response{Payload: payload, CommitVID: cv},
				arrived: req.arrived,
				bulk:    req.bulk,
			})
			return
		}
	}
	e.stats.Committed.Inc()
	if req.bulk {
		e.stats.BulkCommitted.Inc()
		e.stats.BulkLatency.RecordSince(req.arrived)
	} else {
		e.stats.Latency.RecordSince(req.arrived)
	}
	req.reply <- Response{Payload: payload, CommitVID: cv}
}

// extract converts the transaction's write set into physical update-log
// entries (paper Fig. 3). Inserts carry the whole tuple; updates carry
// either per-field patches or the whole tuple image depending on
// configuration; deletes carry just the RowID.
func (w *worker) extract(writes []mvcc.WriteOp, commitVID uint64) {
	e := w.engine
	for i := range writes {
		op := &writes[i]
		id := op.Table.Schema.ID
		if e.cfg.Replicated != nil && !e.cfg.Replicated[id] {
			continue
		}
		switch op.Kind {
		case mvcc.OpInsert:
			w.updates.Add(id, proplog.Entry{
				VID: commitVID, Kind: proplog.Insert, RowID: op.New.RowID,
				Offset: 0, Size: uint32(len(op.New.Data)), Data: op.New.Data,
			})
			e.stats.PushedTuples.Inc()
		case mvcc.OpUpdate:
			if e.cfg.FieldSpecific && op.Cols != nil {
				sch := op.Table.Schema
				// Coalesce adjacent changed columns into contiguous
				// (Offset, Size) patches — the paper's update format is
				// byte ranges, not per-column records (Fig. 3).
				cols := append([]int(nil), op.Cols...)
				sort.Ints(cols)
				for i := 0; i < len(cols); {
					off := sch.Offset(cols[i])
					end := off + sch.ColSize(cols[i])
					j := i + 1
					for j < len(cols) && sch.Offset(cols[j]) == end {
						end += sch.ColSize(cols[j])
						j++
					}
					w.updates.Add(id, proplog.Entry{
						VID: commitVID, Kind: proplog.Update, RowID: op.New.RowID,
						Offset: uint32(off), Size: uint32(end - off),
						Data: op.New.Data[off:end],
					})
					i = j
				}
			} else {
				w.updates.Add(id, proplog.Entry{
					VID: commitVID, Kind: proplog.Update, RowID: op.New.RowID,
					Offset: 0, Size: uint32(len(op.New.Data)), Data: op.New.Data,
				})
			}
			e.stats.PushedTuples.Inc()
		case mvcc.OpDelete:
			w.updates.Add(id, proplog.Entry{
				VID: commitVID, Kind: proplog.Delete, RowID: op.Old.RowID,
			})
			e.stats.PushedTuples.Inc()
		}
	}
}
