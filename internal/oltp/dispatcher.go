package oltp

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"batchdb/internal/proplog"
	"batchdb/internal/wal"
)

// ErrNotDurable reports a commit whose group-commit flush failed: the
// transaction committed in memory, but its log record may not have
// reached stable storage, so its outcome after a crash is unknown. The
// client must treat it as unacknowledged.
var ErrNotDurable = errors.New("oltp: commit not durable")

// dispatch is the OLTP dispatcher loop (paper Fig. 1, §4 "Scheduling"):
// it runs one batch of requests at a time, performs group commit of the
// durable log at batch boundaries, and pushes the extracted physical
// updates to the OLAP sink either on demand or every PushPeriod.
func (e *Engine) dispatch() {
	defer close(e.closed)
	lastPush := time.Now()
	var lastGCCommits uint64
	pending := make([]request, 0, e.cfg.MaxBatch)
	timer := time.NewTimer(e.cfg.PushPeriod)
	defer timer.Stop()

	for {
		// Gather the next batch: drain whatever has queued up, blocking
		// only when there is nothing to do.
		pending = pending[:0]
		var syncWaiters, ckptWaiters []chan uint64
		select {
		case r := <-e.queue:
			pending = append(pending, r)
		case s := <-e.syncReq:
			syncWaiters = append(syncWaiters, s)
		case c := <-e.ckptReq:
			ckptWaiters = append(ckptWaiters, c)
		case <-timer.C:
		case <-e.closing:
			e.drainAndStop(pending)
			return
		}
	drain:
		for len(pending) < e.cfg.MaxBatch {
			select {
			case r := <-e.queue:
				pending = append(pending, r)
			case s := <-e.syncReq:
				syncWaiters = append(syncWaiters, s)
			case c := <-e.ckptReq:
				ckptWaiters = append(ckptWaiters, c)
			default:
				break drain
			}
		}

		if len(pending) > 0 {
			e.runBatch(pending)
			if c := e.stats.Committed.Load(); e.cfg.GCEveryTxns > 0 && c-lastGCCommits >= uint64(e.cfg.GCEveryTxns) {
				e.store.CollectGarbage()
				lastGCCommits = c
			}
		}

		// Batch boundary: all workers idle, the log group-committed
		// through the current watermark. This is the consistent cut
		// CheckpointVID promises (no transaction spans it).
		for _, c := range ckptWaiters {
			c <- e.store.VIDs.Watermark()
		}

		// Push updates if asked for, or if the push period elapsed
		// (paper §3.2).
		if len(syncWaiters) > 0 || time.Since(lastPush) >= e.cfg.PushPeriod {
			covered := e.pushUpdates()
			lastPush = time.Now()
			for _, s := range syncWaiters {
				s <- covered
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(e.cfg.PushPeriod)
	}
}

// runBatch distributes requests round-robin over the workers, waits for
// completion, group-commits the durable log, and only then acknowledges
// logged write commits — a commit must not be reported to the client
// before its log record is durable, or a crash could lose an
// acknowledged transaction.
func (e *Engine) runBatch(batch []request) {
	n := len(e.workers)
	shares := make([][]request, n)
	per := (len(batch) + n - 1) / n
	for i := range shares {
		shares[i] = make([]request, 0, per)
	}
	for i, r := range batch {
		shares[i%n] = append(shares[i%n], r)
	}
	active := 0
	for i, w := range e.workers {
		if len(shares[i]) > 0 {
			w.in <- shares[i]
			active++
		}
	}
	var recs []walRec
	var acks []pendingAck
	for i, w := range e.workers {
		if len(shares[i]) > 0 {
			res := <-w.out
			recs = append(recs, res.walRecs...)
			acks = append(acks, res.acks...)
		}
	}
	e.stats.Batches.Inc()
	var logErr error
	if e.log != nil && len(recs) > 0 {
		// Log in commit-VID order so replay is deterministic; committed
		// VIDs are dense, which recovery asserts.
		sort.Slice(recs, func(i, j int) bool { return recs[i].commitVID < recs[j].commitVID })
		for _, r := range recs {
			if logErr = e.log.Append(wal.Record{
				CommitVID: r.commitVID, ReadVID: r.readVID, Proc: r.proc, Args: r.args,
			}); logErr != nil {
				break
			}
		}
		if logErr == nil {
			logErr = e.log.Commit() // group commit for the whole batch
		}
	}
	for _, a := range acks {
		if logErr != nil {
			a.reply <- Response{Err: fmt.Errorf("%w: %v", ErrNotDurable, logErr)}
			continue
		}
		if a.bulk {
			e.stats.BulkLatency.RecordSince(a.arrived)
		} else {
			e.stats.Latency.RecordSince(a.arrived)
		}
		a.reply <- a.resp
	}
}

// pushUpdates takes every worker's update buffer (all workers are idle
// at a batch boundary, so this is race-free) and hands the batches to
// the sink. Returns the covered watermark.
func (e *Engine) pushUpdates() uint64 {
	covered := e.store.VIDs.Watermark()
	holder := e.sink.Load()
	if holder == nil {
		// NoRep: discard extracted updates so buffers stay bounded.
		for _, w := range e.workers {
			if w.updates.Len() > 0 {
				w.updates.Take()
			}
		}
		return covered
	}
	var batches []proplog.Batch
	for _, w := range e.workers {
		if w.updates.Len() > 0 {
			b := w.updates.Take()
			batches = append(batches, b)
		}
	}
	holder.s.ApplyUpdates(batches, covered)
	e.stats.Pushes.Inc()
	return covered
}

// drainAndStop flushes extracted updates and fails queued requests
// during shutdown.
func (e *Engine) drainAndStop(pending []request) {
	e.pushUpdates() // final push so no committed update is stranded
	for _, r := range pending {
		r.reply <- Response{Err: ErrClosed}
	}
	for {
		select {
		case r := <-e.queue:
			r.reply <- Response{Err: ErrClosed}
		case s := <-e.syncReq:
			s <- e.store.VIDs.Watermark()
		case c := <-e.ckptReq:
			c <- e.store.VIDs.Watermark()
		default:
			return
		}
	}
}
