package oltp

import (
	"errors"
	"sync"
	"testing"

	"batchdb/internal/wal"
)

// failingLog is a CommandLog whose group commit can be made to fail,
// modelling a dead disk or an injected crash.
type failingLog struct {
	mu       sync.Mutex
	appended []wal.Record
	commits  int
	fail     bool
}

func (f *failingLog) Append(r wal.Record) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.appended = append(f.appended, r)
	return nil
}

func (f *failingLog) Commit() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return errors.New("disk on fire")
	}
	f.commits++
	return nil
}

func (f *failingLog) Close() error { return nil }

func (f *failingLog) setFail(v bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fail = v
}

// A write commit must not be acknowledged before its batch's group
// commit succeeds; when the flush fails the client gets ErrNotDurable
// instead of a success it could act on.
func TestAckAfterGroupCommit(t *testing.T) {
	e, _ := newKVEngine(t, Config{Workers: 2})
	fl := &failingLog{}
	e.SetLog(fl)
	e.Start()
	defer e.Close()

	if r := e.Exec("put", kvArgs(1, 10)); r.Err != nil {
		t.Fatalf("put: %v", r.Err)
	}
	fl.mu.Lock()
	okCommits := fl.commits
	fl.mu.Unlock()
	if okCommits == 0 {
		t.Fatal("success acknowledged before any group commit")
	}

	fl.setFail(true)
	r := e.Exec("put", kvArgs(2, 20))
	if !errors.Is(r.Err, ErrNotDurable) {
		t.Fatalf("failed flush acked as success: %v", r.Err)
	}

	// Recovery semantics: the transaction still committed in memory (its
	// log record may or may not have survived), the client just must not
	// assume either way. Reads see it.
	fl.setFail(false)
	if g := e.Exec("get", kvArgs(2, 0)); g.Err != nil {
		t.Fatalf("in-memory commit invisible after flush failure: %v", g.Err)
	}
}

// Read-only procedures bypass the log entirely and are acknowledged
// without waiting for any flush.
func TestReadOnlyNotLogged(t *testing.T) {
	e, _ := newKVEngine(t, Config{Workers: 2})
	fl := &failingLog{}
	e.SetLog(fl)
	e.Start()
	defer e.Close()

	e.Exec("put", kvArgs(1, 10))
	fl.setFail(true) // a dead log must not affect reads
	if r := e.Exec("get", kvArgs(1, 0)); r.Err != nil {
		t.Fatalf("get: %v", r.Err)
	}
	fl.mu.Lock()
	defer fl.mu.Unlock()
	for _, rec := range fl.appended {
		if rec.Proc == "get" {
			t.Fatal("read-only procedure reached the command log")
		}
	}
}

// CheckpointVID is a consistent cut: every commit at or below it is
// durable and no transaction spans it.
func TestCheckpointVIDIsBatchBoundary(t *testing.T) {
	e, _ := newKVEngine(t, Config{Workers: 4})
	fl := &failingLog{}
	e.SetLog(fl)
	e.Start()
	defer e.Close()

	const writes = 25
	for i := int64(0); i < writes; i++ {
		if r := e.Exec("put", kvArgs(i+1, i)); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	w := e.CheckpointVID()
	if w != writes {
		t.Fatalf("CheckpointVID = %d, want %d (engine idle)", w, writes)
	}
	// Every record up to the cut must already be in the log.
	fl.mu.Lock()
	logged := uint64(0)
	for _, rec := range fl.appended {
		if rec.CommitVID > logged {
			logged = rec.CommitVID
		}
	}
	fl.mu.Unlock()
	if logged < w {
		t.Fatalf("cut %d ahead of logged prefix %d", w, logged)
	}
}

func TestCheckpointVIDOnClosedEngine(t *testing.T) {
	e, _ := newKVEngine(t, Config{Workers: 1})
	e.Start()
	e.Exec("put", kvArgs(1, 1))
	e.Close()
	// Must not hang or panic after close.
	if w := e.CheckpointVID(); w != 1 {
		t.Fatalf("CheckpointVID after close = %d", w)
	}
}

// Records are logged in dense commit-VID order within and across
// batches, which recovery asserts during replay.
func TestLogOrderIsDense(t *testing.T) {
	e, _ := newKVEngine(t, Config{Workers: 4})
	fl := &failingLog{}
	e.SetLog(fl)
	e.Start()
	defer e.Close()
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < 20; i++ {
				e.Exec("put", kvArgs(base*100+i, i))
			}
		}(int64(c) + 1)
	}
	wg.Wait()
	e.CheckpointVID() // barrier: all batches logged
	fl.mu.Lock()
	defer fl.mu.Unlock()
	for i, rec := range fl.appended {
		if rec.CommitVID != uint64(i+1) {
			t.Fatalf("log position %d holds VID %d (not dense)", i, rec.CommitVID)
		}
	}
}
