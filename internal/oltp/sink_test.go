package oltp

import (
	"testing"
	"time"

	"batchdb/internal/proplog"
)

// countSink counts the pushes it receives.
type countSink struct{ pushes int }

func (c *countSink) ApplyUpdates(_ []proplog.Batch, _ uint64) { c.pushes++ }

func (e *Engine) sinkFor(t *testing.T) UpdateSink {
	t.Helper()
	h := e.sink.Load()
	if h == nil {
		return nil
	}
	return h.s
}

func TestRemoveSink(t *testing.T) {
	e, _ := newKVEngine(t, Config{Workers: 1, PushPeriod: time.Hour})
	defer e.Close()
	a, b, c := &countSink{}, &countSink{}, &countSink{}

	// Removing from an empty sink set is a no-op.
	e.RemoveSink(a)

	e.SetSink(a)
	e.AddSink(b)
	e.AddSink(c)
	e.RemoveSink(b)
	m, ok := e.sinkFor(t).(multiSink)
	if !ok || len(m) != 2 || m[0] != UpdateSink(a) || m[1] != UpdateSink(c) {
		t.Fatalf("after removing middle sink: %#v", e.sinkFor(t))
	}
	// Removing a sink that is not attached is a no-op.
	e.RemoveSink(b)
	if m := e.sinkFor(t).(multiSink); len(m) != 2 {
		t.Fatalf("double remove changed the set: %#v", m)
	}

	e.RemoveSink(a)
	if got := e.sinkFor(t); got != UpdateSink(c) {
		t.Fatalf("after collapsing to one sink: %#v", got)
	}
	e.RemoveSink(c)
	if got := e.sinkFor(t); got != nil {
		t.Fatalf("after removing last sink: %#v", got)
	}
}

// Removed sinks stop receiving pushes; remaining sinks keep receiving.
func TestRemoveSinkStopsPushes(t *testing.T) {
	e, _ := newKVEngine(t, Config{Workers: 1, PushPeriod: time.Hour})
	a, b := &countSink{}, &countSink{}
	e.AddSink(a)
	e.AddSink(b)
	e.Start()
	defer e.Close()

	if r := e.Exec("put", kvArgs(1, 1)); r.Err != nil {
		t.Fatal(r.Err)
	}
	e.SyncUpdates()
	if a.pushes == 0 || b.pushes == 0 {
		t.Fatalf("pushes before removal: a=%d b=%d", a.pushes, b.pushes)
	}
	e.RemoveSink(a)
	before := a.pushes
	if r := e.Exec("put", kvArgs(2, 2)); r.Err != nil {
		t.Fatal(r.Err)
	}
	e.SyncUpdates()
	if a.pushes != before {
		t.Fatalf("removed sink still receives pushes: %d -> %d", before, a.pushes)
	}
	if b.pushes < 2 {
		t.Fatalf("remaining sink starved: %d pushes", b.pushes)
	}
}
