// Package oltp implements BatchDB's transactional component: the primary
// replica of paper §4 and the left half of Fig. 1.
//
// Clients submit stored-procedure calls. A single dispatcher schedules
// them one batch at a time: while a batch executes, incoming requests
// queue up; when the batch finishes, the dispatcher drains the queue and
// hands requests to worker threads round-robin. Batch boundaries are
// where the cheap amortized work happens — group commit of the command
// log, garbage-collection triggering, and propagation of the physical
// update log to the OLAP replica (every push period, or immediately when
// the OLAP dispatcher asks for the latest snapshot version).
package oltp

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"batchdb/internal/metrics"
	"batchdb/internal/mvcc"
	"batchdb/internal/proplog"
	"batchdb/internal/storage"
	"batchdb/internal/wal"
)

// Procedure is a natively registered stored procedure. It must be
// deterministic given (args, snapshot): all randomness belongs in args,
// which is what makes command logging sufficient for recovery. The
// returned payload is delivered to the client verbatim.
type Procedure func(tx *mvcc.Txn, args []byte) ([]byte, error)

// CommandLog is the durable command log the dispatcher group-commits at
// batch boundaries: either the single-file wal.Log (WALPath mode) or
// the segmented wal.Manager installed by the data-dir boot path.
type CommandLog interface {
	Append(wal.Record) error
	Commit() error
	Close() error
}

// UpdateSink receives pushed update batches. It is implemented by the
// local OLAP replica and by the network forwarder for remote replicas.
// upTo is the commit watermark covered: after the call, the sink holds
// every update with VID <= upTo.
type UpdateSink interface {
	ApplyUpdates(batches []proplog.Batch, upTo uint64)
}

// Config parameterizes the OLTP engine.
type Config struct {
	// Workers is the number of worker threads (paper: one NUMA node's
	// cores). Default 4.
	Workers int
	// PushPeriod bounds update staleness: updates are pushed at the
	// first batch boundary after this period even if the OLAP replica
	// did not ask (paper §3.2: 200 ms). Default 200 ms.
	PushPeriod time.Duration
	// MaxBatch caps how many queued requests one batch may absorb.
	// Default 8192.
	MaxBatch int
	// Replicated marks the tables whose updates are extracted and
	// propagated (paper §8.3 propagates only the relations used by the
	// analytical workload). Nil propagates every table.
	Replicated map[storage.TableID]bool
	// FieldSpecific selects sub-tuple (offset/size) update extraction
	// rather than whole-tuple images (paper Fig. 6 compares both).
	FieldSpecific bool
	// WALPath enables command logging when non-empty.
	WALPath string
	// WALSync forces fsync per group commit.
	WALSync bool
	// GCEveryTxns triggers version garbage collection after this many
	// commits. GC passes scan every version chain and index, so they
	// must be infrequent; but ordered indexes over high-churn tables
	// (TPC-C new_order) accumulate dead entries between passes, so they
	// must not be too rare either. Default 5000.
	GCEveryTxns int
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.PushPeriod <= 0 {
		c.PushPeriod = 200 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8192
	}
	if c.GCEveryTxns == 0 {
		c.GCEveryTxns = 5000
	}
}

// Stats exposes the engine's performance counters. Latency holds only
// interactive (non-bulk) transactions: it is the histogram SLO
// governors sample for the "unperturbed OLTP p99" signal, so bulk
// ingest chunks — huge transactions by design — are accounted
// separately in BulkLatency and must never pollute it.
type Stats struct {
	Committed    metrics.Counter
	Aborted      metrics.Counter
	Conflicts    metrics.Counter
	Batches      metrics.Counter
	Pushes       metrics.Counter
	PushedTuples metrics.Counter
	Latency      metrics.Histogram
	Busy         metrics.BusyTracker
	// Bulk-class procedures (RegisterBulk): commit count and per-call
	// latency, kept out of the interactive histogram above.
	BulkCommitted metrics.Counter
	BulkLatency   metrics.Histogram
}

// Response is the outcome of one stored-procedure call.
type Response struct {
	// Payload is the procedure's result.
	Payload []byte
	// CommitVID is the commit VID (0 for read-only procedures).
	CommitVID uint64
	// Err is nil on commit; mvcc.ErrConflict signals a retryable abort.
	Err error
}

// request travels from client to dispatcher to worker.
type request struct {
	proc    string
	args    []byte
	reply   chan Response
	arrived time.Time
	// bulk routes latency accounting to Stats.BulkLatency.
	bulk bool
}

// Engine is the OLTP replica.
type Engine struct {
	cfg   Config
	store *mvcc.Store
	procs map[string]Procedure
	bulk  map[string]bool
	sink  atomic.Pointer[sinkHolder]

	queue   chan request
	syncReq chan chan uint64
	ckptReq chan chan uint64
	closing chan struct{}
	closed  chan struct{}

	workers []*worker
	log     CommandLog
	started bool

	stats Stats
}

// New creates an engine over an existing store. Register procedures and
// load data before calling Start.
func New(store *mvcc.Store, cfg Config) (*Engine, error) {
	cfg.fill()
	e := &Engine{
		cfg:     cfg,
		store:   store,
		procs:   make(map[string]Procedure),
		queue:   make(chan request, cfg.MaxBatch*2),
		syncReq: make(chan chan uint64, 16),
		ckptReq: make(chan chan uint64, 16),
		closing: make(chan struct{}),
		closed:  make(chan struct{}),
	}
	if cfg.WALPath != "" {
		l, err := wal.Create(cfg.WALPath, wal.Options{Sync: cfg.WALSync})
		if err != nil {
			return nil, err
		}
		e.log = l
	}
	for i := 0; i < cfg.Workers; i++ {
		e.workers = append(e.workers, newWorker(i, e))
	}
	return e, nil
}

// Store returns the underlying MVCC store.
func (e *Engine) Store() *mvcc.Store { return e.store }

// SetLog installs the command log. The data-dir boot path opens the
// segmented log itself — after recovery has decided where logging
// resumes — and hands it over here. Must be called before Start;
// replaces any WALPath-configured log.
func (e *Engine) SetLog(l CommandLog) { e.log = l }

// Stats returns the engine's counters.
func (e *Engine) Stats() *Stats { return &e.stats }

// Register installs a stored procedure under name. Must be called
// before Start.
func (e *Engine) Register(name string, p Procedure) {
	e.procs[name] = p
}

// RegisterBulk installs a stored procedure whose calls are accounted as
// bulk work: commits count into Stats.BulkCommitted and latency into
// Stats.BulkLatency instead of the interactive Stats.Latency histogram,
// so a governor sampling OLTP p99 sees only the traffic it protects.
// Bulk calls still ride the normal batch/group-commit/replication path
// — the classification is purely observational. Must be called before
// Start.
func (e *Engine) RegisterBulk(name string, p Procedure) {
	e.procs[name] = p
	if e.bulk == nil {
		e.bulk = make(map[string]bool)
	}
	e.bulk[name] = true
}

// Proc returns the registered procedure with the given name, or nil.
// Exposed so alternative schedulers (the shared-engine baselines of
// paper §8.5) can reuse the same procedure implementations.
func (e *Engine) Proc(name string) Procedure { return e.procs[name] }

type sinkHolder struct{ s UpdateSink }

// multiSink fans one push out to several sinks.
type multiSink []UpdateSink

// ApplyUpdates delivers the push to every sink.
func (m multiSink) ApplyUpdates(batches []proplog.Batch, upTo uint64) {
	for _, s := range m {
		s.ApplyUpdates(batches, upTo)
	}
}

// SetSink installs the update sink, replacing any previous sinks. A nil
// sink disables propagation (the paper's "NoRep" configuration).
func (e *Engine) SetSink(s UpdateSink) {
	if s == nil {
		e.sink.Store(nil)
		return
	}
	e.sink.Store(&sinkHolder{s: s})
}

// AddSink attaches an additional update sink at runtime — how new
// replicas join for elasticity (paper §3.2, §6: the primary can feed
// multiple secondaries). Pushes after this call reach the new sink;
// combine with a snapshot bootstrap and the replica's VID floor to
// avoid gaps or double-application.
func (e *Engine) AddSink(s UpdateSink) {
	for {
		old := e.sink.Load()
		var next UpdateSink = s
		if old != nil {
			if m, ok := old.s.(multiSink); ok {
				next = append(append(multiSink(nil), m...), s)
			} else {
				next = multiSink{old.s, s}
			}
		}
		if e.sink.CompareAndSwap(old, &sinkHolder{s: next}) {
			return
		}
	}
}

// RemoveSink detaches a sink attached with SetSink or AddSink — how a
// dead replica's forwarder is dropped so the dispatcher stops encoding
// pushes for it. Removing a sink that is not attached is a no-op.
func (e *Engine) RemoveSink(s UpdateSink) {
	for {
		old := e.sink.Load()
		if old == nil {
			return
		}
		var holder *sinkHolder
		if m, ok := old.s.(multiSink); ok {
			next := make(multiSink, 0, len(m))
			for _, x := range m {
				if x != s {
					next = append(next, x)
				}
			}
			switch len(next) {
			case len(m):
				return // not attached
			case 0:
				holder = nil
			case 1:
				holder = &sinkHolder{s: next[0]}
			default:
				holder = &sinkHolder{s: next}
			}
		} else if old.s == s {
			holder = nil
		} else {
			return // not attached
		}
		if e.sink.CompareAndSwap(old, holder) {
			return
		}
	}
}

// Start launches the dispatcher and workers.
func (e *Engine) Start() {
	e.started = true
	for _, w := range e.workers {
		go w.run()
	}
	go e.dispatch()
}

// Close drains in-flight work, stops the engine, and closes the log.
// Closing an engine that was never started only releases the log.
func (e *Engine) Close() error {
	close(e.closing)
	if e.started {
		<-e.closed
		for _, w := range e.workers {
			close(w.in)
			<-w.done
		}
	}
	if e.log != nil {
		return e.log.Close()
	}
	return nil
}

// ErrUnknownProc reports a call to an unregistered procedure.
var ErrUnknownProc = errors.New("oltp: unknown stored procedure")

// ErrClosed reports a call submitted after Close.
var ErrClosed = errors.New("oltp: engine closed")

// Exec submits a stored-procedure call and waits for its outcome.
func (e *Engine) Exec(proc string, args []byte) Response {
	if _, ok := e.procs[proc]; !ok {
		return Response{Err: fmt.Errorf("%w: %q", ErrUnknownProc, proc)}
	}
	reply := make(chan Response, 1)
	select {
	case e.queue <- request{proc: proc, args: args, reply: reply, arrived: time.Now(), bulk: e.bulk[proc]}:
	case <-e.closing:
		return Response{Err: ErrClosed}
	}
	select {
	case r := <-reply:
		return r
	case <-e.closed:
		return Response{Err: ErrClosed}
	}
}

// LatestVID returns the current committed snapshot watermark.
func (e *Engine) LatestVID() uint64 { return e.store.VIDs.Watermark() }

// CheckpointVID returns a commit watermark captured at a batch
// boundary: every transaction with VID <= the returned value has fully
// committed and been group-committed to the log, and every later
// transaction both reads and commits strictly above it (workers only
// begin transactions inside later batches). A checkpoint taken at this
// VID is therefore a consistent cut: replaying the log records above it
// re-executes exactly the missing suffix, each at a ReadVID >= the cut,
// so replay-from-checkpoint observes the same data the original
// execution did.
func (e *Engine) CheckpointVID() uint64 {
	reply := make(chan uint64, 1)
	select {
	case e.ckptReq <- reply:
	case <-e.closing:
		return e.LatestVID()
	}
	select {
	case v := <-reply:
		return v
	case <-e.closed:
		return e.LatestVID()
	}
}

// SyncUpdates asks the dispatcher for an immediate push of the physical
// update log and blocks until the sink has received every update up to
// the returned VID. This is the "OLAP dispatcher fetches the latest
// snapshot version" interaction of paper Fig. 1.
func (e *Engine) SyncUpdates() uint64 {
	reply := make(chan uint64, 1)
	select {
	case e.syncReq <- reply:
	case <-e.closing:
		return e.LatestVID()
	}
	select {
	case v := <-reply:
		return v
	case <-e.closed:
		return e.LatestVID()
	}
}
