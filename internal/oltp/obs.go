package oltp

import "batchdb/internal/obs"

// Register exposes the engine's counters through reg as registry views
// (the struct stays the live storage; the registry reads it).
func (s *Stats) Register(reg *obs.Registry, labels ...obs.Label) {
	with := func(extra ...obs.Label) []obs.Label {
		return append(append([]obs.Label(nil), labels...), extra...)
	}
	reg.ObserveCounter("batchdb_oltp_txn_total",
		"Stored-procedure calls by outcome.", &s.Committed, with(obs.L("status", "committed"))...)
	reg.ObserveCounter("batchdb_oltp_txn_total",
		"Stored-procedure calls by outcome.", &s.Aborted, with(obs.L("status", "aborted"))...)
	reg.ObserveCounter("batchdb_oltp_txn_total",
		"Stored-procedure calls by outcome.", &s.Conflicts, with(obs.L("status", "conflict"))...)
	reg.ObserveHistogram("batchdb_oltp_txn_latency_ns",
		"Queue + execution time per interactive transaction (nanoseconds).", &s.Latency, labels...)
	reg.ObserveCounter("batchdb_oltp_bulk_txn_total",
		"Committed bulk-class (ingest) stored-procedure calls.", &s.BulkCommitted, labels...)
	reg.ObserveHistogram("batchdb_oltp_bulk_txn_latency_ns",
		"Queue + execution time per bulk-class call (nanoseconds).", &s.BulkLatency, labels...)
	reg.ObserveCounter("batchdb_oltp_group_commit_total",
		"Dispatcher batches (one group commit each).", &s.Batches, labels...)
	reg.ObserveCounter("batchdb_oltp_pushes_total",
		"Update-log pushes to the OLAP sink.", &s.Pushes, labels...)
	reg.ObserveCounter("batchdb_oltp_pushed_tuples_total",
		"Tuple updates propagated to the OLAP sink.", &s.PushedTuples, labels...)
	reg.GaugeFunc("batchdb_oltp_busy_seconds",
		"Cumulative worker busy time (seconds).",
		func() float64 { return s.Busy.Busy().Seconds() }, labels...)
}

// RegisterMetrics registers the engine's counters plus its live commit
// watermark through reg.
func (e *Engine) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	e.stats.Register(reg, labels...)
	reg.GaugeFunc("batchdb_oltp_watermark_vid",
		"Primary committed snapshot watermark.",
		func() float64 { return float64(e.LatestVID()) }, labels...)
}
