package oltp

import (
	"fmt"

	"batchdb/internal/wal"
)

// ReplayRecord re-executes one logged command against e's store using
// e's registered procedures. Replay is deterministic because (a) the
// command re-executes at its logged ReadVID, observing exactly the rows
// the original execution saw, and (b) committed VIDs are dense, so
// re-committing in log order reassigns identical commit VIDs — which is
// asserted. This is VoltDB-style command-log recovery adapted to
// snapshot isolation (paper §4 "Logging": read and committed snapshot
// versions are logged for correct recovery). Exported for the data-dir
// boot path, which replays only the WAL tail above a checkpoint.
func ReplayRecord(e *Engine, r wal.Record) error {
	proc, ok := e.procs[r.Proc]
	if !ok {
		return fmt.Errorf("%w: %q (during recovery)", ErrUnknownProc, r.Proc)
	}
	tx := e.store.BeginAt(r.ReadVID)
	if _, err := proc(tx, r.Args); err != nil {
		tx.Abort()
		return fmt.Errorf("oltp: recovery replay of %q (vid %d) failed: %v", r.Proc, r.CommitVID, err)
	}
	cv, err := tx.Commit()
	if err != nil {
		return fmt.Errorf("oltp: recovery commit: %v", err)
	}
	if cv != r.CommitVID {
		return fmt.Errorf("oltp: recovery VID divergence: replayed %q got vid %d, log says %d", r.Proc, cv, r.CommitVID)
	}
	return nil
}

// RecoverEngine replays the single-file command log at path into e's
// store. Call after loading initial data and before Start; the store
// must hold exactly the initially loaded (VID 0) state.
func RecoverEngine(e *Engine, path string) (replayed int, err error) {
	err = wal.Replay(path, func(r wal.Record) error {
		if err := ReplayRecord(e, r); err != nil {
			return err
		}
		replayed++
		return nil
	})
	return replayed, err
}
