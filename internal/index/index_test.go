package index

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

// --- Hash --------------------------------------------------------------

func TestHashBasic(t *testing.T) {
	h := NewHash[string](16)
	if _, ok := h.Get(1); ok {
		t.Fatal("Get on empty index returned ok")
	}
	h.Put(1, "a")
	h.Put(2, "b")
	if v, ok := h.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q,%v", v, ok)
	}
	h.Put(1, "a2")
	if v, _ := h.Get(1); v != "a2" {
		t.Fatalf("Put did not replace: %q", v)
	}
	if h.Len() != 2 {
		t.Fatalf("Len = %d", h.Len())
	}
	if !h.Delete(1) || h.Delete(1) {
		t.Fatal("Delete semantics wrong")
	}
	if h.Len() != 1 {
		t.Fatalf("Len after delete = %d", h.Len())
	}
}

func TestHashPutIfAbsent(t *testing.T) {
	h := NewHash[int](16)
	if v, inserted := h.PutIfAbsent(7, 100); !inserted || v != 100 {
		t.Fatalf("first PutIfAbsent = %d,%v", v, inserted)
	}
	if v, inserted := h.PutIfAbsent(7, 200); inserted || v != 100 {
		t.Fatalf("second PutIfAbsent = %d,%v", v, inserted)
	}
}

func TestHashRange(t *testing.T) {
	h := NewHash[int](16)
	for i := uint64(0); i < 100; i++ {
		h.Put(i, int(i)*2)
	}
	seen := make(map[uint64]int)
	h.Range(func(k uint64, v int) bool {
		seen[k] = v
		return true
	})
	if len(seen) != 100 {
		t.Fatalf("Range visited %d entries", len(seen))
	}
	for k, v := range seen {
		if v != int(k)*2 {
			t.Fatalf("Range saw %d -> %d", k, v)
		}
	}
	// Early termination.
	n := 0
	h.Range(func(uint64, int) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("Range early stop visited %d", n)
	}
}

func TestHashConcurrent(t *testing.T) {
	h := NewHash[uint64](1024)
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w * perWorker)
			for i := uint64(0); i < perWorker; i++ {
				h.Put(base+i, base+i)
			}
			for i := uint64(0); i < perWorker; i++ {
				if v, ok := h.Get(base + i); !ok || v != base+i {
					t.Errorf("worker %d lost key %d", w, base+i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if h.Len() != workers*perWorker {
		t.Fatalf("Len = %d, want %d", h.Len(), workers*perWorker)
	}
}

// Property: Hash agrees with a reference map under a random operation
// sequence.
func TestHashMatchesReference(t *testing.T) {
	f := func(ops []struct {
		Key uint64
		Val int
		Del bool
	}) bool {
		h := NewHash[int](16)
		ref := make(map[uint64]int)
		for _, op := range ops {
			k := op.Key % 64 // force collisions
			if op.Del {
				delete(ref, k)
				h.Delete(k)
			} else {
				ref[k] = op.Val
				h.Put(k, op.Val)
			}
		}
		if h.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			if got, ok := h.Get(k); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// --- SkipList ----------------------------------------------------------

func TestSkipListBasic(t *testing.T) {
	s := NewSkipList[string](1)
	if _, ok := s.Get(5); ok {
		t.Fatal("Get on empty list returned ok")
	}
	s.Put(5, "five")
	s.Put(1, "one")
	s.Put(9, "nine")
	if v, ok := s.Get(5); !ok || v != "five" {
		t.Fatalf("Get(5) = %q,%v", v, ok)
	}
	s.Put(5, "FIVE")
	if v, _ := s.Get(5); v != "FIVE" {
		t.Fatalf("replace failed: %q", v)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Delete(5) || s.Delete(5) {
		t.Fatal("Delete semantics wrong")
	}
	if _, ok := s.Get(5); ok {
		t.Fatal("deleted key still present")
	}
}

func TestSkipListOrderedIteration(t *testing.T) {
	s := NewSkipList[int](2)
	keys := rand.New(rand.NewSource(3)).Perm(500)
	for _, k := range keys {
		s.Put(uint64(k), k)
	}
	var got []uint64
	for it := s.Min(); it.Valid(); it.Next() {
		got = append(got, it.Key())
		if it.Value() != int(it.Key()) {
			t.Fatalf("value mismatch at key %d", it.Key())
		}
	}
	if len(got) != 500 {
		t.Fatalf("iterated %d keys", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("iteration not in key order")
	}
}

func TestSkipListSeek(t *testing.T) {
	s := NewSkipList[int](4)
	for _, k := range []uint64{10, 20, 30, 40} {
		s.Put(k, int(k))
	}
	cases := []struct {
		seek uint64
		want uint64
		ok   bool
	}{
		{0, 10, true}, {10, 10, true}, {11, 20, true},
		{40, 40, true}, {41, 0, false},
	}
	for _, c := range cases {
		it := s.Seek(c.seek)
		if it.Valid() != c.ok {
			t.Fatalf("Seek(%d).Valid = %v", c.seek, it.Valid())
		}
		if c.ok && it.Key() != c.want {
			t.Fatalf("Seek(%d) = %d, want %d", c.seek, it.Key(), c.want)
		}
	}
}

// Property: SkipList agrees with a reference map and iterates in sorted
// order under random operations.
func TestSkipListMatchesReference(t *testing.T) {
	f := func(ops []struct {
		Key uint64
		Val int
		Del bool
	}) bool {
		s := NewSkipList[int](7)
		ref := make(map[uint64]int)
		for _, op := range ops {
			k := op.Key % 128
			if op.Del {
				delete(ref, k)
				s.Delete(k)
			} else {
				ref[k] = op.Val
				s.Put(k, op.Val)
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		var prev uint64
		first := true
		count := 0
		for it := s.Min(); it.Valid(); it.Next() {
			if !first && it.Key() <= prev {
				return false
			}
			first, prev = false, it.Key()
			if v, ok := ref[it.Key()]; !ok || v != it.Value() {
				return false
			}
			count++
		}
		return count == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Concurrent readers must never block or observe broken structure while
// a writer inserts and deletes.
func TestSkipListConcurrentReadersWriter(t *testing.T) {
	s := NewSkipList[uint64](11)
	for i := uint64(0); i < 1000; i += 2 {
		s.Put(i, i)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Even keys are permanent: they must always be found.
				k := uint64(rand.Intn(500)) * 2
				if v, ok := s.Get(k); !ok || v != k {
					t.Errorf("lost permanent key %d", k)
					return
				}
				// Iteration must stay sorted.
				prev, n := uint64(0), 0
				for it := s.Seek(k); it.Valid() && n < 50; it.Next() {
					if n > 0 && it.Key() <= prev {
						t.Errorf("unsorted iteration near %d", k)
						return
					}
					prev = it.Key()
					n++
				}
			}
		}()
	}
	// Writer churns odd keys.
	for i := 0; i < 20000; i++ {
		k := uint64(rand.Intn(500))*2 + 1
		if i%2 == 0 {
			s.Put(k, k)
		} else {
			s.Delete(k)
		}
	}
	close(stop)
	wg.Wait()
}

func TestSkipListDeleteTallNode(t *testing.T) {
	// Insert enough keys that some nodes are multi-level, then delete
	// every key and verify emptiness.
	s := NewSkipList[int](13)
	for i := uint64(0); i < 2000; i++ {
		s.Put(i, int(i))
	}
	for i := uint64(0); i < 2000; i++ {
		if !s.Delete(i) {
			t.Fatalf("Delete(%d) = false", i)
		}
	}
	if s.Len() != 0 || s.Min().Valid() {
		t.Fatal("list not empty after deleting all keys")
	}
}
