package index

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

const maxLevel = 24

// SkipList is an ordered concurrent map from uint64 keys to V.
//
// Readers (Get, Seek, iteration) are lock-free: they only follow atomic
// next pointers, so they never block behind writers and always observe a
// structurally consistent list. Writers (Put, Delete) serialize on an
// internal mutex; see the package comment for why this is an acceptable
// substitute for the paper's lock-free Bw-Tree.
type SkipList[V any] struct {
	head  *slNode[V]
	level atomic.Int32

	wmu sync.Mutex
	rng *rand.Rand
	len atomic.Int64
}

type slNode[V any] struct {
	key uint64
	// val is replaced atomically so lock-free readers never observe a
	// torn value when Put overwrites an existing key.
	val  atomic.Pointer[V]
	next []atomic.Pointer[slNode[V]]
}

// NewSkipList returns an empty list. The seed only affects level
// distribution; any value yields correct behaviour.
func NewSkipList[V any](seed int64) *SkipList[V] {
	s := &SkipList[V]{
		head: &slNode[V]{next: make([]atomic.Pointer[slNode[V]], maxLevel)},
		rng:  rand.New(rand.NewSource(seed)),
	}
	s.level.Store(1)
	return s
}

func (s *SkipList[V]) randomLevel() int {
	lvl := 1
	for lvl < maxLevel && s.rng.Int63()&3 == 0 { // p = 1/4
		lvl++
	}
	return lvl
}

// findPreds fills preds with the rightmost node at each level whose key
// is < key, and returns the node at level 0 following preds[0] (the
// candidate match). Caller must hold wmu when using preds for mutation.
func (s *SkipList[V]) findPreds(key uint64, preds *[maxLevel]*slNode[V]) *slNode[V] {
	x := s.head
	for i := int(s.level.Load()) - 1; i >= 0; i-- {
		for {
			nxt := x.next[i].Load()
			if nxt == nil || nxt.key >= key {
				break
			}
			x = nxt
		}
		preds[i] = x
	}
	return x.next[0].Load()
}

// Get returns the value stored under key.
func (s *SkipList[V]) Get(key uint64) (V, bool) {
	x := s.head
	for i := int(s.level.Load()) - 1; i >= 0; i-- {
		for {
			nxt := x.next[i].Load()
			if nxt == nil || nxt.key > key {
				break
			}
			if nxt.key == key {
				return *nxt.val.Load(), true
			}
			x = nxt
		}
	}
	var zero V
	return zero, false
}

// Put inserts or replaces the value under key.
func (s *SkipList[V]) Put(key uint64, v V) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	var preds [maxLevel]*slNode[V]
	cand := s.findPreds(key, &preds)
	if cand != nil && cand.key == key {
		cand.val.Store(&v)
		return
	}
	lvl := s.randomLevel()
	cur := int(s.level.Load())
	for i := cur; i < lvl; i++ {
		preds[i] = s.head
	}
	if lvl > cur {
		s.level.Store(int32(lvl))
	}
	n := &slNode[V]{key: key, next: make([]atomic.Pointer[slNode[V]], lvl)}
	n.val.Store(&v)
	// Set the new node's forward pointers before publishing it, bottom
	// level last-to-first so lock-free readers never see a dangling hop.
	for i := 0; i < lvl; i++ {
		n.next[i].Store(preds[i].next[i].Load())
	}
	for i := 0; i < lvl; i++ {
		preds[i].next[i].Store(n)
	}
	s.len.Add(1)
}

// PutBatch inserts or replaces every (keys[i], vals[i]) pair under one
// writer-lock acquisition. The batch is processed in ascending key order
// with a finger search: each insertion resumes from the predecessors of
// the previous one instead of descending from the head, so a sorted run
// of k nearby keys costs O(k + log n) pointer hops rather than
// O(k log n) — the ordered-bulk-insert half of the ALEX batch pattern.
// Readers stay lock-free throughout and observe each insert atomically.
func (s *SkipList[V]) PutBatch(keys []uint64, vals []V) {
	if len(keys) != len(vals) {
		panic("index: PutBatch length mismatch")
	}
	if len(keys) == 0 {
		return
	}
	order := make([]int32, len(keys))
	for i := range order {
		order[i] = int32(i)
	}
	// Stable so duplicate keys within the batch apply in input order
	// (last write wins, matching a sequence of Puts).
	sort.SliceStable(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })

	s.wmu.Lock()
	defer s.wmu.Unlock()
	var preds [maxLevel]*slNode[V]
	for i := range preds {
		preds[i] = s.head
	}
	for _, j := range order {
		key, v := keys[j], vals[j]
		// Descend from the top, but never behind the previous key's
		// predecessor at each level (keys are ascending, so old preds
		// remain valid lower bounds).
		x := s.head
		for i := int(s.level.Load()) - 1; i >= 0; i-- {
			if p := preds[i]; p != s.head && (x == s.head || p.key > x.key) {
				x = p
			}
			for {
				nxt := x.next[i].Load()
				if nxt == nil || nxt.key >= key {
					break
				}
				x = nxt
			}
			preds[i] = x
		}
		if cand := preds[0].next[0].Load(); cand != nil && cand.key == key {
			cand.val.Store(&v)
			continue
		}
		lvl := s.randomLevel()
		cur := int(s.level.Load())
		for i := cur; i < lvl; i++ {
			preds[i] = s.head
		}
		if lvl > cur {
			s.level.Store(int32(lvl))
		}
		n := &slNode[V]{key: key, next: make([]atomic.Pointer[slNode[V]], lvl)}
		n.val.Store(&v)
		for i := 0; i < lvl; i++ {
			n.next[i].Store(preds[i].next[i].Load())
		}
		for i := 0; i < lvl; i++ {
			preds[i].next[i].Store(n)
		}
		s.len.Add(1)
	}
}

// Delete removes key, reporting whether it was present.
func (s *SkipList[V]) Delete(key uint64) bool {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	var preds [maxLevel]*slNode[V]
	cand := s.findPreds(key, &preds)
	if cand == nil || cand.key != key {
		return false
	}
	for i := len(cand.next) - 1; i >= 0; i-- {
		// preds[i] may not directly precede cand at level i if cand is
		// shorter than the current list level; only unlink where linked.
		if preds[i].next[i].Load() == cand {
			preds[i].next[i].Store(cand.next[i].Load())
		}
	}
	s.len.Add(-1)
	return true
}

// Len returns the number of keys currently stored.
func (s *SkipList[V]) Len() int { return int(s.len.Load()) }

// Seek returns an iterator positioned at the smallest key >= key.
func (s *SkipList[V]) Seek(key uint64) *Iterator[V] {
	x := s.head
	for i := int(s.level.Load()) - 1; i >= 0; i-- {
		for {
			nxt := x.next[i].Load()
			if nxt == nil || nxt.key >= key {
				break
			}
			x = nxt
		}
	}
	return &Iterator[V]{cur: x.next[0].Load()}
}

// Min returns an iterator positioned at the smallest key.
func (s *SkipList[V]) Min() *Iterator[V] {
	return &Iterator[V]{cur: s.head.next[0].Load()}
}

// Iterator walks a SkipList in ascending key order. It is valid to use
// concurrently with writers: it observes some consistent interleaving of
// inserts and deletes that happen while it runs.
type Iterator[V any] struct {
	cur *slNode[V]
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator[V]) Valid() bool { return it.cur != nil }

// Key returns the current key. Only call when Valid.
func (it *Iterator[V]) Key() uint64 { return it.cur.key }

// Value returns the current value. Only call when Valid.
func (it *Iterator[V]) Value() V { return *it.cur.val.Load() }

// Next advances to the next entry.
func (it *Iterator[V]) Next() { it.cur = it.cur.next[0].Load() }
