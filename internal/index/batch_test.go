package index

import (
	"math/rand"
	"sync"
	"testing"
)

// TestHashGetOrPutBatch checks the batched get-or-create against the
// single-key path: same residents, correct inserted flags, duplicate
// keys in one batch converging on one entry.
func TestHashGetOrPutBatch(t *testing.T) {
	h := NewHash[*int](64)
	pre := 17
	h.Put(100, &pre)

	keys := []uint64{1, 100, 2, 1, 3, 100}
	out := make([]*int, len(keys))
	inserted := make([]bool, len(keys))
	made := 0
	h.GetOrPutBatch(keys, func(k uint64) *int {
		made++
		v := int(k)
		return &v
	}, out, inserted)

	if out[1] != &pre || out[5] != &pre {
		t.Fatal("pre-existing entry was not returned for key 100")
	}
	if inserted[1] || inserted[5] {
		t.Fatal("pre-existing key reported as inserted")
	}
	if !inserted[0] || !inserted[2] || !inserted[4] {
		t.Fatalf("fresh keys not reported inserted: %v", inserted)
	}
	if inserted[3] {
		t.Fatal("duplicate key in batch reported inserted twice")
	}
	if out[0] != out[3] {
		t.Fatal("duplicate keys in one batch did not converge on one value")
	}
	if made != 3 {
		t.Fatalf("mk called %d times, want 3", made)
	}
	for i, k := range keys {
		got, ok := h.Get(k)
		if !ok || got != out[i] {
			t.Fatalf("Get(%d) disagrees with batch result", k)
		}
	}
}

// TestHashGetOrPutBatchRandomized cross-checks batch and single-key
// paths over random keys, including concurrent batches.
func TestHashGetOrPutBatchRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHash[uint64](1024)
	oracle := make(map[uint64]uint64)
	for round := 0; round < 50; round++ {
		n := 1 + rng.Intn(200)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Uint64() % 5000
		}
		out := make([]uint64, n)
		inserted := make([]bool, n)
		h.GetOrPutBatch(keys, func(k uint64) uint64 { return k * 3 }, out, inserted)
		for i, k := range keys {
			want, existed := oracle[k]
			if !existed {
				want = k * 3
				oracle[k] = want
			}
			if out[i] != want {
				t.Fatalf("round %d key %d: got %d want %d", round, k, out[i], want)
			}
		}
	}
	if h.Len() != len(oracle) {
		t.Fatalf("Len = %d, oracle has %d", h.Len(), len(oracle))
	}

	// Concurrent batches over an overlapping key space: all callers must
	// converge on one value per key.
	h2 := NewHash[*int](256)
	var wg sync.WaitGroup
	results := make([][]*int, 8)
	keys := make([]uint64, 512)
	for i := range keys {
		keys[i] = uint64(i % 128)
	}
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]*int, len(keys))
			h2.GetOrPutBatch(keys, func(k uint64) *int { v := int(k); return &v }, out, make([]bool, len(keys)))
			results[g] = out
		}()
	}
	wg.Wait()
	for g := 1; g < 8; g++ {
		for i := range keys {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d got a different value for key %d", g, keys[i])
			}
		}
	}
}

// TestSkipListPutBatch checks batched ordered insert against Put:
// replacement semantics, iteration order, and interleaving with
// lock-free readers.
func TestSkipListPutBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sl := NewSkipList[int](1)
	oracle := make(map[uint64]int)
	// Seed through the single-key path.
	for i := 0; i < 300; i++ {
		k := rng.Uint64() % 2000
		sl.Put(k, int(k))
		oracle[k] = int(k)
	}
	// Batches of unsorted keys, overlapping the seeded range.
	for round := 0; round < 30; round++ {
		n := 1 + rng.Intn(100)
		keys := make([]uint64, n)
		vals := make([]int, n)
		for i := range keys {
			keys[i] = rng.Uint64() % 2500
			vals[i] = round*10000 + i
		}
		sl.PutBatch(keys, vals)
		// Duplicate keys within a batch apply in input order (stable
		// sort), so the plain sequential oracle matches.
		for i, k := range keys {
			oracle[k] = vals[i]
		}
	}
	if sl.Len() != len(oracle) {
		t.Fatalf("Len = %d, oracle has %d", sl.Len(), len(oracle))
	}
	for k, want := range oracle {
		got, ok := sl.Get(k)
		if !ok || got != want {
			t.Fatalf("Get(%d) = %d,%v want %d", k, got, ok, want)
		}
	}
	// Ascending iteration with no duplicates.
	var prev uint64
	first := true
	n := 0
	for it := sl.Min(); it.Valid(); it.Next() {
		if !first && it.Key() <= prev {
			t.Fatalf("iteration not strictly ascending: %d after %d", it.Key(), prev)
		}
		prev, first = it.Key(), false
		n++
	}
	if n != len(oracle) {
		t.Fatalf("iterated %d entries, want %d", n, len(oracle))
	}
}

// TestSkipListPutBatchConcurrentReaders hammers PutBatch while readers
// iterate; run under -race this pins the lock-free publication order.
func TestSkipListPutBatchConcurrentReaders(t *testing.T) {
	sl := NewSkipList[uint64](3)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var prev uint64
				first := true
				for it := sl.Seek(0); it.Valid(); it.Next() {
					if !first && it.Key() < prev {
						t.Error("reader observed out-of-order keys")
						return
					}
					if it.Value() != it.Key()*7 {
						t.Error("reader observed torn value")
						return
					}
					prev, first = it.Key(), false
				}
			}
		}()
	}
	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 200; round++ {
		n := 1 + rng.Intn(64)
		keys := make([]uint64, n)
		vals := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Uint64() % 10000
			vals[i] = keys[i] * 7
		}
		sl.PutBatch(keys, vals)
	}
	close(stop)
	wg.Wait()
}
