// Package index provides the two index structures used by BatchDB's OLTP
// replica (paper §4, Fig. 2): a hash index for point lookups and an
// ordered index for range scans.
//
// The paper uses a simplified lock-free Bw-Tree based on multi-word
// compare-and-swap [32, 37]. Go's memory model and lack of pointer
// tagging make that exact design impractical, so this package substitutes
// structures with the same interface contract:
//
//   - Hash: a sharded hash map with per-shard reader/writer locks.
//   - SkipList: an ordered map whose readers are lock-free (they follow
//     atomic pointers and never block) while writers serialize on a
//     single mutex. Writer serialization is harmless here because index
//     mutation on the OLTP replica happens from a small set of worker
//     threads executing short transactions, and — as in Hekaton — index
//     entries are only physically removed by background garbage
//     collection, never inline with transaction execution.
//
// Both structures map dense uint64 keys to values; callers compose
// multi-column keys into uint64 (see internal/tpcc) or use uniquifier
// bits for non-unique secondary keys.
package index

import "sync"

const hashShards = 64 // power of two

// Hash is a sharded concurrent hash map from uint64 keys to V.
type Hash[V any] struct {
	shards [hashShards]hashShard[V]
}

type hashShard[V any] struct {
	mu sync.RWMutex
	m  map[uint64]V
	// owned reports whether m belongs exclusively to this Hash. A
	// freshly built index owns every shard; a Clone owns none and copies
	// a shard's map on first mutation (copy-on-write), leaving the
	// parent's map frozen for readers that still hold the parent.
	owned bool
}

// NewHash returns an empty hash index sized for roughly n entries.
func NewHash[V any](n int) *Hash[V] {
	h := &Hash[V]{}
	per := n / hashShards
	if per < 8 {
		per = 8
	}
	for i := range h.shards {
		h.shards[i].m = make(map[uint64]V, per)
		h.shards[i].owned = true
	}
	return h
}

// Clone returns a copy-on-write snapshot of the index: the clone shares
// every shard map with the parent and copies a shard only when it is
// first mutated, so clone cost is O(shards) plus O(size of touched
// shards) — not O(entries). The intended protocol is one-directional:
// after cloning, the parent must no longer be mutated (it becomes the
// frozen index of an older snapshot); all writes go to the clone.
// Concurrent reads of the parent during the clone's shard copies are
// safe (read-read on shared maps).
func (h *Hash[V]) Clone() *Hash[V] {
	c := &Hash[V]{}
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.RLock()
		c.shards[i].m = s.m
		s.mu.RUnlock()
	}
	return c
}

// own ensures the shard's map is exclusively owned, copying it if it is
// still shared with a Clone parent. Must be called with s.mu held for
// writing.
func (s *hashShard[V]) own() {
	if s.owned {
		return
	}
	m := make(map[uint64]V, len(s.m)+1)
	for k, v := range s.m {
		m[k] = v
	}
	s.m = m
	s.owned = true
}

// shardIndex maps a key to its shard ordinal. Fibonacci hashing spreads
// dense keys across shards.
func shardIndex(key uint64) int {
	return int((key * 0x9E3779B97F4A7C15) >> (64 - 6))
}

func (h *Hash[V]) shard(key uint64) *hashShard[V] {
	return &h.shards[shardIndex(key)]
}

// Get returns the value for key.
func (h *Hash[V]) Get(key uint64) (V, bool) {
	s := h.shard(key)
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	return v, ok
}

// Put stores value under key, replacing any existing entry.
func (h *Hash[V]) Put(key uint64, v V) {
	s := h.shard(key)
	s.mu.Lock()
	s.own()
	s.m[key] = v
	s.mu.Unlock()
}

// PutIfAbsent stores value under key only if no entry exists. It returns
// the resident value and whether the put took effect.
func (h *Hash[V]) PutIfAbsent(key uint64, v V) (V, bool) {
	s := h.shard(key)
	s.mu.Lock()
	if old, ok := s.m[key]; ok {
		s.mu.Unlock()
		return old, false
	}
	s.own()
	s.m[key] = v
	s.mu.Unlock()
	return v, true
}

// GetOrPutBatch resolves every key to its resident value, creating
// absent entries with mk. Results land in out (input order); inserted[i]
// reports whether out[i] was created by this call. Both slices must have
// len(keys).
//
// Keys are grouped by shard first (the ALEX batch-insertion pattern:
// group by target node, then do all the work per node at once), so the
// whole batch costs one lock acquisition per touched shard instead of
// up to two per key, and each shard's copy-on-write check runs once.
// Duplicate keys in the batch converge on one entry, like racing
// PutIfAbsent callers.
func (h *Hash[V]) GetOrPutBatch(keys []uint64, mk func(key uint64) V, out []V, inserted []bool) {
	// Counting sort of key positions by shard.
	var counts [hashShards]int32
	for _, k := range keys {
		counts[shardIndex(k)]++
	}
	var starts [hashShards]int32
	var sum int32
	for i, c := range counts {
		starts[i] = sum
		sum += c
	}
	order := make([]int32, len(keys))
	next := starts
	for i, k := range keys {
		s := shardIndex(k)
		order[next[s]] = int32(i)
		next[s]++
	}
	for si := range h.shards {
		if counts[si] == 0 {
			continue
		}
		group := order[starts[si]:next[si]]
		s := &h.shards[si]
		s.mu.Lock()
		var owned bool
		for _, i := range group {
			k := keys[i]
			if v, ok := s.m[k]; ok {
				out[i] = v
				continue
			}
			if !owned {
				s.own()
				owned = true
			}
			v := mk(k)
			s.m[k] = v
			out[i] = v
			inserted[i] = true
		}
		s.mu.Unlock()
	}
}

// CompareAndDelete removes key only if its value satisfies eq, reporting
// whether an entry was removed. It lets callers retire an entry without
// clobbering a replacement installed concurrently under the same key.
func (h *Hash[V]) CompareAndDelete(key uint64, eq func(V) bool) bool {
	s := h.shard(key)
	s.mu.Lock()
	v, ok := s.m[key]
	if ok && eq(v) {
		s.own()
		delete(s.m, key)
		s.mu.Unlock()
		return true
	}
	s.mu.Unlock()
	return false
}

// Delete removes key. It reports whether an entry was removed.
func (h *Hash[V]) Delete(key uint64) bool {
	s := h.shard(key)
	s.mu.Lock()
	_, ok := s.m[key]
	if ok {
		s.own()
		delete(s.m, key)
	}
	s.mu.Unlock()
	return ok
}

// Len returns the number of entries. It is linearizable only in
// quiescent states.
func (h *Hash[V]) Len() int {
	n := 0
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Range calls fn for every entry until fn returns false. Entries
// inserted or removed concurrently may or may not be observed; each
// shard is visited under its read lock.
func (h *Hash[V]) Range(fn func(key uint64, v V) bool) {
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.RLock()
		for k, v := range s.m {
			if !fn(k, v) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}
