package olap

import (
	"testing"

	"batchdb/internal/proplog"
)

// TestReplicaCompressionLifecycle drives a compressed replica through
// the full maintenance cycle — load, synopsis activation, apply rounds
// with inserts/patches/deletes — and proves the encoded vectors are
// fresh (never stale) after every quiesced window, with FilterRange
// agreeing with the raw rows throughout.
func TestReplicaCompressionLifecycle(t *testing.T) {
	s := kvSchema()
	r := NewReplica(2)
	r.EnableZoneMaps(64)
	r.EnableCompression()
	tbl := r.CreateTable(s, 64)

	for i := int64(1); i <= 300; i++ {
		if err := r.LoadTuple(1, uint64(i), tuple(s, i, i%17)); err != nil {
			t.Fatal(err)
		}
	}
	// Query interest in column v, then the quiesced activation sweep:
	// it must both build the synopses and encode every block.
	tbl.RequestSynopses([]ColRange{{Col: 1, Lo: 0, Hi: 16}})
	r.ActivateSynopses()
	for _, p := range tbl.Partitions {
		if !p.Compressed() {
			t.Fatal("partition not compressed after EnableCompression")
		}
		if p.enc.anyStale {
			t.Fatal("stale vectors after activation sweep")
		}
	}

	checkParity := func(stage string) {
		t.Helper()
		served := 0
		for _, p := range tbl.Partitions {
			if p.enc.anyStale {
				t.Fatalf("%s: stale vectors outside a quiesced window", stage)
			}
			r := []ColRange{{Col: 1, Lo: 3, Hi: 9}}
			for b := 0; b*64 < p.Slots(); b++ {
				lo, hi := b*64, min((b+1)*64, p.Slots())
				var sel [1]uint64
				if !p.FilterRange(lo, hi, r, sel[:]) {
					continue
				}
				served++
				for i := lo; i < hi; i++ {
					if p.rowIDs[i] == 0 {
						continue
					}
					v := s.GetInt64(p.data[i*p.tupleSize:(i+1)*p.tupleSize], 1)
					want := v >= 3 && v <= 9
					got := sel[(i-lo)>>6]>>(uint(i-lo)&63)&1 == 1
					if got != want {
						t.Fatalf("%s: slot %d verdict %v, raw %v (v=%d)", stage, i, got, want, v)
					}
				}
			}
		}
		if served == 0 {
			t.Fatalf("%s: FilterRange served no blocks — parity check is vacuous", stage)
		}
	}
	checkParity("activated")

	// Apply rounds: each mixes inserts (growing new blocks and recycling
	// freed slots), patches on the encoded column, and deletes. The
	// apply step re-encodes inside the same quiesced window that
	// resummarizes, so vectors must be fresh after every round.
	vid := uint64(0)
	next := uint64(1000)
	var live []uint64
	for i := int64(1); i <= 300; i++ {
		live = append(live, uint64(i))
	}
	for round := 0; round < 5; round++ {
		buf := proplog.NewBuffer(0)
		for i := 0; i < 40; i++ {
			vid++
			switch i % 4 {
			case 0, 1: // insert (recycles slots freed by earlier deletes)
				buf.Add(1, mkEntry(vid, proplog.Insert, next, 0, tuple(s, int64(next), int64(i%23))))
				live = append(live, next)
				next++
			case 2: // patch the encoded column of a live row
				rid := live[(round*37+i)%len(live)]
				buf.Add(1, mkEntry(vid, proplog.Update, rid, uint32(s.Offset(1)), u64le(int64(i%13))))
			default: // delete a live row
				j := (round*53 + i) % len(live)
				rid := live[j]
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
				buf.Add(1, mkEntry(vid, proplog.Delete, rid, 0, nil))
			}
		}
		r.ApplyUpdates([]proplog.Batch{buf.Take()}, vid)
		if _, err := r.ApplyPending(vid); err != nil {
			t.Fatal(err)
		}
		checkParity("applied")
	}

	// CompressionStats reflects the encoded reality: blocks counted,
	// encoded footprint no larger than raw for this low-cardinality data.
	stats := tbl.CompressionStats()
	if len(stats) == 0 {
		t.Fatal("no compression stats")
	}
	for _, cs := range stats {
		if cs.Blocks <= 0 {
			t.Fatalf("column %d: %d blocks", cs.Col, cs.Blocks)
		}
		if cs.EncodedBytes > cs.RawBytes {
			t.Fatalf("column %d: encoded %d > raw %d", cs.Col, cs.EncodedBytes, cs.RawBytes)
		}
		kinds := 0
		for _, n := range cs.Kinds {
			kinds += n
		}
		if kinds != cs.Blocks {
			t.Fatalf("column %d: kind counts %v sum %d != blocks %d", cs.Col, cs.Kinds, kinds, cs.Blocks)
		}
	}
}

// TestEnableCompressionRequiresZoneMaps pins the layering rule: the
// encoded vectors ride on the zone-map block structure, so without zone
// maps (or with sub-64-slot blocks) EnableCompression is a no-op.
func TestEnableCompressionRequiresZoneMaps(t *testing.T) {
	s := kvSchema()
	p := NewPartition(s, 16)
	p.EnableCompression()
	if p.Compressed() {
		t.Fatal("compression attached without zone maps")
	}
	p2 := NewPartition(s, 16)
	p2.EnableZoneMap(32) // below the 64-slot bitmap-alignment floor
	p2.EnableCompression()
	if p2.Compressed() {
		t.Fatal("compression attached on sub-64-slot blocks")
	}
}
