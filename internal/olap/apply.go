package olap

import (
	"fmt"
	"sync"
	"time"

	"batchdb/internal/proplog"
	"batchdb/internal/storage"
)

// TableApplyStats breaks down update application for one relation, the
// measurements behind paper Table 1.
type TableApplyStats struct {
	Step1, Step2, Step3        time.Duration
	Inserted, Updated, Deleted int
}

// ApplyStats summarizes one application round (paper Fig. 4).
type ApplyStats struct {
	// Target is the snapshot VID applied up to (inclusive).
	Target uint64
	// Entries counts applied update entries.
	Entries int
	// Reloaded reports that a staged resync snapshot replaced the
	// replica's contents at the start of this round.
	Reloaded bool
	// Step1 orders per-worker update sets by VID; Step2 routes them to
	// partitions by hash(RowID); Step3 applies them through the RowID
	// hash index. Step3 is CPU time summed over parallel partition
	// workers, matching the paper's per-step CPU-time accounting.
	Step1, Step2, Step3 time.Duration
	// PerTable splits the work by relation.
	PerTable map[storage.TableID]*TableApplyStats
}

// ApplyPending applies every queued update with VID <= target, in VID
// order per table, in parallel across partitions — the three-step
// algorithm of paper §5/Fig. 4. Updates beyond target are requeued for
// the next round. It must only be called while no query batch executes;
// the Scheduler guarantees that.
func (r *Replica) ApplyPending(target uint64) (ApplyStats, error) {
	stats := ApplyStats{Target: target, PerTable: make(map[storage.TableID]*TableApplyStats)}
	// Take the staged resync snapshot (reconnect after connection loss),
	// the queued batches and the floor in one atomic step: batches that
	// were spliced in together with a reload must never be drained
	// without it (they would land on stale pre-reconnect data and then
	// be wiped by the reload, unrecoverable below its floor).
	rl, batches, floor := r.takeWork()
	if rl != nil {
		// The reload installs first: it raises the floor so stale queued
		// updates the snapshot already contains are discarded below.
		if err := r.applyReload(rl); err != nil {
			r.mu.Lock()
			r.applyErr = err
			r.mu.Unlock()
			return stats, fmt.Errorf("olap: resync reload: %w", err)
		}
		stats.Reloaded = true
		if rl.vid > floor {
			floor = rl.vid
		}
	}
	if len(batches) == 0 {
		r.setApplied(target)
		return stats, nil
	}

	// Group entries by table, keeping one VID-ordered stream per worker
	// (a worker's commits are VID-monotonic, and batches arrive in push
	// order, so concatenation per worker preserves order).
	perTable := make(map[storage.TableID][]*workerStream)
	streams := make(map[[2]uint64]*workerStream) // (table, worker) -> stream
	var leftover []proplog.Batch
	for _, b := range batches {
		for _, tb := range b.Tables {
			key := [2]uint64{uint64(tb.Table), uint64(b.Worker)}
			s := streams[key]
			if s == nil {
				s = &workerStream{worker: b.Worker}
				streams[key] = s
				perTable[tb.Table] = append(perTable[tb.Table], s)
			}
			for _, e := range tb.Entries {
				if e.VID <= floor {
					continue // already reflected by the bootstrap snapshot
				}
				if e.VID > target {
					leftover = appendLeftover(leftover, b.Worker, tb.Table, e)
					continue
				}
				s.entries = append(s.entries, e)
			}
		}
	}
	if len(leftover) > 0 {
		r.mu.Lock()
		r.pending = append(leftover, r.pending...)
		r.mu.Unlock()
	}

	// Process tables in registration order for deterministic stats.
	for _, t := range r.order {
		ws := perTable[t.Schema.ID]
		if len(ws) == 0 {
			continue
		}
		ts := &TableApplyStats{}
		stats.PerTable[t.Schema.ID] = ts

		// Step 1: merge the per-worker streams into one VID-ordered
		// stream (linear scan, complexity linear in entries — "the
		// fastest step").
		start := time.Now()
		merged := mergeByVID(ws)
		ts.Step1 = time.Since(start)
		stats.Step1 += ts.Step1
		stats.Entries += len(merged)

		// Step 2: route entries to partitions by hash(RowID),
		// preserving VID order within each partition.
		start = time.Now()
		perPart := make([][]proplog.Entry, len(t.Partitions))
		for _, e := range merged {
			h := e.RowID * 0x9E3779B97F4A7C15
			pi := h % uint64(len(t.Partitions))
			perPart[pi] = append(perPart[pi], e)
		}
		ts.Step2 = time.Since(start)
		stats.Step2 += ts.Step2

		// Step 3: apply per partition in parallel through the RowID
		// hash index (the expensive, random-access step).
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		for pi, entries := range perPart {
			if len(entries) == 0 {
				continue
			}
			wg.Add(1)
			go func(p *Partition, entries []proplog.Entry) {
				defer wg.Done()
				t0 := time.Now()
				ins, upd, del, err := applyToPartition(t, p, entries)
				d := time.Since(t0)
				mu.Lock()
				ts.Step3 += d
				ts.Inserted += ins
				ts.Updated += upd
				ts.Deleted += del
				if err != nil && firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}(t.Partitions[pi], entries)
		}
		wg.Wait()
		stats.Step3 += ts.Step3
		if firstErr != nil {
			r.mu.Lock()
			r.applyErr = firstErr
			r.mu.Unlock()
			// Leave the version untouched: a failed round must not report
			// a clean bump (cached build sides are invalidated by the
			// replica's error state, not by a phantom version change).
			return stats, fmt.Errorf("olap: apply to table %s: %w", t.Schema.Name, firstErr)
		}
		t.version++
	}
	r.setApplied(target)
	return stats, nil
}

func appendLeftover(batches []proplog.Batch, worker int, table storage.TableID, e proplog.Entry) []proplog.Batch {
	for i := range batches {
		if batches[i].Worker == worker {
			for j := range batches[i].Tables {
				if batches[i].Tables[j].Table == table {
					batches[i].Tables[j].Entries = append(batches[i].Tables[j].Entries, e)
					return batches
				}
			}
			batches[i].Tables = append(batches[i].Tables, proplog.TableBatch{
				Table: table, Entries: []proplog.Entry{e},
			})
			return batches
		}
	}
	return append(batches, proplog.Batch{
		Worker: worker,
		Tables: []proplog.TableBatch{{Table: table, Entries: []proplog.Entry{e}}},
	})
}

// MergeWorkerStreams merges per-worker VID-ordered entry streams into
// one VID-ordered stream (step 1 of the apply algorithm), exposed for
// harnesses that apply update streams to alternative storage layouts
// (the column-store microbenchmark of paper §8.3).
func MergeWorkerStreams(streams [][]proplog.Entry) []proplog.Entry {
	ws := make([]*workerStream, len(streams))
	for i, s := range streams {
		ws[i] = &workerStream{worker: i, entries: s}
	}
	return mergeByVID(ws)
}

// workerStream is one worker's VID-ordered entry stream for one table.
type workerStream struct {
	worker  int
	entries []proplog.Entry
}

// mergeByVID k-way merges per-worker VID-sorted streams into one
// VID-ordered stream (paper Fig. 4 step 1). Worker counts are small, so
// a linear min-scan beats a heap.
func mergeByVID(ws []*workerStream) []proplog.Entry {
	total := 0
	for _, s := range ws {
		total += len(s.entries)
	}
	out := make([]proplog.Entry, 0, total)
	heads := make([]int, len(ws))
	for len(out) < total {
		best := -1
		var bestVID uint64
		for i, s := range ws {
			if heads[i] >= len(s.entries) {
				continue
			}
			v := s.entries[heads[i]].VID
			if best == -1 || v < bestVID {
				best, bestVID = i, v
			}
		}
		// Copy the whole run of equal-VID entries from the winning
		// stream (one transaction's updates stay contiguous).
		s := ws[best]
		for heads[best] < len(s.entries) && s.entries[heads[best]].VID == bestVID {
			out = append(out, s.entries[heads[best]])
			heads[best]++
		}
	}
	return out
}

// applyToPartition executes step 3 for one partition: updates and
// deletes locate their tuple through the RowID hash index; inserts take
// the next free slot. Consecutive field patches of the same tuple from
// the same transaction share a single index lookup and count as one
// updated tuple — the paper's Ptup counts tuples, not patches.
func applyToPartition(t *Table, p *Partition, entries []proplog.Entry) (ins, upd, del int, err error) {
	for i := 0; i < len(entries); i++ {
		e := &entries[i]
		switch e.Kind {
		case proplog.Insert:
			if aerr := p.Insert(e.RowID, e.Data); aerr != nil {
				return ins, upd, del, aerr
			}
			t.pkInsert(e.Data, e.RowID)
			ins++
		case proplog.Update:
			slot, ok := p.Locate(e.RowID)
			if !ok {
				return ins, upd, del, fmt.Errorf("olap: update of unknown RowID %d", e.RowID)
			}
			if aerr := p.PatchSlot(slot, e.Offset, e.Data); aerr != nil {
				return ins, upd, del, aerr
			}
			for i+1 < len(entries) && entries[i+1].Kind == proplog.Update &&
				entries[i+1].RowID == e.RowID && entries[i+1].VID == e.VID {
				i++
				if aerr := p.PatchSlot(slot, entries[i].Offset, entries[i].Data); aerr != nil {
					return ins, upd, del, aerr
				}
			}
			upd++
		case proplog.Delete:
			if t.pkIdx != nil {
				if tup, ok := p.Get(e.RowID); ok {
					t.pkDelete(tup)
				}
			}
			if aerr := p.Delete(e.RowID); aerr != nil {
				return ins, upd, del, aerr
			}
			del++
		default:
			return ins, upd, del, fmt.Errorf("olap: unknown update kind %d", e.Kind)
		}
	}
	return ins, upd, del, nil
}
