package olap

import (
	"fmt"
	"sync"
	"time"

	"batchdb/internal/index"
	"batchdb/internal/proplog"
	"batchdb/internal/storage"
)

// mergeHeapThreshold is the stream count above which mergeByVIDInto
// switches from a linear min-scan (O(k) per run, cache-friendly, wins
// for the handful of OLTP workers typical of one primary) to a binary
// heap (O(log k) per run, wins once many primaries or replayed segments
// fan into one table). BenchmarkMergeByVID puts the crossover between
// 16 and 64 streams on our reference machine (short equal-VID runs make
// the min-scan's per-run O(k) cheap in practice), hence 16.
const mergeHeapThreshold = 16

// routeShardMin is the minimum number of merged entries each routing
// goroutine must have before step 2 is worth sharding; below
// 2*routeShardMin the serial loop wins (goroutine hand-off costs more
// than hashing a few thousand RowIDs).
const routeShardMin = 4096

// applyScratch holds one table's reusable apply buffers, so steady-state
// rounds allocate nothing for merging and routing. Safe without locks:
// exactly one goroutine applies a given table per round, and rounds are
// serialized by the scheduler. Buffer shapes are revalidated against the
// current partition count each round, because a resync reload recreates
// t.Partitions.
type applyScratch struct {
	// merged is the step-1 output buffer.
	merged []proplog.Entry
	// perPart is the step-2 output: one VID-ordered entry slice per
	// partition.
	perPart [][]proplog.Entry
	// router holds the per-goroutine per-partition buffers of step 2's
	// sharded routing, grown to the worker count on demand.
	router [][][]proplog.Entry
}

// TableApplyStats breaks down update application for one relation, the
// measurements behind paper Table 1.
type TableApplyStats struct {
	Step1, Step2, Step3        time.Duration
	Inserted, Updated, Deleted int
}

// ApplyStats summarizes one application round (paper Fig. 4).
type ApplyStats struct {
	// Target is the snapshot VID applied up to (inclusive).
	Target uint64
	// Entries counts applied update entries.
	Entries int
	// Reloaded reports that a staged resync snapshot replaced the
	// replica's contents at the start of this round.
	Reloaded bool
	// Step1 orders per-worker update sets by VID; Step2 routes them to
	// partitions by hash(RowID); Step3 applies them through the RowID
	// hash index. Step3 is CPU time summed over parallel partition
	// workers, matching the paper's per-step CPU-time accounting.
	Step1, Step2, Step3 time.Duration
	// PerTable splits the work by relation.
	PerTable map[storage.TableID]*TableApplyStats
}

// ApplyPending applies every queued update with VID <= target, in VID
// order per table — the three-step algorithm of paper §5/Fig. 4, run
// concurrently across tables with leaf work (routing shards, partition
// applies) bounded by the replica's apply-worker budget. Updates beyond
// target are requeued for the next round.
//
// In the default quiesced mode it mutates the canonical structures in
// place and must only run while no query batch executes (the classic
// scheduler guarantees that). With SetConcurrentApply(true) it instead
// builds the next version on cloned partitions and installs it as a new
// snapshot head, so pinned readers may keep scanning throughout — the
// overlap scheduler's apply loop relies on this.
func (r *Replica) ApplyPending(target uint64) (ApplyStats, error) {
	// Take the staged resync snapshot (reconnect after connection loss),
	// the queued batches and the floor in one atomic step: batches that
	// were spliced in together with a reload must never be drained
	// without it (they would land on stale pre-reconnect data and then
	// be wiped by the reload, unrecoverable below its floor).
	rl, batches, floor := r.takeWork()
	if !r.concurrent.Load() {
		stats, err := r.applyWorkInPlace(rl, batches, floor, target)
		// The canonical tables changed under the caller's exclusive
		// window; the next PinSnapshot rebuilds the head view.
		r.markWiringDirty()
		return stats, err
	}
	return r.applyVersioned(rl, batches, floor, target)
}

// applyWorkInPlace is the quiesced-mode round body: reload install,
// synopsis activation and the three apply steps, all mutating the
// canonical structures directly.
func (r *Replica) applyWorkInPlace(rl *Reload, batches []proplog.Batch, floor, target uint64) (ApplyStats, error) {
	stats := ApplyStats{Target: target, PerTable: make(map[storage.TableID]*TableApplyStats)}
	if rl != nil {
		// The reload installs first: it raises the floor so stale queued
		// updates the snapshot already contains are discarded below.
		if err := r.applyReload(rl); err != nil {
			r.mu.Lock()
			r.applyErr = err
			r.mu.Unlock()
			return stats, fmt.Errorf("olap: resync reload: %w", err)
		}
		stats.Reloaded = true
		if rl.vid > floor {
			floor = rl.vid
		}
	}
	// Activate any synopsis columns the last query batches requested,
	// inside this quiesced window and before new entries land — the
	// incremental maintenance below then covers exactly the active set.
	// A resync reload rebuilt partitions with empty synopses, so this
	// also re-activates the requested columns after a reload.
	r.ActivateSynopses()
	if len(batches) == 0 {
		r.setApplied(target)
		return stats, nil
	}

	perTable := r.groupStreams(batches, floor, target)

	// Run the per-table pipelines concurrently: the multi-table TPC-C
	// update mix touches eight relations whose steps 1–2 used to run
	// back-to-back on one goroutine. The shared semaphore keeps total
	// leaf parallelism (across all tables) at the apply-worker budget.
	sem := make(chan struct{}, r.applyWorkers)
	type tableOut struct {
		ts      *TableApplyStats
		entries int
		err     error
	}
	outs := make([]tableOut, len(r.order))
	var wg sync.WaitGroup
	for ti, t := range r.order {
		ws := perTable[t.Schema.ID]
		if len(ws) == 0 {
			continue
		}
		wg.Add(1)
		go func(ti int, t *Table, ws []*workerStream) {
			defer wg.Done()
			ts, n, err := r.applyTable(t, ws, sem)
			outs[ti] = tableOut{ts: ts, entries: n, err: err}
		}(ti, t, ws)
	}
	wg.Wait()

	// Fold per-table outcomes in registration order so stats and the
	// reported error are deterministic regardless of completion order.
	var firstErr error
	var errTable *Table
	for ti, t := range r.order {
		o := outs[ti]
		if o.ts == nil {
			continue
		}
		stats.PerTable[t.Schema.ID] = o.ts
		stats.Entries += o.entries
		stats.Step1 += o.ts.Step1
		stats.Step2 += o.ts.Step2
		stats.Step3 += o.ts.Step3
		if o.err != nil {
			if firstErr == nil {
				firstErr, errTable = o.err, t
			}
			continue
		}
		t.version++
	}
	if firstErr != nil {
		r.mu.Lock()
		r.applyErr = firstErr
		r.mu.Unlock()
		// Leave the failed table's version untouched: a failed round must
		// not report a clean bump (cached build sides are invalidated by
		// the replica's error state, not by a phantom version change).
		return stats, fmt.Errorf("olap: apply to table %s: %w", errTable.Schema.Name, firstErr)
	}
	r.setApplied(target)
	return stats, nil
}

// groupStreams groups entries by table, keeping one VID-ordered stream
// per worker (a worker's commits are VID-monotonic, and batches arrive
// in push order, so concatenation per worker preserves order). Entries
// at or below floor are dropped; entries beyond target are requeued at
// the front of the pending queue for the next round.
func (r *Replica) groupStreams(batches []proplog.Batch, floor, target uint64) map[storage.TableID][]*workerStream {
	perTable := make(map[storage.TableID][]*workerStream)
	streams := make(map[[2]uint64]*workerStream) // (table, worker) -> stream
	var leftover []proplog.Batch
	for _, b := range batches {
		for _, tb := range b.Tables {
			key := [2]uint64{uint64(tb.Table), uint64(b.Worker)}
			s := streams[key]
			if s == nil {
				s = &workerStream{worker: b.Worker}
				streams[key] = s
				perTable[tb.Table] = append(perTable[tb.Table], s)
			}
			for _, e := range tb.Entries {
				if e.VID <= floor {
					continue // already reflected by the bootstrap snapshot
				}
				if e.VID > target {
					leftover = appendLeftover(leftover, b.Worker, tb.Table, e)
					continue
				}
				s.entries = append(s.entries, e)
			}
		}
	}
	if len(leftover) > 0 {
		r.mu.Lock()
		r.pending = append(leftover, r.pending...)
		r.mu.Unlock()
	}
	return perTable
}

// applyVersioned is the copy-on-apply round body: it builds version
// target on clones of exactly the partitions the delta (or a pending
// synopsis activation) touches, while readers pinned to older snapshots
// keep scanning the untouched structures, then atomically installs the
// result as the new snapshot head.
func (r *Replica) applyVersioned(rl *Reload, batches []proplog.Batch, floor, target uint64) (ApplyStats, error) {
	if rl != nil {
		// Resync reload (rare): applyReload replaces every canonical
		// structure with fresh, unreferenced objects, so the in-place
		// machinery is already snapshot-safe for it — pinned readers keep
		// their old objects untouched. Run it under snapMu so PinSnapshot
		// cannot observe a half-replaced table set, then install the full
		// new head.
		r.snapMu.Lock()
		defer r.snapMu.Unlock()
		stats, err := r.applyWorkInPlace(rl, batches, floor, target)
		if err != nil {
			r.markWiringDirty()
			return stats, err
		}
		r.installHeadLocked(r.buildSnapshotLocked())
		return stats, nil
	}

	stats := ApplyStats{Target: target, PerTable: make(map[storage.TableID]*TableApplyStats)}
	if len(batches) == 0 && target <= r.AppliedVID() {
		quiet := true
		for _, t := range r.order {
			if t.needsMaintenance() {
				quiet = false
				break
			}
		}
		if quiet {
			return stats, nil // nothing to build — keep the current head
		}
	}
	// Unpinned fast path: when no reader holds any version — true at
	// every freshness-barrier round, where the dispatcher is blocked
	// until this round installs — cloning buys nothing. Mutate the
	// canonical structures in place while holding snapMu (PinSnapshot
	// serializes behind it, so no pin can land mid-mutation) and install
	// a full head, exactly like the reload path above. Copy-on-apply is
	// reserved for rounds that truly overlap a pinned reader.
	r.snapMu.Lock()
	pinned := 0
	for s := r.snapTail; s != nil; s = s.next {
		pinned += s.pins
	}
	if pinned == 0 {
		stats, err := r.applyWorkInPlace(nil, batches, floor, target)
		if err != nil {
			r.markWiringDirty()
			r.snapMu.Unlock()
			return stats, err
		}
		r.installHeadLocked(r.buildSnapshotLocked())
		r.snapMu.Unlock()
		return stats, nil
	}
	r.snapMu.Unlock()

	perTable := r.groupStreams(batches, floor, target)

	// A table participates when it has entries or a pending maintenance
	// step (requested-but-inactive synopsis columns, stale encoded
	// blocks) — the versioned counterpart of ActivateSynopses.
	type tableOut struct {
		ts      *TableApplyStats
		entries int
		parts   []*Partition
		pk      *index.Hash[uint64]
		err     error
	}
	outs := make([]*tableOut, len(r.order))
	sem := make(chan struct{}, r.applyWorkers)
	var wg sync.WaitGroup
	for ti, t := range r.order {
		ws := perTable[t.Schema.ID]
		if len(ws) == 0 && !t.needsMaintenance() {
			continue
		}
		wg.Add(1)
		go func(ti int, t *Table, ws []*workerStream) {
			defer wg.Done()
			o := &tableOut{}
			o.ts, o.entries, o.parts, o.pk, o.err = r.applyTableVersioned(t, ws, sem)
			outs[ti] = o
		}(ti, t, ws)
	}
	wg.Wait()

	// Fold outcomes in registration order (deterministic stats/error).
	var firstErr error
	var errTable *Table
	for ti, t := range r.order {
		o := outs[ti]
		if o == nil {
			continue
		}
		stats.PerTable[t.Schema.ID] = o.ts
		stats.Entries += o.entries
		stats.Step1 += o.ts.Step1
		stats.Step2 += o.ts.Step2
		stats.Step3 += o.ts.Step3
		if o.err != nil && firstErr == nil {
			firstErr, errTable = o.err, t
		}
	}
	if firstErr != nil {
		// Nothing installs: the clones are discarded, the canonical
		// tables and every pinned snapshot are exactly as before.
		r.mu.Lock()
		r.applyErr = firstErr
		r.mu.Unlock()
		return stats, fmt.Errorf("olap: apply to table %s: %w", errTable.Schema.Name, firstErr)
	}

	// Install: swap the cloned state into the canonical tables and link
	// the new head. snapMu before mu (the package lock order); pinned
	// readers never see the canonical tables, so only PinSnapshot and
	// the chain care.
	r.snapMu.Lock()
	r.mu.Lock()
	for ti, t := range r.order {
		o := outs[ti]
		if o == nil {
			continue
		}
		t.Partitions = o.parts
		t.pkIdx = o.pk
		if o.entries > 0 {
			t.version++
		}
	}
	if target > r.applied {
		r.applied = target
	}
	r.mu.Unlock()
	r.installHeadLocked(r.buildSnapshotLocked())
	r.snapMu.Unlock()
	return stats, nil
}

// needsMaintenance reports whether any partition has requested-but-
// inactive synopsis columns or stale encoded blocks — work an apply
// round must pick up even with no entries for the table.
func (t *Table) needsMaintenance() bool {
	w := t.wantedSyn.Load()
	for _, p := range t.Partitions {
		if p.zm == nil {
			continue
		}
		if (w != 0 && p.zm.active&w != w) || (p.enc != nil && p.enc.anyStale) {
			return true
		}
	}
	return false
}

// applyTableVersioned runs the three apply steps for one table against
// cloned partitions, returning the next version's partition slice and
// PK index alongside the stats. Untouched partitions are shared with
// the current version by pointer; the PK index clones copy-on-write
// (shard maps copy only when an insert or delete lands in them).
func (r *Replica) applyTableVersioned(t *Table, ws []*workerStream, sem chan struct{}) (*TableApplyStats, int, []*Partition, *index.Hash[uint64], error) {
	ts := &TableApplyStats{}
	sc := &t.scratch

	// Steps 1–2 read only the entry streams and write only the canonical
	// table's scratch (owned by this round's single table goroutine), so
	// they run exactly as in the in-place path.
	start := time.Now()
	sc.merged = mergeByVIDInto(sc.merged[:0], ws)
	merged := sc.merged
	ts.Step1 = time.Since(start)

	start = time.Now()
	nparts := len(t.Partitions)
	if len(sc.perPart) != nparts {
		sc.perPart = make([][]proplog.Entry, nparts)
	}
	perPart := sc.perPart
	for i := range perPart {
		perPart[i] = perPart[i][:0]
	}
	for i := range merged {
		h := merged[i].RowID * 0x9E3779B97F4A7C15
		perPart[h%uint64(nparts)] = append(perPart[h%uint64(nparts)], merged[i])
	}
	ts.Step2 = time.Since(start)

	// The PK index for the next version: a copy-on-write clone when
	// entries might insert or delete, otherwise the shared current one.
	pk := t.pkIdx
	if pk != nil && len(merged) > 0 {
		pk = pk.Clone()
	}
	// shadow carries the cloned PK index through applyToPartition's
	// maintenance calls (pkInsert/pkDelete).
	shadow := viewOf(t, nil, pk, t.version)

	// Step 3: per touched partition — clone, activate pending synopsis
	// columns, apply, resummarize, re-encode — in parallel. The clone's
	// memcpy rides inside the goroutine, so partition copies overlap on
	// multi-core hosts.
	w := t.wantedSyn.Load()
	newParts := make([]*Partition, nparts)
	copy(newParts, t.Partitions)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for pi := range t.Partitions {
		p := t.Partitions[pi]
		entries := perPart[pi]
		maint := p.zm != nil && ((w != 0 && p.zm.active&w != w) || (p.enc != nil && p.enc.anyStale))
		if len(entries) == 0 && !maint {
			continue // untouched: the next version shares this partition
		}
		wg.Add(1)
		go func(pi int, p *Partition, entries []proplog.Entry) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t0 := time.Now()
			cp := p.cloneForWrite()
			if cp.zm != nil && w != 0 && cp.zm.active&w != w {
				cp.ActivateSynopsisCols(w)
			}
			ins, upd, del, err := applyToPartition(shadow, cp, entries)
			if err == nil {
				cp.ResummarizeDirty()
				cp.ReencodeDirty()
				newParts[pi] = cp
			}
			d := time.Since(t0)
			mu.Lock()
			ts.Step3 += d
			ts.Inserted += ins
			ts.Updated += upd
			ts.Deleted += del
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}(pi, p, entries)
	}
	wg.Wait()
	return ts, len(merged), newParts, pk, firstErr
}

// applyTable runs the three apply steps for one table and returns its
// stats and merged entry count. Leaf tasks acquire sem; the caller's
// per-table goroutine itself does not, so a round with more tables than
// workers cannot deadlock.
func (r *Replica) applyTable(t *Table, ws []*workerStream, sem chan struct{}) (*TableApplyStats, int, error) {
	ts := &TableApplyStats{}
	sc := &t.scratch

	// Step 1: merge the per-worker streams into one VID-ordered stream
	// ("the fastest step"), reusing the table's merge buffer.
	start := time.Now()
	sc.merged = mergeByVIDInto(sc.merged[:0], ws)
	merged := sc.merged
	ts.Step1 = time.Since(start)

	// Step 2: route entries to partitions by hash(RowID), preserving
	// VID order within each partition. Large rounds shard the routing
	// across goroutines; per-round buffers are reused.
	start = time.Now()
	nparts := len(t.Partitions)
	if len(sc.perPart) != nparts { // revalidated: a resync reload resizes partitions
		sc.perPart = make([][]proplog.Entry, nparts)
	}
	perPart := sc.perPart
	for i := range perPart {
		perPart[i] = perPart[i][:0]
	}
	nG := 1
	if r.applyWorkers > 1 && len(merged) >= 2*routeShardMin {
		nG = len(merged) / routeShardMin
		if nG > r.applyWorkers {
			nG = r.applyWorkers
		}
	}
	if nG <= 1 {
		for i := range merged {
			h := merged[i].RowID * 0x9E3779B97F4A7C15
			perPart[h%uint64(nparts)] = append(perPart[h%uint64(nparts)], merged[i])
		}
	} else {
		// Contiguous chunks keep VID order: chunk g holds strictly
		// earlier stream positions than chunk g+1, so concatenating each
		// partition's buffers in chunk order reproduces the serial
		// routing exactly.
		if len(sc.router) < nG {
			sc.router = append(sc.router, make([][][]proplog.Entry, nG-len(sc.router))...)
		}
		var rwg sync.WaitGroup
		for g := 0; g < nG; g++ {
			if len(sc.router[g]) != nparts {
				sc.router[g] = make([][]proplog.Entry, nparts)
			}
			lo, hi := g*len(merged)/nG, (g+1)*len(merged)/nG
			rwg.Add(1)
			go func(buf [][]proplog.Entry, chunk []proplog.Entry) {
				defer rwg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				for i := range buf {
					buf[i] = buf[i][:0]
				}
				for i := range chunk {
					h := chunk[i].RowID * 0x9E3779B97F4A7C15
					buf[h%uint64(nparts)] = append(buf[h%uint64(nparts)], chunk[i])
				}
			}(sc.router[g], merged[lo:hi])
		}
		rwg.Wait()
		for pi := 0; pi < nparts; pi++ {
			for g := 0; g < nG; g++ {
				perPart[pi] = append(perPart[pi], sc.router[g][pi]...)
			}
		}
	}
	ts.Step2 = time.Since(start)

	// Step 3: apply per partition in parallel through the RowID hash
	// index (the expensive, random-access step).
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for pi, entries := range perPart {
		if len(entries) == 0 {
			continue
		}
		wg.Add(1)
		go func(p *Partition, entries []proplog.Entry) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t0 := time.Now()
			ins, upd, del, err := applyToPartition(t, p, entries)
			if err == nil {
				// Re-summarize blocks this round's deletes and
				// bound-narrowing updates dirtied, inside the same
				// quiesced, per-partition-parallel window (and the same
				// Step3 timing) — queries never see a dirty block.
				p.ResummarizeDirty()
				// Then rebuild the encoded vectors of blocks this round's
				// inserts and patches staled, after the synopses are exact
				// again (re-encoding reuses the block min as fill and FOR
				// base) and in the same window — queries never see a stale
				// vector either.
				p.ReencodeDirty()
			}
			d := time.Since(t0)
			mu.Lock()
			ts.Step3 += d
			ts.Inserted += ins
			ts.Updated += upd
			ts.Deleted += del
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}(t.Partitions[pi], entries)
	}
	wg.Wait()
	return ts, len(merged), firstErr
}

func appendLeftover(batches []proplog.Batch, worker int, table storage.TableID, e proplog.Entry) []proplog.Batch {
	for i := range batches {
		if batches[i].Worker == worker {
			for j := range batches[i].Tables {
				if batches[i].Tables[j].Table == table {
					batches[i].Tables[j].Entries = append(batches[i].Tables[j].Entries, e)
					return batches
				}
			}
			batches[i].Tables = append(batches[i].Tables, proplog.TableBatch{
				Table: table, Entries: []proplog.Entry{e},
			})
			return batches
		}
	}
	return append(batches, proplog.Batch{
		Worker: worker,
		Tables: []proplog.TableBatch{{Table: table, Entries: []proplog.Entry{e}}},
	})
}

// MergeWorkerStreams merges per-worker VID-ordered entry streams into
// one VID-ordered stream (step 1 of the apply algorithm), exposed for
// harnesses that apply update streams to alternative storage layouts
// (the column-store microbenchmark of paper §8.3).
func MergeWorkerStreams(streams [][]proplog.Entry) []proplog.Entry {
	ws := make([]*workerStream, len(streams))
	for i, s := range streams {
		ws[i] = &workerStream{worker: i, entries: s}
	}
	return mergeByVID(ws)
}

// workerStream is one worker's VID-ordered entry stream for one table.
type workerStream struct {
	worker  int
	entries []proplog.Entry
}

// mergeByVID k-way merges per-worker VID-sorted streams into one
// VID-ordered stream (paper Fig. 4 step 1), allocating a fresh output
// buffer.
func mergeByVID(ws []*workerStream) []proplog.Entry {
	total := 0
	for _, s := range ws {
		total += len(s.entries)
	}
	return mergeByVIDInto(make([]proplog.Entry, 0, total), ws)
}

// mergeByVIDInto appends the merged stream to out (typically a reused
// buffer) and returns it. Both strategies copy whole runs of equal-VID
// entries from the winning stream, so one transaction's updates stay
// contiguous, and break VID ties by stream position — the heap path is
// entry-for-entry identical to the linear path.
func mergeByVIDInto(out []proplog.Entry, ws []*workerStream) []proplog.Entry {
	if len(ws) > mergeHeapThreshold {
		return mergeHeapInto(out, ws)
	}
	return mergeLinearInto(out, ws)
}

// mergeLinearInto is the small-k strategy: re-scan every stream head for
// each run. O(k) per run but branch-predictable and allocation-free.
func mergeLinearInto(out []proplog.Entry, ws []*workerStream) []proplog.Entry {
	total := 0
	for _, s := range ws {
		total += len(s.entries)
	}
	want := len(out) + total
	heads := make([]int, len(ws))
	for len(out) < want {
		best := -1
		var bestVID uint64
		for i, s := range ws {
			if heads[i] >= len(s.entries) {
				continue
			}
			v := s.entries[heads[i]].VID
			if best == -1 || v < bestVID {
				best, bestVID = i, v
			}
		}
		// Copy the whole run of equal-VID entries from the winning
		// stream (one transaction's updates stay contiguous).
		s := ws[best]
		for heads[best] < len(s.entries) && s.entries[heads[best]].VID == bestVID {
			out = append(out, s.entries[heads[best]])
			heads[best]++
		}
	}
	return out
}

// mergeHeapInto is the large-k strategy: a binary min-heap of stream
// indices ordered by (head VID, stream index) — the secondary key
// replicates the linear scan's first-stream-wins tie-break.
func mergeHeapInto(out []proplog.Entry, ws []*workerStream) []proplog.Entry {
	heads := make([]int, len(ws))
	h := make([]int, 0, len(ws))
	less := func(a, b int) bool {
		va, vb := ws[a].entries[heads[a]].VID, ws[b].entries[heads[b]].VID
		if va != vb {
			return va < vb
		}
		return a < b
	}
	siftDown := func(i int) {
		for {
			l, rc := 2*i+1, 2*i+2
			min := i
			if l < len(h) && less(h[l], h[min]) {
				min = l
			}
			if rc < len(h) && less(h[rc], h[min]) {
				min = rc
			}
			if min == i {
				return
			}
			h[i], h[min] = h[min], h[i]
			i = min
		}
	}
	for i, s := range ws {
		if len(s.entries) > 0 {
			h = append(h, i)
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for len(h) > 0 {
		best := h[0]
		s := ws[best]
		v := s.entries[heads[best]].VID
		for heads[best] < len(s.entries) && s.entries[heads[best]].VID == v {
			out = append(out, s.entries[heads[best]])
			heads[best]++
		}
		if heads[best] >= len(s.entries) {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		if len(h) > 0 {
			siftDown(0)
		}
	}
	return out
}

// applyToPartition executes step 3 for one partition: updates and
// deletes locate their tuple through the RowID hash index; inserts take
// the next free slot. Consecutive field patches of the same tuple from
// the same transaction share a single index lookup and count as one
// updated tuple — the paper's Ptup counts tuples, not patches.
func applyToPartition(t *Table, p *Partition, entries []proplog.Entry) (ins, upd, del int, err error) {
	for i := 0; i < len(entries); i++ {
		e := &entries[i]
		switch e.Kind {
		case proplog.Insert:
			if aerr := p.Insert(e.RowID, e.Data); aerr != nil {
				return ins, upd, del, aerr
			}
			t.pkInsert(e.Data, e.RowID)
			ins++
		case proplog.Update:
			slot, ok := p.Locate(e.RowID)
			if !ok {
				return ins, upd, del, fmt.Errorf("olap: update of unknown RowID %d", e.RowID)
			}
			if aerr := p.PatchSlot(slot, e.Offset, e.Data); aerr != nil {
				return ins, upd, del, aerr
			}
			for i+1 < len(entries) && entries[i+1].Kind == proplog.Update &&
				entries[i+1].RowID == e.RowID && entries[i+1].VID == e.VID {
				i++
				if aerr := p.PatchSlot(slot, entries[i].Offset, entries[i].Data); aerr != nil {
					return ins, upd, del, aerr
				}
			}
			upd++
		case proplog.Delete:
			if t.pkIdx != nil {
				if tup, ok := p.Get(e.RowID); ok {
					t.pkDelete(tup)
				}
			}
			if aerr := p.Delete(e.RowID); aerr != nil {
				return ins, upd, del, aerr
			}
			del++
		default:
			return ins, upd, del, fmt.Errorf("olap: unknown update kind %d", e.Kind)
		}
	}
	return ins, upd, del, nil
}
