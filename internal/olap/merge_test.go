package olap

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"batchdb/internal/proplog"
)

// makeMergeStreams builds k VID-sorted streams of roughly perStream
// entries each, with runs of equal-VID entries inside a stream and VID
// collisions across streams (distinct transactions can share no VID in
// the real system, but the merge must not care).
func makeMergeStreams(k, perStream int, seed int64) []*workerStream {
	rng := rand.New(rand.NewSource(seed))
	ws := make([]*workerStream, k)
	for i := range ws {
		ws[i] = &workerStream{worker: i}
		vid := uint64(rng.Intn(8))
		for len(ws[i].entries) < perStream {
			vid += uint64(1 + rng.Intn(5))
			run := 1 + rng.Intn(4)
			for j := 0; j < run; j++ {
				ws[i].entries = append(ws[i].entries, proplog.Entry{
					VID:   vid,
					Kind:  proplog.Update,
					RowID: uint64(rng.Intn(1 << 20)),
				})
			}
		}
	}
	return ws
}

// TestMergeHeapMatchesLinear pins the heap strategy to the linear one:
// identical output entry-for-entry, including equal-VID run order and
// cross-stream VID-tie breaks.
func TestMergeHeapMatchesLinear(t *testing.T) {
	for _, k := range []int{1, 2, 3, 9, 16, 33} {
		for seed := int64(0); seed < 5; seed++ {
			ws := makeMergeStreams(k, 50+int(seed)*37, seed)
			lin := mergeLinearInto(nil, ws)
			hp := mergeHeapInto(nil, ws)
			if !reflect.DeepEqual(lin, hp) {
				t.Fatalf("k=%d seed=%d: heap merge diverges from linear", k, seed)
			}
			for i := 1; i < len(lin); i++ {
				if lin[i].VID < lin[i-1].VID {
					t.Fatalf("k=%d seed=%d: output not VID-ordered at %d", k, seed, i)
				}
			}
		}
	}
}

// TestMergeEmptyStreams covers streams that are empty or exhausted
// early.
func TestMergeEmptyStreams(t *testing.T) {
	ws := []*workerStream{
		{worker: 0},
		{worker: 1, entries: []proplog.Entry{{VID: 3}, {VID: 7}}},
		{worker: 2},
		{worker: 3, entries: []proplog.Entry{{VID: 5}}},
	}
	want := []uint64{3, 5, 7}
	for name, got := range map[string][]proplog.Entry{
		"linear": mergeLinearInto(nil, ws),
		"heap":   mergeHeapInto(nil, ws),
	} {
		if len(got) != len(want) {
			t.Fatalf("%s: got %d entries, want %d", name, len(got), len(want))
		}
		for i, v := range want {
			if got[i].VID != v {
				t.Fatalf("%s: entry %d VID %d, want %d", name, i, got[i].VID, v)
			}
		}
	}
}

// BenchmarkMergeByVID measures both merge strategies across stream
// counts to locate the crossover justifying mergeHeapThreshold: the
// linear min-scan is O(k) per run and wins for few streams; the heap is
// O(log k) per run and wins as streams multiply.
func BenchmarkMergeByVID(b *testing.B) {
	const totalEntries = 1 << 16
	for _, k := range []int{2, 4, 8, 16, 64} {
		ws := makeMergeStreams(k, totalEntries/k, 42)
		out := make([]proplog.Entry, 0, totalEntries+k*4)
		b.Run(fmt.Sprintf("linear/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out = mergeLinearInto(out[:0], ws)
			}
		})
		b.Run(fmt.Sprintf("heap/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out = mergeHeapInto(out[:0], ws)
			}
		})
	}
}
